package pagen_test

import (
	"fmt"
	"log"

	"pagen"
)

// ExampleGenerate demonstrates the basic parallel generation call.
func ExampleGenerate() {
	res, err := pagen.Generate(pagen.Config{N: 10_000, X: 4, Ranks: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", res.Graph.N)
	fmt.Println("edges:", res.Graph.M())
	// Output:
	// nodes: 10000
	// edges: 39990
}

// ExampleGenerateSeq shows the sequential copy-model baseline; for
// x = 1 its output is identical to the parallel generator's.
func ExampleGenerateSeq() {
	g, _, err := pagen.GenerateSeq(pagen.Config{N: 1000, X: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree edges:", g.M())
	// Output:
	// tree edges: 999
}

// ExampleNewPartition inspects a partitioning scheme directly.
func ExampleNewPartition() {
	part, err := pagen.NewPartition("RRP", 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("owner of node 7:", part.Owner(7))
	fmt.Println("rank 1 size:", part.Size(1))
	// Output:
	// owner of node 7: 1
	// rank 1 size: 3
}

// ExampleGenerateStream consumes edges on the fly without materialising
// the graph.
func ExampleGenerateStream() {
	var count int64
	_, err := pagen.GenerateStream(pagen.Config{N: 5000, X: 2, Ranks: 1, Seed: 3},
		func(rank int, e pagen.Edge) { count++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streamed edges:", count)
	// Output:
	// streamed edges: 9997
}
