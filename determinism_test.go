package pagen

import (
	"fmt"
	"testing"

	"pagen/internal/bench"
)

// Output is fully deterministic: every attachment draw — including
// duplicate retries — comes from the drawing node's own RNG stream, and
// each node's edge sequence is generated strictly in order (suspending
// and resuming on unresolved copy sources). The emitted graph is
// therefore a pure function of (n, x, p, seed), independent of rank
// count, worker count, partition scheme and message schedule. These
// fingerprints were captured from the pre-optimisation single-threaded
// engine; neither the zero-allocation hot path (compact codec, pooled
// frames, flat waiter queues, parallel merge) nor the worker-sharded
// generation loop may move them by a single byte, at any worker count.
func TestSingleRankFingerprintPinned(t *testing.T) {
	cases := []struct {
		n    int64
		x    int
		seed uint64
		want uint64
	}{
		{n: 200_000, x: 4, seed: 42, want: 0x0ce8679c95965732},
		{n: 50_000, x: 3, seed: 7, want: 0x13f686b646e23fee},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("n=%d/x=%d/seed=%d/workers=%d", c.n, c.x, c.seed, workers), func(t *testing.T) {
				got, err := bench.FingerprintAt(c.n, c.x, 1, workers, c.seed)
				if err != nil {
					t.Fatal(err)
				}
				if got != c.want {
					t.Fatalf("single-rank edge-stream fingerprint = %016x, want %016x (output no longer byte-identical)", got, c.want)
				}
			})
		}
	}
}

// Worker-count invariance at every rank count: the order-insensitive
// multi-rank fingerprint must match the workers=1 fingerprint for the
// same (n, x, ranks, seed) at 2, 4 and 8 workers per rank.
func TestWorkerCountInvariantFingerprint(t *testing.T) {
	const (
		n    = int64(60_000)
		x    = 3
		seed = uint64(11)
	)
	for _, ranks := range []int{1, 2, 4} {
		base, err := bench.FingerprintAt(n, x, ranks, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := bench.FingerprintAt(n, x, ranks, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Fatalf("ranks=%d: fingerprint %016x at workers=%d, want %016x (workers=1)", ranks, got, workers, base)
			}
		}
	}
}

// The fingerprint itself must be reproducible within a process for any
// rank count when the stream is reduced order-insensitively — this
// guards the Fingerprint helper rather than the engine.
func TestFingerprintSelfConsistent(t *testing.T) {
	a, err := bench.Fingerprint(20_000, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.Fingerprint(20_000, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprint unstable across identical runs: %016x vs %016x", a, b)
	}
}
