package pagen

import (
	"fmt"
	"testing"

	"pagen/internal/bench"
)

// Single-rank runs are fully deterministic: one goroutine consumes the
// per-node RNG streams in node order, so the emitted edge stream is a
// pure function of (n, x, seed). These fingerprints were captured from
// the pre-optimisation engine; the zero-allocation hot path (compact
// codec, pooled frames, flat waiter queues, parallel merge) must not
// move them by a single byte.
//
// Multi-rank output is NOT pinned: resolved messages arrive in
// scheduling-dependent order, and each arrival consumes the receiving
// rank's retry stream, so the edge set varies run to run by design.
func TestSingleRankFingerprintPinned(t *testing.T) {
	cases := []struct {
		n    int64
		x    int
		seed uint64
		want uint64
	}{
		{n: 200_000, x: 4, seed: 42, want: 0x0ce8679c95965732},
		{n: 50_000, x: 3, seed: 7, want: 0x13f686b646e23fee},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n=%d/x=%d/seed=%d", c.n, c.x, c.seed), func(t *testing.T) {
			got, err := bench.Fingerprint(c.n, c.x, 1, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("single-rank edge-stream fingerprint = %016x, want %016x (output no longer byte-identical)", got, c.want)
			}
		})
	}
}

// The fingerprint itself must be reproducible within a process for any
// rank count when the stream is reduced order-insensitively — this
// guards the Fingerprint helper rather than the engine.
func TestFingerprintSelfConsistent(t *testing.T) {
	a, err := bench.Fingerprint(20_000, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.Fingerprint(20_000, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprint unstable across identical runs: %016x vs %016x", a, b)
	}
}
