package jobqueue

import (
	"fmt"
	"os"
	"path/filepath"

	"pagen/internal/obs"
)

// metricCounters are the queue's monotone counters and latency
// histograms, maintained under the queue lock. The histograms reuse
// internal/obs's fixed power-of-two-bucket Histogram — the same
// machinery (and JSON shape) the per-run metric records use — so the
// control plane's latency telemetry composes with the generator's.
type metricCounters struct {
	// Submitted counts accepted Submit calls; Rejected the Submit
	// calls refused with ErrQueueFull.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	// Completed/Failed/Cancelled count terminal transitions;
	// Preempted operator preemptions; Restarts crash respawns.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Preempted int64 `json:"preempted"`
	Restarts  int64 `json:"restarts"`
	// QueueWait observes each admission's wait (nanoseconds: the
	// stint between entering the pending queue and getting slots);
	// RunTime each completed job's cumulative pool time (nanoseconds).
	QueueWait obs.Histogram `json:"queue_wait_nanos"`
	RunTime   obs.Histogram `json:"run_nanos"`
	// CkptPause and CkptWrite aggregate the engine's per-epoch
	// checkpoint distributions across every rank of every attempt the
	// pool ran: the generation pause per epoch and the background
	// publish per epoch (both nanoseconds; docs/OPERATIONS.md §2).
	// Runners leave per-rank metrics drops in the job directory and
	// the queue folds them in when the attempt returns.
	CkptPause obs.Histogram `json:"ckpt_pause_per_epoch"`
	CkptWrite obs.Histogram `json:"ckpt_write_per_epoch"`
}

// rankMetricsFile is the per-rank metrics drop a runner leaves in the
// job directory for the queue to fold into its pool-wide telemetry.
func rankMetricsFile(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("metrics-rank%d.json", rank))
}

// collectCkptTelemetry reads and removes the per-rank metrics drops of
// a finished attempt, returning the merged per-epoch checkpoint pause
// and publish histograms. Missing or damaged files are skipped without
// error: a killed rank writes no metrics, and telemetry loss must
// never change a job's outcome. Removing each file after the read
// keeps a respawned attempt from double-counting its predecessor.
func collectCkptTelemetry(job JobInfo) (pause, write obs.Histogram) {
	for rank := 0; rank < job.Spec.Ranks; rank++ {
		path := rankMetricsFile(job.Dir, rank)
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		m, err := obs.ReadJSON(f)
		f.Close()
		os.Remove(path)
		if err != nil {
			continue
		}
		for _, r := range m.PerRank {
			pause.Merge(r.CkptPausePerEpoch)
			write.Merge(r.CkptWritePerEpoch)
		}
	}
	return pause, write
}

// MetricsSnapshot is the exported /metrics record of the control
// plane: the monotone counters plus a point-in-time view of the pool
// and the queue. The invariant the load test reconciles:
// submitted == completed + failed + cancelled + queued + running +
// checkpointed (every accepted job is in exactly one bucket).
type MetricsSnapshot struct {
	metricCounters
	// SlotsTotal and SlotsFree describe the rank-slot pool now.
	SlotsTotal int `json:"slots_total"`
	SlotsFree  int `json:"slots_free"`
	// Queued, Running and Checkpointed count jobs currently in each
	// non-terminal state.
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	Checkpointed int `json:"checkpointed"`
}

// Metrics returns a consistent snapshot of the queue's metrics.
func (q *Queue) Metrics() MetricsSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := MetricsSnapshot{
		metricCounters: q.met,
		SlotsTotal:     q.cfg.Slots,
		SlotsFree:      q.free,
	}
	for _, j := range q.jobs {
		switch j.State {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateCheckpointed:
			s.Checkpointed++
		}
	}
	return s
}
