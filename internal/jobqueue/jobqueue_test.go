package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// runnerFunc adapts a function to the Runner interface.
type runnerFunc func(ctx context.Context, job JobInfo, resume bool) error

func (f runnerFunc) Run(ctx context.Context, job JobInfo, resume bool) error {
	return f(ctx, job, resume)
}

// newTestQueue builds a queue over a temp root with test-friendly
// timing. Callers override cfg fields before use via the setup func.
func newTestQueue(t *testing.T, r Runner, setup func(*Config)) *Queue {
	t.Helper()
	cfg := Config{
		Root:         t.TempDir(),
		Slots:        2,
		QueueCap:     8,
		MaxRestarts:  3,
		ReserveAfter: time.Minute,
		Runner:       r,
	}
	if setup != nil {
		setup(&cfg)
	}
	q, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(q.Close)
	return q
}

func smallSpec() Spec { return Spec{N: 100, X: 2, Seed: 1} }

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := q.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: state = %s, want %s (job: %+v)", id, j.State, want, j)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockingRunner parks every attempt until released (or its ctx is
// cancelled), reporting each start on starts.
type blockingRunner struct {
	starts  chan string
	release chan struct{}
	// holdAfterCancel simulates an attempt that needs time to drain
	// (e.g. committing a final checkpoint) after the queue kills it:
	// Run ignores ctx and returns only on release.
	holdAfterCancel bool
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{starts: make(chan string, 16), release: make(chan struct{})}
}

func (r *blockingRunner) Run(ctx context.Context, job JobInfo, resume bool) error {
	r.starts <- job.ID
	if r.holdAfterCancel {
		<-r.release
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-r.release:
		return nil
	}
}

func (r *blockingRunner) waitStart(t *testing.T, want string) {
	t.Helper()
	select {
	case id := <-r.starts:
		if id != want {
			t.Fatalf("started job %s, want %s", id, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never started", want)
	}
}

func TestSubmitValidation(t *testing.T) {
	q := newTestQueue(t, runnerFunc(func(context.Context, JobInfo, bool) error { return nil }), nil)
	cases := []Spec{
		{N: 0, X: 2},                      // n <= x
		{N: 100, X: 0},                    // x < 1
		{N: 100, X: 2, P: 2},              // p outside [0,1]
		{N: 100, X: 2, Scheme: "bogus"},   // unknown scheme
		{N: 100, X: 2, Resolve: "bogus"},  // unknown resolve mode
		{N: 100, X: 2, Ranks: 99},         // more ranks than slots
		{N: 100, X: 2, StreamBlockEdges: -1},
	}
	for _, spec := range cases {
		if _, err := q.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v) = %v, want ErrBadSpec", spec, err)
		}
	}
	if got := q.Metrics().Submitted; got != 0 {
		t.Errorf("rejected specs counted as submitted: %d", got)
	}
}

func TestSpecDefaults(t *testing.T) {
	q := newTestQueue(t, runnerFunc(func(context.Context, JobInfo, bool) error { return nil }), nil)
	j, err := q.Submit(Spec{N: 100, X: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s := j.Spec
	if s.P == 0 || s.Scheme != "RRP" || s.Ranks != 1 || s.Workers != 1 ||
		s.Resolve != "wire" || s.CheckpointEvery != 20000 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if j.Dir == "" || !strings.HasSuffix(j.Dir, filepath.Join("jobs", j.ID)) {
		t.Errorf("job dir = %q, want .../jobs/%s", j.Dir, j.ID)
	}
	for _, sub := range []string{"ck", "shards"} {
		if st, err := os.Stat(filepath.Join(j.Dir, sub)); err != nil || !st.IsDir() {
			t.Errorf("job subdir %s missing: %v", sub, err)
		}
	}
}

func TestHappyPath(t *testing.T) {
	var mu sync.Mutex
	var resumes []bool
	q := newTestQueue(t, runnerFunc(func(_ context.Context, job JobInfo, resume bool) error {
		mu.Lock()
		resumes = append(resumes, resume)
		mu.Unlock()
		// The runner sees the job's directory layout.
		if job.CheckpointDir() != filepath.Join(job.Dir, "ck") ||
			job.ShardDir() != filepath.Join(job.Dir, "shards") {
			return fmt.Errorf("bad dirs: %+v", job)
		}
		return nil
	}), nil)
	j, err := q.Submit(smallSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, q, j.ID, StateDone)
	if got.Attempts != 1 || got.Restarts != 0 || got.Error != "" {
		t.Errorf("done job: %+v", got)
	}
	if got.Started.IsZero() || got.Finished.IsZero() {
		t.Errorf("timestamps missing: %+v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(resumes) != 1 || resumes[0] {
		t.Errorf("resume flags = %v, want [false]", resumes)
	}
}

func TestQueueFullRejection(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, func(c *Config) { c.Slots = 1; c.QueueCap = 2 })
	defer close(r.release)

	first, err := q.Submit(smallSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.waitStart(t, first.ID) // occupies the only slot; queue now empty
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(smallSpec()); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := q.Submit(smallSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over cap = %v, want ErrQueueFull", err)
	}
	m := q.Metrics()
	if m.Rejected != 1 || m.Submitted != 3 {
		t.Errorf("metrics = %+v, want rejected 1, submitted 3", m)
	}
}

func TestCancelQueued(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, func(c *Config) { c.Slots = 1 })
	defer close(r.release)

	first, _ := q.Submit(smallSpec())
	r.waitStart(t, first.ID)
	second, _ := q.Submit(smallSpec())

	j, err := q.Cancel(second.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if j.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State)
	}
	// Cancelling again reports the job is finished.
	if _, err := q.Cancel(second.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second Cancel = %v, want ErrFinished", err)
	}
	if _, err := q.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestCancelRunning(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, nil)
	defer close(r.release)

	j, _ := q.Submit(smallSpec())
	r.waitStart(t, j.ID)
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, q, j.ID, StateCancelled)
	if got.Finished.IsZero() {
		t.Errorf("cancelled job has no Finished: %+v", got)
	}
	if m := q.Metrics(); m.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", m.Cancelled)
	}
}

// TestCancelWhileCheckpointing preempts a job whose attempt takes time
// to drain after the kill, then cancels it while the runner is still
// "checkpointing". Cancel must override the preemption: the job ends
// cancelled, never re-enqueued.
func TestCancelWhileCheckpointing(t *testing.T) {
	r := newBlockingRunner()
	r.holdAfterCancel = true
	q := newTestQueue(t, r, nil)

	j, _ := q.Submit(smallSpec())
	r.waitStart(t, j.ID)
	if _, err := q.Preempt(j.ID); err != nil {
		t.Fatalf("Preempt: %v", err)
	}
	// The attempt is now draining (runner ignores ctx until released);
	// the job is still formally running, so Cancel upgrades the intent.
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel during drain: %v", err)
	}
	close(r.release)
	got := waitState(t, q, j.ID, StateCancelled)
	if got.Preemptions != 0 {
		t.Errorf("cancel-overridden preemption was counted: %+v", got)
	}
	m := q.Metrics()
	if m.Cancelled != 1 || m.Preempted != 0 {
		t.Errorf("metrics = %+v, want cancelled 1 preempted 0", m)
	}
}

// TestCrashRespawn verifies a crashing attempt is respawned with
// resume=true — a restart, not a job failure.
func TestCrashRespawn(t *testing.T) {
	var mu sync.Mutex
	var resumes []bool
	q := newTestQueue(t, runnerFunc(func(_ context.Context, job JobInfo, resume bool) error {
		mu.Lock()
		resumes = append(resumes, resume)
		n := len(resumes)
		mu.Unlock()
		if n == 1 {
			return errors.New("rank 1: connection reset")
		}
		return nil
	}), nil)
	j, _ := q.Submit(smallSpec())
	got := waitState(t, q, j.ID, StateDone)
	if got.Attempts != 2 || got.Restarts != 1 {
		t.Errorf("attempts/restarts = %d/%d, want 2/1", got.Attempts, got.Restarts)
	}
	if got.Error != "" {
		t.Errorf("done job kept error %q", got.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(resumes) != 2 || resumes[0] || !resumes[1] {
		t.Errorf("resume flags = %v, want [false true]", resumes)
	}
	m := q.Metrics()
	if m.Restarts != 1 || m.Completed != 1 || m.Failed != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestRestartsExhausted verifies a job that keeps crashing eventually
// fails with the restart budget spent and the last error recorded.
func TestRestartsExhausted(t *testing.T) {
	q := newTestQueue(t, runnerFunc(func(context.Context, JobInfo, bool) error {
		return errors.New("segfault")
	}), func(c *Config) { c.MaxRestarts = 2 })
	j, _ := q.Submit(smallSpec())
	got := waitState(t, q, j.ID, StateFailed)
	if got.Attempts != 3 || got.Restarts != 2 {
		t.Errorf("attempts/restarts = %d/%d, want 3/2", got.Attempts, got.Restarts)
	}
	if !strings.Contains(got.Error, "segfault") || !strings.Contains(got.Error, "after 2 restarts") {
		t.Errorf("error = %q", got.Error)
	}
	if m := q.Metrics(); m.Failed != 1 || m.Restarts != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

// chunkRunner is a deterministic stand-in for the engine's
// checkpoint/resume contract: it writes a known byte stream to
// out.bin in chunks, persists a progress counter to the job's
// checkpoint dir after every chunk, honours ctx between chunks, and on
// resume continues from the recorded chunk. An interrupted-and-resumed
// run therefore produces output byte-identical to an uninterrupted
// one iff the queue wires resume correctly.
type chunkRunner struct {
	chunks int
	// started signals each attempt once its first chunk is durable.
	started chan struct{}
}

func (r *chunkRunner) Run(ctx context.Context, job JobInfo, resume bool) error {
	prog := filepath.Join(job.CheckpointDir(), "progress")
	out := filepath.Join(job.ShardDir(), "out.bin")
	from := 0
	if resume {
		if b, err := os.ReadFile(prog); err == nil {
			from, _ = strconv.Atoi(strings.TrimSpace(string(b)))
		}
	} else {
		os.Remove(out)
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(int64(from*8), 0); err != nil {
		return err
	}
	for i := from; i < r.chunks; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if _, err := fmt.Fprintf(f, "chunk%02d\n", i); err != nil {
			return err
		}
		if err := os.WriteFile(prog, []byte(strconv.Itoa(i+1)), 0o644); err != nil {
			return err
		}
		if i == from && r.started != nil {
			r.started <- struct{}{}
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// TestPreemptResumeByteIdentical preempts a mid-flight job, waits for
// it to be re-admitted and finish, and compares its output to an
// uninterrupted run of the same spec.
func TestPreemptResumeByteIdentical(t *testing.T) {
	r := &chunkRunner{chunks: 200, started: make(chan struct{}, 8)}
	q := newTestQueue(t, r, nil)

	// Reference: uninterrupted. Consume its start signal so the next
	// receive really observes the second job's first chunk.
	ref, _ := q.Submit(smallSpec())
	<-r.started
	waitState(t, q, ref.ID, StateDone)

	j, _ := q.Submit(smallSpec())
	<-r.started // first chunk durable: safe to preempt
	if _, err := q.Preempt(j.ID); err != nil {
		t.Fatalf("Preempt: %v", err)
	}
	got := waitState(t, q, j.ID, StateDone) // re-admitted automatically
	if got.Preemptions != 1 || got.Attempts != 2 {
		t.Errorf("preemptions/attempts = %d/%d, want 1/2", got.Preemptions, got.Attempts)
	}
	refBytes, err := os.ReadFile(filepath.Join(ref.Dir, "shards", "out.bin"))
	if err != nil {
		t.Fatalf("read reference: %v", err)
	}
	gotBytes, err := os.ReadFile(filepath.Join(got.Dir, "shards", "out.bin"))
	if err != nil {
		t.Fatalf("read preempted output: %v", err)
	}
	if string(refBytes) != string(gotBytes) {
		t.Fatalf("resumed output differs from uninterrupted run:\nref %d bytes, got %d bytes", len(refBytes), len(gotBytes))
	}
	// Drain any extra start signals so the buffered channel can't block
	// a later attempt (defensive; capacity covers the attempts here).
	for {
		select {
		case <-r.started:
		default:
			return
		}
	}
}

func TestPreemptNotRunning(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, func(c *Config) { c.Slots = 1 })
	defer close(r.release)
	first, _ := q.Submit(smallSpec())
	r.waitStart(t, first.ID)
	second, _ := q.Submit(smallSpec())
	if _, err := q.Preempt(second.ID); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Preempt queued job = %v, want ErrNotRunning", err)
	}
	if _, err := q.Preempt("j424242"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Preempt unknown = %v, want ErrNotFound", err)
	}
}

// TestCloseCheckpointsRunning verifies daemon shutdown leaves running
// jobs checkpointed (not failed): their directories hold the progress
// a future queue needs.
func TestCloseCheckpointsRunning(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, nil)
	j, _ := q.Submit(smallSpec())
	r.waitStart(t, j.ID)
	q.Close() // kills the attempt via ctx
	got, err := q.Get(j.ID)
	if err != nil {
		t.Fatalf("Get after close: %v", err)
	}
	if got.State != StateCheckpointed {
		t.Errorf("state after close = %s, want checkpointed", got.State)
	}
	if _, err := q.Submit(smallSpec()); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after close = %v, want ErrClosed", err)
	}
}

// TestMetricsReconcile drives a mixed workload and checks the /metrics
// invariant: submitted == completed + failed + cancelled + queued +
// running + checkpointed.
func TestMetricsReconcile(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	fails := map[string]bool{}
	q := newTestQueue(t, runnerFunc(func(_ context.Context, job JobInfo, _ bool) error {
		mu.Lock()
		calls++
		first := !fails[job.ID]
		fails[job.ID] = true
		mu.Unlock()
		if job.Spec.Seed == 7 && first {
			return errors.New("boom") // one job crashes once, then succeeds
		}
		return nil
	}), nil)

	var ids []string
	for i := 0; i < 6; i++ {
		s := smallSpec()
		if i == 3 {
			s.Seed = 7
		}
		j, err := q.Submit(s)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitState(t, q, id, StateDone)
	}
	m := q.Metrics()
	total := m.Completed + m.Failed + m.Cancelled + int64(m.Queued) + int64(m.Running) + int64(m.Checkpointed)
	if m.Submitted != total {
		t.Errorf("invariant broken: submitted %d != sum %d (%+v)", m.Submitted, total, m)
	}
	if m.Completed != 6 || m.Restarts != 1 || m.SlotsFree != m.SlotsTotal {
		t.Errorf("metrics = %+v", m)
	}
	if m.QueueWait.Count != int64(len(ids))+1 { // +1: the respawn re-admission
		t.Errorf("queue-wait observations = %d, want %d", m.QueueWait.Count, len(ids)+1)
	}
	if got := len(q.List()); got != 6 {
		t.Errorf("List = %d jobs, want 6", got)
	}
}

func TestStateTerminal(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued: false, StateRunning: false, StateCheckpointed: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, !want, want)
		}
	}
}
