package jobqueue

import (
	"testing"
	"time"
)

// TestBackfill: with one slot held, a 2-slot job blocks at the head of
// the queue but a later 1-slot job is admitted past it — FIFO with
// backfill. (No explicit release-channel cleanup in these tests:
// q.Close via t.Cleanup cancels every attempt's ctx, which unblocks
// the runner.)
func TestBackfill(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, func(c *Config) { c.Slots = 2 })

	holder, _ := q.Submit(smallSpec()) // 1 slot
	r.waitStart(t, holder.ID)

	bigSpec := smallSpec()
	bigSpec.Ranks = 2
	big, _ := q.Submit(bigSpec) // needs both slots: blocked
	small, _ := q.Submit(smallSpec())

	// The small job backfills around the blocked big one.
	r.waitStart(t, small.ID)
	if j, _ := q.Get(big.ID); j.State != StateQueued {
		t.Fatalf("big job state = %s, want queued (blocked)", j.State)
	}

	// Releasing the 1-slot jobs lets the big job through (the closed
	// channel also releases the big job's own attempt immediately).
	close(r.release)
	r.waitStart(t, big.ID)
	waitState(t, q, big.ID, StateDone)
}

// TestReservationStopsBackfill: once the blocked job has waited past
// ReserveAfter it reserves the pool — younger jobs that would fit are
// NOT admitted past it, so freed slots drain to the starved job. This
// is the queue's starvation bound (DESIGN.md §14).
func TestReservationStopsBackfill(t *testing.T) {
	r := newBlockingRunner()
	q := newTestQueue(t, r, func(c *Config) {
		c.Slots = 2
		c.ReserveAfter = 30 * time.Millisecond
	})

	holder, _ := q.Submit(smallSpec())
	r.waitStart(t, holder.ID)
	bigSpec := smallSpec()
	bigSpec.Ranks = 2
	big, _ := q.Submit(bigSpec)

	// Age the big job past the reservation threshold, then offer a
	// small job that would backfill.
	time.Sleep(60 * time.Millisecond)
	small, _ := q.Submit(smallSpec())
	time.Sleep(30 * time.Millisecond) // give a (buggy) scheduler time to admit it
	if j, _ := q.Get(small.ID); j.State != StateQueued {
		t.Fatalf("small job state = %s, want queued (reservation in force)", j.State)
	}

	// Release the holder: the starved big job gets the whole pool
	// first; the small job runs after it.
	close(r.release)
	r.waitStart(t, big.ID)
	r.waitStart(t, small.ID)
	waitState(t, q, big.ID, StateDone)
	waitState(t, q, small.ID, StateDone)
}

// TestPreemptYieldsSlots: preempting a running job frees its slot for
// the next waiter and re-enqueues the preempted job at the back.
func TestPreemptYieldsSlots(t *testing.T) {
	r := &chunkRunner{chunks: 150, started: make(chan struct{}, 8)}
	q := newTestQueue(t, r, func(c *Config) { c.Slots = 1 })

	first, _ := q.Submit(smallSpec())
	<-r.started
	second, _ := q.Submit(smallSpec())
	if _, err := q.Preempt(first.ID); err != nil {
		t.Fatalf("Preempt: %v", err)
	}
	// With one slot, the freed slot must go to the second job — the
	// preempted first job re-enters at the back. The next start signal
	// is therefore the second job's; both finish eventually.
	waitState(t, q, second.ID, StateDone)
	got := waitState(t, q, first.ID, StateDone)
	if got.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", got.Preemptions)
	}
	if got.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (preempt + resume)", got.Attempts)
	}
}
