package jobqueue

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pagen/internal/core"
	"pagen/internal/esink"
	"pagen/internal/model"
	"pagen/internal/partition"
)

func TestPortAllocAcquireRelease(t *testing.T) {
	a := NewPortAlloc("", 42000, 4)
	addrs, rel1, err := a.Acquire(3)
	if err != nil {
		t.Fatalf("Acquire(3): %v", err)
	}
	want := []string{"127.0.0.1:42000", "127.0.0.1:42001", "127.0.0.1:42002"}
	if !reflect.DeepEqual(addrs, want) {
		t.Errorf("addrs = %v, want %v", addrs, want)
	}
	// One port left: a 2-port acquire fails without corrupting state.
	if _, _, err := a.Acquire(2); err == nil {
		t.Fatal("Acquire(2) with 1 free port succeeded")
	}
	if got, rel, err := a.Acquire(1); err != nil || got[0] != "127.0.0.1:42003" {
		t.Errorf("Acquire(1) = %v, %v", got, err)
	} else {
		rel()
	}
	rel1()
	// All released: the full span is available again.
	if got, rel, err := a.Acquire(4); err != nil || len(got) != 4 {
		t.Errorf("Acquire(4) after release = %v, %v", got, err)
	} else {
		rel()
	}
}

func TestPortAllocHost(t *testing.T) {
	a := NewPortAlloc("10.0.0.5", 9000, 1)
	addrs, rel, err := a.Acquire(1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel()
	if addrs[0] != "10.0.0.5:9000" {
		t.Errorf("addr = %s", addrs[0])
	}
}

// TestRankArgs pins the exact pa-tcp invocation ProcessRunner uses, so
// a pa-tcp flag rename breaks this test rather than production jobs.
func TestRankArgs(t *testing.T) {
	spec := Spec{
		N: 50000, X: 4, P: 0.25, Seed: 99, Scheme: "CP", Ranks: 2,
		Workers: 3, Resolve: "recompute", HubPrefix: 128,
		RecomputeDepth: 7, CheckpointEvery: 5000, CheckpointFullEvery: 6,
		StreamBlockEdges: 1024,
	}
	job := JobInfo{ID: "j000007", Spec: spec, Dir: "/data/jobs/j000007", Attempt: 2}
	addrs := []string{"127.0.0.1:42000", "127.0.0.1:42001"}
	got := rankArgs(job, addrs, 1, true)
	want := []string{
		"-rank", "1",
		"-addrs", "127.0.0.1:42000,127.0.0.1:42001",
		"-n", "50000",
		"-x", "4",
		"-p", "0.25",
		"-scheme", "CP",
		"-seed", "99",
		"-workers", "3",
		"-hub-prefix", "128",
		"-resolve", "recompute",
		"-recompute-depth", "7",
		"-checkpoint-dir", filepath.Join("/data/jobs/j000007", "ck"),
		"-checkpoint-every", "5000",
		"-checkpoint-full-every", "6",
		"-stream-dir", filepath.Join("/data/jobs/j000007", "shards"),
		"-stream-block-edges", "1024",
		"-metrics", filepath.Join("/data/jobs/j000007", "metrics-rank1.json"),
		"-resume",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rankArgs:\n got %q\nwant %q", got, want)
	}
	// No -resume on a fresh attempt.
	fresh := rankArgs(job, addrs, 0, false)
	for _, a := range fresh {
		if a == "-resume" {
			t.Error("fresh attempt carries -resume")
		}
	}
}

// TestInProcessRunnerEndToEnd runs a real generation through the queue
// with the in-process runner and verifies the streamed shards: the
// esink metadata pins the spec, and the decoded edge stream is
// identical to a direct core.Run of the same parameters — the service
// adds scheduling without touching the output. (The comparison is at
// the edge level, not raw shard bytes: checkpoint-epoch cut records
// are interleaved with the edge blocks at timing-dependent points, and
// the reader elides them.)
func TestInProcessRunnerEndToEnd(t *testing.T) {
	const (
		n     = 4000
		x     = 2
		seed  = 42
		ranks = 2
	)
	spec := Spec{N: n, X: x, Seed: seed, Ranks: ranks, Workers: 2, CheckpointEvery: 1000}
	q := newTestQueue(t, InProcessRunner{}, nil)
	j, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, q, j.ID, StateDone)

	// The attempt checkpointed (CheckpointEvery 1000 over 4000 nodes),
	// so its per-epoch pause/publish telemetry must have reached the
	// pool histograms, and the per-rank drops must be consumed.
	if m := q.Metrics(); m.CkptPause.Count == 0 || m.CkptWrite.Count == 0 {
		t.Errorf("queue checkpoint histograms empty after checkpointed job: pause=%d write=%d",
			m.CkptPause.Count, m.CkptWrite.Count)
	}
	for rank := 0; rank < ranks; rank++ {
		if _, err := os.Stat(rankMetricsFile(got.Dir, rank)); !os.IsNotExist(err) {
			t.Errorf("metrics drop for rank %d not consumed (err=%v)", rank, err)
		}
	}

	shardDir := filepath.Join(got.Dir, "shards")
	dr, err := esink.OpenDir(shardDir, ranks)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer dr.Close()
	meta := dr.Meta()
	if meta.N != n || meta.Seed != seed || meta.Ranks != ranks {
		t.Errorf("shard meta = %+v", meta)
	}

	// Reference: the same parameters straight through the engine,
	// without the service or checkpointing in the way.
	refDir := t.TempDir()
	part, err := partition.New(partition.KindRRP, n, ranks)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if _, err := core.Run(core.Options{
		Params:    model.Params{N: n, X: x, P: model.DefaultP},
		Part:      part,
		Seed:      seed,
		Workers:   2,
		StreamDir: refDir,
	}, false); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refReader, err := esink.OpenDir(refDir, ranks)
	if err != nil {
		t.Fatalf("OpenDir(ref): %v", err)
	}
	defer refReader.Close()
	if dr.Edges() != refReader.Edges() {
		t.Fatalf("edge counts differ: service %d, direct %d", dr.Edges(), refReader.Edges())
	}
	svcIt, refIt := dr.Iter(0), refReader.Iter(0)
	for i := int64(0); ; i++ {
		se, sok := svcIt.Next()
		re, rok := refIt.Next()
		if sok != rok {
			t.Fatalf("edge stream lengths diverge at %d", i)
		}
		if !sok {
			break
		}
		if se != re {
			t.Fatalf("edge %d differs: service %v, direct %v", i, se, re)
		}
	}
	if err := svcIt.Err(); err != nil {
		t.Fatalf("service iter: %v", err)
	}
	if err := refIt.Err(); err != nil {
		t.Fatalf("reference iter: %v", err)
	}
}

// TestInProcessRunnerBadSpecFields exercises the runner's own parsing
// (the queue normally validates first; a Runner must still fail cleanly
// on a spec it cannot execute).
func TestInProcessRunnerBadSpecFields(t *testing.T) {
	dir := t.TempDir()
	job := JobInfo{ID: "x", Dir: dir, Spec: Spec{N: 100, X: 2, P: 0.5, Ranks: 1, Workers: 1, Scheme: "nope", Resolve: "wire"}}
	if err := (InProcessRunner{}).Run(context.Background(), job, false); err == nil {
		t.Error("unknown scheme accepted")
	}
	job.Spec.Scheme = "RRP"
	job.Spec.Resolve = "nope"
	if err := (InProcessRunner{}).Run(context.Background(), job, false); err == nil {
		t.Error("unknown resolve mode accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job.Spec.Resolve = "wire"
	if err := (InProcessRunner{}).Run(ctx, job, false); err == nil {
		t.Error("cancelled ctx accepted")
	}
}
