package jobqueue

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/obs"
	"pagen/internal/partition"
)

// PortAlloc hands out listen addresses for rank clusters from a fixed
// host:port range. Concurrently running jobs hold disjoint port sets;
// Acquire fails (rather than colliding) if the range is exhausted —
// size the span to at least the pool's slot count, since at most Slots
// ranks run at once.
type PortAlloc struct {
	host string
	base int

	mu   sync.Mutex
	used []bool
}

// NewPortAlloc creates an allocator over [base, base+span) on host
// (default 127.0.0.1).
func NewPortAlloc(host string, base, span int) *PortAlloc {
	if host == "" {
		host = "127.0.0.1"
	}
	return &PortAlloc{host: host, base: base, used: make([]bool, span)}
}

// Acquire reserves k ports and returns their addresses in rank order
// plus a release function. The addresses are not necessarily
// contiguous.
func (a *PortAlloc) Acquire(k int) ([]string, func(), error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var picked []int
	for i := range a.used {
		if !a.used[i] {
			picked = append(picked, i)
			if len(picked) == k {
				break
			}
		}
	}
	if len(picked) < k {
		return nil, nil, fmt.Errorf("jobqueue: port range exhausted (%d ports, %d wanted)", len(a.used), k)
	}
	addrs := make([]string, k)
	for i, p := range picked {
		a.used[p] = true
		addrs[i] = fmt.Sprintf("%s:%d", a.host, a.base+p)
	}
	release := func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		for _, p := range picked {
			a.used[p] = false
		}
	}
	return addrs, release, nil
}

// ProcessRunner executes a job attempt as a cluster of pa-tcp rank
// processes on this host — the control plane's production path, built
// on the same per-rank invocation the pa-tcp supervisor uses: every
// rank gets the full address list, the job's checkpoint directory and
// its shard directory, and a crashed attempt is relaunched by the
// queue with -resume so the cluster restarts from the newest epoch all
// ranks committed. Rank stdout/stderr append to rank<i>.log in the
// job directory across attempts.
type ProcessRunner struct {
	// Binary is the pa-tcp executable path.
	Binary string
	// Ports allocates the cluster's listen addresses.
	Ports *PortAlloc
}

// rankArgs builds the pa-tcp argument vector for one rank of a job
// attempt. Kept separate from process management so tests can pin the
// exact invocation.
func rankArgs(job JobInfo, addrs []string, rank int, resume bool) []string {
	s := job.Spec
	args := []string{
		"-rank", strconv.Itoa(rank),
		"-addrs", strings.Join(addrs, ","),
		"-n", strconv.FormatInt(s.N, 10),
		"-x", strconv.Itoa(s.X),
		"-p", strconv.FormatFloat(s.P, 'g', -1, 64),
		"-scheme", s.Scheme,
		"-seed", strconv.FormatUint(s.Seed, 10),
		"-workers", strconv.Itoa(s.Workers),
		"-hub-prefix", strconv.FormatInt(s.HubPrefix, 10),
		"-resolve", s.Resolve,
		"-recompute-depth", strconv.Itoa(s.RecomputeDepth),
		"-checkpoint-dir", job.CheckpointDir(),
		"-checkpoint-every", strconv.FormatInt(s.CheckpointEvery, 10),
		"-checkpoint-full-every", strconv.Itoa(s.CheckpointFullEvery),
		"-stream-dir", job.ShardDir(),
		"-stream-block-edges", strconv.Itoa(s.StreamBlockEdges),
		// Each rank drops its metrics record in the job directory; the
		// queue folds the checkpoint histograms into /metrics.
		"-metrics", rankMetricsFile(job.Dir, rank),
	}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// Run launches one rank process per slot and waits for the cluster.
// On ctx cancellation every rank is killed and ctx's error returned;
// on any rank failure the survivors are killed (a rank cannot finish
// without its peers) and the first failure returned after all
// processes are reaped.
func (r *ProcessRunner) Run(ctx context.Context, job JobInfo, resume bool) error {
	ranks := job.Spec.Ranks
	addrs, release, err := r.Ports.Acquire(ranks)
	if err != nil {
		return err
	}
	defer release()

	cmds := make([]*exec.Cmd, 0, ranks)
	logs := make([]*os.File, 0, ranks)
	defer func() {
		for _, lf := range logs {
			lf.Close()
		}
	}()
	killAll := func() {
		for _, c := range cmds {
			c.Process.Kill()
		}
	}
	for i := 0; i < ranks; i++ {
		lf, err := os.OpenFile(filepath.Join(job.Dir, fmt.Sprintf("rank%d.log", i)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			killAll()
			for _, c := range cmds {
				c.Wait()
			}
			return err
		}
		logs = append(logs, lf)
		cmd := exec.Command(r.Binary, rankArgs(job, addrs, i, resume)...)
		cmd.Stdout, cmd.Stderr = lf, lf
		if err := cmd.Start(); err != nil {
			killAll()
			for _, c := range cmds {
				c.Wait()
			}
			return fmt.Errorf("spawn rank %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}

	// Kill the cluster the moment the queue revokes the slots.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			killAll()
		case <-watchDone:
		}
	}()

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, ranks)
	for i, cmd := range cmds {
		go func(i int, cmd *exec.Cmd) {
			exits <- exit{i, cmd.Wait()}
		}(i, cmd)
	}
	var firstErr error
	for done := 0; done < ranks; done++ {
		e := <-exits
		if e.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", e.rank, e.err)
			killAll()
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// InProcessRunner runs a job's ranks as goroutines inside the calling
// process over the shared-memory transport — no child processes, no
// TCP. It produces the identical shard output ProcessRunner does (the
// byte-identity contract across transports), and the same checkpoint/
// resume behaviour. Limitation: the in-process engine has no kill
// switch, so ctx is only honoured between attempts — Cancel or Preempt
// of a running in-process job takes effect when the generation
// finishes. Intended for tests and small single-binary deployments;
// production pools use ProcessRunner.
type InProcessRunner struct{}

// Run generates the job's shards in-process, resuming from the job's
// checkpoint directory when resume is set.
func (InProcessRunner) Run(ctx context.Context, job JobInfo, resume bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s := job.Spec
	kind, err := partition.ParseKind(s.Scheme)
	if err != nil {
		return err
	}
	part, err := partition.New(kind, s.N, s.Ranks)
	if err != nil {
		return err
	}
	mode, err := core.ParseResolveMode(s.Resolve)
	if err != nil {
		return err
	}
	res, err := core.Run(core.Options{
		Params:         model.Params{N: s.N, X: s.X, P: s.P},
		Part:           part,
		Seed:           s.Seed,
		Workers:        s.Workers,
		HubPrefix:      s.HubPrefix,
		Resolve:        mode,
		RecomputeDepth: s.RecomputeDepth,
		Checkpoint: &core.CheckpointOptions{
			Dir:       job.CheckpointDir(),
			Every:     s.CheckpointEvery,
			FullEvery: s.CheckpointFullEvery,
			Resume:    resume,
		},
		StreamDir:        job.ShardDir(),
		StreamBlockEdges: s.StreamBlockEdges,
	}, false)
	if res != nil {
		writeRankMetricsFiles(job, res)
	}
	return err
}

// writeRankMetricsFiles leaves the same per-rank metrics drops a
// pa-tcp cluster writes via -metrics, so the queue's checkpoint
// telemetry merge is runner-agnostic. Best-effort: a drop that fails
// to write is skipped (telemetry never fails a job).
func writeRankMetricsFiles(job JobInfo, res *core.Result) {
	s := job.Spec
	for _, st := range res.Ranks {
		m := &obs.RunMetrics{
			N: s.N, X: s.X, P: s.P,
			Ranks: s.Ranks, Scheme: s.Scheme, Seed: s.Seed,
			ElapsedNanos: res.Elapsed.Nanoseconds(),
			PerRank:      []obs.RankMetrics{st.Metrics()},
		}
		f, err := os.Create(rankMetricsFile(job.Dir, st.Rank))
		if err != nil {
			continue
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			continue
		}
		f.Close()
	}
}
