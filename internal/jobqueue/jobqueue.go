// Package jobqueue is the scheduling core of the pa-serve control
// plane: a multi-tenant queue of generation jobs packed onto an elastic
// pool of rank slots. Each job is one (n, x, p, seed, scheme, ranks,
// workers, resolve, hub-prefix) parameterization of the generator; the
// queue admits jobs FIFO with backfill (a small job may start ahead of
// a blocked larger one) bounded by an aging reservation (a job starved
// past ReserveAfter freezes admission so freed slots drain to it —
// DESIGN.md §14 ties the bound to the Lemma 3.4 load model).
//
// Every job owns a directory with a checkpoint subdir and a streamed
// shard subdir, so jobs survive both failure modes of a long-lived
// service: a crashed rank process relaunches the job's cluster with
// -resume (counted as a restart, not a job failure), and an operator
// Preempt checkpoints the job off the pool into the "checkpointed"
// state, to be resumed later from exactly where it stopped — with
// output byte-identical to an uninterrupted run, the engine's
// checkpoint/restart guarantee (DESIGN.md §9, §12).
//
// The queue is runner-agnostic: ProcessRunner executes a job as real
// pa-tcp rank processes over localhost TCP (the production path),
// InProcessRunner runs the ranks as goroutines over the shared-memory
// transport (tests, single-binary setups). cmd/pa-serve wraps the
// queue in the HTTP/JSON API documented in docs/API.md.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// State is a job's position in the lifecycle state machine:
//
//	queued ──admit──► running ──► done
//	   ▲                │ │ └────► failed     (restarts exhausted)
//	   │                │ └──────► cancelled  (operator cancel)
//	   └── re-admit ── checkpointed           (preempt / rank crash /
//	         (resume)                          daemon shutdown)
//
// plus queued ──► cancelled for jobs cancelled before ever running.
// "checkpointed" means the job is off the pool but its directory holds
// durable progress (checkpoint epochs and shard prefixes); preempted
// and crash-respawned jobs pass through it on their way back to the
// pool, and its next attempt always runs with -resume.
type State string

// The job lifecycle states. Done, failed and cancelled are terminal.
const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
	StateCancelled    State = "cancelled"
)

// Terminal reports whether s is a terminal state (no further
// transitions).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is a job's generation parameterization — the JSON body of
// POST /jobs. Zero values select documented defaults (normalize fills
// them in, so a stored job's Spec shows the effective values).
type Spec struct {
	// N, X, P and Seed are the copy-model parameters (docs/API.md).
	N    int64   `json:"n"`
	X    int     `json:"x"`
	P    float64 `json:"p,omitempty"`
	Seed uint64  `json:"seed"`
	// Scheme is the node-partitioning scheme (default RRP).
	Scheme string `json:"scheme,omitempty"`
	// Ranks is the number of rank processes (slots) the job occupies
	// while running (default 1; at most the pool's slot count).
	Ranks int `json:"ranks,omitempty"`
	// Workers is the generation goroutines per rank (default 1 — the
	// service packs jobs, so oversubscription is the queue's job, not
	// the runtime's).
	Workers int `json:"workers,omitempty"`
	// Resolve is the non-local dependency resolution mode: "wire" or
	// "recompute" (default wire).
	Resolve string `json:"resolve,omitempty"`
	// HubPrefix is the replicated hub-prefix cache size (0 auto,
	// negative off, positive fixed).
	HubPrefix int64 `json:"hub_prefix,omitempty"`
	// RecomputeDepth caps recompute replay chains (0 = ~2*log2 n).
	RecomputeDepth int `json:"recompute_depth,omitempty"`
	// CheckpointEvery is the progress interval between checkpoint
	// epochs (0 selects max(n/20, 20000) per the OPERATIONS.md §2
	// cadence guidance). Checkpoints are what make preemption and
	// crash respawn cheap, so they are always on.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// CheckpointFullEvery is the full-snapshot cadence: every Nth
	// checkpoint epoch is a full snapshot and the epochs between are
	// incremental deltas against it (0 or 1 = every epoch full). See
	// docs/OPERATIONS.md §2.
	CheckpointFullEvery int `json:"checkpoint_full_every,omitempty"`
	// StreamBlockEdges is the edge records buffered per shard block
	// (0 = esink default). Jobs always stream their edges to per-rank
	// shard files (docs/SHARD_FORMAT.md): bounded memory per job is
	// what lets the pool pack tenants safely.
	StreamBlockEdges int `json:"stream_block_edges,omitempty"`
}

// normalize fills defaults in place and validates the spec against the
// same parsers the CLIs use, so a job rejected here would also have
// been rejected by every rank.
func (s *Spec) normalize() error {
	if s.P == 0 {
		s.P = model.DefaultP
	}
	if s.Scheme == "" {
		s.Scheme = "RRP"
	}
	if s.Ranks == 0 {
		s.Ranks = 1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Resolve == "" {
		s.Resolve = core.ResolveWire.String()
	}
	if s.CheckpointEvery == 0 {
		s.CheckpointEvery = s.N / 20
		if s.CheckpointEvery < 20000 {
			s.CheckpointEvery = 20000
		}
	}
	pr := model.Params{N: s.N, X: s.X, P: s.P}
	if err := pr.Validate(); err != nil {
		return err
	}
	if s.Ranks < 0 || s.Workers < 0 {
		return fmt.Errorf("ranks (%d) and workers (%d) must be positive", s.Ranks, s.Workers)
	}
	kind, err := partition.ParseKind(s.Scheme)
	if err != nil {
		return err
	}
	if _, err := partition.New(kind, s.N, s.Ranks); err != nil {
		return err
	}
	if _, err := core.ParseResolveMode(s.Resolve); err != nil {
		return err
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("checkpoint_every (%d) must be >= 0", s.CheckpointEvery)
	}
	if s.CheckpointFullEvery < 0 {
		return fmt.Errorf("checkpoint_full_every (%d) must be >= 0", s.CheckpointFullEvery)
	}
	if s.StreamBlockEdges < 0 {
		return fmt.Errorf("stream_block_edges (%d) must be >= 0", s.StreamBlockEdges)
	}
	return nil
}

// Job is the externally visible snapshot of one job — the JSON object
// the API returns. Timestamps are zero until the transition they mark.
type Job struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Submitted, Started and Finished mark the lifecycle transitions
	// (Started is the first admission to the pool).
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Attempts counts cluster launches; Restarts the crash-triggered
	// relaunches among them; Preemptions the operator preemptions.
	Attempts    int `json:"attempts"`
	Restarts    int `json:"restarts"`
	Preemptions int `json:"preemptions"`
	// Error carries the fatal error of a failed job, or the most
	// recent crash of a job the queue respawned.
	Error string `json:"error,omitempty"`
	// Dir is the job's directory: checkpoints under Dir/ck, streamed
	// shards under Dir/shards, per-rank process logs as rank<i>.log.
	Dir string `json:"dir"`
	// WaitNanos is cumulative time spent waiting for admission
	// (queued or checkpointed); RunNanos cumulative time on the pool.
	WaitNanos int64 `json:"wait_nanos"`
	RunNanos  int64 `json:"run_nanos"`
}

// JobInfo is what a Runner receives: the job's identity, effective
// spec, directory layout and attempt ordinal.
type JobInfo struct {
	ID      string
	Spec    Spec
	Dir     string
	Attempt int
}

// CheckpointDir is the job's checkpoint directory (shared by all of
// its ranks; pa-tcp's -checkpoint-dir).
func (ji JobInfo) CheckpointDir() string { return filepath.Join(ji.Dir, "ck") }

// ShardDir is the directory the job's ranks stream their edge shards
// into (pa-tcp's -stream-dir; docs/SHARD_FORMAT.md).
func (ji JobInfo) ShardDir() string { return filepath.Join(ji.Dir, "shards") }

// Runner executes one attempt of a job: launch all Spec.Ranks ranks,
// wait for the cluster, and return nil exactly when the job's shard
// output is complete. resume asks the attempt to restart from the
// job's checkpoint directory (a no-op when it holds no usable epoch —
// the run starts fresh). A Runner must watch ctx: cancellation means
// the queue wants the slots back (operator cancel, preemption or
// shutdown), and Run should kill the attempt and return promptly with
// ctx's error. Run is called from a per-job goroutine; implementations
// must be safe for concurrent calls on different jobs.
type Runner interface {
	Run(ctx context.Context, job JobInfo, resume bool) error
}

// Config configures a Queue.
type Config struct {
	// Root is the data directory; each job gets Root/jobs/<id>.
	Root string
	// Slots is the rank-process capacity of the pool. A running job
	// occupies Spec.Ranks slots. Default 8.
	Slots int
	// QueueCap bounds the jobs waiting for admission (queued plus
	// checkpointed); Submit past it fails with ErrQueueFull. Jobs
	// re-entering the queue after a crash or preemption are existing
	// tenants and bypass the cap. Default 64.
	QueueCap int
	// MaxRestarts bounds crash-triggered relaunches per job before it
	// fails for good. Default 3.
	MaxRestarts int
	// ReserveAfter is the starvation bound: a job waiting longer than
	// this reserves the pool — no younger job is admitted past it
	// until it runs. Default 30s.
	ReserveAfter time.Duration
	// Runner executes job attempts (required).
	Runner Runner
}

// Sentinel errors of the queue API, in the order the HTTP layer maps
// them (400, 429, 404, 409).
var (
	ErrBadSpec    = errors.New("jobqueue: invalid job spec")
	ErrQueueFull  = errors.New("jobqueue: queue full")
	ErrNotFound   = errors.New("jobqueue: no such job")
	ErrFinished   = errors.New("jobqueue: job already finished")
	ErrNotRunning = errors.New("jobqueue: job not running")
	ErrClosed     = errors.New("jobqueue: queue closed")
)

// job is the queue's internal record: the public snapshot plus
// scheduling state.
type job struct {
	Job
	// enqueued is when the job last entered the pending queue (zero
	// while running or terminal); its age drives the reservation.
	enqueued time.Time
	// attemptStart is when the current attempt was admitted.
	attemptStart time.Time
	// waitAccum and runAccum accumulate completed waiting/running
	// stints; snapshots add the live stint.
	waitAccum time.Duration
	runAccum  time.Duration
	// resume is whether the next attempt resumes from the job dirs
	// (true after the first admission).
	resume bool
	// cancel aborts the running attempt (nil when not running).
	cancel context.CancelFunc
	// intent is why the running attempt is being stopped; cancel
	// overrides preempt.
	intent intent
}

type intent int

const (
	intentNone intent = iota
	intentPreempt
	intentCancel
)

// Queue is the multi-tenant job queue. All methods are safe for
// concurrent use.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for List
	pending []*job   // admission order: crash-respawns first, then FIFO
	free    int      // free rank slots
	nextID  int
	closed  bool
	met     metricCounters

	ctx       context.Context
	stop      context.CancelFunc
	kick      chan struct{}
	wg        sync.WaitGroup
	schedDone chan struct{}
}

// New creates the queue, its jobs directory, and starts the scheduler.
// Close must be called to stop it.
func New(cfg Config) (*Queue, error) {
	if cfg.Runner == nil {
		return nil, errors.New("jobqueue: Config.Runner is required")
	}
	if cfg.Root == "" {
		return nil, errors.New("jobqueue: Config.Root is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.ReserveAfter <= 0 {
		cfg.ReserveAfter = 30 * time.Second
	}
	if err := os.MkdirAll(filepath.Join(cfg.Root, "jobs"), 0o755); err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	q := &Queue{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		free:      cfg.Slots,
		ctx:       ctx,
		stop:      stop,
		kick:      make(chan struct{}, 1),
		schedDone: make(chan struct{}),
	}
	go q.scheduler()
	return q, nil
}

// Slots returns the pool's total slot count.
func (q *Queue) Slots() int { return q.cfg.Slots }

// Submit validates spec, creates the job's directories and enqueues
// it. Errors wrap ErrBadSpec (invalid or oversized spec), ErrQueueFull
// or ErrClosed.
func (q *Queue) Submit(spec Spec) (Job, error) {
	if err := spec.normalize(); err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, ErrClosed
	}
	if spec.Ranks > q.cfg.Slots {
		return Job{}, fmt.Errorf("%w: job needs %d rank slots, pool has %d", ErrBadSpec, spec.Ranks, q.cfg.Slots)
	}
	if len(q.pending) >= q.cfg.QueueCap {
		q.met.Rejected++
		return Job{}, fmt.Errorf("%w: %d jobs already waiting", ErrQueueFull, len(q.pending))
	}
	id := fmt.Sprintf("j%06d", q.nextID)
	q.nextID++
	dir := filepath.Join(q.cfg.Root, "jobs", id)
	for _, d := range []string{filepath.Join(dir, "ck"), filepath.Join(dir, "shards")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return Job{}, err
		}
	}
	now := time.Now()
	j := &job{
		Job:      Job{ID: id, Spec: spec, State: StateQueued, Submitted: now, Dir: dir},
		enqueued: now,
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.pending = append(q.pending, j)
	q.met.Submitted++
	q.kickLocked()
	return j.snapshot(now), nil
}

// Get returns the snapshot of one job.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshot(time.Now()), nil
}

// List returns snapshots of all jobs in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id].snapshot(now))
	}
	return out
}

// Cancel stops a job for good: a waiting job leaves the queue, a
// running job's attempt is killed. Cancel overrides an in-flight
// preemption (a job caught mid-checkpoint by a cancel ends cancelled,
// not checkpointed). Cancelling a terminal job returns ErrFinished.
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	now := time.Now()
	switch {
	case j.State.Terminal():
		return j.snapshot(now), ErrFinished
	case j.State == StateRunning:
		j.intent = intentCancel
		if j.cancel != nil {
			j.cancel()
		}
		// State flips to cancelled when the runner returns.
	default: // queued or checkpointed: still in the pending queue
		q.dropPendingLocked(j)
		j.waitAccum += now.Sub(j.enqueued)
		j.enqueued = time.Time{}
		j.State = StateCancelled
		j.Finished = now
		q.met.Cancelled++
		q.kickLocked()
	}
	return j.snapshot(now), nil
}

// Preempt checkpoints a running job off the pool: its attempt is
// killed (the engine's next resume regenerates exactly the suffix past
// the last committed epoch), the job moves to checkpointed and
// re-enters the queue at the back — yielding its slots to older
// waiters. Only running jobs can be preempted.
func (q *Queue) Preempt(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	if j.State != StateRunning {
		return j.snapshot(time.Now()), ErrNotRunning
	}
	if j.intent == intentNone {
		j.intent = intentPreempt
	}
	if j.cancel != nil {
		j.cancel()
	}
	return j.snapshot(time.Now()), nil
}

// Close stops the scheduler and kills every running attempt (their
// jobs end checkpointed: the directories hold their progress). Waiting
// jobs stay queued in memory but will never run. Close blocks until
// all runner goroutines have returned.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.stop()
	q.wg.Wait()
	<-q.schedDone
}

// kickLocked wakes the scheduler (non-blocking; the channel holds one
// pending wakeup).
func (q *Queue) kickLocked() {
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// dropPendingLocked removes j from the pending queue.
func (q *Queue) dropPendingLocked(j *job) {
	for i, p := range q.pending {
		if p == j {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// scheduler is the admission loop: one goroutine, woken on every
// submit/finish/cancel, scanning the pending queue under the lock.
func (q *Queue) scheduler() {
	defer close(q.schedDone)
	for {
		select {
		case <-q.ctx.Done():
			return
		case <-q.kick:
		}
		q.mu.Lock()
		q.scheduleLocked(time.Now())
		q.mu.Unlock()
	}
}

// scheduleLocked walks the pending queue in order. FIFO with backfill:
// a job that fits the free slots is admitted even if an older job is
// blocked — until the blocked job's wait reaches ReserveAfter, at
// which point it reserves the pool and the scan stops, so every freed
// slot drains to the starved job. Combined with Submit's Ranks <=
// Slots bound this caps queue wait (DESIGN.md §14): admission freezes
// at most ReserveAfter after a job's enqueue, and the running jobs'
// makespan later it has the whole pool available.
func (q *Queue) scheduleLocked(now time.Time) {
	if q.closed {
		// Close is (or will be) waiting on the runner WaitGroup; no
		// new attempts may start.
		return
	}
	i := 0
	for i < len(q.pending) {
		j := q.pending[i]
		if j.Spec.Ranks <= q.free {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			q.admitLocked(j, now)
			continue
		}
		if now.Sub(j.enqueued) >= q.cfg.ReserveAfter {
			return // starved: no backfill past it
		}
		i++
	}
}

// admitLocked moves a pending job onto the pool and launches its
// runner goroutine.
func (q *Queue) admitLocked(j *job, now time.Time) {
	wait := now.Sub(j.enqueued)
	j.waitAccum += wait
	q.met.QueueWait.Observe(wait.Nanoseconds())
	j.enqueued = time.Time{}
	j.State = StateRunning
	if j.Started.IsZero() {
		j.Started = now
	}
	j.attemptStart = now
	j.Attempts++
	j.intent = intentNone
	resume := j.resume
	j.resume = true // later attempts always resume from the job dirs
	ctx, cancel := context.WithCancel(q.ctx)
	j.cancel = cancel
	q.free -= j.Spec.Ranks
	info := JobInfo{ID: j.ID, Spec: j.Spec, Dir: j.Dir, Attempt: j.Attempts}
	q.wg.Add(1)
	go q.runJob(j, ctx, info, resume)
}

// runJob executes one attempt and applies the state transition its
// outcome selects.
func (q *Queue) runJob(j *job, ctx context.Context, info JobInfo, resume bool) {
	defer q.wg.Done()
	err := q.cfg.Runner.Run(ctx, info, resume)
	// Fold the attempt's per-rank checkpoint telemetry (file reads —
	// off the lock) into the pool-wide histograms below.
	ckptPause, ckptWrite := collectCkptTelemetry(info)
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.runAccum += now.Sub(j.attemptStart)
	q.free += j.Spec.Ranks
	q.met.CkptPause.Merge(ckptPause)
	q.met.CkptWrite.Merge(ckptWrite)
	switch {
	case j.intent == intentCancel:
		j.State = StateCancelled
		j.Finished = now
		q.met.Cancelled++
	case q.closed:
		// Daemon shutdown: leave the job checkpointed; its directory
		// holds everything a future run needs.
		j.State = StateCheckpointed
	case j.intent == intentPreempt:
		j.State = StateCheckpointed
		j.Preemptions++
		q.met.Preempted++
		j.enqueued = now
		q.pending = append(q.pending, j) // back of the queue: it yields
	case err == nil:
		j.State = StateDone
		j.Finished = now
		j.Error = ""
		q.met.Completed++
		q.met.RunTime.Observe(j.runAccum.Nanoseconds())
	case j.Restarts < q.cfg.MaxRestarts:
		// A crashed cluster is respawned from the job's checkpoint
		// directory — a restart, not a job failure.
		j.Restarts++
		j.Error = fmt.Sprintf("attempt %d crashed (respawning): %v", j.Attempts, err)
		q.met.Restarts++
		j.State = StateCheckpointed
		j.enqueued = now
		// Front of the queue: its slots were just freed, so it
		// usually re-admits immediately.
		q.pending = append([]*job{j}, q.pending...)
	default:
		j.State = StateFailed
		j.Finished = now
		j.Error = fmt.Sprintf("attempt %d: %v (after %d restarts)", j.Attempts, err, j.Restarts)
		q.met.Failed++
	}
	j.intent = intentNone
	q.kickLocked()
}

// snapshot returns the public view of j, folding the live waiting or
// running stint into the cumulative durations.
func (j *job) snapshot(now time.Time) Job {
	s := j.Job
	wait, run := j.waitAccum, j.runAccum
	switch s.State {
	case StateQueued, StateCheckpointed:
		if !j.enqueued.IsZero() {
			wait += now.Sub(j.enqueued)
		}
	case StateRunning:
		run += now.Sub(j.attemptStart)
	}
	s.WaitNanos = wait.Nanoseconds()
	s.RunNanos = run.Nanoseconds()
	return s
}
