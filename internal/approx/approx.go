// Package approx implements a Yoo–Henderson-style *approximate*
// distributed preferential-attachment generator (the paper's reference
// [28] — the only prior distributed-memory PA algorithm). The paper's
// criticism of it is the motivation for the exact algorithm: (i) it
// approximates the attachment probabilities rather than computing them
// exactly, and (ii) its accuracy depends on manually tuned control
// parameters.
//
// The scheme here captures the approximation's essence: generation
// proceeds in synchronised blocks of nodes. Within a block, every worker
// samples attachment targets from a degree snapshot frozen at the block
// start — in parallel, with no communication — so attachments made
// inside the block do not influence each other (stale weights). Between
// blocks, workers synchronise and the degree table is updated. The block
// size is the control parameter: 1 recovers exact sequential BA, n gives
// static (uniform-over-initial-degrees) sampling, and intermediate
// values trade parallel efficiency against distributional accuracy —
// exactly the tuning burden the paper's algorithm removes.
package approx

import (
	"fmt"
	"sync"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/xrand"
)

// Options configure the approximate generator.
type Options struct {
	// SyncInterval is the number of nodes per synchronised block (the
	// accuracy control parameter). <= 0 selects DefaultSyncInterval.
	SyncInterval int64
	// Ranks is the number of parallel workers (default 1).
	Ranks int
	// Seed seeds the per-worker random streams.
	Seed uint64
}

// DefaultSyncInterval is the default block size.
const DefaultSyncInterval = 1024

// Generate runs the approximate distributed PA algorithm. The output has
// the same edge count and structural invariants as the exact algorithm
// (no self-loops or parallel edges), but its degree distribution only
// approximates preferential attachment, with error growing in
// SyncInterval. pr.P is ignored (the approximation targets plain BA).
func Generate(pr model.Params, opt Options) (*graph.Graph, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	ranks := opt.Ranks
	if ranks < 1 {
		ranks = 1
	}
	interval := opt.SyncInterval
	if interval <= 0 {
		interval = DefaultSyncInterval
	}

	n, x := pr.N, pr.X
	x64 := int64(x)
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, pr.M())

	// repeated holds one occurrence of each node per unit of degree —
	// the sampling table snapshot workers read. It is extended only at
	// block boundaries.
	repeated := make([]int64, 0, 2*pr.M())
	addEdge := func(u, v int64) {
		g.AddEdge(u, v)
		repeated = append(repeated, u, v)
	}

	// Bootstrap identical to the exact generators.
	for t := int64(1); t < x64; t++ {
		for j := int64(0); j < t; j++ {
			addEdge(t, j)
		}
	}
	for e := int64(0); e < x64; e++ {
		addEdge(x64, e)
	}

	type shard struct {
		edges []graph.Edge
		err   error
	}

	for blockStart := x64 + 1; blockStart < n; blockStart += interval {
		blockEnd := blockStart + interval
		if blockEnd > n {
			blockEnd = n
		}
		snapshot := repeated // frozen view; workers only read
		shards := make([]shard, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := xrand.NewStream(opt.Seed, uint64(blockStart)*uint64(ranks)+uint64(r))
				targets := make([]int64, 0, x)
				// Round-robin nodes of the block across workers.
				for t := blockStart + int64(r); t < blockEnd; t += int64(ranks) {
					targets = targets[:0]
					for len(targets) < x {
						v := snapshot[rng.Uint64n(uint64(len(snapshot)))]
						if v == t {
							continue
						}
						dup := false
						for _, w := range targets {
							if w == v {
								dup = true
								break
							}
						}
						if dup {
							continue
						}
						targets = append(targets, v)
					}
					for _, v := range targets {
						shards[r].edges = append(shards[r].edges, graph.Edge{U: t, V: v})
					}
				}
			}(r)
		}
		wg.Wait()
		// Synchronisation point: merge shards into the graph and the
		// sampling table, in worker order for determinism.
		for r := range shards {
			if shards[r].err != nil {
				return nil, shards[r].err
			}
			for _, e := range shards[r].edges {
				addEdge(e.U, e.V)
			}
		}
	}

	if g.M() != pr.M() {
		return nil, fmt.Errorf("approx: generated %d edges, want %d", g.M(), pr.M())
	}
	return g, nil
}
