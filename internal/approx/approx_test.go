package approx

import (
	"math"
	"testing"

	"pagen/internal/model"
	"pagen/internal/seq"
	"pagen/internal/stats"
	"pagen/internal/xrand"
)

func TestStructuralInvariants(t *testing.T) {
	cases := []struct {
		pr       model.Params
		ranks    int
		interval int64
	}{
		{model.Params{N: 500, X: 1, P: 0.5}, 1, 1},
		{model.Params{N: 500, X: 4, P: 0.5}, 4, 64},
		{model.Params{N: 2000, X: 3, P: 0.5}, 8, 500},
		{model.Params{N: 100, X: 5, P: 0.5}, 2, 1 << 30}, // one giant block
	}
	for _, c := range cases {
		g, err := Generate(c.pr, Options{Ranks: c.ranks, SyncInterval: c.interval, Seed: 1})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if g.M() != c.pr.M() {
			t.Fatalf("%+v: m = %d, want %d", c, g.M(), c.pr.M())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if comp := g.ToCSR().ConnectedComponents(); comp != 1 {
			t.Fatalf("%+v: %d components", c, comp)
		}
	}
}

func TestRejectsInvalidParams(t *testing.T) {
	if _, err := Generate(model.Params{N: 4, X: 4, P: 0.5}, Options{}); err == nil {
		t.Fatal("n == x accepted")
	}
}

func TestDeterministicPerConfig(t *testing.T) {
	pr := model.Params{N: 1000, X: 3, P: 0.5}
	opt := Options{Ranks: 4, SyncInterval: 128, Seed: 9}
	a, err := Generate(pr, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(pr, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// With SyncInterval = 1 the approximation is exact BA: its degree PMF
// must match Batagelj–Brandes closely.
func TestIntervalOneIsExact(t *testing.T) {
	pr := model.Params{N: 20000, X: 4, P: 0.5}
	ga, err := Generate(pr, Options{Ranks: 1, SyncInterval: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := seq.BatageljBrandes(pr, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := ga.DegreeHistogram(), gb.DegreeHistogram()
	for d := int64(4); d <= 10; d++ {
		pa := float64(ha.Count(d)) / float64(pr.N)
		pb := float64(hb.Count(d)) / float64(pr.N)
		if math.Abs(pa-pb) > 0.015 {
			t.Errorf("P(deg=%d): approx %.4f vs BB %.4f", d, pa, pb)
		}
	}
}

// The paper's criticism quantified: accuracy degrades as the sync
// interval grows. A huge interval freezes the early degree table, so
// late nodes attach as if the network were still young — hubs grow far
// beyond what exact PA produces (early mass is over-weighted for the
// whole run).
func TestAccuracyDegradesWithInterval(t *testing.T) {
	pr := model.Params{N: 30000, X: 4, P: 0.5}
	exact, err := seq.BatageljBrandes(pr, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	exactGamma := fitGamma(t, exact.Degrees())

	tight, err := Generate(pr, Options{Ranks: 4, SyncInterval: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tightGamma := fitGamma(t, tight.Degrees())

	loose, err := Generate(pr, Options{Ranks: 4, SyncInterval: pr.N, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	looseGamma := fitGamma(t, loose.Degrees())

	if math.Abs(tightGamma-exactGamma) > 0.15 {
		t.Errorf("tight interval gamma %v far from exact %v", tightGamma, exactGamma)
	}
	if math.Abs(looseGamma-exactGamma) <= math.Abs(tightGamma-exactGamma) {
		t.Errorf("loose interval (%v) not worse than tight (%v) vs exact %v",
			looseGamma, tightGamma, exactGamma)
	}
}

func fitGamma(t *testing.T, degrees []int64) float64 {
	t.Helper()
	fit, err := stats.PowerLawMLE(degrees, 8)
	if err != nil {
		t.Fatal(err)
	}
	return fit.Gamma
}

func TestDefaultsApplied(t *testing.T) {
	pr := model.Params{N: 3000, X: 2, P: 0.5}
	g, err := Generate(pr, Options{}) // ranks and interval default
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != pr.M() {
		t.Fatalf("m = %d", g.M())
	}
}

func BenchmarkApprox(b *testing.B) {
	pr := model.Params{N: 100000, X: 4, P: 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(pr, Options{Ranks: 8, SyncInterval: 4096, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
