package graph

import (
	"testing"
	"testing/quick"

	"pagen/internal/xrand"
)

func triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return g
}

func TestEdgeCanonical(t *testing.T) {
	if got := (Edge{U: 5, V: 2}).Canonical(); got != (Edge{U: 2, V: 5}) {
		t.Fatalf("Canonical = %v", got)
	}
	if got := (Edge{U: 2, V: 5}).Canonical(); got != (Edge{U: 2, V: 5}) {
		t.Fatalf("Canonical changed ordered edge: %v", got)
	}
}

func TestDegrees(t *testing.T) {
	g := triangle()
	g.AddEdge(0, 1) // parallel edge still counts toward degree
	deg := g.Degrees()
	want := []int64{3, 3, 2}
	for i, w := range want {
		if deg[i] != w {
			t.Fatalf("deg = %v, want %v", deg, want)
		}
	}
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := triangle().DegreeHistogram()
	if h.Count(2) != 3 || h.Total() != 3 {
		t.Fatalf("histogram wrong: count(2)=%d total=%d", h.Count(2), h.Total())
	}
}

func TestCSRStructure(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	c := g.ToCSR()
	cases := []struct {
		u    int64
		want []int64
	}{
		{0, []int64{1, 2}},
		{1, []int64{0}},
		{2, []int64{0, 3}},
		{3, []int64{2}},
	}
	for _, cse := range cases {
		nb := c.Neighbors(cse.u)
		if len(nb) != len(cse.want) {
			t.Fatalf("Neighbors(%d) = %v", cse.u, nb)
		}
		for i := range nb {
			if nb[i] != cse.want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", cse.u, nb, cse.want)
			}
		}
		if c.Degree(cse.u) != int64(len(cse.want)) {
			t.Fatalf("Degree(%d) = %d", cse.u, c.Degree(cse.u))
		}
	}
	if !c.HasEdge(0, 2) || !c.HasEdge(2, 0) || c.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestCSREmptyGraph(t *testing.T) {
	c := New(5).ToCSR()
	for u := int64(0); u < 5; u++ {
		if c.Degree(u) != 0 {
			t.Fatalf("Degree(%d) = %d", u, c.Degree(u))
		}
	}
	if c.ConnectedComponents() != 5 {
		t.Fatalf("components = %d, want 5", c.ConnectedComponents())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5 and 6 isolated.
	if got := g.ToCSR().ConnectedComponents(); got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}
	if got := triangle().ToCSR().ConnectedComponents(); got != 1 {
		t.Fatalf("triangle components = %d", got)
	}
}

func TestConnectedComponentsLongPath(t *testing.T) {
	// Deep graph must not overflow anything (iterative BFS).
	n := int64(200000)
	g := New(n)
	for u := int64(1); u < n; u++ {
		g.AddEdge(u-1, u)
	}
	if got := g.ToCSR().ConnectedComponents(); got != 1 {
		t.Fatalf("path components = %d", got)
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Fatalf("triangle invalid: %v", err)
	}
	if err := New(10).Validate(); err != nil {
		t.Fatalf("empty invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	selfLoop := New(3)
	selfLoop.AddEdge(1, 1)
	if selfLoop.Validate() == nil {
		t.Error("self-loop accepted")
	}

	outOfRange := New(3)
	outOfRange.AddEdge(0, 3)
	if outOfRange.Validate() == nil {
		t.Error("out-of-range endpoint accepted")
	}

	negative := New(3)
	negative.AddEdge(-1, 0)
	if negative.Validate() == nil {
		t.Error("negative endpoint accepted")
	}

	dup := New(3)
	dup.AddEdge(0, 1)
	dup.AddEdge(1, 0) // same undirected edge, reversed
	if dup.Validate() == nil {
		t.Error("parallel (reversed) edge accepted")
	}
}

func TestMerge(t *testing.T) {
	a := []Edge{{0, 1}, {1, 2}}
	b := []Edge{{2, 3}}
	g := Merge(4, a, b, nil)
	if g.N != 4 || g.M() != 3 {
		t.Fatalf("merged N=%d M=%d", g.N, g.M())
	}
	if g.Edges[2] != (Edge{2, 3}) {
		t.Fatalf("edges = %v", g.Edges)
	}
}

// TestMergeParallelPath pushes Merge over parallelMergeMin so the
// concurrent per-shard copies run, and checks the result is identical
// to the serial gather: same order, every edge in place, uneven and
// empty shards handled.
func TestMergeParallelPath(t *testing.T) {
	shardLens := []int{1 << 16, 0, 1 << 15, 777, 1 << 16, 1}
	total := 0
	for _, l := range shardLens {
		total += l
	}
	if total < parallelMergeMin {
		t.Fatalf("test shards total %d, below parallel threshold %d", total, parallelMergeMin)
	}
	shards := make([][]Edge, len(shardLens))
	id := int64(0)
	for s, l := range shardLens {
		shards[s] = make([]Edge, l)
		for i := range shards[s] {
			shards[s][i] = Edge{U: id + 1, V: id}
			id++
		}
	}
	g := Merge(id+2, shards...)
	if g.M() != int64(total) {
		t.Fatalf("merged %d edges, want %d", g.M(), total)
	}
	for i, e := range g.Edges {
		if e.U != int64(i)+1 || e.V != int64(i) {
			t.Fatalf("edge %d = %v: shard order not preserved", i, e)
		}
	}
}

// Property: sum of degrees equals 2m for arbitrary edge sets.
func TestDegreeSumProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		n := int64(100)
		g := New(n)
		for i := 0; i+1 < len(pairs); i += 2 {
			g.AddEdge(int64(pairs[i])%n, int64(pairs[i+1])%n)
		}
		var sum int64
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR round trip preserves adjacency (HasEdge iff edge present).
func TestCSRAdjacencyProperty(t *testing.T) {
	rng := xrand.New(6)
	n := int64(50)
	g := New(n)
	want := map[Edge]bool{}
	for i := 0; i < 300; i++ {
		u, v := rng.Int64n(n), rng.Int64n(n)
		if u == v {
			continue
		}
		e := Edge{u, v}.Canonical()
		if want[e] {
			continue
		}
		want[e] = true
		g.AddEdge(u, v)
	}
	c := g.ToCSR()
	for u := int64(0); u < n; u++ {
		for v := int64(0); v < n; v++ {
			if u == v {
				continue
			}
			has := c.HasEdge(u, v)
			expected := want[Edge{u, v}.Canonical()]
			if has != expected {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, has, expected)
			}
		}
	}
}

func TestGiantComponentSize(t *testing.T) {
	// Two components: a triangle and an edge, plus an isolated node.
	g := New(6)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(4, 3)
	csr := g.ToCSR()
	if got := csr.GiantComponentSize(nil); got != 3 {
		t.Fatalf("giant = %d, want 3", got)
	}
	// Excluding node 0 splits the triangle: giant becomes the pair.
	got := csr.GiantComponentSize(func(u int64) bool { return u == 0 })
	if got != 2 {
		t.Fatalf("giant without node 0 = %d, want 2", got)
	}
	// Excluding everything.
	if got := csr.GiantComponentSize(func(u int64) bool { return true }); got != 0 {
		t.Fatalf("giant with all excluded = %d", got)
	}
	// Empty graph.
	if got := New(0).ToCSR().GiantComponentSize(nil); got != 0 {
		t.Fatalf("empty giant = %d", got)
	}
}
