package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// EdgeIterator is a pull-based edge stream — the out-of-core
// counterpart of a Graph's in-memory edge slice. Implementations yield
// edges until exhausted (Next returns false), after which Err reports
// whether iteration ended cleanly or hit an error.
type EdgeIterator interface {
	Next() (Edge, bool)
	Err() error
}

// sliceIter adapts an in-memory edge slice to EdgeIterator.
type sliceIter struct {
	edges []Edge
	i     int
}

func (s *sliceIter) Next() (Edge, bool) {
	if s.i >= len(s.edges) {
		return Edge{}, false
	}
	e := s.edges[s.i]
	s.i++
	return e, true
}

func (s *sliceIter) Err() error { return nil }

// IterEdges returns an EdgeIterator over g's edge list, so code written
// against the streaming interface also accepts in-memory graphs.
func IterEdges(g *Graph) EdgeIterator { return &sliceIter{edges: g.Edges} }

// DegreesFromIterator computes the per-node degree table of an n-node
// graph from an edge stream in one pass, using 8n bytes regardless of
// the edge count — the out-of-core counterpart of Graph.Degrees.
func DegreesFromIterator(n int64, it EdgeIterator) ([]int64, error) {
	deg := make([]int64, n)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d, %d) outside [0, %d)", e.U, e.V, n)
		}
		deg[e.U]++
		deg[e.V]++
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return deg, nil
}

// WriteBinaryStream writes an n-node, m-edge graph in the binary PAGB
// format from an edge stream, without materializing the edge list. The
// output is byte-identical to WriteBinary over the same edges in the
// same order, so a streamed run's merged shards convert to exactly the
// file an in-memory run would have written. The iterator must yield
// exactly m edges (the count is part of the header).
func WriteBinaryStream(w io.Writer, n, m int64, it EdgeIterator) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		_, err := bw.Write(buf[:binary.PutUvarint(buf[:], x)])
		return err
	}
	if err := writeUvarint(uint64(n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(m)); err != nil {
		return err
	}
	var written int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if err := writeUvarint(uint64(e.U)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.V)); err != nil {
			return err
		}
		written++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if written != m {
		return fmt.Errorf("graph: stream yielded %d edges, header promised %d", written, m)
	}
	return bw.Flush()
}
