package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: arbitrary text must never panic; successful parses must
// round-trip through WriteText/ReadText.
func FuzzReadText(f *testing.F) {
	f.Add("# nodes 5\n1\t0\n2\t1\n")
	f.Add("")
	f.Add("a\tb\n")
	f.Add("1 2\n3 4\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("edge count changed: %d -> %d", g.M(), g2.M())
		}
		for i := range g.Edges {
			if g.Edges[i] != g2.Edges[i] {
				t.Fatalf("edge %d changed", i)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic or over-allocate
// fatally; valid graphs round-trip.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := New(10)
	g.AddEdge(1, 0)
	g.AddEdge(5, 2)
	_ = WriteBinary(&buf, g)
	f.Add(buf.Bytes())
	f.Add([]byte("PAGB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the declared edge count implied by the input to avoid
		// OOM on adversarial headers: ReadBinary pre-allocates, so
		// reject inputs that could not possibly contain their declared
		// edges (each edge needs >= 2 bytes).
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if int64(len(g.Edges))*2 > int64(len(data)) {
			t.Fatalf("decoded %d edges from %d bytes", len(g.Edges), len(data))
		}
	})
}
