package graph

import (
	"bytes"
	"testing"
)

func testGraph() *Graph {
	g := New(10)
	for u := int64(1); u < 10; u++ {
		g.AddEdge(u, u/2)
	}
	return g
}

func TestDegreesFromIteratorMatchesInMemory(t *testing.T) {
	g := testGraph()
	got, err := DegreesFromIterator(g.N, IterEdges(g))
	if err != nil {
		t.Fatal(err)
	}
	want := g.Degrees()
	if len(got) != len(want) {
		t.Fatalf("got %d degrees, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDegreesFromIteratorRejectsOutOfRange(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 0)
	g.AddEdge(5, 0)
	if _, err := DegreesFromIterator(g.N, IterEdges(g)); err == nil {
		t.Fatal("accepted an edge outside [0, n)")
	}
}

func TestWriteBinaryStreamByteIdentical(t *testing.T) {
	g := testGraph()
	var a, b bytes.Buffer
	if err := WriteBinary(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryStream(&b, g.N, int64(len(g.Edges)), IterEdges(g)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streamed PAGB differs from in-memory PAGB")
	}
}

func TestWriteBinaryStreamCountMismatch(t *testing.T) {
	g := testGraph()
	var b bytes.Buffer
	if err := WriteBinaryStream(&b, g.N, int64(len(g.Edges))+1, IterEdges(g)); err == nil {
		t.Fatal("accepted a stream shorter than the promised edge count")
	}
}
