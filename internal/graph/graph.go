// Package graph provides the in-memory and on-disk graph representations
// used by the generator: flat edge lists (what the parallel algorithm
// emits, shard per rank), CSR adjacency built from them (what analysis
// consumes), degree sequences, and validation of the structural invariants
// of preferential-attachment output (no self-loops, no parallel edges,
// connectivity).
package graph

import (
	"fmt"
	"sort"
	"sync"

	"pagen/internal/hist"
)

// Edge is an undirected edge between nodes U and V.
type Edge struct {
	U, V int64
}

// Canonical returns the edge with endpoints ordered U <= V, the form used
// for duplicate detection.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an undirected graph stored as an edge list over nodes
// [0, N). Parallel edges and self-loops are representable (so that
// validation can detect them) but never produced by the generators.
type Graph struct {
	N     int64
	Edges []Edge
}

// New returns an empty graph over n nodes.
func New(n int64) *Graph {
	return &Graph{N: n}
}

// M returns the number of edges.
func (g *Graph) M() int64 { return int64(len(g.Edges)) }

// AddEdge appends edge (u, v).
func (g *Graph) AddEdge(u, v int64) {
	g.Edges = append(g.Edges, Edge{U: u, V: v})
}

// Degrees returns the degree of every node (each endpoint of each edge
// counts once; a self-loop contributes 2 to its node, the usual
// convention).
func (g *Graph) Degrees() []int64 {
	deg := make([]int64, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// DegreeHistogram returns the histogram of node degrees.
func (g *Graph) DegreeHistogram() *hist.Int {
	h := hist.NewInt()
	for _, d := range g.Degrees() {
		h.Add(d)
	}
	return h
}

// CSR is a compressed sparse row adjacency structure: the neighbours of
// node u are Adj[Off[u]:Off[u+1]], sorted ascending.
type CSR struct {
	N   int64
	Off []int64
	Adj []int64
}

// ToCSR builds the CSR adjacency of g. Each undirected edge appears in
// both endpoints' neighbour lists.
func (g *Graph) ToCSR() *CSR {
	deg := g.Degrees()
	off := make([]int64, g.N+1)
	for i := int64(0); i < g.N; i++ {
		off[i+1] = off[i] + deg[i]
	}
	adj := make([]int64, off[g.N])
	cursor := make([]int64, g.N)
	copy(cursor, off[:g.N])
	for _, e := range g.Edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	c := &CSR{N: g.N, Off: off, Adj: adj}
	for u := int64(0); u < c.N; u++ {
		nb := c.Neighbors(u)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return c
}

// Neighbors returns the (sorted) neighbour slice of u; the slice aliases
// the CSR storage and must not be modified.
func (c *CSR) Neighbors(u int64) []int64 {
	return c.Adj[c.Off[u]:c.Off[u+1]]
}

// Degree returns the degree of u.
func (c *CSR) Degree(u int64) int64 {
	return c.Off[u+1] - c.Off[u]
}

// HasEdge reports whether v appears in u's neighbour list (binary search).
func (c *CSR) HasEdge(u, v int64) bool {
	nb := c.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// ConnectedComponents returns the number of connected components of c,
// treating isolated nodes as their own components. Iterative BFS; no
// recursion so billion-node graphs do not blow the stack.
func (c *CSR) ConnectedComponents() int64 {
	visited := make([]bool, c.N)
	var queue []int64
	var components int64
	for s := int64(0); s < c.N; s++ {
		if visited[s] {
			continue
		}
		components++
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range c.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return components
}

// GiantComponentSize returns the size of the largest connected component
// after deleting the nodes for which excluded returns true (excluded may
// be nil). This powers failure/attack resilience experiments on
// scale-free networks (Albert, Jeong & Barabási — the paper's
// reference [1]).
func (c *CSR) GiantComponentSize(excluded func(u int64) bool) int64 {
	if excluded == nil {
		excluded = func(int64) bool { return false }
	}
	visited := make([]bool, c.N)
	var best int64
	queue := make([]int64, 0, 1024)
	for s := int64(0); s < c.N; s++ {
		if visited[s] || excluded(s) {
			continue
		}
		size := int64(0)
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, v := range c.Neighbors(u) {
				if !visited[v] && !excluded(v) {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}

// Validate checks the structural invariants expected of
// preferential-attachment output: all endpoints in range, no self-loops,
// and no parallel (duplicate) edges. It returns a descriptive error for
// the first violation found.
func (g *Graph) Validate() error {
	seen := make(map[Edge]struct{}, len(g.Edges))
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("graph: edge %d (%d,%d) endpoint outside [0,%d)", i, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at node %d", i, e.U)
		}
		c := e.Canonical()
		if _, dup := seen[c]; dup {
			return fmt.Errorf("graph: edge %d (%d,%d) is a parallel edge", i, e.U, e.V)
		}
		seen[c] = struct{}{}
	}
	return nil
}

// parallelMergeMin is the edge count below which Merge copies serially:
// goroutine launch overhead beats memcpy for small graphs.
const parallelMergeMin = 1 << 17

// Merge gathers the edges of shards into a single graph over n nodes —
// how per-rank edge shards from a distributed run are combined. Shard
// order is preserved. The destination is allocated once at its exact
// size from prefix-summed shard offsets, and large merges copy the
// shards concurrently (each shard's destination range is disjoint), so
// the final gather is bandwidth-bound instead of serial-append-bound.
func Merge(n int64, shards ...[]Edge) *Graph {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	g := &Graph{N: n, Edges: make([]Edge, total)}
	if total >= parallelMergeMin && len(shards) > 1 {
		var wg sync.WaitGroup
		off := 0
		for _, s := range shards {
			if len(s) == 0 {
				continue
			}
			wg.Add(1)
			go func(dst, src []Edge) {
				defer wg.Done()
				copy(dst, src)
			}(g.Edges[off:off+len(s)], s)
			off += len(s)
		}
		wg.Wait()
		return g
	}
	off := 0
	for _, s := range shards {
		copy(g.Edges[off:], s)
		off += len(s)
	}
	return g
}
