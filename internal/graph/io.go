package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk formats:
//
//   - Text: one "u<TAB>v" line per edge, preceded by a "# nodes N" header
//     line. Interoperable with common edge-list tooling.
//   - Binary: magic "PAGB", a uvarint node count and edge count, then
//     per-edge delta-friendly uvarint pairs. Compact enough for
//     multi-hundred-million-edge graphs.

const binaryMagic = "PAGB"

// WriteText writes g in text edge-list format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.N); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads a graph in the format written by WriteText. Lines that
// are empty or start with '#' (other than the node header) are skipped.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{N: -1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int64
			if _, err := fmt.Sscanf(line, "# nodes %d", &n); err == nil {
				g.N = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		g.Edges = append(g.Edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.N < 0 {
		// No header: infer from the largest endpoint.
		var max int64 = -1
		for _, e := range g.Edges {
			if e.U > max {
				max = e.U
			}
			if e.V > max {
				max = e.V
			}
		}
		g.N = max + 1
	}
	return g, nil
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(g.N)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(g.Edges))); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if err := writeUvarint(uint64(e.U)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.V)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	m, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	// Cap the initial allocation: a corrupt or adversarial header can
	// declare an absurd edge count, so grow incrementally instead of
	// trusting it (each encoded edge is at least 2 bytes, so truncated
	// inputs fail fast below).
	capHint := m
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	g := &Graph{N: int64(n), Edges: make([]Edge, 0, capHint)}
	for i := uint64(0); i < m; i++ {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		g.Edges = append(g.Edges, Edge{U: int64(u), V: int64(v)})
	}
	return g, nil
}
