package graph

import (
	"bytes"
	"strings"
	"testing"

	"pagen/internal/xrand"
)

func randomGraph(seed uint64, n int64, m int) *Graph {
	rng := xrand.New(seed)
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Int64n(n), rng.Int64n(n))
	}
	return g
}

func equalGraphs(a, b *Graph) bool {
	if a.N != b.N || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(1, 1000, 5000)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, got) {
		t.Fatal("text round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(2, 1<<40, 2000) // huge ids exercise varint widths
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, got) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	g := New(42)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 42 || got.M() != 0 {
		t.Fatalf("empty round trip: N=%d M=%d", got.N, got.M())
	}
}

func TestReadTextNoHeaderInfersN(t *testing.T) {
	g, err := ReadText(strings.NewReader("0\t5\n2\t3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 6 {
		t.Fatalf("inferred N = %d, want 6", g.N)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# nodes 10\n\n# a comment\n1\t2\n\n3\t4\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"1\n",       // one field
		"1\t2\t3\n", // three fields
		"a\t2\n",    // non-numeric u
		"1\tb\n",    // non-numeric v
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadTextEmptyInput(t *testing.T) {
	g, err := ReadText(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || g.M() != 0 {
		t.Fatalf("empty input: N=%d M=%d", g.N, g.M())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty binary accepted")
	}
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated edge section.
	g := randomGraph(3, 100, 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	g := randomGraph(4, 1_000_000, 20000)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, g); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bb.Len(), tb.Len())
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	g := randomGraph(5, 1_000_000, 100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToCSR(b *testing.B) {
	g := randomGraph(6, 100_000, 400_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ToCSR()
	}
}
