package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := int64(100)
	shards := [][]Edge{
		{{U: 1, V: 0}, {U: 2, V: 1}},
		{{U: 3, V: 0}},
		{}, // empty shard is legal
	}
	for r, edges := range shards {
		if err := WriteShard(dir, r, 3, n, edges); err != nil {
			t.Fatal(err)
		}
	}
	g, err := ReadShards(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != n || g.M() != 3 {
		t.Fatalf("merged N=%d M=%d", g.N, g.M())
	}
	want := []Edge{{1, 0}, {2, 1}, {3, 0}}
	for i, e := range want {
		if g.Edges[i] != e {
			t.Fatalf("edges = %v", g.Edges)
		}
	}
}

func TestShardPathNaming(t *testing.T) {
	p := ShardPath("/data", 3, 16)
	if filepath.Base(p) != "shard-3-of-16.pag" {
		t.Fatalf("path = %q", p)
	}
}

func TestWriteShardCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deeper")
	if err := WriteShard(dir, 0, 1, 10, []Edge{{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ShardPath(dir, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteShardRejectsBadRank(t *testing.T) {
	if err := WriteShard(t.TempDir(), 5, 3, 10, nil); err == nil {
		t.Fatal("rank 5 of 3 accepted")
	}
	if err := WriteShard(t.TempDir(), -1, 3, 10, nil); err == nil {
		t.Fatal("rank -1 accepted")
	}
}

func TestReadShardsErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadShards(dir, 0); err == nil {
		t.Error("p=0 accepted")
	}
	// Missing shard.
	if err := WriteShard(dir, 0, 2, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShards(dir, 2); err == nil {
		t.Error("missing shard 1 accepted")
	}
	// Mismatched node counts.
	if err := WriteShard(dir, 1, 2, 99, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShards(dir, 2); err == nil {
		t.Error("mismatched n accepted")
	}
}
