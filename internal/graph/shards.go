package graph

import (
	"fmt"
	"os"
	"path/filepath"
)

// Shard I/O implements the paper's I/O model (Section 2): processors
// share a file system and read/write data files independently. Each rank
// writes its own edge shard; a reader merges them. File layout:
//
//	dir/shard-<rank>-of-<P>.pag
//
// in the binary format of WriteBinary, each shard carrying the global
// node count.

// ShardPath returns the path of rank's shard file under dir.
func ShardPath(dir string, rank, p int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.pag", rank, p))
}

// WriteShard writes one rank's edges to its shard file under dir,
// creating dir if needed.
func WriteShard(dir string, rank, p int, n int64, edges []Edge) error {
	if rank < 0 || rank >= p {
		return fmt.Errorf("graph: shard rank %d outside [0,%d)", rank, p)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(ShardPath(dir, rank, p))
	if err != nil {
		return err
	}
	if err := WriteBinary(f, &Graph{N: n, Edges: edges}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadShards reads and merges all P shards under dir. It verifies every
// shard declares the same node count.
func ReadShards(dir string, p int) (*Graph, error) {
	if p < 1 {
		return nil, fmt.Errorf("graph: shard count %d, want >= 1", p)
	}
	shards := make([][]Edge, p)
	var n int64 = -1
	for rank := 0; rank < p; rank++ {
		f, err := os.Open(ShardPath(dir, rank, p))
		if err != nil {
			return nil, fmt.Errorf("graph: shard %d: %w", rank, err)
		}
		sg, err := ReadBinary(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("graph: shard %d: %w", rank, err)
		}
		if n == -1 {
			n = sg.N
		} else if sg.N != n {
			return nil, fmt.Errorf("graph: shard %d declares n = %d, others %d", rank, sg.N, n)
		}
		shards[rank] = sg.Edges
	}
	return Merge(n, shards...), nil
}
