package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// StreamConfig describes one streamed-run benchmark: a single
// generation with Options.StreamDir set, measured for throughput and
// peak resident memory rather than hot-path constant factors.
type StreamConfig struct {
	N          int64
	X          int
	P          float64 // 0 means 0.5
	Ranks      int
	Workers    int // 0 means 1
	Seed       uint64
	Dir        string // shard directory (must exist or be creatable)
	BlockEdges int    // records per flushed block; 0 = esink default
}

// StreamReport is the record written to BENCH_stream.json: the evidence
// that the external-memory sink keeps resident memory bounded at paper
// scale. PeakRSSBytes is the process VmHWM, so the run should be the
// dominant allocation in the process (pa-hotpath -stream-dir arranges
// that). InMemoryEstBytes is what the same run would need with the
// materialised edge list, per pagen.MemoryEstimate's formula.
type StreamReport struct {
	Label     string  `json:"label"`
	GoVersion string  `json:"go_version"`
	N         int64   `json:"n"`
	X         int     `json:"x"`
	P         float64 `json:"p"`
	Scheme    string  `json:"scheme"`
	Seed      uint64  `json:"seed"`
	Ranks     int     `json:"ranks"`
	Workers   int     `json:"workers"`

	Edges       int64   `json:"edges"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	EdgesPerSec float64 `json:"edges_per_sec"`

	SinkBlocks       int64   `json:"sink_blocks_flushed"`
	SinkBytes        int64   `json:"sink_bytes_written"`
	SinkFsyncs       int64   `json:"sink_fsyncs"`
	BytesPerEdge     float64 `json:"sink_bytes_per_edge"`
	BlockEdges       int     `json:"stream_block_edges"`
	PeakRSSBytes     int64   `json:"peak_rss_bytes,omitempty"`
	InMemoryEstBytes int64   `json:"in_memory_est_bytes"`
}

// StreamBench runs one streamed generation and reports throughput, sink
// counters and the process peak RSS.
func StreamBench(cfg StreamConfig) (StreamReport, error) {
	p := cfg.P
	if p == 0 {
		p = 0.5
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	rep := StreamReport{
		GoVersion: runtime.Version(),
		N:         cfg.N, X: cfg.X, P: p,
		Scheme: "RRP", Seed: cfg.Seed,
		Ranks: cfg.Ranks, Workers: workers,
		BlockEdges: cfg.BlockEdges,
	}
	pr := model.Params{N: cfg.N, X: cfg.X, P: p}
	if err := pr.Validate(); err != nil {
		return rep, err
	}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("bench: stream benchmark needs a shard directory")
	}
	part, err := partition.New(partition.KindRRP, cfg.N, cfg.Ranks)
	if err != nil {
		return rep, err
	}
	start := time.Now()
	res, err := core.Run(core.Options{
		Params: pr, Part: part, Seed: cfg.Seed, Workers: workers,
		StreamDir: cfg.Dir, StreamBlockEdges: cfg.BlockEdges,
	}, false)
	elapsed := time.Since(start)
	if err != nil {
		return rep, err
	}
	for _, st := range res.Ranks {
		rep.Edges += st.Edges
		rep.SinkBlocks += st.SinkBlocks
		rep.SinkBytes += st.SinkBytes
		rep.SinkFsyncs += st.SinkFsyncs
	}
	rep.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		rep.EdgesPerSec = float64(rep.Edges) / elapsed.Seconds()
	}
	if rep.Edges > 0 {
		rep.BytesPerEdge = float64(rep.SinkBytes) / float64(rep.Edges)
	}
	rep.PeakRSSBytes = PeakRSS()
	rep.InMemoryEstBytes = inMemoryEstimate(pr, cfg.Ranks)
	return rep, nil
}

// inMemoryEstimate mirrors pagen.MemoryEstimate for a non-streamed run:
// the F tables plus the materialised edge list the sink exists to avoid.
func inMemoryEstimate(pr model.Params, ranks int) int64 {
	slots := (pr.N - int64(pr.X)) * int64(pr.X)
	est := slots * 8
	est += pr.M() * 16
	est += pr.M() * 16 / 4
	if ranks < 1 {
		ranks = 1
	}
	est += int64(ranks) * 1 << 16
	return est
}

// PeakRSS returns the process resident-set high-water mark in bytes
// (VmHWM from /proc/self/status), or 0 where the proc file is
// unavailable (non-Linux).
func PeakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// WriteStreamJSON writes the streamed-run benchmark record.
func WriteStreamJSON(w io.Writer, rep StreamReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteStream prints the streamed-run benchmark as a human summary.
func WriteStream(w io.Writer, rep StreamReport) error {
	_, err := fmt.Fprintf(w,
		"stream bench: n=%d x=%d ranks=%d workers=%d seed=%d\n"+
			"  edges         %d\n"+
			"  elapsed       %.1f ms (%.3g edges/s)\n"+
			"  shard bytes   %d (%.2f B/edge, %d blocks, %d fsyncs)\n"+
			"  peak RSS      %d bytes\n"+
			"  in-mem est    %d bytes\n",
		rep.N, rep.X, rep.Ranks, rep.Workers, rep.Seed,
		rep.Edges, rep.ElapsedMS, rep.EdgesPerSec,
		rep.SinkBytes, rep.BytesPerEdge, rep.SinkBlocks, rep.SinkFsyncs,
		rep.PeakRSSBytes, rep.InMemoryEstBytes)
	return err
}
