package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// RecomputePoint is one measured configuration of the resolve-mode
// experiment: the cross-rank traffic and wall time of a run at a fixed
// (resolve mode, hub setting) pair. DataMsgs counts request + resolved
// messages — the round trips recompute mode exists to eliminate;
// publishes stay in the byte totals so BytesPerEdge is honest.
type RecomputePoint struct {
	Ranks     int    `json:"ranks"`
	Mode      string `json:"mode"` // "wire", "hub", "recompute"
	HubPrefix int64  `json:"hub_prefix"`
	Edges     int64  `json:"edges"`
	DataMsgs  int64  `json:"data_msgs"`
	Publishes int64  `json:"publishes,omitempty"`
	BytesSent int64  `json:"bytes_sent"`

	RecomputeResolved int64 `json:"recompute_resolved,omitempty"`
	RecomputeFallback int64 `json:"recompute_fallback,omitempty"`
	ReplayedEdges     int64 `json:"replayed_edges,omitempty"`
	// Replay-depth quantiles (nodes replayed per resolved chain) — the
	// empirical counterpart of the Theorem 3.3 O(log n) chain bound.
	ReplayDepthP50 int64 `json:"replay_depth_p50,omitempty"`
	ReplayDepthP99 int64 `json:"replay_depth_p99,omitempty"`
	ReplayDepthMax int64 `json:"replay_depth_max,omitempty"`

	MsgsPerEdge  float64 `json:"msgs_per_edge"`
	BytesPerEdge float64 `json:"bytes_per_edge"`
	NsPerEdge    float64 `json:"ns_per_edge"`
}

// RecomputeReport is the trajectory record written to
// BENCH_recompute.json: recompute mode versus the wire baseline and the
// hub-prefix cache at each rank count.
type RecomputeReport struct {
	Label     string           `json:"label"`
	GoVersion string           `json:"go_version"`
	N         int64            `json:"n"`
	X         int              `json:"x"`
	P         float64          `json:"p"`
	Scheme    string           `json:"scheme"`
	Seed      uint64           `json:"seed"`
	DepthCap  int              `json:"depth_cap"` // effective recompute depth cap
	Points    []RecomputePoint `json:"points"`
}

// RecomputeConfig describes a resolve-mode sweep: for each rank count,
// a wire baseline (hub off), a hub-cache run (auto H), and a recompute
// run (hub off — replay replaces both the round trips and the replica).
type RecomputeConfig struct {
	N       int64
	X       int
	P       float64 // 0 means 0.5
	Ranks   []int
	Workers int // 0 means 1
	Seed    uint64
	Depth   int // recompute depth cap; 0 = auto
}

// RecomputeSweep runs the resolve-mode experiment. Message and byte
// counts are deterministic for a fixed configuration; ns/edge is a
// single-run timing indication, not a statistical benchmark.
func RecomputeSweep(cfg RecomputeConfig) (RecomputeReport, error) {
	p := cfg.P
	if p == 0 {
		p = 0.5
	}
	rep := RecomputeReport{
		GoVersion: runtime.Version(),
		N:         cfg.N, X: cfg.X, P: p,
		Scheme: "RRP", Seed: cfg.Seed,
		DepthCap: cfg.Depth,
	}
	if rep.DepthCap == 0 {
		rep.DepthCap = core.DefaultRecomputeDepth(cfg.N)
	}
	pr := model.Params{N: cfg.N, X: cfg.X, P: p}
	if err := pr.Validate(); err != nil {
		return rep, err
	}
	for _, ranks := range cfg.Ranks {
		part, err := partition.New(partition.KindRRP, cfg.N, ranks)
		if err != nil {
			return rep, err
		}
		runs := []struct {
			mode core.ResolveMode
			hub  int64
			name string
		}{
			{core.ResolveWire, -1, "wire"},
			{core.ResolveWire, 0, "hub"},
			{core.ResolveRecompute, -1, "recompute"},
		}
		for _, r := range runs {
			pt, err := recomputePoint(pr, part, cfg.Seed, cfg.Workers, r.hub, r.mode, cfg.Depth)
			if err != nil {
				return rep, err
			}
			pt.Mode = r.name
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

func recomputePoint(pr model.Params, part partition.Scheme, seed uint64, workers int,
	hub int64, mode core.ResolveMode, depth int) (RecomputePoint, error) {
	start := time.Now()
	res, err := core.Run(core.Options{
		Params: pr, Part: part, Seed: seed,
		Workers: workers, HubPrefix: hub,
		Resolve: mode, RecomputeDepth: depth,
	}, false)
	if err != nil {
		return RecomputePoint{}, err
	}
	elapsed := time.Since(start)
	pt := RecomputePoint{Ranks: part.P(), HubPrefix: hub}
	depthHist := res.Ranks[0].ReplayDepth
	for i, st := range res.Ranks {
		pt.Edges += st.Edges
		pt.DataMsgs += st.Comm.RequestsSent + st.Comm.ResolvedSent
		pt.Publishes += st.Comm.PublishSent
		pt.BytesSent += st.Comm.BytesSent
		pt.RecomputeResolved += st.RecomputeResolved
		pt.RecomputeFallback += st.RecomputeFallback
		pt.ReplayedEdges += st.ReplayedEdges
		if i > 0 {
			depthHist.Merge(st.ReplayDepth)
		}
	}
	if depthHist.Count > 0 {
		pt.ReplayDepthP50 = depthHist.Quantile(0.5)
		pt.ReplayDepthP99 = depthHist.Quantile(0.99)
		pt.ReplayDepthMax = depthHist.Max
	}
	if pt.Edges > 0 {
		pt.MsgsPerEdge = float64(pt.DataMsgs) / float64(pt.Edges)
		pt.BytesPerEdge = float64(pt.BytesSent) / float64(pt.Edges)
		pt.NsPerEdge = float64(elapsed.Nanoseconds()) / float64(pt.Edges)
	}
	return pt, nil
}

// WriteRecomputeJSON writes the resolve-mode trajectory file.
func WriteRecomputeJSON(w io.Writer, rep RecomputeReport) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Current    *RecomputeReport `json:"current"`
	}{Experiment: "recompute", Current: &rep}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteRecompute prints a resolve-mode report as a TSV table.
func WriteRecompute(w io.Writer, rep RecomputeReport) error {
	if _, err := fmt.Fprintln(w, "ranks\tmode\tedges\tdata_msgs\tpublishes\treplayed\tfallbacks\tdepth_p50\tdepth_p99\tmsgs_per_edge\tbytes_per_edge\tns_per_edge"); err != nil {
		return err
	}
	for _, pt := range rep.Points {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.2f\t%.1f\n",
			pt.Ranks, pt.Mode, pt.Edges, pt.DataMsgs, pt.Publishes,
			pt.RecomputeResolved, pt.RecomputeFallback,
			pt.ReplayDepthP50, pt.ReplayDepthP99,
			pt.MsgsPerEdge, pt.BytesPerEdge, pt.NsPerEdge); err != nil {
			return err
		}
	}
	return nil
}
