// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 4). Each Fig*/
// experiment function produces the same rows/series the paper plots; the
// cmd/pa-* tools print them and bench_test.go at the module root runs
// them under `go test -bench`. EXPERIMENTS.md records paper-reported
// versus measured values.
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"pagen/internal/analysis"
	"pagen/internal/core"
	"pagen/internal/loadmodel"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
)

// Fig3Row compares the exact Eqn-10 partition boundary with the LCP
// linear approximation at one rank (paper Figure 3).
type Fig3Row struct {
	Rank     int
	ExactLo  int64 // first node of the exact partition
	LinearLo int64 // first node of the LCP partition
	ExactSz  int64
	LinearSz int64
}

// Fig3 computes exact-vs-linear partition boundaries.
func Fig3(n int64, p int, b float64) []Fig3Row {
	exact := partition.NewExactCP(n, p, b)
	lcp := partition.NewLCP(n, p, b)
	rows := make([]Fig3Row, p)
	for i := 0; i < p; i++ {
		elo, _ := exact.Range(i)
		llo, _ := lcp.Range(i)
		rows[i] = Fig3Row{
			Rank: i, ExactLo: elo, LinearLo: llo,
			ExactSz: exact.Size(i), LinearSz: lcp.Size(i),
		}
	}
	return rows
}

// WriteFig3 prints Fig3 rows as a TSV table.
func WriteFig3(w io.Writer, rows []Fig3Row) error {
	if _, err := fmt.Fprintln(w, "rank\texact_start\tlinear_start\texact_size\tlinear_size"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n", r.Rank, r.ExactLo, r.LinearLo, r.ExactSz, r.LinearSz); err != nil {
			return err
		}
	}
	return nil
}

// Fig4Result is the degree-distribution experiment output (paper
// Figure 4: log-log degree distribution, gamma ~ 2.7 at n=1e9, x=4).
type Fig4Result struct {
	Report  analysis.DegreeReport
	Elapsed time.Duration
}

// Fig4 generates a network in parallel and analyses its degree
// distribution.
func Fig4(pr model.Params, kind partition.Kind, p int, seed uint64) (Fig4Result, error) {
	part, err := partition.New(kind, pr.N, p)
	if err != nil {
		return Fig4Result{}, err
	}
	res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed}, false)
	if err != nil {
		return Fig4Result{}, err
	}
	rep, err := analysis.AnalyzeDegrees(res.Graph, int64(2*pr.X))
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{Report: rep, Elapsed: res.Elapsed}, nil
}

// ScalingRow is one point of a strong- or weak-scaling series
// (paper Figures 5 and 6).
type ScalingRow struct {
	Scheme string
	P      int
	N      int64
	X      int
	// Elapsed is the measured wall time of the parallel section.
	Elapsed time.Duration
	// SeqElapsed is the sequential copy-model baseline time (T_s).
	SeqElapsed time.Duration
	// WallSpeedup is T_s / T_p measured; on a single-core host this
	// saturates near 1 regardless of P (see DESIGN.md).
	WallSpeedup float64
	// ModelSpeedup is the load-model prediction, the series whose shape
	// reproduces Figures 5-6.
	ModelSpeedup float64
	// Imbalance is max rank load / mean rank load.
	Imbalance float64
	// EdgesPerSec is measured generation throughput.
	EdgesPerSec float64
}

// StrongScaling runs the fixed-problem-size sweep of Figure 5 for each
// scheme and rank count, measuring against the sequential copy model.
func StrongScaling(pr model.Params, kinds []partition.Kind, ps []int, seed uint64) ([]ScalingRow, error) {
	seqStart := time.Now()
	if _, _, err := seq.CopyModel(pr, seed, seq.CopyModelOptions{}); err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)

	var rows []ScalingRow
	for _, kind := range kinds {
		for _, p := range ps {
			row, err := scalePoint(pr, kind, p, seed, seqElapsed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WeakScaling runs the fixed-work-per-rank sweep of Figure 6: for each
// rank count p, a network with edgesPerRank*p edges is generated (the
// paper uses 1e7 edges per processor).
func WeakScaling(edgesPerRank int64, x int, prob float64, kinds []partition.Kind, ps []int, seed uint64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, kind := range kinds {
		for _, p := range ps {
			n := edgesPerRank*int64(p)/int64(x) + int64(x)
			pr := model.Params{N: n, X: x, P: prob}
			if err := pr.Validate(); err != nil {
				return nil, err
			}
			seqStart := time.Now()
			if _, _, err := seq.CopyModel(pr, seed, seq.CopyModelOptions{}); err != nil {
				return nil, err
			}
			seqElapsed := time.Since(seqStart)
			row, err := scalePoint(pr, kind, p, seed, seqElapsed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func scalePoint(pr model.Params, kind partition.Kind, p int, seed uint64, seqElapsed time.Duration) (ScalingRow, error) {
	part, err := partition.New(kind, pr.N, p)
	if err != nil {
		return ScalingRow{}, err
	}
	// Figure 5 models the baseline message pattern: the hub-prefix cache
	// elides exactly the hub-request concentration that separates the
	// partition schemes, so the figure experiments pin it off.
	res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed, HubPrefix: -1}, false)
	if err != nil {
		return ScalingRow{}, err
	}
	rep, err := loadmodel.Analyze(pr, res.Ranks, loadmodel.Default)
	if err != nil {
		return ScalingRow{}, err
	}
	row := ScalingRow{
		Scheme:       kind.String(),
		P:            p,
		N:            pr.N,
		X:            pr.X,
		Elapsed:      res.Elapsed,
		SeqElapsed:   seqElapsed,
		ModelSpeedup: rep.Speedup,
		Imbalance:    rep.Imbalance,
		EdgesPerSec:  float64(res.Graph.M()) / res.Elapsed.Seconds(),
	}
	if res.Elapsed > 0 {
		row.WallSpeedup = seqElapsed.Seconds() / res.Elapsed.Seconds()
	}
	return row, nil
}

// WriteScaling prints scaling rows as a TSV table.
func WriteScaling(w io.Writer, rows []ScalingRow) error {
	if _, err := fmt.Fprintln(w, "scheme\tP\tn\tx\twall_ms\tseq_ms\twall_speedup\tmodel_speedup\timbalance\tedges_per_sec"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.3f\t%.3g\n",
			r.Scheme, r.P, r.N, r.X,
			float64(r.Elapsed.Microseconds())/1000, float64(r.SeqElapsed.Microseconds())/1000,
			r.WallSpeedup, r.ModelSpeedup, r.Imbalance, r.EdgesPerSec); err != nil {
			return err
		}
	}
	return nil
}

// Fig7Row is one rank's load measurements under one scheme (paper
// Figure 7 a-d: node, outgoing-message, incoming-message and total-load
// distributions for UCP/LCP/RRP).
type Fig7Row struct {
	Scheme   string
	Rank     int
	Nodes    int64
	Outgoing int64 // request messages sent
	Incoming int64 // request messages received
	Total    int64 // paper Section 4.6.3 measure
}

// Fig7 measures per-rank distributions for each scheme. The paper uses
// n=1e8, x=10, P=160; callers scale n to their budget.
func Fig7(pr model.Params, kinds []partition.Kind, p int, seed uint64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, kind := range kinds {
		part, err := partition.New(kind, pr.N, p)
		if err != nil {
			return nil, err
		}
		// Per-rank load is a baseline-pattern measurement; pin the
		// hub-prefix cache off (see scalePoint).
		res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed, HubPrefix: -1}, false)
		if err != nil {
			return nil, err
		}
		for _, st := range res.Ranks {
			rows = append(rows, Fig7Row{
				Scheme:   kind.String(),
				Rank:     st.Rank,
				Nodes:    st.Nodes,
				Outgoing: st.Comm.RequestsSent,
				Incoming: st.Comm.RequestsRecv,
				Total:    st.TotalLoad(),
			})
		}
	}
	return rows, nil
}

// WriteFig7 prints Fig7 rows as a TSV table.
func WriteFig7(w io.Writer, rows []Fig7Row) error {
	if _, err := fmt.Fprintln(w, "scheme\trank\tnodes\toutgoing\tincoming\ttotal_load"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Scheme, r.Rank, r.Nodes, r.Outgoing, r.Incoming, r.Total); err != nil {
			return err
		}
	}
	return nil
}

// XRow is one point of the x-sweep experiment (the paper's setup varies
// x from 4 to 10, Section 4.1): how per-edge cost and traffic scale with
// the attachment count.
type XRow struct {
	X           int
	N           int64
	Edges       int64
	Elapsed     time.Duration
	EdgesPerSec float64
	// MsgsPerEdge is total request+resolved messages per generated edge.
	MsgsPerEdge float64
	// RetriesPerEdge is duplicate retries per edge (grows with x: more
	// slots per node to collide with).
	RetriesPerEdge float64
}

// XSweep measures generation behaviour across the paper's x range.
func XSweep(n int64, xs []int, prob float64, p int, seed uint64) ([]XRow, error) {
	var rows []XRow
	for _, x := range xs {
		pr := model.Params{N: n, X: x, P: prob}
		if err := pr.Validate(); err != nil {
			return nil, err
		}
		part, err := partition.New(partition.KindRRP, n, p)
		if err != nil {
			return nil, err
		}
		// Message counts are a baseline-pattern measurement; pin the
		// hub-prefix cache off (see scalePoint).
		res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed, HubPrefix: -1}, false)
		if err != nil {
			return nil, err
		}
		var msgs, retries int64
		for _, st := range res.Ranks {
			msgs += st.Comm.RequestsSent + st.Comm.ResolvedSent
			retries += st.Retries
		}
		m := res.Graph.M()
		rows = append(rows, XRow{
			X: x, N: n, Edges: m, Elapsed: res.Elapsed,
			EdgesPerSec:    float64(m) / res.Elapsed.Seconds(),
			MsgsPerEdge:    float64(msgs) / float64(m),
			RetriesPerEdge: float64(retries) / float64(m),
		})
	}
	return rows, nil
}

// WriteXSweep prints x-sweep rows as a TSV table.
func WriteXSweep(w io.Writer, rows []XRow) error {
	if _, err := fmt.Fprintln(w, "x\tn\tedges\twall_ms\tedges_per_sec\tmsgs_per_edge\tretries_per_edge"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%.1f\t%.3g\t%.3f\t%.5f\n",
			r.X, r.N, r.Edges, float64(r.Elapsed.Microseconds())/1000,
			r.EdgesPerSec, r.MsgsPerEdge, r.RetriesPerEdge); err != nil {
			return err
		}
	}
	return nil
}

// HeadlineResult reports the Section 4.5 large-network experiment:
// the paper generates 50B edges (n=1B, x=5) in 123 s on 768 processors;
// here the size is scaled to the host.
type HeadlineResult struct {
	N           int64
	X           int
	P           int
	Edges       int64
	Elapsed     time.Duration
	EdgesPerSec float64
}

// Headline generates the largest configured network with RRP (the scheme
// the paper uses for its record run) and reports throughput.
func Headline(pr model.Params, p int, seed uint64) (HeadlineResult, error) {
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		return HeadlineResult{}, err
	}
	res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed}, false)
	if err != nil {
		return HeadlineResult{}, err
	}
	return HeadlineResult{
		N: pr.N, X: pr.X, P: p,
		Edges:       res.Graph.M(),
		Elapsed:     res.Elapsed,
		EdgesPerSec: float64(res.Graph.M()) / res.Elapsed.Seconds(),
	}, nil
}

// ChainResult validates Theorem 3.3 empirically (dependency-chain
// lengths versus the log n bounds).
type ChainResult struct {
	N        int64
	Mean     float64
	Max      int32
	LogN     float64
	FiveLogN float64
}

// Chains runs the chain-length experiment on a sequential trace.
func Chains(pr model.Params, seed uint64) (ChainResult, error) {
	_, tr, err := seq.CopyModel(pr, seed, seq.CopyModelOptions{RecordTrace: true})
	if err != nil {
		return ChainResult{}, err
	}
	st := analysis.SummarizeChains(analysis.DependencyChainLengths(tr))
	ln := math.Log(float64(pr.N))
	return ChainResult{N: pr.N, Mean: st.Mean, Max: st.Max, LogN: ln, FiveLogN: 5 * ln}, nil
}
