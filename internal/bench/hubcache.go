package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// HubCachePoint is one measured configuration of the hub-cache
// experiment: the cross-rank traffic of a run at a fixed hub-prefix
// setting. DataMsgs counts request + resolved messages — the round-trip
// traffic the cache exists to elide; publishes (the replication
// overhead the cache pays instead) are reported separately, and the
// byte counters include them, so BytesPerEdge is an honest total.
type HubCachePoint struct {
	Ranks     int   `json:"ranks"`
	HubPrefix int64 `json:"hub_prefix"` // -1 = cache off, 0 = auto-sized
	Edges     int64 `json:"edges"`
	DataMsgs  int64 `json:"data_msgs"`
	Publishes int64 `json:"publishes,omitempty"`
	HubHits   int64 `json:"hub_hits,omitempty"`
	Coalesced int64 `json:"req_coalesced,omitempty"`
	BytesSent int64 `json:"bytes_sent"`

	MsgsPerEdge  float64 `json:"msgs_per_edge"`
	BytesPerEdge float64 `json:"bytes_per_edge"`
}

// HubCacheReduction compares a cache-on point against the cache-off
// baseline at the same rank count.
type HubCacheReduction struct {
	Ranks            int     `json:"ranks"`
	HubPrefix        int64   `json:"hub_prefix"`
	MsgsPerEdgeOff   float64 `json:"msgs_per_edge_off"`
	MsgsPerEdgeOn    float64 `json:"msgs_per_edge_on"`
	MsgsReductionPct float64 `json:"msgs_reduction_pct"`
	BytesPerEdgeOff  float64 `json:"bytes_per_edge_off"`
	BytesPerEdgeOn   float64 `json:"bytes_per_edge_on"`
	// BytesReductionPct is negative when the publish traffic outweighs
	// the elided round trips (small runs replicate proportionally more).
	BytesReductionPct float64 `json:"bytes_reduction_pct"`
}

// HubCacheReport is the trajectory record written to
// BENCH_hubcache.json: before/after traffic of the hub-prefix cache.
type HubCacheReport struct {
	Label      string              `json:"label"`
	GoVersion  string              `json:"go_version"`
	N          int64               `json:"n"`
	X          int                 `json:"x"`
	P          float64             `json:"p"`
	Scheme     string              `json:"scheme"`
	Seed       uint64              `json:"seed"`
	Points     []HubCachePoint     `json:"points"`
	Reductions []HubCacheReduction `json:"reductions"`
}

// HubCacheConfig describes a hub-cache sweep: for each rank count, one
// cache-off baseline run plus one run per entry of HubPrefixes.
type HubCacheConfig struct {
	N           int64
	X           int
	P           float64 // 0 means 0.5
	Ranks       []int
	Workers     int // 0 means 1
	Seed        uint64
	HubPrefixes []int64 // cache-on settings; 0 = auto-sized
}

// HubCacheSweep runs the hub-cache before/after experiment. Message and
// byte counts are deterministic for a fixed configuration, so a single
// run per point suffices (this is a traffic census, not a timing
// benchmark).
func HubCacheSweep(cfg HubCacheConfig) (HubCacheReport, error) {
	p := cfg.P
	if p == 0 {
		p = 0.5
	}
	rep := HubCacheReport{
		GoVersion: runtime.Version(),
		N:         cfg.N, X: cfg.X, P: p,
		Scheme: "RRP", Seed: cfg.Seed,
	}
	pr := model.Params{N: cfg.N, X: cfg.X, P: p}
	if err := pr.Validate(); err != nil {
		return rep, err
	}
	hubs := cfg.HubPrefixes
	if len(hubs) == 0 {
		hubs = []int64{0}
	}
	for _, ranks := range cfg.Ranks {
		part, err := partition.New(partition.KindRRP, cfg.N, ranks)
		if err != nil {
			return rep, err
		}
		off, err := hubCachePoint(pr, part, cfg.Seed, cfg.Workers, -1)
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, off)
		for _, hp := range hubs {
			if hp < 0 {
				continue // the off baseline is always measured
			}
			on, err := hubCachePoint(pr, part, cfg.Seed, cfg.Workers, hp)
			if err != nil {
				return rep, err
			}
			rep.Points = append(rep.Points, on)
			red := HubCacheReduction{
				Ranks:           ranks,
				HubPrefix:       hp,
				MsgsPerEdgeOff:  off.MsgsPerEdge,
				MsgsPerEdgeOn:   on.MsgsPerEdge,
				BytesPerEdgeOff: off.BytesPerEdge,
				BytesPerEdgeOn:  on.BytesPerEdge,
			}
			if off.MsgsPerEdge > 0 {
				red.MsgsReductionPct = 100 * (1 - on.MsgsPerEdge/off.MsgsPerEdge)
			}
			if off.BytesPerEdge > 0 {
				red.BytesReductionPct = 100 * (1 - on.BytesPerEdge/off.BytesPerEdge)
			}
			rep.Reductions = append(rep.Reductions, red)
		}
	}
	return rep, nil
}

func hubCachePoint(pr model.Params, part partition.Scheme, seed uint64, workers int, hub int64) (HubCachePoint, error) {
	res, err := core.Run(core.Options{
		Params: pr, Part: part, Seed: seed,
		Workers: workers, HubPrefix: hub,
	}, false)
	if err != nil {
		return HubCachePoint{}, err
	}
	pt := HubCachePoint{Ranks: part.P(), HubPrefix: hub}
	for _, st := range res.Ranks {
		pt.Edges += st.Edges
		pt.DataMsgs += st.Comm.RequestsSent + st.Comm.ResolvedSent
		pt.Publishes += st.Comm.PublishSent
		pt.HubHits += st.HubCacheHits
		pt.Coalesced += st.ReqCoalesced
		pt.BytesSent += st.Comm.BytesSent
	}
	if pt.Edges > 0 {
		pt.MsgsPerEdge = float64(pt.DataMsgs) / float64(pt.Edges)
		pt.BytesPerEdge = float64(pt.BytesSent) / float64(pt.Edges)
	}
	return pt, nil
}

// WriteHubCacheJSON writes the hub-cache trajectory file.
func WriteHubCacheJSON(w io.Writer, rep HubCacheReport) error {
	doc := struct {
		Experiment string          `json:"experiment"`
		Current    *HubCacheReport `json:"current"`
	}{Experiment: "hubcache", Current: &rep}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteHubCache prints a hub-cache report as a TSV table followed by
// the off-versus-on reductions.
func WriteHubCache(w io.Writer, rep HubCacheReport) error {
	if _, err := fmt.Fprintln(w, "ranks\thub_prefix\tedges\tdata_msgs\tpublishes\thub_hits\tcoalesced\tmsgs_per_edge\tbytes_per_edge"); err != nil {
		return err
	}
	for _, pt := range rep.Points {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.2f\n",
			pt.Ranks, pt.HubPrefix, pt.Edges, pt.DataMsgs, pt.Publishes,
			pt.HubHits, pt.Coalesced, pt.MsgsPerEdge, pt.BytesPerEdge); err != nil {
			return err
		}
	}
	for _, red := range rep.Reductions {
		if _, err := fmt.Fprintf(w, "# ranks=%d hub=%d: data msgs/edge %.4f -> %.4f (%.1f%% fewer), B/edge %.2f -> %.2f (%.1f%%)\n",
			red.Ranks, red.HubPrefix, red.MsgsPerEdgeOff, red.MsgsPerEdgeOn, red.MsgsReductionPct,
			red.BytesPerEdgeOff, red.BytesPerEdgeOn, red.BytesReductionPct); err != nil {
			return err
		}
	}
	return nil
}
