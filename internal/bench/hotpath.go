package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// HotPathPoint is one measured configuration of the hot-path experiment:
// constant-factor metrics of the generation loop and the message path
// (allocations per edge, bytes per frame) rather than the figure-level
// results of the paper experiments.
type HotPathPoint struct {
	Ranks      int    `json:"ranks"`
	Workers    int    `json:"workers"`
	PollEvery  int    `json:"poll_every,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Transport  string `json:"transport"`
	N          int64  `json:"n"`
	X          int    `json:"x"`
	Edges      int64  `json:"edges"`
	// Steals / StolenNodes count intra-rank work stealing across all
	// ranks of the run: spans claimed by a non-owner worker and the
	// nodes those spans covered.
	Steals        int64   `json:"steals"`
	StolenNodes   int64   `json:"stolen_nodes"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	NsPerEdge     float64 `json:"ns_per_edge"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	MsgsPerFrame  float64 `json:"msgs_per_frame"`
	BytesPerMsg   float64 `json:"bytes_per_msg"`
	FramesSent    int64   `json:"frames_sent"`
	BytesSent     int64   `json:"bytes_sent"`
}

// MatrixPoint is one cell of the intra-host ranks × workers efficiency
// matrix: wall time at the cell's configuration, its speedup over the
// workers=1 run at the same rank count and transport, and the parallel
// efficiency (speedup / workers).
type MatrixPoint struct {
	Ranks       int     `json:"ranks"`
	Workers     int     `json:"workers"`
	Transport   string  `json:"transport"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	N           int64   `json:"n"`
	X           int     `json:"x"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	NsPerEdge   float64 `json:"ns_per_edge"`
	Steals      int64   `json:"steals"`
	StolenNodes int64   `json:"stolen_nodes"`
	SpeedupVsW1 float64 `json:"speedup_vs_w1"`
	Efficiency  float64 `json:"efficiency"`
}

// HotPathReport is the hot-path trajectory record written to
// BENCH_hotpath.json so later optimisation PRs can compare against it.
type HotPathReport struct {
	Label      string         `json:"label"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Points     []HotPathPoint `json:"points"`
	// Matrix holds the intra-host ranks × workers efficiency sweep when
	// one was run (pa-hotpath -matrix).
	Matrix []MatrixPoint `json:"matrix,omitempty"`
}

// HotPathConfig describes a hot-path sweep: the cross product of rank,
// worker and poll-interval settings at fixed n and x. Empty Workers
// means {1}; empty PollEvery means {core default} (recorded as 0 in the
// point only when a non-default interval was swept).
type HotPathConfig struct {
	N         int64
	X         int
	Ranks     []int
	Workers   []int
	PollEvery []int
	// Transports lists the in-process transports to sweep ("shm",
	// "local"); empty means {"shm"}, the engine default.
	Transports []string
	Seed       uint64
}

// HotPath measures the generation hot path at n nodes, x attachments per
// node, for each rank count in ranks, at one worker per rank. It is the
// single-axis wrapper around HotPathSweep kept for existing callers.
func HotPath(n int64, x int, ranks []int, seed uint64) (HotPathReport, error) {
	return HotPathSweep(HotPathConfig{N: n, X: x, Ranks: ranks, Seed: seed})
}

// HotPathSweep measures the generation hot path over the cross product
// of cfg.Ranks × cfg.Workers × cfg.PollEvery. Allocations are measured
// process wide (runtime mallocs delta across the run), so the numbers
// include every layer: engine, workers, communicator, codec and
// transport.
func HotPathSweep(cfg HotPathConfig) (HotPathReport, error) {
	rep := HotPathReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	pr := model.Params{N: cfg.N, X: cfg.X, P: 0.5}
	if err := pr.Validate(); err != nil {
		return rep, err
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1}
	}
	polls := cfg.PollEvery
	if len(polls) == 0 {
		polls = []int{core.DefaultPollEvery}
	}
	transports := cfg.Transports
	if len(transports) == 0 {
		transports = []string{"shm"}
	}
	for _, p := range cfg.Ranks {
		part, err := partition.New(partition.KindRRP, cfg.N, p)
		if err != nil {
			return rep, err
		}
		for _, nw := range workers {
			for _, pe := range polls {
				for _, tr := range transports {
					opts := core.Options{
						Params: pr, Part: part, Seed: cfg.Seed,
						Workers: nw, PollEvery: pe, Transport: tr,
					}
					pt, err := measureHotPath(opts)
					if err != nil {
						return rep, err
					}
					pt.Ranks, pt.Workers = p, nw
					pt.N, pt.X = cfg.N, cfg.X
					pt.Transport = tr
					if pe != core.DefaultPollEvery {
						pt.PollEvery = pe
					}
					rep.Points = append(rep.Points, pt)
				}
			}
		}
	}
	return rep, nil
}

// measureHotPath runs one warmed, GC-bracketed measurement of opts and
// fills the measurement-derived fields of a HotPathPoint.
func measureHotPath(opts core.Options) (HotPathPoint, error) {
	// Warm run so pools and lazily-grown structures reach steady state
	// before the measured run.
	if _, err := core.Run(opts, false); err != nil {
		return HotPathPoint{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.Run(opts, false)
	if err != nil {
		return HotPathPoint{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	var frames, bytes, msgs, edges, steals, stolen int64
	for _, st := range res.Ranks {
		frames += st.Comm.FramesSent
		bytes += st.Comm.BytesSent
		msgs += st.Comm.MessagesSent()
		edges += st.Edges
		steals += st.Steals
		stolen += st.StolenNodes
	}
	pt := HotPathPoint{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Edges:         edges,
		Steals:        steals,
		StolenNodes:   stolen,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
		NsPerEdge:     float64(elapsed.Nanoseconds()) / float64(edges),
		AllocsPerEdge: float64(after.Mallocs-before.Mallocs) / float64(edges),
		FramesSent:    frames,
		BytesSent:     bytes,
	}
	if frames > 0 {
		pt.BytesPerFrame = float64(bytes) / float64(frames)
		pt.MsgsPerFrame = float64(msgs) / float64(frames)
	}
	if msgs > 0 {
		pt.BytesPerMsg = float64(bytes) / float64(msgs)
	}
	return pt, nil
}

// MatrixConfig describes an intra-host efficiency sweep: every ranks ×
// workers × transport cell at fixed n and x, each compared against the
// workers=1 cell of its rank count and transport.
type MatrixConfig struct {
	N          int64
	X          int
	Ranks      []int
	Workers    []int
	Transports []string
	Seed       uint64
}

// HotPathMatrix measures the ranks × workers × transport matrix. The
// workers list is measured in the given order; each cell's speedup is
// relative to the workers=1 cell at the same ranks and transport (a
// workers=1 cell is measured implicitly when the list omits it).
func HotPathMatrix(cfg MatrixConfig) ([]MatrixPoint, error) {
	pr := model.Params{N: cfg.N, X: cfg.X, P: 0.5}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	transports := cfg.Transports
	if len(transports) == 0 {
		transports = []string{"shm"}
	}
	hasW1 := false
	for _, w := range workers {
		if w == 1 {
			hasW1 = true
		}
	}
	if !hasW1 {
		workers = append([]int{1}, workers...)
	}
	var out []MatrixPoint
	for _, p := range cfg.Ranks {
		part, err := partition.New(partition.KindRRP, cfg.N, p)
		if err != nil {
			return nil, err
		}
		for _, tr := range transports {
			var w1ms float64
			for _, nw := range workers {
				pt, err := measureHotPath(core.Options{
					Params: pr, Part: part, Seed: cfg.Seed,
					Workers: nw, Transport: tr,
				})
				if err != nil {
					return nil, err
				}
				mp := MatrixPoint{
					Ranks: p, Workers: nw, Transport: tr,
					GOMAXPROCS: pt.GOMAXPROCS,
					N:          cfg.N, X: cfg.X,
					ElapsedMS: pt.ElapsedMS, NsPerEdge: pt.NsPerEdge,
					Steals: pt.Steals, StolenNodes: pt.StolenNodes,
				}
				if nw == 1 {
					w1ms = pt.ElapsedMS
				}
				if w1ms > 0 && pt.ElapsedMS > 0 {
					mp.SpeedupVsW1 = w1ms / pt.ElapsedMS
					mp.Efficiency = mp.SpeedupVsW1 / float64(nw)
				}
				out = append(out, mp)
			}
		}
	}
	return out, nil
}

// WriteMatrix prints an efficiency matrix as a TSV table.
func WriteMatrix(w io.Writer, pts []MatrixPoint) error {
	if _, err := fmt.Fprintln(w, "ranks\tworkers\ttransport\tgomaxprocs\twall_ms\tns_per_edge\tsteals\tstolen_nodes\tspeedup_vs_w1\tefficiency"); err != nil {
		return err
	}
	for _, pt := range pts {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%.1f\t%.1f\t%d\t%d\t%.2f\t%.2f\n",
			pt.Ranks, pt.Workers, pt.Transport, pt.GOMAXPROCS, pt.ElapsedMS,
			pt.NsPerEdge, pt.Steals, pt.StolenNodes, pt.SpeedupVsW1, pt.Efficiency); err != nil {
			return err
		}
	}
	return nil
}

// WriteHotPathJSON writes a hot-path trajectory file: the current report
// plus, when non-nil, the baseline it is compared against.
func WriteHotPathJSON(w io.Writer, baseline *HotPathReport, current HotPathReport) error {
	doc := struct {
		Experiment string         `json:"experiment"`
		Baseline   *HotPathReport `json:"baseline,omitempty"`
		Current    *HotPathReport `json:"current"`
	}{Experiment: "hotpath", Baseline: baseline, Current: &current}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadHotPathJSON reads a trajectory file written by WriteHotPathJSON and
// returns its current block — the report a newer run uses as baseline.
func ReadHotPathJSON(path string) (*HotPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Current *HotPathReport `json:"current"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if doc.Current == nil {
		return nil, fmt.Errorf("bench: %s: no current block", path)
	}
	return doc.Current, nil
}

// WriteHotPath prints a hot-path report as a TSV table.
func WriteHotPath(w io.Writer, rep HotPathReport) error {
	if _, err := fmt.Fprintln(w, "ranks\tworkers\ttransport\tn\tx\twall_ms\tns_per_edge\tallocs_per_edge\tbytes_per_frame\tmsgs_per_frame\tbytes_per_msg\tsteals"); err != nil {
		return err
	}
	for _, pt := range rep.Points {
		workers := pt.Workers
		if workers == 0 {
			workers = 1 // reports written before the workers sweep existed
		}
		tr := pt.Transport
		if tr == "" {
			tr = "local" // reports written before the shm transport existed
		}
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%.1f\t%.1f\t%.4f\t%.1f\t%.1f\t%.2f\t%d\n",
			pt.Ranks, workers, tr, pt.N, pt.X, pt.ElapsedMS, pt.NsPerEdge, pt.AllocsPerEdge,
			pt.BytesPerFrame, pt.MsgsPerFrame, pt.BytesPerMsg, pt.Steals); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint hashes the output graph of a run at one worker per rank —
// the exactness regression check behind "single-rank output is
// byte-identical across hot-path optimisations". See FingerprintAt for
// the hash construction.
func Fingerprint(n int64, x int, ranks int, seed uint64) (uint64, error) {
	return FingerprintAt(n, x, ranks, 1, seed)
}

// FingerprintAt hashes the output graph of a run at an explicit worker
// count — the regression check behind "output is byte-identical across
// worker counts". For ranks == 1 the hash is order-sensitive (FNV-1a
// over the edge stream, which single-rank runs emit in node order at
// any worker count); for ranks > 1 it is an order-insensitive XOR of
// per-edge hashes, since multi-rank merge order is set by rank, not by
// time.
func FingerprintAt(n int64, x int, ranks, workers int, seed uint64) (uint64, error) {
	return FingerprintHub(n, x, partition.KindRRP, ranks, workers, seed, 0)
}

// FingerprintHub hashes the output graph at an explicit partition
// scheme and hub-prefix cache setting — the regression check behind
// "output is byte-identical with the cache on, off, or at any size".
func FingerprintHub(n int64, x int, kind partition.Kind, ranks, workers int, seed uint64, hubPrefix int64) (uint64, error) {
	return FingerprintResolve(n, x, kind, ranks, workers, seed, hubPrefix, core.ResolveWire, 0)
}

// FingerprintResolve hashes the output graph at an explicit resolve
// mode and recompute depth cap — the regression check behind
// "recompute mode is byte-identical to the wire protocol".
func FingerprintResolve(n int64, x int, kind partition.Kind, ranks, workers int, seed uint64,
	hubPrefix int64, mode core.ResolveMode, depth int) (uint64, error) {
	pr := model.Params{N: n, X: x, P: 0.5}
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	part, err := partition.New(kind, n, ranks)
	if err != nil {
		return 0, err
	}
	res, err := core.Run(core.Options{Params: pr, Part: part, Seed: seed, Workers: workers,
		HubPrefix: hubPrefix, Resolve: mode, RecomputeDepth: depth}, false)
	if err != nil {
		return 0, err
	}
	if ranks == 1 {
		h := fnv.New64a()
		var buf [16]byte
		for _, e := range res.Graph.Edges {
			putEdge(&buf, e.U, e.V)
			h.Write(buf[:])
		}
		return h.Sum64(), nil
	}
	var acc uint64
	var buf [16]byte
	for _, e := range res.Graph.Edges {
		h := fnv.New64a()
		putEdge(&buf, e.U, e.V)
		h.Write(buf[:])
		acc ^= h.Sum64()
	}
	return acc, nil
}

func putEdge(buf *[16]byte, u, v int64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
		buf[8+i] = byte(v >> (8 * i))
	}
}
