package bench

import (
	"math"
	"strings"
	"testing"

	"pagen/internal/model"
	"pagen/internal/partition"
)

var kinds3 = []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(100000, 16, partition.DefaultB)
	if len(rows) != 16 {
		t.Fatalf("%d rows", len(rows))
	}
	var exactTotal, linTotal int64
	for i, r := range rows {
		if r.Rank != i {
			t.Fatalf("rank order broken: %+v", r)
		}
		exactTotal += r.ExactSz
		linTotal += r.LinearSz
		// Figure 3's message: the linear approximation tracks the exact
		// solution closely at every rank.
		if math.Abs(float64(r.ExactLo-r.LinearLo)) > 0.05*100000 {
			t.Errorf("rank %d: exact %d vs linear %d diverge", i, r.ExactLo, r.LinearLo)
		}
	}
	if exactTotal != 100000 || linTotal != 100000 {
		t.Fatalf("totals %d / %d", exactTotal, linTotal)
	}
	// Both series increase with rank (the figure's visual signature).
	if rows[0].ExactSz >= rows[15].ExactSz || rows[0].LinearSz >= rows[15].LinearSz {
		t.Error("sizes do not increase with rank")
	}
	var sb strings.Builder
	if err := WriteFig3(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(sb.String()), "\n")) != 17 {
		t.Fatal("TSV row count wrong")
	}
}

func TestFig4PowerLaw(t *testing.T) {
	pr := model.Params{N: 30000, X: 4, P: 0.5}
	res, err := Fig4(pr, partition.KindRRP, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: gamma measured 2.7 at n=1e9; at 3e4 nodes the finite-size
	// estimate lands in the high-2s/low-3s.
	if res.Report.Gamma < 2.3 || res.Report.Gamma > 3.7 {
		t.Fatalf("gamma = %v", res.Report.Gamma)
	}
	if res.Report.Components != 1 {
		t.Fatalf("components = %d", res.Report.Components)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
}

func TestStrongScalingOrdering(t *testing.T) {
	pr := model.Params{N: 30000, X: 6, P: 0.5}
	rows, err := StrongScaling(pr, kinds3, []int{8, 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(scheme string, p int) ScalingRow {
		for _, r := range rows {
			if r.Scheme == scheme && r.P == p {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", scheme, p)
		return ScalingRow{}
	}
	// Figure 5's signature: LCP and RRP clearly beat UCP once P is large
	// enough for UCP's imbalance to dominate its locality advantage
	// (at very small P the three schemes track each other, as in the
	// paper's figure).
	ucp := get("UCP", 32).ModelSpeedup
	if lcp := get("LCP", 32).ModelSpeedup; lcp <= ucp*1.2 {
		t.Errorf("P=32: LCP %v not clearly above UCP %v", lcp, ucp)
	}
	if rrp := get("RRP", 32).ModelSpeedup; rrp <= ucp*1.2 {
		t.Errorf("P=32: RRP %v not clearly above UCP %v", rrp, ucp)
	}
	// Speedups grow with P for every scheme.
	for _, scheme := range []string{"UCP", "LCP", "RRP"} {
		if get(scheme, 32).ModelSpeedup <= get(scheme, 8).ModelSpeedup {
			t.Errorf("%s speedup not increasing with P", scheme)
		}
	}
	// UCP's imbalance grows with P; RRP's stays near 1.
	if get("UCP", 32).Imbalance <= get("UCP", 8).Imbalance {
		t.Error("UCP imbalance did not grow with P")
	}
	if get("RRP", 32).Imbalance > 1.1 {
		t.Errorf("RRP imbalance %v at P=32", get("RRP", 32).Imbalance)
	}
	var sb strings.Builder
	if err := WriteScaling(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "model_speedup") {
		t.Fatal("header missing")
	}
}

func TestWeakScalingRowSizes(t *testing.T) {
	rows, err := WeakScaling(20000, 4, 0.5, []partition.Kind{partition.KindRRP}, []int{2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Problem size grows proportionally with P.
	if rows[1].N < rows[0].N*18/10 {
		t.Fatalf("weak scaling sizes: %d then %d", rows[0].N, rows[1].N)
	}
	// Per-rank work constant => imbalance near 1 for RRP.
	for _, r := range rows {
		if r.Imbalance > 1.2 {
			t.Errorf("P=%d imbalance %v", r.P, r.Imbalance)
		}
	}
}

func TestFig7Distributions(t *testing.T) {
	pr := model.Params{N: 20000, X: 5, P: 0.5}
	rows, err := Fig7(pr, kinds3, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("%d rows", len(rows))
	}
	byScheme := map[string][]Fig7Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	// Figure 7(c): incoming requests decrease with rank under UCP.
	ucp := byScheme["UCP"]
	if ucp[0].Incoming <= ucp[7].Incoming {
		t.Errorf("UCP incoming not decreasing: %d .. %d", ucp[0].Incoming, ucp[7].Incoming)
	}
	// Figure 7(b): UCP rank 0 sends no requests.
	if ucp[0].Outgoing != 0 {
		t.Errorf("UCP rank 0 outgoing = %d", ucp[0].Outgoing)
	}
	// Figure 7(d): RRP total load spread is far tighter than UCP's.
	spread := func(rows []Fig7Row) float64 {
		min, max := rows[0].Total, rows[0].Total
		for _, r := range rows {
			if r.Total < min {
				min = r.Total
			}
			if r.Total > max {
				max = r.Total
			}
		}
		return float64(max-min) / float64(max)
	}
	if sRRP, sUCP := spread(byScheme["RRP"]), spread(ucp); sRRP >= sUCP/2 {
		t.Errorf("RRP spread %v not clearly tighter than UCP %v", sRRP, sUCP)
	}
	var sb strings.Builder
	if err := WriteFig7(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(sb.String()), "\n")) != 25 {
		t.Fatal("TSV rows wrong")
	}
}

func TestXSweep(t *testing.T) {
	rows, err := XSweep(10000, []int{4, 10}, 0.5, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		wantM := int64(r.X*(r.X-1)/2) + (r.N-int64(r.X))*int64(r.X)
		if r.Edges != wantM {
			t.Fatalf("x=%d: edges %d, want %d", r.X, r.Edges, wantM)
		}
		if r.MsgsPerEdge <= 0 || r.MsgsPerEdge > 2 {
			t.Fatalf("x=%d: msgs/edge %v implausible", r.X, r.MsgsPerEdge)
		}
	}
	// Larger x means more duplicate collisions per edge.
	if rows[1].RetriesPerEdge <= rows[0].RetriesPerEdge {
		t.Errorf("retries/edge did not grow with x: %v -> %v",
			rows[0].RetriesPerEdge, rows[1].RetriesPerEdge)
	}
	var sb strings.Builder
	if err := WriteXSweep(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(sb.String()), "\n")) != 3 {
		t.Fatal("TSV rows wrong")
	}
	if _, err := XSweep(5, []int{10}, 0.5, 2, 1); err == nil {
		t.Fatal("invalid n/x accepted")
	}
}

func TestHeadlineThroughput(t *testing.T) {
	pr := model.Params{N: 50000, X: 5, P: 0.5}
	res, err := Headline(pr, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != pr.M() {
		t.Fatalf("edges = %d", res.Edges)
	}
	if res.EdgesPerSec <= 0 {
		t.Fatalf("throughput = %v", res.EdgesPerSec)
	}
}

func TestChainsExperiment(t *testing.T) {
	res, err := Chains(model.Params{N: 50000, X: 1, P: 0.5}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean > res.LogN {
		t.Errorf("mean %v above ln n %v", res.Mean, res.LogN)
	}
	if float64(res.Max) > res.FiveLogN {
		t.Errorf("max %d above 5 ln n %v", res.Max, res.FiveLogN)
	}
}

func TestStreamBench(t *testing.T) {
	rep, err := StreamBench(StreamConfig{
		N: 5000, X: 2, Ranks: 2, Seed: 9,
		Dir: t.TempDir(), BlockEdges: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantM := int64(1) + (5000-2)*2
	if rep.Edges != wantM {
		t.Fatalf("streamed %d edges, want %d", rep.Edges, wantM)
	}
	if rep.SinkBlocks == 0 || rep.SinkBytes == 0 {
		t.Fatalf("sink counters empty: %+v", rep)
	}
	if rep.BytesPerEdge <= 0 || rep.EdgesPerSec <= 0 {
		t.Fatalf("derived rates empty: %+v", rep)
	}
	if rep.InMemoryEstBytes <= 0 {
		t.Fatal("in-memory estimate missing")
	}
	if rep.PeakRSSBytes == 0 {
		t.Skip("VmHWM unavailable on this platform")
	}
}

func TestStreamBenchNeedsDir(t *testing.T) {
	if _, err := StreamBench(StreamConfig{N: 100, X: 2, Ranks: 1}); err == nil {
		t.Fatal("missing dir accepted")
	}
}
