package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pagen/internal/core"
	"pagen/internal/esink"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// CkptConfig describes the checkpoint-stall sweep: for each cadence in
// Every, one streamed+checkpointed run at fixed n/x/ranks/workers,
// recording the per-epoch generation pause and background publish time.
// FullEvery > 1 adds a second row per cadence running base+delta epochs
// at that full-snapshot cadence. KillSends adds the resume-identity
// legs: TCP clusters whose last rank is chaos-killed after that many
// sends, resumed, and compared edge-for-edge against an uninterrupted
// reference run.
type CkptConfig struct {
	N       int64
	X       int
	P       float64 // 0 means 0.5
	Ranks   int
	Workers int // 0 means 1
	Seed    uint64
	Every   []int64
	// FullEvery is the -checkpoint-full-every setting of the base+delta
	// rows (0 or 1 skips them).
	FullEvery int
	// Dir is the scratch root; each row gets its own ck/shards subtree.
	Dir string
	// KillSends are chaos kill budgets (transport Send calls on the
	// last rank before it dies) for the resume-identity legs; empty
	// skips them.
	KillSends []int64
	// BasePort is the first TCP port the kill legs listen on (default
	// 45200; each leg uses a fresh disjoint span).
	BasePort int
}

// CkptRow is one measured cadence: the per-epoch pause/publish means
// the tentpole optimises, plus volume and wall time.
type CkptRow struct {
	Every     int64 `json:"checkpoint_every"`
	FullEvery int   `json:"checkpoint_full_every"` // 0 = every epoch full
	// Epochs is the committed epoch count summed over ranks; Abandoned
	// the epochs voted down cluster-wide after a publish failure.
	Epochs    int64 `json:"epochs"`
	Abandoned int64 `json:"abandoned"`
	// PauseNsPerEpoch is the mean generation pause per epoch — the
	// number the fast-capture rework drives down — and PauseMaxNs the
	// worst epoch. WriteNsPerEpoch is the mean background publish time
	// (overlapped with generation, not part of the pause).
	PauseNsPerEpoch int64 `json:"pause_ns_per_epoch"`
	PauseMaxNs      int64 `json:"pause_max_ns"`
	WriteNsPerEpoch int64 `json:"write_ns_per_epoch"`
	// BytesPerEpoch and TotalBytes measure snapshot volume (deltas
	// shrink them).
	BytesPerEpoch int64   `json:"bytes_per_epoch"`
	TotalBytes    int64   `json:"total_bytes"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// CkptKillRow is one resume-identity leg: a cluster killed mid-run,
// resumed, and compared against the uninterrupted reference output.
type CkptKillRow struct {
	KillAfterSends int64 `json:"kill_after_sends"`
	FullEvery      int   `json:"checkpoint_full_every"`
	// Identical is the byte-identity verdict: the resumed run's edge
	// stream equals the uninterrupted reference's.
	Identical bool `json:"identical"`
	// Edges is the resumed run's edge count (equals the reference's m
	// when Identical).
	Edges int64 `json:"edges"`
}

// CkptReport is the record written to BENCH_ckpt.json. Baseline rows
// (if any) come from a prior report's Rows via ReadCkptJSON — the
// before/after trajectory the low-stall rework is measured by.
type CkptReport struct {
	Label     string  `json:"label"`
	GoVersion string  `json:"go_version"`
	N         int64   `json:"n"`
	X         int     `json:"x"`
	P         float64 `json:"p"`
	Scheme    string  `json:"scheme"`
	Seed      uint64  `json:"seed"`
	Ranks     int     `json:"ranks"`
	Workers   int     `json:"workers"`

	Baseline      []CkptRow     `json:"baseline,omitempty"`
	BaselineLabel string        `json:"baseline_label,omitempty"`
	Rows          []CkptRow     `json:"rows"`
	Kills         []CkptKillRow `json:"kills,omitempty"`
}

// CkptSweep measures every configured cadence (full-only, and
// base+delta when FullEvery > 1), then runs the kill/resume identity
// legs.
func CkptSweep(cfg CkptConfig) (CkptReport, error) {
	p := cfg.P
	if p == 0 {
		p = 0.5
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	rep := CkptReport{
		GoVersion: runtime.Version(),
		N:         cfg.N, X: cfg.X, P: p,
		Scheme: "RRP", Seed: cfg.Seed,
		Ranks: cfg.Ranks, Workers: workers,
	}
	pr := model.Params{N: cfg.N, X: cfg.X, P: p}
	if err := pr.Validate(); err != nil {
		return rep, err
	}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("bench: checkpoint sweep needs a scratch directory")
	}
	fulls := []int{0}
	if cfg.FullEvery > 1 {
		fulls = append(fulls, cfg.FullEvery)
	}
	for _, every := range cfg.Every {
		for _, fe := range fulls {
			row, err := ckptRow(cfg, pr, workers, every, fe)
			if err != nil {
				return rep, err
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	if len(cfg.KillSends) > 0 {
		kills, err := ckptKillLegs(cfg, pr, workers, fulls)
		if err != nil {
			return rep, err
		}
		rep.Kills = kills
	}
	return rep, nil
}

// ckptRow measures one cadence with one in-process streamed run.
func ckptRow(cfg CkptConfig, pr model.Params, workers int, every int64, fullEvery int) (CkptRow, error) {
	row := CkptRow{Every: every, FullEvery: fullEvery}
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("row-e%d-f%d", every, fullEvery))
	ckDir, shDir := filepath.Join(dir, "ck"), filepath.Join(dir, "shards")
	for _, d := range []string{ckDir, shDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return row, err
		}
	}
	part, err := partition.New(partition.KindRRP, cfg.N, cfg.Ranks)
	if err != nil {
		return row, err
	}
	start := time.Now()
	res, err := core.Run(core.Options{
		Params: pr, Part: part, Seed: cfg.Seed, Workers: workers,
		Checkpoint: &core.CheckpointOptions{Dir: ckDir, Every: every, FullEvery: fullEvery},
		StreamDir:  shDir,
	}, false)
	elapsed := time.Since(start)
	if err != nil {
		return row, err
	}
	var pauseSum, pauseN, writeSum, writeN int64
	for _, st := range res.Ranks {
		row.Epochs += st.CkptEpochs
		row.Abandoned += st.CkptFailed
		row.TotalBytes += st.CkptBytes
		pauseSum += st.CkptPauseHist.Sum
		pauseN += st.CkptPauseHist.Count
		writeSum += st.CkptWriteHist.Sum
		writeN += st.CkptWriteHist.Count
		if st.CkptPauseHist.Max > row.PauseMaxNs {
			row.PauseMaxNs = st.CkptPauseHist.Max
		}
	}
	if pauseN > 0 {
		row.PauseNsPerEpoch = pauseSum / pauseN
	}
	if writeN > 0 {
		row.WriteNsPerEpoch = writeSum / writeN
	}
	if row.Epochs > 0 {
		row.BytesPerEpoch = row.TotalBytes / row.Epochs
	}
	row.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	return row, nil
}

// ckptKillLegs runs the resume-identity matrix: each kill budget x each
// full-snapshot cadence. The reference edge stream comes from one
// uninterrupted run without checkpointing.
func ckptKillLegs(cfg CkptConfig, pr model.Params, workers int, fulls []int) ([]CkptKillRow, error) {
	part, err := partition.New(partition.KindRRP, cfg.N, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	refDir := filepath.Join(cfg.Dir, "ref-shards")
	if err := os.MkdirAll(refDir, 0o755); err != nil {
		return nil, err
	}
	if _, err := core.Run(core.Options{
		Params: pr, Part: part, Seed: cfg.Seed, Workers: workers,
		StreamDir: refDir,
	}, false); err != nil {
		return nil, fmt.Errorf("bench: reference run: %w", err)
	}
	basePort := cfg.BasePort
	if basePort == 0 {
		basePort = 45200
	}
	every := cfg.Every[0]
	var kills []CkptKillRow
	leg := 0
	for _, fe := range fulls {
		for _, ks := range cfg.KillSends {
			row, err := ckptKillOnce(cfg, pr, part, workers, every, fe, ks,
				basePort+leg*2*cfg.Ranks, refDir)
			if err != nil {
				return kills, err
			}
			kills = append(kills, row)
			leg++
		}
	}
	return kills, nil
}

// ckptKillOnce kills one TCP cluster mid-run (chaos on the last rank),
// resumes it, and compares the resumed shard output to the reference.
func ckptKillOnce(cfg CkptConfig, pr model.Params, part partition.Scheme, workers int,
	every int64, fullEvery int, killSends int64, basePort int, refDir string) (CkptKillRow, error) {
	row := CkptKillRow{KillAfterSends: killSends, FullEvery: fullEvery}
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("kill-s%d-f%d", killSends, fullEvery))
	ckDir, shDir := filepath.Join(dir, "ck"), filepath.Join(dir, "shards")
	for _, d := range []string{ckDir, shDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return row, err
		}
	}
	runCluster := func(port int, kill int64, resume bool) []error {
		addrs := make([]string, cfg.Ranks)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", port+i)
		}
		opts := core.Options{
			Params: pr, Part: part, Seed: cfg.Seed, Workers: workers,
			Checkpoint: &core.CheckpointOptions{
				Dir: ckDir, Every: every, FullEvery: fullEvery, Resume: resume,
			},
			StreamDir: shDir,
		}
		errs := make([]error, cfg.Ranks)
		var wg sync.WaitGroup
		for r := 0; r < cfg.Ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := transport.NewTCP(r, addrs)
				if err != nil {
					errs[r] = err
					return
				}
				if kill > 0 && r == cfg.Ranks-1 {
					chaotic := transport.NewChaos(tr, transport.ChaosConfig{
						Seed: cfg.Seed, KillAfterSends: kill,
					})
					_, errs[r] = core.RunRank(chaotic, opts)
					chaotic.Close()
					return
				}
				defer tr.Close()
				_, errs[r] = core.RunRank(tr, opts)
			}(r)
		}
		wg.Wait()
		return errs
	}
	// First pass: kill mid-run. Every outcome is acceptable here — a
	// large budget may let the cluster finish — the verdict is the
	// resumed output.
	runCluster(basePort, killSends, false)
	// Second pass: resume on fresh ports (the killed listeners may
	// linger in TIME_WAIT) and require success.
	for r, err := range runCluster(basePort+cfg.Ranks, 0, true) {
		if err != nil {
			return row, fmt.Errorf("bench: resume after kill(%d sends): rank %d: %w", killSends, r, err)
		}
	}
	identical, edges, err := sameEdgeStream(shDir, refDir, cfg.Ranks)
	if err != nil {
		return row, err
	}
	row.Identical, row.Edges = identical, edges
	return row, nil
}

// sameEdgeStream compares two shard directories edge for edge.
func sameEdgeStream(gotDir, wantDir string, ranks int) (bool, int64, error) {
	got, err := esink.OpenDir(gotDir, ranks)
	if err != nil {
		return false, 0, err
	}
	defer got.Close()
	want, err := esink.OpenDir(wantDir, ranks)
	if err != nil {
		return false, 0, err
	}
	defer want.Close()
	if got.Edges() != want.Edges() {
		return false, got.Edges(), nil
	}
	gi, wi := got.Iter(0), want.Iter(0)
	for {
		ge, gok := gi.Next()
		we, wok := wi.Next()
		if gok != wok {
			return false, got.Edges(), nil
		}
		if !gok {
			break
		}
		if ge != we {
			return false, got.Edges(), nil
		}
	}
	if err := gi.Err(); err != nil {
		return false, 0, err
	}
	if err := wi.Err(); err != nil {
		return false, 0, err
	}
	return true, got.Edges(), nil
}

// ReadCkptJSON reads a prior checkpoint sweep report (its Rows become
// the next report's Baseline).
func ReadCkptJSON(path string) (*CkptReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep CkptReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// WriteCkptJSON writes the checkpoint sweep record, folding base's Rows
// in as the baseline when present.
func WriteCkptJSON(w io.Writer, base *CkptReport, rep CkptReport) error {
	if base != nil {
		rep.Baseline = base.Rows
		rep.BaselineLabel = base.Label
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteCkpt prints the sweep as a human summary, with the speedup
// column against the baseline when one is present.
func WriteCkpt(w io.Writer, rep CkptReport) error {
	base := make(map[[2]int64]CkptRow, len(rep.Baseline))
	for _, b := range rep.Baseline {
		base[[2]int64{b.Every, int64(b.FullEvery)}] = b
	}
	if _, err := fmt.Fprintf(w,
		"ckpt bench: n=%d x=%d ranks=%d workers=%d seed=%d\n"+
			"%-10s %-6s %8s %14s %14s %12s %10s %10s\n",
		rep.N, rep.X, rep.Ranks, rep.Workers, rep.Seed,
		"every", "full", "epochs", "pause/epoch", "write/epoch", "bytes/epoch", "wall_ms", "speedup"); err != nil {
		return err
	}
	for _, r := range rep.Rows {
		speedup := "-"
		if b, ok := base[[2]int64{r.Every, int64(r.FullEvery)}]; ok && r.PauseNsPerEpoch > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(b.PauseNsPerEpoch)/float64(r.PauseNsPerEpoch))
		}
		if _, err := fmt.Fprintf(w, "%-10d %-6d %8d %14d %14d %12d %10.1f %10s\n",
			r.Every, r.FullEvery, r.Epochs, r.PauseNsPerEpoch, r.WriteNsPerEpoch,
			r.BytesPerEpoch, r.ElapsedMS, speedup); err != nil {
			return err
		}
	}
	for _, k := range rep.Kills {
		if _, err := fmt.Fprintf(w, "kill after %d sends (full-every %d): resumed %d edges, identical=%v\n",
			k.KillAfterSends, k.FullEvery, k.Edges, k.Identical); err != nil {
			return err
		}
	}
	return nil
}
