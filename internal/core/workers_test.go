package core

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/transport"
)

// edgeKey is a canonical edge for set comparison.
type edgeKey struct{ u, v int64 }

func edgeSet(t *testing.T, edges []graph.Edge) map[edgeKey]struct{} {
	t.Helper()
	s := make(map[edgeKey]struct{}, len(edges))
	for _, e := range edges {
		c := e.Canonical()
		k := edgeKey{c.U, c.V}
		if _, dup := s[k]; dup {
			t.Fatalf("duplicate edge (%d,%d)", c.U, c.V)
		}
		s[k] = struct{}{}
	}
	return s
}

func sameEdgeSet(t *testing.T, label string, got []graph.Edge, want map[edgeKey]struct{}) {
	t.Helper()
	gs := edgeSet(t, got)
	if len(gs) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(gs), len(want))
	}
	for k := range gs {
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: edge (%d,%d) not in sequential output", label, k.u, k.v)
		}
	}
}

// The headline determinism property of the worker-sharded engine: for
// every (workers, ranks) combination the output edge set equals the
// sequential copy model's, node for node. Per-node streams plus strict
// per-node edge sequencing (suspension/resume) make the output a pure
// function of (n, x, p, seed) — independent of worker count, rank
// count, partition and message schedule.
func TestWorkersMatchSequential(t *testing.T) {
	pr := model.Params{N: 12_000, X: 4, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 11, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	for _, ranks := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("ranks=%d/workers=%d", ranks, workers), func(t *testing.T) {
				part, err := partition.New(partition.KindRRP, pr.N, ranks)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Options{Params: pr, Part: part, Seed: 11, Workers: workers}, false)
				if err != nil {
					t.Fatal(err)
				}
				sameEdgeSet(t, t.Name(), res.Graph.Edges, want)
			})
		}
	}
}

// Same property under every partition scheme at a fixed worker count —
// the partition changes which rank (and worker) computes each node, and
// the edge set must not notice.
func TestWorkersAllSchemes(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 5, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	kinds := []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP, partition.KindExactCP}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			part, err := partition.New(kind, pr.N, 4)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Options{Params: pr, Part: part, Seed: 5, Workers: 3}, false)
			if err != nil {
				t.Fatal(err)
			}
			sameEdgeSet(t, kind.String(), res.Graph.Edges, want)
		})
	}
}

// Determinism must survive a hostile message schedule: a chaos transport
// delaying 30% of frames reorders resolution arrivals across ranks and
// workers, and the output must still be byte-for-byte the sequential
// edge set.
func TestWorkersChaosDeterministic(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 9, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)

	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*RankResult, p)
	errs := make([]error, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			tr := transport.NewChaos(group.Endpoint(r), transport.ChaosConfig{
				Seed:      900 + uint64(r),
				DelayProb: 0.3,
				MaxDelay:  500 * time.Microsecond,
			})
			results[r], errs[r] = RunRank(tr, Options{
				Params: pr, Part: part, Seed: 9, Workers: 2,
			})
			done <- r
		}(r)
	}
	var all []graph.Edge
	for i := 0; i < p; i++ {
		<-done
	}
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		all = append(all, results[r].Edges...)
	}
	sameEdgeSet(t, "chaos", all, want)
}

// The streaming sink contract: with workers > 1 the sink is called
// concurrently from a rank's worker goroutines (run under -race this
// checks the engine's side of the contract), and the streamed edges are
// exactly the sequential edge set.
func TestWorkersSinkConcurrent(t *testing.T) {
	pr := model.Params{N: 8_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 21, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.New(partition.KindUCP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	var sum int64
	res, err := Run(Options{
		Params: pr, Part: part, Seed: 21, Workers: 4,
		Sink: func(rank int, e graph.Edge) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt64(&sum, e.U^(e.V<<1))
		},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("sink run materialised a graph")
	}
	if count != pr.M() {
		t.Fatalf("sink saw %d edges, want %d", count, pr.M())
	}
	var wantSum int64
	for _, e := range sg.Edges {
		wantSum += e.U ^ (e.V << 1)
	}
	if sum != wantSum {
		t.Fatalf("sink edge checksum %d, want sequential %d", sum, wantSum)
	}
}

// RunToShards with workers exercises the locked shard writer; the shards
// must union to a valid graph with exactly M edges.
func TestWorkersToShards(t *testing.T) {
	pr := model.Params{N: 5_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "shards")
	if _, err := RunToShards(Options{Params: pr, Part: part, Seed: 3, Workers: 4}, dir); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadShards(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != pr.M() {
		t.Fatalf("shards union to %d edges, want %d", g.M(), pr.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Adaptive polling (PollEvery == 0) must not change the output — only
// the service schedule. Exercised at both 1 and >1 workers.
func TestAdaptivePollEveryDeterministic(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 13, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	for _, workers := range []int{1, 3} {
		part, err := partition.New(partition.KindUCP, pr.N, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Params: pr, Part: part, Seed: 13, Workers: workers, PollEvery: 0}, false)
		if err != nil {
			t.Fatal(err)
		}
		sameEdgeSet(t, fmt.Sprintf("adaptive workers=%d", workers), res.Graph.Edges, want)
	}
}

// Worker-count resolution: more workers than local nodes clamps instead
// of spinning up empty shards, and stats still add up.
func TestWorkersClampAndStats(t *testing.T) {
	pr := model.Params{N: 40, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Params: pr, Part: part, Seed: 2, Workers: 64}, false)
	if err != nil {
		t.Fatal(err)
	}
	var edges int64
	for _, st := range res.Ranks {
		edges += st.Edges
		if st.BusyTime < 0 || st.BusyTime > st.WallTime {
			t.Fatalf("rank %d: busy %v outside [0, wall %v]", st.Rank, st.BusyTime, st.WallTime)
		}
	}
	if edges != pr.M() {
		t.Fatalf("ranks report %d edges, want %d", edges, pr.M())
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Trace collection with workers: per-slot decisions land in the shared
// trace without racing (disjoint slot ranges per worker), and the copy
// fraction stays where p puts it.
func TestWorkersTrace(t *testing.T) {
	pr := model.Params{N: 8_000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Params: pr, Part: part, Seed: 17, Workers: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace collected")
	}
	copied := 0
	for _, c := range res.Trace.Copied {
		if c {
			copied++
		}
	}
	frac := float64(copied) / float64(res.Trace.Slots())
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("copied fraction %.3f outside [0.35, 0.65]", frac)
	}
}
