package core

import (
	"sync"
	"testing"
	"time"

	"pagen/internal/msg"
)

// TestInboxWakeupBatching pins the epoch-batched wakeup contract: a park
// episode costs at most one Signal no matter how many pushes land before
// the consumer runs, and the drain-until-empty swap hands all of them
// over in that single wakeup.
func TestInboxWakeupBatching(t *testing.T) {
	b := newInbox(64)

	// Pushes to an unparked consumer signal nobody.
	for i := 0; i < 5; i++ {
		if !b.tryPush(msg.Request(int64(i), 0, 0, 0)) {
			t.Fatalf("tryPush %d refused", i)
		}
	}
	if got := b.wakeupCount(); got != 0 {
		t.Fatalf("wakeups before any park: %d, want 0", got)
	}
	items, open := b.pop(nil, false)
	if !open || len(items) != 5 {
		t.Fatalf("pop: %d msgs open=%v, want 5 true", len(items), open)
	}

	// Park the consumer, then land a burst while it sleeps: one Signal,
	// one drain with the whole burst.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		items, open := b.pop(items, true)
		if !open {
			t.Error("pop reported closed")
			return
		}
		// The batch may arrive split across drains if the consumer runs
		// between pushes; collect until all 8 arrived.
		total := len(items)
		for total < 8 {
			more, open := b.pop(nil, true)
			if !open {
				t.Error("pop reported closed mid-collect")
				return
			}
			total += len(more)
		}
		if total != 8 {
			t.Errorf("drained %d msgs, want 8", total)
		}
	}()
	waitParked(t, b)
	for i := 0; i < 8; i++ {
		if !b.tryPush(msg.Request(int64(i), 0, 0, 0)) {
			t.Fatalf("burst push %d refused", i)
		}
	}
	wg.Wait()
	// Worst case the consumer woke between pushes and re-parked each
	// time; best (and usual) case the burst rode one Signal. Either way
	// wakeups is bounded by park episodes, never by pushes — and after a
	// real drain the sojourn EWMA must have folded in a sample.
	if got := b.wakeupCount(); got < 1 || got > 8 {
		t.Fatalf("wakeups after burst: %d, want within [1,8]", got)
	}
	if b.wakeLatency() <= 0 {
		t.Fatalf("wakeLatency after parked drain: %v, want > 0", b.wakeLatency())
	}

	// close wakes a parked consumer and pop reports it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, open := b.pop(nil, true); open {
			t.Error("pop after close reported open")
		}
	}()
	waitParked(t, b)
	b.close()
	wg.Wait()
}

// TestInboxSingleWakeupPerEpisode drives the scenario the batching
// exists for: with the consumer provably parked once, N producers each
// push a message before the consumer is allowed to run — the signaled
// flag must collapse their N wakeups into exactly one.
func TestInboxSingleWakeupPerEpisode(t *testing.T) {
	b := newInbox(1024)
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		items, _ := b.pop(nil, true) // parks; wakes on the burst's Signal
		<-release
		more, _ := b.pop(nil, false)
		done <- len(items) + len(more)
	}()
	waitParked(t, b)
	before := b.wakeupCount()
	const burst = 100
	for i := 0; i < burst; i++ {
		b.tryPush(msg.Request(int64(i), 0, 0, 0))
	}
	// All pushes landed before the consumer could re-park (it is gated
	// on release), so this burst spans exactly one park episode.
	if got := b.wakeupCount() - before; got != 1 {
		t.Fatalf("burst of %d pushes cost %d wakeups, want exactly 1", burst, got)
	}
	close(release)
	if got := <-done; got != burst {
		t.Fatalf("consumer drained %d msgs, want %d", got, burst)
	}
}

func waitParked(t *testing.T, b *inbox) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if parked, _, _, _ := b.scanState(); parked {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
	t.Fatal("consumer never parked")
}
