package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/obs"
	"pagen/internal/transport"
)

// Result is the output of an in-process parallel run.
type Result struct {
	// Graph is the merged output graph (nil when Options.Sink streams
	// the edges instead, or when Options.StreamDir spills them to
	// per-rank shard files).
	Graph *graph.Graph
	// Ranks holds per-rank statistics, indexed by rank.
	Ranks []RankStats
	// NodeLoad holds the global per-node received-message-load samples
	// (Lemma 3.4's M_k) in increasing node-id order, assembled from the
	// per-rank counters. Nil unless Options.CollectNodeLoad was set.
	NodeLoad []obs.KLoad
	// Trace is the decision trace when Options.Trace was requested via
	// Run's recordTrace flag (nil otherwise).
	Trace *model.Trace
	// Elapsed is the wall time of the parallel section (rank launch to
	// last rank finish), the T_p of the paper's speedup measurements.
	Elapsed time.Duration
}

// Run executes the parallel algorithm with every rank as a goroutine over
// the in-process transport, then gathers shards into one graph. The
// number of ranks is opts.Part.P(). If recordTrace is set, a shared
// decision trace is collected (rank slot ranges are disjoint, so the
// trace is written race-free).
func Run(opts Options, recordTrace bool) (*Result, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Part == nil {
		return nil, fmt.Errorf("core: nil partition scheme")
	}
	p := opts.Part.P()
	// Endpoint picks one rank's endpoint regardless of the concrete
	// group type; both in-process groups expose it.
	var endpoint func(r int) transport.Transport
	var closeEndpoint func(r int)
	switch opts.Transport {
	case "", "shm":
		// Default: the shared-memory transport hands message batches
		// across co-located ranks by reference — no per-message codec.
		group, err := transport.NewShmGroup(p)
		if err != nil {
			return nil, err
		}
		endpoint = func(r int) transport.Transport { return group.Endpoint(r) }
		closeEndpoint = func(r int) { group.Endpoint(r).Close() }
	case "local":
		// Serialization ablation: same process, but every batch goes
		// through the byte codec exactly as it would on a wire.
		group, err := transport.NewLocalGroup(p)
		if err != nil {
			return nil, err
		}
		endpoint = func(r int) transport.Transport { return group.Endpoint(r) }
		closeEndpoint = func(r int) { group.Endpoint(r).Close() }
	default:
		return nil, fmt.Errorf("core: unknown transport %q (in-process runs accept \"shm\" or \"local\")", opts.Transport)
	}
	if recordTrace {
		opts.Trace = model.NewTrace(opts.Params)
	}

	results := make([]*RankResult, p)
	errs := make([]error, p)
	start := time.Now()
	// A failed rank's peers block on receives that will never be
	// satisfied; closing every endpoint turns those into ErrClosed so
	// the whole run unwinds instead of deadlocking on wg.Wait.
	var closeOnce sync.Once
	abort := func() {
		closeOnce.Do(func() {
			for r := 0; r < p; r++ {
				closeEndpoint(r)
			}
		})
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = RunRank(endpoint(r), opts)
			if errs[r] != nil {
				abort()
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Prefer a root-cause error over the ErrClosed cascade the abort
	// broadcast induces in the other ranks.
	for r, err := range errs {
		if err != nil && !errors.Is(err, transport.ErrClosed) {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}

	shards := make([][]graph.Edge, p)
	ranks := make([]RankStats, p)
	var emitted int64
	for r, rr := range results {
		shards[r] = rr.Edges
		ranks[r] = rr.Stats
		emitted += rr.Stats.Edges
	}
	res := &Result{
		Ranks:   ranks,
		Trace:   opts.Trace,
		Elapsed: elapsed,
	}
	if opts.CollectNodeLoad {
		for r := 0; r < p; r++ {
			res.NodeLoad = append(res.NodeLoad,
				NodeLoadSamples(opts.Part, r, ranks[r].NodeLoad)...)
		}
		sort.Slice(res.NodeLoad, func(i, j int) bool {
			return res.NodeLoad[i].K < res.NodeLoad[j].K
		})
		// Elided queries are counted at the requesting rank, indexed by
		// global node id; fold them into the target node's sample. After
		// the sort, sample k sits at index k (the rank samples union to
		// exactly one sample per node).
		for r := 0; r < p; r++ {
			for k, c := range ranks[r].HubElided {
				res.NodeLoad[k].Elided += c
			}
		}
	}
	if emitted != opts.Params.M() {
		return nil, fmt.Errorf("core: generated %d edges, want %d", emitted, opts.Params.M())
	}
	if opts.Sink == nil && opts.StreamDir == "" {
		res.Graph = graph.Merge(opts.Params.N, shards...)
	}
	return res, nil
}
