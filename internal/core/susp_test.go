package core

import (
	"testing"

	"pagen/internal/xrand"
)

// countLive scans the raw buckets for live entries.
func (s *suspTable) countLive() int {
	n := 0
	for _, k := range s.keys {
		if k != suspEmpty && k != suspTomb {
			n++
		}
	}
	return n
}

// Rehash must preserve the live counter. The original implementation
// reset live to zero on every rehash; once the drifted counter lagged
// the real occupancy by enough, rehash sized the new table at the
// 16-bucket minimum, the load trigger fired inside the reinsert loop,
// and put/rehash recursed until the stack overflowed. Driving the table
// through many take/put cycles (the suspension churn of a real run)
// reproduces that drift deterministically.
func TestSuspTableRehashKeepsLiveCount(t *testing.T) {
	var s suspTable
	s.init()

	st := func(e int32) suspState { return suspState{e: e} }

	// Grow to well past several rehash triggers.
	const n = 200
	for k := int64(0); k < n; k++ {
		s.put(k, st(int32(k)))
		if got := s.countLive(); got != s.live {
			t.Fatalf("after put(%d): live counter %d, table holds %d", k, s.live, got)
		}
	}

	// Churn: take and re-put shifting windows of keys, leaving tombstones
	// behind so rehash keeps firing.
	for round := 0; round < 50; round++ {
		lo := int64(round * 3 % n)
		for k := lo; k < lo+40 && k < n; k++ {
			got, ok := s.take(k)
			if !ok {
				t.Fatalf("round %d: key %d missing", round, k)
			}
			if got.e != int32(k) {
				t.Fatalf("round %d: key %d returned edge %d", round, k, got.e)
			}
			s.put(k, st(int32(k)))
		}
		if got := s.countLive(); got != s.live {
			t.Fatalf("round %d: live counter %d, table holds %d", round, s.live, got)
		}
	}

	// Every key must still be present exactly once.
	for k := int64(0); k < n; k++ {
		got, ok := s.take(k)
		if !ok || got.e != int32(k) {
			t.Fatalf("final: key %d -> (%v, ok=%v), want (%d, true)", k, got.e, ok, k)
		}
	}
	if s.live != 0 {
		t.Fatalf("empty table reports live=%d", s.live)
	}
}

// A mixed workload with random interleaving must never lose a
// suspension, and rng state must round-trip intact.
func TestSuspTableRandomChurn(t *testing.T) {
	var s suspTable
	s.init()
	var rng xrand.Rand
	rng.SeedStream(99, 1)

	present := map[int64]int32{}
	for i := 0; i < 20000; i++ {
		k := int64(rng.Uint64n(512))
		if e, ok := present[k]; ok {
			got, found := s.take(k)
			if !found || got.e != e {
				t.Fatalf("step %d: take(%d) = (%d, %v), want (%d, true)", i, k, got.e, found, e)
			}
			delete(present, k)
		} else {
			e := int32(i)
			s.put(k, suspState{e: e})
			present[k] = e
		}
		if len(present) != s.live {
			t.Fatalf("step %d: live counter %d, want %d", i, s.live, len(present))
		}
	}
}
