package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/model"
	"pagen/internal/msg"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// The tentpole invariant: the hub-prefix cache changes traffic, never
// output. For every partition scheme, rank count and worker count, the
// edge list with the cache off, auto-sized, and at a fixed size must be
// identical element for element (a replica hit returns the same
// immutable value a round trip would).
func TestHubCacheOutputInvariance(t *testing.T) {
	pr := model.Params{N: 4_000, X: 3, P: 0.5}
	configs := []struct {
		kind  partition.Kind
		ranks int
	}{
		{partition.KindRRP, 1},
		{partition.KindRRP, 2},
		{partition.KindRRP, 4},
		{partition.KindUCP, 4},
	}
	for _, tc := range configs {
		part, err := partition.New(tc.kind, pr.N, tc.ranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			run := func(hub int64) *Result {
				res, err := Run(Options{
					Params: pr, Part: part, Seed: 9,
					Workers: workers, HubPrefix: hub,
				}, false)
				if err != nil {
					t.Fatalf("%v ranks=%d workers=%d hub=%d: %v", tc.kind, tc.ranks, workers, hub, err)
				}
				return res
			}
			base := run(-1)
			for _, hub := range []int64{0, 64} {
				res := run(hub)
				label := tc.kind.String() + " ranks/workers/hub matrix"
				equalEdges(t, label, res.Graph.Edges, base.Graph.Edges)
				var hits, pubSent, pubRecv int64
				for _, st := range res.Ranks {
					hits += st.HubCacheHits
					pubSent += st.Comm.PublishSent
					pubRecv += st.Comm.PublishRecv
				}
				if tc.ranks > 1 {
					if hits == 0 {
						t.Errorf("%v ranks=%d workers=%d hub=%d: cache never hit", tc.kind, tc.ranks, workers, hub)
					}
					// Fences trail publishes on each pairwise FIFO channel
					// and a rank only exits after collecting every fence, so
					// at run end no publish is in flight.
					if pubSent != pubRecv {
						t.Errorf("%v ranks=%d workers=%d hub=%d: %d publishes sent, %d received",
							tc.kind, tc.ranks, workers, hub, pubSent, pubRecv)
					}
				} else if hits != 0 || pubSent != 0 {
					t.Errorf("single rank engaged the cache: hits=%d publishes=%d", hits, pubSent)
				}
			}
		}
	}
}

// The Lemma 3.4 census must stay exact with the cache on: every copy
// query is counted exactly once, either at the owner (Load) or at the
// requester as elided (replica hit or coalesced ride-along), so the
// per-node sum Load+Elided equals the cache-off Load. The draw sequence
// is schedule-invariant (per-node private streams, value-determined
// retries), which makes this an equality, not an approximation.
func TestHubCacheNodeLoadSplit(t *testing.T) {
	pr := model.Params{N: 4_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(hub int64) *Result {
		res, err := Run(Options{
			Params: pr, Part: part, Seed: 21,
			Workers: 2, HubPrefix: hub, CollectNodeLoad: true,
		}, false)
		if err != nil {
			t.Fatalf("hub=%d: %v", hub, err)
		}
		return res
	}
	off, on := run(-1), run(0)
	if len(off.NodeLoad) != len(on.NodeLoad) {
		t.Fatalf("%d load samples with cache on, want %d", len(on.NodeLoad), len(off.NodeLoad))
	}
	var elided int64
	for i, want := range off.NodeLoad {
		got := on.NodeLoad[i]
		if got.K != want.K {
			t.Fatalf("sample %d is node %d, want %d", i, got.K, want.K)
		}
		if want.Elided != 0 {
			t.Fatalf("node %d: cache-off run reports %d elided queries", want.K, want.Elided)
		}
		elided += got.Elided
		if got.Load+got.Elided != want.Load {
			t.Fatalf("node %d: load %d + elided %d with cache on, want %d total",
				got.K, got.Load, got.Elided, want.Load)
		}
	}
	if elided == 0 {
		t.Fatal("cache elided no queries at 4 ranks")
	}
	var hits, coalesced int64
	for _, st := range on.Ranks {
		hits += st.HubCacheHits
		coalesced += st.ReqCoalesced
	}
	if hits+coalesced != elided {
		t.Fatalf("counters report %d hits + %d coalesced, node-load curve reports %d elided",
			hits, coalesced, elided)
	}
}

// Randomly delayed delivery with the cache enabled must not change the
// output: publishes arriving late just turn hits into misses, and the
// wire answer installs the same value. Per-rank edge lists are compared
// against an undisturbed run, not just counted.
func TestHubCacheChaosDelay(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Params: pr, Part: part, Seed: 11, HubPrefix: 0}

	run := func(wrap func(r int, tr transport.Transport) transport.Transport) []*RankResult {
		group, err := transport.NewLocalGroup(p)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]*RankResult, p)
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr := wrap(r, group.Endpoint(r))
				defer tr.Close()
				results[r], errs[r] = RunRank(tr, opts)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return results
	}

	clean := run(func(r int, tr transport.Transport) transport.Transport { return tr })
	chaotic := run(func(r int, tr transport.Transport) transport.Transport {
		return transport.NewChaos(tr, transport.ChaosConfig{
			Seed:      uint64(300 + r),
			DelayProb: 0.3,
			MaxDelay:  500 * time.Microsecond,
		})
	})
	for r := 0; r < p; r++ {
		equalEdges(t, "delay injection with cache on", chaotic[r].Edges, clean[r].Edges)
	}
}

// publishFilter is a transport wrapper that drops (and optionally
// duplicates) hub publishes in flight. Publishes are the one message
// kind the protocol may lose — a dropped publish only costs a replica
// miss, and installs are idempotent so a duplicated one is harmless.
// Fences and data messages pass through untouched.
type publishFilter struct {
	transport.Transport
	dup     bool // re-send surviving publish frames a second time
	dropped int64
}

func (f *publishFilter) Send(to int, data []byte) error {
	ms, err := msg.DecodeBatch(nil, data)
	if err != nil {
		return f.Transport.Send(to, data)
	}
	keep := ms[:0]
	var pubs []msg.Message
	for _, m := range ms {
		if m.Kind == msg.KindPublish {
			pubs = append(pubs, m)
			continue
		}
		keep = append(keep, m)
	}
	if len(pubs) == 0 {
		return f.Transport.Send(to, data)
	}
	if f.dup {
		// Deliver each publish twice instead of dropping it.
		keep = append(keep, pubs...)
		keep = append(keep, pubs...)
	} else {
		f.dropped += int64(len(pubs))
	}
	if len(keep) == 0 {
		transport.ReleaseFrame(data)
		return nil
	}
	frame := msg.AppendEncodeBatchV2(transport.LeaseFrame(len(data))[:0], keep)
	transport.ReleaseFrame(data)
	return f.Transport.Send(to, frame)
}

// runFiltered runs a p-rank job with every endpoint wrapped in a
// publishFilter and returns the per-rank results plus the filters.
func runFiltered(t *testing.T, opts Options, p int, dup bool) ([]*RankResult, []*publishFilter) {
	t.Helper()
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*RankResult, p)
	errs := make([]error, p)
	filters := make([]*publishFilter, p)
	for r := 0; r < p; r++ {
		filters[r] = &publishFilter{Transport: group.Endpoint(r), dup: dup}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer filters[r].Close()
			results[r], errs[r] = RunRank(filters[r], opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results, filters
}

// Losing every publish in flight must degrade the cache to a no-op, not
// corrupt the run: requests fall back to the wire (answers still install
// locally), fences still arrive, and the output is identical to the
// cache-off run. Duplicated publishes must be equally harmless
// (idempotent installs).
func TestHubCachePublishDropAndDup(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := runFiltered(t, Options{Params: pr, Part: part, Seed: 17, HubPrefix: -1}, p, false)

	dropped, filters := runFiltered(t, Options{Params: pr, Part: part, Seed: 17, HubPrefix: 0}, p, false)
	var lost, pubRecv int64
	for r := 0; r < p; r++ {
		equalEdges(t, "all publishes dropped", dropped[r].Edges, baseline[r].Edges)
		lost += filters[r].dropped
		pubRecv += dropped[r].Stats.Comm.PublishRecv
	}
	if lost == 0 {
		t.Fatal("filter dropped no publishes; the run never exercised the loss path")
	}
	if pubRecv != 0 {
		t.Fatalf("%d publishes were received despite the drop filter", pubRecv)
	}

	duplicated, _ := runFiltered(t, Options{Params: pr, Part: part, Seed: 17, HubPrefix: 0}, p, true)
	for r := 0; r < p; r++ {
		equalEdges(t, "all publishes duplicated", duplicated[r].Edges, baseline[r].Edges)
	}
}

// Mismatched hub-prefix settings across ranks must surface as an error
// naming the cause, never a hang or silent corruption.
func TestHubCacheMismatchedSettingsError(t *testing.T) {
	pr := model.Params{N: 4_000, X: 3, P: 0.5}
	const p = 2
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror Run's abort broadcast: the erroring rank closes every
	// endpoint so its peers unwind instead of waiting on fences that
	// will never come.
	var closeOnce sync.Once
	abort := func() {
		closeOnce.Do(func() {
			for r := 0; r < p; r++ {
				group.Endpoint(r).Close()
			}
		})
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		hub := int64(0)
		if r == 1 {
			hub = -1
		}
		wg.Add(1)
		go func(r int, hub int64) {
			defer wg.Done()
			_, errs[r] = RunRank(group.Endpoint(r), Options{
				Params: pr, Part: part, Seed: 3, HubPrefix: hub,
			})
			if errs[r] != nil {
				abort()
			}
		}(r, hub)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("mismatched hub settings hung the cluster")
	}
	found := false
	for _, err := range errs {
		if err != nil && strings.Contains(err.Error(), "hub") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rank reported the mismatch: %v", errs)
	}
}

// Replica internals: installs are idempotent (any interleaving of a
// publish and a wire answer writes the owner's single value), and the
// publish fan-out follows the request matrix — strictly lower-triangular
// under contiguous partitions, full mesh under round-robin.
func TestHubCacheInstallIdempotentAndPeers(t *testing.T) {
	c := newHubCache(4, 3, false)
	if got := c.slots(); got != 12 {
		t.Fatalf("slots() = %d, want 12", got)
	}
	if v := c.get(7); v != -1 {
		t.Fatalf("fresh slot reads %d, want -1", v)
	}
	c.install(7, 42)
	c.install(7, 42)
	if v := c.get(7); v != 42 {
		t.Fatalf("doubly installed slot reads %d, want 42", v)
	}

	cc := newHubCache(4, 3, true)
	cc.install(5, 9)
	cc.install(5, 9)
	if v := cc.get(5); v != 9 {
		t.Fatalf("concurrent replica reads %d, want 9", v)
	}

	ucp, err := partition.New(partition.KindUCP, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rrp, err := partition.New(partition.KindRRP, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := hubPeerRanks(ucp, 1, 4); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("UCP rank 1 publishes to %v, want [2 3]", got)
	}
	if got := hubPeerRanks(ucp, 3, 4); len(got) != 0 {
		t.Fatalf("UCP last rank publishes to %v, want none", got)
	}
	if got := hubPeerRanks(rrp, 1, 4); len(got) != 3 {
		t.Fatalf("RRP rank 1 publishes to %v, want all 3 peers", got)
	}
}

// Kill-and-resume with the cache on: the replica is never serialized, so
// a resumed rank must re-derive its contribution by republishing every
// resolved prefix slot it owns, and coalescing chains captured in the
// snapshot must come back. The resumed output is compared edge for edge
// with the uninterrupted run.
func TestHubCacheKillResumeRebuildsReplica(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks = 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 19, Workers: 2, HubPrefix: 0}, false)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch count is schedule-dependent; retry at smaller intervals until
	// at least one committed epoch exists (see TestCheckpointResumeEveryEpoch).
	var dir string
	var epochs []int64
	for every := int64(500); every >= 50; every /= 2 {
		dir = t.TempDir()
		if _, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 19, Workers: 2, HubPrefix: 0,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 1000},
		}, false); err != nil {
			t.Fatal(err)
		}
		if epochs, err = ckpt.Epochs(dir, 0); err != nil {
			t.Fatal(err)
		}
		if len(epochs) >= 1 {
			break
		}
	}
	if len(epochs) < 1 {
		t.Fatal("no epoch committed even at Every=50")
	}

	res, err := Run(Options{
		Params: pr, Part: newPart(), Seed: 19, Workers: 2, HubPrefix: 0,
		Checkpoint: &CheckpointOptions{Dir: dir, Every: 0, Keep: 1000, Resume: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	equalEdges(t, "resume with cache on", res.Graph.Edges, base.Graph.Edges)
	var pubs int64
	for _, st := range res.Ranks {
		pubs += st.Comm.PublishSent
	}
	// The snapshot was taken mid-run, so some owned prefix slots were
	// already resolved; publishResolvedPrefix must have re-seeded them.
	if pubs == 0 {
		t.Fatal("resumed run published nothing; replica was not re-derived")
	}

	// Resuming a cache-on snapshot with the cache off either fails
	// loudly (the snapshot captured coalescing chains the cache-off
	// engine cannot host) or — when no chain happened to be in flight at
	// the cut — degrades cleanly to identical output. Both are correct;
	// a hang or divergent output is not.
	res, err = Run(Options{
		Params: pr, Part: newPart(), Seed: 19, Workers: 2, HubPrefix: -1,
		Checkpoint: &CheckpointOptions{Dir: dir, Every: 0, Keep: 1000, Resume: true},
	}, false)
	if err != nil {
		if !strings.Contains(err.Error(), "hub") {
			t.Fatalf("cache-off resume failed with an unrelated error: %v", err)
		}
	} else {
		equalEdges(t, "resume with cache off", res.Graph.Edges, base.Graph.Edges)
	}
}

// Regression for the worker scratch-buffer boundary: sendData must store
// the append result before the flush-path early return (append may have
// grown the backing array; dropping it left w.scratch[to] aliasing the
// stale smaller one). Publishes fan out to every peer through sendData,
// so a concurrent multi-rank run with the cache on crosses the
// workerScratchCap boundary on every destination many times; any lost or
// doubled message shows up as a wrong edge list or a hang.
func TestWorkerScratchCapBoundary(t *testing.T) {
	pr := model.Params{N: 20_000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, hub := range []int64{-1, 0} {
		base, err := Run(Options{Params: pr, Part: part, Seed: 23, Workers: 1, HubPrefix: hub}, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Params: pr, Part: part, Seed: 23, Workers: 4, HubPrefix: hub}, false)
		if err != nil {
			t.Fatal(err)
		}
		equalEdges(t, "scratch boundary", res.Graph.Edges, base.Graph.Edges)
		var reqs int64
		for _, st := range res.Ranks {
			reqs += st.Comm.RequestsSent
		}
		// Sanity: enough per-destination traffic that the 64-message
		// scratch flush fired constantly.
		if reqs < 10*workerScratchCap {
			t.Fatalf("only %d requests crossed the wire; the scratch path was barely exercised", reqs)
		}
	}
}
