package core

import (
	"math"
	"testing"
	"testing/quick"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/stats"
)

func mustScheme(t testing.TB, kind partition.Kind, n int64, p int) partition.Scheme {
	t.Helper()
	s, err := partition.New(kind, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runFor(t testing.TB, pr model.Params, kind partition.Kind, p int, seed uint64) *Result {
	t.Helper()
	res, err := Run(Options{
		Params: pr,
		Part:   mustScheme(t, kind, pr.N, p),
		Seed:   seed,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var allKinds = []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP, partition.KindExactCP}

// The load-bearing correctness test: for every scheme and several rank
// counts, the parallel output must have the exact edge count, no
// self-loops, no parallel edges, backward-pointing edges, and one
// connected component.
func TestParallelStructuralInvariants(t *testing.T) {
	cases := []struct {
		pr model.Params
		p  int
	}{
		{model.Params{N: 2, X: 1, P: 0.5}, 1},
		{model.Params{N: 50, X: 1, P: 0.5}, 4},
		{model.Params{N: 500, X: 1, P: 0.5}, 7},
		{model.Params{N: 500, X: 4, P: 0.5}, 1},
		{model.Params{N: 500, X: 4, P: 0.5}, 5},
		{model.Params{N: 2000, X: 8, P: 0.5}, 16},
		{model.Params{N: 300, X: 2, P: 0.9}, 3},
		{model.Params{N: 300, X: 2, P: 0.1}, 3},
		{model.Params{N: 12, X: 10, P: 0.5}, 4}, // nearly all clique
	}
	for _, c := range cases {
		for _, kind := range allKinds {
			res := runFor(t, c.pr, kind, c.p, 99)
			g := res.Graph
			if g.M() != c.pr.M() {
				t.Fatalf("%v p=%d %+v: m = %d, want %d", kind, c.p, c.pr, g.M(), c.pr.M())
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%v p=%d %+v: %v", kind, c.p, c.pr, err)
			}
			for _, e := range g.Edges {
				if e.U <= e.V {
					t.Fatalf("%v p=%d: non-backward edge (%d,%d)", kind, c.p, e.U, e.V)
				}
			}
			if comp := g.ToCSR().ConnectedComponents(); comp != 1 {
				t.Fatalf("%v p=%d %+v: %d components", kind, c.p, c.pr, comp)
			}
		}
	}
}

// Single-rank parallel execution must match the sequential copy model
// exactly (same seed stream, same draws, no messages).
func TestSingleRankMatchesSequential(t *testing.T) {
	pr := model.Params{N: 3000, X: 3, P: 0.5}
	res := runFor(t, pr, partition.KindUCP, 1, 7)

	gSeq, _, err := seq.CopyModel(pr, 7, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.M() != gSeq.M() {
		t.Fatalf("edge counts differ: %d vs %d", res.Graph.M(), gSeq.M())
	}
	// Compare as edge sets: emission order differs (parallel emits
	// clique edges at bootstrap).
	set := make(map[graph.Edge]bool, gSeq.M())
	for _, e := range gSeq.Edges {
		set[e.Canonical()] = true
	}
	for _, e := range res.Graph.Edges {
		if !set[e.Canonical()] {
			t.Fatalf("edge %v not in sequential output", e)
		}
	}
	st := res.Ranks[0]
	if st.Comm.RequestsSent != 0 || st.Comm.ResolvedSent != 0 {
		t.Fatalf("single rank sent messages: %+v", st.Comm)
	}
}

// x = 1 runs are fully deterministic (no duplicate retries), so the
// attachment of every node must be identical no matter how many ranks or
// which scheme computed it.
func TestX1DeterministicAcrossRankCounts(t *testing.T) {
	pr := model.Params{N: 2000, X: 1, P: 0.5}
	want := attachments(t, runFor(t, pr, partition.KindUCP, 1, 13))
	for _, kind := range allKinds {
		for _, p := range []int{2, 5, 16} {
			got := attachments(t, runFor(t, pr, kind, p, 13))
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("%v p=%d: F_%d = %d, want %d", kind, p, u, got[u], want[u])
				}
			}
		}
	}
}

// attachments extracts F_t for x = 1 graphs (the non-clique endpoint map).
func attachments(t *testing.T, res *Result) map[int64]int64 {
	t.Helper()
	f := make(map[int64]int64, res.Graph.M())
	for _, e := range res.Graph.Edges {
		if _, dup := f[e.U]; dup {
			t.Fatalf("node %d has two attachments", e.U)
		}
		f[e.U] = e.V
	}
	return f
}

// The same seed must give the same x=1 graph on repeated runs with the
// same configuration.
func TestRepeatabilitySameConfig(t *testing.T) {
	pr := model.Params{N: 3000, X: 1, P: 0.5}
	a := attachments(t, runFor(t, pr, partition.KindRRP, 4, 21))
	b := attachments(t, runFor(t, pr, partition.KindRRP, 4, 21))
	for u, v := range a {
		if b[u] != v {
			t.Fatalf("run differs at node %d", u)
		}
	}
}

// Degree distribution from a multi-rank run must match the sequential
// copy model's distribution (same model, independent randomness).
func TestParallelMatchesSequentialDistribution(t *testing.T) {
	pr := model.Params{N: 20000, X: 4, P: 0.5}
	res := runFor(t, pr, partition.KindRRP, 8, 31)
	gSeq, _, err := seq.CopyModel(pr, 32, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hp := res.Graph.DegreeHistogram()
	hs := gSeq.DegreeHistogram()
	for d := int64(4); d <= 12; d++ {
		pp := float64(hp.Count(d)) / float64(pr.N)
		ps := float64(hs.Count(d)) / float64(pr.N)
		if math.Abs(pp-ps) > 0.015 {
			t.Errorf("P(deg=%d): parallel %.4f vs sequential %.4f", d, pp, ps)
		}
	}
}

// Power-law output: the parallel generator's degree distribution must be
// heavy-tailed with a BA-range exponent (the paper's Figure 4 check).
func TestParallelPowerLaw(t *testing.T) {
	pr := model.Params{N: 30000, X: 4, P: 0.5}
	res := runFor(t, pr, partition.KindLCP, 8, 41)
	fit, err := stats.PowerLawMLE(res.Graph.Degrees(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Gamma < 2.3 || fit.Gamma > 3.6 {
		t.Fatalf("gamma = %v", fit.Gamma)
	}
}

// Message counters must be conserved: total sent == total received, and
// every request gets exactly one resolved answer... minus the requests
// answered locally. Cross-rank message conservation is exact.
func TestMessageConservation(t *testing.T) {
	pr := model.Params{N: 10000, X: 4, P: 0.5}
	for _, kind := range allKinds {
		res := runFor(t, pr, kind, 8, 51)
		var reqS, reqR, resS, resR int64
		for _, st := range res.Ranks {
			reqS += st.Comm.RequestsSent
			reqR += st.Comm.RequestsRecv
			resS += st.Comm.ResolvedSent
			resR += st.Comm.ResolvedRecv
		}
		if reqS != reqR {
			t.Fatalf("%v: requests sent %d != received %d", kind, reqS, reqR)
		}
		if resS != resR {
			t.Fatalf("%v: resolved sent %d != received %d", kind, resS, resR)
		}
		if reqS == 0 {
			t.Fatalf("%v: multi-rank run sent no requests", kind)
		}
	}
}

// With consecutive partitioning, requests only flow to lower ranks
// (Section 4.6.2: "processor i sends outgoing request messages to
// processors 0 to i-1"); rank 0 sends none.
func TestConsecutiveRequestDirection(t *testing.T) {
	pr := model.Params{N: 10000, X: 4, P: 0.5}
	res := runFor(t, pr, partition.KindUCP, 8, 61)
	if res.Ranks[0].Comm.RequestsSent != 0 {
		t.Fatalf("rank 0 sent %d requests", res.Ranks[0].Comm.RequestsSent)
	}
	// Low ranks receive more requests than high ranks (Lemma 3.4).
	if res.Ranks[0].Comm.RequestsRecv <= res.Ranks[7].Comm.RequestsRecv {
		t.Fatalf("rank 0 received %d requests, rank 7 received %d — expected decreasing",
			res.Ranks[0].Comm.RequestsRecv, res.Ranks[7].Comm.RequestsRecv)
	}
	// The full request matrix must be strictly lower-triangular: rank i
	// requests only from ranks j < i (k < t and consecutive partitions).
	for i, st := range res.Ranks {
		for j, cnt := range st.RequestsTo {
			if j >= i && cnt != 0 {
				t.Fatalf("rank %d sent %d requests to rank %d (not lower-triangular)", i, cnt, j)
			}
		}
	}
}

// Under RRP every rank requests from every other rank (no triangular
// structure): the matrix is dense off the diagonal.
func TestRRPRequestMatrixDense(t *testing.T) {
	pr := model.Params{N: 10000, X: 4, P: 0.5}
	res := runFor(t, pr, partition.KindRRP, 4, 63)
	for i, st := range res.Ranks {
		for j, cnt := range st.RequestsTo {
			if j == i {
				if cnt != 0 {
					t.Fatalf("rank %d 'sent' %d requests to itself", i, cnt)
				}
				continue
			}
			if cnt == 0 {
				t.Fatalf("rank %d sent no requests to rank %d under RRP", i, j)
			}
		}
	}
}

// Buffering reduces transport frames without changing logical traffic.
func TestBufferingAblation(t *testing.T) {
	pr := model.Params{N: 8000, X: 4, P: 0.5}
	part := mustScheme(t, partition.KindRRP, pr.N, 8)
	run := func(cap int) (logical, frames int64) {
		res, err := Run(Options{Params: pr, Part: part, Seed: 71, BufferCap: cap}, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range res.Ranks {
			logical += st.Comm.MessagesSent()
			frames += st.Comm.FramesSent
		}
		return logical, frames
	}
	logU, framesU := run(1)   // unbuffered
	logB, framesB := run(256) // buffered
	if framesU != logU {
		t.Fatalf("unbuffered frames %d != logical %d", framesU, logU)
	}
	if framesB >= framesU/4 {
		t.Fatalf("buffering saved too little: %d frames vs %d unbuffered", framesB, framesU)
	}
	// Logical message counts are statistically similar (same model; the
	// exact count varies with retry interleaving).
	ratio := float64(logB) / float64(logU)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("logical traffic changed with buffering: %d vs %d", logB, logU)
	}
}

// Trace collection in parallel mode: slots are all recorded and copy
// fractions are sane.
func TestParallelTrace(t *testing.T) {
	pr := model.Params{N: 5000, X: 2, P: 0.5}
	res, err := Run(Options{
		Params: pr,
		Part:   mustScheme(t, partition.KindRRP, pr.N, 4),
		Seed:   81,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	copied := 0
	for i := 0; i < res.Trace.Slots(); i++ {
		if res.Trace.Copied[i] {
			copied++
			if res.Trace.K[i] < 2 {
				t.Fatalf("slot %d copies from clique node %d", i, res.Trace.K[i])
			}
		}
	}
	frac := float64(copied) / float64(res.Trace.Slots())
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("copied fraction %v", frac)
	}
}

// Stats sanity: nodes add up, loads are positive, busy <= wall.
func TestRankStats(t *testing.T) {
	pr := model.Params{N: 6000, X: 3, P: 0.5}
	res := runFor(t, pr, partition.KindLCP, 6, 91)
	var nodes int64
	for r, st := range res.Ranks {
		if st.Rank != r {
			t.Fatalf("rank field = %d at index %d", st.Rank, r)
		}
		nodes += st.Nodes
		if st.TotalLoad() < st.Nodes {
			t.Fatalf("rank %d: total load %d below node count", r, st.TotalLoad())
		}
		if st.BusyTime < 0 || st.BusyTime > st.WallTime {
			t.Fatalf("rank %d: busy %v wall %v", r, st.BusyTime, st.WallTime)
		}
	}
	if nodes != pr.N {
		t.Fatalf("nodes sum to %d", nodes)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

// Error paths of Run/RunRank.
func TestRunErrors(t *testing.T) {
	pr := model.Params{N: 100, X: 2, P: 0.5}
	if _, err := Run(Options{Params: pr}, false); err == nil {
		t.Error("nil partition accepted")
	}
	if _, err := Run(Options{Params: model.Params{N: 0, X: 2, P: 0.5},
		Part: mustScheme(t, partition.KindUCP, 100, 2)}, false); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(Options{Params: pr,
		Part: mustScheme(t, partition.KindUCP, 99, 2)}, false); err == nil {
		t.Error("partition/params size mismatch accepted")
	}
}

// Many ranks relative to nodes: partitions with zero generating nodes
// must still participate in termination correctly.
func TestManyRanksFewNodes(t *testing.T) {
	pr := model.Params{N: 40, X: 3, P: 0.5}
	for _, kind := range allKinds {
		res := runFor(t, pr, kind, 16, 101)
		if res.Graph.M() != pr.M() {
			t.Fatalf("%v: m = %d", kind, res.Graph.M())
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// Stress: a larger run on every scheme exercising deep dependency chains
// and heavy cross-rank traffic, to shake out termination races. Run with
// -race in CI for full effect.
func TestStressAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	pr := model.Params{N: 60000, X: 6, P: 0.5}
	for _, kind := range allKinds {
		res := runFor(t, pr, kind, 32, 111)
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if comp := res.Graph.ToCSR().ConnectedComponents(); comp != 1 {
			t.Fatalf("%v: %d components", kind, comp)
		}
	}
}

// Property: random small configurations across all schemes must always
// produce structurally valid, complete graphs.
func TestEngineRandomConfigsProperty(t *testing.T) {
	f := func(nRaw uint16, xRaw, pRaw, ranksRaw, kindRaw uint8) bool {
		x := int(xRaw%6) + 1
		n := int64(x) + 2 + int64(nRaw%800)
		p := 0.05 + float64(pRaw%90)/100 // [0.05, 0.95)
		ranks := int(ranksRaw%12) + 1
		kind := allKinds[int(kindRaw)%len(allKinds)]
		pr := model.Params{N: n, X: x, P: p}
		if pr.Validate() != nil {
			return true // skip invalid corner draws
		}
		part, err := partition.New(kind, n, ranks)
		if err != nil {
			return false
		}
		res, err := Run(Options{Params: pr, Part: part, Seed: uint64(nRaw) + 1}, false)
		if err != nil {
			t.Logf("%v n=%d x=%d p=%v ranks=%d: %v", kind, n, x, p, ranks, err)
			return false
		}
		if res.Graph.M() != pr.M() {
			return false
		}
		return res.Graph.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelRRP8(b *testing.B) {
	pr := model.Params{N: 100000, X: 4, P: 0.5}
	part := mustScheme(b, partition.KindRRP, pr.N, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Options{Params: pr, Part: part, Seed: uint64(i)}, false); err != nil {
			b.Fatal(err)
		}
	}
}
