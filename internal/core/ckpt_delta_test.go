package core

import (
	"fmt"
	"os"
	"testing"

	"pagen/internal/ckpt"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// deltaLibrary runs a checkpointed generation with FullEvery until the
// directory holds at least one delta epoch on every rank, and returns
// the directory plus rank 0's epoch list. Whether a second (delta)
// epoch commits before the run finishes is schedule-bound on a small
// problem, so this retries across cadences and repeated attempts —
// each run re-rolls the schedule. BufferCap 1 stretches the run over
// many protocol rounds, which makes a second (delta) epoch near
// certain; the library run's own output is discarded, so the cap does
// not constrain the resume runs under test.
func deltaLibrary(t *testing.T, pr model.Params, ranks int, seed uint64, fullEvery int) (string, []int64) {
	t.Helper()
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	for attempt := 0; attempt < 12; attempt++ {
		every := []int64{500, 250, 125, 62}[attempt%4]
		dir := t.TempDir()
		if _, err := Run(Options{
			Params: pr, Part: newPart(), Seed: seed, Workers: 2, BufferCap: 1,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 1000, FullEvery: fullEvery},
		}, false); err != nil {
			t.Fatal(err)
		}
		epochs, err := ckpt.Epochs(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		allRanksHaveDelta := true
		for r := 0; r < ranks && allRanksHaveDelta; r++ {
			rankEpochs, err := ckpt.Epochs(dir, r)
			if err != nil {
				t.Fatal(err)
			}
			deltas := 0
			for _, e := range rankEpochs {
				h, err := ckpt.ReadHeader(ckpt.Path(dir, r, e))
				if err != nil {
					t.Fatal(err)
				}
				if h.Kind == ckpt.KindDelta {
					deltas++
				}
			}
			if deltas == 0 {
				allRanksHaveDelta = false
			}
		}
		if allRanksHaveDelta {
			return dir, epochs
		}
	}
	t.Skip("no run committed a delta epoch on every rank in 12 attempts (schedule too fast)")
	return "", nil
}

// Resuming over a base+delta chain must reproduce the uninterrupted
// output exactly — at the same worker count, a different one, and the
// single-worker loop — for every retained epoch, full or delta.
func TestCheckpointDeltaChainResume(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks, fullEvery = 3, 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 21, Workers: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	dir, epochs := deltaLibrary(t, pr, ranks, 21, fullEvery)

	resume := func(label string, workers int) {
		res, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 21, Workers: workers,
			Checkpoint: &CheckpointOptions{Dir: dir, Keep: 1000, FullEvery: fullEvery, Resume: true},
		}, false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		equalEdges(t, label, res.Graph.Edges, base.Graph.Edges)
	}

	// Newest epoch (usually a delta) at several worker counts — the
	// chain replay feeding the cross-worker state redistribution.
	resume("newest workers=2", 2)
	resume("newest workers=4", 4)
	resume("newest workers=1", 1)

	// Then every earlier epoch, trimming as a crash would have.
	for i := len(epochs) - 2; i >= 0; i-- {
		for r := 0; r < ranks; r++ {
			if err := os.Remove(ckpt.Path(dir, r, epochs[i+1])); err != nil {
				t.Fatal(err)
			}
		}
		resume(fmt.Sprintf("epoch %d", epochs[i]), 2)
	}
}

// A torn delta snapshot must pull its rank back to the previous
// restorable epoch (its chain prefix is still intact), and the cluster
// min-reduce must drag the others back with it — output unchanged.
func TestCheckpointTornDeltaFallsBack(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks, fullEvery = 2, 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 23, Workers: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	dir, epochs := deltaLibrary(t, pr, ranks, 23, fullEvery)

	// Tear rank 1's newest delta mid-file.
	torn := int64(-1)
	for i := len(epochs) - 1; i >= 0; i-- {
		h, err := ckpt.ReadHeader(ckpt.Path(dir, 1, epochs[i]))
		if err != nil {
			t.Fatal(err)
		}
		if h.Kind == ckpt.KindDelta {
			torn = epochs[i]
			break
		}
	}
	if torn < 0 {
		t.Skip("rank 1 committed no delta epoch")
	}
	path := ckpt.Path(dir, 1, torn)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := ckpt.Latest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) == 0 {
		t.Fatalf("Latest skipped nothing; want the torn delta among %v", skipped)
	}
	if snap == nil || snap.Epoch >= torn {
		t.Fatalf("Latest returned epoch %v, want one before torn epoch %d", snap, torn)
	}
	res, err := Run(Options{
		Params: pr, Part: newPart(), Seed: 23, Workers: 2,
		Checkpoint: &CheckpointOptions{Dir: dir, Keep: 1000, FullEvery: fullEvery, Resume: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	equalEdges(t, "torn delta fallback", res.Graph.Edges, base.Graph.Edges)
}

// Deleting the full snapshot a delta chain is anchored to must strand
// every epoch of that chain: restore falls back past the whole chain to
// the previous full epoch (or a fresh start), never replaying against a
// missing or wrong base.
func TestCheckpointMissingBaseFallsBack(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks, fullEvery = 2, 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 29, Workers: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	dir, epochs := deltaLibrary(t, pr, ranks, 29, fullEvery)

	// Find the newest full epoch on rank 0 that anchors at least one
	// later delta, and delete it.
	var missing int64 = -1
	for i := len(epochs) - 1; i >= 0; i-- {
		h, err := ckpt.ReadHeader(ckpt.Path(dir, 0, epochs[i]))
		if err != nil {
			t.Fatal(err)
		}
		if h.Kind == ckpt.KindFull && i < len(epochs)-1 {
			missing = epochs[i]
			break
		}
	}
	if missing < 0 {
		t.Skip("no full epoch anchors a later delta on rank 0")
	}
	if err := os.Remove(ckpt.Path(dir, 0, missing)); err != nil {
		t.Fatal(err)
	}
	snap, _, err := ckpt.Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil && snap.Epoch >= missing {
		t.Fatalf("Latest returned epoch %d, want one before the missing base %d", snap.Epoch, missing)
	}
	res, err := Run(Options{
		Params: pr, Part: newPart(), Seed: 29, Workers: 2,
		Checkpoint: &CheckpointOptions{Dir: dir, Keep: 1000, FullEvery: fullEvery, Resume: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	equalEdges(t, "missing base fallback", res.Graph.Edges, base.Graph.Edges)
}

// Killing a rank mid-run — with epochs committing and background
// publishes in flight — must leave a directory a resume can always use:
// the relaunched cluster produces output identical to an uninterrupted
// run. The kill needs the TCP transport (crash detection lives in its
// failure model), and BufferCap 1 puts the kill budget mid-protocol.
func TestCheckpointKillDuringBackgroundWrite(t *testing.T) {
	pr := model.Params{N: 10_000, X: 3, P: 0.5}
	const ranks = 3
	part, err := partition.New(partition.KindRRP, pr.N, ranks)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Options{Params: pr, Part: part, Seed: 31, Workers: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	for ki, killAfter := range []int64{60, 600} {
		dir := t.TempDir()
		runCluster := func(basePort int, kill int64, resume bool) ([]*RankResult, []error) {
			addrs := make([]string, ranks)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
			}
			opts := Options{
				Params: pr, Part: part, Seed: 31, Workers: 1, BufferCap: 1,
				Checkpoint: &CheckpointOptions{Dir: dir, Every: 300, Keep: 1000, FullEvery: 2, Resume: resume},
			}
			results := make([]*RankResult, ranks)
			errs := make([]error, ranks)
			done := make(chan int, ranks)
			for r := 0; r < ranks; r++ {
				go func(r int) {
					defer func() { done <- r }()
					tr, err := transport.NewTCP(r, addrs)
					if err != nil {
						errs[r] = err
						return
					}
					if kill > 0 && r == ranks-1 {
						chaotic := transport.NewChaos(tr, transport.ChaosConfig{
							Seed: 31, KillAfterSends: kill,
						})
						results[r], errs[r] = RunRank(chaotic, opts)
						chaotic.Close()
						return
					}
					defer tr.Close()
					results[r], errs[r] = RunRank(tr, opts)
				}(r)
			}
			for i := 0; i < ranks; i++ {
				<-done
			}
			return results, errs
		}
		// Kill pass: outcomes don't matter (the kill may land anywhere,
		// including inside a background publish); the directory must
		// stay restorable regardless.
		runCluster(43600+ki*2*ranks, killAfter, false)
		// Resume pass on fresh ports; must succeed and match.
		results, errs := runCluster(43600+ki*2*ranks+ranks, 0, true)
		var all []graph.Edge
		for r := 0; r < ranks; r++ {
			if errs[r] != nil {
				t.Fatalf("killAfter=%d: resume rank %d: %v", killAfter, r, errs[r])
			}
			all = append(all, results[r].Edges...)
		}
		sameEdgeSet(t, fmt.Sprintf("killAfter=%d resume", killAfter), all, edgeSet(t, base.Graph.Edges))
	}
}
