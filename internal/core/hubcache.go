package core

import (
	"fmt"
	"sync/atomic"

	"pagen/internal/msg"
	"pagen/internal/partition"
)

// hubCache is the rank's read-mostly replica of the hub prefix: the F
// slots of the first h global nodes, flat like the main table (slot
// k*x + l). Slots start NILL and are installed with the owning rank's
// write-once value — by the coordinator applying a publish message, or
// by a worker installing a wire answer it received anyway — so every
// install for a slot carries the same immutable value and the replica
// needs no invalidation protocol (DESIGN.md §10). Only remote-owned
// slots are ever consulted: a local copy source short-circuits to the
// rank's own table before the replica is looked at.
type hubCache struct {
	h          int64 // nodes covered: global ids [0, h)
	x64        int64
	concurrent bool
	f          []int64
}

func newHubCache(h, x64 int64, concurrent bool) *hubCache {
	c := &hubCache{h: h, x64: x64, concurrent: concurrent, f: make([]int64, h*x64)}
	for i := range c.f {
		c.f[i] = -1
	}
	return c
}

// slots returns the flat slot count h*x.
func (c *hubCache) slots() int64 { return int64(len(c.f)) }

// get reads replica slot key (k*x + l); -1 means not yet known here.
// Atomic when workers share the replica, mirroring engine.setSlot.
func (c *hubCache) get(key int64) int64 {
	if c.concurrent {
		return atomic.LoadInt64(&c.f[key])
	}
	return c.f[key]
}

// install records the resolved value for slot key. Idempotent: racing
// installs (a publish against a wire answer) and duplicated publishes
// all write the owner's single value, so any interleaving is harmless.
func (c *hubCache) install(key, v int64) {
	if c.concurrent {
		atomic.StoreInt64(&c.f[key], v)
		return
	}
	c.f[key] = v
}

// hubPeerRanks returns the ranks that can request a prefix slot this
// rank owns — the publish fan-out set. Under a contiguous partition the
// request matrix is strictly lower-triangular (Section 4.6.2): only
// nodes t > k query k, and with contiguous ranges those live on ranks
// after k's owner (same-rank requesters read the local table directly),
// so publishes skip the ranks before this one. Non-contiguous schemes
// (RRP) interleave requesters, so every peer gets the publishes.
func hubPeerRanks(part partition.Scheme, rank, p int) []int {
	peers := make([]int, 0, p-1)
	if _, ok := part.(partition.Consecutive); ok {
		for r := rank + 1; r < p; r++ {
			peers = append(peers, r)
		}
		return peers
	}
	for r := 0; r < p; r++ {
		if r != rank {
			peers = append(peers, r)
		}
	}
	return peers
}

// noteElided counts one elided copy query for global prefix node k —
// load its owner would have seen without the cache (Lemma 3.4's M_k is
// then NodeLoad + HubElided across ranks). No-op for k outside the
// prefix or without CollectNodeLoad.
func (e *engine) noteElided(k int64) {
	if e.hubElided == nil || k >= int64(len(e.hubElided)) {
		return
	}
	if e.concurrent {
		atomic.AddInt64(&e.hubElided[k], 1)
		return
	}
	e.hubElided[k]++
}

// applyPublish installs one received publish into the replica. Runs on
// the coordinator (the transport's single consumer); workers read the
// replica through atomics, and a racing worker-side install of the same
// answer writes the identical value.
func (e *engine) applyPublish(m msg.Message) error {
	hub := e.hub
	if hub == nil {
		return fmt.Errorf("core: rank %d received a hub publish for node %d with the hub cache disabled (mismatched hub-prefix settings across ranks?)", e.rank, m.T)
	}
	if m.T >= hub.h {
		return fmt.Errorf("core: rank %d received a hub publish for node %d outside its prefix of %d nodes (mismatched hub-prefix settings across ranks?)", e.rank, m.T, hub.h)
	}
	hub.install(m.T*e.x64+int64(m.E), m.V)
	return nil
}

// onFence counts one received hub fence: the sending rank promises no
// further publishes. Receiving p-1 of them (plus stop) lets finished()
// release the transport with no publish frame still in flight.
func (e *engine) onFence() error {
	if e.hub == nil {
		return fmt.Errorf("core: rank %d received a hub fence with the hub cache disabled (mismatched hub-prefix settings across ranks?)", e.rank)
	}
	e.fencesRecv++
	return nil
}

// sendFences tells every peer this rank will publish no more. SendNow
// appends the fence to the peer's stripe and flushes the whole stripe,
// so on each pairwise FIFO channel the fence trails every publish this
// rank buffered — which is what makes fencesRecv a proof of silence.
// Called at done-report time: all local slots are resolved, so no
// further resolveLocal (and hence no further publish) can happen.
func (e *engine) sendFences() error {
	if e.hub == nil {
		return nil
	}
	for r := 0; r < e.p; r++ {
		if r == e.rank {
			continue
		}
		if err := e.cm.SendNow(r, msg.Fence(e.rank)); err != nil {
			return err
		}
	}
	return nil
}

// finished reports whether the coordinator may leave its receive loop:
// stop has arrived and — when the hub replica is on — every peer has
// fenced its publish stream. Without the fence wait, a publish sent to
// an already-stopped rank would linger on the transport and corrupt
// whatever runs over the same connections next (cmd/pa-tcp's post-run
// collectives reject non-collective traffic). Duplicated fences only
// push fencesRecv further past the threshold, hence >=.
func (e *engine) finished() bool {
	return e.stopped && (e.hub == nil || e.fencesRecv >= e.p-1)
}

// publishResolvedPrefix seeds the peers' replicas with every already
// resolved prefix slot this rank owns: node x's bootstrap attachments
// on a fresh run, everything the snapshot restored on a resumed one
// (the replica itself is never serialized — each rank re-derives its
// contribution here, see docs/CHECKPOINT_FORMAT.md). Runs on the rank
// goroutine after bootstrap/restore, before any worker starts; sends
// are buffered and ride the engine's normal flush points.
func (e *engine) publishResolvedPrefix() error {
	hub := e.hub
	if hub == nil || len(e.hubPeers) == 0 {
		return nil
	}
	for k := e.x64; k < hub.h; k++ {
		if e.part.Owner(k) != e.rank {
			continue
		}
		base := e.part.Index(e.rank, k) * e.x64
		for l := 0; l < e.x; l++ {
			v := e.f[base+int64(l)]
			if v < 0 {
				continue
			}
			for _, r := range e.hubPeers {
				if err := e.cm.Send(r, msg.Publish(k, l, v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
