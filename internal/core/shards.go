package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"pagen/internal/graph"
)

// RunToShards executes the parallel algorithm with every rank streaming
// its edges directly to its own shard file under dir (the paper's
// Section 2 I/O model: processors write to a shared file system
// independently), never materialising the graph in memory. The shards
// are in the binary format of graph.WriteShard and merge with
// graph.ReadShards.
func RunToShards(opts Options, dir string) (*Result, error) {
	if opts.Sink != nil {
		return nil, fmt.Errorf("core: RunToShards sets its own sink")
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Part == nil {
		return nil, fmt.Errorf("core: nil partition scheme")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := opts.Part.P()

	// One streaming writer per rank: the sink dispatches on rank, and
	// the writer locks internally because a rank's workers emit
	// concurrently. Each shard file carries the magic + node count
	// header up-front and a placeholder edge count that is rewritten on
	// close (count is unknown until the run ends).
	writers := make([]*shardWriter, p)
	for r := 0; r < p; r++ {
		w, err := newShardWriter(graph.ShardPath(dir, r, p), opts.Params.N)
		if err != nil {
			return nil, err
		}
		writers[r] = w
	}
	opts.Sink = func(rank int, e graph.Edge) {
		writers[rank].append(e)
	}
	res, runErr := Run(opts, opts.Trace != nil)
	var closeErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, w := range writers {
		wg.Add(1)
		go func(w *shardWriter) {
			defer wg.Done()
			if err := w.close(); err != nil {
				mu.Lock()
				if closeErr == nil {
					closeErr = err
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return res, nil
}

// shardWriter streams edges of one rank to disk. The binary format must
// match graph.WriteBinary exactly, but the edge count is only known at
// the end, so it writes a fixed-width 10-byte uvarint placeholder and
// patches it on close. append is safe for concurrent use (a rank's
// worker goroutines share the writer).
type shardWriter struct {
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	countOff int64
	count    uint64
	err      error
}

func newShardWriter(path string, n int64) (*shardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &shardWriter{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	if _, err := w.bw.WriteString("PAGB"); err != nil {
		f.Close()
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(n))
	if _, err := w.bw.Write(buf[:k]); err != nil {
		f.Close()
		return nil, err
	}
	w.countOff = int64(4 + k)
	// Placeholder: maximal-width uvarint encoding of 0 does not exist,
	// so reserve MaxVarintLen64 bytes by writing a padded uvarint — a
	// 10-byte encoding with continuation bits and zero payload is not
	// canonical, so instead reserve the bytes and patch a fixed-width
	// encoding later (encodeFixedUvarint always emits 10 bytes).
	if _, err := w.bw.Write(encodeFixedUvarint(0)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// encodeFixedUvarint encodes x as exactly MaxVarintLen64 bytes by using
// continuation bits on the first nine bytes. binary.ReadUvarint decodes
// it (the padding holds the high bits, which are zero).
func encodeFixedUvarint(x uint64) []byte {
	out := make([]byte, binary.MaxVarintLen64)
	for i := 0; i < binary.MaxVarintLen64-1; i++ {
		out[i] = byte(x&0x7f) | 0x80
		x >>= 7
	}
	out[binary.MaxVarintLen64-1] = byte(x)
	return out
}

func (w *shardWriter) append(e graph.Edge) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	var buf [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(e.U))
	k += binary.PutUvarint(buf[k:], uint64(e.V))
	if _, err := w.bw.Write(buf[:k]); err != nil {
		w.err = err
		return
	}
	w.count++
}

func (w *shardWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		_, w.err = w.f.WriteAt(encodeFixedUvarint(w.count), w.countOff)
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	return w.err
}
