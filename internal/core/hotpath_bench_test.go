package core

import (
	"testing"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// BenchmarkHotPathEngine measures the steady-state generation loop: one
// node's x attachment placements (advance → resolveLocal → emit) against
// a warm single-worker engine with a no-op sink. This is the
// zero-allocation claim of the hot path — after bootstrap, expect 0
// allocs/op: the per-node RNG stream lives on the worker, the waiter
// table recycles its arena, and the sink bypasses the edge store.
func BenchmarkHotPathEngine(b *testing.B) {
	const (
		n = int64(1 << 16)
		x = 4
	)
	pr := model.Params{N: n, X: x, P: 0.5}
	part, err := partition.New(partition.KindRRP, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := transport.NewLocalGroup(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := newEngine(g.Endpoint(0), Options{
		Params:  pr,
		Part:    part,
		Seed:    1,
		Workers: 1,
		Sink:    func(int, graph.Edge) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	e.bootstrap()
	w := e.workers[0]

	t := int64(x + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t >= n {
			t = x + 1
		}
		// Re-open this node's slots so the resolve path runs exactly as
		// at generation time; every earlier node stays resolved, so copy
		// sources answer immediately, as in a settled single-rank run.
		base := e.slot(t, 0)
		for j := 0; j < x; j++ {
			e.f[base+int64(j)] = -1
		}
		w.genNode(t)
		if w.err != nil {
			b.Fatal(w.err)
		}
		t++
	}
}

// BenchmarkHotPathWorkerShard is the same steady-state loop against a
// worker of a multi-worker engine: slot publishes go through the atomic
// store path and the worker's block bounds apply — the constant-factor
// cost of making the rank concurrent. Still 0 allocs/op.
func BenchmarkHotPathWorkerShard(b *testing.B) {
	const (
		n = int64(1 << 16)
		x = 4
	)
	pr := model.Params{N: n, X: x, P: 0.5}
	part, err := partition.New(partition.KindRRP, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := transport.NewLocalGroup(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := newEngine(g.Endpoint(0), Options{
		Params:  pr,
		Part:    part,
		Seed:    1,
		Workers: 4,
		Sink:    func(int, graph.Edge) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	e.bootstrap()
	// Settle the whole F table so copy sources resolve immediately, then
	// drive the last worker's block (its sources span every shard, so
	// cross-shard atomic reads are on the measured path).
	for i := range e.f {
		if e.f[i] < 0 {
			e.f[i] = 0
		}
	}
	w := e.workers[e.nw-1]
	lo := w.lo + e.x64 + 1
	if lo >= w.hi {
		b.Fatalf("worker block [%d,%d) too small", w.lo, w.hi)
	}

	t := lo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t >= w.hi {
			t = lo
		}
		base := e.slot(t, 0)
		for j := int64(0); j < e.x64; j++ {
			e.f[base+j] = -1
		}
		w.genNode(t)
		if w.err != nil {
			b.Fatal(w.err)
		}
		t++
	}
}
