package core

import (
	"testing"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
	"pagen/internal/xrand"
)

// BenchmarkHotPathEngine measures the steady-state generation loop: one
// node's x attachment placements (place → resolveSlot → emit) against a
// warm engine with a no-op sink. This is the zero-allocation claim of
// the hot path — after bootstrap, expect 0 allocs/op: per-node RNG
// streams live on the stack, the waiter table recycles its arena, and
// the sink bypasses the edge store.
func BenchmarkHotPathEngine(b *testing.B) {
	const (
		n = int64(1 << 16)
		x = 4
	)
	pr := model.Params{N: n, X: x, P: 0.5}
	part, err := partition.New(partition.KindRRP, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := transport.NewLocalGroup(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := newEngine(g.Endpoint(0), Options{
		Params: pr,
		Part:   part,
		Seed:   1,
		Sink:   func(int, graph.Edge) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	e.bootstrap()

	var rng xrand.Rand
	t := int64(x + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t >= n {
			t = x + 1
		}
		// Re-open this node's slots so the resolve path runs exactly as
		// at generation time; every earlier node stays resolved, so copy
		// sources answer immediately, as in a settled single-rank run.
		base := e.slot(t, 0)
		for j := 0; j < x; j++ {
			e.f[base+int64(j)] = -1
		}
		rng.SeedStream(e.seed, uint64(t))
		for edge := 0; edge < x; edge++ {
			if err := e.place(t, edge, &rng); err != nil {
				b.Fatal(err)
			}
		}
		t++
	}
}
