package core

import (
	"fmt"
	"os"

	"pagen/internal/ckpt"
	"pagen/internal/msg"
	"pagen/internal/transport"
)

// negotiateResume picks the epoch to restart from: the newest epoch
// every rank can materialize (full file, or delta with an intact
// base+delta chain). Leaves resumeSnap nil when the ranks cannot agree
// on any epoch — the run starts fresh.
//
// The negotiation is a ratchet rather than a single all-reduce because
// the asynchronous commit protocol lets per-rank epoch sets diverge
// arbitrarily: a rank whose background writer failed stops persisting
// epochs (until the abandon forces a full), so the global minimum of
// per-rank newest epochs is not necessarily restorable on the ranks
// that are ahead — they may have pruned it, or hold it only as a delta
// whose chain a crash tore. Each round all-reduces a candidate (min of
// per-rank newest restorable epochs), then all-reduces whether every
// rank materialized that exact epoch; on failure each rank falls back
// to its newest restorable epoch strictly below the candidate and the
// loop repeats. The candidate strictly decreases, so the loop
// terminates (at worst with a fresh start), and every rank runs the
// same collective sequence in lockstep, keeping the tag counters
// aligned.
//
// The collectives run over the engine's own communicator with the held
// filter installed: a rank that learns the negotiated epoch first
// starts generating immediately, and its data messages can reach peers
// still inside the all-reduce. Those messages are parked in ck.held and
// delivered through the normal receive path once the restored state
// exists (run's startup flush), instead of aborting the collective.
func (e *engine) negotiateResume() error {
	dir := e.opts.Checkpoint.Dir
	epochs, err := ckpt.Epochs(dir, e.rank)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: resume: %w", err)
	}
	e.seq.SetRecv(func() ([]msg.Message, error) {
		if err := e.cm.FlushAll(); err != nil {
			return nil, err
		}
		ms, err := e.cm.Wait()
		if err != nil {
			return nil, err
		}
		return e.ckptFilter(ms), nil
	})
	defer e.seq.SetRecv(nil)

	// next walks the epoch list newest-first across rounds; the limit
	// only ever decreases, so entries skipped in one round never need
	// revisiting.
	next := len(epochs) - 1
	var snap *ckpt.Snapshot
	newestBelow := func(limit int64) int64 {
		for ; next >= 0; next-- {
			ep := epochs[next]
			if ep >= limit {
				continue
			}
			s, err := ckpt.Materialize(dir, e.rank, ep)
			if err != nil {
				continue // torn file or broken chain: fall further back
			}
			snap = s
			return ep
		}
		snap = nil
		return 0
	}
	mine := newestBelow(int64(1) << 62)
	for {
		chosen, err := e.seq.AllReduceMin(mine)
		if err != nil {
			return fmt.Errorf("core: resume negotiation: %w", err)
		}
		if chosen <= 0 {
			return nil // some rank has nothing left: fresh start everywhere
		}
		ok := int64(0)
		if mine == chosen {
			ok = 1 // already materialized above
		} else if s, err := ckpt.Materialize(dir, e.rank, chosen); err == nil {
			snap = s
			ok = 1
		}
		allOk, err := e.seq.AllReduceMin(ok)
		if err != nil {
			return fmt.Errorf("core: resume negotiation: %w", err)
		}
		if allOk == 1 {
			if err := validateSnapshot(snap, e.tr, e.opts); err != nil {
				return err
			}
			e.resumeSnap = snap
			return nil
		}
		mine = newestBelow(chosen)
	}
}

// validateSnapshot checks that a snapshot belongs to this run: same
// parameters, seed, rank geometry and partition scheme. A mismatch
// means the operator pointed -resume at the wrong directory or changed
// the run parameters, either of which would silently corrupt output.
func validateSnapshot(s *ckpt.Snapshot, tr transport.Transport, opts Options) error {
	m := s.Meta
	switch {
	case m.N != opts.Params.N:
		return fmt.Errorf("core: resume: snapshot has n=%d, run has n=%d", m.N, opts.Params.N)
	case m.X != opts.Params.X:
		return fmt.Errorf("core: resume: snapshot has x=%d, run has x=%d", m.X, opts.Params.X)
	case m.P != opts.Params.P:
		return fmt.Errorf("core: resume: snapshot has p=%v, run has p=%v", m.P, opts.Params.P)
	case m.Seed != opts.Seed:
		return fmt.Errorf("core: resume: snapshot has seed=%d, run has seed=%d", m.Seed, opts.Seed)
	case m.Ranks != tr.Size():
		return fmt.Errorf("core: resume: snapshot taken with %d ranks, run has %d", m.Ranks, tr.Size())
	case m.Rank != tr.Rank():
		return fmt.Errorf("core: resume: snapshot belongs to rank %d, not rank %d", m.Rank, tr.Rank())
	case m.Scheme != opts.Part.Name():
		return fmt.Errorf("core: resume: snapshot used partition %s, run uses %s", m.Scheme, opts.Part.Name())
	}
	mode, depth := effectiveResolve(opts)
	switch {
	case m.Resolve != mode:
		return fmt.Errorf("core: resume: snapshot used -resolve=%v, run uses -resolve=%v",
			ResolveMode(m.Resolve), ResolveMode(mode))
	case m.RecomputeDepth != depth:
		return fmt.Errorf("core: resume: snapshot used recompute depth %d, run uses %d", m.RecomputeDepth, depth)
	}
	// Streamed and in-memory runs must not mix across a cut: a streamed
	// resume needs the snapshot's sink mark to truncate its shard, and
	// an in-memory resume of a streamed snapshot would re-emit edges the
	// shard already holds.
	switch {
	case opts.StreamDir != "" && s.Sink == nil:
		return fmt.Errorf("core: resume: snapshot is from a run without -stream-dir; resume without it (or start fresh)")
	case opts.StreamDir == "" && s.Sink != nil:
		return fmt.Errorf("core: resume: snapshot is from a streamed run; resume with -stream-dir")
	}
	return nil
}

// effectiveResolve returns the resolver settings a run with opts pins
// into its snapshots: the mode code and the effective replay depth cap
// (0 in wire mode, the default-resolved cap in recompute mode).
func effectiveResolve(opts Options) (mode, depth int) {
	if opts.Resolve != ResolveRecompute {
		return int(ResolveWire), 0
	}
	depth = opts.RecomputeDepth
	if depth <= 0 {
		depth = DefaultRecomputeDepth(opts.Params.N)
	}
	return int(ResolveRecompute), depth
}

// buildSnapshotInto assembles this rank's snapshot at a cut into a
// pooled capture buffer (kind KindFull or KindDelta with the given base
// epoch). The rank is globally quiescent: workers are parked, inboxes
// are empty, and no data message is in flight, so every piece of
// protocol state lives in exactly one of the structures captured here.
// The capture is memcpy-scale by design — the F table (full) or its
// dirty ranges (delta) copy into the capture's reusable backing arrays,
// and encoding, CRC and I/O all happen later in the background writer —
// because its duration is the dominant term of the generation pause.
// It also clears the dirty bitmap: the capture is the delta baseline
// whichever kind it is.
func (e *engine) buildSnapshotInto(c *ckptCapture, kind int, base int64) {
	s := &c.snap
	*s = ckpt.Snapshot{
		Meta: ckpt.Meta{
			N:              e.opts.Params.N,
			X:              e.x,
			P:              e.prob,
			Seed:           e.seed,
			Ranks:          e.p,
			Rank:           e.rank,
			Scheme:         e.part.Name(),
			Resolve:        int(e.opts.Resolve),
			RecomputeDepth: e.depthCap,
		},
		Epoch:     e.ck.epoch,
		Kind:      kind,
		BaseEpoch: base,
		// The asynchronous commit vote is plain KindCkpt traffic — no
		// collective runs between here and the next negotiation, so the
		// live counter value is exactly what a resumed run must continue
		// from.
		NextTag: e.seq.NextTag(),
	}
	if kind == ckpt.KindFull {
		c.f = append(c.f[:0], e.f...)
		s.F = c.f
	} else {
		s.FLen = int64(len(e.f))
		// Two passes over the chunk bitmap: size the flat value store
		// first so the range subslices never move under a later append.
		total := int64(0)
		for ci := 0; ci < len(e.ckDirty); ci++ {
			if e.ckDirty[ci] != 0 {
				total += e.chunkSpan(ci)
			}
		}
		if cap(c.dvals) < int(total) {
			c.dvals = make([]int64, 0, total)
		}
		c.dvals = c.dvals[:0]
		c.ranges = c.ranges[:0]
		for ci := 0; ci < len(e.ckDirty); ci++ {
			if e.ckDirty[ci] == 0 {
				continue
			}
			cj := ci
			for cj+1 < len(e.ckDirty) && e.ckDirty[cj+1] != 0 {
				cj++
			}
			start := int64(ci) << ckptDirtyShift
			end := (int64(cj) + 1) << ckptDirtyShift
			if end > int64(len(e.f)) {
				end = int64(len(e.f))
			}
			off := len(c.dvals)
			c.dvals = append(c.dvals, e.f[start:end]...)
			c.ranges = append(c.ranges, ckpt.DeltaRange{Start: start, Values: c.dvals[off:len(c.dvals):len(c.dvals)]})
			ci = cj
		}
		s.Delta = c.ranges
	}
	for i := range e.ckDirty {
		e.ckDirty[i] = 0
	}

	c.workers = c.workers[:0]
	for _, w := range e.workers {
		ws := ckpt.WorkerState{Lo: w.lo, Hi: w.hi}
		w.susp.forEach(func(idx int64, st suspState) {
			ws.Susp = append(ws.Susp, ckpt.SuspRecord{Idx: idx, Edge: int(st.e), RNG: st.rng.State()})
		})
		w.waiters.forEach(func(slot, t int64, e16 uint16) {
			ws.Waiters = append(ws.Waiters, ckpt.WaiterRecord{Slot: slot, T: t, E: e16})
		})
		// Coalescing chains serialize chain by chain in FIFO order, so
		// the first record of each chain is its primary requester — the
		// node the owner's answer is addressed to. Suspension records do
		// not carry the chain key; restore re-derives every member's key
		// from these records.
		w.remote.forEach(func(slot, t int64, e16 uint16) {
			ws.Remote = append(ws.Remote, ckpt.WaiterRecord{Slot: slot, T: t, E: e16})
		})
		c.workers = append(c.workers, ws)
		s.Stats.Retries += w.retries
		s.Stats.QueuedWaits += w.queuedWaits
		s.Stats.LocalWaits += w.localWaits
	}
	s.Workers = c.workers
	c.out = c.out[:0]
	for to := 0; to < e.p; to++ {
		if frame := e.cm.BufferedFrame(to); frame != nil {
			c.out = append(c.out, ckpt.OutboundBatch{To: to, Frame: frame})
		}
	}
	s.Outbound = c.out
}

// chunkSpan returns the number of F slots dirty-bitmap chunk ci covers
// (the last chunk may be partial).
func (e *engine) chunkSpan(ci int) int64 {
	start := int64(ci) << ckptDirtyShift
	end := start + (1 << ckptDirtyShift)
	if end > int64(len(e.f)) {
		end = int64(len(e.f))
	}
	return end - start
}

// restoreChains rebuilds the hub cache's request-coalescing chains from
// the snapshot's Remote records. Each chain is routed whole to the
// worker owning its primary (first) record's node: the in-flight answer
// — owed by the owner's restored waiter record for the primary, or by a
// request frame in the re-sent outbound buffers — is addressed to that
// node, and resumeWire fans it out to the rest of the chain from there.
// Chains must never merge: two snapshotted chains for the same slot
// (from different workers of the writing run) are each owed their own
// answer, and a merged chain would resume on the first answer and leave
// the second with no suspension to deliver to. When two such chains
// land in one worker, the second keeps a synthetic key <= -2 — real
// slot ids are non-negative, so it can never collide with a chain the
// resumed run creates, and resumeWire skips the replica install for it.
// All runs over a checkpoint sequence must agree on the hub setting:
// with the cache disabled the chain's secondary members would never be
// answered (they are registered nowhere else — that is the point of
// coalescing), so restoring their records is an error, not a fallback.
func (e *engine) restoreChains(s *ckpt.Snapshot) error {
	synth := int64(-2)
	for _, ws := range s.Workers {
		if len(ws.Remote) > 0 && e.hub == nil {
			return fmt.Errorf("core: resume: snapshot has %d coalesced remote waiters but the hub cache is disabled; resume with the hub-prefix setting the snapshot was taken under", len(ws.Remote))
		}
		for rs := ws.Remote; len(rs) > 0; {
			end := 1
			for end < len(rs) && rs[end].Slot == rs[0].Slot {
				end++
			}
			chain := rs[:end]
			rs = rs[end:]
			tgt := e.workers[e.workerOf(e.localIdx(chain[0].T))]
			key := chain[0].Slot
			for tgt.remote.has(key) {
				key = synth
				synth--
			}
			for _, wr := range chain {
				tgt.remote.push(key, wr.T, wr.E)
				idx := e.localIdx(wr.T)
				ow := e.workers[e.workerOf(idx)]
				st, ok := ow.susp.get(idx)
				if !ok {
					return fmt.Errorf("core: resume: chained node %d has no suspension record", wr.T)
				}
				st.key = key
				ow.susp.put(idx, st)
			}
		}
	}
	return nil
}

// nodeInitiated reports whether local node idx's generation has started:
// either its last slot is resolved (complete — slots resolve strictly in
// order) or it is suspended mid-node. At a cut every initiated node is
// in exactly one of those states, which is what lets a resumed run skip
// it in the generation pass.
func (e *engine) nodeInitiated(idx int64) bool {
	if e.f[idx*e.x64+e.x64-1] >= 0 {
		return true
	}
	return e.workers[e.workerOf(idx)].susp.has(idx)
}

// restore rebuilds the engine's state from the negotiated snapshot. It
// runs after bootstrap and before any worker starts, so plain writes
// are safe. Worker-count independence: suspension and waiter records
// are redistributed by each node's owning block in this run's layout,
// not the layout that wrote the snapshot.
func (e *engine) restore() error {
	s := e.resumeSnap
	if int64(len(s.F)) != e.size*e.x64 {
		return fmt.Errorf("core: resume: snapshot F has %d slots, rank owns %d", len(s.F), e.size*e.x64)
	}
	copy(e.f, s.F)

	for _, ws := range s.Workers {
		for _, sr := range ws.Susp {
			w := e.workers[e.workerOf(sr.Idx)]
			var st suspState
			st.e = int32(sr.Edge)
			st.key = -1 // re-derived from the Remote chains below
			st.rng.SetState(sr.RNG)
			w.susp.put(sr.Idx, st)
			// Pre-claim the node's steal span for its static owner: the
			// suspension record lives in the owner's table, so a thief
			// generating this span would miss it (nodeInitiatedLocal
			// checks only the generator's own table) and double-generate
			// the node. Plain stores are safe pre-worker-start.
			if w.claims != nil {
				w.claims[(sr.Idx-w.lo)/e.spanSize] = int32(w.id)
			}
		}
		for _, wr := range ws.Waiters {
			w := e.workers[e.workerOf(wr.Slot/e.x64)]
			w.waiters.push(wr.Slot, wr.T, wr.E)
			e.trackPending(1)
		}
	}
	if err := e.restoreChains(s); err != nil {
		return err
	}

	// Recount each worker's unresolved slots from the restored table;
	// the counts are layout-dependent, so the snapshot does not carry
	// them.
	active := int32(0)
	for _, w := range e.workers {
		w.unresolved = 0
		for slot := w.lo * e.x64; slot < w.hi*e.x64; slot++ {
			if e.f[slot] < 0 {
				w.unresolved++
			}
		}
		w.doneNoted = w.unresolved == 0
		if w.unresolved > 0 {
			active++
		}
	}
	e.activeWorkers = active

	// Buffered-but-unsent messages from the snapshotting run re-enter
	// this run's send buffers: they were never transmitted, so sending
	// them (exactly once) now is exact.
	for _, ob := range s.Outbound {
		ms, err := msg.DecodeBatch(nil, ob.Frame)
		if err != nil {
			return fmt.Errorf("core: resume: outbound batch for rank %d: %w", ob.To, err)
		}
		if err := e.cm.SendBatch(ob.To, ms); err != nil {
			return err
		}
	}

	// Fold run-lifetime counters into worker 0 so finishStats reports
	// totals across restarts.
	e.workers[0].retries += s.Stats.Retries
	e.workers[0].queuedWaits += s.Stats.QueuedWaits
	e.workers[0].localWaits += s.Stats.LocalWaits

	e.restored = true
	e.seq.SetNextTag(s.NextTag)
	if ck := e.ck; ck != nil {
		ck.lastGood = s.Epoch
		ck.epochNext = s.Epoch + 1
		// The first epoch after a restore is always a full capture: the
		// dirty bitmap starts empty in this process, and the restored
		// epoch's file may be abandoned or pruned behind us — nothing on
		// disk is a guaranteed delta base.
		ck.forceFull = true
		if e.rank == 0 && ck.every > 0 {
			// Re-derive the trigger base: initiated nodes are exactly
			// the complete-or-suspended ones (recv counters restart at
			// zero with the fresh communicator).
			var initiated int64
			for idx := int64(0); idx < e.size; idx++ {
				if t := e.part.NodeAt(e.rank, idx); t > e.x64 && e.nodeInitiated(idx) {
					initiated++
				}
			}
			ck.initiated = initiated
			ck.nextTrigger = initiated + ck.every
		}
	}
	return nil
}
