package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// The tentpole invariant: recomputation changes traffic, never output.
// For every rank count, worker count and hub setting, the edge list
// under -resolve=recompute must equal the wire-protocol edge list
// element for element (a replayed value is the same pure function of
// (n, x, p, seed) the owner computes).
func TestRecomputeOutputInvariance(t *testing.T) {
	pr := model.Params{N: 4_000, X: 3, P: 0.5}
	for _, ranks := range []int{1, 2, 4} {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2} {
			for _, hub := range []int64{-1, 0} {
				run := func(mode ResolveMode) *Result {
					res, err := Run(Options{
						Params: pr, Part: part, Seed: 9,
						Workers: workers, HubPrefix: hub, Resolve: mode,
					}, false)
					if err != nil {
						t.Fatalf("ranks=%d workers=%d hub=%d mode=%v: %v", ranks, workers, hub, mode, err)
					}
					return res
				}
				wire := run(ResolveWire)
				rc := run(ResolveRecompute)
				equalEdges(t, "resolve mode matrix", rc.Graph.Edges, wire.Graph.Edges)

				var wireMsgs, rcMsgs, resolved int64
				for i, st := range rc.Ranks {
					rcMsgs += st.Comm.RequestsSent + st.Comm.ResolvedSent
					wireMsgs += wire.Ranks[i].Comm.RequestsSent + wire.Ranks[i].Comm.ResolvedSent
					resolved += st.RecomputeResolved
				}
				if ranks == 1 {
					if resolved != 0 {
						t.Errorf("single rank replayed %d chains; everything is local", resolved)
					}
					continue
				}
				if resolved == 0 {
					t.Errorf("ranks=%d workers=%d hub=%d: recompute mode never replayed a chain", ranks, workers, hub)
				}
				if rcMsgs >= wireMsgs {
					t.Errorf("ranks=%d workers=%d hub=%d: recompute sent %d data msgs, wire sent %d — no reduction",
						ranks, workers, hub, rcMsgs, wireMsgs)
				}
			}
		}
	}
}

// The depth cap bounds work, not correctness: a cap too small to chase
// real chains must fall back to the wire protocol and still produce the
// identical graph, and the observed chain depth must respect the cap.
func TestRecomputeDepthCapFallback(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Run(Options{Params: pr, Part: part, Seed: 13, Workers: 2, HubPrefix: -1}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 2, 64} {
		res, err := Run(Options{
			Params: pr, Part: part, Seed: 13, Workers: 2, HubPrefix: -1,
			Resolve: ResolveRecompute, RecomputeDepth: depth,
		}, false)
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		equalEdges(t, "depth cap fallback", res.Graph.Edges, wire.Graph.Edges)
		var hits, fallbacks, maxDepth int64
		for _, st := range res.Ranks {
			hits += st.RecomputeResolved
			fallbacks += st.RecomputeFallback
			if st.ReplayDepth.Max > maxDepth {
				maxDepth = st.ReplayDepth.Max
			}
		}
		if maxDepth > int64(depth) {
			t.Errorf("depth=%d: observed chain depth %d exceeds the cap", depth, maxDepth)
		}
		if depth == 1 && fallbacks == 0 {
			t.Errorf("depth=1: no chain fell back to the wire protocol")
		}
		if depth == 64 && hits == 0 {
			t.Errorf("depth=64: no chain resolved by replay")
		}
	}
}

// Randomly delayed delivery must not change recompute-mode output:
// replay never waits on a message, and the wire fallbacks that remain
// are the same schedule-invariant protocol the chaos tests already pin.
func TestRecomputeChaosDelay(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Params: pr, Part: part, Seed: 11, HubPrefix: 0,
		Resolve: ResolveRecompute, RecomputeDepth: 2} // tiny cap keeps wire traffic flowing under chaos

	run := func(wrap func(r int, tr transport.Transport) transport.Transport) []*RankResult {
		group, err := transport.NewLocalGroup(p)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]*RankResult, p)
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr := wrap(r, group.Endpoint(r))
				defer tr.Close()
				results[r], errs[r] = RunRank(tr, opts)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return results
	}

	clean := run(func(r int, tr transport.Transport) transport.Transport { return tr })
	chaotic := run(func(r int, tr transport.Transport) transport.Transport {
		return transport.NewChaos(tr, transport.ChaosConfig{
			Seed:      uint64(700 + r),
			DelayProb: 0.3,
			MaxDelay:  500 * time.Microsecond,
		})
	})
	for r := 0; r < p; r++ {
		equalEdges(t, "delay injection under recompute", chaotic[r].Edges, clean[r].Edges)
	}
}

// Kill-and-resume under recompute: the memo table is a pure cache and is
// never serialized, so a resumed run must re-derive replays on demand
// and still produce the uninterrupted run's exact graph. The snapshot
// pins the resolve mode; resuming it under the wire protocol must fail
// loudly naming the mismatch.
func TestRecomputeKillResume(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks = 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	opts := func() Options {
		return Options{Params: pr, Part: newPart(), Seed: 19, Workers: 2,
			HubPrefix: -1, Resolve: ResolveRecompute, RecomputeDepth: 3}
	}
	base, err := Run(opts(), false)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch count is schedule-dependent; retry at smaller intervals until
	// at least one committed epoch exists (see TestCheckpointResumeEveryEpoch).
	var dir string
	var epochs []int64
	for every := int64(500); every >= 50; every /= 2 {
		dir = t.TempDir()
		o := opts()
		o.Checkpoint = &CheckpointOptions{Dir: dir, Every: every, Keep: 1000}
		if _, err := Run(o, false); err != nil {
			t.Fatal(err)
		}
		if epochs, err = ckpt.Epochs(dir, 0); err != nil {
			t.Fatal(err)
		}
		if len(epochs) >= 1 {
			break
		}
	}
	if len(epochs) < 1 {
		t.Fatal("no epoch committed even at Every=50")
	}

	o := opts()
	o.Checkpoint = &CheckpointOptions{Dir: dir, Every: 0, Keep: 1000, Resume: true}
	res, err := Run(o, false)
	if err != nil {
		t.Fatal(err)
	}
	equalEdges(t, "resume under recompute", res.Graph.Edges, base.Graph.Edges)

	// Mode pinning: the snapshot says recompute, the run says wire.
	o = opts()
	o.Resolve = ResolveWire
	o.RecomputeDepth = 0
	o.Checkpoint = &CheckpointOptions{Dir: dir, Every: 0, Keep: 1000, Resume: true}
	if _, err := Run(o, false); err == nil || !strings.Contains(err.Error(), "resolve") {
		t.Fatalf("resume with mismatched resolve mode: err = %v, want resolve mismatch", err)
	}

	// Depth pinning: same mode, different effective cap.
	o = opts()
	o.RecomputeDepth = 7
	o.Checkpoint = &CheckpointOptions{Dir: dir, Every: 0, Keep: 1000, Resume: true}
	if _, err := Run(o, false); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("resume with mismatched depth cap: err = %v, want depth mismatch", err)
	}
}

// Flag-surface units: mode parsing round-trips, unknown modes and
// negative depth caps are rejected, and the auto depth cap tracks
// 2*log2(n) with a floor.
func TestRecomputeModeAndDepthValidation(t *testing.T) {
	for _, mode := range []ResolveMode{ResolveWire, ResolveRecompute} {
		got, err := ParseResolveMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseResolveMode(%q) = %v, %v; want %v", mode.String(), got, err, mode)
		}
	}
	if _, err := ParseResolveMode("rpc"); err == nil {
		t.Error("ParseResolveMode(\"rpc\") succeeded, want error")
	}
	if d := DefaultRecomputeDepth(4); d != 8 {
		t.Errorf("DefaultRecomputeDepth(4) = %d, want the floor 8", d)
	}
	if d := DefaultRecomputeDepth(1 << 20); d != 42 {
		t.Errorf("DefaultRecomputeDepth(2^20) = %d, want 42", d)
	}

	pr := model.Params{N: 1_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Params: pr, Part: part, Seed: 1,
		Resolve: ResolveRecompute, RecomputeDepth: -1}, false); err == nil {
		t.Error("negative RecomputeDepth accepted, want error")
	}
	if _, err := Run(Options{Params: pr, Part: part, Seed: 1,
		Resolve: ResolveMode(99)}, false); err == nil {
		t.Error("unknown ResolveMode accepted, want error")
	}
}
