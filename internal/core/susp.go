package core

import "pagen/internal/xrand"

// suspState is a suspended node's continuation: its private random
// stream, positioned right after the draws of the edge attempt that
// could not finish, and the index of that edge. Resuming re-enters the
// attachment loop exactly where the sequential algorithm would be, so a
// node's draw sequence — duplicate retries included — is independent of
// when its copy sources resolve.
type suspState struct {
	rng xrand.Rand
	e   int32
	// key is the global slot id k*x + l of the remote slot the node
	// waits on when the wait went through the request-coalescing table,
	// -1 otherwise. resumeWire uses it to map a wire answer — which
	// carries (t, e), not (k, l) — back to the chain to fan out. A
	// restore can substitute a synthetic key <= -2 when two snapshotted
	// chains for the same slot land in one worker (each is owed its own
	// answer, so they must not merge); real slot ids are non-negative, so
	// synthetic keys can never collide with a chain the resumed run
	// creates.
	key int64
}

// suspTable maps a local node index to its suspension record: an
// open-addressed table like waiterTable (linear probing, power-of-two
// size, tombstones swept at rehash), sized to the number of currently
// suspended nodes rather than the node count. A node has at most one
// suspension (strict per-node edge sequencing), so put never sees a
// live duplicate key.
type suspTable struct {
	keys []int64 // suspEmpty = free, suspTomb = deleted
	vals []suspState
	// filled counts non-free buckets (live + tombstones); live counts
	// suspended nodes.
	filled int
	live   int
}

const (
	suspEmpty    = int64(-1)
	suspTomb     = int64(-2)
	minSuspTable = 16
)

func (s *suspTable) init() {
	s.keys = make([]int64, minSuspTable)
	for i := range s.keys {
		s.keys[i] = suspEmpty
	}
	s.vals = make([]suspState, minSuspTable)
}

// put records key's suspension.
func (s *suspTable) put(key int64, st suspState) {
	mask := uint64(len(s.keys) - 1)
	i := hashSlot(key) & mask
	ins := -1
	for {
		switch s.keys[i] {
		case suspEmpty:
			if ins < 0 {
				ins = int(i)
				s.filled++
			}
			s.keys[ins] = key
			s.vals[ins] = st
			s.live++
			if s.filled*4 >= len(s.keys)*3 {
				s.rehash()
			}
			return
		case suspTomb:
			if ins < 0 {
				ins = int(i) // reuse the tombstone; filled unchanged
			}
		case key:
			s.vals[i] = st // defensive; strict sequencing forbids this
			return
		}
		i = (i + 1) & mask
	}
}

// take removes and returns key's suspension.
func (s *suspTable) take(key int64) (suspState, bool) {
	mask := uint64(len(s.keys) - 1)
	i := hashSlot(key) & mask
	for {
		switch s.keys[i] {
		case suspEmpty:
			return suspState{}, false
		case key:
			st := s.vals[i]
			s.keys[i] = suspTomb
			s.live--
			return st, true
		}
		i = (i + 1) & mask
	}
}

// get returns key's suspension without removing it.
func (s *suspTable) get(key int64) (suspState, bool) {
	mask := uint64(len(s.keys) - 1)
	i := hashSlot(key) & mask
	for {
		switch s.keys[i] {
		case suspEmpty:
			return suspState{}, false
		case key:
			return s.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// has reports whether key has a live suspension without removing it.
func (s *suspTable) has(key int64) bool {
	mask := uint64(len(s.keys) - 1)
	i := hashSlot(key) & mask
	for {
		switch s.keys[i] {
		case suspEmpty:
			return false
		case key:
			return true
		}
		i = (i + 1) & mask
	}
}

// forEach visits every live suspension (checkpoint serialization; order
// is table order, not meaningful). fn must not mutate the table.
func (s *suspTable) forEach(fn func(key int64, st suspState)) {
	for i, k := range s.keys {
		if k == suspEmpty || k == suspTomb {
			continue
		}
		fn(k, s.vals[i])
	}
}

// rehash rebuilds the table at a size fitted to the live suspensions,
// dropping tombstones.
func (s *suspTable) rehash() {
	size := minSuspTable
	for size < 4*s.live {
		size *= 2
	}
	oldKeys, oldVals := s.keys, s.vals
	s.keys = make([]int64, size)
	for i := range s.keys {
		s.keys[i] = suspEmpty
	}
	s.vals = make([]suspState, size)
	s.filled = 0
	s.live = 0
	for i, k := range oldKeys {
		if k == suspEmpty || k == suspTomb {
			continue
		}
		// put re-increments live, leaving it equal to the number of
		// reinserted entries. The new size is at least 4x that count, so
		// the load trigger cannot fire during the reinsert loop.
		s.put(k, oldVals[i])
	}
}
