package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/transport"
)

// equalEdges compares two edge lists element for element — the in-core
// analogue of the CLI fingerprint check, since collectEdges emits a
// deterministic order for a fixed (params, seed, partition).
func equalEdges(t *testing.T, label string, got, want []graph.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d is (%d,%d), want (%d,%d)",
				label, i, got[i].U, got[i].V, want[i].U, want[i].V)
		}
	}
}

// A checkpointed run must produce exactly the sequential edge set while
// actually committing epochs along the way, and the per-rank stats must
// report them.
func TestCheckpointRunMatchesSequential(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 5, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	part, err := partition.New(partition.KindRRP, pr.N, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch count is schedule-bound (a fast run can complete before a
	// pending trigger opens its epoch), so retry at smaller intervals
	// until at least one epoch committed.
	var res *Result
	for every := int64(1000); every >= 50; every /= 2 {
		res, err = Run(Options{
			Params: pr, Part: part, Seed: 5, Workers: 2,
			Checkpoint: &CheckpointOptions{Dir: t.TempDir(), Every: every, Keep: 100},
		}, false)
		if err != nil {
			t.Fatal(err)
		}
		sameEdgeSet(t, "checkpointed", res.Graph.Edges, want)
		if res.Ranks[0].CkptEpochs >= 1 {
			break
		}
	}
	for _, st := range res.Ranks {
		if st.CkptEpochs < 1 {
			t.Fatalf("rank %d committed %d epochs, want >= 1", st.Rank, st.CkptEpochs)
		}
		if st.CkptEpochs != res.Ranks[0].CkptEpochs {
			t.Fatalf("rank %d committed %d epochs, rank 0 committed %d",
				st.Rank, st.CkptEpochs, res.Ranks[0].CkptEpochs)
		}
		if st.CkptBytes <= 0 || st.CkptPauseTime <= 0 {
			t.Fatalf("rank %d: bytes=%d pause=%v, want positive", st.Rank, st.CkptBytes, st.CkptPauseTime)
		}
	}
}

// The headline restart property: killing the run after ANY committed
// epoch and resuming — at the same or a different worker count, and
// even across the single-worker/concurrent boundary — yields output
// identical edge-for-edge to the uninterrupted run. Simulated by
// trimming the snapshot directory down to each epoch in turn (snapshot
// files are immutable once committed, so the on-disk state after epoch
// E is exactly the state a crash after epoch E leaves behind).
func TestCheckpointResumeEveryEpoch(t *testing.T) {
	// Large enough that the run comfortably spans several epochs: the
	// epoch count is schedule-dependent (each epoch costs a pause), so a
	// short run can legitimately commit fewer.
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks = 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 7, Workers: 2}, false)
	if err != nil {
		t.Fatal(err)
	}

	// The number of committed epochs is schedule-dependent (each epoch
	// costs a pause, and a fast run may finish before a second trigger
	// is observed), so build the snapshot library with retries at ever
	// smaller intervals until at least two epochs exist.
	var dir string
	var epochs []int64
	for every := int64(500); every >= 50; every /= 2 {
		dir = t.TempDir()
		if _, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 7, Workers: 2,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 1000},
		}, false); err != nil {
			t.Fatal(err)
		}
		var err error
		if epochs, err = ckpt.Epochs(dir, 0); err != nil {
			t.Fatal(err)
		}
		if len(epochs) >= 2 {
			break
		}
	}
	if len(epochs) < 2 {
		t.Fatalf("only %d epochs committed even at Every=50", len(epochs))
	}

	resume := func(label string, workers int, every int64) {
		res, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 7, Workers: workers,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 1000, Resume: true},
		}, false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		equalEdges(t, label, res.Graph.Edges, base.Graph.Edges)
	}

	// Newest epoch: same worker count, more workers, and the
	// single-worker loop restoring a concurrent run's snapshot. The
	// continued-checkpointing variant (every > 0) also exercises epoch
	// numbering and tag resumption after a restart.
	top := epochs[len(epochs)-1]
	resume(fmt.Sprintf("epoch %d workers=2", top), 2, 0)
	resume(fmt.Sprintf("epoch %d workers=4", top), 4, 0)
	resume(fmt.Sprintf("epoch %d workers=1", top), 1, 0)
	resume(fmt.Sprintf("epoch %d continued", top), 2, 500)

	// Then every earlier epoch, trimming the directory as a crash at
	// that epoch would have left it.
	for i := len(epochs) - 2; i >= 0; i-- {
		for r := 0; r < ranks; r++ {
			if err := os.Remove(ckpt.Path(dir, r, epochs[i+1])); err != nil {
				t.Fatal(err)
			}
		}
		resume(fmt.Sprintf("epoch %d", epochs[i]), 2, 0)
	}

	// With every snapshot gone, Resume must fall back to a fresh run.
	for r := 0; r < ranks; r++ {
		if err := os.Remove(ckpt.Path(dir, r, epochs[0])); err != nil {
			t.Fatal(err)
		}
	}
	resume("empty dir fresh start", 2, 0)
}

// A torn snapshot (crash mid-write, detected by CRC) on one rank must
// pull the whole job back to the previous committed epoch rather than
// resuming a mix of epochs or failing.
func TestCheckpointTornLatestFallsBack(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks = 2
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindUCP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 11, Workers: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	// As in TestCheckpointResumeEveryEpoch, retry at smaller intervals
	// until two epochs are on disk (the epoch count is schedule-bound).
	var dir string
	var epochs []int64
	for every := int64(600); every >= 50; every /= 2 {
		dir = t.TempDir()
		if _, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 11, Workers: 2,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 3},
		}, false); err != nil {
			t.Fatal(err)
		}
		var err error
		if epochs, err = ckpt.Epochs(dir, 1); err != nil {
			t.Fatal(err)
		}
		if len(epochs) >= 2 {
			break
		}
	}
	if len(epochs) < 2 {
		t.Fatalf("only %d epochs on disk even at Every=50", len(epochs))
	}
	// Corrupt rank 1's newest snapshot mid-file.
	path := ckpt.Path(dir, 1, epochs[len(epochs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Rank 1's Latest must skip the torn file, and the min-reduce must
	// drag rank 0 back with it.
	snap, skipped, err := ckpt.Latest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 {
		t.Fatalf("Latest skipped %v, want exactly the torn file", skipped)
	}
	if snap.Epoch != epochs[len(epochs)-2] {
		t.Fatalf("Latest fell back to epoch %d, want %d", snap.Epoch, epochs[len(epochs)-2])
	}
	res, err := Run(Options{
		Params: pr, Part: newPart(), Seed: 11, Workers: 2,
		Checkpoint: &CheckpointOptions{Dir: dir, Every: 0, Keep: 3, Resume: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	equalEdges(t, "torn fallback", res.Graph.Edges, base.Graph.Edges)
}

// Checkpoint epochs under a single rank — where the whole protocol
// (begin, rounds, cut, commit) runs against the rank itself, including
// the transport self-send of the cut — for both the single-worker loop
// and the dispatcher topology.
func TestCheckpointSingleRank(t *testing.T) {
	pr := model.Params{N: 4_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 3, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			part, err := partition.New(partition.KindUCP, pr.N, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Retry at smaller intervals: the run can legitimately
			// finish before a pending trigger opens its epoch.
			var res *Result
			for every := int64(700); every >= 50; every /= 2 {
				res, err = Run(Options{
					Params: pr, Part: part, Seed: 3, Workers: workers,
					Checkpoint: &CheckpointOptions{Dir: t.TempDir(), Every: every},
				}, false)
				if err != nil {
					t.Fatal(err)
				}
				sameEdgeSet(t, t.Name(), res.Graph.Edges, want)
				if res.Ranks[0].CkptEpochs >= 1 {
					break
				}
			}
			if res.Ranks[0].CkptEpochs < 1 {
				t.Fatalf("committed %d epochs even at Every=50, want >= 1", res.Ranks[0].CkptEpochs)
			}
		})
	}
}

// Epochs must survive a hostile message schedule: a chaos transport
// delaying 30% of frames stretches the quiescence rounds (messages
// linger in flight), and the cut must still be consistent.
func TestCheckpointChaosTransport(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 9, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	// Retry at smaller intervals: even under chaos delays the run can
	// finish before a pending trigger opens its epoch.
	var results []*RankResult
	for every := int64(1000); every >= 50; every /= 2 {
		group, err := transport.NewLocalGroup(p)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		results = make([]*RankResult, p)
		errs := make([]error, p)
		done := make(chan int, p)
		for r := 0; r < p; r++ {
			go func(r int) {
				tr := transport.NewChaos(group.Endpoint(r), transport.ChaosConfig{
					Seed:      700 + uint64(r),
					DelayProb: 0.3,
					MaxDelay:  500 * time.Microsecond,
				})
				results[r], errs[r] = RunRank(tr, Options{
					Params: pr, Part: part, Seed: 9, Workers: 2,
					Checkpoint: &CheckpointOptions{Dir: dir, Every: every},
				})
				done <- r
			}(r)
		}
		for i := 0; i < p; i++ {
			<-done
		}
		var all []graph.Edge
		for r := 0; r < p; r++ {
			if errs[r] != nil {
				t.Fatalf("rank %d: %v", r, errs[r])
			}
			all = append(all, results[r].Edges...)
		}
		sameEdgeSet(t, "chaos checkpoint", all, want)
		if results[0].Stats.CkptEpochs >= 1 {
			break
		}
	}
	if results[0].Stats.CkptEpochs < 1 {
		t.Fatalf("committed %d epochs under chaos even at Every=50, want >= 1", results[0].Stats.CkptEpochs)
	}
}

// Resuming against the wrong run parameters must fail loudly instead of
// silently generating a different graph.
func TestCheckpointResumeValidation(t *testing.T) {
	pr := model.Params{N: 3_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindUCP, pr.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(Options{
		Params: pr, Part: part, Seed: 4, Workers: 1,
		Checkpoint: &CheckpointOptions{Dir: dir, Every: 500},
	}, false); err != nil {
		t.Fatal(err)
	}
	_, err = Run(Options{
		Params: pr, Part: part, Seed: 5, Workers: 1,
		Checkpoint: &CheckpointOptions{Dir: dir, Resume: true},
	}, false)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("resume with wrong seed: err = %v, want seed mismatch", err)
	}
}

// Checkpointing is incompatible with streaming/tracing side effects a
// snapshot cannot capture, and with a missing directory.
func TestCheckpointIncompatibleOptions(t *testing.T) {
	pr := model.Params{N: 1_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindUCP, pr.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"no dir", Options{Params: pr, Part: part, Seed: 1, Checkpoint: &CheckpointOptions{}}, "directory"},
		{"sink", Options{Params: pr, Part: part, Seed: 1,
			Sink:       func(int, graph.Edge) {},
			Checkpoint: &CheckpointOptions{Dir: "x"}}, "sink"},
		{"node load", Options{Params: pr, Part: part, Seed: 1, CollectNodeLoad: true,
			Checkpoint: &CheckpointOptions{Dir: "x"}}, "node-load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.opts, false)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
