package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"pagen/internal/ckpt"
	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// streamEdges reads back the merged canonical edge stream of a streamed
// run's shard directory.
func streamEdges(t *testing.T, dir string, ranks int) []graph.Edge {
	t.Helper()
	d, err := esink.OpenDir(dir, ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	it := d.Iter(0)
	var out []graph.Edge
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// The core streaming property: a run with StreamDir set produces, after
// the shard merge, exactly the edge list the in-memory path produces —
// across rank counts, worker counts, and tiny block sizes that force
// many partial sorted blocks per shard.
func TestStreamMatchesInMemory(t *testing.T) {
	pr := model.Params{N: 8_000, X: 2, P: 0.5}
	for _, ranks := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2} {
			t.Run(fmt.Sprintf("ranks=%d_workers=%d", ranks, workers), func(t *testing.T) {
				part, err := partition.New(partition.KindRRP, pr.N, ranks)
				if err != nil {
					t.Fatal(err)
				}
				base, err := Run(Options{Params: pr, Part: part, Seed: 21, Workers: workers}, false)
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				res, err := Run(Options{
					Params: pr, Part: part, Seed: 21, Workers: workers,
					StreamDir: dir, StreamBlockEdges: 512,
				}, false)
				if err != nil {
					t.Fatal(err)
				}
				if res.Graph != nil {
					t.Fatal("streamed run returned an in-memory graph")
				}
				for _, st := range res.Ranks {
					if st.SinkBlocks < 1 || st.SinkBytes <= 0 {
						t.Fatalf("rank %d: blocks=%d bytes=%d, want positive", st.Rank, st.SinkBlocks, st.SinkBytes)
					}
				}
				equalEdges(t, t.Name(), streamEdges(t, dir, ranks), base.Graph.Edges)

				// Re-running into the same directory must discard the
				// stale shards (Reset) and reproduce the same output.
				if _, err := Run(Options{
					Params: pr, Part: part, Seed: 21, Workers: workers,
					StreamDir: dir, StreamBlockEdges: 512,
				}, false); err != nil {
					t.Fatal(err)
				}
				equalEdges(t, t.Name()+"/rerun", streamEdges(t, dir, ranks), base.Graph.Edges)
			})
		}
	}
}

// The headline restart property for streamed runs: kill after any
// committed epoch — with the torn shard tail a kill mid-flush leaves —
// and the resumed run's merged shards are identical edge-for-edge to an
// uninterrupted run. Exercised at 2 and 4 ranks.
func TestStreamCheckpointResume(t *testing.T) {
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	for _, ranks := range []int{2, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			newPart := func() partition.Scheme {
				part, err := partition.New(partition.KindRRP, pr.N, ranks)
				if err != nil {
					t.Fatal(err)
				}
				return part
			}
			base, err := Run(Options{Params: pr, Part: newPart(), Seed: 7, Workers: 2}, false)
			if err != nil {
				t.Fatal(err)
			}

			// Build the snapshot library. The epoch count is schedule-bound
			// (each epoch costs a quiescence pause, and a fast run can end
			// before a second trigger opens), so retry across a spread of
			// intervals until at least two epochs committed.
			var ckptDir, streamDir string
			var epochs []int64
			for _, every := range []int64{2000, 1500, 1000, 500, 250, 2000, 1500, 1000, 500, 250} {
				ckptDir, streamDir = t.TempDir(), t.TempDir()
				if _, err := Run(Options{
					Params: pr, Part: newPart(), Seed: 7, Workers: 2,
					StreamDir: streamDir, StreamBlockEdges: 512,
					Checkpoint: &CheckpointOptions{Dir: ckptDir, Every: every, Keep: 1000},
				}, false); err != nil {
					t.Fatal(err)
				}
				var err error
				if epochs, err = ckpt.Epochs(ckptDir, 0); err != nil {
					t.Fatal(err)
				}
				if len(epochs) >= 2 {
					break
				}
			}
			if len(epochs) < 2 {
				t.Fatalf("only %d epochs committed across all retry intervals", len(epochs))
			}
			equalEdges(t, "uninterrupted streamed", streamEdges(t, streamDir, ranks), base.Graph.Edges)

			resume := func(label string, workers int) {
				res, err := Run(Options{
					Params: pr, Part: newPart(), Seed: 7, Workers: workers,
					StreamDir: streamDir, StreamBlockEdges: 512,
					Checkpoint: &CheckpointOptions{Dir: ckptDir, Keep: 1000, Resume: true},
				}, false)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Graph != nil {
					t.Fatalf("%s: streamed resume returned an in-memory graph", label)
				}
				equalEdges(t, label, streamEdges(t, streamDir, ranks), base.Graph.Edges)
			}

			// tear simulates the kill's torn tail: garbage appended past
			// the durable prefix, which Recover must scan past and drop.
			tear := func() {
				for r := 0; r < ranks; r++ {
					f, err := os.OpenFile(esink.ShardPath(streamDir, r, ranks), os.O_WRONLY|os.O_APPEND, 0o644)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.Write([]byte{'B', 0x9f, 0x03, 0x55, 0xaa, 0x00}); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}
			}

			// Newest epoch, same and different worker counts.
			top := epochs[len(epochs)-1]
			tear()
			resume(fmt.Sprintf("epoch %d workers=2", top), 2)
			resume(fmt.Sprintf("epoch %d workers=1", top), 1)

			// Every earlier epoch, trimming snapshots as a crash at that
			// epoch would have, tearing the shard tails each time.
			for i := len(epochs) - 2; i >= 0; i-- {
				for r := 0; r < ranks; r++ {
					if err := os.Remove(ckpt.Path(ckptDir, r, epochs[i+1])); err != nil {
						t.Fatal(err)
					}
				}
				tear()
				resume(fmt.Sprintf("epoch %d", epochs[i]), 2)
			}

			// With every snapshot gone, Resume must fall back to a fresh
			// streamed run (Reset discards the stale shards).
			for r := 0; r < ranks; r++ {
				if err := os.Remove(ckpt.Path(ckptDir, r, epochs[0])); err != nil {
					t.Fatal(err)
				}
			}
			resume("empty dir fresh start", 2)
		})
	}
}

// Mode mixing across a restart must fail loudly: a streamed snapshot
// resumed without -stream-dir would re-emit edges the shard already
// holds, and vice versa.
func TestStreamResumeModeMismatch(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindUCP, pr.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(streamDir, ckptDir string, resume bool) error {
		_, err := Run(Options{
			Params: pr, Part: part, Seed: 4, Workers: 1,
			StreamDir:  streamDir,
			Checkpoint: &CheckpointOptions{Dir: ckptDir, Every: 500, Resume: resume},
		}, false)
		return err
	}

	streamedCkpt := t.TempDir()
	if err := run(t.TempDir(), streamedCkpt, false); err != nil {
		t.Fatal(err)
	}
	if epochs, err := ckpt.Epochs(streamedCkpt, 0); err != nil || len(epochs) == 0 {
		t.Fatalf("streamed run committed no epochs (err=%v)", err)
	}
	if err := run("", streamedCkpt, true); err == nil || !strings.Contains(err.Error(), "stream") {
		t.Fatalf("in-memory resume of streamed snapshot: err = %v, want stream-mode mismatch", err)
	}

	plainCkpt := t.TempDir()
	if err := run("", plainCkpt, false); err != nil {
		t.Fatal(err)
	}
	if err := run(t.TempDir(), plainCkpt, true); err == nil || !strings.Contains(err.Error(), "stream") {
		t.Fatalf("streamed resume of in-memory snapshot: err = %v, want stream-mode mismatch", err)
	}
}

// StreamDir and Sink are mutually exclusive edge destinations.
func TestStreamSinkExclusive(t *testing.T) {
	pr := model.Params{N: 1_000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindUCP, pr.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Options{
		Params: pr, Part: part, Seed: 1,
		Sink:      func(int, graph.Edge) {},
		StreamDir: t.TempDir(),
	}, false)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}
