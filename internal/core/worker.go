package core

import (
	"runtime"
	"sync/atomic"

	"pagen/internal/graph"
	"pagen/internal/msg"
	"pagen/internal/obs"
	"pagen/internal/xrand"
)

// workerScratchCap is the per-destination size of a worker's private
// send buffer; full buffers merge into the rank's shared per-destination
// stripe in one lock acquisition.
const workerScratchCap = 64

// inboxCap bounds a worker inbox in messages. Only the dispatcher pushes
// blocking (a full worker is never itself blocked, so the dispatcher
// always unblocks); sibling workers try-push and park overflow locally.
const inboxCap = 4096

// worker owns a contiguous block [lo, hi) of the rank's local node
// indices: it is the single writer for those nodes' F slots, the single
// owner of their waiter queues and suspension records, and the only
// goroutine that advances their generation. Cross-worker dependencies
// travel as kindReqLocal/kindResLocal messages through inboxes, so the
// whole Q_{k,l} cascade needs no locks.
type worker struct {
	e      *engine
	id     int
	lo, hi int64

	rng     xrand.Rand // reused across nodes; re-seeded per node
	waiters waiterTable
	susp    suspTable

	// remote is the request-coalescing table (hub cache on only): it
	// chains this worker's nodes waiting on the same remote slot,
	// keyed by global slot id k*x + l, primary requester included.
	// One wire request serves the whole chain; resumeWire fans its
	// answer out. Worker-private like waiters, so no locking.
	remote waiterTable

	// inbox receives remote traffic from the dispatcher and sibling
	// traffic from other workers. Nil when the rank runs one worker.
	inbox *inbox
	spare []msg.Message // ping-pong buffer handed to inbox.pop

	// pendingTo parks messages whose destination inbox was full; they
	// must drain before this worker may block.
	pendingTo    [][]msg.Message
	pendingCount int

	// scratch is the per-destination private send buffer (concurrent
	// mode only; the single-worker path sends straight through comm).
	scratch [][]msg.Message

	// unresolved counts this worker's still-NILL slots. Single-writer:
	// only the owning worker resolves its slots.
	unresolved int64
	doneNoted  bool

	// cursor is the next local index the generation pass will visit; a
	// checkpoint pause stops the pass mid-block and a later pass (or a
	// restored run) continues from here.
	cursor int64
	// claims is this worker's per-span claim table (concurrent mode):
	// span i covers local indices [lo+i*spanSize, min(lo+(i+1)*spanSize,
	// hi)) and claims[i] records the worker generating it — -1 until the
	// owner's pass enters it (head-first CAS) or an idle sibling steals
	// it (tail-first CAS). A span is claimed exactly once, before any of
	// its nodes is initiated, which is what makes generatorOf stable.
	claims []int32
	// stealLo/stealHi delimit the stolen span this worker is currently
	// generating ([stealLo, stealHi), empty when stealLo >= stealHi);
	// a checkpoint pause mid-span parks the range here.
	stealLo, stealHi int64
	// sincePoll counts nodes generated since the last inbox service, so
	// the poll cadence carries across span and steal boundaries.
	sincePoll int
	// resumed latches a kindCkptResume delivery: the epoch ended and a
	// paused generation pass may continue.
	resumed bool

	// poll is the current generation-loop polling interval; adaptive
	// tracks whether adaptPoll may move it.
	poll     int
	adaptive bool

	// stats (merged into RankStats by finishStats)
	steals             int64
	stolenNodes        int64
	retries            int64
	queuedWaits        int64
	localWaits         int64
	hubHits            int64
	hubMisses          int64
	coalesced          int64
	recomputeHits      int64
	recomputeFallbacks int64
	replayedEdges      int64
	edgeCount          int64
	waitChain          obs.Histogram
	replayDepth        obs.Histogram

	err error
}

func newWorker(e *engine, id int, lo, hi int64) *worker {
	w := &worker{e: e, id: id, lo: lo, hi: hi, cursor: lo}
	w.waiters.init()
	w.susp.init()
	if e.hub != nil {
		w.remote.init()
	}
	w.poll = e.opts.PollEvery
	if w.poll <= 0 {
		w.poll = DefaultPollEvery
		w.adaptive = true
	}
	if e.concurrent {
		w.inbox = newInbox(inboxCap)
		w.spare = make([]msg.Message, 0, 256)
		w.pendingTo = make([][]msg.Message, e.nw)
		w.scratch = make([][]msg.Message, e.p)
		if hi > lo {
			w.claims = make([]int32, (hi-lo+e.spanSize-1)/e.spanSize)
			for i := range w.claims {
				w.claims[i] = -1
			}
		}
	}
	return w
}

// spanEnd returns the first index past the span containing local index
// idx of this worker's block, clamped to the block end.
func (w *worker) spanEnd(idx int64) int64 {
	end := w.lo + ((idx-w.lo)/w.e.spanSize+1)*w.e.spanSize
	if end > w.hi {
		end = w.hi
	}
	return end
}

func (w *worker) owns(idx int64) bool { return idx >= w.lo && idx < w.hi }

func (w *worker) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.e.fail(err)
}

// adaptPoll retunes the polling interval from two signals: the live
// pending-waiter depth and the inbox's measured wakeup latency (the
// EWMA sojourn from a message's enqueue to its drain). High depth or
// high latency both mean the generation stretches are too long for the
// traffic — poll more often; zero depth with low latency means the
// worker is over-polling — stretch the interval.
func (w *worker) adaptPoll() {
	if !w.adaptive {
		return
	}
	depth := w.e.pendingDepth()
	var lat float64
	if w.inbox != nil {
		lat = w.inbox.wakeLatency()
	}
	switch {
	case depth > adaptiveHighWater || lat > adaptiveLatHigh:
		if w.poll > adaptiveMinPoll {
			w.poll /= 2
		}
	case depth == 0 && lat < adaptiveLatLow:
		if w.poll < adaptiveMaxPoll {
			w.poll *= 2
		}
	}
}

// emit finalises one edge of a generating node. s is the edge's flat
// slot index — also its canonical stream key (slot order is exactly the
// in-memory emission order collectEdges reconstructs).
func (w *worker) emit(t, s, v int64) {
	w.edgeCount++
	e := w.e
	if e.stream != nil {
		if err := e.stream.Emit(uint64(s), v); err != nil {
			w.fail(err)
		}
	}
	if e.sink != nil {
		e.sink(e.rank, graph.Edge{U: t, V: v})
	}
}

// isDup reports whether v already appears among t's attachments. Only
// t's generating worker calls it — the single writer of t's slots,
// steal schedule included — and a node's slots beyond its current edge
// are still NILL (strict per-node sequencing), so plain reads suffice.
func (w *worker) isDup(t, v int64) bool {
	e := w.e
	base := e.slot(t, 0)
	for i := int64(0); i < e.x64; i++ {
		if e.f[base+i] == v {
			return true
		}
	}
	return false
}

// genNode starts node t's generation on its own random stream.
func (w *worker) genNode(t int64) {
	w.rng.SeedStream(w.e.seed, uint64(t))
	w.advance(t, 0, &w.rng)
}

// advance runs node t's attachment loop from the given edge with rng
// positioned mid-stream (Algorithm 3.2 lines 4-14, strictly edge by
// edge). On a copy from an unresolved source the node suspends — the
// stream state and edge index are parked in the suspension table — and
// resume continues exactly there when the answer arrives. Every draw,
// duplicate retries included, comes from this one per-node stream, which
// is what makes the output independent of workers, ranks and schedule.
func (w *worker) advance(t int64, edge int, rng *xrand.Rand) {
	e := w.e
	d := e.opts.Params.NewDrawer(t)
	for ; edge < e.x; edge++ {
	draw:
		for {
			a := d.Next(rng)
			k := a.K
			if a.Direct {
				// Direct branch (lines 6-10).
				if w.isDup(t, k) {
					w.retries++
					continue draw
				}
				w.resolveLocal(t, edge, k)
				if e.trace != nil {
					e.trace.RecordDirect(t, edge, k)
				}
				break draw
			}
			// Copy branch (lines 11-14).
			l := a.L
			if e.trace != nil {
				e.trace.RecordCopy(t, edge, k, l)
			}
			owner := e.part.Owner(k)
			if owner == e.rank {
				kidx := e.part.Index(e.rank, k)
				// Same-rank copy query: counts toward node k's received
				// load (Lemma 3.4's M_k) like a request would.
				e.noteLoad(kidx)
				s := kidx*e.x64 + int64(l)
				// Atomic even inside this worker's static block: with
				// stealing, a thief may be the slot's writer.
				v := e.getSlot(s)
				if v >= 0 {
					if w.isDup(t, v) {
						w.retries++
						continue draw
					}
					w.resolveLocal(t, edge, v)
					break draw
				}
				// Local dependency chain: park on the owner's queue.
				w.localWaits++
				if w.owns(kidx) {
					w.waiters.push(s, t, uint16(edge))
					e.trackPending(1)
				} else {
					m := msg.Request(t, edge, k, l)
					m.Kind = kindReqLocal
					w.toWorker(e.workerOf(kidx), m)
				}
				w.suspend(t, edge, rng, -1)
				return
			}
			if hub := e.hub; hub != nil && k < hub.h {
				gkey := k*e.x64 + int64(l)
				if v := hub.get(gkey); v >= 0 {
					// Replica hit: the owner's immutable value is
					// already here — the same value a round trip
					// would return, so no request travels.
					w.hubHits++
					e.noteElided(k)
					if w.isDup(t, v) {
						w.retries++
						continue draw
					}
					w.resolveLocal(t, edge, v)
					break draw
				}
				w.hubMisses++
				if w.remote.has(gkey) {
					// A node of this worker already has a request for
					// this slot in flight: ride its answer. Coalescing
					// is prefix-only so every elided query lands in
					// hubElided and the Lemma 3.4 census stays exact
					// (tail slots coalesce too rarely to be worth an
					// n-sized counter array).
					w.coalesced++
					e.noteElided(k)
					w.remote.push(gkey, t, uint16(edge))
					w.suspend(t, edge, rng, gkey)
					return
				}
				if e.recompute {
					if v, ok := w.replayRemote(k, l); ok {
						// Replayed values are as immutable as
						// resolved ones; seed the replica so later
						// queries for this slot short-circuit.
						hub.install(gkey, v)
						if w.isDup(t, v) {
							w.retries++
							continue draw
						}
						w.resolveLocal(t, edge, v)
						break draw
					}
				}
				w.remote.push(gkey, t, uint16(edge))
				w.sendData(owner, msg.Request(t, edge, k, l))
				w.suspend(t, edge, rng, gkey)
				return
			}
			if e.recompute {
				if v, ok := w.replayRemote(k, l); ok {
					if w.isDup(t, v) {
						w.retries++
						continue draw
					}
					w.resolveLocal(t, edge, v)
					break draw
				}
			}
			w.sendData(owner, msg.Request(t, edge, k, l))
			w.suspend(t, edge, rng, -1)
			return
		}
	}
}

// suspend parks node t at the given edge with its stream state. key is
// the coalescing-table slot the node chained on, -1 for waits that did
// not go through it (local waits, or the cache off).
func (w *worker) suspend(t int64, edge int, rng *xrand.Rand, key int64) {
	w.susp.put(w.e.localIdx(t), suspState{rng: *rng, e: int32(edge), key: key})
}

// resume continues a suspended node with the resolved value of its
// pending copy source: the duplicate check of Algorithm 3.2 line 22,
// re-drawing the whole step from the node's own stream on conflict.
// Stale deliveries (a duplicated frame answering an already-finished
// slot) are dropped.
func (w *worker) resume(t int64, edge int, v int64) {
	st, ok := w.susp.take(w.e.localIdx(t))
	if !ok || int(st.e) != edge {
		if ok {
			w.susp.put(w.e.localIdx(t), st)
		}
		return
	}
	if w.isDup(t, v) {
		w.retries++
		w.advance(t, edge, &st.rng)
		return
	}
	w.resolveLocal(t, edge, v)
	w.advance(t, edge+1, &st.rng)
}

// resumeWire handles a wire <resolved>. With the hub cache off it is a
// plain resume. With it on, the answer is addressed to the chain's
// primary requester but belongs to every node coalesced on the same
// slot: look the slot key up through the primary's suspension, install
// the value in the replica, and fan the answer out to the whole chain
// (the primary is a chain member like any other). A stale answer — the
// node already advanced, or re-suspended on a different slot or edge —
// takes the plain path, whose edge check drops it.
func (w *worker) resumeWire(t int64, edge int, v int64) {
	e := w.e
	if e.hub == nil {
		w.resume(t, edge, v)
		return
	}
	st, ok := w.susp.get(e.localIdx(t))
	if !ok || st.key == -1 || int(st.e) != edge {
		w.resume(t, edge, v)
		return
	}
	if st.key >= 0 && st.key < e.hub.slots() {
		e.hub.install(st.key, v)
	}
	// Walk the detached chain copying each node out before freeing it:
	// resume can recurse into advance and push new chain entries while
	// we iterate (same discipline as resolveLocal's waiter walk). The
	// members are deliverResolved, not resumed directly: a chain rebuilt
	// by a restore under a different worker layout can span siblings.
	h := w.remote.take(st.key)
	if h < 0 {
		w.resume(t, edge, v)
		return
	}
	for h >= 0 {
		n := w.remote.arena[h]
		w.remote.freeNode(h)
		h = n.next
		w.deliverResolved(n.t, int(n.e), v)
	}
}

// resolveLocal finalises F_t(edge) = v for a locally-owned slot this
// worker is generating: records the edge and emits it, then runs the
// slot's bookkeeping — directly when this worker is also t's static
// owner, via a kindSlotDone handoff when t was stolen (the waiter
// queues, unresolved count and publish duty never move with a steal).
func (w *worker) resolveLocal(t int64, edge int, v int64) {
	e := w.e
	s := e.slot(t, edge)
	e.setSlot(s, v)
	w.emit(t, s, v)
	if ow := e.workerOf(e.localIdx(t)); ow != w.id {
		m := msg.Resolved(t, edge, v)
		m.Kind = kindSlotDone
		w.toWorker(ow, m)
		return
	}
	w.finishSlot(t, edge, s, v)
}

// finishSlot runs the static owner's half of a slot resolution:
// decrements the shard's unresolved count, publishes hub-prefix nodes,
// and answers every waiter of this slot (Algorithm 3.1 lines 16-19 /
// Algorithm 3.2 lines 21-25). Called inline by resolveLocal for
// unstolen nodes, from a thief's kindSlotDone otherwise — either way on
// the owning worker's goroutine, so the waiter walk stays lock-free.
func (w *worker) finishSlot(t int64, edge int, s, v int64) {
	e := w.e
	w.unresolved--

	// Hub prefix: replicate the node's slots to every rank that may
	// query them, batched per node. A node's slots resolve strictly in
	// order, so edge x-1 resolving means all x values are final
	// (kindSlotDone messages arrive in resolve order over the FIFO
	// inbox, and the thief's stores precede its sends); publishing them
	// together keeps a node's publishes adjacent per destination, where
	// the v3 codec's slot-delta coding packs each trailing slot into
	// ~1 byte of header. Peers that query an earlier slot before the
	// batch lands fall back to the wire protocol (the replica elides
	// traffic, never correctness), and a restore republishes resolved
	// prefix slots via publishResolvedPrefix, so the deferral survives
	// checkpoint cuts too.
	if hub := e.hub; hub != nil && t < hub.h && edge == e.x-1 {
		base := s - int64(edge)
		for l := int64(0); l < e.x64; l++ {
			m := msg.Publish(t, int(l), e.getSlot(base+l))
			for _, r := range e.hubPeers {
				w.sendData(r, m)
			}
		}
	}

	// Walk the slot's detached waiter chain in FIFO order. Each node's
	// fields are copied out and the node freed before delivery, because
	// delivery can recurse into advance/resolveLocal and push new
	// waiters — growing the arena or reusing freed nodes — while we
	// iterate.
	h := w.waiters.take(s)
	var chain int64
	for h >= 0 {
		n := w.waiters.arena[h]
		w.waiters.freeNode(h)
		h = n.next
		chain++
		e.trackPending(-1)
		w.deliverResolved(n.t, int(n.e), v)
	}
	w.waitChain.Observe(chain)

	if w.unresolved == 0 && !w.doneNoted {
		w.doneNoted = true
		w.noteShardDone()
	}
}

// noteShardDone marks this worker's shard fully resolved; the last shard
// reports the rank done. Every worker flushes its own outbound before
// the decrement: a completed shard never resolves (hence never
// publishes) again, and the release-acquire ordering of the atomic adds
// means the final worker's fences are sequenced after every sibling's
// flush — so fences trail all of the rank's publishes on the wire.
func (w *worker) noteShardDone() {
	e := w.e
	if !e.concurrent {
		return // maybeReportDone drives the single-worker protocol
	}
	w.quiesce()
	if atomic.AddInt32(&e.activeWorkers, -1) != 0 {
		return
	}
	e.reportDone()
}

// deliverResolved routes a resolution to the waiting node's generator —
// by direct call when that is this worker, through an inbox for a
// sibling's, as a resolved message for a remote rank's. The generator
// (steal-aware via generatorOf), not the static owner, holds the
// node's suspension record.
func (w *worker) deliverResolved(t int64, edge int, v int64) {
	e := w.e
	owner := e.part.Owner(t)
	if owner != e.rank {
		w.sendData(owner, msg.Resolved(t, edge, v))
		return
	}
	tw := e.generatorOf(e.localIdx(t))
	if tw == w.id {
		w.resume(t, edge, v)
		return
	}
	m := msg.Resolved(t, edge, v)
	m.Kind = kindResLocal
	w.toWorker(tw, m)
}

// onRequest handles a <request, t', e', k', l'> for a slot this worker
// owns (Algorithm 3.2 lines 16-20). remote distinguishes wire requests
// from sibling-worker ones: the latter were already counted (localWaits,
// node load) at the requesting worker.
func (w *worker) onRequest(m msg.Message, remote bool) {
	e := w.e
	kidx := e.part.Index(e.rank, m.K)
	if remote {
		e.noteLoad(kidx)
	}
	s := kidx*e.x64 + int64(m.L)
	v := e.getSlot(s)
	if v < 0 {
		if remote {
			w.queuedWaits++
		}
		w.waiters.push(s, m.T, m.E)
		e.trackPending(1)
		return
	}
	w.deliverResolved(m.T, int(m.E), v)
}

// sendData sends a data message to a remote rank: directly through comm
// when single-worker, via the private scratch buffer otherwise.
func (w *worker) sendData(to int, m msg.Message) {
	e := w.e
	if !e.concurrent {
		if err := e.cm.Send(to, m); err != nil && w.err == nil {
			w.err = err
		}
		return
	}
	// Store the append result before any early return: append may have
	// grown the backing array, and dropping it would leave w.scratch[to]
	// aliasing the stale smaller one.
	buf := append(w.scratch[to], m)
	w.scratch[to] = buf
	if len(buf) >= workerScratchCap {
		if err := e.cm.SendBatch(to, buf); err != nil {
			w.fail(err)
			return
		}
		w.scratch[to] = buf[:0]
	}
}

// flushScratch merges every non-empty private buffer into the shared
// per-destination stripes.
func (w *worker) flushScratch() {
	for to, buf := range w.scratch {
		if len(buf) == 0 {
			continue
		}
		w.scratch[to] = buf[:0]
		if err := w.e.cm.SendBatch(to, buf); err != nil {
			w.fail(err)
			return
		}
	}
}

// quiesce pushes everything outbound onto the wire: private scratch into
// the stripes, stripes into transport frames. Required after processing
// a message group and before blocking (Section 3.5.2: answers must not
// wait for the next blocking point).
func (w *worker) quiesce() {
	w.flushScratch()
	if err := w.e.cm.FlushAll(); err != nil {
		w.fail(err)
	}
}

// toWorker hands a message to a sibling worker, parking it locally when
// the sibling's inbox is full. Workers never block pushing — that is
// what makes the bounded-inbox topology deadlock-free.
func (w *worker) toWorker(dst int, m msg.Message) {
	if w.e.workers[dst].inbox.tryPush(m) {
		return
	}
	w.pendingTo[dst] = append(w.pendingTo[dst], m)
	w.pendingCount++
}

// drainPending retries parked sibling messages in arrival order.
func (w *worker) drainPending() {
	if w.pendingCount == 0 {
		return
	}
	for dst := range w.pendingTo {
		q := w.pendingTo[dst]
		if len(q) == 0 {
			continue
		}
		i := 0
		for i < len(q) && w.e.workers[dst].inbox.tryPush(q[i]) {
			i++
		}
		if i > 0 {
			w.pendingCount -= i
			w.pendingTo[dst] = append(q[:0], q[i:]...)
		}
	}
}

// processBatch runs one inbox batch through the protocol handlers, then
// retries parked messages and flushes outbound answers.
func (w *worker) processBatch(ms []msg.Message) {
	for _, m := range ms {
		switch m.Kind {
		case msg.KindRequest:
			w.onRequest(m, true)
		case kindReqLocal:
			w.onRequest(m, false)
		case msg.KindResolved:
			w.resumeWire(m.T, int(m.E), m.V)
		case kindResLocal:
			// Same-rank sibling answers never coalesce (the chain is for
			// wire requests), so the plain path applies.
			w.resume(m.T, int(m.E), m.V)
		case kindSlotDone:
			// A thief resolved one of this shard's slots; run the
			// owner-side bookkeeping (the value is already in F).
			w.finishSlot(m.T, int(m.E), w.e.slot(m.T, int(m.E)), m.V)
		case kindCkptResume:
			w.resumed = true
		}
	}
	w.drainPending()
	w.quiesce()
}

// pollPoint is the generation loop's periodic service stop: retry parked
// sibling messages, process whatever the inbox holds, retune the poll
// interval.
func (w *worker) pollPoint() {
	w.drainPending()
	ms, _ := w.inbox.pop(w.spare, false)
	w.spare = ms
	if len(ms) > 0 {
		w.processBatch(ms)
	}
	w.adaptPoll()
}

// genRange advances generation over local indices [*cur, hi),
// servicing the inbox every poll interval. It never blocks: nodes that
// cannot finish an edge suspend and the pass moves on. Shared by the
// worker's own spans and stolen ones (cur points at the live cursor for
// either). It returns true when the range is exhausted (or the worker
// failed), false when a checkpoint epoch paused the pass mid-range (the
// cursor stays put; the next pass continues there).
func (w *worker) genRange(cur *int64, hi int64) bool {
	e := w.e
	for *cur < hi {
		if w.err != nil {
			return true
		}
		idx := *cur
		*cur++
		if t := e.part.NodeAt(e.rank, idx); t > e.x64 && !(e.restored && w.nodeInitiatedLocal(idx)) {
			w.genNode(t)
			if e.ckTrig {
				e.ckptNoteInit()
			}
		}
		w.sincePoll++
		if w.sincePoll >= w.poll {
			w.sincePoll = 0
			if e.aborted() {
				w.err = e.takeErr()
				return true
			}
			w.pollPoint()
			if e.ck != nil && atomic.LoadInt32(&e.ck.phase) == ckPaused {
				// Flush outbound answers before pausing: local
				// quiescence means parked with nothing buffered.
				w.quiesce()
				return false
			}
		}
	}
	return true
}

// nodeInitiatedLocal reports whether a restored snapshot already
// initiated local node idx, using only state this goroutine may read:
// the node's final slot (write-once, atomic under concurrency) and this
// worker's own suspension table. Restored suspension records land in
// static owners' tables, and restore pre-claims their spans for those
// owners, so the generator visiting idx is exactly the worker whose
// table could hold its record.
func (w *worker) nodeInitiatedLocal(idx int64) bool {
	e := w.e
	if e.getSlot(idx*e.x64+e.x64-1) >= 0 {
		return true
	}
	return w.susp.has(idx)
}

// genPass drives one generation pass: finish an interrupted stolen span
// first, then advance over the worker's own block span by span,
// claiming each span before entering it (a span a sibling already stole
// is skipped whole). Returns false when a checkpoint epoch paused the
// pass (cursors keep their place), true when no unclaimed work remains
// in this worker's block.
func (w *worker) genPass() bool {
	e := w.e
	if w.stealLo < w.stealHi {
		if !w.genRange(&w.stealLo, w.stealHi) {
			return false
		}
	}
	for w.cursor < w.hi {
		if w.err != nil {
			return true
		}
		span := (w.cursor - w.lo) / e.spanSize
		if !atomic.CompareAndSwapInt32(&w.claims[span], -1, int32(w.id)) &&
			atomic.LoadInt32(&w.claims[span]) != int32(w.id) {
			// A sibling stole this span; skip it whole.
			w.cursor = w.spanEnd(w.cursor)
			continue
		}
		// Claimed (or re-entered after a checkpoint pause mid-span).
		if !w.genRange(&w.cursor, w.spanEnd(w.cursor)) {
			return false
		}
	}
	return true
}

// trySteal claims one span of unstarted work from the sibling with the
// most unclaimed spans, taking the tail-most one (the victim's own pass
// claims head-first, so contention meets in the middle). Returns true
// after installing the stolen range for genPass, false when no
// unclaimed span exists anywhere — which, since claims only ever move
// -1 -> worker id, means no steal will ever succeed again.
func (w *worker) trySteal() bool {
	e := w.e
	// Yield before raiding: exhausting the own block used to park the
	// worker, which was the scheduling point that let the dispatcher
	// (checkpoint triggers, wire delivery) and slower siblings run on
	// saturated hosts. Stealing removes the park, so restore the yield
	// explicitly — this is the idle path, the hot loop never pays it.
	runtime.Gosched()
	for {
		victim, bestSpan, bestAvail := -1, -1, 0
		for i, v := range e.workers {
			if i == w.id || v.claims == nil {
				continue
			}
			avail, last := 0, -1
			for s := range v.claims {
				if atomic.LoadInt32(&v.claims[s]) < 0 {
					avail++
					last = s
				}
			}
			if avail > bestAvail {
				victim, bestSpan, bestAvail = i, last, avail
			}
		}
		if victim < 0 {
			return false
		}
		v := e.workers[victim]
		if !atomic.CompareAndSwapInt32(&v.claims[bestSpan], -1, int32(w.id)) {
			continue // lost the race; rescan
		}
		w.stealLo = v.lo + int64(bestSpan)*e.spanSize
		w.stealHi = v.spanEnd(w.stealLo)
		w.steals++
		w.stolenNodes += w.stealHi - w.stealLo
		return true
	}
}

// runConcurrent is a worker goroutine's whole life: generation passes
// interleaved with checkpoint pauses (serve the cascade until the cut
// commits, then continue the pass), then — once its own block is done —
// stealing unstarted spans from loaded siblings until none remain, then
// serving the inbox until the dispatcher closes it (stop) or the engine
// aborts.
func (w *worker) runConcurrent() {
	for {
		if !w.genPass() {
			if !w.serve(true) {
				return
			}
			continue
		}
		if w.err != nil || !w.trySteal() {
			break
		}
	}
	w.serve(false)
}

// serve processes the inbox until the dispatcher closes it or the
// engine aborts (returns false), or — when untilResume is set — until a
// checkpoint-resume message arrives (returns true). Parked sibling
// messages must drain before blocking; the worker keeps serving its own
// inbox while they do, so two workers with mutually full inboxes still
// make progress.
func (w *worker) serve(untilResume bool) bool {
	for {
		if w.err != nil || w.e.aborted() {
			return false
		}
		if untilResume && w.resumed {
			w.resumed = false
			return true
		}
		ms, open := w.inbox.pop(w.spare, false)
		w.spare = ms
		if len(ms) > 0 {
			w.processBatch(ms)
			continue
		}
		if !open {
			return false
		}
		if w.pendingCount > 0 {
			w.drainPending()
			runtime.Gosched()
			continue
		}
		w.quiesce()
		if w.err != nil {
			return false
		}
		ms, open = w.inbox.pop(w.spare, true)
		w.spare = ms
		if len(ms) > 0 {
			w.processBatch(ms)
		} else if !open {
			return false
		}
	}
}
