// Package core implements the paper's contribution: the distributed-memory
// parallel preferential-attachment generator (Algorithms 3.1 and 3.2).
//
// Each processor rank owns a partition of the node set and computes the
// attachments F_t(e) for its nodes with the copy model. Direct
// attachments resolve immediately; copy attachments whose source node
// lives on another rank travel as <request, t, e, k, l> messages and come
// back as <resolved, t, e, v>. Requests for still-unknown attachments
// wait in per-slot queues (the paper's Q_{k,l}) and are answered the
// moment the slot resolves. Duplicate edges are rejected at both decision
// points the paper identifies (Algorithm 3.2 lines 7 and 22) by
// re-running the attachment step.
//
// Within a rank, the local node range is sharded across Options.Workers
// goroutines (the shared-memory multiplier the paper's one-rank-per-core
// mapping leaves on the table). Each worker owns a contiguous block of
// local node indices and is the single writer for those nodes' slots,
// waiter queues and suspension records; cross-worker reads of the shared
// F table go through atomics, and cross-worker resolution traffic travels
// over bounded MPSC inboxes, so the Q_{k,l} cascade stays single-writer
// per shard. Every random draw — including duplicate retries — comes from
// the owning node's private stream and nodes advance strictly edge by
// edge (a node blocked on edge e suspends, storing its stream, and
// resumes exactly there), so the output graph is a pure function of
// (n, x, p, seed): independent of the worker count, rank count,
// partition and message schedule.
//
// Termination uses the monotonicity of the unresolved-slot count: a
// rank's count never increases once its generation loop has initiated
// every local slot, so when it hits zero the rank reports done to rank 0,
// and rank 0 broadcasts stop once every rank (itself included) has
// reported. At that instant no request or resolved message can be in
// flight (see the package tests for the argument exercised empirically).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/coll"
	"pagen/internal/comm"
	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/msg"
	"pagen/internal/obs"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// Options configures a parallel generation run.
type Options struct {
	// Params are the copy-model parameters.
	Params model.Params
	// Part assigns nodes to ranks. Its P() fixes the number of ranks.
	Part partition.Scheme
	// Seed seeds the per-node independent random streams.
	Seed uint64
	// Workers is the number of generation goroutines per rank. Zero or
	// negative selects runtime.GOMAXPROCS(0); it is clamped to the
	// rank's local node count. The output graph is identical for every
	// worker count.
	Workers int
	// BufferCap is the per-destination message-buffer capacity
	// (comm.DefaultBufferCap if zero; 1 disables buffering).
	BufferCap int
	// PollEvery is the number of local nodes processed between inbox
	// polls during the generation loop. Zero (or negative) selects the
	// adaptive policy: the interval starts at DefaultPollEvery and is
	// halved (toward 16) while the pending-waiter depth is high, doubled
	// (toward 1024) while it is zero. Polling too rarely lets request
	// queues grow; the ablation benchmark sweeps this.
	PollEvery int
	// Trace, when non-nil, receives the per-slot attachment decisions.
	// Slot ranges written by different ranks (and by different workers
	// within a rank) are disjoint, so a single shared trace is written
	// without locking.
	Trace *model.Trace
	// Sink, when non-nil, receives every edge as it is finalised
	// instead of the engine accumulating edges in memory — the paper's
	// Section 3.5 "generate networks on the fly and analyze without
	// performing disk I/O" mode. It is called concurrently from the
	// worker goroutines of every rank (the rank argument identifies the
	// owning rank), so it must be safe for concurrent use.
	Sink func(rank int, e graph.Edge)
	// StreamDir, when non-empty, streams the rank's resolved edges into
	// a sorted, CRC-protected shard file under the directory
	// (esink.ShardPath names it; docs/SHARD_FORMAT.md is the byte spec)
	// instead of accumulating them in memory, so resident memory is
	// bounded by the F table regardless of the edge count. Unlike Sink
	// it composes with checkpointing: each cut records the shard's
	// durable byte offset (ckpt format v4) and a resumed run truncates
	// the shard back to it. Merging the per-rank shard streams
	// rank-major in slot-key order reproduces the in-memory merged
	// graph byte for byte. Mutually exclusive with Sink.
	StreamDir string
	// StreamBlockEdges is the edge-record count per streamed block
	// (esink.DefaultBlockEdges if zero); tests shrink it to force many
	// blocks.
	StreamBlockEdges int
	// CollectNodeLoad enables per-node received-message-load counting
	// (the empirical M_k of Lemma 3.4) in RankStats.NodeLoad. It costs
	// one counter increment per copy query plus 8 bytes per local node,
	// so it is opt-in.
	CollectNodeLoad bool
	// HubPrefix controls the replicated hub-prefix cache (DESIGN.md
	// §10): every rank keeps a read-mostly replica of the first H
	// nodes' attachment slots, owners broadcast newly resolved prefix
	// slots as publish messages, and copy queries for replicated slots
	// are answered locally instead of crossing the wire. 0 (the
	// default) sizes H automatically to cover
	// partition.HubPrefixAutoFrac of the expected request mass; a
	// negative value disables the cache; a positive value fixes H
	// (clamped to n). All ranks of a run must use the same setting.
	// The output graph is identical for every setting.
	HubPrefix int64
	// Checkpoint, when non-nil, enables cooperative checkpoint/restart
	// (see CheckpointOptions and DESIGN.md §9). Incompatible with Sink,
	// Trace and CollectNodeLoad, whose side effects are not captured by
	// a snapshot.
	Checkpoint *CheckpointOptions
	// Resolve selects how copy queries for remote-owned slots resolve
	// (DESIGN.md §11): ResolveWire (the default) sends the paper's
	// request/resolved round trip; ResolveRecompute replays the owning
	// node's random stream locally and only falls back to the wire past
	// the depth cap. All ranks of a run must use the same setting
	// (checkpoint snapshots pin it). The output graph is byte-identical
	// in both modes.
	Resolve ResolveMode
	// RecomputeDepth caps the replay chain length in recompute mode
	// (nodes replayed per query). Zero selects
	// DefaultRecomputeDepth(n); it is ignored in wire mode.
	RecomputeDepth int
	// Transport selects the in-process transport Run wires the ranks
	// with: "shm" (the default — co-located ranks hand message batches
	// across by reference, no serialization) or "local" (every frame
	// runs through the v3 codec; the serialization ablation). RunRank
	// ignores it — callers that build their own endpoints (pa-tcp,
	// chaos tests) pass whatever transport they constructed.
	Transport string
}

// DefaultPollEvery is the generation-loop polling interval the adaptive
// policy starts from (and the old fixed default).
const DefaultPollEvery = 64

// Adaptive PollEvery policy bounds: the interval is halved toward
// adaptiveMinPoll while more than adaptiveHighWater waiter entries are
// pending or the measured inbox wakeup latency exceeds adaptiveLatHigh,
// and doubled toward adaptiveMaxPoll while no waiters are pending and
// messages are being drained within adaptiveLatLow of arriving.
const (
	adaptiveMinPoll   = 16
	adaptiveMaxPoll   = 1024
	adaptiveHighWater = 128
	// Wakeup-latency thresholds (nanoseconds of first-enqueue-to-drain
	// sojourn, the inbox's latEWMA): above High, messages sit too long
	// between polls; below Low, the consumer keeps up easily.
	adaptiveLatHigh = 100e3
	adaptiveLatLow  = 10e3
)

// RankStats are one rank's load and traffic statistics — the measurements
// behind Figures 5-7.
type RankStats struct {
	Rank  int
	Nodes int64
	Edges int64
	// Comm is the traffic snapshot (logical messages and frames).
	Comm comm.Counters
	// Retries counts duplicate-edge retries (both decision points).
	Retries int64
	// QueuedWaits counts requests that arrived before their slot
	// resolved and had to wait in a Q_{k,l} queue.
	QueuedWaits int64
	// LocalWaits counts copy attachments whose source was local but
	// unresolved (same-rank dependency-chain waits, including
	// cross-worker waits inside the rank).
	LocalWaits int64
	// RequestsTo is the per-destination request count — this rank's row
	// of the request-traffic matrix (strictly lower-triangular under
	// consecutive partitioning, Section 4.6.2).
	RequestsTo []int64
	// MaxPendingSlots is the largest number of local slots that were
	// simultaneously waiting on resolutions — the empirical counterpart
	// of the Section 3.4 claim that waiting never idles a processor.
	MaxPendingSlots int64
	// WaitChain is the histogram of Q_{k,l} waiter-queue lengths
	// observed as each local slot resolved (0 = nobody was waiting),
	// merged across the rank's workers. Theorem 3.3's O(log n)
	// dependency-chain bound keeps it shallow.
	WaitChain obs.Histogram
	// NodeLoad is the per-local-node received-message load — the
	// empirical M_k of Lemma 3.4, indexed by the partition's local node
	// index. Nil unless Options.CollectNodeLoad was set. With the hub
	// cache on it counts only queries that reached this rank over the
	// wire (or locally); elided queries appear in HubElided on the
	// requesting rank.
	NodeLoad []int64
	// HubElided counts copy queries answered without a request, by
	// global target node k < H: replica hits plus coalesced requests.
	// Load the owner never saw — the Lemma 3.4 comparison needs
	// NodeLoad + HubElided (summed across ranks). Nil unless both
	// CollectNodeLoad and the hub cache were on.
	HubElided []int64
	// HubCacheHits counts remote copy queries answered by the hub
	// replica; HubCacheMisses counts prefix queries (k < H) that found
	// the replica slot still unresolved and fell back to a request.
	HubCacheHits   int64
	HubCacheMisses int64
	// ReqCoalesced counts remote copy queries that rode an already
	// outstanding request for the same slot instead of sending another.
	ReqCoalesced int64
	// RecomputeResolved counts remote copy queries resolved by local
	// stream replay (recompute mode); RecomputeFallback counts replays
	// that hit the depth cap and fell back to the wire protocol.
	// ReplayedEdges counts attachment values committed to the rank's
	// replay memo table.
	RecomputeResolved int64
	RecomputeFallback int64
	ReplayedEdges     int64
	// ReplayDepth is the histogram of replay chain depths (nodes
	// replayed per resolved query, 0 = answered from local state or the
	// memo) — the empirical counterpart of the Theorem 3.3 O(log n)
	// chain-depth bound the recompute mode's viability rests on.
	ReplayDepth obs.Histogram
	// Steals counts node sub-block spans idle workers claimed from
	// loaded siblings' unstarted tails; StolenNodes counts the local
	// node indices those spans covered. Zero outside concurrent mode.
	// The output graph is identical whatever these count — stealing
	// moves which goroutine runs a node's generation, never the node's
	// random stream or its slot bookkeeping.
	Steals      int64
	StolenNodes int64
	// BusyTime is wall time minus time spent blocked waiting for
	// messages (the dispatcher's blocked time when workers > 1).
	BusyTime time.Duration
	// WallTime is the rank's total engine time.
	WallTime time.Duration
	// CkptEpochs counts committed checkpoint epochs; CkptFailed counts
	// abandoned ones (some rank's capture or background publish failed).
	// CkptBytes is the snapshot bytes this rank's background writer
	// published, CkptWriteTime the time it spent publishing them
	// (encode + CRC + write + fsync + rename + prune, off the pause
	// path), and CkptPauseTime the total generation pause across epochs
	// (quiescence wait + capture; the publish overlaps generation).
	CkptEpochs    int64
	CkptFailed    int64
	CkptBytes     int64
	CkptWriteTime time.Duration
	CkptPauseTime time.Duration
	// CkptPauseHist / CkptWriteHist are the per-epoch distributions of
	// the generation pause and the background publish.
	CkptPauseHist obs.Histogram
	CkptWriteHist obs.Histogram
	// Streaming edge-sink counters (StreamDir runs only): blocks
	// flushed and bytes written to the rank's shard file, and the
	// fsync count and cumulative fsync stall behind checkpoint cuts
	// and the final close.
	SinkBlocks    int64
	SinkBytes     int64
	SinkFsyncs    int64
	SinkFsyncTime time.Duration
}

// Metrics converts the rank's statistics into the exported obs form.
func (s RankStats) Metrics() obs.RankMetrics {
	return obs.RankMetrics{
		Rank:              s.Rank,
		Nodes:             s.Nodes,
		Edges:             s.Edges,
		RequestsSent:      s.Comm.RequestsSent,
		RequestsRecv:      s.Comm.RequestsRecv,
		ResolvedSent:      s.Comm.ResolvedSent,
		ResolvedRecv:      s.Comm.ResolvedRecv,
		ControlSent:       s.Comm.ControlSent,
		ControlRecv:       s.Comm.ControlRecv,
		FramesSent:        s.Comm.FramesSent,
		FramesRecv:        s.Comm.FramesRecv,
		BytesSent:         s.Comm.BytesSent,
		BytesRecv:         s.Comm.BytesRecv,
		Retries:           s.Retries,
		QueuedWaits:       s.QueuedWaits,
		LocalWaits:        s.LocalWaits,
		HubCacheHit:       s.HubCacheHits,
		HubCacheMiss:      s.HubCacheMisses,
		HubCachePub:       s.Comm.PublishSent,
		HubCachePubRecv:   s.Comm.PublishRecv,
		ReqCoalesced:      s.ReqCoalesced,
		RecomputeResolved: s.RecomputeResolved,
		RecomputeFallback: s.RecomputeFallback,
		ReplayedEdges:     s.ReplayedEdges,
		ReplayDepth:       s.ReplayDepth,
		MaxPendingSlots:   s.MaxPendingSlots,
		TotalLoad:         s.TotalLoad(),
		WallNanos:         s.WallTime.Nanoseconds(),
		BusyNanos:         s.BusyTime.Nanoseconds(),
		WaitChain:         s.WaitChain,
		CkptEpochs:        s.CkptEpochs,
		CkptFailed:        s.CkptFailed,
		CkptBytes:         s.CkptBytes,
		CkptWriteNanos:    s.CkptWriteTime.Nanoseconds(),
		CkptPauseNanos:    s.CkptPauseTime.Nanoseconds(),
		CkptPausePerEpoch: s.CkptPauseHist,
		CkptWritePerEpoch: s.CkptWriteHist,
		SinkBlocks:        s.SinkBlocks,
		SinkBytes:         s.SinkBytes,
		SinkFsyncs:        s.SinkFsyncs,
		SinkFsyncNanos:    s.SinkFsyncTime.Nanoseconds(),
	}
}

// NodeLoadSamples expands a rank's local NodeLoad counters into global
// (node id, load) samples using the partition that ran the rank.
// Clique nodes (k < x, never queried) are included with their zero
// loads so the samples cover the rank's whole node set.
func NodeLoadSamples(part partition.Scheme, rank int, load []int64) []obs.KLoad {
	if load == nil {
		return nil
	}
	out := make([]obs.KLoad, 0, len(load))
	i := 0
	part.ForEach(rank, func(u int64) {
		if i < len(load) {
			out = append(out, obs.KLoad{K: u, Load: load[i]})
		}
		i++
	})
	return out
}

// TotalLoad returns the paper's Section 4.6 load measure for the rank:
// nodes plus incoming plus outgoing data messages. Publish traffic is
// deliberately excluded — it is replication overhead, not the
// request/response load the paper's balance analysis models (DESIGN.md
// §10) — so the measure stays comparable across hub-cache settings.
func (s RankStats) TotalLoad() int64 {
	return s.Nodes +
		s.Comm.RequestsSent + s.Comm.ResolvedSent +
		s.Comm.RequestsRecv + s.Comm.ResolvedRecv
}

// RankResult is one rank's output.
type RankResult struct {
	Stats RankStats
	// Edges are the edges whose higher endpoint (the attaching node) is
	// owned by this rank; the union over ranks is the graph.
	Edges []graph.Edge
}

// Internal message kinds for same-rank cross-worker traffic. They share
// msg.Message as the envelope but never reach the codec or the wire:
// they only travel through worker inboxes.
const (
	// kindReqLocal is a same-rank <request>: worker asking a sibling
	// worker for one of its slots.
	kindReqLocal msg.Kind = 100 + iota
	// kindResLocal is a same-rank <resolved>: sibling worker answering.
	kindResLocal
	// kindCkptResume wakes a worker parked by a checkpoint epoch: the
	// cut is committed (or abandoned) and generation may continue.
	kindCkptResume
	// kindSlotDone tells a node's static owner that a thief resolved
	// one of the node's slots (T, E, V mirror a <resolved>): the owner
	// runs the slot's bookkeeping — unresolved count, waiter chains,
	// hub publish — so fences and Done accounting stay with the static
	// shard layout whatever the steal schedule was.
	kindSlotDone
)

// engine is the per-rank state machine.
type engine struct {
	opts Options
	rank int
	p    int
	x    int
	x64  int64
	// seed, prob and sink are hoisted from opts so the generation loop
	// reads them without chasing the Options struct per node.
	seed uint64
	prob float64
	sink func(rank int, e graph.Edge)
	// stream is the external-memory edge sink (Options.StreamDir); nil
	// when edges accumulate in memory or go to Sink.
	stream *esink.Writer
	part   partition.Scheme
	tr     transport.Transport
	cm     *comm.Comm
	trace  *model.Trace

	size int64 // local node count
	nw   int   // worker count (>= 1, <= size when size > 0)
	blk  int64 // local indices per worker block
	// concurrent is nw > 1: selects atomic slot access and the
	// dispatcher/inbox topology instead of the inline single-worker loop.
	concurrent bool
	// spanSize is the work-stealing granularity: each worker's block is
	// divided into spans of this many local indices, claimed atomically
	// (by the owner as its pass enters them, by an idle thief from the
	// tail) so every node has exactly one generator.
	spanSize int64

	// f holds F_t(e) at f[part.Index(rank,t)*x + e]; -1 = NILL. Each
	// slot is written exactly once (-1 -> v) by its owning worker; when
	// concurrent, writes and cross-worker reads are atomic.
	f []int64
	// ckDirty is the delta-checkpoint dirty bitmap: one word per
	// 1<<ckptDirtyShift F slots, set by setSlot, cleared at each
	// successful capture. Nil unless delta epochs are enabled
	// (CheckpointOptions.FullEvery > 1).
	ckDirty []uint32
	// nodeLoad counts copy queries received per local node (indexed
	// like f, but per node not per slot); nil unless CollectNodeLoad.
	nodeLoad []int64

	// hub is the replicated hub-prefix cache; nil when disabled (single
	// rank, p = 1, or Options.HubPrefix < 0). hubPeers are the ranks
	// this rank publishes its resolved prefix slots to. hubElided
	// counts elided queries by global node (CollectNodeLoad only).
	hub       *hubCache
	hubPeers  []int
	hubElided []int64

	// recompute selects the recomputation resolver (Options.Resolve),
	// depthCap is the effective replay-chain cap, and memo the
	// rank-level replay memo table (DESIGN.md §11).
	recompute bool
	depthCap  int
	memo      replayMemo
	// fencesRecv counts hub fences received (coordinator-owned): with
	// the cache on a rank may not leave its receive loop until every
	// peer has fenced, so no publish frame outlives the engine on the
	// transport (pa-tcp runs post-run collectives over the same
	// connections).
	fencesRecv int

	workers []*worker

	// pendingWaiters tracks the current and maximum number of queued
	// waiter entries across all local queues (atomic when concurrent).
	pendingWaiters    int64
	maxPendingWaiters int64

	// activeWorkers counts workers that still have unresolved local
	// slots; the decrement that reaches zero reports the rank done.
	activeWorkers int32
	// doneSent latches the rank's done report (CAS 0 -> 1).
	doneSent int32

	// abortCh broadcasts the first failure to all worker goroutines.
	abortOnce sync.Once
	abortCh   chan struct{}
	errMu     sync.Mutex
	firstErr  error

	// edges is the rank's output (reconstructed from f after the
	// protocol ends when no sink streams them).
	edges     []graph.Edge
	bootEdges int64 // edges emitted by bootstrap (sink mode accounting)
	stats     RankStats
	blocked   time.Duration

	// coordinator state (dispatcher or single-worker loop).
	doneFlag  bool
	doneRanks int
	stopped   bool

	// Checkpoint/restart state (nil ck disables the whole machinery).
	ck  *ckptRun
	seq *coll.Seq // mid-run collectives (checkpoint commit votes)
	// ckTrig gates the per-node initiated counter: set only on rank 0
	// with a trigger interval, so other ranks pay nothing in the loop.
	ckTrig bool
	// restored marks a resumed run: the generation pass skips nodes the
	// snapshot already initiated.
	restored   bool
	resumeSnap *ckpt.Snapshot
	// pump and reqOut track the dispatcher's requestable receive: a
	// kick can interrupt the wait, leaving the pump request outstanding
	// for the next receive to consume.
	pump   *recvPump
	reqOut bool
	route  [][]msg.Message
}

// RunRank executes one rank of the parallel algorithm over the given
// transport endpoint. All ranks of the mesh must run concurrently. It is
// the building block Run composes for in-process execution and cmd/pa-tcp
// uses for genuine multi-process runs.
func RunRank(tr transport.Transport, opts Options) (*RankResult, error) {
	e, err := newEngine(tr, opts)
	if err != nil {
		return nil, err
	}
	// On any failure past this point the shard file keeps its durable
	// prefix (no end-of-stream record) for a later Recover. The snapshot
	// writer drains first — it may still hold the stream for a shard
	// fsync.
	fail := func(err error) (*RankResult, error) {
		if e.ck != nil {
			e.ck.writer.shutdown()
		}
		if e.stream != nil {
			e.stream.Abort()
		}
		return nil, err
	}
	if opts.Checkpoint != nil && opts.Checkpoint.Resume {
		if err := e.negotiateResume(); err != nil {
			return fail(err)
		}
	}
	if e.stream != nil {
		// The resume negotiation decides the shard's fate: a resumed run
		// truncates it back to the snapshot's durable mark, a fresh run
		// (negotiated or not) discards whatever an earlier attempt left.
		if snap := e.resumeSnap; snap != nil {
			if err := e.stream.Recover(esink.Mark{
				Offset: snap.Sink.Offset, Blocks: snap.Sink.Blocks, Edges: snap.Sink.Edges,
			}); err != nil {
				return fail(err)
			}
		} else if err := e.stream.Reset(); err != nil {
			return fail(err)
		}
	}
	if err := e.run(); err != nil {
		return fail(err)
	}
	if e.ck != nil {
		// Drain the background writer before stats (and before the
		// stream closes — the writer may fsync it). An error surfacing
		// only now means the newest voted epoch's file never became
		// durable: uncount it. Resume negotiation would skip it anyway;
		// this keeps the reported counts honest.
		e.ck.writer.shutdown()
		if werr := e.ck.writer.takeErr(); werr != nil {
			e.ck.epochs--
			e.ck.failed++
		}
	}
	if e.sink == nil && e.stream == nil {
		e.collectEdges()
	}
	if e.stream != nil {
		if err := e.stream.Close(); err != nil {
			return nil, err
		}
	}
	e.finishStats()
	return &RankResult{Stats: e.stats, Edges: e.edges}, nil
}

// newEngine validates opts and builds the per-rank state machine.
func newEngine(tr transport.Transport, opts Options) (*engine, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Part == nil {
		return nil, fmt.Errorf("core: nil partition scheme")
	}
	if opts.Part.N() != opts.Params.N {
		return nil, fmt.Errorf("core: partition over %d nodes but params have n = %d", opts.Part.N(), opts.Params.N)
	}
	if opts.Part.P() != tr.Size() {
		return nil, fmt.Errorf("core: partition has %d ranks but transport has %d", opts.Part.P(), tr.Size())
	}

	rank := tr.Rank()
	size := opts.Part.Size(rank)
	nw := opts.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if int64(nw) > size {
		nw = int(size)
	}
	if nw < 1 {
		nw = 1
	}
	blk := int64(1)
	if size > 0 {
		blk = (size + int64(nw) - 1) / int64(nw)
	}

	e := &engine{
		opts:       opts,
		rank:       rank,
		p:          tr.Size(),
		x:          opts.Params.X,
		x64:        int64(opts.Params.X),
		seed:       opts.Seed,
		prob:       opts.Params.P,
		sink:       opts.Sink,
		part:       opts.Part,
		tr:         tr,
		cm:         comm.New(tr, comm.Config{BufferCap: opts.BufferCap}),
		trace:      opts.Trace,
		size:       size,
		nw:         nw,
		blk:        blk,
		concurrent: nw > 1,
		abortCh:    make(chan struct{}),
	}
	switch opts.Resolve {
	case ResolveWire:
	case ResolveRecompute:
		if opts.RecomputeDepth < 0 {
			return nil, fmt.Errorf("core: negative recompute depth %d", opts.RecomputeDepth)
		}
		e.recompute = true
		e.depthCap = opts.RecomputeDepth
		if e.depthCap == 0 {
			e.depthCap = DefaultRecomputeDepth(opts.Params.N)
		}
		e.memo.m = make(map[int64]*replayEntry)
	default:
		return nil, fmt.Errorf("core: unknown resolve mode %d", int(opts.Resolve))
	}
	// Hub-prefix replica: pointless on one rank (no wire requests) and
	// at p = 1 (no copy branch, so no requests at all). Set up before
	// the workers so they can size their coalescing tables.
	if hp := opts.HubPrefix; hp >= 0 && e.p > 1 && e.prob < 1 {
		h := hp
		if h == 0 {
			h = partition.HubPrefixAutoSize(opts.Params.N, opts.Params.X, e.p)
		}
		if h > opts.Params.N {
			h = opts.Params.N
		}
		// A prefix inside the clique would never be consulted (copy
		// sources are drawn from [x, t)).
		if h > e.x64 {
			e.hub = newHubCache(h, e.x64, e.concurrent)
			e.hubPeers = hubPeerRanks(opts.Part, rank, e.p)
		}
	}
	// Steal spans: cap a block at 64 spans so a thief's victim scan is
	// O(64) per sibling, with a 64-node floor so a span amortises its
	// claim CAS. Fixed before the workers are built (they size their
	// claim arrays from it).
	e.spanSize = 64
	if s := (blk + 63) / 64; s > e.spanSize {
		e.spanSize = s
	}
	e.workers = make([]*worker, nw)
	for i := 0; i < nw; i++ {
		lo := int64(i) * blk
		hi := lo + blk
		if hi > size {
			hi = size
		}
		e.workers[i] = newWorker(e, i, lo, hi)
	}
	if c := opts.Checkpoint; c != nil {
		switch {
		case c.Dir == "":
			return nil, fmt.Errorf("core: checkpointing requires a directory")
		case c.Every < 0:
			return nil, fmt.Errorf("core: negative checkpoint interval %d", c.Every)
		case c.FullEvery < 0:
			return nil, fmt.Errorf("core: negative checkpoint full-epoch cadence %d", c.FullEvery)
		case opts.Sink != nil:
			return nil, fmt.Errorf("core: checkpointing is incompatible with a streaming sink (already-streamed edges cannot be unsent on restart)")
		case opts.Trace != nil:
			return nil, fmt.Errorf("core: checkpointing is incompatible with tracing")
		case opts.CollectNodeLoad:
			return nil, fmt.Errorf("core: checkpointing is incompatible with node-load collection")
		}
		keep := c.Keep
		if keep == 0 {
			keep = DefaultCheckpointKeep
		}
		if keep < 2 {
			keep = 2
		}
		e.ck = &ckptRun{
			dir:       c.Dir,
			every:     c.Every,
			keep:      keep,
			fullEvery: c.FullEvery,
			kick:      make(chan struct{}, 1),
			epochNext: 1,
			voted0:    make(map[int64]bool),
		}
		e.seq = coll.New(e.cm)
		e.ckTrig = rank == 0 && c.Every > 0
		atomic.StoreInt64(&e.ck.nextTrigger, c.Every)
		if e.concurrent {
			ck := e.ck
			for _, w := range e.workers {
				w.inbox.onIdle = func() {
					if atomic.LoadInt32(&ck.phase) == ckPaused {
						ck.kickNow()
					}
				}
			}
		}
	}
	// The stream writer opens last so earlier validation failures never
	// leave a file handle behind. The file's existing contents survive
	// until RunRank's Reset/Recover decision.
	if opts.StreamDir != "" {
		if opts.Sink != nil {
			return nil, fmt.Errorf("core: StreamDir and Sink are mutually exclusive")
		}
		w, err := esink.Open(opts.StreamDir, esink.Meta{
			N:      opts.Params.N,
			X:      opts.Params.X,
			P:      opts.Params.P,
			Seed:   opts.Seed,
			Rank:   rank,
			Ranks:  e.p,
			Scheme: opts.Part.Name(),
		}, opts.StreamBlockEdges)
		if err != nil {
			return nil, err
		}
		e.stream = w
	}
	// The background snapshot writer starts last: it holds the stream
	// handle (shard fsync before snapshot rename) and nothing can fail
	// past this point, so the goroutine never leaks on a construction
	// error.
	if e.ck != nil {
		e.ck.writer = newCkptWriter(e.ck.dir, rank, e.ck.keep, e.stream)
	}
	return e, nil
}

func (e *engine) slot(t int64, edge int) int64 {
	return e.part.Index(e.rank, t)*e.x64 + int64(edge)
}

func (e *engine) localIdx(t int64) int64 { return e.part.Index(e.rank, t) }

// workerOf returns the worker statically owning local node index idx —
// the keeper of its slots' waiter queues and its shard's unresolved
// count, whatever the steal schedule.
func (e *engine) workerOf(idx int64) int { return int(idx / e.blk) }

// generatorOf returns the worker generating local node index idx: the
// claimant of idx's steal span when one is recorded, the static owner
// otherwise. Resolutions must reach the generator (it holds the node's
// suspension record); requests still go to the static owner. The answer
// is stable for any node with traffic in flight: a span's claim is
// CASed exactly once, before any node in it is initiated — so before
// any request (whose response this routes) can exist.
func (e *engine) generatorOf(idx int64) int {
	ow := int(idx / e.blk)
	w := e.workers[ow]
	if w.claims == nil {
		return ow
	}
	if c := atomic.LoadInt32(&w.claims[(idx-w.lo)/e.spanSize]); c >= 0 {
		return int(c)
	}
	return ow
}

// setSlot publishes F value v for flat slot s. Slots are write-once
// (-1 -> v); under concurrency the store is atomic so sibling workers'
// optimistic reads see either NILL or the final value.
func (e *engine) setSlot(s, v int64) {
	if e.ckDirty != nil {
		e.ckptMarkDirty(s)
	}
	if e.concurrent {
		atomic.StoreInt64(&e.f[s], v)
		return
	}
	e.f[s] = v
}

// getSlot reads flat slot s. Atomic under concurrency: with stealing
// any slot's writer may be a thief, so not even a worker's static block
// is privately readable (only a node's own generator may read its slots
// plainly, via isDup).
func (e *engine) getSlot(s int64) int64 {
	if e.concurrent {
		return atomic.LoadInt64(&e.f[s])
	}
	return e.f[s]
}

// noteLoad counts one copy query received by local node index kidx.
func (e *engine) noteLoad(kidx int64) {
	if e.nodeLoad == nil {
		return
	}
	if e.concurrent {
		atomic.AddInt64(&e.nodeLoad[kidx], 1)
		return
	}
	e.nodeLoad[kidx]++
}

// trackPending adjusts the queued-waiter gauge and its high-water mark.
func (e *engine) trackPending(delta int64) {
	if !e.concurrent {
		e.pendingWaiters += delta
		if e.pendingWaiters > e.maxPendingWaiters {
			e.maxPendingWaiters = e.pendingWaiters
		}
		return
	}
	v := atomic.AddInt64(&e.pendingWaiters, delta)
	if delta > 0 {
		for {
			m := atomic.LoadInt64(&e.maxPendingWaiters)
			if v <= m || atomic.CompareAndSwapInt64(&e.maxPendingWaiters, m, v) {
				break
			}
		}
	}
}

// pendingDepth reads the queued-waiter gauge (adaptive-poll input).
func (e *engine) pendingDepth() int64 {
	if e.concurrent {
		return atomic.LoadInt64(&e.pendingWaiters)
	}
	return e.pendingWaiters
}

// fail latches the first error and aborts every worker goroutine:
// closing abortCh wakes the dispatcher, closing the inboxes wakes
// blocked workers.
func (e *engine) fail(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	e.abortOnce.Do(func() {
		close(e.abortCh)
		for _, w := range e.workers {
			if w.inbox != nil {
				w.inbox.close()
			}
		}
	})
}

func (e *engine) aborted() bool {
	select {
	case <-e.abortCh:
		return true
	default:
		return false
	}
}

func (e *engine) takeErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

func (e *engine) run() error {
	start := time.Now()
	defer func() {
		e.stats.WallTime = time.Since(start)
		e.stats.BusyTime = e.stats.WallTime - e.blocked
		if e.stats.BusyTime < 0 {
			e.stats.BusyTime = 0
		}
	}()

	e.bootstrap()
	if e.stream != nil {
		if err := e.stream.Err(); err != nil {
			return err
		}
	}
	if e.resumeSnap != nil {
		if err := e.restore(); err != nil {
			return err
		}
	}
	if err := e.publishResolvedPrefix(); err != nil {
		return err
	}
	// Data messages a faster peer generated while this rank was still
	// inside the resume-negotiation collectives were parked in ck.held;
	// deliver them now that the restored state they refer to exists.
	if e.ck != nil {
		if err := e.ckptFlushHeld(); err != nil {
			return err
		}
	}

	if !e.concurrent {
		return e.runSingle()
	}

	// A rank with no generating nodes (every local node is clique or
	// bootstrap) reports done straight away; its dispatcher still runs
	// the termination protocol.
	if atomic.LoadInt32(&e.activeWorkers) == 0 {
		e.reportDone()
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.runConcurrent()
		}(w)
	}
	e.dispatch()
	wg.Wait()
	return e.takeErr()
}

// bootstrap emits clique edges for locally-owned clique nodes, fixes
// node x's attachments if x is local, and splits the unresolved-slot
// budget across the workers. It runs on the rank goroutine before any
// worker starts, so plain writes to f are safe.
func (e *engine) bootstrap() {
	e.f = make([]int64, e.size*e.x64)
	for i := range e.f {
		e.f[i] = -1
	}
	if ck := e.ck; ck != nil && ck.fullEvery > 1 {
		e.ckDirty = make([]uint32, (e.size*e.x64+(1<<ckptDirtyShift)-1)>>ckptDirtyShift)
	}
	if e.opts.CollectNodeLoad {
		e.nodeLoad = make([]int64, e.size)
		if e.hub != nil {
			e.hubElided = make([]int64, e.hub.h)
		}
	}
	i := int64(0)
	e.part.ForEach(e.rank, func(t int64) {
		idx := i
		i++
		switch {
		case t < e.x64:
			// Clique node: emit its backward clique edges; it has no
			// attachment slots (mark them resolved so they never count).
			base := idx * e.x64
			for j := int64(0); j < t; j++ {
				e.bootEmit(base+j, graph.Edge{U: t, V: j})
			}
			for edge := 0; edge < e.x; edge++ {
				e.f[base+int64(edge)] = t // self-marker; never queried
			}
		case t == e.x64:
			base := idx * e.x64
			for edge := 0; edge < e.x; edge++ {
				v, _ := e.opts.Params.BootstrapF(t, edge)
				e.f[base+int64(edge)] = v
				e.bootEmit(base+int64(edge), graph.Edge{U: t, V: v})
				if e.trace != nil {
					e.trace.RecordBootstrap(t, edge)
				}
			}
		default:
			e.workers[e.workerOf(idx)].unresolved += e.x64
		}
	})
	active := int32(0)
	for _, w := range e.workers {
		if w.unresolved > 0 {
			active++
		} else {
			w.doneNoted = true
		}
	}
	atomic.StoreInt32(&e.activeWorkers, active)
}

// bootEmit streams one bootstrap-time edge (slot key, edge) to the
// sink. Without a sink the edge is not stored: collectEdges
// reconstructs the full edge list from f when the run ends. On a
// resumed streamed run the bootstrap edges are already in the shard's
// durable prefix (every snapshot postdates bootstrap), so the stream
// write is suppressed; a write error latches in the writer and run()
// surfaces it right after bootstrap.
func (e *engine) bootEmit(key int64, ed graph.Edge) {
	e.bootEdges++
	if e.stream != nil && e.resumeSnap == nil {
		e.stream.Emit(uint64(key), ed.V)
	}
	if e.sink != nil {
		e.sink(e.rank, ed)
	}
}

// collectEdges rebuilds the rank's edge list from the resolved F table in
// increasing node order — exactly the order the pre-worker engine emitted
// single-rank edges in, which keeps the order-sensitive single-rank
// fingerprints byte-identical for every worker count.
func (e *engine) collectEdges() {
	e.edges = make([]graph.Edge, 0, e.size*e.x64)
	e.part.ForEach(e.rank, func(t int64) {
		if t < e.x64 {
			for j := int64(0); j < t; j++ {
				e.edges = append(e.edges, graph.Edge{U: t, V: j})
			}
			return
		}
		base := e.slot(t, 0)
		for j := int64(0); j < e.x64; j++ {
			e.edges = append(e.edges, graph.Edge{U: t, V: e.f[base+j]})
		}
	})
}

// finishStats assembles the rank's statistics from the engine, the
// communicator and the per-worker counters.
func (e *engine) finishStats() {
	e.stats.Rank = e.rank
	e.stats.Nodes = e.size
	switch {
	case e.stream != nil:
		// The shard file is the ground truth: across a resume its
		// durable prefix already holds edges this process never emitted.
		st := e.stream.Stats()
		e.stats.Edges = st.Edges
		e.stats.SinkBlocks = st.BlocksFlushed
		e.stats.SinkBytes = st.BytesWritten
		e.stats.SinkFsyncs = st.Fsyncs
		e.stats.SinkFsyncTime = time.Duration(st.FsyncNanos)
	case e.sink != nil:
		e.stats.Edges = e.bootEdges
		for _, w := range e.workers {
			e.stats.Edges += w.edgeCount
		}
	default:
		e.stats.Edges = int64(len(e.edges))
	}
	for _, w := range e.workers {
		e.stats.Retries += w.retries
		e.stats.Steals += w.steals
		e.stats.StolenNodes += w.stolenNodes
		e.stats.QueuedWaits += w.queuedWaits
		e.stats.LocalWaits += w.localWaits
		e.stats.HubCacheHits += w.hubHits
		e.stats.HubCacheMisses += w.hubMisses
		e.stats.ReqCoalesced += w.coalesced
		e.stats.RecomputeResolved += w.recomputeHits
		e.stats.RecomputeFallback += w.recomputeFallbacks
		e.stats.ReplayedEdges += w.replayedEdges
		e.stats.WaitChain.Merge(w.waitChain)
		e.stats.ReplayDepth.Merge(w.replayDepth)
	}
	e.stats.Comm = e.cm.Counters()
	// The engine owns its Comm and never sends again, so take the live
	// counts instead of copying them.
	e.stats.RequestsTo = e.cm.RequestsToView()
	e.stats.MaxPendingSlots = atomic.LoadInt64(&e.maxPendingWaiters)
	e.stats.NodeLoad = e.nodeLoad
	e.stats.HubElided = e.hubElided
	if ck := e.ck; ck != nil {
		e.stats.CkptEpochs = ck.epochs
		e.stats.CkptFailed = ck.failed
		e.stats.CkptPauseTime = time.Duration(ck.pauseNanos)
		e.stats.CkptPauseHist = ck.pauseHist
		// The writer is drained (RunRank shuts it down before stats), so
		// these are final; the lock is just the memory fence.
		ck.writer.mu.Lock()
		e.stats.CkptBytes = ck.writer.bytes
		e.stats.CkptWriteTime = time.Duration(ck.writer.writeNanos)
		e.stats.CkptWriteHist = ck.writer.writeHist
		ck.writer.mu.Unlock()
	}
}

// reportDone sends the rank's done report exactly once. With workers the
// report goes through the transport even on rank 0 (a self-send) so the
// dispatcher — the only goroutine allowed to touch coordinator state —
// counts it like any other rank's.
func (e *engine) reportDone() {
	if !atomic.CompareAndSwapInt32(&e.doneSent, 0, 1) {
		return
	}
	// Fences first: each worker flushed its scratch when its own shard
	// completed (noteShardDone), with the activeWorkers decrement
	// ordering those flushes before this point, so every publish this
	// rank will ever send is already in the stripes or on the wire —
	// the fences trail them all on each pairwise channel.
	if err := e.sendFences(); err != nil {
		e.fail(err)
		return
	}
	if err := e.cm.SendNow(0, msg.Done(e.rank)); err != nil {
		e.fail(err)
	}
}

// ---------------------------------------------------------------------
// Single-worker path: the original inline loop. Generation, message
// processing and coordination all run on the rank goroutine; no inboxes,
// no atomics, and — on a single rank — no control traffic at all.
// ---------------------------------------------------------------------

func (e *engine) runSingle() error {
	w := e.workers[0]
	for {
		done := e.genSingle()
		if w.err != nil {
			return w.err
		}
		if done {
			break
		}
		if err := e.ckptServe(); err != nil {
			return err
		}
	}

	// All local slots initiated. From here unresolved is monotone.
	if err := e.maybeReportDone(); err != nil {
		return err
	}
	for !e.finished() {
		if err := e.drainSingle(true); err != nil {
			return err
		}
		if err := e.ckptStep(); err != nil {
			return err
		}
		if err := e.maybeReportDone(); err != nil {
			return err
		}
	}
	return nil
}

// genSingle advances the single worker's generation cursor until the
// block is exhausted (returns true) or a checkpoint epoch pauses the
// run (returns false; ckptServe drives the epoch, then the cursor
// resumes exactly where it stopped).
func (e *engine) genSingle() bool {
	w := e.workers[0]
	sincePoll := 0
	for w.cursor < w.hi {
		if w.err != nil {
			return true
		}
		idx := w.cursor
		w.cursor++
		if t := e.part.NodeAt(e.rank, idx); t > e.x64 && !(e.restored && e.nodeInitiated(idx)) {
			w.genNode(t)
			if e.ckTrig {
				e.ckptNoteInit()
			}
		}
		sincePoll++
		if sincePoll >= w.poll {
			sincePoll = 0
			if err := e.drainSingle(false); err != nil && w.err == nil {
				w.err = err
			}
			w.adaptPoll()
			if e.ck != nil {
				if err := e.ckptStep(); err != nil && w.err == nil {
					w.err = err
				}
				if atomic.LoadInt32(&e.ck.phase) == ckPaused {
					return false
				}
				// Yield at the poll point: with more ranks than cores a
				// compute-bound rank is otherwise preempted only on the
				// runtime's ~10ms tick, and every epoch's pause lasts
				// until the slowest rank notices the begin — the yield
				// turns that staggered pickup into a round-robin of poll
				// intervals. Free when nothing else is runnable.
				runtime.Gosched()
			}
		}
	}
	return true
}

// drainSingle processes incoming messages: all immediately available
// ones, or — when block is set — at least one batch. Before blocking it
// flushes all send buffers (the Section 3.5.2 rule generalised: nothing
// may linger while we sleep).
func (e *engine) drainSingle(block bool) error {
	w := e.workers[0]
	var ms []msg.Message
	var err error
	if block {
		if err = e.cm.FlushAll(); err != nil {
			return err
		}
		t0 := time.Now()
		ms, err = e.cm.Wait()
		e.blocked += time.Since(t0)
	} else {
		ms, err = e.cm.Poll()
	}
	if err != nil {
		return err
	}
	for _, m := range ms {
		if err := e.handleSingle(m); err != nil {
			return err
		}
	}
	if w.err != nil {
		return w.err
	}
	// Answers generated while processing this batch must not wait for
	// the next blocking point (paper rule: resolved messages are sent
	// out after processing every group).
	return e.cm.FlushAll()
}

// handleSingle routes one received message on the single-worker path.
func (e *engine) handleSingle(m msg.Message) error {
	w := e.workers[0]
	switch m.Kind {
	case msg.KindRequest:
		w.onRequest(m, true)
	case msg.KindResolved:
		w.resumeWire(m.T, int(m.E), m.V)
	case msg.KindPublish:
		return e.applyPublish(m)
	case msg.KindFence:
		return e.onFence()
	case msg.KindDone:
		if e.rank != 0 {
			return fmt.Errorf("core: rank %d received done message", e.rank)
		}
		e.doneRanks++
		if e.ck != nil {
			e.ck.doneRecv++
		}
		return e.maybeBroadcastStop()
	case msg.KindStop:
		e.stopped = true
	case msg.KindCkpt:
		return e.ckptOnMsg(m)
	case msg.KindColl:
		// A commit-vote contribution that raced ahead of this rank
		// entering the cut's collectives; buffer it for them.
		if e.ck == nil {
			return fmt.Errorf("core: unexpected message kind %v", m.Kind)
		}
		e.seq.Stash(int(m.T), m.K, m.V)
	default:
		return fmt.Errorf("core: unexpected message kind %v", m.Kind)
	}
	return nil
}

// maybeReportDone sends the rank's done report once all local slots are
// resolved. Safe to call repeatedly; reports once. Single-worker only:
// rank 0 short-circuits the self-send.
func (e *engine) maybeReportDone() error {
	if e.workers[0].unresolved != 0 || e.doneFlag {
		return nil
	}
	e.doneFlag = true
	// Fences travel for every rank (rank 0 included — only the done
	// report below is short-circuited), trailing this rank's buffered
	// publishes on each channel.
	if err := e.sendFences(); err != nil {
		return err
	}
	if e.rank == 0 {
		e.doneRanks++
		return e.maybeBroadcastStop()
	}
	return e.cm.SendNow(0, msg.Done(e.rank))
}

// maybeBroadcastStop (rank 0) broadcasts stop once every rank reported.
// While a checkpoint epoch is active the broadcast is deferred — ranks
// mid-epoch must finish the cut — and ckptCut retries it after resuming.
// It is also deferred while any epoch's commit-vote tally is open: a
// completed tally may broadcast an abandon, which must precede stop on
// every channel (per-destination FIFO) so no rank sees checkpoint
// traffic after it stops; ckptRecordVote retries after each tally.
func (e *engine) maybeBroadcastStop() error {
	if e.doneRanks < e.p || e.stopped {
		return nil
	}
	if e.ck != nil && (atomic.LoadInt32(&e.ck.phase) != ckIdle || len(e.ck.votes) > 0) {
		return nil
	}
	for r := 1; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Stop()); err != nil {
			return err
		}
	}
	e.stopped = true
	return nil
}

// ---------------------------------------------------------------------
// Multi-worker path: the rank goroutine becomes the dispatcher. It is
// the transport's single consumer, routing each incoming message to the
// worker owning the addressed node, and it runs the coordinator logic.
// ---------------------------------------------------------------------

// recvPump turns the blocking transport Recv into a requestable event so
// the dispatcher can block on either a frame or an abort. The pump only
// calls Recv when asked (ping-pong), so after a normal stop there is no
// outstanding Recv to swallow frames a caller (e.g. cmd/pa-tcp's
// post-run collectives) expects to read from the same transport.
type recvPump struct {
	req chan struct{}
	res chan pumpResult
}

type pumpResult struct {
	frame transport.Frame
	err   error
}

func startPump(tr transport.Transport) *recvPump {
	p := &recvPump{req: make(chan struct{}), res: make(chan pumpResult, 1)}
	go func() {
		for range p.req {
			f, err := tr.Recv()
			p.res <- pumpResult{frame: f, err: err}
			if err != nil {
				return
			}
		}
	}()
	return p
}

// shutdown ends the pump. If a request is outstanding (abort), the
// buffered result channel lets the pump finish its Recv and exit without
// anyone reading the result.
func (p *recvPump) shutdown() { close(p.req) }

// pumpRecv blocks for one transport frame via the pump and returns the
// decoded batch. A pump request left outstanding by an interrupted wait
// (kick) is consumed by the next call instead of issuing another. When
// kickable, a checkpoint kick interrupts the wait with (nil, true, nil)
// so the dispatcher can run the epoch protocol; the commit collectives'
// receive path is not kickable.
func (e *engine) pumpRecv(kickable bool) (ms []msg.Message, kicked bool, err error) {
	if !e.reqOut {
		e.pump.req <- struct{}{}
		e.reqOut = true
	}
	var kickCh chan struct{}
	if kickable && e.ck != nil {
		kickCh = e.ck.kick
	}
	t0 := time.Now()
	select {
	case r := <-e.pump.res:
		e.blocked += time.Since(t0)
		e.reqOut = false
		if r.err != nil {
			return nil, false, r.err
		}
		ms, err = e.cm.DecodeFrame(r.frame)
		return ms, false, err
	case <-kickCh:
		e.blocked += time.Since(t0)
		return nil, true, nil
	case <-e.abortCh:
		e.blocked += time.Since(t0)
		return nil, false, errAborted
	}
}

// pumpDrain consumes a pump result left behind by a kick-interrupted
// pumpRecv, if one is ready, and returns its decoded batch (nil when
// there is nothing parked). Without this, a frame the pump captured just
// before a kick could starve: during a checkpoint epoch the protocol's
// self-sent probes and reports keep Poll returning fresh frames every
// iteration, so the dispatcher would never block on pumpRecv again — and
// the parked frame (say, a Done report the quiescence balance is waiting
// for) would never be delivered.
func (e *engine) pumpDrain() ([]msg.Message, error) {
	if !e.reqOut {
		return nil, nil
	}
	select {
	case r := <-e.pump.res:
		e.reqOut = false
		if r.err != nil {
			return nil, r.err
		}
		return e.cm.DecodeFrame(r.frame)
	default:
		return nil, nil
	}
}

// deliver routes one received batch: protocol traffic to the owning
// workers' inboxes, coordination messages to the coordinator state.
// Shared by the dispatcher's main loop and the post-cut release of held
// messages.
func (e *engine) deliver(ms []msg.Message) error {
	if e.route == nil {
		// First delivery can precede dispatch when the startup flush
		// releases messages held during resume negotiation.
		e.route = make([][]msg.Message, e.nw)
	}
	route := e.route
	for i := range route {
		route[i] = route[i][:0]
	}
	for _, m := range ms {
		switch m.Kind {
		case msg.KindRequest:
			wid := e.workerOf(e.localIdx(m.K))
			route[wid] = append(route[wid], m)
		case msg.KindResolved:
			// To the generator, not the static owner: the suspension
			// record this answers lives with whoever claimed the node's
			// steal span.
			wid := e.generatorOf(e.localIdx(m.T))
			route[wid] = append(route[wid], m)
		case msg.KindPublish:
			if err := e.applyPublish(m); err != nil {
				return err
			}
		case msg.KindFence:
			if err := e.onFence(); err != nil {
				return err
			}
		case msg.KindDone:
			if e.rank != 0 {
				return fmt.Errorf("core: rank %d received done message", e.rank)
			}
			e.doneRanks++
			if e.ck != nil {
				e.ck.doneRecv++
			}
			if err := e.maybeBroadcastStop(); err != nil {
				return err
			}
		case msg.KindStop:
			e.stopped = true
		case msg.KindCkpt:
			if err := e.ckptOnMsg(m); err != nil {
				return err
			}
		case msg.KindColl:
			// A commit-vote contribution that raced ahead of this rank
			// entering the cut's collectives; buffer it for them.
			if e.ck == nil {
				return fmt.Errorf("core: unexpected message kind %v", m.Kind)
			}
			e.seq.Stash(int(m.T), m.K, m.V)
		default:
			return fmt.Errorf("core: unexpected message kind %v", m.Kind)
		}
	}
	for i, b := range route {
		if len(b) == 0 {
			continue
		}
		if !e.workers[i].inbox.pushBatch(b) {
			// Inbox closed: abort already under way.
			return e.takeErr()
		}
	}
	return nil
}

// dispatch runs the rank's receive loop until stop or abort: decode,
// route to owning workers, count done reports (rank 0), broadcast stop,
// and drive the checkpoint protocol. On return (normal stop) it closes
// every inbox, which is the workers' stop signal.
func (e *engine) dispatch() {
	e.pump = startPump(e.tr)
	defer e.pump.shutdown()
	if e.route == nil {
		// Normally built here, but the startup held-flush (resume
		// negotiation traffic) may have routed batches already.
		e.route = make([][]msg.Message, e.nw)
	}
	for !e.finished() {
		if err := e.ckptStep(); err != nil {
			e.fail(err)
			return
		}
		if e.finished() {
			break
		}
		ms, err := e.pumpDrain()
		if err != nil {
			e.fail(err)
			return
		}
		if len(ms) == 0 {
			ms, err = e.cm.Poll()
			if err != nil {
				e.fail(err)
				return
			}
		}
		if len(ms) == 0 {
			var kicked bool
			ms, kicked, err = e.pumpRecv(true)
			if err != nil {
				if err != errAborted {
					e.fail(err)
				}
				return
			}
			if kicked {
				continue
			}
		}
		if err := e.deliver(ms); err != nil {
			e.fail(err)
			return
		}
	}
	for _, w := range e.workers {
		w.inbox.close()
	}
}
