// Package core implements the paper's contribution: the distributed-memory
// parallel preferential-attachment generator (Algorithms 3.1 and 3.2).
//
// Each processor rank owns a partition of the node set and computes the
// attachments F_t(e) for its nodes with the copy model. Direct
// attachments resolve immediately; copy attachments whose source node
// lives on another rank travel as <request, t, e, k, l> messages and come
// back as <resolved, t, e, v>. Requests for still-unknown attachments
// wait in per-slot queues (the paper's Q_{k,l}) and are answered the
// moment the slot resolves. Duplicate edges are rejected at both decision
// points the paper identifies (Algorithm 3.2 lines 7 and 22) by
// re-running the attachment step.
//
// Termination uses the monotonicity of the unresolved-slot count: a
// rank's count never increases once its generation loop has initiated
// every local slot, so when it hits zero the rank reports done to rank 0,
// and rank 0 broadcasts stop once every rank (itself included) has
// reported. At that instant no request or resolved message can be in
// flight (see the package tests for the argument exercised empirically).
package core

import (
	"fmt"
	"time"

	"pagen/internal/comm"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/msg"
	"pagen/internal/obs"
	"pagen/internal/partition"
	"pagen/internal/transport"
	"pagen/internal/xrand"
)

// Options configures a parallel generation run.
type Options struct {
	// Params are the copy-model parameters.
	Params model.Params
	// Part assigns nodes to ranks. Its P() fixes the number of ranks.
	Part partition.Scheme
	// Seed seeds the per-rank independent random streams.
	Seed uint64
	// BufferCap is the per-destination message-buffer capacity
	// (comm.DefaultBufferCap if zero; 1 disables buffering).
	BufferCap int
	// PollEvery is the number of local nodes processed between inbox
	// polls during the generation loop (DefaultPollEvery if zero).
	// Polling too rarely lets request queues grow; the ablation
	// benchmark sweeps this.
	PollEvery int
	// Trace, when non-nil, receives the per-slot attachment decisions.
	// Slot ranges written by different ranks are disjoint, so a single
	// shared trace is written without locking.
	Trace *model.Trace
	// Sink, when non-nil, receives every edge as it is finalised
	// instead of the engine accumulating edges in memory — the paper's
	// Section 3.5 "generate networks on the fly and analyze without
	// performing disk I/O" mode. It is called concurrently from rank
	// goroutines (the rank argument identifies the caller), so it must
	// be safe for concurrent use or dispatch on rank.
	Sink func(rank int, e graph.Edge)
	// CollectNodeLoad enables per-node received-message-load counting
	// (the empirical M_k of Lemma 3.4) in RankStats.NodeLoad. It costs
	// one slice increment per copy query plus 8 bytes per local node,
	// so it is opt-in.
	CollectNodeLoad bool
}

// DefaultPollEvery is the default generation-loop polling interval.
const DefaultPollEvery = 64

// RankStats are one rank's load and traffic statistics — the measurements
// behind Figures 5-7.
type RankStats struct {
	Rank  int
	Nodes int64
	Edges int64
	// Comm is the traffic snapshot (logical messages and frames).
	Comm comm.Counters
	// Retries counts duplicate-edge retries (both decision points).
	Retries int64
	// QueuedWaits counts requests that arrived before their slot
	// resolved and had to wait in a Q_{k,l} queue.
	QueuedWaits int64
	// LocalWaits counts copy attachments whose source was local but
	// unresolved (same-rank dependency-chain waits).
	LocalWaits int64
	// RequestsTo is the per-destination request count — this rank's row
	// of the request-traffic matrix (strictly lower-triangular under
	// consecutive partitioning, Section 4.6.2).
	RequestsTo []int64
	// MaxPendingSlots is the largest number of local slots that were
	// simultaneously waiting on resolutions — the empirical counterpart
	// of the Section 3.4 claim that waiting never idles a processor.
	MaxPendingSlots int64
	// WaitChain is the histogram of Q_{k,l} waiter-queue lengths
	// observed as each local slot resolved (0 = nobody was waiting).
	// Theorem 3.3's O(log n) dependency-chain bound keeps it shallow.
	WaitChain obs.Histogram
	// NodeLoad is the per-local-node received-message load — the
	// empirical M_k of Lemma 3.4, indexed by the partition's local node
	// index. Nil unless Options.CollectNodeLoad was set.
	NodeLoad []int64
	// BusyTime is wall time minus time spent blocked in Wait.
	BusyTime time.Duration
	// WallTime is the rank's total engine time.
	WallTime time.Duration
}

// Metrics converts the rank's statistics into the exported obs form.
func (s RankStats) Metrics() obs.RankMetrics {
	return obs.RankMetrics{
		Rank:            s.Rank,
		Nodes:           s.Nodes,
		Edges:           s.Edges,
		RequestsSent:    s.Comm.RequestsSent,
		RequestsRecv:    s.Comm.RequestsRecv,
		ResolvedSent:    s.Comm.ResolvedSent,
		ResolvedRecv:    s.Comm.ResolvedRecv,
		ControlSent:     s.Comm.ControlSent,
		ControlRecv:     s.Comm.ControlRecv,
		FramesSent:      s.Comm.FramesSent,
		FramesRecv:      s.Comm.FramesRecv,
		BytesSent:       s.Comm.BytesSent,
		BytesRecv:       s.Comm.BytesRecv,
		Retries:         s.Retries,
		QueuedWaits:     s.QueuedWaits,
		LocalWaits:      s.LocalWaits,
		MaxPendingSlots: s.MaxPendingSlots,
		TotalLoad:       s.TotalLoad(),
		WallNanos:       s.WallTime.Nanoseconds(),
		BusyNanos:       s.BusyTime.Nanoseconds(),
		WaitChain:       s.WaitChain,
	}
}

// NodeLoadSamples expands a rank's local NodeLoad counters into global
// (node id, load) samples using the partition that ran the rank.
// Clique nodes (k < x, never queried) are included with their zero
// loads so the samples cover the rank's whole node set.
func NodeLoadSamples(part partition.Scheme, rank int, load []int64) []obs.KLoad {
	if load == nil {
		return nil
	}
	out := make([]obs.KLoad, 0, len(load))
	i := 0
	part.ForEach(rank, func(u int64) {
		if i < len(load) {
			out = append(out, obs.KLoad{K: u, Load: load[i]})
		}
		i++
	})
	return out
}

// TotalLoad returns the paper's Section 4.6 load measure for the rank:
// nodes plus incoming plus outgoing data messages.
func (s RankStats) TotalLoad() int64 {
	return s.Nodes +
		s.Comm.RequestsSent + s.Comm.ResolvedSent +
		s.Comm.RequestsRecv + s.Comm.ResolvedRecv
}

// RankResult is one rank's output.
type RankResult struct {
	Stats RankStats
	// Edges are the edges whose lower... higher endpoint (the attaching
	// node) is owned by this rank; the union over ranks is the graph.
	Edges []graph.Edge
}

// engine is the per-rank state machine.
type engine struct {
	opts Options
	rank int
	p    int
	x    int
	x64  int64
	// seed, prob and sink are hoisted from opts so the generation loop
	// reads them without chasing the Options struct per node.
	seed uint64
	prob float64
	sink func(rank int, e graph.Edge)
	part partition.Scheme
	cm   *comm.Comm
	// retryRng drives the re-drawn steps of deferred duplicate retries
	// (Algorithm 3.2 lines 27-28). Generation-time draws use per-node
	// streams instead — see place — so that the output graph does not
	// depend on the partitioning for x = 1, and single-rank runs
	// reproduce the sequential copy model exactly.
	retryRng *xrand.Rand
	trace    *model.Trace

	// f holds F_t(e) at f[part.Index(rank,t)*x + e]; -1 = NILL.
	f []int64
	// nodeLoad counts copy queries received per local node (indexed
	// like f, but per node not per slot); nil unless CollectNodeLoad.
	nodeLoad []int64
	// waiters holds the per-slot resolution queues (Q_{k,l}) in a flat
	// open-addressed table over a pooled arena — no per-slot allocation.
	waiters waiterTable
	// pendingWaiters tracks the current and maximum number of queued
	// waiter entries across all local queues.
	pendingWaiters    int64
	maxPendingWaiters int64
	// unresolved counts local slots still NILL. Monotone non-increasing
	// after the generation loop has initiated every slot.
	unresolved int64

	edges     []graph.Edge
	edgeCount int64
	stats     RankStats
	blocked   time.Duration

	// doneFlag records that this rank already reported done.
	doneFlag bool
	// sendErr latches the first send failure from the resolution
	// cascade, whose call sites cannot return errors directly.
	sendErr error
	// coordinator state (rank 0 only)
	doneRanks int
	stopped   bool
}

// RunRank executes one rank of the parallel algorithm over the given
// transport endpoint. All ranks of the mesh must run concurrently. It is
// the building block Run composes for in-process execution and cmd/pa-tcp
// uses for genuine multi-process runs.
func RunRank(tr transport.Transport, opts Options) (*RankResult, error) {
	e, err := newEngine(tr, opts)
	if err != nil {
		return nil, err
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	e.stats.Rank = e.rank
	e.stats.Nodes = e.part.Size(e.rank)
	e.stats.Edges = e.edgeCount
	e.stats.Comm = e.cm.Counters()
	// The engine owns its Comm and never sends again, so take the live
	// counts instead of copying them.
	e.stats.RequestsTo = e.cm.RequestsToView()
	e.stats.MaxPendingSlots = e.maxPendingWaiters
	e.stats.NodeLoad = e.nodeLoad
	return &RankResult{Stats: e.stats, Edges: e.edges}, nil
}

// newEngine validates opts and builds the per-rank state machine.
func newEngine(tr transport.Transport, opts Options) (*engine, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Part == nil {
		return nil, fmt.Errorf("core: nil partition scheme")
	}
	if opts.Part.N() != opts.Params.N {
		return nil, fmt.Errorf("core: partition over %d nodes but params have n = %d", opts.Part.N(), opts.Params.N)
	}
	if opts.Part.P() != tr.Size() {
		return nil, fmt.Errorf("core: partition has %d ranks but transport has %d", opts.Part.P(), tr.Size())
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = DefaultPollEvery
	}

	e := &engine{
		opts: opts,
		rank: tr.Rank(),
		p:    tr.Size(),
		x:    opts.Params.X,
		x64:  int64(opts.Params.X),
		seed: opts.Seed,
		prob: opts.Params.P,
		sink: opts.Sink,
		part: opts.Part,
		cm:   comm.New(tr, comm.Config{BufferCap: opts.BufferCap}),
		// Stream ids >= n are reserved for rank-level streams; ids
		// < n are the per-node generation streams.
		retryRng: xrand.NewStream(opts.Seed, uint64(opts.Params.N)+uint64(tr.Rank())),
		trace:    opts.Trace,
	}
	e.waiters.init()
	return e, nil
}

// emit finalises one edge: streamed to the sink when configured,
// accumulated otherwise.
func (e *engine) emit(ed graph.Edge) {
	e.edgeCount++
	if e.sink != nil {
		e.sink(e.rank, ed)
		return
	}
	e.edges = append(e.edges, ed)
}

// trackPending adjusts the queued-waiter gauge and its high-water mark.
func (e *engine) trackPending(delta int64) {
	e.pendingWaiters += delta
	if e.pendingWaiters > e.maxPendingWaiters {
		e.maxPendingWaiters = e.pendingWaiters
	}
}

func (e *engine) slot(t int64, edge int) int64 {
	return e.part.Index(e.rank, t)*e.x64 + int64(edge)
}

func (e *engine) run() error {
	start := time.Now()
	defer func() {
		e.stats.WallTime = time.Since(start)
		e.stats.BusyTime = e.stats.WallTime - e.blocked
	}()

	e.bootstrap()

	// Generation loop: initiate every local slot, polling the inbox
	// periodically so queued requests from other ranks are answered
	// while we still generate (the MPI program's interleaving).
	sincePoll := 0
	var loopErr error
	var rng xrand.Rand // reused across nodes; re-seeded per node
	e.part.ForEach(e.rank, func(t int64) {
		if loopErr != nil || t <= e.x64 {
			return // clique and bootstrap nodes were handled above
		}
		rng.SeedStream(e.seed, uint64(t))
		for edge := 0; edge < e.x; edge++ {
			if err := e.place(t, edge, &rng); err != nil {
				loopErr = err
				return
			}
		}
		sincePoll++
		if sincePoll >= e.opts.PollEvery {
			sincePoll = 0
			if err := e.drain(false); err != nil {
				loopErr = err
			}
		}
	})
	if loopErr != nil {
		return loopErr
	}

	// All local slots initiated. From here unresolved is monotone.
	if err := e.maybeReportDone(); err != nil {
		return err
	}
	for !e.stopped {
		if err := e.drain(true); err != nil {
			return err
		}
		if err := e.maybeReportDone(); err != nil {
			return err
		}
	}
	return nil
}

// bootstrap emits clique edges for locally-owned clique nodes and fixes
// node x's attachments if x is local.
func (e *engine) bootstrap() {
	// Pre-size the F table.
	e.f = make([]int64, e.part.Size(e.rank)*e.x64)
	for i := range e.f {
		e.f[i] = -1
	}
	if e.opts.CollectNodeLoad {
		e.nodeLoad = make([]int64, e.part.Size(e.rank))
	}
	// Pre-size the edge store from the partition's expected per-rank
	// edge count: every local node emits x edges except clique nodes
	// (node t < x emits t), so size*x is a tight upper bound and the
	// append path never reallocates.
	if e.sink == nil {
		e.edges = make([]graph.Edge, 0, e.part.Size(e.rank)*e.x64)
	}
	e.part.ForEach(e.rank, func(t int64) {
		switch {
		case t < e.x64:
			// Clique node: emit its backward clique edges; it has no
			// attachment slots (mark them resolved so they never count).
			for j := int64(0); j < t; j++ {
				e.emit(graph.Edge{U: t, V: j})
			}
			base := e.slot(t, 0)
			for edge := 0; edge < e.x; edge++ {
				e.f[base+int64(edge)] = t // self-marker; never queried
			}
		case t == e.x64:
			for edge := 0; edge < e.x; edge++ {
				v, _ := e.opts.Params.BootstrapF(t, edge)
				e.f[e.slot(t, edge)] = v
				e.emit(graph.Edge{U: t, V: v})
				if e.trace != nil {
					e.trace.RecordBootstrap(t, edge)
				}
			}
		default:
			e.unresolved += e.x64
		}
	})
}

// isDup reports whether v already appears among t's attachments.
func (e *engine) isDup(t int64, v int64) bool {
	base := e.slot(t, 0)
	for i := 0; i < e.x; i++ {
		if e.f[base+int64(i)] == v {
			return true
		}
	}
	return false
}

// place runs one attachment step for local slot (t, edge): Algorithm 3.2
// lines 4-14. It either resolves the slot immediately (direct branch, or
// copy from an already-resolved source) or parks it (request message /
// local queue) to be finished by onResolved. rng is the node's own
// stream at generation time and the rank's retry stream for deferred
// duplicate retries.
func (e *engine) place(t int64, edge int, rng *xrand.Rand) error {
	lo, hi := e.opts.Params.KRange(t)
	span := uint64(hi - lo)
	for {
		k := lo + int64(rng.Uint64n(span))
		if rng.Float64() < e.prob {
			// Direct branch (lines 6-10).
			if e.isDup(t, k) {
				e.stats.Retries++
				continue
			}
			e.resolveSlot(t, edge, k)
			if e.trace != nil {
				e.trace.RecordDirect(t, edge, k)
			}
			return nil
		}
		// Copy branch (lines 11-14).
		l := int(rng.Uint64n(uint64(e.x)))
		if e.trace != nil {
			e.trace.RecordCopy(t, edge, k, l)
		}
		owner := e.part.Owner(k)
		if owner == e.rank {
			if e.nodeLoad != nil {
				// Same-rank copy query: counts toward node k's
				// received load (Lemma 3.4's M_k) like a request would.
				e.nodeLoad[e.part.Index(e.rank, k)]++
			}
			v := e.f[e.slot(k, l)]
			if v < 0 {
				// Local dependency chain: wait on our own queue.
				e.stats.LocalWaits++
				e.waiters.push(e.slot(k, l), t, uint16(edge))
				e.trackPending(1)
				return nil
			}
			if e.isDup(t, v) {
				e.stats.Retries++
				continue
			}
			e.resolveSlot(t, edge, v)
			return nil
		}
		return e.cm.Send(owner, msg.Request(t, edge, k, l))
	}
}

// resolveSlot finalises F_t(edge) = v for a local slot: records the edge,
// decrements the unresolved count, and answers every waiter of this slot
// (Algorithm 3.1 lines 16-19 / Algorithm 3.2 lines 21-25).
func (e *engine) resolveSlot(t int64, edge int, v int64) {
	s := e.slot(t, edge)
	e.f[s] = v
	e.unresolved--
	e.emit(graph.Edge{U: t, V: v})

	// Walk the slot's detached waiter chain in FIFO order. Each node's
	// fields are copied out and the node freed before delivery, because
	// delivery can recurse into place/resolveSlot and push new waiters —
	// growing the arena or reusing freed nodes — while we iterate.
	h := e.waiters.take(s)
	var chain int64
	for h >= 0 {
		n := e.waiters.arena[h]
		e.waiters.freeNode(h)
		h = n.next
		chain++
		e.trackPending(-1)
		e.deliverResolved(n.t, int(n.e), v)
	}
	e.stats.WaitChain.Observe(chain)
}

// deliverResolved routes a resolution to the owner of the waiting slot —
// locally by direct call, remotely as a resolved message.
func (e *engine) deliverResolved(t int64, edge int, v int64) {
	owner := e.part.Owner(t)
	if owner == e.rank {
		e.onResolved(t, edge, v)
		return
	}
	if err := e.cm.Send(owner, msg.Resolved(t, edge, v)); err != nil && e.sendErr == nil {
		e.sendErr = err
	}
}

// onResolved handles <resolved, t, e, v> for a local slot: the duplicate
// check of Algorithm 3.2 line 22, retrying the whole step on conflict
// (see DESIGN.md for why the retry re-runs the coin).
func (e *engine) onResolved(t int64, edge int, v int64) {
	if e.isDup(t, v) {
		e.stats.Retries++
		if err := e.place(t, edge, e.retryRng); err != nil && e.sendErr == nil {
			e.sendErr = err
		}
		return
	}
	e.resolveSlot(t, edge, v)
}

// onRequest handles <request, t', e', k', l'> for a locally-owned k'
// (Algorithm 3.2 lines 16-20).
func (e *engine) onRequest(m msg.Message) {
	if e.nodeLoad != nil {
		e.nodeLoad[e.part.Index(e.rank, m.K)]++
	}
	s := e.slot(m.K, int(m.L))
	v := e.f[s]
	if v < 0 {
		e.stats.QueuedWaits++
		e.waiters.push(s, m.T, m.E)
		e.trackPending(1)
		return
	}
	e.deliverResolved(m.T, int(m.E), v)
}

// drain processes incoming messages: all immediately available ones, or —
// when block is set — at least one batch. Before blocking it flushes all
// send buffers (the Section 3.5.2 rule generalised: nothing may linger
// while we sleep).
func (e *engine) drain(block bool) error {
	var ms []msg.Message
	var err error
	if block {
		if err = e.cm.FlushAll(); err != nil {
			return err
		}
		t0 := time.Now()
		ms, err = e.cm.Wait()
		e.blocked += time.Since(t0)
	} else {
		ms, err = e.cm.Poll()
	}
	if err != nil {
		return err
	}
	for _, m := range ms {
		switch m.Kind {
		case msg.KindRequest:
			e.onRequest(m)
		case msg.KindResolved:
			e.onResolved(m.T, int(m.E), m.V)
		case msg.KindDone:
			if e.rank != 0 {
				return fmt.Errorf("core: rank %d received done message", e.rank)
			}
			e.doneRanks++
			if err := e.maybeBroadcastStop(); err != nil {
				return err
			}
		case msg.KindStop:
			e.stopped = true
		default:
			return fmt.Errorf("core: unexpected message kind %v", m.Kind)
		}
	}
	if e.sendErr != nil {
		return e.sendErr
	}
	// Answers generated while processing this batch must not wait for
	// the next blocking point (paper rule: resolved messages are sent
	// out after processing every group).
	return e.cm.FlushAll()
}

// maybeReportDone sends the rank's done report once all local slots are
// resolved. Safe to call repeatedly; reports once.
func (e *engine) maybeReportDone() error {
	if e.unresolved != 0 || e.doneFlag {
		return nil
	}
	e.doneFlag = true
	if e.rank == 0 {
		e.doneRanks++
		return e.maybeBroadcastStop()
	}
	return e.cm.SendNow(0, msg.Done(e.rank))
}

// maybeBroadcastStop (rank 0) broadcasts stop once every rank reported.
func (e *engine) maybeBroadcastStop() error {
	if e.doneRanks < e.p {
		return nil
	}
	for r := 1; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Stop()); err != nil {
			return err
		}
	}
	e.stopped = true
	return nil
}
