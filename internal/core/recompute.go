package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"pagen/internal/xrand"
)

// ResolveMode selects how a worker resolves a copy source owned by a
// remote rank.
type ResolveMode int

const (
	// ResolveWire is the paper's protocol: a <request> message to the
	// owning rank, answered by a <resolved> message (Algorithm 3.2
	// lines 14-20).
	ResolveWire ResolveMode = iota
	// ResolveRecompute replays the owning node's private random stream
	// locally instead of sending a request (the recomputation idea of
	// Sanders & Schulz, "Scalable Generation of Scale-free Graphs"):
	// every attachment is a pure function of (n, x, p, seed), so the
	// copy chain t -> k -> F_k(l) -> ... can be chased without
	// communication. Chains deeper than the configured cap fall back
	// to the wire protocol. The output graph is byte-identical to
	// ResolveWire at every rank and worker count.
	ResolveRecompute
)

// String returns the mode's flag spelling.
func (m ResolveMode) String() string {
	switch m {
	case ResolveWire:
		return "wire"
	case ResolveRecompute:
		return "recompute"
	default:
		return fmt.Sprintf("ResolveMode(%d)", int(m))
	}
}

// ParseResolveMode parses a -resolve flag value.
func ParseResolveMode(s string) (ResolveMode, error) {
	switch s {
	case "wire":
		return ResolveWire, nil
	case "recompute":
		return ResolveRecompute, nil
	default:
		return 0, fmt.Errorf("core: unknown resolve mode %q (want wire or recompute)", s)
	}
}

// DefaultRecomputeDepth returns the default replay-chain cap for an
// n-node run: twice the Theorem 3.3 O(log n) chain-depth bound (with a
// small floor), so virtually every chain replays to termination while a
// pathological one still falls back to the wire protocol instead of
// recomputing an unbounded prefix of the graph.
func DefaultRecomputeDepth(n int64) int {
	d := 2 * bits.Len64(uint64(n))
	if d < 8 {
		d = 8
	}
	return d
}

// replayEntry memoizes one node's replayed attachment values. vals has
// fixed length x and never reallocates; vals[i] is published by storing
// done = i+1 with release semantics, so a reader that observes
// done > l may read vals[l] without taking the lock. rng — the node's
// private stream, positioned immediately after the last committed
// attempt — and the extension of vals are guarded by mu.
type replayEntry struct {
	mu   sync.Mutex
	rng  xrand.Rand
	vals []int64
	done int32 // atomic count of committed values
}

// replayMemo is the rank-level memo table of replayed nodes. It is
// shared by all of the rank's workers: copy chains started by different
// nodes overlap heavily on the low-id prefix (preferential attachment
// concentrates copy sources there), and sharing is what makes each
// chain suffix replay once per rank rather than once per query.
type replayMemo struct {
	mu sync.RWMutex
	m  map[int64]*replayEntry
}

// entry returns node k's memo entry, creating it (with the node's
// stream seeded from scratch) on first use.
func (rm *replayMemo) entry(k int64, seed uint64, x int) *replayEntry {
	rm.mu.RLock()
	ent := rm.m[k]
	rm.mu.RUnlock()
	if ent != nil {
		return ent
	}
	rm.mu.Lock()
	ent = rm.m[k]
	if ent == nil {
		ent = &replayEntry{vals: make([]int64, x)}
		ent.rng.SeedStream(seed, uint64(k))
		rm.m[k] = ent
	}
	rm.mu.Unlock()
	return ent
}

// size returns the number of memoized nodes (metrics only).
func (rm *replayMemo) size() int {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return len(rm.m)
}

// replayCtx tracks one top-level replay invocation: the current chain
// depth (nodes being replayed on the stack), the maximum depth reached,
// and the number of attachment values committed to memo entries.
type replayCtx struct {
	depth int
	max   int
	edges int64
}

// replayF resolves F_k(l) by local recomputation. The chain terminates
// without replaying at the bootstrap rule (node x), a locally resolved
// slot, a hub-replica hit, or a memo hit; otherwise the node's stream
// is replayed forward. ok is false when the chain exceeded the depth
// cap; committed memo state is kept, so a later retry resumes where
// this one stopped.
func (e *engine) replayF(k int64, l int, ctx *replayCtx) (v int64, ok bool) {
	// Bootstrap: node x attaches to every clique node, F_x(l) = l.
	// Copy sources are always drawn from [x, t), so k >= x here.
	if k == e.x64 {
		return int64(l), true
	}
	if e.part.Owner(k) == e.rank {
		s := e.localIdx(k)*e.x64 + int64(l)
		if e.concurrent {
			v = atomic.LoadInt64(&e.f[s])
		} else {
			v = e.f[s]
		}
		if v >= 0 {
			return v, true
		}
		// The owning worker has not resolved this slot yet; replay it
		// like a remote node. The memo entry is a pure cache — e.f is
		// only ever written by the slot's owning worker.
	} else if hub := e.hub; hub != nil && k < hub.h {
		if v = hub.get(k*e.x64 + int64(l)); v >= 0 {
			return v, true
		}
	}
	ent := e.memo.entry(k, e.seed, e.x)
	if int(atomic.LoadInt32(&ent.done)) > l {
		return ent.vals[l], true
	}
	return e.replayExtend(ent, k, l, ctx)
}

// replayExtend replays node k's attempts forward until edge l commits.
// The entry lock is held across the recursion; lock order follows the
// chain, which is strictly decreasing in node id (copy sources are
// drawn from [x, k)), so concurrent replays cannot deadlock. On a
// depth-cap abort the stream state is rolled back to the start of the
// uncommitted attempt, keeping the entry consistent for the next try.
func (e *engine) replayExtend(ent *replayEntry, k int64, l int, ctx *replayCtx) (int64, bool) {
	if ctx.depth >= e.depthCap {
		return 0, false
	}
	ctx.depth++
	if ctx.depth > ctx.max {
		ctx.max = ctx.depth
	}
	defer func() { ctx.depth-- }()

	ent.mu.Lock()
	defer ent.mu.Unlock()
	done := int(atomic.LoadInt32(&ent.done)) // re-check under the lock
	if done > l {
		return ent.vals[l], true
	}
	d := e.opts.Params.NewDrawer(k)
	for edge := done; edge <= l; edge++ {
		for {
			st := ent.rng.State()
			a := d.Next(&ent.rng)
			v := a.K
			if !a.Direct {
				var ok bool
				if v, ok = e.replayF(a.K, a.L, ctx); !ok {
					// Depth cap hit below: un-draw the aborted
					// attempt so the committed prefix plus the
					// stream stay exactly where the owner's own
					// computation would leave them.
					ent.rng.SetState(st)
					return 0, false
				}
			}
			// Duplicate-avoidance retry (Algorithm 3.2 lines 7/22):
			// the owner consumes these draws too, so retries commit
			// to the stream but not to vals.
			if replayDup(ent.vals[:edge], v) {
				continue
			}
			ent.vals[edge] = v
			atomic.StoreInt32(&ent.done, int32(edge+1))
			ctx.edges++
			break
		}
	}
	return ent.vals[l], true
}

// replayDup reports whether v already appears among the committed
// values — the same duplicate test the owner runs, against the same
// prefix (slots beyond the current edge are not yet drawn).
func replayDup(vals []int64, v int64) bool {
	for _, u := range vals {
		if u == v {
			return true
		}
	}
	return false
}

// replayRemote is the worker-side entry point: resolve F_k(l) by
// recomputation, recording the chain-depth and replayed-edge metrics.
// On failure (depth cap) the caller falls back to the wire protocol.
func (w *worker) replayRemote(k int64, l int) (int64, bool) {
	var ctx replayCtx
	v, ok := w.e.replayF(k, l, &ctx)
	w.replayedEdges += ctx.edges
	if !ok {
		w.recomputeFallbacks++
		return 0, false
	}
	w.recomputeHits++
	w.replayDepth.Observe(int64(ctx.max))
	return v, true
}
