package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// faultTransport wraps a transport and starts failing sends after a
// budget of successful ones — simulating a dead interconnect mid-run.
type faultTransport struct {
	transport.Transport
	budget *int64 // shared across ranks; atomic
}

var errInjected = errors.New("injected transport failure")

func (f *faultTransport) Send(to int, data []byte) error {
	if atomic.AddInt64(f.budget, -1) < 0 {
		return errInjected
	}
	return f.Transport.Send(to, data)
}

// The engine must surface transport failures as errors — never hang and
// never panic — no matter where in the protocol the failure lands.
func TestEngineSurfacesTransportFailure(t *testing.T) {
	pr := model.Params{N: 4000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep failure points from "immediately" to "late in the run".
	for _, budget := range []int64{0, 1, 10, 100, 1000} {
		remaining := budget
		group, err := transport.NewLocalGroup(4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 4)
		done := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ft := &faultTransport{Transport: group.Endpoint(r), budget: &remaining}
				// BufferCap 1 so every protocol message is one
				// transport send and the budget lands mid-protocol.
				_, errs[r] = RunRank(ft, Options{Params: pr, Part: part, Seed: 1, BufferCap: 1})
			}(r)
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("budget %d: engine hung on transport failure", budget)
		}
		failed := 0
		for _, e := range errs {
			if e != nil {
				failed++
			}
		}
		if failed == 0 {
			t.Fatalf("budget %d: no rank reported the injected failure", budget)
		}
		// Unblock ranks that may be waiting on peers that died.
		for r := 0; r < 4; r++ {
			group.Endpoint(r).Close()
		}
	}
}

// A rank closing its transport mid-protocol must propagate an error to
// peers blocked on it rather than deadlock.
func TestEnginePeerDisappears(t *testing.T) {
	pr := model.Params{N: 8000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 3)
	if err != nil {
		t.Fatal(err)
	}
	group, err := transport.NewLocalGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	// Rank 2 never runs; close its endpoint so sends to it fail and the
	// others cannot wait forever.
	group.Endpoint(2).Close()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = RunRank(group.Endpoint(r), Options{Params: pr, Part: part, Seed: 2})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engines hung with a dead peer")
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("no surviving rank reported an error")
	}
}

// Option validation errors must mention the offending configuration.
func TestRunRankValidationMessages(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	part4, _ := partition.New(partition.KindUCP, 100, 4)
	_, err = RunRank(group.Endpoint(0), Options{
		Params: model.Params{N: 100, X: 2, P: 0.5},
		Part:   part4,
	})
	if err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Fatalf("rank-count mismatch error = %v", err)
	}
	partWrongN, _ := partition.New(partition.KindUCP, 50, 2)
	_, err = RunRank(group.Endpoint(0), Options{
		Params: model.Params{N: 100, X: 2, P: 0.5},
		Part:   partWrongN,
	})
	if err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("n mismatch error = %v", err)
	}
}

// PollEvery extremes: polling after every node and essentially never
// must both terminate with identical structural results.
func TestPollEveryExtremes(t *testing.T) {
	pr := model.Params{N: 5000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{1, 1 << 30} {
		res, err := Run(Options{Params: pr, Part: part, Seed: 3, PollEvery: every}, false)
		if err != nil {
			t.Fatalf("PollEvery=%d: %v", every, err)
		}
		if res.Graph.M() != pr.M() {
			t.Fatalf("PollEvery=%d: m = %d", every, res.Graph.M())
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("PollEvery=%d: %v", every, err)
		}
	}
}

// BufferCap extremes, including 2 (frequent tiny flushes).
func TestBufferCapExtremes(t *testing.T) {
	pr := model.Params{N: 5000, X: 3, P: 0.5}
	part, err := partition.New(partition.KindLCP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 2, 1 << 20} {
		res, err := Run(Options{Params: pr, Part: part, Seed: 5, BufferCap: cap}, false)
		if err != nil {
			t.Fatalf("BufferCap=%d: %v", cap, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("BufferCap=%d: %v", cap, err)
		}
	}
}

// Extreme p values through the parallel path.
func TestParallelExtremeP(t *testing.T) {
	for _, p := range []float64{0.01, 0.99} {
		pr := model.Params{N: 3000, X: 3, P: p}
		part, err := partition.New(partition.KindRRP, pr.N, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Params: pr, Part: part, Seed: 7}, false)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
	}
	// x=1 pure-copy and pure-direct.
	for _, p := range []float64{0, 1} {
		pr := model.Params{N: 3000, X: 1, P: p}
		part, err := partition.New(partition.KindRRP, pr.N, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Params: pr, Part: part, Seed: 7}, false)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if res.Graph.M() != pr.M() {
			t.Fatalf("p=%v: m = %d", p, res.Graph.M())
		}
	}
}

// The pending-waiter high-water mark must stay far below the slot count:
// queues drain continuously (the Section 3.4 "processor hardly remains
// idle" behaviour).
func TestPendingWaitersBounded(t *testing.T) {
	pr := model.Params{N: 20000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Params: pr, Part: part, Seed: 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	slotsPerRank := pr.N * int64(pr.X) / 8
	for _, st := range res.Ranks {
		if st.MaxPendingSlots <= 0 {
			t.Fatalf("rank %d never queued a waiter — instrumentation broken?", st.Rank)
		}
		if st.MaxPendingSlots > slotsPerRank/2 {
			t.Fatalf("rank %d peak pending %d out of %d slots — queues not draining",
				st.Rank, st.MaxPendingSlots, slotsPerRank)
		}
	}
}
