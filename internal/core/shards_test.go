package core

import (
	"testing"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
)

func TestRunToShardsRoundTrip(t *testing.T) {
	pr := model.Params{N: 8000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := RunToShards(Options{Params: pr, Part: part, Seed: 5}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("sharded run materialised a graph")
	}
	g, err := graph.ReadShards(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != pr.N || g.M() != pr.M() {
		t.Fatalf("merged N=%d M=%d, want N=%d M=%d", g.N, g.M(), pr.N, pr.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if comp := g.ToCSR().ConnectedComponents(); comp != 1 {
		t.Fatalf("%d components", comp)
	}
}

func TestRunToShardsMatchesInMemoryX1(t *testing.T) {
	pr := model.Params{N: 2000, X: 1, P: 0.5}
	part, err := partition.New(partition.KindUCP, pr.N, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunToShards(Options{Params: pr, Part: part, Seed: 9}, dir); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := graph.ReadShards(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Params: pr, Part: part, Seed: 9}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{}
	for _, e := range res.Graph.Edges {
		want[e.U] = e.V
	}
	for _, e := range fromDisk.Edges {
		if want[e.U] != e.V {
			t.Fatalf("F_%d: disk %d vs memory %d", e.U, e.V, want[e.U])
		}
	}
}

func TestRunToShardsRejectsSink(t *testing.T) {
	pr := model.Params{N: 100, X: 1, P: 0.5}
	part, _ := partition.New(partition.KindUCP, pr.N, 1)
	_, err := RunToShards(Options{
		Params: pr, Part: part,
		Sink: func(int, graph.Edge) {},
	}, t.TempDir())
	if err == nil {
		t.Fatal("sink accepted")
	}
}

func TestRunToShardsBadDir(t *testing.T) {
	pr := model.Params{N: 100, X: 1, P: 0.5}
	part, _ := partition.New(partition.KindUCP, pr.N, 1)
	if _, err := RunToShards(Options{Params: pr, Part: part}, "/dev/null/nope"); err == nil {
		t.Fatal("invalid dir accepted")
	}
}

func TestFixedUvarintReadable(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 40, 1<<63 - 1} {
		buf := encodeFixedUvarint(v)
		if len(buf) != 10 {
			t.Fatalf("len %d", len(buf))
		}
		got, n := decodeUvarint(buf)
		if n != 10 || got != v {
			t.Fatalf("decode(%d) = %d (n=%d)", v, got, n)
		}
	}
}

// decodeUvarint mirrors binary.ReadUvarint over a byte slice.
func decodeUvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
