package core

// waiterTable holds the paper's per-slot waiter queues Q_{k,l} without
// per-slot heap allocations: an open-addressed int64→int32 hash table
// maps a slot id to the head of a FIFO chain in a freelist-backed waiter
// arena. The map[int64][]waiter it replaces cost one allocation per
// first-waiter slot plus slice growth per append; here pushes reuse
// freed arena nodes, so the steady-state hot path allocates nothing once
// the arena has reached its high-water size.
//
// Each worker owns one table for the slots of its node block, and only
// that worker touches it, so no locking is needed. FIFO order within a
// chain keeps answers in arrival order; the output graph no longer
// depends on it (every retry draw comes from the waiting node's own
// stream, so delivery order is immaterial), but it keeps wait-chain
// statistics and message schedules reproducible in-process.
type waiterTable struct {
	// keys/heads/tails are the open-addressed table (linear probing,
	// power-of-two size). keys[i] == emptyKey marks a free bucket; a key
	// with heads[i] == nilNode is a tombstone left by take (dropped at
	// the next rehash).
	keys  []int64
	heads []int32
	tails []int32
	// filled counts buckets with a key (live or tombstone); live counts
	// buckets with a non-empty chain.
	filled int
	live   int

	arena []waiterNode
	free  int32 // freelist head through waiterNode.next, nilNode if empty
}

// waiterNode is one queued waiter <t', e'> plus its chain link.
type waiterNode struct {
	t    int64
	next int32
	e    uint16
}

const (
	emptyKey        = int64(-1)
	nilNode         = int32(-1)
	minWaiterTable  = 16
	waiterArenaSeed = 64
)

// hashSlot mixes a slot id into a table index distribution
// (Fibonacci hashing; table sizes are powers of two).
func hashSlot(slot int64) uint64 {
	return uint64(slot) * 0x9e3779b97f4a7c15
}

func (w *waiterTable) init() {
	w.keys = make([]int64, minWaiterTable)
	for i := range w.keys {
		w.keys[i] = emptyKey
	}
	w.heads = make([]int32, minWaiterTable)
	w.tails = make([]int32, minWaiterTable)
	w.arena = make([]waiterNode, 0, waiterArenaSeed)
	w.free = nilNode
}

// bucket returns the index of slot's bucket, or of the first free bucket
// in its probe sequence if absent.
func (w *waiterTable) bucket(slot int64) int {
	mask := uint64(len(w.keys) - 1)
	i := hashSlot(slot) & mask
	for {
		if w.keys[i] == slot || w.keys[i] == emptyKey {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

// push appends waiter <t, e> to slot's chain.
func (w *waiterTable) push(slot int64, t int64, e uint16) {
	n := w.alloc()
	w.arena[n] = waiterNode{t: t, next: nilNode, e: e}

	i := w.bucket(slot)
	if w.keys[i] != slot {
		w.keys[i] = slot
		w.heads[i] = nilNode
		w.filled++
	}
	if w.heads[i] == nilNode {
		w.heads[i] = n
		w.live++
	} else {
		w.arena[w.tails[i]].next = n
	}
	w.tails[i] = n

	// Keep the probe sequences short; rehash also sweeps tombstones.
	if w.filled*4 >= len(w.keys)*3 {
		w.rehash()
	}
}

// has reports whether slot currently has a non-empty chain, without
// detaching it.
func (w *waiterTable) has(slot int64) bool {
	i := w.bucket(slot)
	return w.keys[i] == slot && w.heads[i] != nilNode
}

// take detaches and returns the head of slot's chain (nilNode if the
// slot has no waiters). The caller walks the chain via next, copying
// each node's fields before freeing it.
func (w *waiterTable) take(slot int64) int32 {
	i := w.bucket(slot)
	if w.keys[i] != slot || w.heads[i] == nilNode {
		return nilNode
	}
	h := w.heads[i]
	w.heads[i] = nilNode // tombstone: key stays until the next rehash
	w.live--
	return h
}

// alloc returns a free arena index, growing the arena only when the
// freelist is empty.
func (w *waiterTable) alloc() int32 {
	if w.free != nilNode {
		n := w.free
		w.free = w.arena[n].next
		return n
	}
	w.arena = append(w.arena, waiterNode{})
	return int32(len(w.arena) - 1)
}

// freeNode returns an arena index to the freelist.
func (w *waiterTable) freeNode(n int32) {
	w.arena[n].next = w.free
	w.free = n
}

// forEach visits every queued waiter, chain by chain in FIFO order
// (checkpoint serialization; a restored table re-pushes in this order,
// preserving answer order). fn must not mutate the table.
func (w *waiterTable) forEach(fn func(slot, t int64, e uint16)) {
	for i, k := range w.keys {
		if k == emptyKey || w.heads[i] == nilNode {
			continue
		}
		for n := w.heads[i]; n != nilNode; n = w.arena[n].next {
			fn(k, w.arena[n].t, w.arena[n].e)
		}
	}
}

// rehash rebuilds the table at a size fitted to the live chains,
// dropping tombstones.
func (w *waiterTable) rehash() {
	size := minWaiterTable
	for size < 4*w.live {
		size *= 2
	}
	oldKeys, oldHeads, oldTails := w.keys, w.heads, w.tails
	w.keys = make([]int64, size)
	for i := range w.keys {
		w.keys[i] = emptyKey
	}
	w.heads = make([]int32, size)
	w.tails = make([]int32, size)
	w.filled = 0
	for i, k := range oldKeys {
		if k == emptyKey || oldHeads[i] == nilNode {
			continue
		}
		j := w.bucket(k)
		w.keys[j] = k
		w.heads[j] = oldHeads[i]
		w.tails[j] = oldTails[i]
		w.filled++
	}
}
