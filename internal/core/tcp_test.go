package core

import (
	"fmt"
	"sync"
	"testing"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// runOverTCP executes the engine with each rank on its own TCP endpoint
// over localhost — the genuine distributed-memory configuration
// (cmd/pa-tcp runs the same code across OS processes).
func runOverTCP(t *testing.T, pr model.Params, kind partition.Kind, p int, basePort int, seed uint64) *graph.Graph {
	t.Helper()
	part, err := partition.New(kind, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	results := make([]*RankResult, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := transport.NewTCP(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			results[r], errs[r] = RunRank(tr, Options{Params: pr, Part: part, Seed: seed})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	shards := make([][]graph.Edge, p)
	for r, rr := range results {
		shards[r] = rr.Edges
	}
	return graph.Merge(pr.N, shards...)
}

func TestEngineOverTCP(t *testing.T) {
	pr := model.Params{N: 4000, X: 4, P: 0.5}
	g := runOverTCP(t, pr, partition.KindRRP, 4, 43100, 77)
	if g.M() != pr.M() {
		t.Fatalf("m = %d, want %d", g.M(), pr.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if comp := g.ToCSR().ConnectedComponents(); comp != 1 {
		t.Fatalf("%d components", comp)
	}
}

// The TCP and in-process transports must produce the identical graph for
// x = 1 (fully deterministic attachments).
func TestTCPMatchesLocalX1(t *testing.T) {
	pr := model.Params{N: 1000, X: 1, P: 0.5}
	gTCP := runOverTCP(t, pr, partition.KindUCP, 3, 43150, 5)

	part, _ := partition.New(partition.KindUCP, pr.N, 3)
	res, err := Run(Options{Params: pr, Part: part, Seed: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	fTCP := map[int64]int64{}
	for _, e := range gTCP.Edges {
		fTCP[e.U] = e.V
	}
	for _, e := range res.Graph.Edges {
		if fTCP[e.U] != e.V {
			t.Fatalf("F_%d: tcp %d local %d", e.U, fTCP[e.U], e.V)
		}
	}
}
