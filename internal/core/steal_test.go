package core

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/transport"
)

// The determinism contract of intra-rank work stealing: the output edge
// set is a pure function of (n, x, p, seed) at every ranks × workers ×
// transport combination, no matter which worker ends up generating
// which span. The sweep also proves the shm transport (by-reference
// batches) and the local transport (byte codec) agree bit for bit.
// needProcs raises GOMAXPROCS for the duration of a test that asserts
// steal activity. On a single P a thief's pre-raid yield hands the
// scheduler to its victim, which then runs its whole block without
// preemption — so steals legitimately never fire there and a test
// insisting on them would be schedule-vacuous.
func needProcs(t *testing.T, n int) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= n {
		return
	}
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestStealOutputInvariance(t *testing.T) {
	needProcs(t, 4)
	pr := model.Params{N: 12_000, X: 4, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 11, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	var steals int64
	for _, ranks := range []int{1, 2, 4} {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3} {
			for _, tr := range []string{"shm", "local"} {
				res, err := Run(Options{
					Params: pr, Part: part, Seed: 11,
					Workers: workers, Transport: tr,
				}, false)
				if err != nil {
					t.Fatalf("ranks=%d workers=%d transport=%s: %v", ranks, workers, tr, err)
				}
				label := fmt.Sprintf("ranks=%d workers=%d transport=%s", ranks, workers, tr)
				sameEdgeSet(t, label, res.Graph.Edges, want)
				for _, st := range res.Ranks {
					steals += st.Steals
					if workers == 1 && st.Steals != 0 {
						t.Fatalf("%s: %d steals with a single worker", label, st.Steals)
					}
				}
			}
		}
	}
	// Scheduling decides how often stealing fires, but across the whole
	// sweep at least one span must have moved or the sweep never
	// exercised the machinery it is named for.
	if steals == 0 {
		t.Fatal("no steal happened anywhere in the sweep")
	}
}

// An unknown transport name must fail loudly, not fall back.
func TestRunUnknownTransport(t *testing.T) {
	pr := model.Params{N: 1000, X: 2, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Params: pr, Part: part, Seed: 1, Transport: "tcp"}, false); err == nil {
		t.Fatal("Run with Transport tcp succeeded; in-process runs cannot speak tcp")
	}
}

// Batched inbox wakeups under seeded delay chaos with sharded ranks:
// chaos-wrapped endpoints hide the SendMsgs fast path, so this also
// runs the byte-codec fallback of the shm group, at 2 and 4 ranks with
// workers > 1.
func TestStealChaosDelayWorkers(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	sg, _, err := seq.CopyModel(pr, 9, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := edgeSet(t, sg.Edges)
	for _, p := range []int{2, 4} {
		for _, workers := range []int{2, 3} {
			part, err := partition.New(partition.KindRRP, pr.N, p)
			if err != nil {
				t.Fatal(err)
			}
			group, err := transport.NewShmGroup(p)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			results := make([]*RankResult, p)
			errs := make([]error, p)
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					tr := transport.NewChaos(group.Endpoint(r), transport.ChaosConfig{
						Seed:      uint64(700 + 10*p + r),
						DelayProb: 0.3,
						MaxDelay:  500 * time.Microsecond,
					})
					defer tr.Close()
					results[r], errs[r] = RunRank(tr, Options{
						Params: pr, Part: part, Seed: 9, Workers: workers,
					})
				}(r)
			}
			wg.Wait()
			var all []graph.Edge
			for r := 0; r < p; r++ {
				if errs[r] != nil {
					t.Fatalf("ranks=%d workers=%d rank %d: %v", p, workers, r, errs[r])
				}
				all = append(all, results[r].Edges...)
			}
			sameEdgeSet(t, fmt.Sprintf("chaos ranks=%d workers=%d", p, workers), all, want)
		}
	}
}

// Seeded drop chaos with workers > 1: hub publishes are the one
// drop-tolerated message class (requests fall back to the wire), so
// losing all of them with sharded ranks must still produce the
// baseline's edges — at 2 and 4 ranks.
func TestStealPublishDropWorkers(t *testing.T) {
	pr := model.Params{N: 6_000, X: 3, P: 0.5}
	for _, p := range []int{2, 4} {
		part, err := partition.New(partition.KindRRP, pr.N, p)
		if err != nil {
			t.Fatal(err)
		}
		baseline, _ := runFiltered(t, Options{
			Params: pr, Part: part, Seed: 17, Workers: 2, HubPrefix: -1,
		}, p, false)
		dropped, filters := runFiltered(t, Options{
			Params: pr, Part: part, Seed: 17, Workers: 2, HubPrefix: 0,
		}, p, false)
		var lost int64
		for r := 0; r < p; r++ {
			equalEdges(t, fmt.Sprintf("drop ranks=%d rank=%d", p, r),
				dropped[r].Edges, baseline[r].Edges)
			lost += filters[r].dropped
		}
		if lost == 0 {
			t.Fatalf("ranks=%d: filter dropped no publishes; loss path unexercised", p)
		}
	}
}

// Checkpoint snapshots are steal-agnostic: a snapshot library built by
// a 3-worker run whose spans moved between workers restores at any
// worker count — the v4 records are keyed by node, not by the worker
// that happened to generate it, and restore re-shards by the restoring
// run's static layout. Also emulates the crash case by trimming the
// newest epoch and resuming from the one before it.
func TestStealCheckpointRestoreWorkerCounts(t *testing.T) {
	needProcs(t, 4)
	pr := model.Params{N: 20_000, X: 3, P: 0.5}
	const ranks = 3
	newPart := func() partition.Scheme {
		part, err := partition.New(partition.KindRRP, pr.N, ranks)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	base, err := Run(Options{Params: pr, Part: newPart(), Seed: 23, Workers: 3}, false)
	if err != nil {
		t.Fatal(err)
	}

	// Build the snapshot library with a worker count that steals, and
	// insist the library-producing run actually stole: a cut of a run
	// with no steal activity would not pin anything.
	var dir string
	var epochs []int64
	for every := int64(500); every >= 50; every /= 2 {
		dir = t.TempDir()
		res, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 23, Workers: 3,
			Checkpoint: &CheckpointOptions{Dir: dir, Every: every, Keep: 1000},
		}, false)
		if err != nil {
			t.Fatal(err)
		}
		var steals int64
		for _, st := range res.Ranks {
			steals += st.Steals
		}
		if steals == 0 {
			continue
		}
		if epochs, err = ckpt.Epochs(dir, 0); err != nil {
			t.Fatal(err)
		}
		if len(epochs) >= 2 {
			break
		}
	}
	if len(epochs) < 2 {
		t.Skip("no run with both steals and 2+ epochs; schedule-dependent, nothing to assert")
	}

	resume := func(label string, workers int) {
		res, err := Run(Options{
			Params: pr, Part: newPart(), Seed: 23, Workers: workers,
			Checkpoint: &CheckpointOptions{Dir: dir, Keep: 1000, Resume: true},
		}, false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		equalEdges(t, label, res.Graph.Edges, base.Graph.Edges)
	}
	top := epochs[len(epochs)-1]
	resume(fmt.Sprintf("epoch %d workers=3", top), 3)
	resume(fmt.Sprintf("epoch %d workers=1", top), 1)
	resume(fmt.Sprintf("epoch %d workers=4", top), 4)

	// Crash emulation: drop the newest epoch (as a kill mid-epoch would
	// leave the directory) and restore the previous cut at a different
	// worker count.
	for r := 0; r < ranks; r++ {
		if err := removeEpoch(dir, r, top); err != nil {
			t.Fatal(err)
		}
	}
	resume(fmt.Sprintf("epoch %d after trim workers=2", epochs[len(epochs)-2]), 2)
}

func removeEpoch(dir string, rank int, epoch int64) error {
	return os.Remove(ckpt.Path(dir, rank, epoch))
}
