package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

// Randomly delayed delivery must not change correctness: the protocol
// tolerates any per-pair-FIFO latency, so the generated graph is still
// structurally valid and complete.
func TestEngineSurvivesChaosDelay(t *testing.T) {
	pr := model.Params{N: 6000, X: 3, P: 0.5}
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*RankResult, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := transport.NewChaos(group.Endpoint(r), transport.ChaosConfig{
				Seed:      uint64(100 + r),
				DelayProb: 0.3,
				MaxDelay:  500 * time.Microsecond,
			})
			defer tr.Close()
			results[r], errs[r] = RunRank(tr, Options{Params: pr, Part: part, Seed: 11})
		}(r)
	}
	wg.Wait()
	var edges int64
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d under delay injection: %v", r, errs[r])
		}
		edges += results[r].Stats.Edges
	}
	if edges != pr.M() {
		t.Fatalf("generated %d edges under delay injection, want %d", edges, pr.M())
	}
}

// A rank that crashes mid-protocol must turn into errors across the
// cluster — never a hang. This needs the TCP transport: crash detection
// lives in its failure model (abrupt socket death without the goodbye
// marker latches a connection-lost error on every peer), which the
// in-process transport deliberately does not model. The chaos kill uses
// TCP.Abort, so the wire shows peers exactly what a dead process looks
// like.
func TestEngineChaosKillErrorsNotHangs(t *testing.T) {
	pr := model.Params{N: 8000, X: 4, P: 0.5}
	const p = 4
	part, err := partition.New(partition.KindRRP, pr.N, p)
	if err != nil {
		t.Fatal(err)
	}
	for ki, killAfter := range []int64{1, 50} {
		basePort := 43400 + ki*8
		addrs := make([]string, p)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
		}
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := transport.NewTCP(r, addrs)
				if err != nil {
					errs[r] = err
					return
				}
				if r == p-1 {
					// BufferCap 1 so each protocol message is one send
					// and the kill budget lands mid-protocol.
					chaotic := transport.NewChaos(tr, transport.ChaosConfig{
						Seed:           7,
						KillAfterSends: killAfter,
					})
					_, errs[r] = RunRank(chaotic, Options{Params: pr, Part: part, Seed: 13, BufferCap: 1})
					chaotic.Close()
					return
				}
				defer tr.Close()
				_, errs[r] = RunRank(tr, Options{Params: pr, Part: part, Seed: 13, BufferCap: 1})
			}(r)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("killAfter=%d: cluster hung on a killed rank", killAfter)
		}
		failed := 0
		for _, e := range errs {
			if e != nil {
				failed++
			}
		}
		if failed == 0 {
			t.Fatalf("killAfter=%d: no rank reported the kill", killAfter)
		}
	}
}
