package core

import (
	"sync"
	"time"

	"pagen/internal/msg"
)

// inbox is the bounded MPSC queue in front of each worker: the
// dispatcher and sibling workers produce, the owning worker consumes.
// The consumer drains everything in one pop that swaps the queue against
// a spare buffer, so steady-state operation moves slices, not messages.
//
// Wakeups are epoch-batched: at most one Signal per park episode. A
// producer signals only when the consumer is parked and no signal is
// outstanding (the signaled flag, managed entirely under the lock);
// every further push before the consumer runs rides the same wakeup and
// is picked up by the drain-until-empty swap. The consumer re-arms the
// flag before every Wait, so a wakeup can never be lost.
//
// Blocking contract: only the dispatcher may use the blocking pushBatch
// (a full worker is never itself blocked, so the dispatcher always
// unblocks); workers use tryPush and park overflow on their side. The
// consumer may block in pop; close wakes everyone, and pop reports the
// closed state — the worker's stop signal.
type inbox struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []msg.Message
	capacity int
	closed   bool

	// parked marks the consumer blocked in pop with an empty queue;
	// pushes/pops count messages ever enqueued/dequeued. Together they
	// let the checkpoint protocol's two-pass scan prove local
	// quiescence: all workers parked on empty inboxes with identical
	// counters across both passes means no message moved in between.
	parked bool
	// signaled marks an outstanding wakeup for a parked consumer; while
	// set, further pushes skip the Signal (the batching in "epoch-
	// batched wakeups").
	signaled bool
	pushes   int64
	pops     int64
	wakeups  int64
	// firstAt stamps (UnixNano) the push that made the queue non-empty;
	// pop folds now-firstAt into latEWMA, the measured first-enqueue-to-
	// drain sojourn that drives the worker's adaptive PollEvery retuning.
	firstAt int64
	latEWMA float64
	// onIdle, when set, fires (under the lock) as the consumer parks —
	// the checkpoint protocol's cue to re-examine quiescence. It must
	// not block; the kick it delivers is a buffered non-blocking send.
	onIdle func()
}

func newInbox(capacity int) *inbox {
	b := &inbox{buf: make([]msg.Message, 0, capacity), capacity: capacity}
	b.notEmpty.L = &b.mu
	b.notFull.L = &b.mu
	return b
}

// tryPush appends m unless the inbox is full. Pushes to a closed inbox
// report success and drop the message: close only happens at stop (all
// queues provably empty) or abort (delivery no longer matters), and
// "accepted" stops the producer from retrying forever.
func (b *inbox) tryPush(m msg.Message) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return true
	}
	if len(b.buf) >= b.capacity {
		b.mu.Unlock()
		return false
	}
	b.buf = append(b.buf, m)
	b.pushes++
	if len(b.buf) == 1 {
		b.firstAt = time.Now().UnixNano()
	}
	b.wake()
	b.mu.Unlock()
	return true
}

// wake delivers the park episode's single wakeup if it is still owed.
// Callers hold b.mu.
func (b *inbox) wake() {
	if b.parked && !b.signaled {
		b.signaled = true
		b.wakeups++
		b.notEmpty.Signal()
	}
}

// pushBatch appends every message, blocking while the inbox is full.
// It returns false if the inbox closed mid-push (abort).
func (b *inbox) pushBatch(ms []msg.Message) bool {
	b.mu.Lock()
	for _, m := range ms {
		for len(b.buf) >= b.capacity && !b.closed {
			// Wake the consumer before sleeping: it may be waiting on
			// notEmpty while we wait on notFull.
			b.notEmpty.Signal()
			b.notFull.Wait()
		}
		if b.closed {
			b.mu.Unlock()
			return false
		}
		b.buf = append(b.buf, m)
		b.pushes++
		if len(b.buf) == 1 {
			b.firstAt = time.Now().UnixNano()
		}
	}
	b.wake()
	b.mu.Unlock()
	return true
}

// pop returns every queued message by swapping the queue against spare
// (the consumer's previous batch, recycled). When block is set it waits
// for messages or close. open reports whether the inbox can still
// deliver; (empty, false) means the worker should exit.
func (b *inbox) pop(spare []msg.Message, block bool) (items []msg.Message, open bool) {
	b.mu.Lock()
	if block {
		for len(b.buf) == 0 && !b.closed {
			if !b.parked {
				b.parked = true
				if b.onIdle != nil {
					b.onIdle()
				}
			}
			// Re-arm under the lock before sleeping: Wait releases the
			// lock atomically, so a producer that sets signaled after
			// this point necessarily Signals after our Wait is queued.
			b.signaled = false
			b.notEmpty.Wait()
		}
		b.parked = false
		b.signaled = false
	}
	if len(b.buf) == 0 {
		open = !b.closed
		b.mu.Unlock()
		return spare[:0], open
	}
	if b.firstAt != 0 {
		lat := float64(time.Now().UnixNano() - b.firstAt)
		b.latEWMA += (lat - b.latEWMA) / 8
		b.firstAt = 0
	}
	b.pops += int64(len(b.buf))
	items = b.buf
	b.buf = spare[:0]
	b.notFull.Broadcast()
	b.mu.Unlock()
	return items, true
}

// scanState reports the inbox's quiescence-relevant state under the
// lock: consumer parked, queue empty, and the monotone push/pop
// counters the two-pass scan compares.
func (b *inbox) scanState() (parked, empty bool, pushes, pops int64) {
	b.mu.Lock()
	parked, empty, pushes, pops = b.parked, len(b.buf) == 0, b.pushes, b.pops
	b.mu.Unlock()
	return parked, empty, pushes, pops
}

// wakeupCount returns how many Signals producers have delivered — one
// per park episode at most, however many pushes rode each of them.
func (b *inbox) wakeupCount() int64 {
	b.mu.Lock()
	w := b.wakeups
	b.mu.Unlock()
	return w
}

// wakeLatency returns the EWMA of the first-enqueue-to-drain sojourn in
// nanoseconds — the wakeup latency the adaptive poller steers by.
func (b *inbox) wakeLatency() float64 {
	b.mu.Lock()
	l := b.latEWMA
	b.mu.Unlock()
	return l
}

// close marks the inbox finished and wakes every waiter.
func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
	b.mu.Unlock()
}
