package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/esink"
	"pagen/internal/msg"
	"pagen/internal/obs"
)

// CheckpointOptions enables cooperative checkpointing: the engine
// periodically pauses generation at a globally quiescent point (a
// consistent cut — see DESIGN.md §9), captures its mutable state into
// pooled buffers, resumes immediately, and publishes the snapshot file
// from a per-rank background writer. A later run with Resume set
// restarts from the newest epoch every rank holds a restorable snapshot
// of, producing output byte-identical to an uninterrupted run.
type CheckpointOptions struct {
	// Dir is the snapshot directory (one file per rank per epoch).
	Dir string
	// Every triggers an epoch each time rank 0's progress metric
	// (initiated nodes plus received data messages) grows by this much.
	// Zero disables triggering — useful with Resume to restart a run
	// without further checkpoints.
	Every int64
	// Keep is the number of full epochs retained per rank (older ones,
	// and the delta chains hanging off them, are pruned). Values below
	// 2 are raised to 2 so one torn latest epoch still leaves a common
	// fallback. 0 selects the default.
	Keep int
	// FullEvery is the full-snapshot cadence: every FullEvery-th epoch
	// is a full snapshot and the epochs between are deltas carrying
	// only the F ranges dirtied since the previous epoch (ckpt format
	// v5 base+delta chains). 0 or 1 selects full-only checkpointing.
	// An epoch after a restore or an abandoned epoch is forced full so
	// every chain stands on state that is known to be on disk.
	FullEvery int
	// Resume makes the run restart from the newest epoch all ranks can
	// restore; with no usable snapshots the run starts fresh.
	Resume bool
}

// DefaultCheckpointKeep is the default number of retained full epochs.
const DefaultCheckpointKeep = 2

// Checkpoint-epoch phases (ckptRun.phase, atomic: workers read it at
// poll points, the coordinator goroutine writes it).
const (
	ckIdle int32 = iota
	// ckPaused: an epoch is active — generation is paused, the rank
	// keeps serving the resolution cascade until globally quiescent.
	ckPaused
)

// ckptMaxRounds bounds the quiescence-probe rounds per epoch. The
// protocol converges once in-flight traffic drains, so hitting the
// bound means a protocol bug, not a slow network; erroring out beats
// looping forever (and keeps the round number inside its uint16 field).
const ckptMaxRounds = 10000

// ckptDirtyShift sets the dirty-tracking granularity: one bitmap word
// covers 1<<ckptDirtyShift F slots (4096 slots = 32 KiB of table), so
// the bitmap costs 1/8192 of the table and the hot-path mark is one
// predictable load+branch.
const ckptDirtyShift = 12

// errAborted reports that the engine aborted while a receive was
// blocked; the first real error is latched in engine.firstErr.
var errAborted = errors.New("core: engine aborted")

// ckptRun is the per-rank state of the checkpoint protocol. All fields
// except the atomics belong to the rank's coordinator goroutine (the
// dispatcher, or the single-worker loop).
type ckptRun struct {
	dir       string
	every     int64
	keep      int
	fullEvery int
	// kick wakes a dispatcher blocked on the transport when a worker
	// crosses the trigger threshold or parks during an epoch.
	kick chan struct{}

	phase       int32 // atomic: ckIdle / ckPaused
	initiated   int64 // atomic: nodes whose generation has started
	nextTrigger int64 // atomic: metric value that opens the next epoch

	epochNext int64 // next epoch number to open (rank 0)
	epoch     int64 // epoch currently active (all ranks)
	lastGood  int64 // newest locally captured epoch (delta base)
	// forceFull forces the next epoch to capture a full snapshot: set
	// after a restore, after an abandoned epoch, and after a skipped
	// capture, so no delta ever chains onto state that may not be on
	// disk.
	forceFull bool

	// writer is the rank's background publisher: encode, CRC, write,
	// fsync, rename and prune all run there, off the pause path.
	writer *ckptWriter

	// votes tallies the asynchronous per-epoch commit votes (rank 0
	// only). An entry exists from the first vote until all p arrive;
	// rank 0 defers the stop broadcast while any tally is open so an
	// abandon always precedes stop on every channel.
	votes map[int64]*ckptVoteState
	// voted0 remembers epochs this rank itself voted 0 on (capture
	// skipped), so the arriving abandon does not uncount an epoch that
	// was never counted.
	voted0 map[int64]bool

	// Quiescence-detection state. Rank 0 collects per-rank (sent, recv)
	// data-message counters round by round; two consecutive identical,
	// globally balanced rounds prove no data message is in flight.
	round         int              // current counter round (rank 0)
	pendingRound  int              // newest round this rank must report for
	reportedRound int              // newest round this rank has reported
	cutSent       bool             // rank 0: cut already broadcast
	cur, prev     map[int][2]int64 // per-rank (sent, recv) this/last round

	// doneRecv counts Done reports received over the wire (rank 0), so
	// the balance counters cover the termination protocol's traffic too.
	doneRecv int64
	// held parks non-collective messages that arrive while the resume
	// negotiation's collectives own the receive path; they are
	// delivered once the restored state exists.
	held []msg.Message

	pauseStart time.Time
	// scanPush/scanPop hold the first pass of the two-pass inbox scan
	// that establishes local quiescence.
	scanPush, scanPop []int64

	// metrics (pause side; the write side lives in the writer).
	epochs, failed, pauseNanos int64
	pauseHist                  obs.Histogram
}

// ckptVoteState is one epoch's open vote tally (rank 0).
type ckptVoteState struct {
	n   int
	bad bool
}

// ckptCapture is one pooled capture buffer: the snapshot struct plus
// the reusable backing arrays its slices point into. Two captures
// rotate between the cut (fill) and the background writer (drain), so
// a steady cadence allocates nothing epoch over epoch once the buffers
// have grown to the rank's state size.
type ckptCapture struct {
	snap ckpt.Snapshot
	// f backs snap.F for full captures; dvals is the flat value store
	// the delta ranges subslice.
	f       []int64
	dvals   []int64
	ranges  []ckpt.DeltaRange
	workers []ckpt.WorkerState
	out     []ckpt.OutboundBatch
}

// ckptWriteReq is one background-writer work item: publish a capture
// (c != nil) or remove an abandoned epoch's file (c == nil). Removes
// ride the same FIFO channel as writes so an abandon enqueued after its
// epoch's capture always deletes the file the write produced.
type ckptWriteReq struct {
	c     *ckptCapture
	epoch int64
}

// ckptWriter is the per-rank background snapshot publisher. The cut
// hands it a filled capture and resumes generation; encode, CRC-32C,
// tmp+fsync+rename, chain pruning and (for streamed runs) the shard
// fsync that makes the sink mark durable all run here. The first error
// latches and fails the *next* epoch's commit vote rather than the run;
// takeErr consumes the latch so one failure abandons exactly one epoch.
type ckptWriter struct {
	dir    string
	rank   int
	keep   int
	stream *esink.Writer

	ch   chan ckptWriteReq
	free chan *ckptCapture
	done chan struct{}
	once sync.Once

	mu         sync.Mutex
	err        error
	bytes      int64
	writeNanos int64
	writeHist  obs.Histogram
	enc        ckpt.Encoder
}

func newCkptWriter(dir string, rank, keep int, stream *esink.Writer) *ckptWriter {
	bw := &ckptWriter{
		dir:    dir,
		rank:   rank,
		keep:   keep,
		stream: stream,
		// Two captures bound the overlap: one filling at a cut while
		// one drains in the writer. A third epoch arriving before the
		// writer frees a buffer waits at the cut — back-pressure that
		// shows up honestly in the pause histogram. The channel is
		// deeper than the capture pool so abandon-removes never block
		// the coordinator.
		ch:   make(chan ckptWriteReq, 8),
		free: make(chan *ckptCapture, 2),
		done: make(chan struct{}),
	}
	bw.free <- &ckptCapture{}
	bw.free <- &ckptCapture{}
	go bw.loop()
	return bw
}

func (bw *ckptWriter) loop() {
	defer close(bw.done)
	for req := range bw.ch {
		if req.c == nil {
			// Abandoned epoch: best-effort file removal. Not latched —
			// a stale file is re-validated (and skipped or reused) by
			// resume, so failing a later epoch over it buys nothing.
			ckpt.Remove(bw.dir, bw.rank, req.epoch)
			continue
		}
		t0 := time.Now()
		size, err := bw.publish(req.c)
		dt := time.Since(t0).Nanoseconds()
		bw.mu.Lock()
		bw.writeNanos += dt
		bw.writeHist.Observe(dt)
		if err == nil {
			bw.bytes += size
		} else if bw.err == nil {
			bw.err = err
		}
		bw.mu.Unlock()
		// Return the buffer last: a cut blocked on the free list may
		// otherwise capture into it while publish still reads it.
		bw.free <- req.c
	}
}

// publish makes one captured epoch durable: shard fsync first (the
// snapshot's sink mark must name bytes that are on disk before the
// snapshot carrying it exists), then encode into the pooled scratch,
// write+fsync+rename, then prune superseded epochs.
func (bw *ckptWriter) publish(c *ckptCapture) (int64, error) {
	if c.snap.Sink != nil && bw.stream != nil {
		if err := bw.stream.Sync(); err != nil {
			return 0, err
		}
	}
	data := bw.enc.Encode(&c.snap)
	_, size, err := ckpt.WriteEncoded(bw.dir, bw.rank, c.snap.Epoch, data)
	if err != nil {
		return 0, err
	}
	if err := ckpt.Prune(bw.dir, bw.rank, bw.keep); err != nil {
		return size, err
	}
	return size, nil
}

// takeErr consumes the latched error, if any. The cut calls it once per
// epoch, so each background failure costs exactly one abandoned epoch.
func (bw *ckptWriter) takeErr() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	err := bw.err
	bw.err = nil
	return err
}

// shutdown drains and stops the writer. Idempotent; blocks until every
// queued capture is published (or failed), so callers observe final
// byte counts and the newest epoch's durability before reporting stats.
func (bw *ckptWriter) shutdown() {
	bw.once.Do(func() { close(bw.ch) })
	<-bw.done
}

// kickNow wakes the dispatcher without blocking (the channel holds one
// pending kick; more carry no extra information).
func (ck *ckptRun) kickNow() {
	select {
	case ck.kick <- struct{}{}:
	default:
	}
}

// ckptNoteInit counts one initiated node and kicks the dispatcher when
// the count alone crosses the trigger (the authoritative check, which
// also includes received-message counts, runs on the dispatcher).
func (e *engine) ckptNoteInit() {
	ck := e.ck
	v := atomic.AddInt64(&ck.initiated, 1)
	if v >= atomic.LoadInt64(&ck.nextTrigger) && atomic.LoadInt32(&ck.phase) == ckIdle {
		ck.kickNow()
	}
}

// ckptMetric is rank 0's monotone progress measure: initiated local
// nodes plus received data messages. The received term keeps epochs
// firing after rank 0 finishes generating while other ranks still run.
func (e *engine) ckptMetric() int64 {
	c := e.cm.Counters()
	return atomic.LoadInt64(&e.ck.initiated) + c.RequestsRecv + c.ResolvedRecv
}

// ckptMarkDirty records that flat slot s changed since the last capture
// (delta-epoch dirty tracking; no-op unless delta epochs are enabled).
// The bitmap word is only written while still clear, so the hot path's
// steady state is one cached load. Cross-worker stores of the same word
// are idempotent (both write 1) and the quiescent cut's capture is
// ordered after every worker's park, so the bits are visible there.
func (e *engine) ckptMarkDirty(s int64) {
	w := &e.ckDirty[s>>ckptDirtyShift]
	if e.concurrent {
		if atomic.LoadUint32(w) == 0 {
			atomic.StoreUint32(w, 1)
		}
		return
	}
	if *w == 0 {
		*w = 1
	}
}

// ckptBegin (rank 0) opens a new epoch: pause generation everywhere,
// then detect global quiescence via counter rounds.
func (e *engine) ckptBegin() error {
	ck := e.ck
	ck.epoch = ck.epochNext
	ck.epochNext++
	if ck.every > 0 {
		atomic.StoreInt64(&ck.nextTrigger, e.ckptMetric()+ck.every)
	}
	ck.round = 1
	ck.pendingRound = 1
	ck.reportedRound = 0
	ck.cutSent = false
	ck.cur = make(map[int][2]int64, e.p)
	ck.prev = nil
	ck.pauseStart = time.Now()
	atomic.StoreInt32(&ck.phase, ckPaused)
	for r := 1; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptBegin, 1, ck.epoch, 0)); err != nil {
			return err
		}
	}
	return nil
}

// ckptOnMsg handles one received checkpoint-protocol message.
func (e *engine) ckptOnMsg(m msg.Message) error {
	ck := e.ck
	op := msg.CkptOp(m.E)
	if ck == nil {
		return fmt.Errorf("core: rank %d received checkpoint message (op %d) with checkpointing disabled", e.rank, op)
	}
	switch op {
	case msg.CkptBegin:
		if e.rank == 0 {
			return fmt.Errorf("core: rank 0 received checkpoint begin")
		}
		if atomic.LoadInt32(&ck.phase) != ckIdle {
			// The cut executes at its stream marker (see CkptCut), so a
			// begin can only find the epoch still open if the protocol
			// itself broke.
			return fmt.Errorf("core: checkpoint begin for epoch %d while epoch %d active", m.K, ck.epoch)
		}
		ck.epoch = m.K
		ck.pendingRound = int(m.L)
		ck.reportedRound = 0
		ck.pauseStart = time.Now()
		atomic.StoreInt32(&ck.phase, ckPaused)
	case msg.CkptProbe:
		ck.pendingRound = int(m.L)
	case msg.CkptReport:
		if e.rank != 0 {
			return fmt.Errorf("core: rank %d received checkpoint report", e.rank)
		}
		if int(m.L) != ck.round {
			return fmt.Errorf("core: checkpoint report for round %d in round %d", m.L, ck.round)
		}
		ck.cur[int(m.T)] = [2]int64{m.K, m.V}
	case msg.CkptCut:
		// Execute the cut at its marker, in stream order. With the
		// asynchronous commit, rank 0 resumes generating right after
		// its own capture, so data sent post-cut can share a frame with
		// this marker; deferring the cut past the batch (the old
		// cutAsked path) would push that data to the worker inboxes
		// first, racing the capture against live workers and leaking
		// post-cut effects into the epoch. Everything before the marker
		// is fully drained — that is what the quiescence rounds proved
		// — so this rank is quiescent here, exactly as the cut
		// requires, and data later in the frame still sits unrouted in
		// the deliver pass's route buffers until after the capture.
		return e.ckptCut()
	case msg.CkptVote:
		if e.rank != 0 {
			return fmt.Errorf("core: rank %d received checkpoint vote", e.rank)
		}
		return e.ckptRecordVote(m.K, m.V == 1)
	case msg.CkptAbandon:
		if e.rank == 0 {
			return fmt.Errorf("core: rank 0 received checkpoint abandon")
		}
		e.ckptAbandon(m.K)
	default:
		return fmt.Errorf("core: unknown checkpoint op %d", op)
	}
	return nil
}

// ckptRecordVote (rank 0) tallies one rank's asynchronous commit vote
// for an epoch. When the last vote lands the epoch either stands on
// every rank or is abandoned everywhere: a single abandon broadcast,
// ordered before any later stop on each channel, keeps the ranks'
// epoch accounting aligned without a blocking collective in any cut.
func (e *engine) ckptRecordVote(epoch int64, ok bool) error {
	ck := e.ck
	if ck.votes == nil {
		ck.votes = make(map[int64]*ckptVoteState)
	}
	st := ck.votes[epoch]
	if st == nil {
		st = &ckptVoteState{}
		ck.votes[epoch] = st
	}
	st.n++
	if !ok {
		st.bad = true
	}
	if st.n < e.p {
		return nil
	}
	delete(ck.votes, epoch)
	if st.bad {
		for r := 1; r < e.p; r++ {
			if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptAbandon, 0, epoch, 0)); err != nil {
				return err
			}
		}
		e.ckptAbandon(epoch)
	}
	// A completed tally may have been the last thing deferring the stop
	// broadcast.
	return e.maybeBroadcastStop()
}

// ckptAbandon applies an epoch abandonment on this rank: uncount the
// epoch (unless this rank never captured it), queue its file for
// removal behind any in-flight write of it, and force the next epoch
// full so no delta chains onto state that may not be on disk.
func (e *engine) ckptAbandon(epoch int64) {
	ck := e.ck
	ck.failed++
	ck.forceFull = true
	if ck.voted0[epoch] {
		delete(ck.voted0, epoch)
		return
	}
	ck.epochs--
	ck.writer.ch <- ckptWriteReq{epoch: epoch}
}

// ckptBalance returns this rank's cumulative data-message (sent, recv)
// counters, including the termination protocol's Done reports — any
// message type that can be in flight between ranks mid-run. (Stop is
// excluded: it is deferred while an epoch is active, so it is never in
// flight during one. Checkpoint-protocol messages — votes and abandons
// included — are excluded too: they are KindCkpt control traffic the
// cut does not wait out.)
func (e *engine) ckptBalance() (sent, recv int64) {
	c := e.cm.Counters()
	sent = c.RequestsSent + c.ResolvedSent + c.PublishSent
	recv = c.RequestsRecv + c.ResolvedRecv + c.PublishRecv
	done := false
	if e.concurrent {
		// Concurrent done reports always travel the wire (rank 0
		// self-sends), so the latch counts for every rank.
		done = atomic.LoadInt32(&e.doneSent) == 1
		if done {
			sent++
		}
	} else if e.doneFlag {
		done = true
		if e.rank != 0 {
			// Single-worker rank 0 short-circuits its own report; only
			// other ranks' reports travel.
			sent++
		}
	}
	if e.hub != nil {
		// Fences go out with the done report — to every peer, rank 0's
		// included — and can be in flight while later epochs quiesce.
		if done {
			sent += int64(e.p - 1)
		}
		recv += int64(e.fencesRecv)
	}
	recv += e.ck.doneRecv
	return sent, recv
}

// ckptQuiescentNow reports whether this rank is locally quiescent: every
// worker parked on an empty inbox, with no push or pop in between two
// scans (the counters are monotone, so equality across both passes
// proves no message moved while we looked). The single-worker loop is
// quiescent by construction whenever it runs the protocol.
func (e *engine) ckptQuiescentNow() bool {
	if !e.concurrent {
		return true
	}
	ck := e.ck
	if len(ck.scanPush) < e.nw {
		ck.scanPush = make([]int64, e.nw)
		ck.scanPop = make([]int64, e.nw)
	}
	for pass := 0; pass < 2; pass++ {
		for i, w := range e.workers {
			parked, empty, pushes, pops := w.inbox.scanState()
			if !parked || !empty {
				return false
			}
			if pass == 0 {
				ck.scanPush[i], ck.scanPop[i] = pushes, pops
			} else if ck.scanPush[i] != pushes || ck.scanPop[i] != pops {
				return false
			}
		}
	}
	return true
}

// ckptReport sends this rank's counter report for the pending round.
// Rank 0 reports to itself over the wire rather than recording directly:
// every round advance then costs a real receive, which keeps the
// coordinator returning to the transport between rounds so in-flight
// traffic (the very thing the rounds are waiting out) gets delivered
// instead of the rounds spinning to the bound against a stale balance.
func (e *engine) ckptReport() error {
	ck := e.ck
	ck.reportedRound = ck.pendingRound
	sent, recv := e.ckptBalance()
	return e.cm.SendNow(0, msg.Ckpt(e.rank, msg.CkptReport, ck.reportedRound, sent, recv))
}

// balancedStable reports whether the current round matches the previous
// one rank for rank and the global sent/recv totals agree — the
// two-consecutive-identical-balanced-rounds criterion for global
// quiescence.
func (ck *ckptRun) balancedStable(p int) bool {
	if ck.prev == nil {
		return false
	}
	var sent, recv int64
	for r := 0; r < p; r++ {
		cur, ok := ck.cur[r]
		if !ok {
			return false
		}
		if prev, ok := ck.prev[r]; !ok || prev != cur {
			return false
		}
		sent += cur[0]
		recv += cur[1]
	}
	return sent == recv
}

// ckptEvaluate (rank 0) advances the quiescence detection once all
// ranks have reported the current round: either declare the cut or
// start another round. Returns whether it made progress.
func (e *engine) ckptEvaluate() (bool, error) {
	ck := e.ck
	if ck.cutSent || len(ck.cur) < e.p {
		return false, nil
	}
	if ck.round >= 2 && ck.balancedStable(e.p) {
		// Global quiescence. The cut goes to every rank including rank
		// 0 itself (a transport self-send) so all ranks process it
		// uniformly on their receive path.
		for r := 0; r < e.p; r++ {
			if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptCut, ck.round, ck.epoch, 0)); err != nil {
				return false, err
			}
		}
		ck.cutSent = true
		return true, nil
	}
	if ck.round >= ckptMaxRounds {
		return false, fmt.Errorf("core: checkpoint epoch %d failed to quiesce after %d rounds (cur %v, prev %v)",
			ck.epoch, ck.round, ck.cur, ck.prev)
	}
	ck.prev = ck.cur
	ck.cur = make(map[int][2]int64, e.p)
	ck.round++
	// The probe goes to rank 0 itself as well (see ckptReport): its next
	// report is then paced by the receive path like everyone else's.
	for r := 0; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptProbe, ck.round, ck.epoch, 0)); err != nil {
			return false, err
		}
	}
	return true, nil
}

// ckptStep runs as much of the checkpoint protocol as can proceed
// without receiving: open a due epoch (rank 0), report quiescence,
// evaluate rounds. The cut itself runs from the receive path, at its
// stream marker (see CkptCut in ckptOnMsg). The coordinator calls it
// once per receive-loop iteration.
func (e *engine) ckptStep() error {
	ck := e.ck
	if ck == nil {
		return nil
	}
	if e.rank == 0 && ck.every > 0 && !e.stopped &&
		atomic.LoadInt32(&ck.phase) == ckIdle &&
		e.ckptMetric() >= atomic.LoadInt64(&ck.nextTrigger) {
		if err := e.ckptBegin(); err != nil {
			return err
		}
	}
	if atomic.LoadInt32(&ck.phase) != ckPaused {
		return nil
	}
	for {
		progressed := false
		if ck.reportedRound < ck.pendingRound && e.ckptQuiescentNow() {
			if err := e.ckptReport(); err != nil {
				return err
			}
			progressed = true
		}
		if e.rank == 0 {
			p, err := e.ckptEvaluate()
			if err != nil {
				return err
			}
			progressed = progressed || p
		}
		if !progressed {
			return nil
		}
	}
}

// ckptFilter splits a received batch while the resume negotiation's
// collectives own the receive path: collective messages pass through,
// everything else is held (copied — the input aliases comm's reused
// scratch) for delivery once the restored state exists.
func (e *engine) ckptFilter(ms []msg.Message) []msg.Message {
	colls := ms[:0]
	for _, m := range ms {
		if m.Kind == msg.KindColl {
			colls = append(colls, m)
		} else {
			e.ck.held = append(e.ck.held, m)
		}
	}
	return colls
}

// ckptFlushHeld delivers the messages parked during the resume
// negotiation through the normal receive path.
func (e *engine) ckptFlushHeld() error {
	ck := e.ck
	if len(ck.held) == 0 {
		return nil
	}
	held := ck.held
	ck.held = nil
	if e.concurrent {
		return e.deliver(held)
	}
	for _, m := range held {
		if err := e.handleSingle(m); err != nil {
			return err
		}
	}
	if w := e.workers[0]; w.err != nil {
		return w.err
	}
	return e.cm.FlushAll()
}

// ckptCut executes a declared cut: capture the rank's mutable state
// into a pooled buffer, send the asynchronous commit vote, hand the
// capture to the background writer, and resume generation. Every rank
// is globally quiescent here, so the captures form a consistent cut.
// The pause ends when capture does — encode, CRC, fsync, rename and
// prune all happen in the writer, so ckpt_pause_nanos excludes write
// time by construction.
func (e *engine) ckptCut() error {
	ck := e.ck
	ok := true
	// A latched background failure from an earlier epoch fails this
	// epoch's vote — not the run (DESIGN.md §9: resume negotiation
	// skips epochs any rank failed to persist).
	if werr := ck.writer.takeErr(); werr != nil {
		ok = false
	}
	// Streamed runs fix the shard mark at the cut: flush the open block
	// (a page-cache write) so the mark names a complete-block prefix.
	// The fsync that makes the mark durable runs in the writer, before
	// the snapshot naming it is published.
	var mark *ckpt.SinkMark
	if ok && e.stream != nil {
		m, err := e.stream.Mark()
		if err != nil {
			ok = false
		} else {
			mark = &ckpt.SinkMark{Offset: m.Offset, Blocks: m.Blocks, Edges: m.Edges}
		}
	}
	var pending *ckptCapture
	if ok {
		kind, base := ckpt.KindFull, int64(0)
		if ck.fullEvery > 1 && !ck.forceFull && ck.lastGood > 0 && (ck.epoch-1)%int64(ck.fullEvery) != 0 {
			kind, base = ckpt.KindDelta, ck.lastGood
		}
		// Waiting for a free capture buffer is real back-pressure (the
		// writer still holds both) and is charged to the pause.
		pending = <-ck.writer.free
		e.buildSnapshotInto(pending, kind, base)
		pending.snap.Sink = mark
		// Optimistic local commit: the vote tally abandons the epoch
		// later if any rank failed.
		ck.lastGood = ck.epoch
		ck.epochs++
		ck.forceFull = false
		// Enqueued before the vote: if the tally completes inside this
		// call and abandons the epoch, the removal request must trail
		// the write in the writer's FIFO.
		ck.writer.ch <- ckptWriteReq{c: pending}
	} else {
		ck.voted0[ck.epoch] = true
		ck.forceFull = true
	}
	if e.rank == 0 {
		if err := e.ckptRecordVote(ck.epoch, ok); err != nil {
			return err
		}
	} else {
		v := int64(0)
		if ok {
			v = 1
		}
		if err := e.cm.SendNow(0, msg.Ckpt(e.rank, msg.CkptVote, 0, ck.epoch, v)); err != nil {
			return err
		}
	}

	// Resume: unpause, wake the workers, retry the stop broadcast the
	// pause may have deferred. The snapshot publish proceeds in the
	// background.
	atomic.StoreInt32(&ck.phase, ckIdle)
	pauseNs := time.Since(ck.pauseStart).Nanoseconds()
	ck.pauseNanos += pauseNs
	ck.pauseHist.Observe(pauseNs)
	if e.rank == 0 && ck.every > 0 {
		atomic.StoreInt64(&ck.nextTrigger, e.ckptMetric()+ck.every)
	}
	if e.concurrent {
		resume := []msg.Message{{Kind: kindCkptResume}}
		for _, w := range e.workers {
			if !w.inbox.pushBatch(resume) {
				return e.takeErr()
			}
		}
	}
	if err := e.cm.FlushAll(); err != nil {
		return err
	}
	if e.rank == 0 {
		return e.maybeBroadcastStop()
	}
	return nil
}

// ckptServe drives the single-worker loop through an active epoch:
// alternate protocol steps with blocking receives until the cut
// completes and generation may resume.
func (e *engine) ckptServe() error {
	for atomic.LoadInt32(&e.ck.phase) != ckIdle {
		if err := e.ckptStep(); err != nil {
			return err
		}
		if atomic.LoadInt32(&e.ck.phase) == ckIdle {
			return nil
		}
		if err := e.drainSingle(true); err != nil {
			return err
		}
	}
	return nil
}
