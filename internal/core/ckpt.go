package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/msg"
)

// CheckpointOptions enables cooperative checkpointing: the engine
// periodically pauses generation at a globally quiescent point (a
// consistent cut — see DESIGN.md §9), writes one snapshot file per rank
// under Dir, and resumes. A later run with Resume set restarts from the
// newest epoch every rank holds a valid snapshot of, producing output
// byte-identical to an uninterrupted run.
type CheckpointOptions struct {
	// Dir is the snapshot directory (one file per rank per epoch).
	Dir string
	// Every triggers an epoch each time rank 0's progress metric
	// (initiated nodes plus received data messages) grows by this much.
	// Zero disables triggering — useful with Resume to restart a run
	// without further checkpoints.
	Every int64
	// Keep is the number of committed epochs retained per rank (older
	// ones are pruned). Values below 2 are raised to 2 so one torn
	// latest epoch still leaves a common fallback. 0 selects the default.
	Keep int
	// Resume makes the run restart from the newest epoch all ranks can
	// read; with no usable snapshots the run starts fresh.
	Resume bool
}

// DefaultCheckpointKeep is the default number of retained epochs.
const DefaultCheckpointKeep = 2

// Checkpoint-epoch phases (ckptRun.phase, atomic: workers read it at
// poll points, the coordinator goroutine writes it).
const (
	ckIdle int32 = iota
	// ckPaused: an epoch is active — generation is paused, the rank
	// keeps serving the resolution cascade until globally quiescent.
	ckPaused
)

// ckptMaxRounds bounds the quiescence-probe rounds per epoch. The
// protocol converges once in-flight traffic drains, so hitting the
// bound means a protocol bug, not a slow network; erroring out beats
// looping forever (and keeps the round number inside its uint16 field).
const ckptMaxRounds = 10000

// errAborted reports that the engine aborted while a receive was
// blocked; the first real error is latched in engine.firstErr.
var errAborted = errors.New("core: engine aborted")

// ckptRun is the per-rank state of the checkpoint protocol. All fields
// except the atomics belong to the rank's coordinator goroutine (the
// dispatcher, or the single-worker loop).
type ckptRun struct {
	dir   string
	every int64
	keep  int
	// kick wakes a dispatcher blocked on the transport when a worker
	// crosses the trigger threshold or parks during an epoch.
	kick chan struct{}

	phase       int32 // atomic: ckIdle / ckPaused
	initiated   int64 // atomic: nodes whose generation has started
	nextTrigger int64 // atomic: metric value that opens the next epoch

	epochNext int64 // next epoch number to open (rank 0)
	epoch     int64 // epoch currently active (all ranks)
	lastGood  int64 // newest committed epoch

	// Quiescence-detection state. Rank 0 collects per-rank (sent, recv)
	// data-message counters round by round; two consecutive identical,
	// globally balanced rounds prove no data message is in flight.
	round         int              // current counter round (rank 0)
	pendingRound  int              // newest round this rank must report for
	reportedRound int              // newest round this rank has reported
	cutAsked      bool             // CkptCut received, snapshot due
	cutSent       bool             // rank 0: cut already broadcast
	cur, prev     map[int][2]int64 // per-rank (sent, recv) this/last round

	// doneRecv counts Done reports received over the wire (rank 0), so
	// the balance counters cover the termination protocol's traffic too.
	doneRecv int64
	// held parks non-collective messages that arrive while the cut's
	// commit collectives own the receive path; they are delivered after
	// the epoch ends.
	held []msg.Message

	pauseStart time.Time
	// scanPush/scanPop hold the first pass of the two-pass inbox scan
	// that establishes local quiescence.
	scanPush, scanPop []int64

	// metrics
	epochs, failed, bytes, writeNanos, pauseNanos int64
}

// kickNow wakes the dispatcher without blocking (the channel holds one
// pending kick; more carry no extra information).
func (ck *ckptRun) kickNow() {
	select {
	case ck.kick <- struct{}{}:
	default:
	}
}

// ckptNoteInit counts one initiated node and kicks the dispatcher when
// the count alone crosses the trigger (the authoritative check, which
// also includes received-message counts, runs on the dispatcher).
func (e *engine) ckptNoteInit() {
	ck := e.ck
	v := atomic.AddInt64(&ck.initiated, 1)
	if v >= atomic.LoadInt64(&ck.nextTrigger) && atomic.LoadInt32(&ck.phase) == ckIdle {
		ck.kickNow()
	}
}

// ckptMetric is rank 0's monotone progress measure: initiated local
// nodes plus received data messages. The received term keeps epochs
// firing after rank 0 finishes generating while other ranks still run.
func (e *engine) ckptMetric() int64 {
	c := e.cm.Counters()
	return atomic.LoadInt64(&e.ck.initiated) + c.RequestsRecv + c.ResolvedRecv
}

// ckptBegin (rank 0) opens a new epoch: pause generation everywhere,
// then detect global quiescence via counter rounds.
func (e *engine) ckptBegin() error {
	ck := e.ck
	ck.epoch = ck.epochNext
	ck.epochNext++
	if ck.every > 0 {
		atomic.StoreInt64(&ck.nextTrigger, e.ckptMetric()+ck.every)
	}
	ck.round = 1
	ck.pendingRound = 1
	ck.reportedRound = 0
	ck.cutAsked = false
	ck.cutSent = false
	ck.cur = make(map[int][2]int64, e.p)
	ck.prev = nil
	ck.pauseStart = time.Now()
	atomic.StoreInt32(&ck.phase, ckPaused)
	for r := 1; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptBegin, 1, ck.epoch, 0)); err != nil {
			return err
		}
	}
	return nil
}

// ckptOnMsg handles one received checkpoint-protocol message.
func (e *engine) ckptOnMsg(m msg.Message) error {
	ck := e.ck
	op := msg.CkptOp(m.E)
	if ck == nil {
		return fmt.Errorf("core: rank %d received checkpoint message (op %d) with checkpointing disabled", e.rank, op)
	}
	switch op {
	case msg.CkptBegin:
		if e.rank == 0 {
			return fmt.Errorf("core: rank 0 received checkpoint begin")
		}
		if atomic.LoadInt32(&ck.phase) != ckIdle {
			return fmt.Errorf("core: checkpoint begin for epoch %d while epoch %d active", m.K, ck.epoch)
		}
		ck.epoch = m.K
		ck.pendingRound = int(m.L)
		ck.reportedRound = 0
		ck.cutAsked = false
		ck.pauseStart = time.Now()
		atomic.StoreInt32(&ck.phase, ckPaused)
	case msg.CkptProbe:
		ck.pendingRound = int(m.L)
	case msg.CkptReport:
		if e.rank != 0 {
			return fmt.Errorf("core: rank %d received checkpoint report", e.rank)
		}
		if int(m.L) != ck.round {
			return fmt.Errorf("core: checkpoint report for round %d in round %d", m.L, ck.round)
		}
		ck.cur[int(m.T)] = [2]int64{m.K, m.V}
	case msg.CkptCut:
		ck.cutAsked = true
	default:
		return fmt.Errorf("core: unknown checkpoint op %d", op)
	}
	return nil
}

// ckptBalance returns this rank's cumulative data-message (sent, recv)
// counters, including the termination protocol's Done reports — any
// message type that can be in flight between ranks mid-run. (Stop is
// excluded: it is deferred while an epoch is active, so it is never in
// flight during one.)
func (e *engine) ckptBalance() (sent, recv int64) {
	c := e.cm.Counters()
	sent = c.RequestsSent + c.ResolvedSent + c.PublishSent
	recv = c.RequestsRecv + c.ResolvedRecv + c.PublishRecv
	done := false
	if e.concurrent {
		// Concurrent done reports always travel the wire (rank 0
		// self-sends), so the latch counts for every rank.
		done = atomic.LoadInt32(&e.doneSent) == 1
		if done {
			sent++
		}
	} else if e.doneFlag {
		done = true
		if e.rank != 0 {
			// Single-worker rank 0 short-circuits its own report; only
			// other ranks' reports travel.
			sent++
		}
	}
	if e.hub != nil {
		// Fences go out with the done report — to every peer, rank 0's
		// included — and can be in flight while later epochs quiesce.
		if done {
			sent += int64(e.p - 1)
		}
		recv += int64(e.fencesRecv)
	}
	recv += e.ck.doneRecv
	return sent, recv
}

// ckptQuiescentNow reports whether this rank is locally quiescent: every
// worker parked on an empty inbox, with no push or pop in between two
// scans (the counters are monotone, so equality across both passes
// proves no message moved while we looked). The single-worker loop is
// quiescent by construction whenever it runs the protocol.
func (e *engine) ckptQuiescentNow() bool {
	if !e.concurrent {
		return true
	}
	ck := e.ck
	if len(ck.scanPush) < e.nw {
		ck.scanPush = make([]int64, e.nw)
		ck.scanPop = make([]int64, e.nw)
	}
	for pass := 0; pass < 2; pass++ {
		for i, w := range e.workers {
			parked, empty, pushes, pops := w.inbox.scanState()
			if !parked || !empty {
				return false
			}
			if pass == 0 {
				ck.scanPush[i], ck.scanPop[i] = pushes, pops
			} else if ck.scanPush[i] != pushes || ck.scanPop[i] != pops {
				return false
			}
		}
	}
	return true
}

// ckptReport sends this rank's counter report for the pending round.
// Rank 0 reports to itself over the wire rather than recording directly:
// every round advance then costs a real receive, which keeps the
// coordinator returning to the transport between rounds so in-flight
// traffic (the very thing the rounds are waiting out) gets delivered
// instead of the rounds spinning to the bound against a stale balance.
func (e *engine) ckptReport() error {
	ck := e.ck
	ck.reportedRound = ck.pendingRound
	sent, recv := e.ckptBalance()
	return e.cm.SendNow(0, msg.Ckpt(e.rank, msg.CkptReport, ck.reportedRound, sent, recv))
}

// balancedStable reports whether the current round matches the previous
// one rank for rank and the global sent/recv totals agree — the
// two-consecutive-identical-balanced-rounds criterion for global
// quiescence.
func (ck *ckptRun) balancedStable(p int) bool {
	if ck.prev == nil {
		return false
	}
	var sent, recv int64
	for r := 0; r < p; r++ {
		cur, ok := ck.cur[r]
		if !ok {
			return false
		}
		if prev, ok := ck.prev[r]; !ok || prev != cur {
			return false
		}
		sent += cur[0]
		recv += cur[1]
	}
	return sent == recv
}

// ckptEvaluate (rank 0) advances the quiescence detection once all
// ranks have reported the current round: either declare the cut or
// start another round. Returns whether it made progress.
func (e *engine) ckptEvaluate() (bool, error) {
	ck := e.ck
	if ck.cutSent || len(ck.cur) < e.p {
		return false, nil
	}
	if ck.round >= 2 && ck.balancedStable(e.p) {
		// Global quiescence. The cut goes to every rank including rank
		// 0 itself (a transport self-send) so all ranks process it
		// uniformly on their receive path.
		for r := 0; r < e.p; r++ {
			if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptCut, ck.round, ck.epoch, 0)); err != nil {
				return false, err
			}
		}
		ck.cutSent = true
		return true, nil
	}
	if ck.round >= ckptMaxRounds {
		return false, fmt.Errorf("core: checkpoint epoch %d failed to quiesce after %d rounds (cur %v, prev %v)",
			ck.epoch, ck.round, ck.cur, ck.prev)
	}
	ck.prev = ck.cur
	ck.cur = make(map[int][2]int64, e.p)
	ck.round++
	// The probe goes to rank 0 itself as well (see ckptReport): its next
	// report is then paced by the receive path like everyone else's.
	for r := 0; r < e.p; r++ {
		if err := e.cm.SendNow(r, msg.Ckpt(e.rank, msg.CkptProbe, ck.round, ck.epoch, 0)); err != nil {
			return false, err
		}
	}
	return true, nil
}

// ckptStep runs as much of the checkpoint protocol as can proceed
// without receiving: open a due epoch (rank 0), report quiescence,
// evaluate rounds, execute a requested cut. The coordinator calls it
// once per receive-loop iteration.
func (e *engine) ckptStep() error {
	ck := e.ck
	if ck == nil {
		return nil
	}
	if e.rank == 0 && ck.every > 0 && !e.stopped &&
		atomic.LoadInt32(&ck.phase) == ckIdle &&
		e.ckptMetric() >= atomic.LoadInt64(&ck.nextTrigger) {
		if err := e.ckptBegin(); err != nil {
			return err
		}
	}
	if atomic.LoadInt32(&ck.phase) != ckPaused {
		return nil
	}
	for {
		progressed := false
		if ck.reportedRound < ck.pendingRound && e.ckptQuiescentNow() {
			if err := e.ckptReport(); err != nil {
				return err
			}
			progressed = true
		}
		if e.rank == 0 {
			p, err := e.ckptEvaluate()
			if err != nil {
				return err
			}
			progressed = progressed || p
		}
		if ck.cutAsked {
			ck.cutAsked = false
			return e.ckptCut()
		}
		if !progressed {
			return nil
		}
	}
}

// ckptFilter splits a received batch while commit collectives own the
// receive path: collective messages pass through, everything else is
// held (copied — the input aliases comm's reused scratch) for delivery
// after the epoch ends.
func (e *engine) ckptFilter(ms []msg.Message) []msg.Message {
	colls := ms[:0]
	for _, m := range ms {
		if m.Kind == msg.KindColl {
			colls = append(colls, m)
		} else {
			e.ck.held = append(e.ck.held, m)
		}
	}
	return colls
}

// ckptFlushHeld delivers the messages parked during the cut's commit
// collectives through the normal receive path.
func (e *engine) ckptFlushHeld() error {
	ck := e.ck
	if len(ck.held) == 0 {
		return nil
	}
	held := ck.held
	ck.held = nil
	if e.concurrent {
		return e.deliver(held)
	}
	for _, m := range held {
		if err := e.handleSingle(m); err != nil {
			return err
		}
	}
	if w := e.workers[0]; w.err != nil {
		return w.err
	}
	return e.cm.FlushAll()
}

// ckptCut executes a declared cut: write the snapshot, vote on the
// commit, prune or discard, and resume generation. Every rank is
// globally quiescent here, so the snapshots form a consistent cut.
func (e *engine) ckptCut() error {
	ck := e.ck
	// Streamed runs make the shard prefix durable first: the snapshot's
	// sink mark must name bytes that are already on disk, or a resume
	// could truncate to an offset the kill never flushed. A cut failure
	// abandons the epoch exactly like a snapshot-write failure — and
	// skips the write, so no snapshot with a dangling mark ever exists.
	var werr error
	var size int64
	var mark *ckpt.SinkMark
	if e.stream != nil {
		m, err := e.stream.Cut()
		if err != nil {
			werr = err
		} else {
			mark = &ckpt.SinkMark{Offset: m.Offset, Blocks: m.Blocks, Edges: m.Edges}
		}
	}
	if werr == nil {
		snap := e.buildSnapshot()
		snap.Sink = mark
		t0 := time.Now()
		_, size, werr = ckptWrite(ck.dir, snap)
		ck.writeNanos += time.Since(t0).Nanoseconds()
	}

	// Commit vote: all-or-nothing, so ranks never disagree about the
	// newest committed epoch (modulo later file corruption, which
	// resume detects via CRC and falls back across).
	ok := int64(1)
	if werr != nil {
		ok = 0
	}
	votes, err := e.seq.Gather(ok)
	if err != nil {
		return err
	}
	commit := int64(1)
	if e.rank == 0 {
		for _, v := range votes {
			if v != 1 {
				commit = 0
			}
		}
	}
	commit, err = e.seq.Broadcast(commit)
	if err != nil {
		return err
	}
	if commit == 1 {
		ck.lastGood = ck.epoch
		ck.epochs++
		ck.bytes += size
		if err := ckptPrune(ck.dir, e.rank, ck.keep); err != nil {
			return err
		}
	} else {
		// Some rank failed to write (e.g. disk full): the epoch is
		// abandoned, the run continues, and this rank's own file — if
		// it made it to disk — is removed so resume never sees a
		// partial epoch.
		ck.failed++
		if werr == nil {
			ckptRemove(ck.dir, e.rank, ck.epoch)
		}
	}

	// Resume: unpause, wake the workers, release held traffic, retry
	// the stop broadcast the pause may have deferred.
	atomic.StoreInt32(&ck.phase, ckIdle)
	ck.pauseNanos += time.Since(ck.pauseStart).Nanoseconds()
	if e.rank == 0 && ck.every > 0 {
		atomic.StoreInt64(&ck.nextTrigger, e.ckptMetric()+ck.every)
	}
	if e.concurrent {
		resume := []msg.Message{{Kind: kindCkptResume}}
		for _, w := range e.workers {
			if !w.inbox.pushBatch(resume) {
				return e.takeErr()
			}
		}
	}
	if err := e.ckptFlushHeld(); err != nil {
		return err
	}
	if err := e.cm.FlushAll(); err != nil {
		return err
	}
	if e.rank == 0 {
		return e.maybeBroadcastStop()
	}
	return nil
}

// ckptServe drives the single-worker loop through an active epoch:
// alternate protocol steps with blocking receives until the cut
// completes and generation may resume.
func (e *engine) ckptServe() error {
	for atomic.LoadInt32(&e.ck.phase) != ckIdle {
		if err := e.ckptStep(); err != nil {
			return err
		}
		if atomic.LoadInt32(&e.ck.phase) == ckIdle {
			return nil
		}
		if err := e.drainSingle(true); err != nil {
			return err
		}
	}
	return nil
}
