// Package partition implements the node-partitioning schemes of the paper
// (Section 3.5, Appendix A): uniform consecutive (UCP), linear consecutive
// (LCP — the paper's arithmetic-progression approximation to the exact
// nonlinear balance equation, Eqn 10), round-robin (RRP), and the exact
// numerical solution of Eqn 10 (ExactCP) used to validate LCP (Figure 3).
//
// A Scheme answers the three questions Appendix A poses for every scheme:
// the size of each partition, the set of nodes in each partition, and —
// Criterion A of Section 3.5 — the owner of a given node in O(1) (O(log P)
// for ExactCP, which is why the paper replaces it with LCP).
package partition

import (
	"fmt"
	"math"

	"pagen/internal/stats"
)

// Scheme assigns each node in [0, n) to one of P partitions.
type Scheme interface {
	// Name returns the scheme's short name (UCP, LCP, RRP, ExactCP).
	Name() string
	// P returns the number of partitions.
	P() int
	// N returns the number of nodes.
	N() int64
	// Owner returns the partition owning node u. It panics if u is
	// outside [0, N()).
	Owner(u int64) int
	// Size returns the number of nodes in partition rank.
	Size(rank int) int64
	// ForEach calls fn for every node of partition rank in increasing
	// node order.
	ForEach(rank int, fn func(u int64))
	// Index returns the position of node u within partition rank's
	// ForEach order. It panics if u is not owned by rank. The parallel
	// engine uses it to map nodes to local attachment-slot storage.
	Index(rank int, u int64) int64
	// NodeAt is the inverse of Index: the node at position idx of
	// partition rank's ForEach order. It panics if idx is outside
	// [0, Size(rank)). The engine's resumable generation loops iterate
	// with a cursor through NodeAt instead of ForEach so a checkpoint
	// can pause and restart them at any position.
	NodeAt(rank int, idx int64) int64
}

// Consecutive is implemented by schemes whose partitions are contiguous
// node ranges.
type Consecutive interface {
	Scheme
	// Range returns the half-open node interval [lo, hi) of partition rank.
	Range(rank int) (lo, hi int64)
}

// DefaultB is the default value of the constant b = 1 + c in the paper's
// load expression (Section 3.5.1): one unit of message-processing cost
// plus c = 1 unit of fixed per-node cost.
const DefaultB = 2.0

// Kind names a partitioning scheme for construction from flags/config.
type Kind int

const (
	// KindUCP is uniform consecutive partitioning.
	KindUCP Kind = iota
	// KindLCP is linear consecutive partitioning (the paper's
	// arithmetic-progression approximation of Eqn 10).
	KindLCP
	// KindRRP is round-robin partitioning.
	KindRRP
	// KindExactCP is the exact numerical solution of Eqn 10; it violates
	// the paper's Criterion A (no constant-time owner lookup) and exists
	// for Figure 3 and as the LCP calibration source.
	KindExactCP
)

// String returns the scheme's short name.
func (k Kind) String() string {
	switch k {
	case KindUCP:
		return "UCP"
	case KindLCP:
		return "LCP"
	case KindRRP:
		return "RRP"
	case KindExactCP:
		return "ExactCP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a scheme name (case-sensitive short form).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "UCP", "ucp":
		return KindUCP, nil
	case "LCP", "lcp":
		return KindLCP, nil
	case "RRP", "rrp":
		return KindRRP, nil
	case "ExactCP", "exactcp", "exact":
		return KindExactCP, nil
	default:
		return 0, fmt.Errorf("partition: unknown scheme %q (want UCP, LCP, RRP or ExactCP)", s)
	}
}

// New constructs a scheme of the given kind for n nodes and p partitions.
// LCP and ExactCP use the default load constant b = DefaultB.
func New(kind Kind, n int64, p int) (Scheme, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: n = %d, want >= 1", n)
	}
	if p < 1 {
		return nil, fmt.Errorf("partition: p = %d, want >= 1", p)
	}
	switch kind {
	case KindUCP:
		return NewUCP(n, p), nil
	case KindLCP:
		return NewLCP(n, p, DefaultB), nil
	case KindRRP:
		return NewRRP(n, p), nil
	case KindExactCP:
		return NewExactCP(n, p, DefaultB), nil
	default:
		return nil, fmt.Errorf("partition: unknown kind %v", kind)
	}
}

func checkNode(n int64, u int64) {
	if u < 0 || u >= n {
		panic(fmt.Sprintf("partition: node %d outside [0,%d)", u, n))
	}
}

func checkRank(p int, rank int) {
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("partition: rank %d outside [0,%d)", rank, p))
	}
}

// ---------------------------------------------------------------------------
// UCP — Appendix A.1

// UCP is uniform consecutive partitioning: B = ceil(n/P) nodes per
// partition, partition i holding [iB, (i+1)B) clamped to n.
type UCP struct {
	n int64
	p int
	b int64 // block size ceil(n/p)
}

// NewUCP returns a uniform consecutive partitioning of n nodes into p parts.
func NewUCP(n int64, p int) *UCP {
	return &UCP{n: n, p: p, b: (n + int64(p) - 1) / int64(p)}
}

// Name implements Scheme.
func (u *UCP) Name() string { return "UCP" }

// P implements Scheme.
func (u *UCP) P() int { return u.p }

// N implements Scheme.
func (u *UCP) N() int64 { return u.n }

// Owner implements Scheme: rank = floor(u / B).
func (u *UCP) Owner(node int64) int {
	checkNode(u.n, node)
	return int(node / u.b)
}

// Range implements Consecutive.
func (u *UCP) Range(rank int) (lo, hi int64) {
	checkRank(u.p, rank)
	lo = int64(rank) * u.b
	hi = lo + u.b
	if lo > u.n {
		lo = u.n
	}
	if hi > u.n {
		hi = u.n
	}
	return lo, hi
}

// Size implements Scheme.
func (u *UCP) Size(rank int) int64 {
	lo, hi := u.Range(rank)
	return hi - lo
}

// ForEach implements Scheme.
func (u *UCP) ForEach(rank int, fn func(int64)) {
	lo, hi := u.Range(rank)
	for t := lo; t < hi; t++ {
		fn(t)
	}
}

// Index implements Scheme.
func (u *UCP) Index(rank int, node int64) int64 { return consecutiveIndex(u, rank, node) }

// NodeAt implements Scheme.
func (u *UCP) NodeAt(rank int, idx int64) int64 { return consecutiveNodeAt(u, rank, idx) }

// ---------------------------------------------------------------------------
// RRP — Appendix A.3

// RRP is round-robin partitioning: node u belongs to partition u mod P.
type RRP struct {
	n int64
	p int
}

// NewRRP returns a round-robin partitioning of n nodes into p parts.
func NewRRP(n int64, p int) *RRP {
	return &RRP{n: n, p: p}
}

// Name implements Scheme.
func (r *RRP) Name() string { return "RRP" }

// P implements Scheme.
func (r *RRP) P() int { return r.p }

// N implements Scheme.
func (r *RRP) N() int64 { return r.n }

// Owner implements Scheme: rank = u mod P.
func (r *RRP) Owner(node int64) int {
	checkNode(r.n, node)
	return int(node % int64(r.p))
}

// Size implements Scheme: ceil((n - rank) / P).
func (r *RRP) Size(rank int) int64 {
	checkRank(r.p, rank)
	if int64(rank) >= r.n {
		return 0
	}
	return (r.n - int64(rank) + int64(r.p) - 1) / int64(r.p)
}

// ForEach implements Scheme: nodes rank, rank+P, rank+2P, ...
func (r *RRP) ForEach(rank int, fn func(int64)) {
	checkRank(r.p, rank)
	for t := int64(rank); t < r.n; t += int64(r.p) {
		fn(t)
	}
}

// Index implements Scheme: node rank + j*P has index j.
func (r *RRP) Index(rank int, node int64) int64 {
	checkNode(r.n, node)
	if node%int64(r.p) != int64(rank) {
		panic(fmt.Sprintf("partition: node %d not owned by rank %d", node, rank))
	}
	return (node - int64(rank)) / int64(r.p)
}

// NodeAt implements Scheme: index j maps to node rank + j*P.
func (r *RRP) NodeAt(rank int, idx int64) int64 {
	checkRank(r.p, rank)
	node := int64(rank) + idx*int64(r.p)
	if idx < 0 || node >= r.n {
		panic(fmt.Sprintf("partition: index %d outside rank %d's [0,%d)", idx, rank, r.Size(rank)))
	}
	return node
}

// ---------------------------------------------------------------------------
// Exact consecutive partitioning — numerical solution of Eqn 10

// loadPrefix returns W(e) = sum_{k=0}^{e-1} w(k) where node k's expected
// load is w(k) = (H_{n-1} - H_k) + b: the Lemma 3.4 expected incoming
// request messages plus the constant per-node cost. This is the load
// function of Section 3.5.1 whose equalisation is Eqn 10.
func loadPrefix(n int64, b float64, e int64) float64 {
	if e <= 0 {
		return 0
	}
	hn1 := stats.Harmonic(n - 1)
	// sum_{k=0}^{e-1} H_k = sum_{k=1}^{e-1} H_k = e*H_{e-1} - (e-1).
	sumH := float64(e)*stats.Harmonic(e-1) - float64(e-1)
	return float64(e)*(hn1+b) - sumH
}

// ExactCP is consecutive partitioning with cut points solving Eqn 10
// numerically: each partition receives an equal share of the total
// expected load. Owner lookup is a binary search over the P cut points,
// which is exactly the Criterion-A violation that motivates LCP.
type ExactCP struct {
	n    int64
	p    int
	b    float64
	cuts []int64 // len p+1; cuts[0]=0, cuts[p]=n; partition i = [cuts[i], cuts[i+1])
}

// NewExactCP numerically solves Eqn 10 for n nodes, p partitions and load
// constant b, by binary-searching each cut point on the monotone load
// prefix function.
func NewExactCP(n int64, p int, b float64) *ExactCP {
	e := &ExactCP{n: n, p: p, b: b, cuts: make([]int64, p+1)}
	total := loadPrefix(n, b, n)
	e.cuts[0] = 0
	e.cuts[p] = n
	for i := 1; i < p; i++ {
		target := total * float64(i) / float64(p)
		// Smallest cut with W(cut) >= target, at least the previous cut.
		lo, hi := e.cuts[i-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if loadPrefix(n, b, mid) >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		e.cuts[i] = lo
	}
	return e
}

// Name implements Scheme.
func (e *ExactCP) Name() string { return "ExactCP" }

// P implements Scheme.
func (e *ExactCP) P() int { return e.p }

// N implements Scheme.
func (e *ExactCP) N() int64 { return e.n }

// Cuts returns a copy of the P+1 cut points (cuts[i] is the first node of
// partition i; cuts[P] = n).
func (e *ExactCP) Cuts() []int64 {
	return append([]int64(nil), e.cuts...)
}

// Owner implements Scheme via binary search over the cut points.
func (e *ExactCP) Owner(node int64) int {
	checkNode(e.n, node)
	lo, hi := 0, e.p-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cuts[mid+1] > node {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Range implements Consecutive.
func (e *ExactCP) Range(rank int) (lo, hi int64) {
	checkRank(e.p, rank)
	return e.cuts[rank], e.cuts[rank+1]
}

// Size implements Scheme.
func (e *ExactCP) Size(rank int) int64 {
	lo, hi := e.Range(rank)
	return hi - lo
}

// ForEach implements Scheme.
func (e *ExactCP) ForEach(rank int, fn func(int64)) {
	lo, hi := e.Range(rank)
	for t := lo; t < hi; t++ {
		fn(t)
	}
}

// Index implements Scheme.
func (e *ExactCP) Index(rank int, node int64) int64 { return consecutiveIndex(e, rank, node) }

// NodeAt implements Scheme.
func (e *ExactCP) NodeAt(rank int, idx int64) int64 { return consecutiveNodeAt(e, rank, idx) }

// ---------------------------------------------------------------------------
// LCP — Appendix A.2

// LCP is linear consecutive partitioning: partition sizes follow the
// arithmetic progression a, a+d, a+2d, ..., the paper's linear
// approximation of the exact Eqn-10 solution. The slope d is calibrated
// from two points of the exact solution (the sizes of the first and last
// exact partitions), and a = n/P - (P-1)d/2 so the sizes sum to n
// (Eqn 12). Owner lookup is the closed-form quadratic of Appendix A.2.
type LCP struct {
	n int64
	p int
	a float64
	d float64
	// bounds[i] is the first node of partition i (bounds[p] = n),
	// obtained by rounding the progression's prefix sums; kept so that
	// Size/Range/Owner agree exactly on integers.
	bounds []int64
}

// NewLCP builds the paper's LCP scheme for n nodes, p partitions and load
// constant b.
func NewLCP(n int64, p int, b float64) *LCP {
	l := &LCP{n: n, p: p}
	if p == 1 {
		l.a, l.d = float64(n), 0
		l.bounds = []int64{0, n}
		return l
	}
	// Calibrate from the exact solution as the paper prescribes:
	// the first partition's size n_1 and the last's n - n_{P-1}.
	exact := NewExactCP(n, p, b)
	n1 := float64(exact.cuts[1])
	last := float64(n - exact.cuts[p-1])
	l.d = (last - n1) / float64(p-1)
	l.a = float64(n)/float64(p) - float64(p-1)*l.d/2
	if l.a < 0 {
		// Degenerate when p is large relative to n: fall back to a flat
		// progression so every size stays non-negative.
		l.a = float64(n) / float64(p)
		l.d = 0
	}
	l.bounds = make([]int64, p+1)
	for i := 1; i < p; i++ {
		// Prefix sum of the progression: i*a + d*i*(i-1)/2.
		f := float64(i)*l.a + l.d*float64(i)*float64(i-1)/2
		bd := int64(math.Round(f))
		if bd < l.bounds[i-1] {
			bd = l.bounds[i-1]
		}
		if bd > n {
			bd = n
		}
		l.bounds[i] = bd
	}
	l.bounds[p] = n
	return l
}

// Name implements Scheme.
func (l *LCP) Name() string { return "LCP" }

// P implements Scheme.
func (l *LCP) P() int { return l.p }

// N implements Scheme.
func (l *LCP) N() int64 { return l.n }

// Params returns the progression parameters (a, d) of Appendix A.2.
func (l *LCP) Params() (a, d float64) { return l.a, l.d }

// Owner implements Scheme. It first evaluates the closed-form quadratic of
// Appendix A.2 — i = floor((-(2a-d) + sqrt((2a-d)^2 + 8du)) / 2d) — then
// corrects by at most a couple of steps for the integer rounding of the
// actual boundaries, keeping the lookup O(1).
func (l *LCP) Owner(node int64) int {
	checkNode(l.n, node)
	var i int
	if l.d == 0 {
		if l.a > 0 {
			i = int(float64(node) / l.a)
		}
	} else {
		u := float64(node)
		twoAmD := 2*l.a - l.d
		disc := twoAmD*twoAmD + 8*l.d*u
		if disc < 0 {
			disc = 0
		}
		i = int(math.Floor((-twoAmD + math.Sqrt(disc)) / (2 * l.d)))
	}
	if i < 0 {
		i = 0
	}
	if i > l.p-1 {
		i = l.p - 1
	}
	// Correct for integer rounding of the boundaries.
	for i > 0 && node < l.bounds[i] {
		i--
	}
	for i < l.p-1 && node >= l.bounds[i+1] {
		i++
	}
	return i
}

// Range implements Consecutive.
func (l *LCP) Range(rank int) (lo, hi int64) {
	checkRank(l.p, rank)
	return l.bounds[rank], l.bounds[rank+1]
}

// Size implements Scheme.
func (l *LCP) Size(rank int) int64 {
	lo, hi := l.Range(rank)
	return hi - lo
}

// ForEach implements Scheme.
func (l *LCP) ForEach(rank int, fn func(int64)) {
	lo, hi := l.Range(rank)
	for t := lo; t < hi; t++ {
		fn(t)
	}
}

// Index implements Scheme.
func (l *LCP) Index(rank int, node int64) int64 { return consecutiveIndex(l, rank, node) }

// NodeAt implements Scheme.
func (l *LCP) NodeAt(rank int, idx int64) int64 { return consecutiveNodeAt(l, rank, idx) }

// consecutiveIndex implements Index for contiguous-range schemes.
func consecutiveIndex(c Consecutive, rank int, node int64) int64 {
	checkNode(c.N(), node)
	lo, hi := c.Range(rank)
	if node < lo || node >= hi {
		panic(fmt.Sprintf("partition: node %d not owned by rank %d", node, rank))
	}
	return node - lo
}

// consecutiveNodeAt implements NodeAt for contiguous-range schemes.
func consecutiveNodeAt(c Consecutive, rank int, idx int64) int64 {
	lo, hi := c.Range(rank)
	if idx < 0 || lo+idx >= hi {
		panic(fmt.Sprintf("partition: index %d outside rank %d's [0,%d)", idx, rank, hi-lo))
	}
	return lo + idx
}

// ---------------------------------------------------------------------------

// ExpectedIncomingLoad returns Lemma 3.4's expected number of request
// messages received for node k in an n-node, probability-p run:
// E[M_k] = (1-p)(H_{n-1} - H_k).
func ExpectedIncomingLoad(n, k int64, p float64) float64 {
	return (1 - p) * stats.HarmonicDiff(k, n-1)
}

// HubPrefixAutoFrac is the fraction of the total expected request mass
// the auto-sized hub prefix covers (HubPrefixSize's frac when callers
// use the default sizing). 0.1 is the empirical knee where the cache
// still wins on bytes per edge, not just on messages: the replication
// cost of a publish grows linearly in H while the elided request mass
// grows only harmonically, and roughly half the potential replica hits
// race the publish that would serve them (hub nodes draw most of their
// queries early in the run, right when they are being published), so
// past this point each extra replica slot costs more publish bytes
// than it saves in round trips (sweep in results/BENCH_hubcache.json).
// Callers who value message count over bytes can fix a larger H
// explicitly; output is identical at every setting.
const HubPrefixAutoFrac = 0.1

// HubPrefixMaxSlots caps the auto-sized hub-prefix replica at H·x
// attachment slots (8 bytes each), so auto-sizing at very large n cannot
// quietly allocate an unbounded per-rank replica.
const HubPrefixMaxSlots = 1 << 24

// hubPrefixRefRanks is the rank count HubPrefixAutoFrac was tuned at.
const hubPrefixRefRanks = 4

// HubPrefixAutoSize returns the default hub-prefix length for a run of
// the given rank count. The covered mass fraction shrinks inversely
// with ranks past the tuning point: each publish fans out to ~p-1
// peers, so the replication cost of a slot grows linearly in p while
// the request mass it elides saturates, moving the break-even prefix
// length down as the cluster grows.
func HubPrefixAutoSize(n int64, x, ranks int) int64 {
	frac := HubPrefixAutoFrac
	if ranks > hubPrefixRefRanks {
		frac = frac * hubPrefixRefRanks / float64(ranks)
	}
	return HubPrefixSize(n, x, frac)
}

// hubMass returns the expected request mass of the length-h prefix,
// Σ_{k=0}^{h-1} (H_{n-1} - H_k) = h·(H_{n-1} - H_{h-1}) + h - 1, using
// the same prefix-sum identity as loadPrefix. The (1-p) factor of Lemma
// 3.4 scales numerator and denominator alike, so mass fractions are
// independent of p. The total mass (h = n) telescopes to n - 1.
func hubMass(n, h int64) float64 {
	if h <= 0 {
		return 0
	}
	return float64(h)*stats.HarmonicDiff(h-1, n-1) + float64(h) - 1
}

// HubPrefixSize returns the auto-sized hub-prefix length: the smallest H
// such that nodes [0, H) account for at least frac of the total expected
// request mass Σ_k E[M_k] (Lemma 3.4) — the share of cross-rank lookups
// a replicated prefix of that length can elide. The result is clamped to
// [0, n] and capped so the replica holds at most HubPrefixMaxSlots
// attachment slots (H·x).
func HubPrefixSize(n int64, x int, frac float64) int64 {
	if n <= 1 || x < 1 || frac <= 0 {
		return 0
	}
	h := n
	if frac < 1 {
		target := frac * float64(n-1) // total mass Σ_{k=0}^{n-1}(H_{n-1}-H_k) = n-1
		lo, hi := int64(1), n
		for lo < hi {
			mid := (lo + hi) / 2
			if hubMass(n, mid) >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		h = lo
	}
	if maxH := int64(HubPrefixMaxSlots) / int64(x); h > maxH {
		h = maxH
	}
	return h
}

// ExpectedPartitionLoad returns the total expected per-partition load under
// scheme s with per-node constant b (nodes + expected incoming messages at
// p = 1/2, the paper's Section 3.5.1 load measure), one value per rank.
func ExpectedPartitionLoad(s Scheme, b float64) []float64 {
	n := s.N()
	out := make([]float64, s.P())
	if c, ok := s.(Consecutive); ok {
		for i := 0; i < s.P(); i++ {
			lo, hi := c.Range(i)
			out[i] = loadPrefix(n, b, hi) - loadPrefix(n, b, lo)
		}
		return out
	}
	hn1 := stats.Harmonic(n - 1)
	for i := 0; i < s.P(); i++ {
		sum := 0.0
		s.ForEach(i, func(k int64) {
			sum += hn1 - stats.Harmonic(k) + b
		})
		out[i] = sum
	}
	return out
}
