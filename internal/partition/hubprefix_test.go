package partition

import (
	"math"
	"testing"

	"pagen/internal/stats"
)

// bruteMass computes Σ_{k=0}^{h-1} (H_{n-1} - H_k) term by term.
func bruteMass(n, h int64) float64 {
	sum := 0.0
	for k := int64(0); k < h; k++ {
		sum += stats.HarmonicDiff(k, n-1)
	}
	return sum
}

func TestHubMassMatchesBruteForce(t *testing.T) {
	const n = 5000
	for _, h := range []int64{0, 1, 2, 10, 100, 2500, n} {
		got := hubMass(n, h)
		want := bruteMass(n, h)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("hubMass(%d, %d) = %v, want %v", int64(n), h, got, want)
		}
	}
	// The total mass telescopes to n - 1.
	if got := hubMass(n, n); math.Abs(got-float64(n-1)) > 1e-6*float64(n) {
		t.Errorf("hubMass(n, n) = %v, want %v", got, n-1)
	}
}

func TestHubPrefixSizeCoversTargetFraction(t *testing.T) {
	const n = 1_000_000
	for _, frac := range []float64{0.25, 0.5, HubPrefixAutoFrac, 0.9} {
		h := HubPrefixSize(n, 4, frac)
		if h < 1 || h > n {
			t.Fatalf("frac %v: H = %d outside [1, n]", frac, h)
		}
		total := float64(n - 1)
		if hubMass(n, h)/total < frac {
			t.Errorf("frac %v: H = %d covers only %v of the mass",
				frac, h, hubMass(n, h)/total)
		}
		// Minimality: one node less must fall below the target.
		if h > 1 && hubMass(n, h-1)/total >= frac {
			t.Errorf("frac %v: H = %d not minimal", frac, h)
		}
	}
}

// A heavy-tailed request mass means the prefix covering half the mass is
// a small fraction of the nodes — the whole point of replicating it.
func TestHubPrefixSizeIsSmall(t *testing.T) {
	const n = 1_000_000
	h := HubPrefixSize(n, 4, 0.5)
	if h >= n/2 {
		t.Errorf("H = %d: covering half the mass should need far fewer than half the nodes", h)
	}
}

func TestHubPrefixSizeDegenerate(t *testing.T) {
	if h := HubPrefixSize(1, 4, 0.5); h != 0 {
		t.Errorf("n=1: H = %d, want 0", h)
	}
	if h := HubPrefixSize(100, 4, 0); h != 0 {
		t.Errorf("frac=0: H = %d, want 0", h)
	}
	if h := HubPrefixSize(100, 4, 1); h != 100 {
		t.Errorf("frac=1: H = %d, want n", h)
	}
	if h := HubPrefixSize(100, 0, 0.5); h != 0 {
		t.Errorf("x=0: H = %d, want 0", h)
	}
}

func TestHubPrefixSizeSlotCap(t *testing.T) {
	// frac = 1 would replicate everything; the slot cap must bound it.
	x := 4
	n := int64(HubPrefixMaxSlots) // n·x slots uncapped = 4× the cap
	if h := HubPrefixSize(n, x, 1); h != int64(HubPrefixMaxSlots)/int64(x) {
		t.Errorf("H = %d, want slot cap %d", h, int64(HubPrefixMaxSlots)/int64(x))
	}
}
