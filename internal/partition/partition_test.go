package partition

import (
	"math"
	"testing"
	"testing/quick"

	"pagen/internal/stats"
)

// allSchemes builds one scheme of every kind for (n, p).
func allSchemes(t *testing.T, n int64, p int) []Scheme {
	t.Helper()
	out := make([]Scheme, 0, 4)
	for _, k := range []Kind{KindUCP, KindLCP, KindRRP, KindExactCP} {
		s, err := New(k, n, p)
		if err != nil {
			t.Fatalf("New(%v,%d,%d): %v", k, n, p, err)
		}
		out = append(out, s)
	}
	return out
}

// checkInvariants verifies the three Appendix-A obligations for any scheme:
// sizes sum to n, ForEach enumerates exactly the owned nodes in increasing
// order, and Owner agrees with ForEach.
func checkInvariants(t *testing.T, s Scheme) {
	t.Helper()
	n, p := s.N(), s.P()
	var total int64
	owned := make([]int, n)
	for i := range owned {
		owned[i] = -1
	}
	for rank := 0; rank < p; rank++ {
		var count int64
		prev := int64(-1)
		s.ForEach(rank, func(u int64) {
			if u < 0 || u >= n {
				t.Fatalf("%s: node %d out of range", s.Name(), u)
			}
			if u <= prev {
				t.Fatalf("%s rank %d: nodes not strictly increasing (%d after %d)", s.Name(), rank, u, prev)
			}
			prev = u
			if owned[u] != -1 {
				t.Fatalf("%s: node %d owned by both %d and %d", s.Name(), u, owned[u], rank)
			}
			owned[u] = rank
			if got := s.Owner(u); got != rank {
				t.Fatalf("%s: Owner(%d) = %d, want %d", s.Name(), u, got, rank)
			}
			if got := s.Index(rank, u); got != count {
				t.Fatalf("%s: Index(%d,%d) = %d, want %d", s.Name(), rank, u, got, count)
			}
			count++
		})
		if sz := s.Size(rank); sz != count {
			t.Fatalf("%s rank %d: Size = %d but ForEach yielded %d", s.Name(), rank, sz, count)
		}
		total += count
	}
	if total != n {
		t.Fatalf("%s: sizes sum to %d, want %d", s.Name(), total, n)
	}
	for u, r := range owned {
		if r == -1 {
			t.Fatalf("%s: node %d unowned", s.Name(), u)
		}
	}
	// Consecutive schemes: ranges must tile [0, n).
	if c, ok := s.(Consecutive); ok {
		cursor := int64(0)
		for rank := 0; rank < p; rank++ {
			lo, hi := c.Range(rank)
			if lo != cursor {
				t.Fatalf("%s rank %d: range starts at %d, want %d", s.Name(), rank, lo, cursor)
			}
			if hi < lo {
				t.Fatalf("%s rank %d: inverted range [%d,%d)", s.Name(), rank, lo, hi)
			}
			cursor = hi
		}
		if cursor != n {
			t.Fatalf("%s: ranges end at %d, want %d", s.Name(), cursor, n)
		}
	}
}

func TestInvariantsSmall(t *testing.T) {
	cases := []struct {
		n int64
		p int
	}{
		{1, 1}, {1, 4}, {2, 2}, {7, 3}, {10, 10}, {10, 16},
		{100, 1}, {100, 7}, {1000, 13}, {1000, 160}, {12345, 31},
	}
	for _, c := range cases {
		for _, s := range allSchemes(t, c.n, c.p) {
			checkInvariants(t, s)
		}
	}
}

func TestInvariantsProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int64(nRaw%4000) + 1
		p := int(pRaw%64) + 1
		for _, k := range []Kind{KindUCP, KindLCP, KindRRP, KindExactCP} {
			s, err := New(k, n, p)
			if err != nil {
				return false
			}
			var total int64
			for r := 0; r < p; r++ {
				sz := s.Size(r)
				if sz < 0 {
					return false
				}
				total += sz
			}
			if total != n {
				return false
			}
			// Spot-check owner round trips on a few nodes.
			for _, u := range []int64{0, n / 3, n / 2, n - 1} {
				r := s.Owner(u)
				if r < 0 || r >= p {
					return false
				}
				found := false
				s.ForEach(r, func(v int64) {
					if v == u {
						found = true
					}
				})
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(KindUCP, 0, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(KindUCP, 10, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(Kind(99), 10, 2); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"UCP": KindUCP, "ucp": KindUCP,
		"LCP": KindLCP, "lcp": KindLCP,
		"RRP": KindRRP, "rrp": KindRRP,
		"ExactCP": KindExactCP, "exactcp": KindExactCP, "exact": KindExactCP,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindUCP, KindLCP, KindRRP, KindExactCP} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v failed", k)
		}
	}
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	for _, s := range allSchemes(t, 10, 3) {
		for _, u := range []int64{-1, 10, 100} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s.Owner(%d) did not panic", s.Name(), u)
					}
				}()
				s.Owner(u)
			}()
		}
	}
}

func TestUCPBlocks(t *testing.T) {
	u := NewUCP(10, 3) // B = 4: [0,4) [4,8) [8,10)
	wantSizes := []int64{4, 4, 2}
	for i, w := range wantSizes {
		if got := u.Size(i); got != w {
			t.Errorf("Size(%d) = %d, want %d", i, got, w)
		}
	}
	if u.Owner(3) != 0 || u.Owner(4) != 1 || u.Owner(9) != 2 {
		t.Error("UCP owner wrong")
	}
}

func TestUCPMorePartitionsThanNodes(t *testing.T) {
	u := NewUCP(3, 8) // B = 1
	var total int64
	for i := 0; i < 8; i++ {
		total += u.Size(i)
	}
	if total != 3 {
		t.Fatalf("sizes sum to %d", total)
	}
	if u.Size(5) != 0 {
		t.Error("expected empty high partition")
	}
}

func TestRRPStride(t *testing.T) {
	r := NewRRP(11, 4)
	// Partition sizes: ranks 0,1,2 -> 3; rank 3 -> 2.
	want := []int64{3, 3, 3, 2}
	for i, w := range want {
		if got := r.Size(i); got != w {
			t.Errorf("Size(%d) = %d, want %d", i, got, w)
		}
	}
	var got []int64
	r.ForEach(1, func(u int64) { got = append(got, u) })
	wantNodes := []int64{1, 5, 9}
	for i := range wantNodes {
		if got[i] != wantNodes[i] {
			t.Fatalf("rank 1 nodes = %v", got)
		}
	}
	// Paper: size difference between any two partitions is at most 1.
	var min, max int64 = 1 << 62, 0
	for i := 0; i < 4; i++ {
		if s := r.Size(i); s < min {
			min = s
		}
		if s := r.Size(i); s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("RRP size spread %d > 1", max-min)
	}
}

func TestExactCPEqualisesLoad(t *testing.T) {
	n := int64(100000)
	p := 16
	e := NewExactCP(n, p, DefaultB)
	loads := ExpectedPartitionLoad(e, DefaultB)
	if imb := stats.Imbalance(loads); imb > 1.01 {
		t.Fatalf("ExactCP imbalance = %v, want ~1", imb)
	}
	// Lower ranks must hold fewer nodes (low-label nodes are heavier).
	if e.Size(0) >= e.Size(p-1) {
		t.Fatalf("ExactCP size(0)=%d not below size(last)=%d", e.Size(0), e.Size(p-1))
	}
}

func TestExactCPCutsMonotone(t *testing.T) {
	e := NewExactCP(50000, 32, DefaultB)
	cuts := e.Cuts()
	if cuts[0] != 0 || cuts[len(cuts)-1] != 50000 {
		t.Fatalf("cut endpoints wrong: %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			t.Fatalf("cuts not monotone at %d: %v", i, cuts)
		}
	}
}

func TestLCPSizesIncreaseLinearly(t *testing.T) {
	n := int64(100000)
	p := 16
	l := NewLCP(n, p, DefaultB)
	a, d := l.Params()
	if d <= 0 {
		t.Fatalf("LCP slope d = %v, want > 0", d)
	}
	if a <= 0 {
		t.Fatalf("LCP intercept a = %v, want > 0", a)
	}
	// Sizes should track a + i*d within rounding.
	for i := 0; i < p; i++ {
		want := a + float64(i)*d
		got := float64(l.Size(i))
		if math.Abs(got-want) > 2 {
			t.Errorf("Size(%d) = %v, progression predicts %v", i, got, want)
		}
	}
}

func TestLCPBalancesBetterThanUCP(t *testing.T) {
	n := int64(100000)
	p := 32
	ucp := ExpectedPartitionLoad(NewUCP(n, p), DefaultB)
	lcp := ExpectedPartitionLoad(NewLCP(n, p, DefaultB), DefaultB)
	iu, il := stats.Imbalance(ucp), stats.Imbalance(lcp)
	// Expected scale (paper Fig 7d): UCP ~2x imbalanced, LCP close to 1
	// with a small wobble from the linear approximation.
	if il >= iu/1.5 {
		t.Fatalf("LCP imbalance %v not clearly better than UCP %v", il, iu)
	}
	if il > 1.3 {
		t.Fatalf("LCP imbalance %v too high", il)
	}
	if iu < 1.8 {
		t.Fatalf("UCP imbalance %v unexpectedly good — load model broken?", iu)
	}
}

func TestRRPBalancesNearPerfectly(t *testing.T) {
	// Appendix A.3: max load difference between two partitions is
	// O(log n) while the total is Omega(n).
	n := int64(100000)
	p := 32
	loads := ExpectedPartitionLoad(NewRRP(n, p), DefaultB)
	min, max, _ := stats.MinMax(loads)
	if max-min > 2*math.Log(float64(n)) {
		t.Fatalf("RRP load spread %v exceeds O(log n) bound", max-min)
	}
}

func TestLCPApproximatesExact(t *testing.T) {
	// Figure 3: LCP boundaries should stay close to the exact Eqn-10
	// solution — within a few percent of n at every rank.
	n := int64(100000)
	p := 16
	e := NewExactCP(n, p, DefaultB)
	l := NewLCP(n, p, DefaultB)
	for i := 0; i < p; i++ {
		elo, _ := e.Range(i)
		llo, _ := l.Range(i)
		if math.Abs(float64(elo-llo)) > 0.05*float64(n) {
			t.Errorf("rank %d: exact cut %d vs LCP cut %d diverge", i, elo, llo)
		}
	}
}

func TestLCPSinglePartition(t *testing.T) {
	l := NewLCP(100, 1, DefaultB)
	if l.Size(0) != 100 {
		t.Fatalf("Size = %d", l.Size(0))
	}
	if l.Owner(57) != 0 {
		t.Fatal("owner wrong")
	}
}

func TestLCPDegenerateManyPartitions(t *testing.T) {
	// p close to n: progression would go negative; must fall back and
	// still satisfy the invariants.
	l := NewLCP(20, 15, DefaultB)
	checkInvariants(t, l)
}

func TestExpectedIncomingLoadMatchesLemma(t *testing.T) {
	n := int64(1000)
	p := 0.5
	for _, k := range []int64{1, 10, 100, 999} {
		got := ExpectedIncomingLoad(n, k, p)
		want := (1 - p) * (stats.Harmonic(n-1) - stats.Harmonic(k))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("load(%d) = %v, want %v", k, got, want)
		}
	}
	// Monotone decreasing in k.
	prev := math.Inf(1)
	for k := int64(1); k < n; k += 37 {
		l := ExpectedIncomingLoad(n, k, p)
		if l > prev {
			t.Fatalf("expected load not decreasing at k=%d", k)
		}
		prev = l
	}
	// Last node receives none.
	if got := ExpectedIncomingLoad(n, n-1, p); got != 0 {
		t.Errorf("load(n-1) = %v, want 0", got)
	}
}

func TestExpectedPartitionLoadConsecutiveVsGeneric(t *testing.T) {
	// The fast consecutive path must agree with the generic per-node sum.
	n := int64(5000)
	u := NewUCP(n, 8)
	fast := ExpectedPartitionLoad(u, DefaultB)
	slow := make([]float64, 8)
	hn1 := stats.Harmonic(n - 1)
	for r := 0; r < 8; r++ {
		u.ForEach(r, func(k int64) {
			slow[r] += hn1 - stats.Harmonic(k) + DefaultB
		})
	}
	for r := range fast {
		if math.Abs(fast[r]-slow[r]) > 1e-6*math.Max(1, slow[r]) {
			t.Errorf("rank %d: fast %v vs slow %v", r, fast[r], slow[r])
		}
	}
}

func BenchmarkOwnerUCP(b *testing.B) {
	s := NewUCP(1_000_000, 768)
	for i := 0; i < b.N; i++ {
		s.Owner(int64(i) % 1_000_000)
	}
}

func BenchmarkOwnerLCP(b *testing.B) {
	s := NewLCP(1_000_000, 768, DefaultB)
	for i := 0; i < b.N; i++ {
		s.Owner(int64(i) % 1_000_000)
	}
}

func BenchmarkOwnerRRP(b *testing.B) {
	s := NewRRP(1_000_000, 768)
	for i := 0; i < b.N; i++ {
		s.Owner(int64(i) % 1_000_000)
	}
}

func BenchmarkOwnerExactCP(b *testing.B) {
	s := NewExactCP(1_000_000, 768, DefaultB)
	for i := 0; i < b.N; i++ {
		s.Owner(int64(i) % 1_000_000)
	}
}

func BenchmarkNewExactCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewExactCP(1_000_000, 768, DefaultB)
	}
}
