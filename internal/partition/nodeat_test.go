package partition

import "testing"

// NodeAt must be the exact inverse of the ForEach enumeration (and of
// Index) for every scheme: the engine's checkpointable generation loops
// walk blocks by cursor through NodeAt, and any divergence from the
// ForEach order the rest of the system assumes would silently reorder
// the output graph.
func TestNodeAtMatchesForEach(t *testing.T) {
	for _, kind := range []Kind{KindUCP, KindRRP, KindExactCP, KindLCP} {
		for _, tc := range []struct {
			n int64
			p int
		}{{1, 1}, {97, 1}, {100, 4}, {101, 4}, {1000, 7}, {64, 64}} {
			s, err := New(kind, tc.n, tc.p)
			if err != nil {
				t.Fatalf("%v n=%d p=%d: %v", kind, tc.n, tc.p, err)
			}
			var total int64
			for r := 0; r < tc.p; r++ {
				var j int64
				s.ForEach(r, func(u int64) {
					if got := s.NodeAt(r, j); got != u {
						t.Fatalf("%s n=%d p=%d: NodeAt(%d, %d) = %d, ForEach yields %d",
							s.Name(), tc.n, tc.p, r, j, got, u)
					}
					if got := s.Index(r, u); got != j {
						t.Fatalf("%s n=%d p=%d: Index(%d, %d) = %d, want %d",
							s.Name(), tc.n, tc.p, r, u, got, j)
					}
					j++
				})
				if j != s.Size(r) {
					t.Fatalf("%s n=%d p=%d rank %d: ForEach yielded %d nodes, Size says %d",
						s.Name(), tc.n, tc.p, r, j, s.Size(r))
				}
				total += j
			}
			if total != tc.n {
				t.Fatalf("%s n=%d p=%d: partitions cover %d nodes", s.Name(), tc.n, tc.p, total)
			}
		}
	}
}
