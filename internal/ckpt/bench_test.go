package ckpt

import (
	"math/rand"
	"testing"
)

// benchSnapshot builds a representative full snapshot: a 1M-slot F
// table with realistic values, a worker shard with a few suspended
// nodes and waiters, and a sink mark.
func benchSnapshot(kind int) *Snapshot {
	rng := rand.New(rand.NewSource(7))
	s := &Snapshot{
		Meta: Meta{N: 250_000, X: 4, P: 0.5, Seed: 42, Ranks: 4, Rank: 1,
			Scheme: "RRP"},
		Epoch:   3,
		NextTag: 17,
		Kind:    kind,
		Workers: []WorkerState{{
			Lo: 0, Hi: 62_500,
			Susp: []SuspRecord{
				{Idx: 100, Edge: 2, RNG: [4]uint64{1, 2, 3, 4}},
				{Idx: 30_000, Edge: 0, RNG: [4]uint64{5, 6, 7, 8}},
			},
			Waiters: []WaiterRecord{{Slot: 12, T: 99, E: 1}, {Slot: 12, T: 120, E: 3}},
		}},
		Stats: Stats{Retries: 5, QueuedWaits: 11, LocalWaits: 7},
		Sink:  &SinkMark{Offset: 1 << 20, Blocks: 16, Edges: 1_000_000},
	}
	const flen = 1_000_000
	if kind == KindDelta {
		s.BaseEpoch = 2
		s.FLen = flen
		// ~2% of the table dirtied in a handful of contiguous ranges —
		// the shape a between-fulls epoch produces.
		vals := make([]int64, 20_000)
		for i := range vals {
			vals[i] = rng.Int63n(flen) - 1
		}
		for i := 0; i < 4; i++ {
			lo := i * 5000
			s.Delta = append(s.Delta, DeltaRange{
				Start:  int64(i * 250_000),
				Values: vals[lo : lo+5000],
			})
		}
	} else {
		s.F = make([]int64, flen)
		for i := range s.F {
			s.F[i] = rng.Int63n(flen) - 1
		}
	}
	return s
}

// BenchmarkEncodeFull measures the background writer's encode step for
// a full snapshot with the pooled Encoder. After the first iteration
// grows the scratch buffer, steady state is zero allocations per epoch.
func BenchmarkEncodeFull(b *testing.B) {
	s := benchSnapshot(KindFull)
	var enc Encoder
	enc.Encode(s) // warm the scratch buffer (the pool's steady state)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(enc.Encode(s)) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkEncodeDelta measures the encode step for an incremental
// delta epoch (~2% dirty) — the common between-fulls case.
func BenchmarkEncodeDelta(b *testing.B) {
	s := benchSnapshot(KindDelta)
	var enc Encoder
	enc.Encode(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(enc.Encode(s)) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// TestEncoderSteadyStateAllocs pins the pooling contract the capture
// pause relies on: once the scratch buffer has grown to the snapshot's
// size, Encode allocates nothing.
func TestEncoderSteadyStateAllocs(t *testing.T) {
	s := benchSnapshot(KindFull)
	var enc Encoder
	enc.Encode(s)
	if avg := testing.AllocsPerRun(5, func() { enc.Encode(s) }); avg > 0 {
		t.Errorf("steady-state Encode allocates %.1f objects per epoch, want 0", avg)
	}
}
