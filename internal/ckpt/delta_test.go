package ckpt

import (
	"os"
	"reflect"
	"testing"
)

// deltaSample builds a delta snapshot on top of base: the returned
// snapshot rewrites the given (start, values) ranges of base's F.
func deltaSample(base *Snapshot, epoch int64, ranges []DeltaRange) *Snapshot {
	s := sample(base.Meta.Rank, epoch)
	s.F = nil
	s.FLen = int64(len(base.F))
	s.Kind = KindDelta
	s.BaseEpoch = base.Epoch
	s.Delta = ranges
	return s
}

// applyRanges computes the expected materialized F by hand.
func applyRanges(f []int64, ranges []DeltaRange) []int64 {
	out := append([]int64(nil), f...)
	for _, r := range ranges {
		copy(out[r.Start:], r.Values)
	}
	return out
}

// A base+delta+delta chain must materialize to exactly the full table
// the writing run held, and every chain member must carry its own
// non-F state (workers, counters) rather than the base's.
func TestDeltaChainMaterialize(t *testing.T) {
	dir := t.TempDir()
	base := sample(2, 4)
	if _, _, err := Write(dir, base); err != nil {
		t.Fatal(err)
	}
	r5 := []DeltaRange{{Start: 1, Values: []int64{10, 11}}}
	d5 := deltaSample(base, 5, r5)
	if _, _, err := Write(dir, d5); err != nil {
		t.Fatal(err)
	}
	r6 := []DeltaRange{{Start: 0, Values: []int64{20}}, {Start: 4, Values: []int64{21, 22}}}
	d6 := deltaSample(base, 6, r6)
	d6.BaseEpoch = 5
	d6.NextTag = 77
	if _, _, err := Write(dir, d6); err != nil {
		t.Fatal(err)
	}

	got, err := Materialize(dir, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantF := applyRanges(applyRanges(base.F, r5), r6)
	if !reflect.DeepEqual(got.F, wantF) {
		t.Fatalf("materialized F = %v, want %v", got.F, wantF)
	}
	if got.Epoch != 6 || got.NextTag != 77 {
		t.Fatalf("materialized epoch/tag = %d/%d, want 6/77 (the delta's own state, not the base's)",
			got.Epoch, got.NextTag)
	}
	// The materialized snapshot presents as a restorable full state.
	if got.Kind != KindFull || len(got.F) != len(base.F) {
		t.Fatalf("materialized kind=%d len(F)=%d, want a full %d-slot table", got.Kind, len(got.F), len(base.F))
	}

	// Intermediate chain member materializes too.
	mid, err := Materialize(dir, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mid.F, applyRanges(base.F, r5)) {
		t.Fatalf("epoch-5 materialization wrong: %v", mid.F)
	}
}

// Latest over a healthy chain returns the newest epoch materialized.
func TestLatestMaterializesChain(t *testing.T) {
	dir := t.TempDir()
	base := sample(0, 1)
	if _, _, err := Write(dir, base); err != nil {
		t.Fatal(err)
	}
	d := deltaSample(base, 2, []DeltaRange{{Start: 2, Values: []int64{42}}})
	if _, _, err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v on a healthy chain", skipped)
	}
	if snap == nil || snap.Epoch != 2 || snap.F[2] != 42 {
		t.Fatalf("Latest = %+v, want materialized epoch 2 with F[2]=42", snap)
	}
}

// A torn delta must not break the chain prefix: Latest falls back to
// the newest epoch whose chain is intact and reports the damage.
func TestLatestTornDeltaFallsBack(t *testing.T) {
	dir := t.TempDir()
	base := sample(0, 1)
	if _, _, err := Write(dir, base); err != nil {
		t.Fatal(err)
	}
	d2 := deltaSample(base, 2, []DeltaRange{{Start: 0, Values: []int64{9}}})
	if _, _, err := Write(dir, d2); err != nil {
		t.Fatal(err)
	}
	d3 := deltaSample(base, 3, []DeltaRange{{Start: 1, Values: []int64{8}}})
	d3.BaseEpoch = 2
	if _, _, err := Write(dir, d3); err != nil {
		t.Fatal(err)
	}
	// Tear the newest delta.
	path := Path(dir, 0, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 2 || snap.F[0] != 9 {
		t.Fatalf("Latest = %+v, want materialized epoch 2", snap)
	}
	if len(skipped) == 0 {
		t.Fatal("torn delta not reported in skipped")
	}
}

// A delta whose base is missing strands its whole chain: Latest must
// fall back past every chained epoch to the previous full snapshot —
// and to nothing at all when no full remains.
func TestLatestMissingBaseFallsBack(t *testing.T) {
	dir := t.TempDir()
	old := sample(0, 1)
	if _, _, err := Write(dir, old); err != nil {
		t.Fatal(err)
	}
	base := sample(0, 2)
	if _, _, err := Write(dir, base); err != nil {
		t.Fatal(err)
	}
	d3 := deltaSample(base, 3, []DeltaRange{{Start: 0, Values: []int64{5}}})
	if _, _, err := Write(dir, d3); err != nil {
		t.Fatal(err)
	}
	d4 := deltaSample(base, 4, []DeltaRange{{Start: 1, Values: []int64{6}}})
	d4.BaseEpoch = 3
	if _, _, err := Write(dir, d4); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(Path(dir, 0, 2)); err != nil {
		t.Fatal(err)
	}
	snap, _, err := Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 1 {
		t.Fatalf("Latest = %+v, want the epoch-1 full (the only intact state)", snap)
	}
	// Remove the last full too: nothing is restorable.
	if err := os.Remove(Path(dir, 0, 1)); err != nil {
		t.Fatal(err)
	}
	snap, _, err = Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("Latest = %+v with every base gone, want nil (fresh start)", snap)
	}
}

// A delta whose ranges overrun the declared table length must be
// rejected at materialization, not corrupt memory.
func TestMaterializeRejectsOutOfRangeDelta(t *testing.T) {
	dir := t.TempDir()
	base := sample(0, 1)
	if _, _, err := Write(dir, base); err != nil {
		t.Fatal(err)
	}
	bad := deltaSample(base, 2, []DeltaRange{{Start: int64(len(base.F) - 1), Values: []int64{1, 2, 3}}})
	if _, _, err := Write(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(dir, 0, 2); err == nil {
		t.Fatal("out-of-range delta materialized without error")
	}
}

// Prune must treat full epochs as retention barriers: dropping a base
// that newer retained deltas still need would strand them, so the
// newest K fulls and every delta chained above them survive.
func TestPruneKeepsChainsIntact(t *testing.T) {
	dir := t.TempDir()
	// fulls at 1 and 4, deltas 2,3 on 1 and 5,6 on 4.
	f1 := sample(0, 1)
	if _, _, err := Write(dir, f1); err != nil {
		t.Fatal(err)
	}
	prev := f1
	for _, e := range []int64{2, 3} {
		d := deltaSample(f1, e, []DeltaRange{{Start: 0, Values: []int64{e}}})
		d.BaseEpoch = prev.Epoch
		if _, _, err := Write(dir, d); err != nil {
			t.Fatal(err)
		}
		prev = d
	}
	f4 := sample(0, 4)
	if _, _, err := Write(dir, f4); err != nil {
		t.Fatal(err)
	}
	prev = f4
	for _, e := range []int64{5, 6} {
		d := deltaSample(f4, e, []DeltaRange{{Start: 0, Values: []int64{e}}})
		d.BaseEpoch = prev.Epoch
		if _, _, err := Write(dir, d); err != nil {
			t.Fatal(err)
		}
		prev = d
	}
	if err := Prune(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := Epochs(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("epochs after Prune(keep=1) = %v, want %v", got, want)
	}
	// The surviving chain still materializes.
	snap, skipped, err := Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 6 || len(skipped) != 0 {
		t.Fatalf("Latest after prune = %+v (skipped %v), want intact epoch 6", snap, skipped)
	}
}
