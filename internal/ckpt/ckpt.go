// Package ckpt serializes per-rank engine state into versioned,
// CRC-protected snapshot files — the storage half of the generator's
// checkpoint/restart subsystem. One snapshot captures everything a rank
// needs to resume generation mid-run at a consistent cut: the resolved
// prefix of the F attachment table, every suspended node's private RNG
// stream position and edge index, the pending waiter queues, any
// not-yet-flushed outbound message batches, and the collective tag
// counter. The format is byte-for-byte specified in
// docs/CHECKPOINT_FORMAT.md and verified on read by a whole-file
// CRC-32C so a torn write is detected rather than resumed from.
//
// Snapshots come in two kinds. A full snapshot carries the entire F
// table. A delta snapshot carries only the F ranges dirtied since its
// base epoch plus full copies of the (small, quiescent-time) worker and
// sink sections; restoring a delta replays its base+delta chain back to
// the nearest full snapshot. Encoding is buffer-based — Encoder reuses
// one scratch buffer across epochs so a steady checkpoint cadence
// performs no O(state) transient allocations.
//
// The package is pure serialization: which state goes into a snapshot,
// when all ranks' snapshots form a mutually consistent cut, and which
// epochs are safe to prune is negotiated by internal/core (DESIGN.md
// §9); this package supplies the chain mechanics (Materialize, Latest,
// Prune) those policies are built from.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Magic opens every snapshot file.
const Magic = "PAGENCK1"

// Version is the current snapshot format version. Readers reject any
// other value: the format carries no compat shims, and resuming from a
// mis-parsed snapshot would silently corrupt the output graph.
// Version 2 added the requester-side coalescing chains (Remote) to the
// worker sections; version 3 added the resolve mode and recompute depth
// cap to the meta section so a resume cannot silently change resolver
// settings mid-run; version 4 added the optional sink-mark section 'K'
// recording the streaming edge sink's durable shard position at the
// cut; version 5 added the snapshot kind and base epoch to the meta
// section and the delta-F section 'D', enabling incremental (base +
// delta chain) epochs.
const Version = 5

// Snapshot kinds (Snapshot.Kind).
const (
	// KindFull: the snapshot carries the entire F table ('F' section)
	// and restores on its own.
	KindFull = 0
	// KindDelta: the snapshot carries only F ranges dirtied since epoch
	// BaseEpoch ('D' section); restoring requires the full chain back
	// to the nearest KindFull member.
	KindDelta = 1
)

// castagnoli is the CRC-32C table (iSCSI polynomial) shared by writer
// and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies the run a snapshot belongs to. A resume validates
// every field against the new run's parameters: the output is a pure
// function of (n, x, p, seed), so resuming under different parameters
// would splice two different graphs.
type Meta struct {
	N      int64
	X      int
	P      float64
	Seed   uint64
	Ranks  int
	Rank   int
	Scheme string
	// Resolve is the engine's resolve-mode code (0 = wire, 1 =
	// recompute) and RecomputeDepth the effective replay depth cap (0
	// in wire mode). They are pinned so a resume under a different
	// resolver configuration is rejected rather than mixing modes
	// across the cut — the output graph is identical either way, but
	// mid-run counters and the memo warm-up are not, and rejecting
	// keeps every rank of the mesh on one setting.
	Resolve        int
	RecomputeDepth int
}

// SuspRecord is one suspended node: its local index, the edge it is
// blocked on, and its private RNG stream state positioned right after
// the draws of the blocked attempt.
type SuspRecord struct {
	Idx  int64
	Edge int
	RNG  [4]uint64
}

// WaiterRecord is one queued waiter of slot Slot: when the slot
// resolves, node T's edge E gets the answer. Records of one slot appear
// in FIFO order. The same shape serializes both waiter tables: the
// owner-side Q_{k,l} queues (Slot is a local flat slot index) and the
// requester-side coalescing chains (Slot is a global slot id k·x+l and
// T a global node).
type WaiterRecord struct {
	Slot int64
	T    int64
	E    uint16
}

// WorkerState is one worker shard's suspended nodes, waiter queues and
// request-coalescing chains at the cut, tagged with the block [Lo, Hi)
// the writing run used. A resuming run redistributes the records by its
// own worker layout, so restoring at a different worker count is exact.
type WorkerState struct {
	Lo, Hi  int64
	Susp    []SuspRecord
	Waiters []WaiterRecord
	// Remote holds the hub cache's request-coalescing chains: nodes of
	// this worker waiting on one in-flight request per remote slot,
	// chain by chain in FIFO order. The first record of each chain is
	// the primary requester — the node the owner's answer will be
	// addressed to — which is what lets a resume rebuild the chains
	// exactly: the chain's secondary members are registered nowhere
	// else (that is the point of coalescing), so without these records
	// they would never be answered.
	Remote []WaiterRecord
}

// OutboundBatch is a per-destination batch of messages that were
// buffered but not yet flushed at the cut, stored as one wire-format-v2
// frame. Global quiescence means these are empty in practice; the
// section exists as defense in depth — a resume re-injects them, which
// is exact because a buffered message is by definition not yet sent.
type OutboundBatch struct {
	To    int
	Frame []byte
}

// SinkMark is the streaming edge sink's durable position at the cut:
// the rank's shard file holds exactly Blocks complete blocks with Edges
// edge records in its first Offset bytes, flushed and fsynced before
// the snapshot was published. A resumed streamed run truncates the
// shard to Offset and regenerates exactly the missing suffix
// (esink.Mark is the engine-side twin). Present only in streamed runs.
type SinkMark struct {
	Offset int64
	Blocks int64
	Edges  int64
}

// Stats carries the cumulative engine counters that cannot be
// recomputed from F, so resumed runs report run-lifetime totals.
type Stats struct {
	Retries     int64
	QueuedWaits int64
	LocalWaits  int64
}

// DeltaRange is one contiguous run of F slots carried by a delta
// snapshot: Values[i] is the value of slot Start+i at the cut. F slots
// are write-once (NILL → value), so overlaying ranges over the base
// never regresses a resolved slot.
type DeltaRange struct {
	Start  int64
	Values []int64
}

// Snapshot is one rank's full checkpoint state.
type Snapshot struct {
	Meta    Meta
	Epoch   int64
	NextTag int64 // coll.Seq tag counter for the resumed run
	// Kind is KindFull or KindDelta; BaseEpoch names the previous
	// epoch in the chain for a delta (0 for a full snapshot).
	Kind      int
	BaseEpoch int64
	// F is the rank's flat attachment table (slot s holds F, -1 = NILL).
	// Populated for full snapshots; nil in an on-disk delta.
	F []int64
	// FLen is the total F table length, carried by delta snapshots so
	// chain replay can validate range bounds before touching the base.
	// Zero for a full snapshot (whose table length is len(F)).
	FLen int64
	// Delta holds the dirtied F ranges of a delta snapshot (nil for a
	// full one).
	Delta    []DeltaRange
	Workers  []WorkerState
	Outbound []OutboundBatch
	Stats    Stats
	// Sink is the streaming edge sink's durable mark, nil for runs
	// without a streaming sink. Serialized as the optional 'K' section.
	Sink *SinkMark
}

// Path returns the snapshot filename for (rank, epoch) under dir. The
// fixed-width fields make lexicographic and numeric order agree. Full
// and delta snapshots share the naming scheme; the kind lives in the
// file header (see ReadHeader).
func Path(dir string, rank int, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d-epoch%08d.ckpt", rank, epoch))
}

// parseName extracts (rank, epoch) from a snapshot filename, reporting
// whether it matches the Path pattern exactly. Sscanf alone would stop
// at the pattern's end and accept trailing junk — in particular a
// ".ckpt.tmp" torn temporary — so the name is re-rendered and compared,
// which anchors both ends.
func parseName(name string) (rank int, epoch int64, ok bool) {
	var r int
	var e int64
	n, err := fmt.Sscanf(name, "rank%04d-epoch%08d.ckpt", &r, &e)
	if err != nil || n != 2 || r < 0 || e < 0 {
		return 0, 0, false
	}
	if fmt.Sprintf("rank%04d-epoch%08d.ckpt", r, e) != name {
		return 0, 0, false
	}
	return r, e, true
}

// Encoder serializes snapshots into a reused scratch buffer, so a
// steady checkpoint cadence performs no O(state) transient allocations:
// the buffer grows to the largest snapshot seen and is then recycled
// epoch after epoch. An Encoder is not safe for concurrent use; the
// engine gives its background writer a private one.
type Encoder struct {
	buf []byte
}

// Encode serializes s — sections plus the CRC-32C trailer — into the
// encoder's scratch buffer and returns the encoded bytes. The returned
// slice aliases the scratch buffer and is valid until the next Encode
// call.
func (enc *Encoder) Encode(s *Snapshot) []byte {
	b := enc.buf[:0]
	b = append(b, Magic...)
	b = binary.AppendUvarint(b, Version)

	// 'M': run identity + epoch + collective tag counter + kind/base.
	b = append(b, 'M')
	b = binary.AppendUvarint(b, uint64(s.Meta.N))
	b = binary.AppendUvarint(b, uint64(s.Meta.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Meta.P))
	b = binary.LittleEndian.AppendUint64(b, s.Meta.Seed)
	b = binary.AppendUvarint(b, uint64(s.Meta.Ranks))
	b = binary.AppendUvarint(b, uint64(s.Meta.Rank))
	b = binary.AppendUvarint(b, uint64(len(s.Meta.Scheme)))
	b = append(b, s.Meta.Scheme...)
	b = binary.AppendUvarint(b, uint64(s.Meta.Resolve))
	b = binary.AppendUvarint(b, uint64(s.Meta.RecomputeDepth))
	b = binary.AppendUvarint(b, uint64(s.Epoch))
	b = binary.AppendUvarint(b, uint64(s.NextTag))
	b = binary.AppendUvarint(b, uint64(s.Kind))
	b = binary.AppendUvarint(b, uint64(s.BaseEpoch))

	if s.Kind == KindDelta {
		// 'D': dirtied F ranges, varint-packed as value+1 like 'F'.
		b = append(b, 'D')
		b = binary.AppendUvarint(b, uint64(s.FLen))
		b = binary.AppendUvarint(b, uint64(len(s.Delta)))
		for _, dr := range s.Delta {
			b = binary.AppendUvarint(b, uint64(dr.Start))
			b = binary.AppendUvarint(b, uint64(len(dr.Values)))
			for _, v := range dr.Values {
				b = binary.AppendUvarint(b, uint64(v+1))
			}
		}
	} else {
		// 'F': the attachment table, varint-packed as value+1 so NILL
		// (-1) costs one byte.
		b = append(b, 'F')
		b = binary.AppendUvarint(b, uint64(len(s.F)))
		for _, v := range s.F {
			b = binary.AppendUvarint(b, uint64(v+1))
		}
	}

	// 'W' (repeated): one section per worker shard of the writing run.
	for _, ws := range s.Workers {
		b = append(b, 'W')
		b = binary.AppendUvarint(b, uint64(ws.Lo))
		b = binary.AppendUvarint(b, uint64(ws.Hi))
		b = binary.AppendUvarint(b, uint64(len(ws.Susp)))
		for _, sr := range ws.Susp {
			b = binary.AppendUvarint(b, uint64(sr.Idx))
			b = binary.AppendUvarint(b, uint64(sr.Edge))
			for _, w := range sr.RNG {
				b = binary.LittleEndian.AppendUint64(b, w)
			}
		}
		b = appendWaiterRecords(b, ws.Waiters)
		b = appendWaiterRecords(b, ws.Remote)
	}

	// 'O': unflushed outbound batches (empty at a quiescent cut).
	b = append(b, 'O')
	b = binary.AppendUvarint(b, uint64(len(s.Outbound)))
	for _, ob := range s.Outbound {
		b = binary.AppendUvarint(b, uint64(ob.To))
		b = binary.AppendUvarint(b, uint64(len(ob.Frame)))
		b = append(b, ob.Frame...)
	}

	// 'S': cumulative counters.
	b = append(b, 'S')
	b = binary.AppendUvarint(b, uint64(s.Stats.Retries))
	b = binary.AppendUvarint(b, uint64(s.Stats.QueuedWaits))
	b = binary.AppendUvarint(b, uint64(s.Stats.LocalWaits))

	// 'K' (optional, streamed runs only): the edge sink's durable shard
	// mark. Then the end marker and CRC trailer.
	if s.Sink != nil {
		b = append(b, 'K')
		b = binary.AppendUvarint(b, uint64(s.Sink.Offset))
		b = binary.AppendUvarint(b, uint64(s.Sink.Blocks))
		b = binary.AppendUvarint(b, uint64(s.Sink.Edges))
	}
	b = append(b, 'Z')
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	enc.buf = b
	return b
}

// appendWaiterRecords appends one length-prefixed list of waiter
// records — the shared shape of a worker's Waiters and Remote sections.
func appendWaiterRecords(b []byte, rs []WaiterRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for _, wr := range rs {
		b = binary.AppendUvarint(b, uint64(wr.Slot))
		b = binary.AppendUvarint(b, uint64(wr.T))
		b = binary.AppendUvarint(b, uint64(wr.E))
	}
	return b
}

// WriteEncoded publishes pre-encoded snapshot bytes to
// Path(dir, rank, epoch) atomically: write a temporary file, fsync,
// rename. A crash at any point leaves either no file or a complete one;
// a torn temporary never carries the final name.
func WriteEncoded(dir string, rank int, epoch int64, data []byte) (path string, size int64, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	path = Path(dir, rank, epoch)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("ckpt: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	return path, int64(len(data)), nil
}

// Write encodes and publishes s in one call, for callers without a
// long-lived Encoder (tests, tools). The engine's background writer
// uses Encoder + WriteEncoded directly so the scratch buffer survives
// across epochs.
func Write(dir string, s *Snapshot) (path string, size int64, err error) {
	var enc Encoder
	return WriteEncoded(dir, s.Meta.Rank, s.Epoch, enc.Encode(s))
}

// reader parses a snapshot from an in-memory buffer (the CRC already
// verified over the whole file).
type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("truncated u64")
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if uint64(len(r.b)) < n {
		return nil, fmt.Errorf("truncated %d-byte field", n)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) tag() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("missing section tag")
	}
	t := r.b[0]
	r.b = r.b[1:]
	return t, nil
}

// Read loads and fully validates the snapshot at path: magic, version,
// whole-file CRC-32C, and structural parse. Any failure — including a
// torn or truncated file — returns an error naming the file. A delta
// snapshot is returned as stored; Materialize replays its chain.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}

func parse(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4 {
		return nil, fmt.Errorf("file too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("bad magic %q", data[:len(Magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("CRC mismatch: file says %08x, content is %08x (torn or corrupted snapshot)", want, got)
	}
	r := &reader{b: body[len(Magic):]}
	ver, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported snapshot version %d (reader supports %d)", ver, Version)
	}

	s := &Snapshot{}
	sawF, sawD := false, false
	for {
		t, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch t {
		case 'M':
			if err := s.parseMeta(r); err != nil {
				return nil, fmt.Errorf("meta: %w", err)
			}
		case 'F':
			sawF = true
			n, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			// Every entry costs at least one byte: reject inflated counts
			// before allocating.
			if n > uint64(len(r.b)) {
				return nil, fmt.Errorf("F count %d exceeds file", n)
			}
			s.F = make([]int64, n)
			for i := range s.F {
				v, err := r.uvarint()
				if err != nil {
					return nil, fmt.Errorf("F[%d]: %w", i, err)
				}
				s.F[i] = int64(v) - 1
			}
		case 'D':
			sawD = true
			if err := s.parseDelta(r); err != nil {
				return nil, fmt.Errorf("delta: %w", err)
			}
		case 'W':
			ws, err := parseWorker(r)
			if err != nil {
				return nil, fmt.Errorf("worker section %d: %w", len(s.Workers), err)
			}
			s.Workers = append(s.Workers, ws)
		case 'O':
			n, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < n; i++ {
				to, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				sz, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				frame, err := r.bytes(sz)
				if err != nil {
					return nil, fmt.Errorf("outbound frame: %w", err)
				}
				s.Outbound = append(s.Outbound, OutboundBatch{
					To: int(to), Frame: append([]byte(nil), frame...),
				})
			}
		case 'S':
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.Retries = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.QueuedWaits = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.LocalWaits = int64(v)
			}
		case 'K':
			var mk SinkMark
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Offset = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Blocks = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Edges = int64(v)
			}
			s.Sink = &mk
		case 'Z':
			if len(r.b) != 0 {
				return nil, fmt.Errorf("%d trailing bytes after end marker", len(r.b))
			}
			// The kind declared in the meta section and the F-carrying
			// section present must agree: a mismatch means a corrupted
			// or hand-assembled file, and restoring it would splice the
			// wrong table shape.
			if s.Kind == KindDelta && (!sawD || sawF) {
				return nil, fmt.Errorf("delta snapshot without 'D' section (or with stray 'F')")
			}
			if s.Kind == KindFull && (!sawF || sawD) {
				return nil, fmt.Errorf("full snapshot without 'F' section (or with stray 'D')")
			}
			return s, nil
		default:
			return nil, fmt.Errorf("unknown section tag %q", t)
		}
	}
}

func (s *Snapshot) parseMeta(r *reader) error {
	var err error
	var v uint64
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.N = int64(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.X = int(v)
	if v, err = r.u64(); err != nil {
		return err
	}
	s.Meta.P = math.Float64frombits(v)
	if s.Meta.Seed, err = r.u64(); err != nil {
		return err
	}
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Ranks = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Rank = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	name, err := r.bytes(v)
	if err != nil {
		return err
	}
	s.Meta.Scheme = string(name)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Resolve = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.RecomputeDepth = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Epoch = int64(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.NextTag = int64(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	if v != KindFull && v != KindDelta {
		return fmt.Errorf("unknown snapshot kind %d", v)
	}
	s.Kind = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.BaseEpoch = int64(v)
	if s.Kind == KindDelta && (s.BaseEpoch <= 0 || s.BaseEpoch >= s.Epoch) {
		return fmt.Errorf("delta epoch %d has invalid base epoch %d", s.Epoch, s.BaseEpoch)
	}
	if s.Kind == KindFull && s.BaseEpoch != 0 {
		return fmt.Errorf("full snapshot has nonzero base epoch %d", s.BaseEpoch)
	}
	return nil
}

func (s *Snapshot) parseDelta(r *reader) error {
	flen, err := r.uvarint()
	if err != nil {
		return err
	}
	s.FLen = int64(flen)
	nr, err := r.uvarint()
	if err != nil {
		return err
	}
	// Every range costs at least two bytes: reject inflated counts
	// before allocating.
	if nr > uint64(len(r.b))/2+1 {
		return fmt.Errorf("range count %d exceeds file", nr)
	}
	s.Delta = make([]DeltaRange, 0, nr)
	prevEnd := int64(0)
	for i := uint64(0); i < nr; i++ {
		start, err := r.uvarint()
		if err != nil {
			return err
		}
		cnt, err := r.uvarint()
		if err != nil {
			return err
		}
		if cnt > uint64(len(r.b)) {
			return fmt.Errorf("range %d value count %d exceeds file", i, cnt)
		}
		end := int64(start) + int64(cnt)
		// Ranges are sorted, non-overlapping and in-bounds, so chain
		// replay can overlay them without further checks.
		if int64(start) < prevEnd || end > s.FLen || cnt == 0 {
			return fmt.Errorf("range %d [%d,%d) invalid (prev end %d, F length %d)", i, start, end, prevEnd, s.FLen)
		}
		prevEnd = end
		vals := make([]int64, cnt)
		for j := range vals {
			v, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("range %d value %d: %w", i, j, err)
			}
			vals[j] = int64(v) - 1
		}
		s.Delta = append(s.Delta, DeltaRange{Start: int64(start), Values: vals})
	}
	return nil
}

func parseWorker(r *reader) (WorkerState, error) {
	var ws WorkerState
	v, err := r.uvarint()
	if err != nil {
		return ws, err
	}
	ws.Lo = int64(v)
	if v, err = r.uvarint(); err != nil {
		return ws, err
	}
	ws.Hi = int64(v)
	n, err := r.uvarint()
	if err != nil {
		return ws, err
	}
	// A suspension record is at least 34 bytes (two varints + 32 bytes
	// of RNG state); bound the allocation by the remaining bytes.
	if n > uint64(len(r.b))/34+1 {
		return ws, fmt.Errorf("suspension count %d exceeds file", n)
	}
	ws.Susp = make([]SuspRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var sr SuspRecord
		if v, err = r.uvarint(); err != nil {
			return ws, err
		}
		sr.Idx = int64(v)
		if v, err = r.uvarint(); err != nil {
			return ws, err
		}
		sr.Edge = int(v)
		for j := range sr.RNG {
			if sr.RNG[j], err = r.u64(); err != nil {
				return ws, err
			}
		}
		ws.Susp = append(ws.Susp, sr)
	}
	if ws.Waiters, err = parseWaiterRecords(r); err != nil {
		return ws, fmt.Errorf("waiters: %w", err)
	}
	if ws.Remote, err = parseWaiterRecords(r); err != nil {
		return ws, fmt.Errorf("remote: %w", err)
	}
	return ws, nil
}

// parseWaiterRecords reads one length-prefixed waiter-record list, the
// shared shape of the Waiters and Remote worker sections. It always
// returns a non-nil slice so round-tripped snapshots compare equal.
func parseWaiterRecords(r *reader) ([]WaiterRecord, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every record costs at least three bytes: reject inflated counts
	// before allocating.
	if n > uint64(len(r.b))/3+1 {
		return nil, fmt.Errorf("record count %d exceeds file", n)
	}
	out := make([]WaiterRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var wr WaiterRecord
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		wr.Slot = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, err
		}
		wr.T = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, err
		}
		if v > 0xffff {
			return nil, fmt.Errorf("waiter edge %d overflows uint16", v)
		}
		wr.E = uint16(v)
		out = append(out, wr)
	}
	return out, nil
}

// Header is the cheap prefix view of a snapshot file: the identity
// needed for retention decisions without reading (or CRC-checking) the
// whole file. The meta section is always first in a well-formed
// snapshot, so a small prefix read suffices.
type Header struct {
	Rank      int
	Epoch     int64
	Kind      int
	BaseEpoch int64
}

// headerPrefix bounds the prefix read for ReadHeader: magic + version +
// the meta section, whose only variable-length field is the partition
// scheme name, is far smaller than this.
const headerPrefix = 4096

// ReadHeader parses just the meta section of the snapshot at path. The
// whole-file CRC is NOT verified — a torn tail is invisible here — so
// the result is only suitable for decisions that are safe under
// corruption, like pruning (a torn file never anchors retention, and
// restore re-validates everything it reads).
func ReadHeader(path string) (*Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, headerPrefix)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return nil, err
	}
	buf = buf[:n]
	if len(buf) < len(Magic)+1 || string(buf[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("ckpt: %s: bad magic", path)
	}
	r := &reader{b: buf[len(Magic):]}
	ver, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	if ver != Version {
		return nil, fmt.Errorf("ckpt: %s: unsupported snapshot version %d (reader supports %d)", path, ver, Version)
	}
	t, err := r.tag()
	if err != nil || t != 'M' {
		return nil, fmt.Errorf("ckpt: %s: meta section not first", path)
	}
	var s Snapshot
	if err := s.parseMeta(r); err != nil {
		return nil, fmt.Errorf("ckpt: %s: meta: %w", path, err)
	}
	return &Header{Rank: s.Meta.Rank, Epoch: s.Epoch, Kind: s.Kind, BaseEpoch: s.BaseEpoch}, nil
}

// maxChain bounds base-chain walks so a corrupted BaseEpoch loop cannot
// spin forever; real chains are capped by the full-snapshot cadence.
const maxChain = 1 << 16

// Materialize loads the snapshot for (rank, epoch) and, if it is a
// delta, replays its base+delta chain into a full in-memory snapshot:
// the nearest full ancestor's F overlaid with every chain member's
// dirty ranges, oldest first, and all other sections (which every
// snapshot carries in full) taken from the requested epoch. Any broken
// link — missing file, CRC failure, meta mismatch, out-of-order base —
// fails the whole materialization; callers fall back to an older epoch
// exactly as they do for a torn full snapshot.
func Materialize(dir string, rank int, epoch int64) (*Snapshot, error) {
	head, err := Read(Path(dir, rank, epoch))
	if err != nil {
		return nil, err
	}
	if head.Kind == KindFull {
		return head, nil
	}
	chain := []*Snapshot{head}
	cur := head
	for cur.Kind == KindDelta {
		if len(chain) > maxChain {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: delta chain longer than %d", epoch, rank, maxChain)
		}
		base, err := Read(Path(dir, rank, cur.BaseEpoch))
		if err != nil {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: chain member: %w", epoch, rank, err)
		}
		if base.Meta != head.Meta {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: chain member epoch %d belongs to a different run", epoch, rank, base.Epoch)
		}
		if base.Epoch != cur.BaseEpoch || (base.Kind == KindDelta && base.BaseEpoch >= base.Epoch) {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: chain member epoch %d malformed", epoch, rank, base.Epoch)
		}
		chain = append(chain, base)
		cur = base
	}
	// cur is the full base; overlay deltas oldest-first. F slots are
	// write-once so newer ranges only ever add resolutions, but replay
	// order is kept oldest-first regardless — it is the order the state
	// was produced in.
	f := cur.F
	for i := len(chain) - 2; i >= 0; i-- {
		d := chain[i]
		if d.FLen != int64(len(f)) {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: delta epoch %d F length %d != base %d", epoch, rank, d.Epoch, d.FLen, len(f))
		}
		for _, dr := range d.Delta {
			copy(f[dr.Start:dr.Start+int64(len(dr.Values))], dr.Values)
		}
	}
	head.F = f
	head.FLen = 0
	head.Kind = KindFull
	head.BaseEpoch = 0
	head.Delta = nil
	return head, nil
}

// Latest returns the newest restorable snapshot for rank under dir,
// walking epochs newest-first and skipping (with a reason) any epoch
// that fails to materialize — a torn file, or a delta whose chain has a
// torn or missing member. It returns (nil, skipped, nil) when the rank
// has no restorable snapshot, and an error only when the directory
// itself cannot be read.
func Latest(dir string, rank int) (snap *Snapshot, skipped []string, err error) {
	epochs, err := Epochs(dir, rank)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		s, err := Materialize(dir, rank, epochs[i])
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", Path(dir, rank, epochs[i]), err))
			continue
		}
		return s, skipped, nil
	}
	return nil, skipped, nil
}

// Epochs lists the epochs with a snapshot file for rank under dir, in
// increasing order. It does not validate the files.
func Epochs(dir string, rank int) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range entries {
		r, ep, ok := parseName(e.Name())
		if ok && r == rank {
			out = append(out, ep)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Prune deletes rank's snapshot files under dir older than the keep-th
// newest full snapshot. Full snapshots are the retention barriers: a
// delta is only restorable while its whole chain survives, so retention
// is counted in full epochs and everything strictly older than the
// oldest retained full (the anchor of the oldest retained chain) is
// deleted — deltas hanging off it included. With full-only
// checkpointing this reduces to keeping the keep newest epochs.
// Keeping at least two fulls is what makes the torn-latest fallback
// possible. Files whose header cannot be read (torn, foreign) never
// count as barriers but are deleted once they age past one.
func Prune(dir string, rank int, keep int) error {
	epochs, err := Epochs(dir, rank)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	var fulls []int64
	for _, ep := range epochs {
		h, err := ReadHeader(Path(dir, rank, ep))
		if err == nil && h.Kind == KindFull {
			fulls = append(fulls, ep)
		}
	}
	if len(fulls) < keep {
		return nil
	}
	barrier := fulls[len(fulls)-keep]
	for _, ep := range epochs {
		if ep >= barrier {
			break
		}
		if err := os.Remove(Path(dir, rank, ep)); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes rank's snapshot of the given epoch, ignoring a missing
// file (an abandoned epoch may have failed before its write).
func Remove(dir string, rank int, epoch int64) error {
	err := os.Remove(Path(dir, rank, epoch))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
