// Package ckpt serializes per-rank engine state into versioned,
// CRC-protected snapshot files — the storage half of the generator's
// checkpoint/restart subsystem. One snapshot captures everything a rank
// needs to resume generation mid-run at a consistent cut: the resolved
// prefix of the F attachment table, every suspended node's private RNG
// stream position and edge index, the pending waiter queues, any
// not-yet-flushed outbound message batches, and the collective tag
// counter. The format is streamed (the writer needs O(1) memory beyond
// the state it serializes, dominated by varint-packed F), byte-for-byte
// specified in docs/CHECKPOINT_FORMAT.md, and verified on read by a
// whole-file CRC-32C so a torn write is detected rather than resumed
// from.
//
// The package is pure serialization: which state goes into a snapshot,
// and when all ranks' snapshots form a mutually consistent cut, is
// internal/core's business (DESIGN.md §9).
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Magic opens every snapshot file.
const Magic = "PAGENCK1"

// Version is the current snapshot format version. Readers reject any
// other value: the format carries no compat shims yet, and resuming
// from a mis-parsed snapshot would silently corrupt the output graph.
// Version 2 added the requester-side coalescing chains (Remote) to the
// worker sections; version 3 added the resolve mode and recompute depth
// cap to the meta section so a resume cannot silently change resolver
// settings mid-run; version 4 added the optional sink-mark section 'K'
// recording the streaming edge sink's durable shard position at the
// cut, so a streamed run can truncate its shard back to the mark and
// resume without duplicating or dropping edges.
const Version = 4

// castagnoli is the CRC-32C table (iSCSI polynomial) shared by writer
// and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies the run a snapshot belongs to. A resume validates
// every field against the new run's parameters: the output is a pure
// function of (n, x, p, seed), so resuming under different parameters
// would splice two different graphs.
type Meta struct {
	N      int64
	X      int
	P      float64
	Seed   uint64
	Ranks  int
	Rank   int
	Scheme string
	// Resolve is the engine's resolve-mode code (0 = wire, 1 =
	// recompute) and RecomputeDepth the effective replay depth cap (0
	// in wire mode). They are pinned so a resume under a different
	// resolver configuration is rejected rather than mixing modes
	// across the cut — the output graph is identical either way, but
	// mid-run counters and the memo warm-up are not, and rejecting
	// keeps every rank of the mesh on one setting.
	Resolve        int
	RecomputeDepth int
}

// SuspRecord is one suspended node: its local index, the edge it is
// blocked on, and its private RNG stream state positioned right after
// the draws of the blocked attempt.
type SuspRecord struct {
	Idx  int64
	Edge int
	RNG  [4]uint64
}

// WaiterRecord is one queued waiter of slot Slot: when the slot
// resolves, node T's edge E gets the answer. Records of one slot appear
// in FIFO order. The same shape serializes both waiter tables: the
// owner-side Q_{k,l} queues (Slot is a local flat slot index) and the
// requester-side coalescing chains (Slot is a global slot id k·x+l and
// T a global node).
type WaiterRecord struct {
	Slot int64
	T    int64
	E    uint16
}

// WorkerState is one worker shard's suspended nodes, waiter queues and
// request-coalescing chains at the cut, tagged with the block [Lo, Hi)
// the writing run used. A resuming run redistributes the records by its
// own worker layout, so restoring at a different worker count is exact.
type WorkerState struct {
	Lo, Hi  int64
	Susp    []SuspRecord
	Waiters []WaiterRecord
	// Remote holds the hub cache's request-coalescing chains: nodes of
	// this worker waiting on one in-flight request per remote slot,
	// chain by chain in FIFO order. The first record of each chain is
	// the primary requester — the node the owner's answer will be
	// addressed to — which is what lets a resume rebuild the chains
	// exactly: the chain's secondary members are registered nowhere
	// else (that is the point of coalescing), so without these records
	// they would never be answered.
	Remote []WaiterRecord
}

// OutboundBatch is a per-destination batch of messages that were
// buffered but not yet flushed at the cut, stored as one wire-format-v2
// frame. Global quiescence means these are empty in practice; the
// section exists as defense in depth — a resume re-injects them, which
// is exact because a buffered message is by definition not yet sent.
type OutboundBatch struct {
	To    int
	Frame []byte
}

// SinkMark is the streaming edge sink's durable position at the cut:
// the rank's shard file holds exactly Blocks complete blocks with Edges
// edge records in its first Offset bytes, flushed and fsynced before
// the snapshot was written. A resumed streamed run truncates the shard
// to Offset and regenerates exactly the missing suffix (esink.Mark is
// the engine-side twin). Present only in streamed runs.
type SinkMark struct {
	Offset int64
	Blocks int64
	Edges  int64
}

// Stats carries the cumulative engine counters that cannot be
// recomputed from F, so resumed runs report run-lifetime totals.
type Stats struct {
	Retries     int64
	QueuedWaits int64
	LocalWaits  int64
}

// Snapshot is one rank's full checkpoint state.
type Snapshot struct {
	Meta    Meta
	Epoch   int64
	NextTag int64 // coll.Seq tag counter for the resumed run
	// F is the rank's flat attachment table (slot s holds F, -1 = NILL).
	F        []int64
	Workers  []WorkerState
	Outbound []OutboundBatch
	Stats    Stats
	// Sink is the streaming edge sink's durable mark, nil for runs
	// without a streaming sink. Serialized as the optional 'K' section.
	Sink *SinkMark
}

// Path returns the snapshot filename for (rank, epoch) under dir. The
// fixed-width fields make lexicographic and numeric order agree.
func Path(dir string, rank int, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d-epoch%08d.ckpt", rank, epoch))
}

// parseName extracts (rank, epoch) from a snapshot filename, reporting
// whether it matches the Path pattern exactly. Sscanf alone would stop
// at the pattern's end and accept trailing junk — in particular a
// ".ckpt.tmp" torn temporary — so the name is re-rendered and compared,
// which anchors both ends.
func parseName(name string) (rank int, epoch int64, ok bool) {
	var r int
	var e int64
	n, err := fmt.Sscanf(name, "rank%04d-epoch%08d.ckpt", &r, &e)
	if err != nil || n != 2 || r < 0 || e < 0 {
		return 0, 0, false
	}
	if fmt.Sprintf("rank%04d-epoch%08d.ckpt", r, e) != name {
		return 0, 0, false
	}
	return r, e, true
}

// crcWriter streams bytes into a buffered file while folding them into
// a running CRC-32C, so the trailer covers exactly what hit the file.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
	err error
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	cw.n += int64(len(p))
	_, cw.err = cw.w.Write(p)
	return len(p), cw.err
}

func (cw *crcWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	cw.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func (cw *crcWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	cw.Write(buf[:])
}

// waiterRecords writes one length-prefixed list of waiter records —
// the shared shape of a worker's Waiters and Remote sections.
func (cw *crcWriter) waiterRecords(rs []WaiterRecord) {
	cw.uvarint(uint64(len(rs)))
	for _, wr := range rs {
		cw.uvarint(uint64(wr.Slot))
		cw.uvarint(uint64(wr.T))
		cw.uvarint(uint64(wr.E))
	}
}

// Write serializes s to Path(dir, s.Meta.Rank, s.Epoch) atomically:
// stream into a temporary file, fsync, rename. It returns the final
// path and the file size. A crash at any point leaves either no file or
// a complete one; a torn temporary never carries the final name.
func Write(dir string, s *Snapshot) (path string, size int64, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	path = Path(dir, s.Meta.Rank, s.Epoch)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, err
	}
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<16)}

	cw.Write([]byte(Magic))
	cw.uvarint(Version)

	// 'M': run identity + epoch + collective tag counter.
	cw.Write([]byte{'M'})
	cw.uvarint(uint64(s.Meta.N))
	cw.uvarint(uint64(s.Meta.X))
	cw.u64(math.Float64bits(s.Meta.P))
	cw.u64(s.Meta.Seed)
	cw.uvarint(uint64(s.Meta.Ranks))
	cw.uvarint(uint64(s.Meta.Rank))
	cw.uvarint(uint64(len(s.Meta.Scheme)))
	cw.Write([]byte(s.Meta.Scheme))
	cw.uvarint(uint64(s.Meta.Resolve))
	cw.uvarint(uint64(s.Meta.RecomputeDepth))
	cw.uvarint(uint64(s.Epoch))
	cw.uvarint(uint64(s.NextTag))

	// 'F': the attachment table, varint-packed as value+1 so NILL (-1)
	// costs one byte.
	cw.Write([]byte{'F'})
	cw.uvarint(uint64(len(s.F)))
	for _, v := range s.F {
		cw.uvarint(uint64(v + 1))
	}

	// 'W' (repeated): one section per worker shard of the writing run.
	for _, ws := range s.Workers {
		cw.Write([]byte{'W'})
		cw.uvarint(uint64(ws.Lo))
		cw.uvarint(uint64(ws.Hi))
		cw.uvarint(uint64(len(ws.Susp)))
		for _, sr := range ws.Susp {
			cw.uvarint(uint64(sr.Idx))
			cw.uvarint(uint64(sr.Edge))
			for _, w := range sr.RNG {
				cw.u64(w)
			}
		}
		cw.waiterRecords(ws.Waiters)
		cw.waiterRecords(ws.Remote)
	}

	// 'O': unflushed outbound batches (empty at a quiescent cut).
	cw.Write([]byte{'O'})
	cw.uvarint(uint64(len(s.Outbound)))
	for _, ob := range s.Outbound {
		cw.uvarint(uint64(ob.To))
		cw.uvarint(uint64(len(ob.Frame)))
		cw.Write(ob.Frame)
	}

	// 'S': cumulative counters.
	cw.Write([]byte{'S'})
	cw.uvarint(uint64(s.Stats.Retries))
	cw.uvarint(uint64(s.Stats.QueuedWaits))
	cw.uvarint(uint64(s.Stats.LocalWaits))

	// 'K' (optional, streamed runs only): the edge sink's durable shard
	// mark. Then the end marker and CRC trailer.
	if s.Sink != nil {
		cw.Write([]byte{'K'})
		cw.uvarint(uint64(s.Sink.Offset))
		cw.uvarint(uint64(s.Sink.Blocks))
		cw.uvarint(uint64(s.Sink.Edges))
	}
	cw.Write([]byte{'Z'})

	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if cw.err == nil {
		_, cw.err = cw.w.Write(trailer[:])
	}
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	if cw.err == nil {
		cw.err = f.Sync()
	}
	if cerr := f.Close(); cw.err == nil {
		cw.err = cerr
	}
	if cw.err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("ckpt: write %s: %w", path, cw.err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	return path, cw.n + 4, nil
}

// reader parses a snapshot from an in-memory buffer (the CRC already
// verified over the whole file).
type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("truncated u64")
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if uint64(len(r.b)) < n {
		return nil, fmt.Errorf("truncated %d-byte field", n)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) tag() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("missing section tag")
	}
	t := r.b[0]
	r.b = r.b[1:]
	return t, nil
}

// Read loads and fully validates the snapshot at path: magic, version,
// whole-file CRC-32C, and structural parse. Any failure — including a
// torn or truncated file — returns an error naming the file.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}

func parse(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4 {
		return nil, fmt.Errorf("file too short (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("bad magic %q", data[:len(Magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("CRC mismatch: file says %08x, content is %08x (torn or corrupted snapshot)", want, got)
	}
	r := &reader{b: body[len(Magic):]}
	ver, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported snapshot version %d (reader supports %d)", ver, Version)
	}

	s := &Snapshot{}
	for {
		t, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch t {
		case 'M':
			if err := s.parseMeta(r); err != nil {
				return nil, fmt.Errorf("meta: %w", err)
			}
		case 'F':
			n, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			// Every entry costs at least one byte: reject inflated counts
			// before allocating.
			if n > uint64(len(r.b)) {
				return nil, fmt.Errorf("F count %d exceeds file", n)
			}
			s.F = make([]int64, n)
			for i := range s.F {
				v, err := r.uvarint()
				if err != nil {
					return nil, fmt.Errorf("F[%d]: %w", i, err)
				}
				s.F[i] = int64(v) - 1
			}
		case 'W':
			ws, err := parseWorker(r)
			if err != nil {
				return nil, fmt.Errorf("worker section %d: %w", len(s.Workers), err)
			}
			s.Workers = append(s.Workers, ws)
		case 'O':
			n, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < n; i++ {
				to, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				sz, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				frame, err := r.bytes(sz)
				if err != nil {
					return nil, fmt.Errorf("outbound frame: %w", err)
				}
				s.Outbound = append(s.Outbound, OutboundBatch{
					To: int(to), Frame: append([]byte(nil), frame...),
				})
			}
		case 'S':
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.Retries = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.QueuedWaits = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				s.Stats.LocalWaits = int64(v)
			}
		case 'K':
			var mk SinkMark
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Offset = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Blocks = int64(v)
			}
			if v, err := r.uvarint(); err != nil {
				return nil, err
			} else {
				mk.Edges = int64(v)
			}
			s.Sink = &mk
		case 'Z':
			if len(r.b) != 0 {
				return nil, fmt.Errorf("%d trailing bytes after end marker", len(r.b))
			}
			return s, nil
		default:
			return nil, fmt.Errorf("unknown section tag %q", t)
		}
	}
}

func (s *Snapshot) parseMeta(r *reader) error {
	var err error
	var v uint64
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.N = int64(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.X = int(v)
	if v, err = r.u64(); err != nil {
		return err
	}
	s.Meta.P = math.Float64frombits(v)
	if s.Meta.Seed, err = r.u64(); err != nil {
		return err
	}
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Ranks = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Rank = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	name, err := r.bytes(v)
	if err != nil {
		return err
	}
	s.Meta.Scheme = string(name)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.Resolve = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Meta.RecomputeDepth = int(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.Epoch = int64(v)
	if v, err = r.uvarint(); err != nil {
		return err
	}
	s.NextTag = int64(v)
	return nil
}

func parseWorker(r *reader) (WorkerState, error) {
	var ws WorkerState
	v, err := r.uvarint()
	if err != nil {
		return ws, err
	}
	ws.Lo = int64(v)
	if v, err = r.uvarint(); err != nil {
		return ws, err
	}
	ws.Hi = int64(v)
	n, err := r.uvarint()
	if err != nil {
		return ws, err
	}
	// A suspension record is at least 34 bytes (two varints + 32 bytes
	// of RNG state); bound the allocation by the remaining bytes.
	if n > uint64(len(r.b))/34+1 {
		return ws, fmt.Errorf("suspension count %d exceeds file", n)
	}
	ws.Susp = make([]SuspRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var sr SuspRecord
		if v, err = r.uvarint(); err != nil {
			return ws, err
		}
		sr.Idx = int64(v)
		if v, err = r.uvarint(); err != nil {
			return ws, err
		}
		sr.Edge = int(v)
		for j := range sr.RNG {
			if sr.RNG[j], err = r.u64(); err != nil {
				return ws, err
			}
		}
		ws.Susp = append(ws.Susp, sr)
	}
	if ws.Waiters, err = parseWaiterRecords(r); err != nil {
		return ws, fmt.Errorf("waiters: %w", err)
	}
	if ws.Remote, err = parseWaiterRecords(r); err != nil {
		return ws, fmt.Errorf("remote: %w", err)
	}
	return ws, nil
}

// parseWaiterRecords reads one length-prefixed waiter-record list, the
// shared shape of the Waiters and Remote worker sections. It always
// returns a non-nil slice so round-tripped snapshots compare equal.
func parseWaiterRecords(r *reader) ([]WaiterRecord, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every record costs at least three bytes: reject inflated counts
	// before allocating.
	if n > uint64(len(r.b))/3+1 {
		return nil, fmt.Errorf("record count %d exceeds file", n)
	}
	out := make([]WaiterRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var wr WaiterRecord
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		wr.Slot = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, err
		}
		wr.T = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, err
		}
		if v > 0xffff {
			return nil, fmt.Errorf("waiter edge %d overflows uint16", v)
		}
		wr.E = uint16(v)
		out = append(out, wr)
	}
	return out, nil
}

// Latest returns the newest valid snapshot for rank under dir, walking
// epochs newest-first and skipping (with a reason) any file that fails
// validation — the torn-latest-epoch fallback. It returns (nil, skipped,
// nil) when the rank has no valid snapshot, and an error only when the
// directory itself cannot be read.
func Latest(dir string, rank int) (snap *Snapshot, skipped []string, err error) {
	epochs, err := Epochs(dir, rank)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		path := Path(dir, rank, epochs[i])
		s, err := Read(path)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		return s, skipped, nil
	}
	return nil, skipped, nil
}

// Epochs lists the epochs with a snapshot file for rank under dir, in
// increasing order. It does not validate the files.
func Epochs(dir string, rank int) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range entries {
		r, ep, ok := parseName(e.Name())
		if ok && r == rank {
			out = append(out, ep)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Prune deletes rank's snapshot files under dir beyond the keep newest
// epochs. Keeping at least two epochs is what makes the torn-latest
// fallback possible.
func Prune(dir string, rank int, keep int) error {
	epochs, err := Epochs(dir, rank)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for i := 0; i+keep < len(epochs); i++ {
		if err := os.Remove(Path(dir, rank, epochs[i])); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes rank's snapshot of the given epoch, ignoring a missing
// file (an aborted epoch may have failed before its write).
func Remove(dir string, rank int, epoch int64) error {
	err := os.Remove(Path(dir, rank, epoch))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
