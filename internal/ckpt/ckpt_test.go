package ckpt

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample(rank int, epoch int64) *Snapshot {
	return &Snapshot{
		Meta: Meta{
			N: 1_000_000, X: 4, P: 0.5, Seed: 0xdeadbeefcafe,
			Ranks: 8, Rank: rank, Scheme: "RRP",
			Resolve: 1, RecomputeDepth: 40,
		},
		Epoch:   epoch,
		NextTag: 42,
		F:       []int64{-1, 0, 7, -1, 123456789, 3},
		Workers: []WorkerState{
			{
				Lo: 0, Hi: 300,
				Susp: []SuspRecord{
					{Idx: 17, Edge: 2, RNG: [4]uint64{1, ^uint64(0), 3, 4}},
					{Idx: 21, Edge: 0, RNG: [4]uint64{5, 6, 7, 8}},
				},
				Waiters: []WaiterRecord{
					{Slot: 99, T: 200, E: 1},
					{Slot: 99, T: 201, E: 0},
				},
				// Two coalescing chains: slot 802 with a secondary, slot
				// 1205 with the primary alone.
				Remote: []WaiterRecord{
					{Slot: 802, T: 310, E: 2},
					{Slot: 802, T: 311, E: 0},
					{Slot: 1205, T: 320, E: 1},
				},
			},
			// Empty (not nil) slices: the parser always materializes
			// them, and DeepEqual distinguishes nil from empty.
			{Lo: 300, Hi: 625, Susp: []SuspRecord{}, Waiters: []WaiterRecord{}, Remote: []WaiterRecord{}},
		},
		Outbound: []OutboundBatch{{To: 3, Frame: []byte{0xca, 0xfe, 0x00}}},
		Stats:    Stats{Retries: 5, QueuedWaits: 6, LocalWaits: 7},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sample(2, 9)
	path, size, err := Write(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if path != Path(dir, 2, 9) {
		t.Fatalf("wrote %s, want %s", path, Path(dir, 2, 9))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != size {
		t.Fatalf("reported size %d, file is %d", size, fi.Size())
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// The optional v4 sink-mark section must round-trip when present (a
// streamed run) and stay absent when nil (an in-memory run).
func TestWriteReadSinkMark(t *testing.T) {
	dir := t.TempDir()
	want := sample(1, 3)
	want.Sink = &SinkMark{Offset: 1 << 40, Blocks: 12345, Edges: 987654321}
	path, _, err := Write(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sink-mark round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Sink == nil || *got.Sink != *want.Sink {
		t.Fatalf("Sink = %+v, want %+v", got.Sink, want.Sink)
	}
}

func TestWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Write(dir, sample(0, 1)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
}

// Every single-byte corruption anywhere in the file must be caught by
// the CRC (or, for the trailer bytes themselves, by the CRC comparison).
func TestReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path, _, err := Write(dir, sample(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(Magic), len(clean) / 2, len(clean) - 5, len(clean) - 1} {
		data := append([]byte(nil), clean...)
		data[pos] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
}

func TestReadDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path, _, err := Write(dir, sample(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(Magic), len(clean) / 3, len(clean) - 1} {
		if err := os.WriteFile(path, clean[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestReadRejectsVersionAndMagic(t *testing.T) {
	if _, err := parse([]byte("NOTPAGEN\x01whatever....")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	// A future-version file with a correct CRC must be rejected by
	// version, not CRC.
	dir := t.TempDir()
	path, _, err := Write(dir, sample(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)] = Version + 1 // version uvarint
	body := data[: len(data)-4 : len(data)-4]
	sum := crc32.Checksum(body, castagnoli)
	data = append(body, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	if _, err := parse(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v", err)
	}
}

func TestLatestSkipsTornNewest(t *testing.T) {
	dir := t.TempDir()
	for _, epoch := range []int64{1, 2, 3} {
		if _, _, err := Write(dir, sample(0, epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear epoch 3.
	path := Path(dir, 0, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := Latest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Epoch != 2 {
		t.Fatalf("Latest = %+v, want epoch 2", snap)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "epoch00000003") {
		t.Fatalf("skipped = %v, want the epoch-3 file", skipped)
	}
}

func TestLatestEmptyAndMissing(t *testing.T) {
	snap, skipped, err := Latest(filepath.Join(t.TempDir(), "nonexistent"), 0)
	if snap != nil || skipped != nil || err != nil {
		t.Fatalf("missing dir: (%v, %v, %v), want all nil", snap, skipped, err)
	}
	snap, _, err = Latest(t.TempDir(), 0)
	if snap != nil || err != nil {
		t.Fatalf("empty dir: (%v, %v), want nil snapshot, nil error", snap, err)
	}
}

func TestEpochsPruneRemove(t *testing.T) {
	dir := t.TempDir()
	for _, epoch := range []int64{5, 1, 3} {
		if _, _, err := Write(dir, sample(0, epoch)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Write(dir, sample(1, 9)); err != nil {
		t.Fatal(err)
	}
	epochs, err := Epochs(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []int64{1, 3, 5}) {
		t.Fatalf("Epochs = %v, want [1 3 5]", epochs)
	}
	if err := Prune(dir, 0, 2); err != nil {
		t.Fatal(err)
	}
	if epochs, _ = Epochs(dir, 0); !reflect.DeepEqual(epochs, []int64{3, 5}) {
		t.Fatalf("after prune: %v, want [3 5]", epochs)
	}
	// Rank 1's file is untouched by rank 0 operations.
	if epochs, _ = Epochs(dir, 1); !reflect.DeepEqual(epochs, []int64{9}) {
		t.Fatalf("rank 1 epochs: %v, want [9]", epochs)
	}
	if err := Remove(dir, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := Remove(dir, 0, 5); err != nil {
		t.Fatalf("double remove: %v, want nil", err)
	}
	if epochs, _ = Epochs(dir, 0); !reflect.DeepEqual(epochs, []int64{3}) {
		t.Fatalf("after remove: %v, want [3]", epochs)
	}
}

func TestPathNameRoundTrip(t *testing.T) {
	name := filepath.Base(Path("d", 12, 345))
	rank, epoch, ok := parseName(name)
	if !ok || rank != 12 || epoch != 345 {
		t.Fatalf("parseName(%q) = (%d, %d, %v)", name, rank, epoch, ok)
	}
	if _, _, ok := parseName("rank0001-epoch00000001.ckpt.tmp"); ok {
		t.Fatal("parseName accepted a .tmp file")
	}
	if _, _, ok := parseName("unrelated.txt"); ok {
		t.Fatal("parseName accepted an unrelated file")
	}
}
