package model

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []Params{
		{N: 2, X: 1, P: 0.5},
		{N: 100, X: 4, P: 0.5},
		{N: 10, X: 1, P: 0}, // pure copy is fine at x = 1
		{N: 10, X: 1, P: 1}, // pure direct is fine at x = 1
		{N: 10, X: 3, P: 0.99},
		{N: 10, X: 9, P: 0.3},
	}
	for _, pr := range good {
		if err := pr.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", pr, err)
		}
	}
	bad := []Params{
		{N: 1, X: 1, P: 0.5},   // n must exceed x
		{N: 4, X: 4, P: 0.5},   // n == x
		{N: 10, X: 0, P: 0.5},  // x >= 1
		{N: 10, X: -2, P: 0.5}, // x >= 1
		{N: 10, X: 2, P: -0.1}, // p range
		{N: 10, X: 2, P: 1.1},  // p range
		{N: 10, X: 2, P: 0},    // p = 0 with x > 1
		{N: 10, X: 2, P: 1},    // p = 1 with x > 1 (node x+1 livelocks)
	}
	for _, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", pr)
		}
	}
}

func TestEdgeCount(t *testing.T) {
	cases := []struct {
		pr   Params
		want int64
	}{
		{Params{N: 2, X: 1}, 1},      // single edge 1->0
		{Params{N: 10, X: 1}, 9},     // tree
		{Params{N: 10, X: 4}, 30},    // 6 clique + 6*4
		{Params{N: 100, X: 10}, 945}, // 45 + 90*10
	}
	for _, c := range cases {
		if got := c.pr.M(); got != c.want {
			t.Errorf("M(%+v) = %d, want %d", c.pr, got, c.want)
		}
	}
}

func TestCliqueHelpers(t *testing.T) {
	pr := Params{N: 10, X: 4, P: 0.5}
	var cliqueEdges int64
	for t64 := int64(0); t64 < pr.N; t64++ {
		if t64 < 4 != pr.IsClique(t64) {
			t.Errorf("IsClique(%d) wrong", t64)
		}
		cliqueEdges += pr.CliqueEdgeCount(t64)
	}
	if cliqueEdges != 6 {
		t.Errorf("clique edges = %d, want 6", cliqueEdges)
	}
}

func TestBootstrapF(t *testing.T) {
	pr := Params{N: 10, X: 4, P: 0.5}
	for e := 0; e < 4; e++ {
		v, ok := pr.BootstrapF(4, e)
		if !ok || v != int64(e) {
			t.Errorf("BootstrapF(4,%d) = %d,%v", e, v, ok)
		}
	}
	if _, ok := pr.BootstrapF(5, 0); ok {
		t.Error("node 5 reported bootstrap")
	}
	if _, ok := pr.BootstrapF(3, 0); ok {
		t.Error("clique node reported bootstrap")
	}
}

func TestKRange(t *testing.T) {
	pr := Params{N: 10, X: 4, P: 0.5}
	lo, hi := pr.KRange(7)
	if lo != 4 || hi != 7 {
		t.Errorf("KRange(7) = [%d,%d)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("KRange(4) did not panic")
		}
	}()
	pr.KRange(4)
}

func TestKRangeX1(t *testing.T) {
	pr := Params{N: 10, X: 1, P: 0.5}
	lo, hi := pr.KRange(2)
	if lo != 1 || hi != 2 {
		t.Errorf("KRange(2) = [%d,%d), want [1,2)", lo, hi)
	}
}

func TestTraceRecordAndIdx(t *testing.T) {
	pr := Params{N: 6, X: 2, P: 0.5}
	tr := NewTrace(pr)
	if tr.Slots() != 8 {
		t.Fatalf("Slots = %d, want 8", tr.Slots())
	}
	tr.RecordBootstrap(2, 0)
	tr.RecordBootstrap(2, 1)
	tr.RecordDirect(3, 0, 2)
	tr.RecordCopy(3, 1, 2, 1)

	i := tr.Idx(3, 1)
	if !tr.Copied[i] || tr.K[i] != 2 || tr.L[i] != 1 {
		t.Fatalf("copy slot wrong: k=%d l=%d copied=%v", tr.K[i], tr.L[i], tr.Copied[i])
	}
	i = tr.Idx(3, 0)
	if tr.Copied[i] || tr.K[i] != 2 || tr.L[i] != -1 {
		t.Fatalf("direct slot wrong: k=%d l=%d copied=%v", tr.K[i], tr.L[i], tr.Copied[i])
	}
	i = tr.Idx(2, 0)
	if tr.K[i] != -1 || tr.Copied[i] {
		t.Fatal("bootstrap slot wrong")
	}
}

func TestTraceIdxPanics(t *testing.T) {
	tr := NewTrace(Params{N: 6, X: 2, P: 0.5})
	for _, c := range []struct {
		t int64
		e int
	}{{1, 0}, {6, 0}, {3, -1}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Idx(%d,%d) did not panic", c.t, c.e)
				}
			}()
			tr.Idx(c.t, c.e)
		}()
	}
}

// Property: slot indices are a bijection onto [0, slots).
func TestTraceIdxBijectionProperty(t *testing.T) {
	f := func(nRaw, xRaw uint8) bool {
		x := int(xRaw%8) + 1
		n := int64(x) + int64(nRaw%50) + 1
		pr := Params{N: n, X: x, P: 0.5}
		tr := NewTrace(pr)
		seen := make([]bool, tr.Slots())
		for tt := int64(x); tt < n; tt++ {
			for e := 0; e < x; e++ {
				i := tr.Idx(tt, e)
				if i < 0 || i >= len(seen) || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
