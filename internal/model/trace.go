package model

import "fmt"

// Trace records, for every attachment slot (t, e) with t >= x, the final
// (post-retry) decision the generator made: the drawn candidate k, the
// copy index l, and whether the copy branch was taken. Traces drive the
// dependency-chain analysis validating Lemma 3.1 and Theorem 3.3.
//
// Slots are stored flat: slot (t, e) lives at (t-x)*x + e. Node x's
// bootstrap slots are recorded as direct with K = -1.
type Trace struct {
	Params Params
	K      []int64
	L      []int32
	Copied []bool
}

// NewTrace allocates a trace for the given parameters.
func NewTrace(pr Params) *Trace {
	slots := (pr.N - int64(pr.X)) * int64(pr.X)
	return &Trace{
		Params: pr,
		K:      make([]int64, slots),
		L:      make([]int32, slots),
		Copied: make([]bool, slots),
	}
}

// Idx returns the flat slot index of (t, e). It panics on out-of-range
// arguments.
func (tr *Trace) Idx(t int64, e int) int {
	x := int64(tr.Params.X)
	if t < x || t >= tr.Params.N || e < 0 || e >= tr.Params.X {
		panic(fmt.Sprintf("model: trace slot (%d,%d) out of range (n=%d, x=%d)", t, e, tr.Params.N, tr.Params.X))
	}
	return int((t-x)*x + int64(e))
}

// RecordDirect records slot (t, e) as a direct attachment to k.
func (tr *Trace) RecordDirect(t int64, e int, k int64) {
	i := tr.Idx(t, e)
	tr.K[i] = k
	tr.L[i] = -1
	tr.Copied[i] = false
}

// RecordCopy records slot (t, e) as a copy of F_k(l).
func (tr *Trace) RecordCopy(t int64, e int, k int64, l int) {
	i := tr.Idx(t, e)
	tr.K[i] = k
	tr.L[i] = int32(l)
	tr.Copied[i] = true
}

// RecordBootstrap records slot (t, e) as fixed by the bootstrap.
func (tr *Trace) RecordBootstrap(t int64, e int) {
	i := tr.Idx(t, e)
	tr.K[i] = -1
	tr.L[i] = -1
	tr.Copied[i] = false
}

// Slots returns the number of recorded slots.
func (tr *Trace) Slots() int { return len(tr.K) }
