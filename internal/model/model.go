// Package model defines the preferential-attachment copy-model semantics
// shared by the sequential baselines (internal/seq) and the parallel
// engine (internal/core): parameter validation, the bootstrap rules the
// paper leaves implicit, and the derived edge counts.
//
// Bootstrap rules (see DESIGN.md "Substitutions"):
//
//   - Nodes are labelled 0..n-1. The initial network is a clique on
//     0..x-1; clique node t contributes edges (t, j) for j < t, so each
//     clique edge is emitted exactly once, by its higher endpoint.
//   - Node x, for which the paper's draw range [x, t-1] is empty,
//     connects to every clique node: F_x(e) = e.
//   - Node t > x draws k uniformly from [x, t-1] per Algorithm 3.2; with
//     probability p it attaches to k directly, otherwise it copies
//     F_k(l) for a uniform l in [0, x-1].
//
// Under these rules every outgoing attachment F_t(e) satisfies
// F_t(e) < t (no self-loops, acyclic attachment), and the graph has
// exactly x(x-1)/2 + (n-x)*x edges.
package model

import (
	"errors"
	"fmt"

	"pagen/internal/xrand"
)

// DefaultP is the copy probability at which the copy model coincides with
// the Barabási–Albert model (Section 3.1 of the paper).
const DefaultP = 0.5

// Params are the copy-model parameters.
type Params struct {
	// N is the number of nodes, labelled 0..N-1.
	N int64
	// X is the number of edges each non-clique node contributes
	// (the paper's x; BA's m parameter).
	X int
	// P is the probability of a direct attachment (Eqn 1); 1-P is the
	// probability of copying (Eqn 2). P = 0.5 gives exact BA.
	P float64
}

// Validate checks the parameters. N must leave at least one generating
// node after the clique (N > X), X >= 1, and P in [0, 1]. P = 0 is
// rejected for X > 1: a pure-copy process can deadlock node x+1, whose
// only direct candidate is excluded (and the paper's analysis assumes
// p > 0 for chain termination).
func (pr Params) Validate() error {
	if pr.X < 1 {
		return fmt.Errorf("model: x = %d, want >= 1", pr.X)
	}
	if pr.N <= int64(pr.X) {
		return fmt.Errorf("model: n = %d must exceed x = %d", pr.N, pr.X)
	}
	if pr.P < 0 || pr.P > 1 {
		return fmt.Errorf("model: p = %v outside [0,1]", pr.P)
	}
	if pr.P == 0 && pr.X > 1 {
		return errors.New("model: p = 0 with x > 1 can livelock duplicate retries")
	}
	if pr.P == 1 && pr.X > 1 {
		// Node x+1 must place x distinct edges but its only direct
		// candidate is node x itself; without the copy branch the
		// duplicate-avoidance retry of Algorithm 3.2 never terminates.
		return errors.New("model: p = 1 with x > 1 cannot place distinct edges for node x+1")
	}
	return nil
}

// M returns the total number of edges the model produces:
// the clique's x(x-1)/2 plus x per node from x to n-1.
func (pr Params) M() int64 {
	x := int64(pr.X)
	return x*(x-1)/2 + (pr.N-x)*x
}

// CliqueEdgeCount returns the number of clique edges node t contributes
// (t edges, to each smaller-labelled clique node) if t is a clique node,
// else 0.
func (pr Params) CliqueEdgeCount(t int64) int64 {
	if t < int64(pr.X) {
		return t
	}
	return 0
}

// IsClique reports whether t is one of the initial clique nodes.
func (pr Params) IsClique(t int64) bool { return t < int64(pr.X) }

// BootstrapF returns F_t(e) for the nodes whose attachments are fixed by
// the bootstrap rather than drawn: node x attaches to every clique node
// (F_x(e) = e). ok is false for any other node.
func (pr Params) BootstrapF(t int64, e int) (v int64, ok bool) {
	if t == int64(pr.X) {
		return int64(e), true
	}
	return 0, false
}

// KRange returns the half-open interval [lo, hi) from which node t draws
// its uniform candidate k (Algorithm 3.2 line 4: [x, t-1] inclusive).
// It panics if t has no draw range (clique nodes and node x).
func (pr Params) KRange(t int64) (lo, hi int64) {
	if t <= int64(pr.X) {
		panic(fmt.Sprintf("model: node %d has no draw range (x = %d)", t, pr.X))
	}
	return int64(pr.X), t
}

// Attempt is one attachment attempt of Algorithm 3.2: the drawn
// candidate k, whether the attachment is direct (line 6), and — for the
// copy branch (line 11) — the copied slot index l.
type Attempt struct {
	K      int64
	L      int
	Direct bool
}

// Drawer replays node t's attachment-attempt draw sequence from a
// random stream, hoisting the draw-range arithmetic out of the retry
// loop. The parallel engine's generation hot path and the recompute
// resolver both draw through it, so the two can never disagree about
// the per-node stream layout: each Next consumes exactly one attempt —
// k, then the direct test, then l for copies — duplicate retries
// included.
type Drawer struct {
	lo   int64
	span uint64
	x    uint64
	p    float64
}

// NewDrawer returns the drawer for node t. Like KRange it panics if t
// has no draw range (clique nodes and node x).
func (pr Params) NewDrawer(t int64) Drawer {
	lo, hi := pr.KRange(t)
	return Drawer{lo: lo, span: uint64(hi - lo), x: uint64(pr.X), p: pr.P}
}

// Next draws one attachment attempt from rng.
func (d *Drawer) Next(rng *xrand.Rand) Attempt {
	k := d.lo + int64(rng.Uint64n(d.span))
	if rng.Float64() < d.p {
		return Attempt{K: k, Direct: true}
	}
	return Attempt{K: k, L: int(rng.Uint64n(d.x))}
}
