// Package stats provides the numerical routines the generator and its
// analysis layer depend on: harmonic numbers (the load model of the paper
// is built entirely on H_k), descriptive statistics, least-squares fits,
// and power-law exponent estimation for validating degree distributions.
package stats

import "math"

// EulerGamma is the Euler–Mascheroni constant.
const EulerGamma = 0.57721566490153286060651209008240243

// harmonicExactLimit is the largest k for which Harmonic computes the sum
// directly; above it the asymptotic expansion is exact to double precision.
const harmonicExactLimit = 128

// harmonicTable caches H_1..H_harmonicExactLimit.
var harmonicTable = func() []float64 {
	t := make([]float64, harmonicExactLimit+1)
	sum := 0.0
	for k := 1; k <= harmonicExactLimit; k++ {
		sum += 1 / float64(k)
		t[k] = sum
	}
	return t
}()

// Harmonic returns the k-th harmonic number H_k = sum_{i=1..k} 1/i.
// H_0 = 0. For k <= 128 the value is an exact partial sum; for larger k it
// uses the Euler–Maclaurin expansion
//
//	H_k = ln k + gamma + 1/(2k) - 1/(12k^2) + 1/(120k^4) - ...
//
// whose truncation error at k > 128 is below 1e-19, i.e. exact in float64.
func Harmonic(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= harmonicExactLimit {
		return harmonicTable[k]
	}
	x := float64(k)
	inv := 1 / x
	inv2 := inv * inv
	return math.Log(x) + EulerGamma + inv/2 - inv2/12 + inv2*inv2/120
}

// HarmonicDiff returns H_b - H_a for 0 <= a <= b, computed to avoid
// cancellation when a and b are both large: for a, b above the exact
// limit it evaluates ln(b/a) plus the difference of correction terms.
func HarmonicDiff(a, b int64) float64 {
	if a > b {
		return -HarmonicDiff(b, a)
	}
	if a < 0 {
		a = 0
	}
	if b <= harmonicExactLimit {
		return Harmonic(b) - Harmonic(a)
	}
	if a <= harmonicExactLimit {
		return Harmonic(b) - Harmonic(a)
	}
	x, y := float64(a), float64(b)
	invA, invB := 1/x, 1/y
	cA := invA/2 - invA*invA/12 + invA*invA*invA*invA/120
	cB := invB/2 - invB*invB/12 + invB*invB*invB*invB/120
	return math.Log(y/x) + cB - cA
}

// SumHarmonic returns sum_{k=a}^{b} H_k for 0 <= a <= b, using the closed
// form sum_{k=1}^{m} H_k = (m+1)H_m - m (Concrete Mathematics Eqn 2.36,
// the identity the paper invokes for the consecutive-partition load).
func SumHarmonic(a, b int64) float64 {
	if a > b {
		return 0
	}
	if a < 1 {
		a = 1
	}
	prefix := func(m int64) float64 {
		if m <= 0 {
			return 0
		}
		return float64(m+1)*Harmonic(m) - float64(m)
	}
	return prefix(b) - prefix(a-1)
}
