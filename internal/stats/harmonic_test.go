package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveHarmonic(k int64) float64 {
	s := 0.0
	for i := int64(1); i <= k; i++ {
		s += 1 / float64(i)
	}
	return s
}

func TestHarmonicSmallValues(t *testing.T) {
	cases := []struct {
		k    int64
		want float64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.0/3 + 1.5},
		{4, 25.0 / 12},
	}
	for _, c := range cases {
		if got := Harmonic(c.k); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestHarmonicMatchesNaiveAcrossExactBoundary(t *testing.T) {
	for _, k := range []int64{100, 127, 128, 129, 200, 1000, 10000} {
		got := Harmonic(k)
		want := naiveHarmonic(k)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("Harmonic(%d) = %.15f, want %.15f", k, got, want)
		}
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for k := int64(1); k <= 2000; k++ {
		h := Harmonic(k)
		if h <= prev {
			t.Fatalf("Harmonic not strictly increasing at k=%d", k)
		}
		prev = h
	}
}

func TestHarmonicAsymptotic(t *testing.T) {
	// H_k - ln k -> gamma.
	k := int64(10_000_000)
	if diff := Harmonic(k) - math.Log(float64(k)); math.Abs(diff-EulerGamma) > 1e-7 {
		t.Fatalf("H_k - ln k = %v, want ~gamma", diff)
	}
}

func TestHarmonicDiff(t *testing.T) {
	cases := [][2]int64{{0, 10}, {5, 5}, {10, 20}, {100, 200}, {500, 100000}, {1 << 30, 1<<30 + 1000}}
	for _, c := range cases {
		got := HarmonicDiff(c[0], c[1])
		want := Harmonic(c[1]) - Harmonic(c[0])
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("HarmonicDiff(%d,%d) = %v, want %v", c[0], c[1], got, want)
		}
	}
	// Antisymmetry.
	if got := HarmonicDiff(20, 10); math.Abs(got+HarmonicDiff(10, 20)) > 1e-15 {
		t.Errorf("HarmonicDiff not antisymmetric: %v", got)
	}
}

func TestHarmonicDiffLargeNoCancellation(t *testing.T) {
	// For huge neighbouring arguments the naive subtraction loses all
	// precision; the direct form must equal the analytic ln ratio.
	a := int64(1) << 40
	b := a + a/1000
	got := HarmonicDiff(a, b)
	want := math.Log(float64(b) / float64(a)) // correction terms are ~1e-13 relative here
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("HarmonicDiff(%d,%d) = %v, want ~%v", a, b, got, want)
	}
}

func TestSumHarmonicClosedForm(t *testing.T) {
	// Check against a direct sum for a handful of ranges.
	cases := [][2]int64{{1, 1}, {1, 10}, {5, 12}, {1, 500}, {100, 300}}
	for _, c := range cases {
		want := 0.0
		for k := c[0]; k <= c[1]; k++ {
			want += naiveHarmonic(k)
		}
		got := SumHarmonic(c[0], c[1])
		if math.Abs(got-want) > 1e-8*math.Max(1, want) {
			t.Errorf("SumHarmonic(%d,%d) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestSumHarmonicEdgeCases(t *testing.T) {
	if got := SumHarmonic(5, 4); got != 0 {
		t.Errorf("SumHarmonic(5,4) = %v, want 0", got)
	}
	if got := SumHarmonic(-3, 0); got != 0 {
		t.Errorf("SumHarmonic(-3,0) = %v, want 0", got)
	}
	// a < 1 clamps to 1.
	if got, want := SumHarmonic(-2, 3), SumHarmonic(1, 3); got != want {
		t.Errorf("SumHarmonic(-2,3) = %v, want %v", got, want)
	}
}

// Property: prefix-sum consistency SumHarmonic(1,m) = (m+1)H_m - m.
func TestSumHarmonicIdentityProperty(t *testing.T) {
	f := func(m16 uint16) bool {
		m := int64(m16%5000) + 1
		got := SumHarmonic(1, m)
		want := float64(m+1)*Harmonic(m) - float64(m)
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
