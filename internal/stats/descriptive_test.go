package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", r.Var())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Var() != 0 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatalf("single-sample stats wrong: %+v", r)
	}
}

// Property: Running matches the batch formulas.
func TestRunningMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Constrain magnitude to keep the naive batch formula stable.
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		if math.Abs(r.Mean()-Mean(xs)) > 1e-8*scale {
			return false
		}
		vscale := math.Max(1, Variance(xs))
		return math.Abs(r.Var()-Variance(xs)) <= 1e-6*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of one sample != 0")
	}
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-5.0/3) > 1e-12 {
		t.Errorf("Variance = %v", Variance(xs))
	}
}

func TestMinMax(t *testing.T) {
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) reported ok")
	}
	min, max, ok := MinMax([]float64{3, -1, 7, 2})
	if !ok || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, ok)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
		{-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Must not mutate the input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("Quantile mutated input slice")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced imbalance = %v", got)
	}
	if got := Imbalance([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
	if !math.IsNaN(Imbalance(nil)) || !math.IsNaN(Imbalance([]float64{0, 0})) {
		t.Error("degenerate imbalance not NaN")
	}
}

func TestChiSquare(t *testing.T) {
	if got := ChiSquare([]float64{10, 10}, []float64{10, 10}); got != 0 {
		t.Errorf("perfect fit chi2 = %v", got)
	}
	// (12-10)^2/10 + (8-10)^2/10 = 0.8
	if got := ChiSquare([]float64{12, 8}, []float64{10, 10}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("chi2 = %v, want 0.8", got)
	}
	// Zero-expected entries skipped.
	if got := ChiSquare([]float64{5, 12}, []float64{0, 10}); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("chi2 with zero expected = %v, want 0.4", got)
	}
}
