package stats

import (
	"math"
	"sort"
)

// Running accumulates count, mean and variance online (Welford's method),
// so per-rank load statistics can be gathered in one pass without storing
// samples. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 if empty).
func (r *Running) Max() float64 { return r.max }

// Mean returns the mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// MinMax returns the extrema of xs; ok is false for empty input.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Imbalance returns max/mean of xs, the standard load-imbalance factor;
// 1.0 is perfect balance. Returns NaN for empty or zero-mean input.
func Imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	_, max, _ := MinMax(xs)
	return max / m
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts. Entries with expected <= 0 are skipped.
func ChiSquare(observed, expected []float64) float64 {
	n := len(observed)
	if len(expected) < n {
		n = len(expected)
	}
	chi2 := 0.0
	for i := 0; i < n; i++ {
		if expected[i] <= 0 {
			continue
		}
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
	}
	return chi2
}
