package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinearFit is the result of an ordinary least-squares line fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int     // points used
}

// ErrTooFewPoints is returned when a fit has fewer than two usable points.
var ErrTooFewPoints = errors.New("stats: too few points for fit")

// LeastSquares fits y = a*x + b by ordinary least squares.
func LeastSquares(xs, ys []float64) (LinearFit, error) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return LinearFit{}, ErrTooFewPoints
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // all y identical and fitted exactly
	}
	return fit, nil
}

// LogLogFit fits y = c * x^slope by least squares in log-log space,
// skipping non-positive points. The returned Slope is the power-law
// exponent of the fitted relation.
func LogLogFit(xs, ys []float64) (LinearFit, error) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return LeastSquares(lx, ly)
}

// PowerLawFit is the result of a maximum-likelihood power-law fit
// P(d) ~ d^-Gamma for d >= DMin.
type PowerLawFit struct {
	Gamma float64 // estimated exponent
	DMin  int64   // lower cutoff used
	N     int64   // samples at or above DMin
	KS    float64 // Kolmogorov–Smirnov distance of fit vs empirical CCDF
}

// PowerLawMLE estimates the exponent gamma of a discrete power-law tail by
// the continuous-approximation maximum-likelihood estimator of Clauset,
// Shalizi & Newman:
//
//	gamma = 1 + n / sum_i ln(d_i / (dmin - 1/2))
//
// using only samples d_i >= dmin. The estimator is the standard tool for
// validating that a generated network's degree distribution is power-law,
// as the paper does for Figure 4 (reporting gamma ≈ 2.7 at x = 4).
func PowerLawMLE(degrees []int64, dmin int64) (PowerLawFit, error) {
	if dmin < 1 {
		dmin = 1
	}
	var n int64
	var sum float64
	shift := float64(dmin) - 0.5
	for _, d := range degrees {
		if d >= dmin {
			n++
			sum += math.Log(float64(d) / shift)
		}
	}
	if n < 2 || sum <= 0 {
		return PowerLawFit{}, ErrTooFewPoints
	}
	fit := PowerLawFit{
		Gamma: 1 + float64(n)/sum,
		DMin:  dmin,
		N:     n,
	}
	fit.KS = powerLawKS(degrees, fit.Gamma, dmin)
	return fit, nil
}

// powerLawKS computes the KS distance between the empirical CCDF of the
// tail (d >= dmin) and the fitted discrete power-law CCDF in the
// continuous approximation of Clauset et al.:
//
//	Pr{D >= d} = ((d - 1/2) / (dmin - 1/2))^{-(gamma-1)}
//
// which equals 1 at d = dmin, matching the empirical tail exactly there.
func powerLawKS(degrees []int64, gamma float64, dmin int64) float64 {
	tail := make([]int64, 0, len(degrees))
	for _, d := range degrees {
		if d >= dmin {
			tail = append(tail, d)
		}
	}
	if len(tail) == 0 {
		return math.NaN()
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	n := float64(len(tail))
	shift := float64(dmin) - 0.5
	maxD := 0.0
	for i := 0; i < len(tail); {
		d := tail[i]
		j := i
		for j < len(tail) && tail[j] == d {
			j++
		}
		// Empirical Pr{D >= d} counts samples from index i on.
		emp := 1 - float64(i)/n
		model := math.Pow((float64(d)-0.5)/shift, -(gamma - 1))
		if diff := math.Abs(emp - model); diff > maxD {
			maxD = diff
		}
		// Also compare just above this value (empirical drops to j).
		empAbove := 1 - float64(j)/n
		modelAbove := math.Pow((float64(d)+0.5)/shift, -(gamma - 1))
		if diff := math.Abs(empAbove - modelAbove); diff > maxD {
			maxD = diff
		}
		i = j
	}
	return maxD
}

// BestPowerLawFit estimates the power-law exponent with the tail cutoff
// chosen by KS minimisation over candidate dmin values (the Clauset,
// Shalizi & Newman model-selection recipe): for each dmin between lo and
// hi, fit by MLE and keep the fit whose KS distance is smallest. It is
// the robust alternative to hand-picking dmin.
func BestPowerLawFit(degrees []int64, lo, hi int64) (PowerLawFit, error) {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		return PowerLawFit{}, fmt.Errorf("stats: dmin range [%d,%d] empty", lo, hi)
	}
	best := PowerLawFit{KS: math.Inf(1)}
	found := false
	for dmin := lo; dmin <= hi; dmin++ {
		fit, err := PowerLawMLE(degrees, dmin)
		if err != nil {
			continue // tail too small at this cutoff
		}
		// Require a minimally meaningful tail.
		if fit.N < 50 {
			continue
		}
		if fit.KS < best.KS {
			best = fit
			found = true
		}
	}
	if !found {
		return PowerLawFit{}, ErrTooFewPoints
	}
	return best, nil
}

// SamplePowerLaw draws n samples from a discrete power law with exponent
// gamma and minimum value dmin using the continuous approximation of
// Clauset, Shalizi & Newman (Appendix D):
//
//	d = floor((dmin - 1/2) * (1-u)^{-1/(gamma-1)} + 1/2)
//
// which pairs exactly with the shifted MLE in PowerLawMLE. rng must return
// uniforms in [0,1). Used by tests to validate the estimator itself.
func SamplePowerLaw(n int, gamma float64, dmin int64, rng func() float64) []int64 {
	out := make([]int64, n)
	exp := -1 / (gamma - 1)
	shift := float64(dmin) - 0.5
	for i := range out {
		u := rng()
		v := shift*math.Pow(1-u, exp) + 0.5
		out[i] = int64(v)
		if out[i] < dmin {
			out[i] = dmin
		}
	}
	return out
}
