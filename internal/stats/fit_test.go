package stats

import (
	"math"
	"testing"

	"pagen/internal/xrand"
)

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x - 3
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept+3) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := xrand.New(4)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.7*xs[i] + 10 + (rng.Float64()-0.5)*2
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.7) > 0.01 {
		t.Fatalf("slope = %v, want ~0.7", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v too low", fit.R2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("single point did not error")
	}
	if _, err := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x did not error")
	}
}

func TestLeastSquaresConstantY(t *testing.T) {
	fit, err := LeastSquares([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Fatalf("constant-y fit = %+v", fit)
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		x := float64(i + 1)
		xs[i] = x
		ys[i] = 3 * math.Pow(x, -2.5)
	}
	fit, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+2.5) > 1e-9 {
		t.Fatalf("loglog slope = %v, want -2.5", fit.Slope)
	}
	if math.Abs(math.Exp(fit.Intercept)-3) > 1e-9 {
		t.Fatalf("prefactor = %v, want 3", math.Exp(fit.Intercept))
	}
}

func TestLogLogFitSkipsNonPositive(t *testing.T) {
	xs := []float64{0, -1, 1, 2, 4}
	ys := []float64{9, 9, 1, 2, 4}
	fit, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Fatalf("used %d points, want 3", fit.N)
	}
	if math.Abs(fit.Slope-1) > 1e-12 {
		t.Fatalf("slope = %v, want 1", fit.Slope)
	}
}

func TestPowerLawMLERecoversExponent(t *testing.T) {
	rng := xrand.New(8)
	for _, gamma := range []float64{2.1, 2.5, 3.0} {
		samples := SamplePowerLaw(200000, gamma, 4, rng.Float64)
		fit, err := PowerLawMLE(samples, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Discretisation of the continuous sampler biases the estimate
		// slightly; 0.1 absolute tolerance is ample to catch regressions.
		if math.Abs(fit.Gamma-gamma) > 0.1 {
			t.Errorf("gamma estimate %v for true %v", fit.Gamma, gamma)
		}
		if fit.KS > 0.05 {
			t.Errorf("KS = %v too large for true power law", fit.KS)
		}
		if fit.N == 0 || fit.DMin != 4 {
			t.Errorf("fit metadata wrong: %+v", fit)
		}
	}
}

func TestPowerLawMLEFiltersBelowDMin(t *testing.T) {
	degrees := []int64{1, 1, 1, 1, 10, 20, 40}
	fit, err := PowerLawMLE(degrees, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Fatalf("N = %d, want 3", fit.N)
	}
}

func TestPowerLawMLEErrors(t *testing.T) {
	if _, err := PowerLawMLE([]int64{5}, 1); err == nil {
		t.Error("single sample did not error")
	}
	if _, err := PowerLawMLE([]int64{1, 1, 1}, 10); err == nil {
		t.Error("empty tail did not error")
	}
}

func TestPowerLawMLEClampsDMin(t *testing.T) {
	degrees := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := PowerLawMLE(degrees, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLawMLE(degrees, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("dmin=0 not clamped to 1: %+v vs %+v", a, b)
	}
}

func TestPowerLawKSDetectsNonPowerLaw(t *testing.T) {
	// Uniform degrees are far from any power law: KS should be large
	// relative to the power-law case.
	degrees := make([]int64, 5000)
	rng := xrand.New(3)
	for i := range degrees {
		degrees[i] = 10 + rng.Int64n(90)
	}
	fit, err := PowerLawMLE(degrees, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fit.KS < 0.1 {
		t.Fatalf("KS = %v suspiciously small for uniform data", fit.KS)
	}
}

func TestSamplePowerLawRespectsDMin(t *testing.T) {
	rng := xrand.New(2)
	for _, s := range SamplePowerLaw(10000, 2.5, 3, rng.Float64) {
		if s < 3 {
			t.Fatalf("sample %d below dmin", s)
		}
	}
}

func TestBestPowerLawFit(t *testing.T) {
	rng := xrand.New(71)
	samples := SamplePowerLaw(100000, 2.5, 5, rng.Float64)
	fit, err := BestPowerLawFit(samples, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-2.5) > 0.1 {
		t.Fatalf("gamma = %v, want ~2.5", fit.Gamma)
	}
	if fit.DMin < 1 || fit.DMin > 20 {
		t.Fatalf("chosen dmin = %d", fit.DMin)
	}
	// Errors for hopeless inputs.
	if _, err := BestPowerLawFit([]int64{1, 2, 3}, 1, 5); err == nil {
		t.Fatal("tiny sample accepted")
	}
	if _, err := BestPowerLawFit(samples, 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Clamping lo < 1.
	if _, err := BestPowerLawFit(samples, -3, 8); err != nil {
		t.Fatal(err)
	}
}
