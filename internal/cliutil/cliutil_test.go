package cliutil

import (
	"testing"

	"pagen/internal/partition"
)

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds("UCP, LCP,RRP")
	if err != nil {
		t.Fatal(err)
	}
	want := []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP}
	if len(ks) != len(want) {
		t.Fatalf("ks = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("ks = %v", ks)
		}
	}
	for _, bad := range []string{"", "UCP,,RRP", "bogus"} {
		if _, err := ParseKinds(bad); err == nil {
			t.Errorf("ParseKinds(%q) accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	vs, err := ParseInts("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 16 {
		t.Fatalf("vs = %v", vs)
	}
	for _, bad := range []string{"", "a", "1,-2", "0", "1,,3"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
}
