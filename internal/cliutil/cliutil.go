// Package cliutil holds the small flag-parsing helpers shared by the
// pa-* command-line tools: human-friendly numeric forms (scientific
// notation, k/M/G suffixes) for the node- and edge-count flags, parsed
// into the exact integers the generator needs.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"pagen/internal/partition"
)

// ParseKinds parses a comma-separated list of partition scheme names.
func ParseKinds(s string) ([]partition.Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cliutil: empty scheme list")
	}
	var out []partition.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := partition.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of positive integers.
func ParseInts(s string) ([]int, error) {
	return ParseIntsMin(s, 1)
}

// ParseIntsMin parses a comma-separated list of integers, each at least
// min (min 0 admits sentinel values like the adaptive poll interval).
func ParseIntsMin(s string, min int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cliutil: empty integer list")
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < min {
			return nil, fmt.Errorf("cliutil: value %d must be at least %d", v, min)
		}
		out = append(out, v)
	}
	return out, nil
}
