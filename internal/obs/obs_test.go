package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"pagen/internal/stats"
)

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 7, 100, -5} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	if h.Sum != 112 { // -5 clamps to 0
		t.Fatalf("Sum = %d, want 112", h.Sum)
	}
	if h.Max != 100 {
		t.Fatalf("Max = %d, want 100", h.Max)
	}
	// Bucket 0 holds zeros (including the clamped -5), bucket 1 holds
	// {1,1}, bucket 2 holds {3}, bucket 3 holds {7}, bucket 7 holds {100}.
	want := map[int]int64{0: 2, 1: 2, 2: 1, 3: 1, 7: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Errorf("Buckets[%d] = %d, want %d", i, c, want[i])
		}
	}
	if got := h.Mean(); math.Abs(got-16.0) > 1e-9 {
		t.Errorf("Mean = %v, want 16", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	// 90 zeros and 10 values of 5: the 0.5 quantile is 0, the 0.99
	// quantile lands in the bucket holding 5 (upper edge 7, clamped to
	// Max = 5).
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %d, want 0", got)
	}
	if got := h.Quantile(0.99); got != 5 {
		t.Errorf("Quantile(0.99) = %d, want 5 (bucket edge clamped to Max)", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %d, want 5", got)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 4, 8, 16, 1 << 40} {
		h.Observe(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed histogram:\n got %+v\nwant %+v", back, h)
	}
	// The wire form trims trailing empty buckets: with max observation
	// 2^40 only 42 buckets are emitted, not 64.
	var wire struct {
		Buckets []int64 `json:"buckets"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Buckets) != 42 {
		t.Errorf("wire buckets = %d, want 42 (trimmed)", len(wire.Buckets))
	}
}

func TestExpectedLoad(t *testing.T) {
	const n = 1000
	const p = 0.5
	// Closed form against a direct harmonic evaluation.
	for _, k := range []int64{1, 10, 500} {
		want := (1 - p) * (stats.Harmonic(n-1) - stats.Harmonic(k))
		if got := ExpectedLoad(n, k, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("ExpectedLoad(%d, %d, %v) = %v, want %v", n, k, p, got, want)
		}
	}
	// Strictly decreasing in k: later nodes receive fewer copy queries.
	prev := math.Inf(1)
	for k := int64(1); k < n-1; k += 100 {
		cur := ExpectedLoad(n, k, p)
		if cur >= prev {
			t.Fatalf("ExpectedLoad not decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		prev = cur
	}
	// Boundary cases.
	if ExpectedLoad(n, n-1, p) != 0 {
		t.Error("ExpectedLoad(n, n-1) should be 0")
	}
	if ExpectedLoad(n, -1, p) != 0 {
		t.Error("ExpectedLoad(n, -1) should be 0")
	}
}

func TestBinNodeLoad(t *testing.T) {
	const (
		n = 10000
		x = 4
		p = 0.5
	)
	// Synthetic samples that follow the Lemma 3.4 expectation exactly
	// (rounded): binning must reproduce a decreasing curve that tracks
	// the Expected column.
	var samples []KLoad
	for k := int64(0); k < n; k++ {
		load := int64(math.Round(float64(x) * ExpectedLoad(n, k, p)))
		samples = append(samples, KLoad{K: k, Load: load})
	}
	curve := BinNodeLoad(samples, n, x, p, 0)
	if curve.N != n || curve.X != x || curve.P != p {
		t.Fatalf("curve params = (%d,%d,%v)", curve.N, curve.X, curve.P)
	}
	if len(curve.Bins) < 10 {
		t.Fatalf("only %d bins; want a resolved geometric curve", len(curve.Bins))
	}
	var nodes int64
	for i, b := range curve.Bins {
		if b.KLo >= b.KHi {
			t.Fatalf("bin %d: empty range [%d,%d)", i, b.KLo, b.KHi)
		}
		if i > 0 && b.KLo != curve.Bins[i-1].KHi {
			t.Fatalf("bin %d: gap/overlap at %d (prev ends %d)", i, b.KLo, curve.Bins[i-1].KHi)
		}
		if b.KLo < x {
			t.Fatalf("bin %d starts at %d, below x=%d (clique nodes must be skipped)", i, b.KLo, x)
		}
		nodes += b.Nodes
		// Measured and predicted columns agree (samples were generated
		// from the prediction; rounding allows 0.5 absolute slack).
		if math.Abs(b.MeanLoad-b.Expected) > 0.5 {
			t.Errorf("bin [%d,%d): mean %v vs expected %v", b.KLo, b.KHi, b.MeanLoad, b.Expected)
		}
	}
	if nodes != n-x {
		t.Fatalf("binned %d nodes, want %d (all non-clique nodes)", nodes, n-x)
	}
	// The expected column decreases across bins.
	for i := 1; i < len(curve.Bins); i++ {
		if curve.Bins[i].Expected >= curve.Bins[i-1].Expected {
			t.Fatalf("Expected not decreasing at bin %d", i)
		}
	}
}

func TestRunMetricsJSONRoundTrip(t *testing.T) {
	var wc Histogram
	wc.Observe(0)
	wc.Observe(3)
	m := &RunMetrics{
		N: 1000, X: 4, P: 0.5, Ranks: 2, Scheme: "RRP", Seed: 7,
		ElapsedNanos: 12345,
		PerRank: []RankMetrics{
			{Rank: 0, Nodes: 500, Edges: 1992, RequestsSent: 10, WaitChain: wc},
			{Rank: 1, Nodes: 500, Edges: 1992, RequestsRecv: 10},
		},
		NodeLoad: &NodeLoadCurve{N: 1000, X: 4, P: 0.5, Bins: []NodeLoadBin{
			{KLo: 4, KHi: 10, Nodes: 6, Messages: 60, MeanLoad: 10, Expected: 10.5},
		}},
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != m.N || back.Ranks != m.Ranks || back.Seed != m.Seed {
		t.Fatalf("round trip changed run params: %+v", back)
	}
	if len(back.PerRank) != 2 || back.PerRank[0].WaitChain != wc {
		t.Fatalf("round trip changed per-rank metrics: %+v", back.PerRank)
	}
	if back.NodeLoad == nil || len(back.NodeLoad.Bins) != 1 {
		t.Fatalf("round trip changed node-load curve: %+v", back.NodeLoad)
	}
	if back.NodeLoad.Bins[0] != m.NodeLoad.Bins[0] {
		t.Fatalf("round trip changed bin: %+v", back.NodeLoad.Bins[0])
	}
}
