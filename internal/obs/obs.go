// Package obs is the observability layer of the parallel generator:
// per-rank counters and histograms collected during a run and exported
// as JSON, so the paper's analytical claims can be checked against a
// live execution instead of post-hoc traces.
//
// The metric definitions map directly onto the paper:
//
//   - Per-node received-message load (NodeLoadCurve) is the empirical
//     M_k of Lemma 3.4, whose expectation is (1-p)(H_{n-1} - H_k) per
//     attachment slot — ExpectedLoad evaluates the closed form so the
//     JSON carries measured and predicted columns side by side.
//   - The wait-chain histogram (RankMetrics.WaitChain) observes the
//     length of each Q_{k,l} waiter queue as it resolves — the queueing
//     behaviour Theorem 3.3's O(log n) dependency-chain bound keeps
//     shallow.
//   - Request/resolved/frame/byte counters are the Section 4.6 traffic
//     measures (Figure 7 inputs), re-exported from the communicator.
//
// Collection is allocation-free on the hot path: Histogram is a fixed
// array of power-of-two buckets, and per-node load counters are plain
// slice increments gated behind an opt-in flag.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"

	"pagen/internal/stats"
)

// HistogramBuckets is the number of power-of-two buckets a Histogram
// holds; bucket i counts observed values v with bit-length i, so the
// covered range is 0 .. 2^63-1.
const HistogramBuckets = 64

// Histogram is a fixed-size power-of-two-bucketed histogram of
// non-negative int64 observations. The zero value is ready to use, and
// Observe never allocates (the engine calls it inside the hot loop).
type Histogram struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total of all observed values.
	Sum int64
	// Max is the largest observed value (0 when empty).
	Max int64
	// Buckets[i] counts observations v with bits.Len64(v) == i: bucket
	// 0 holds zeros, bucket i>0 holds values in [2^(i-1), 2^i).
	Buckets [HistogramBuckets]int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(uint64(v))]++
}

// Merge folds another histogram into h — the per-worker counter merge:
// each worker observes into its own histogram on the hot path and the
// rank combines them once at the end, so observation never contends.
func (h *Histogram) Merge(o Histogram) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) using
// the bucket upper edges — exact to within the power-of-two bucket
// width, which is all the dependency-chain checks need.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			if i == 0 {
				return 0
			}
			edge := int64(1)<<uint(i) - 1
			if edge > h.Max {
				edge = h.Max
			}
			return edge
		}
	}
	return h.Max
}

// histogramJSON is the wire form of Histogram: buckets are emitted as a
// trimmed slice so an empty histogram is tiny.
type histogramJSON struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	Buckets []int64 `json:"buckets"`
}

// MarshalJSON implements json.Marshaler, trimming trailing empty
// buckets.
func (h Histogram) MarshalJSON() ([]byte, error) {
	last := 0
	for i, c := range h.Buckets {
		if c != 0 {
			last = i + 1
		}
	}
	return json.Marshal(histogramJSON{
		Count:   h.Count,
		Sum:     h.Sum,
		Max:     h.Max,
		Mean:    h.Mean(),
		Buckets: append([]int64(nil), h.Buckets[:last]...),
	})
}

// UnmarshalJSON implements json.Unmarshaler (the inverse of the trimmed
// MarshalJSON form).
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Buckets) > HistogramBuckets {
		return fmt.Errorf("obs: %d histogram buckets, max %d", len(w.Buckets), HistogramBuckets)
	}
	*h = Histogram{Count: w.Count, Sum: w.Sum, Max: w.Max}
	copy(h.Buckets[:], w.Buckets)
	return nil
}

// RankMetrics is one rank's exported metric set: the Section 4.6
// traffic counters, the engine's queueing gauges, and the wait-chain
// histogram.
type RankMetrics struct {
	// Rank is the reporting rank.
	Rank int `json:"rank"`
	// Nodes and Edges are the rank's share of the output.
	Nodes int64 `json:"nodes"`
	Edges int64 `json:"edges"`
	// Logical message counters (Figure 7 inputs).
	RequestsSent int64 `json:"requests_sent"`
	RequestsRecv int64 `json:"requests_recv"`
	ResolvedSent int64 `json:"resolved_sent"`
	ResolvedRecv int64 `json:"resolved_recv"`
	ControlSent  int64 `json:"control_sent"`
	ControlRecv  int64 `json:"control_recv"`
	// Hub-prefix cache counters (zero unless the cache ran): replica
	// hits (requests elided entirely), misses (prefix lookups that went
	// to the wire), publishes sent/received, and requests elided by
	// requester-side coalescing onto an already-in-flight request.
	HubCacheHit     int64 `json:"hub_cache_hit,omitempty"`
	HubCacheMiss    int64 `json:"hub_cache_miss,omitempty"`
	HubCachePub     int64 `json:"hub_cache_publish,omitempty"`
	HubCachePubRecv int64 `json:"hub_cache_publish_recv,omitempty"`
	ReqCoalesced    int64 `json:"req_coalesced,omitempty"`
	// Recompute-resolver counters (zero unless -resolve=recompute ran):
	// remote queries resolved by local stream replay, replays that hit
	// the depth cap and fell back to the wire protocol, and attachment
	// values committed to the replay memo table. ReplayDepth is the
	// histogram of replay chain depths per resolved query — compare its
	// quantiles against the Theorem 3.3 O(log n) chain-depth bound.
	RecomputeResolved int64     `json:"recompute_resolved,omitempty"`
	RecomputeFallback int64     `json:"recompute_fallback,omitempty"`
	ReplayedEdges     int64     `json:"replayed_edges,omitempty"`
	ReplayDepth       Histogram `json:"replay_depth"`
	// Transport-frame counters: how much buffering coalesced.
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	// Engine gauges: duplicate retries, queued request waits, local
	// dependency-chain waits, and the peak number of simultaneously
	// waiting slots.
	Retries         int64 `json:"retries"`
	QueuedWaits     int64 `json:"queued_waits"`
	LocalWaits      int64 `json:"local_waits"`
	MaxPendingSlots int64 `json:"max_pending_slots"`
	// TotalLoad is the paper's Section 4.6 load measure: nodes plus
	// data messages in and out.
	TotalLoad int64 `json:"total_load"`
	// WallNanos and BusyNanos split the rank's runtime into total and
	// not-blocked-in-Wait time.
	WallNanos int64 `json:"wall_nanos"`
	BusyNanos int64 `json:"busy_nanos"`
	// WaitChain is the histogram of Q_{k,l} waiter-queue lengths at
	// resolution time (Theorem 3.3's chains keep it shallow).
	WaitChain Histogram `json:"wait_chain"`
	// Checkpoint counters (zero unless checkpointing ran): committed
	// epochs, abandoned epochs, snapshot bytes the background writer
	// published, time it spent publishing them (off the pause path),
	// and total generation pause across epochs (quiescence wait +
	// capture — the publish overlaps generation).
	CkptEpochs     int64 `json:"ckpt_epochs,omitempty"`
	CkptFailed     int64 `json:"ckpt_failed,omitempty"`
	CkptBytes      int64 `json:"ckpt_bytes,omitempty"`
	CkptWriteNanos int64 `json:"ckpt_write_nanos,omitempty"`
	CkptPauseNanos int64 `json:"ckpt_pause_nanos,omitempty"`
	// Per-epoch distributions of the generation pause and the
	// background publish (one observation per epoch).
	CkptPausePerEpoch Histogram `json:"ckpt_pause_per_epoch"`
	CkptWritePerEpoch Histogram `json:"ckpt_write_per_epoch"`
	// Streaming edge-sink counters (zero unless -stream-dir ran): shard
	// blocks flushed, compressed bytes written, fsync calls, and total
	// time stalled in fsync (cut barriers plus final close).
	SinkBlocks     int64 `json:"sink_blocks_flushed,omitempty"`
	SinkBytes      int64 `json:"sink_bytes_written,omitempty"`
	SinkFsyncs     int64 `json:"sink_fsyncs,omitempty"`
	SinkFsyncNanos int64 `json:"sink_fsync_stall_nanos,omitempty"`
}

// KLoad is one node's received-message load: K is the global node id,
// Load the number of copy-resolution queries the node's owner received
// for it (remote requests plus same-rank queries — the events Lemma 3.4
// counts). Elided counts the queries that would have reached the owner
// but were answered from a hub-prefix replica instead; Load + Elided is
// what Lemma 3.4 predicts.
type KLoad struct {
	K      int64 `json:"k"`
	Load   int64 `json:"load"`
	Elided int64 `json:"elided,omitempty"`
}

// ExpectedLoad returns the Lemma 3.4 closed form for the expected
// per-slot message load of node k in an n-node run with direct-attach
// probability p: (1-p)(H_{n-1} - H_k). Multiply by x for an x-edge run
// (each of a node's x slots queries independently).
func ExpectedLoad(n, k int64, p float64) float64 {
	if k >= n-1 || k < 0 {
		return 0
	}
	return (1 - p) * stats.HarmonicDiff(k, n-1)
}

// NodeLoadBin is one geometric bin of the per-node load curve.
type NodeLoadBin struct {
	// KLo and KHi delimit the node-id range [KLo, KHi).
	KLo int64 `json:"k_lo"`
	KHi int64 `json:"k_hi"`
	// Nodes is the number of nodes with samples in the bin.
	Nodes int64 `json:"nodes"`
	// Messages is the total load over the bin: queries that reached the
	// owner (WireMessages) plus queries a hub-prefix replica answered
	// locally (ElidedMessages). Keeping the total here is what lets the
	// Expected column stay comparable with the cache on.
	Messages int64 `json:"messages"`
	// WireMessages and ElidedMessages split Messages by path
	// (ElidedMessages is zero, and omitted, when no cache ran).
	WireMessages   int64 `json:"wire_messages,omitempty"`
	ElidedMessages int64 `json:"elided_messages,omitempty"`
	// MeanLoad is Messages / Nodes.
	MeanLoad float64 `json:"mean_load"`
	// Expected is the Lemma 3.4 prediction x·(1-p)(H_{n-1} - H_k)
	// averaged over the bin's nodes.
	Expected float64 `json:"expected"`
}

// NodeLoadCurve is the binned empirical M_k curve of Lemma 3.4 with the
// closed-form prediction alongside.
type NodeLoadCurve struct {
	// N, X and P are the run parameters the Expected column was
	// computed from.
	N int64   `json:"n"`
	X int     `json:"x"`
	P float64 `json:"p"`
	// Bins are geometric bins over k, in increasing k order.
	Bins []NodeLoadBin `json:"bins"`
}

// BinNodeLoad bins per-node load samples geometrically over k (about
// binsPerDecade bins per factor of 10; 8 when <= 0) and fills in the
// Lemma 3.4 expectation for x attachment slots per node. Samples with
// k < x are skipped: clique nodes receive no copy queries.
func BinNodeLoad(samples []KLoad, n int64, x int, p float64, binsPerDecade int) NodeLoadCurve {
	if binsPerDecade <= 0 {
		binsPerDecade = 8
	}
	curve := NodeLoadCurve{N: n, X: x, P: p}
	if n < 2 {
		return curve
	}
	// Geometric bin edges over [x, n): each bin spans a constant factor.
	factor := math.Pow(10, 1/float64(binsPerDecade))
	lo := int64(x)
	if lo < 1 {
		lo = 1
	}
	var edges []int64
	for edge := float64(lo); int64(edge) < n; edge *= factor {
		e := int64(edge)
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	edges = append(edges, n)
	bins := make([]NodeLoadBin, len(edges)-1)
	expected := make([]float64, len(bins))
	for i := range bins {
		bins[i].KLo, bins[i].KHi = edges[i], edges[i+1]
	}
	findBin := func(k int64) int {
		// Bins are few (O(log n)); linear scan is fine and obvious.
		for i := range bins {
			if k >= bins[i].KLo && k < bins[i].KHi {
				return i
			}
		}
		return -1
	}
	for _, s := range samples {
		if s.K < int64(x) {
			continue
		}
		i := findBin(s.K)
		if i < 0 {
			continue
		}
		bins[i].Nodes++
		bins[i].Messages += s.Load + s.Elided
		bins[i].WireMessages += s.Load
		bins[i].ElidedMessages += s.Elided
		expected[i] += float64(x) * ExpectedLoad(n, s.K, p)
	}
	out := bins[:0]
	for i := range bins {
		if bins[i].Nodes == 0 {
			continue
		}
		bins[i].MeanLoad = float64(bins[i].Messages) / float64(bins[i].Nodes)
		bins[i].Expected = expected[i] / float64(bins[i].Nodes)
		out = append(out, bins[i])
	}
	curve.Bins = out
	return curve
}

// RunMetrics is the full exported metric set of one run.
type RunMetrics struct {
	// Run parameters.
	N      int64   `json:"n"`
	X      int     `json:"x"`
	P      float64 `json:"p"`
	Ranks  int     `json:"ranks"`
	Scheme string  `json:"scheme,omitempty"`
	Seed   uint64  `json:"seed"`
	// ElapsedNanos is the wall time of the parallel section.
	ElapsedNanos int64 `json:"elapsed_nanos"`
	// PerRank holds each rank's metric set, indexed by rank.
	PerRank []RankMetrics `json:"per_rank"`
	// NodeLoad is the Lemma 3.4 curve, present when the run collected
	// per-node loads.
	NodeLoad *NodeLoadCurve `json:"node_load,omitempty"`
}

// WriteJSON writes the metrics as indented JSON.
func (m *RunMetrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadJSON parses metrics previously written with WriteJSON.
func ReadJSON(r io.Reader) (*RunMetrics, error) {
	var m RunMetrics
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decoding metrics: %w", err)
	}
	return &m, nil
}
