package svgplot

import (
	"math"
	"strings"
	"testing"
)

func renderToString(t *testing.T, p *Plot) string {
	t.Helper()
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRenderBasicLineChart(t *testing.T) {
	p := &Plot{
		Title:  "Speedup",
		XLabel: "processors",
		YLabel: "speedup",
		Series: []Series{
			{Name: "RRP", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.9, 3.6, 6.8}},
			{Name: "UCP", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.7, 2.9, 4.1}},
		},
	}
	svg := renderToString(t, p)
	for _, want := range []string{
		"<svg", "</svg>", "Speedup", "processors", "speedup",
		"RRP", "UCP", "<polyline",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series -> two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestRenderLogLogScatter(t *testing.T) {
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 100 * math.Pow(xs[i], -2.5)
	}
	p := &Plot{
		Title: "Degree distribution", LogX: true, LogY: true, Markers: true,
		Series: []Series{{Name: "P(d)", X: xs, Y: ys}},
	}
	svg := renderToString(t, p)
	if !strings.Contains(svg, "<circle") {
		t.Error("markers missing")
	}
	if !strings.Contains(svg, "1e0") || !strings.Contains(svg, "1e1") {
		t.Error("log decade ticks missing")
	}
}

func TestRenderDropsNonPositiveOnLogAxes(t *testing.T) {
	p := &Plot{
		LogY: true,
		Series: []Series{{
			Name: "s",
			X:    []float64{1, 2, 3},
			Y:    []float64{0, -5, 10}, // only the last point drawable
		}},
	}
	svg := renderToString(t, p)
	// A single drawable point: no polyline, one marker.
	if strings.Contains(svg, "<polyline") {
		t.Error("polyline drawn for single point")
	}
	if got := strings.Count(svg, "<circle"); got != 1 {
		t.Errorf("%d circles, want 1", got)
	}
}

func TestRenderErrors(t *testing.T) {
	if err := (&Plot{}).Render(&strings.Builder{}); err == nil {
		t.Error("empty plot rendered")
	}
	p := &Plot{W: 10, H: 10, Series: []Series{{X: []float64{1}, Y: []float64{1}}}}
	if err := p.Render(&strings.Builder{}); err == nil {
		t.Error("tiny canvas rendered")
	}
	nan := &Plot{Series: []Series{{X: []float64{math.NaN()}, Y: []float64{1}}}}
	if err := nan.Render(&strings.Builder{}); err == nil {
		t.Error("all-NaN plot rendered")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Zero-width data ranges must not divide by zero.
	p := &Plot{Series: []Series{{Name: "c", X: []float64{5, 5, 5}, Y: []float64{2, 2, 2}}}}
	svg := renderToString(t, p)
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestEscape(t *testing.T) {
	p := &Plot{
		Title:  "a<b & c>d",
		Series: []Series{{Name: "x<y", X: []float64{1, 2}, Y: []float64{1, 2}}},
	}
	svg := renderToString(t, p)
	if strings.Contains(svg, "a<b") || !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "x&lt;y") {
		t.Error("series name not escaped")
	}
}

func TestNiceStep(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.7, 1}, {1.2, 2}, {3.7, 5}, {8, 10}, {45, 50}, {0.013, 0.02}, {-1, 1}, {0, 1},
	}
	for _, c := range cases {
		if got := niceStep(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("niceStep(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTicksLinear(t *testing.T) {
	ts := ticks(0, 10, false)
	if len(ts) < 4 || ts[0] < 0 || ts[len(ts)-1] > 10.001 {
		t.Errorf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
}

func TestTicksLogFallback(t *testing.T) {
	// A sub-decade log range still produces at least one tick.
	ts := ticks(0.1, 0.9, true)
	if len(ts) == 0 {
		t.Fatal("no ticks for narrow log range")
	}
}

func TestDeterministicOutput(t *testing.T) {
	p := &Plot{
		Title:  "t",
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{3, 1, 2}}},
	}
	if renderToString(t, p) != renderToString(t, p) {
		t.Fatal("rendering not deterministic")
	}
}
