// Package svgplot renders line/scatter charts as standalone SVG using
// only the standard library. It exists so the experiment harness can
// regenerate the paper's *figures*, not just their data series: Figure 4
// is a log-log scatter, Figures 5-7 are line charts over processor rank
// or count. The output is deterministic for a given Plot, which keeps it
// testable.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line/scatter series.
type Series struct {
	Name string
	X, Y []float64
}

// Plot describes a chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select logarithmic axes; non-positive points are
	// dropped on log axes.
	LogX, LogY bool
	// Markers draws point markers in addition to lines.
	Markers bool
	// W, H are the pixel dimensions (defaults 640x440).
	W, H   int
	Series []Series
}

// palette is a small colour-blind-safe cycle.
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00"}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// Render writes the SVG document.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.W, p.H
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 440
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	if plotW <= 0 || plotH <= 0 {
		return fmt.Errorf("svgplot: dimensions %dx%d too small", width, height)
	}

	xmin, xmax, ymin, ymax, ok := p.bounds()
	if !ok {
		return fmt.Errorf("svgplot: no drawable points")
	}

	tx := func(x float64) float64 {
		if p.LogX {
			x = math.Log10(x)
		}
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	ty := func(y float64) float64 {
		if p.LogY {
			y = math.Log10(y)
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(p.Title))

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, p.LogX) {
		px := tx(untick(t, p.LogX))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px, marginT, px, marginT+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginT+plotH+16, tickLabel(t, p.LogX))
	}
	for _, t := range ticks(ymin, ymax, p.LogY) {
		py := ty(untick(t, p.LogY))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, marginL+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, tickLabel(t, p.LogY))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(p.YLabel))

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			x, y := s.X[i], s.Y[i]
			if (p.LogX && x <= 0) || (p.LogY && y <= 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(x), ty(y)))
		}
		if len(pts) == 0 {
			continue
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		if p.Markers || len(pts) == 1 {
			for _, pt := range pts {
				var px, py float64
				fmt.Sscanf(pt, "%f,%f", &px, &py)
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", px, py, color)
			}
		}
		// Legend entry.
		ly := marginT + 14 + 16*si
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW-110, ly, marginL+plotW-90, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+plotW-84, ly+4, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes the data range in plot space (log10 applied when the
// axis is logarithmic), padded slightly, and reports whether any
// drawable point exists.
func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if p.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			ok = true
		}
	}
	if !ok {
		return
	}
	// Avoid zero-width ranges and add 4% padding.
	pad := func(lo, hi float64) (float64, float64) {
		if hi == lo {
			return lo - 1, hi + 1
		}
		d := (hi - lo) * 0.04
		return lo - d, hi + d
	}
	xmin, xmax = pad(xmin, xmax)
	ymin, ymax = pad(ymin, ymax)
	return
}

// ticks returns tick positions in plot space: integer decades for log
// axes, "nice" steps for linear axes.
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		for d := math.Ceil(lo); d <= math.Floor(hi); d++ {
			out = append(out, d)
		}
		if len(out) == 0 {
			out = append(out, (lo+hi)/2)
		}
		return out
	}
	span := hi - lo
	step := niceStep(span / 5)
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-12; t += step {
		out = append(out, t)
	}
	return out
}

// niceStep rounds raw up to a 1/2/5 x 10^k value.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// untick converts a tick position back to data space.
func untick(t float64, log bool) float64 {
	if log {
		return math.Pow(10, t)
	}
	return t
}

// tickLabel formats a tick for display.
func tickLabel(t float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%d", int(t))
	}
	if t == math.Trunc(t) && math.Abs(t) < 1e7 {
		return fmt.Sprintf("%d", int64(t))
	}
	return fmt.Sprintf("%.3g", t)
}

// escape sanitises text for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
