// Package analysis validates the generated networks against the paper's
// theory: dependency-chain lengths (Section 3.4, Theorem 3.3), selection
// chains (Lemma 3.1), per-node request load (Lemma 3.4), and power-law
// degree distributions (Section 4.2, Figure 4).
package analysis

import (
	"fmt"
	"math"

	"pagen/internal/hist"
	"pagen/internal/model"
)

// DependencyChainLengths computes, for every attachment slot, the length
// of its dependency chain: 0 for a direct (independent) attachment, and
// 1 + length(source slot) for a copy. This is the paper's L_t (for x = 1,
// per-node; for x >= 1, per-slot), computable exactly from a decision
// trace because slot (t, e) depends precisely on slot (K, L) when copied.
func DependencyChainLengths(tr *model.Trace) []int32 {
	x := tr.Params.X
	lengths := make([]int32, tr.Slots())
	// Slots are ordered by node, and a copied slot's source node K is
	// strictly smaller than its own node, so a single forward pass
	// resolves every chain.
	for i := range lengths {
		if !tr.Copied[i] {
			lengths[i] = 0
			continue
		}
		src := tr.Idx(tr.K[i], int(tr.L[i]))
		lengths[i] = 1 + lengths[src]
	}
	_ = x
	return lengths
}

// ChainStats summarises dependency-chain lengths.
type ChainStats struct {
	Slots int
	Mean  float64
	Max   int32
	Hist  *hist.Int
}

// SummarizeChains computes chain-length statistics.
func SummarizeChains(lengths []int32) ChainStats {
	st := ChainStats{Slots: len(lengths), Hist: hist.NewInt()}
	if len(lengths) == 0 {
		return st
	}
	var sum int64
	for _, l := range lengths {
		if l > st.Max {
			st.Max = l
		}
		sum += int64(l)
		st.Hist.Add(int64(l))
	}
	st.Mean = float64(sum) / float64(len(lengths))
	return st
}

// SelectionChain returns the selection chain S_t for an x = 1 trace: the
// node sequence t, k_t, k_{k_t}, ..., 1 (Section 3.4). It panics for
// traces with x != 1 (selection chains are defined on the x = 1 draw
// process) or t out of range.
func SelectionChain(tr *model.Trace, t int64) []int64 {
	if tr.Params.X != 1 {
		panic(fmt.Sprintf("analysis: selection chains need x = 1 traces, got x = %d", tr.Params.X))
	}
	if t < 1 || t >= tr.Params.N {
		panic(fmt.Sprintf("analysis: node %d outside [1,%d)", t, tr.Params.N))
	}
	chain := []int64{t}
	for cur := t; cur > 1; {
		k := tr.K[tr.Idx(cur, 0)]
		if k < 0 { // bootstrap node (t = 1): chain ends
			break
		}
		chain = append(chain, k)
		cur = k
	}
	return chain
}

// Theorem33Check reports chain statistics against the Theorem 3.3
// bounds.
type Theorem33Check struct {
	LogN         float64
	FiveLogN     float64
	WithinBounds bool
}

// SummaryAgainstTheorem33 evaluates chain statistics against the
// theorem's E[L] <= ln n and L_max <= 5 ln n bounds for an n-node run.
func SummaryAgainstTheorem33(n int64, st ChainStats) (Theorem33Check, error) {
	if n < 2 {
		return Theorem33Check{}, fmt.Errorf("analysis: n = %d too small", n)
	}
	ln := math.Log(float64(n))
	return Theorem33Check{
		LogN:         ln,
		FiveLogN:     5 * ln,
		WithinBounds: st.Mean <= ln && float64(st.Max) <= 5*ln,
	}, nil
}

// RequestCounts returns, for an x = 1 trace, the number of copy requests
// "received" by each node in the model sense of Lemma 3.4: node k is
// queried once for every node t that drew k and took the copy branch.
func RequestCounts(tr *model.Trace) []int64 {
	if tr.Params.X != 1 {
		panic("analysis: RequestCounts needs x = 1 traces")
	}
	counts := make([]int64, tr.Params.N)
	for i := range tr.K {
		if tr.Copied[i] {
			counts[tr.K[i]]++
		}
	}
	return counts
}
