package analysis

import (
	"fmt"
	"io"

	"pagen/internal/graph"
	"pagen/internal/hist"
	"pagen/internal/stats"
)

// DegreeReport summarises a generated network's degree structure — the
// numbers behind the paper's Figure 4 and Section 4.2 accuracy claim.
type DegreeReport struct {
	N, M            int64
	MinDeg, MaxDeg  int64
	MeanDeg         float64
	Gamma           float64 // MLE power-law exponent of the tail
	GammaKS         float64 // KS distance of the fit
	GammaDMin       int64   // tail cutoff used
	TailN           int64   // samples in the fitted tail
	LogLogSlope     float64 // least-squares slope of log-binned PMF
	LogLogR2        float64
	Components      int64
	DegreeHistogram *hist.Int
}

// AnalyzeDegrees computes a degree report. dmin is the power-law tail
// cutoff (a small multiple of x is the usual choice; 2x works well).
func AnalyzeDegrees(g *graph.Graph, dmin int64) (DegreeReport, error) {
	degrees := g.Degrees()
	h := hist.NewInt()
	for _, d := range degrees {
		h.Add(d)
	}
	rep := DegreeReport{
		N:               g.N,
		M:               g.M(),
		MeanDeg:         h.Mean(),
		DegreeHistogram: h,
		GammaDMin:       dmin,
	}
	rep.MinDeg, _ = h.Min()
	rep.MaxDeg, _ = h.Max()

	fit, err := stats.PowerLawMLE(degrees, dmin)
	if err != nil {
		return rep, fmt.Errorf("analysis: power-law fit: %w", err)
	}
	rep.Gamma = fit.Gamma
	rep.GammaKS = fit.KS
	rep.TailN = fit.N

	// Least-squares fit on the log-binned PMF: the slope of the paper's
	// log-log plot. Log binning first, so the sparse tail does not
	// dominate the regression.
	bins := h.LogBins(1.5)
	xs := make([]float64, 0, len(bins))
	ys := make([]float64, 0, len(bins))
	for _, b := range bins {
		xs = append(xs, b.Center)
		ys = append(ys, b.Density/float64(h.Total()))
	}
	if ll, err := stats.LogLogFit(xs, ys); err == nil {
		rep.LogLogSlope = ll.Slope
		rep.LogLogR2 = ll.R2
	}

	rep.Components = g.ToCSR().ConnectedComponents()
	return rep, nil
}

// AnalyzeDegreeSequence builds a report from a bare degree sequence —
// the streamed-analysis path, where the edge list never existed in
// memory. Connectivity (Components) cannot be derived from degrees alone
// and is reported as -1.
func AnalyzeDegreeSequence(degrees []int64, dmin int64) (DegreeReport, error) {
	h := hist.NewInt()
	var m int64
	for _, d := range degrees {
		h.Add(d)
		m += d
	}
	rep := DegreeReport{
		N:               int64(len(degrees)),
		M:               m / 2,
		MeanDeg:         h.Mean(),
		DegreeHistogram: h,
		GammaDMin:       dmin,
		Components:      -1,
	}
	rep.MinDeg, _ = h.Min()
	rep.MaxDeg, _ = h.Max()
	fit, err := stats.PowerLawMLE(degrees, dmin)
	if err != nil {
		return rep, fmt.Errorf("analysis: power-law fit: %w", err)
	}
	rep.Gamma = fit.Gamma
	rep.GammaKS = fit.KS
	rep.TailN = fit.N
	bins := h.LogBins(1.5)
	xs := make([]float64, 0, len(bins))
	ys := make([]float64, 0, len(bins))
	for _, b := range bins {
		xs = append(xs, b.Center)
		ys = append(ys, b.Density/float64(h.Total()))
	}
	if ll, err := stats.LogLogFit(xs, ys); err == nil {
		rep.LogLogSlope = ll.Slope
		rep.LogLogR2 = ll.R2
	}
	return rep, nil
}

// WriteDistributionTSV writes the log-binned degree distribution as
// "degree<TAB>probability" rows — the Figure 4 series.
func (r DegreeReport) WriteDistributionTSV(w io.Writer) error {
	for _, b := range r.DegreeHistogram.LogBins(1.5) {
		p := b.Density / float64(r.DegreeHistogram.Total())
		if _, err := fmt.Fprintf(w, "%.2f\t%.8g\n", b.Center, p); err != nil {
			return err
		}
	}
	return nil
}
