package analysis

import (
	"math"
	"strings"
	"testing"

	"pagen/internal/model"
	"pagen/internal/seq"
	"pagen/internal/stats"
)

func traceFor(t testing.TB, n int64, x int, p float64, seed uint64) *model.Trace {
	t.Helper()
	_, tr, err := seq.CopyModel(model.Params{N: n, X: x, P: p}, seed, seq.CopyModelOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDependencyChainLengthsHandComputed(t *testing.T) {
	// Build a tiny trace by hand: x = 1, nodes 0..5.
	pr := model.Params{N: 6, X: 1, P: 0.5}
	tr := model.NewTrace(pr)
	tr.RecordBootstrap(1, 0)  // F_1 = 0, chain 0
	tr.RecordDirect(2, 0, 1)  // direct: chain 0
	tr.RecordCopy(3, 0, 2, 0) // copies F_2: chain 1
	tr.RecordCopy(4, 0, 3, 0) // copies F_3: chain 2
	tr.RecordDirect(5, 0, 4)  // direct: chain 0
	lengths := DependencyChainLengths(tr)
	want := []int32{0, 0, 1, 2, 0}
	for i, w := range want {
		if lengths[i] != w {
			t.Fatalf("lengths = %v, want %v", lengths, want)
		}
	}
}

// Theorem 3.3: E[L_t] <= log n and L_max = O(log n) w.h.p. The constant
// in the theorem's proof is 5; check both bounds empirically.
func TestTheorem33ChainBounds(t *testing.T) {
	for _, n := range []int64{10000, 100000} {
		tr := traceFor(t, n, 1, 0.5, 7)
		st := SummarizeChains(DependencyChainLengths(tr))
		logN := math.Log(float64(n))
		if st.Mean > logN {
			t.Errorf("n=%d: mean chain %v exceeds ln n = %v", n, st.Mean, logN)
		}
		if float64(st.Max) > 5*logN {
			t.Errorf("n=%d: max chain %d exceeds 5 ln n = %v", n, st.Max, 5*logN)
		}
		if st.Max < 2 {
			t.Errorf("n=%d: max chain %d suspiciously small", n, st.Max)
		}
	}
}

// At p = 1/2 the expected chain length is at most 1/p = 2 on average
// (Section 3.4: "average length of a dependency chain is ... at most
// 1/p"). Geometric with success probability p: mean (1-p)/p = 1.
func TestChainMeanMatchesGeometric(t *testing.T) {
	tr := traceFor(t, 50000, 1, 0.5, 11)
	st := SummarizeChains(DependencyChainLengths(tr))
	// Mean of a geometric number of copy hops is (1-p)/p = 1; truncation
	// at chain roots (low-label nodes) pulls it slightly below.
	if st.Mean < 0.7 || st.Mean > 1.1 {
		t.Fatalf("mean chain = %v, want ~1 at p = 0.5", st.Mean)
	}
}

func TestChainsForXGreaterThan1(t *testing.T) {
	tr := traceFor(t, 20000, 4, 0.5, 13)
	st := SummarizeChains(DependencyChainLengths(tr))
	if st.Slots != int((20000-4)*4) {
		t.Fatalf("slots = %d", st.Slots)
	}
	logN := math.Log(20000)
	if float64(st.Max) > 5*logN {
		t.Fatalf("max chain %d exceeds 5 ln n", st.Max)
	}
}

func TestSummaryAgainstTheorem33(t *testing.T) {
	st := ChainStats{Mean: 2.0, Max: 10}
	chk, err := SummaryAgainstTheorem33(100000, st)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.WithinBounds {
		t.Fatalf("modest chains flagged out of bounds: %+v", chk)
	}
	if math.Abs(chk.FiveLogN-5*chk.LogN) > 1e-12 {
		t.Fatalf("bounds inconsistent: %+v", chk)
	}
	// Violating chains are detected.
	chk, err = SummaryAgainstTheorem33(100, ChainStats{Mean: 100, Max: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if chk.WithinBounds {
		t.Fatal("violation not detected")
	}
	if _, err := SummaryAgainstTheorem33(1, st); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSummarizeChainsEmpty(t *testing.T) {
	st := SummarizeChains(nil)
	if st.Slots != 0 || st.Mean != 0 || st.Max != 0 {
		t.Fatalf("empty summary = %+v", st)
	}
}

func TestSelectionChainStructure(t *testing.T) {
	tr := traceFor(t, 5000, 1, 0.5, 17)
	for _, start := range []int64{2, 100, 4999} {
		chain := SelectionChain(tr, start)
		if chain[0] != start {
			t.Fatalf("chain starts at %d", chain[0])
		}
		if chain[len(chain)-1] != 1 {
			t.Fatalf("chain ends at %d, want 1", chain[len(chain)-1])
		}
		for i := 1; i < len(chain); i++ {
			if chain[i] >= chain[i-1] {
				t.Fatalf("chain not strictly decreasing: %v", chain)
			}
		}
	}
	// Node 1's chain is just itself.
	if c := SelectionChain(tr, 1); len(c) != 1 || c[0] != 1 {
		t.Fatalf("SelectionChain(1) = %v", c)
	}
}

func TestSelectionChainPanics(t *testing.T) {
	trX4 := traceFor(t, 100, 4, 0.5, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("x=4 trace accepted")
			}
		}()
		SelectionChain(trX4, 10)
	}()
	tr := traceFor(t, 100, 1, 0.5, 1)
	for _, bad := range []int64{0, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("node %d accepted", bad)
				}
			}()
			SelectionChain(tr, bad)
		}()
	}
}

// Lemma 3.1: Pr{i in S_t} = 1/i. Estimate over many independent runs of
// a small instance.
func TestLemma31SelectionChainMembership(t *testing.T) {
	const n = 64
	const trials = 4000
	target := int64(n - 1) // chains from the last node
	counts := make(map[int64]int)
	for trial := 0; trial < trials; trial++ {
		tr := traceFor(t, n, 1, 0.5, uint64(1000+trial))
		for _, v := range SelectionChain(tr, target)[1:] {
			counts[v]++
		}
	}
	for _, i := range []int64{1, 2, 4, 8, 16, 32} {
		got := float64(counts[i]) / trials
		want := 1 / float64(i)
		// Binomial std err at trials=4000 is <= 0.008; use 4 sigma.
		if math.Abs(got-want) > 0.032 {
			t.Errorf("P(%d in S_%d) = %.4f, want %.4f", i, target, got, want)
		}
	}
}

// Lemma 3.2: the membership events A_i = {i in S_t} are mutually
// independent. Spot-check pairwise independence by Monte Carlo:
// Pr{A_i and A_j} must equal Pr{A_i} Pr{A_j} = 1/(i j) for i < j.
func TestLemma32MembershipIndependence(t *testing.T) {
	const n = 64
	const trials = 6000
	target := int64(n - 1)
	pairs := [][2]int64{{2, 8}, {3, 5}, {4, 16}, {2, 31}}
	joint := make(map[[2]int64]int)
	for trial := 0; trial < trials; trial++ {
		tr := traceFor(t, n, 1, 0.5, uint64(50000+trial))
		in := map[int64]bool{}
		for _, v := range SelectionChain(tr, target)[1:] {
			in[v] = true
		}
		for _, pr := range pairs {
			if in[pr[0]] && in[pr[1]] {
				joint[pr]++
			}
		}
	}
	for _, pr := range pairs {
		got := float64(joint[pr]) / trials
		want := 1 / float64(pr[0]*pr[1])
		// Bernoulli std err <= sqrt(want/trials); 4 sigma tolerance.
		tol := 4 * math.Sqrt(want/trials)
		if math.Abs(got-want) > tol {
			t.Errorf("Pr{%d,%d in S} = %.4f, want %.4f (tol %.4f)", pr[0], pr[1], got, want, tol)
		}
	}
}

// Lemma 3.4: E[M_k] = (1-p)(H_{n-1} - H_k). Check measured copy-request
// counts against the closed form, averaging over label bands and over
// independent seeds (the [1,10) band has only 9 nodes and needs the
// seed averaging to tame variance).
func TestLemma34RequestLoad(t *testing.T) {
	const n = 200000
	const seeds = 5
	p := 0.5
	counts := make([]float64, n)
	for s := 0; s < seeds; s++ {
		tr := traceFor(t, n, 1, p, uint64(23+s))
		for k, c := range RequestCounts(tr) {
			counts[k] += float64(c) / seeds
		}
	}
	bands := [][2]int64{{1, 10}, {10, 100}, {100, 1000}, {1000, 10000}, {10000, 100000}}
	for _, b := range bands {
		var got, want float64
		for k := b[0]; k < b[1]; k++ {
			got += counts[k]
			want += (1 - p) * (stats.Harmonic(n-1) - stats.Harmonic(k))
		}
		got /= float64(b[1] - b[0])
		want /= float64(b[1] - b[0])
		tol := 0.1
		if b[1]-b[0] < 50 {
			tol = 0.25
		}
		if want > 0.05 && math.Abs(got-want)/want > tol {
			t.Errorf("band %v: measured %v, lemma predicts %v", b, got, want)
		}
	}
	// Monotone decreasing on average: first decile vs last decile.
	var head, tail float64
	for k := int64(1); k < n/10; k++ {
		head += counts[k]
	}
	for k := n - n/10; k < n; k++ {
		tail += counts[k]
	}
	if head <= tail {
		t.Errorf("request load not decreasing: head %v tail %v", head, tail)
	}
}

func TestAnalyzeDegreesOnBAGraph(t *testing.T) {
	g, _, err := seq.CopyModel(model.Params{N: 50000, X: 4, P: 0.5}, 29, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeDegrees(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 50000 || rep.M != g.M() {
		t.Fatalf("report sizes wrong: %+v", rep)
	}
	if rep.MinDeg < 4 {
		t.Fatalf("min degree %d below x", rep.MinDeg)
	}
	if math.Abs(rep.MeanDeg-2*float64(g.M())/50000) > 1e-9 {
		t.Fatalf("mean degree %v", rep.MeanDeg)
	}
	if rep.Gamma < 2.3 || rep.Gamma > 3.6 {
		t.Fatalf("gamma = %v", rep.Gamma)
	}
	// Log-log PMF slope should also be a negative power-law exponent in
	// the same range.
	if rep.LogLogSlope > -2 || rep.LogLogSlope < -4 {
		t.Fatalf("loglog slope = %v", rep.LogLogSlope)
	}
	if rep.Components != 1 {
		t.Fatalf("components = %d", rep.Components)
	}
}

func TestWriteDistributionTSV(t *testing.T) {
	g, _, err := seq.CopyModel(model.Params{N: 2000, X: 2, P: 0.5}, 3, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeDegrees(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteDistributionTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few distribution rows: %q", sb.String())
	}
	for _, ln := range lines {
		if len(strings.Fields(ln)) != 2 {
			t.Fatalf("bad row %q", ln)
		}
	}
}

func BenchmarkDependencyChainLengths(b *testing.B) {
	_, tr, err := seq.CopyModel(model.Params{N: 100000, X: 4, P: 0.5}, 5, seq.CopyModelOptions{RecordTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DependencyChainLengths(tr)
	}
}

func TestAnalyzeDegreeSequenceMatchesGraphPath(t *testing.T) {
	g, _, err := seq.CopyModel(model.Params{N: 20000, X: 4, P: 0.5}, 61, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := AnalyzeDegrees(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := AnalyzeDegreeSequence(g.Degrees(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.N != full.N || streamed.M != full.M {
		t.Fatalf("sizes differ: %+v vs %+v", streamed, full)
	}
	if math.Abs(streamed.Gamma-full.Gamma) > 1e-12 {
		t.Fatalf("gamma differs: %v vs %v", streamed.Gamma, full.Gamma)
	}
	if streamed.Components != -1 {
		t.Fatalf("streamed components = %d, want -1 sentinel", streamed.Components)
	}
	if _, err := AnalyzeDegreeSequence([]int64{1}, 1); err == nil {
		t.Fatal("degenerate sequence accepted")
	}
}
