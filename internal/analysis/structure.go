package analysis

import (
	"math"

	"pagen/internal/graph"
)

// GlobalClustering returns the global clustering coefficient (transitivity)
// of the graph: 3 * triangles / connected triples. Scale-free PA networks
// have low but non-zero clustering; small-world networks have high
// clustering — the contrast the paper's Section 1 survey draws.
func GlobalClustering(c *graph.CSR) float64 {
	var triangles, triples int64
	for u := int64(0); u < c.N; u++ {
		d := c.Degree(u)
		triples += d * (d - 1) / 2
		nb := c.Neighbors(u)
		// Count edges among neighbours (each triangle counted once per
		// corner, i.e. 3 times in total over all u).
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if c.HasEdge(nb[i], nb[j]) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	// triangles already counts each triangle exactly 3 times (once per
	// corner), which is the numerator of the transitivity formula.
	return float64(triangles) / float64(triples)
}

// AverageLocalClustering returns the mean of per-node local clustering
// coefficients (Watts–Strogatz definition); nodes of degree < 2
// contribute 0.
func AverageLocalClustering(c *graph.CSR) float64 {
	if c.N == 0 {
		return 0
	}
	sum := 0.0
	for u := int64(0); u < c.N; u++ {
		d := c.Degree(u)
		if d < 2 {
			continue
		}
		nb := c.Neighbors(u)
		var links int64
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if c.HasEdge(nb[i], nb[j]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
	}
	return sum / float64(c.N)
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's assortativity coefficient r). BA-style PA networks are
// weakly disassortative for finite n (r slightly below 0).
func DegreeAssortativity(g *graph.Graph) float64 {
	if g.M() == 0 {
		return math.NaN()
	}
	deg := g.Degrees()
	// Per Newman: over edges, with j, k the endpoint degrees:
	// r = [M^-1 Σ j k − (M^-1 Σ (j+k)/2)^2] / [M^-1 Σ (j²+k²)/2 − (M^-1 Σ (j+k)/2)^2]
	var sJK, sHalf, sSq float64
	m := float64(g.M())
	for _, e := range g.Edges {
		j := float64(deg[e.U])
		k := float64(deg[e.V])
		sJK += j * k
		sHalf += (j + k) / 2
		sSq += (j*j + k*k) / 2
	}
	num := sJK/m - (sHalf/m)*(sHalf/m)
	den := sSq/m - (sHalf/m)*(sHalf/m)
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// KCores returns the core number of every node: the largest k such that
// the node belongs to a subgraph in which every node has degree >= k.
// Standard O(n + m) peeling with bucketed degrees (Batagelj–Zaveršnik).
// Core structure is a common lens on scale-free networks: PA graphs with
// parameter x have maximum core number close to x.
func KCores(c *graph.CSR) []int64 {
	n := c.N
	core := make([]int64, n)
	if n == 0 {
		return core
	}
	deg := make([]int64, n)
	maxDeg := int64(0)
	for u := int64(0); u < n; u++ {
		deg[u] = c.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int64, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := int64(1); d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int64, n)  // position of node in vert
	vert := make([]int64, n) // nodes sorted by current degree
	cursor := make([]int64, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for u := int64(0); u < n; u++ {
		pos[u] = cursor[deg[u]]
		vert[pos[u]] = u
		cursor[deg[u]]++
	}
	bin := make([]int64, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	for i := int64(0); i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, v := range c.Neighbors(u) {
			if deg[v] > deg[u] {
				// Move v to the front of its degree bucket, then
				// shrink its degree.
				dv := deg[v]
				pv, pw := pos[v], bin[dv]
				w := vert[pw]
				if v != w {
					vert[pv], vert[pw] = w, v
					pos[v], pos[w] = pw, pv
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// MaxCore returns the largest core number (the degeneracy of the graph).
func MaxCore(c *graph.CSR) int64 {
	var max int64
	for _, k := range KCores(c) {
		if k > max {
			max = k
		}
	}
	return max
}

// AverageShortestPathSample estimates the average shortest-path length
// by BFS from a sample of source nodes (exact all-pairs is O(nm)).
// Unreachable pairs are skipped. sources <= 0 selects 16.
func AverageShortestPathSample(c *graph.CSR, sources int, pick func(n int64) int64) float64 {
	if sources <= 0 {
		sources = 16
	}
	if c.N == 0 {
		return math.NaN()
	}
	dist := make([]int64, c.N)
	queue := make([]int64, 0, 1024)
	var sum, count float64
	for s := 0; s < sources; s++ {
		src := pick(c.N)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range c.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d > 0 {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / count
}
