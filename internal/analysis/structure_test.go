package analysis

import (
	"math"
	"testing"

	"pagen/internal/classic"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/seq"
	"pagen/internal/xrand"
)

func completeGraph(n int64) *graph.Graph {
	g := graph.New(n)
	for v := int64(1); v < n; v++ {
		for u := int64(0); u < v; u++ {
			g.AddEdge(v, u)
		}
	}
	return g
}

func star(n int64) *graph.Graph {
	g := graph.New(n)
	for v := int64(1); v < n; v++ {
		g.AddEdge(v, 0)
	}
	return g
}

func TestClusteringClique(t *testing.T) {
	c := completeGraph(6).ToCSR()
	if got := GlobalClustering(c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clique transitivity = %v", got)
	}
	if got := AverageLocalClustering(c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clique avg local = %v", got)
	}
}

func TestClusteringStar(t *testing.T) {
	c := star(10).ToCSR()
	if got := GlobalClustering(c); got != 0 {
		t.Fatalf("star transitivity = %v", got)
	}
	if got := AverageLocalClustering(c); got != 0 {
		t.Fatalf("star avg local = %v", got)
	}
}

func TestClusteringTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g := graph.New(4)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(3, 0)
	c := g.ToCSR()
	// Triples: node0 has deg 3 -> 3 triples; nodes 1,2 deg 2 -> 1 each;
	// node3 0. Total 5. Triangle corners: 3. Transitivity = 3/5.
	if got := GlobalClustering(c); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("transitivity = %v, want 0.6", got)
	}
	// Local: node0: 1 link among 3 neighbours -> 1/3; nodes 1,2: 1/1;
	// node3: 0. Average = (1/3 + 1 + 1 + 0)/4.
	want := (1.0/3 + 2) / 4
	if got := AverageLocalClustering(c); math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg local = %v, want %v", got, want)
	}
}

func TestClusteringEmptyGraph(t *testing.T) {
	c := graph.New(5).ToCSR()
	if GlobalClustering(c) != 0 || AverageLocalClustering(c) != 0 {
		t.Fatal("empty graph clustering nonzero")
	}
}

// Watts–Strogatz at beta = 0: local clustering of a ring lattice is the
// closed form 3(k-1) / (2(2k-1)).
func TestSmallWorldLatticeClustering(t *testing.T) {
	k := 3
	g, err := classic.SmallWorld(300, k, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 * float64(k-1) / (2 * float64(2*k-1))
	if got := AverageLocalClustering(g.ToCSR()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("lattice clustering = %v, want %v", got, want)
	}
}

// The small-world signature across the model zoo: the WS lattice
// clusters far more than both an equal-size ER graph and a PA graph.
func TestClusteringContrastAcrossModels(t *testing.T) {
	n := int64(3000)
	ws, err := classic.SmallWorld(n, 3, 0.05, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	er, err := classic.GNP(n, 6.0/float64(n-1), xrand.New(3)) // same mean degree 6
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := seq.CopyModel(model.Params{N: n, X: 3, P: 0.5}, 4, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cWS := AverageLocalClustering(ws.ToCSR())
	cER := AverageLocalClustering(er.ToCSR())
	cPA := AverageLocalClustering(pa.ToCSR())
	if cWS < 5*cER {
		t.Errorf("WS clustering %v not >> ER %v", cWS, cER)
	}
	if cWS < 3*cPA {
		t.Errorf("WS clustering %v not >> PA %v", cWS, cPA)
	}
}

func TestAssortativityRegularPositiveCases(t *testing.T) {
	// A cycle is perfectly degree-regular: correlation undefined (den 0).
	g := graph.New(5)
	for v := int64(0); v < 5; v++ {
		g.AddEdge((v+1)%5, v)
	}
	fixed := graph.New(5)
	for _, e := range g.Edges {
		fixed.AddEdge(max64(e.U, e.V), min64(e.U, e.V))
	}
	if r := DegreeAssortativity(fixed); !math.IsNaN(r) {
		t.Fatalf("regular graph r = %v, want NaN", r)
	}
	// Star: every edge joins deg n-1 with deg 1 — perfectly
	// disassortative, r = -1.
	if r := DegreeAssortativity(star(10)); math.Abs(r+1) > 1e-12 {
		t.Fatalf("star r = %v, want -1", r)
	}
	// Empty graph.
	if r := DegreeAssortativity(graph.New(3)); !math.IsNaN(r) {
		t.Fatalf("empty r = %v", r)
	}
}

func TestPANetworksWeaklyDisassortative(t *testing.T) {
	pa, _, err := seq.CopyModel(model.Params{N: 30000, X: 4, P: 0.5}, 5, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := DegreeAssortativity(pa)
	if r > 0.02 || r < -0.3 {
		t.Fatalf("PA assortativity = %v, want weakly negative", r)
	}
}

func TestAverageShortestPathSample(t *testing.T) {
	// Path graph 0-1-2-3-4: from source 0, distances 1..4, mean 2.5.
	g := graph.New(5)
	for v := int64(1); v < 5; v++ {
		g.AddEdge(v, v-1)
	}
	got := AverageShortestPathSample(g.ToCSR(), 1, func(n int64) int64 { return 0 })
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("avg path = %v, want 2.5", got)
	}
	// Empty graph -> NaN.
	if v := AverageShortestPathSample(graph.New(0).ToCSR(), 1, func(n int64) int64 { return 0 }); !math.IsNaN(v) {
		t.Fatalf("empty = %v", v)
	}
	// Isolated nodes -> NaN (no reachable pairs).
	if v := AverageShortestPathSample(graph.New(3).ToCSR(), 2, func(n int64) int64 { return 1 }); !math.IsNaN(v) {
		t.Fatalf("isolated = %v", v)
	}
}

// PA networks are small worlds in the path-length sense: average
// distance grows ~log n.
func TestPAShortPaths(t *testing.T) {
	pa, _, err := seq.CopyModel(model.Params{N: 20000, X: 4, P: 0.5}, 6, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	avg := AverageShortestPathSample(pa.ToCSR(), 8, rng.Int64n)
	if avg > 2*math.Log(20000) {
		t.Fatalf("avg path %v too long for a scale-free graph", avg)
	}
	if avg < 1 {
		t.Fatalf("avg path %v nonsensical", avg)
	}
}

func TestKCoresHandComputed(t *testing.T) {
	// Triangle 0-1-2 with pendant 3 on 0 and isolated 4:
	// cores: 0,1,2 -> 2; 3 -> 1; 4 -> 0.
	g := graph.New(5)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(3, 0)
	core := KCores(g.ToCSR())
	want := []int64{2, 2, 2, 1, 0}
	for i, w := range want {
		if core[i] != w {
			t.Fatalf("cores = %v, want %v", core, want)
		}
	}
	if MaxCore(g.ToCSR()) != 2 {
		t.Fatal("MaxCore wrong")
	}
}

func TestKCoresClique(t *testing.T) {
	core := KCores(completeGraph(7).ToCSR())
	for u, k := range core {
		if k != 6 {
			t.Fatalf("node %d core %d, want 6", u, k)
		}
	}
}

func TestKCoresEmpty(t *testing.T) {
	if got := KCores(graph.New(0).ToCSR()); len(got) != 0 {
		t.Fatalf("cores = %v", got)
	}
	core := KCores(graph.New(4).ToCSR())
	for _, k := range core {
		if k != 0 {
			t.Fatalf("isolated core = %v", core)
		}
	}
}

// A PA graph with parameter x has degeneracy exactly x: every node
// beyond the clique attaches with x edges to earlier nodes, so the
// x-core is the whole graph minus nothing... more precisely peeling by
// label order removes each node at degree x.
func TestKCoresPAGraphDegeneracy(t *testing.T) {
	x := 4
	g, _, err := seq.CopyModel(model.Params{N: 5000, X: x, P: 0.5}, 8, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxCore(g.ToCSR()); got != int64(x) {
		t.Fatalf("PA degeneracy = %d, want %d", got, x)
	}
}

// Property: core numbers are bounded by degree and the k-core subgraph
// induced by {v : core[v] >= k} has min degree >= k for k = MaxCore.
func TestKCoresTopCoreWellFormed(t *testing.T) {
	g, _, err := seq.CopyModel(model.Params{N: 3000, X: 3, P: 0.5}, 9, seq.CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	csr := g.ToCSR()
	core := KCores(csr)
	kmax := MaxCore(csr)
	inTop := make(map[int64]bool)
	for u, k := range core {
		if k > csr.Degree(int64(u)) {
			t.Fatalf("core[%d] = %d exceeds degree %d", u, k, csr.Degree(int64(u)))
		}
		if k >= kmax {
			inTop[int64(u)] = true
		}
	}
	for u := range inTop {
		cnt := 0
		for _, v := range csr.Neighbors(u) {
			if inTop[v] {
				cnt++
			}
		}
		if int64(cnt) < kmax {
			t.Fatalf("node %d has only %d top-core neighbours, want >= %d", u, cnt, kmax)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
