package transport

import (
	"sync"
	"time"
)

// NewDelayed wraps inner so every frame is delivered approximately delay
// after Send — a one-way-latency model of the interconnect.
// Per-destination ordering is preserved (frames to one peer pass through
// a FIFO delay line). The paper's cluster uses QDR InfiniBand (~1 µs
// latency); sweeping the delay shows how much the request/resolved
// protocol depends on interconnect latency versus the dependency
// structure itself (see BenchmarkAblationLatency).
func NewDelayed(inner Transport, delay time.Duration) Transport {
	d := &delayed{
		inner: inner,
		delay: delay,
		lines: make([]*delayLine, inner.Size()),
	}
	for i := range d.lines {
		d.lines[i] = newDelayLine()
		d.wg.Add(1)
		go d.pump(i)
	}
	return d
}

type delayedFrame struct {
	deadline time.Time
	data     []byte
}

// delayLine is an unbounded FIFO of delayedFrames with blocking pop,
// following the mailbox pattern.
type delayLine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []delayedFrame
	closed bool
}

func newDelayLine() *delayLine {
	l := &delayLine{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *delayLine) push(f delayedFrame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.q = append(l.q, f)
	l.cond.Signal()
	return nil
}

// pop blocks until a frame or close; ok is false once closed and drained.
func (l *delayLine) pop() (delayedFrame, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.q) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.q) == 0 {
		return delayedFrame{}, false
	}
	f := l.q[0]
	l.q = l.q[1:]
	if len(l.q) == 0 {
		l.q = nil
	}
	return f, true
}

func (l *delayLine) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

type delayed struct {
	inner Transport
	delay time.Duration
	lines []*delayLine
	wg    sync.WaitGroup

	mu      sync.Mutex
	sendErr error
	closed  bool
}

// pump drains one destination's delay line, sleeping until each frame's
// deadline before forwarding it.
func (d *delayed) pump(to int) {
	defer d.wg.Done()
	for {
		f, ok := d.lines[to].pop()
		if !ok {
			return
		}
		if wait := time.Until(f.deadline); wait > 0 {
			time.Sleep(wait)
		}
		if err := d.inner.Send(to, f.data); err != nil {
			d.mu.Lock()
			if d.sendErr == nil {
				d.sendErr = err
			}
			d.mu.Unlock()
			return
		}
	}
}

// Send implements Transport: the frame enters the destination's delay
// line and is forwarded after the configured latency.
func (d *delayed) Send(to int, data []byte) error {
	if to < 0 || to >= len(d.lines) {
		return d.inner.Send(to, data) // delegate range error
	}
	d.mu.Lock()
	err := d.sendErr
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.lines[to].push(delayedFrame{deadline: time.Now().Add(d.delay), data: data})
}

// Rank implements Transport.
func (d *delayed) Rank() int { return d.inner.Rank() }

// Size implements Transport.
func (d *delayed) Size() int { return d.inner.Size() }

// Recv implements Transport.
func (d *delayed) Recv() (Frame, error) { return d.inner.Recv() }

// TryRecv implements Transport.
func (d *delayed) TryRecv() (Frame, bool, error) { return d.inner.TryRecv() }

// Close implements Transport: delay lines are closed and drained (their
// pumps forward any remaining frames) before the inner transport closes.
func (d *delayed) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	for _, l := range d.lines {
		l.close()
	}
	d.wg.Wait()
	return d.inner.Close()
}
