package transport

import (
	"errors"
	"testing"

	"pagen/internal/msg"
)

func mkShm(t *testing.T, p int) []Transport {
	t.Helper()
	g, err := NewShmGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]Transport, p)
	for i := range eps {
		eps[i] = g.Endpoint(i)
	}
	return eps
}

func TestShmMesh(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		meshTest(t, p, mkShm)
	}
}

// TestShmSendMsgs checks the no-serialize contract: the batch handed to
// SendMsgs arrives as the same backing slice, untouched by any codec.
func TestShmSendMsgs(t *testing.T) {
	g, err := NewShmGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := g.Endpoint(0), g.Endpoint(1)
	ms := LeaseMsgs(4)
	ms = append(ms, msg.Request(7, 3, 1, 0), msg.Resolved(9, 0, 2))
	if err := src.(MsgSender).SendMsgs(1, ms); err != nil {
		t.Fatal(err)
	}
	f, err := dst.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 0 || f.Data != nil {
		t.Fatalf("frame From=%d Data=%v, want From=0 Data=nil", f.From, f.Data)
	}
	if len(f.Msgs) != 2 || &f.Msgs[0] != &ms[0] {
		t.Fatalf("batch was copied: got %d msgs at %p, sent %d at %p",
			len(f.Msgs), &f.Msgs[0], len(ms), &ms[0])
	}
	if f.Msgs[0].T != 7 || f.Msgs[1].T != 9 {
		t.Fatalf("batch content corrupted: %+v", f.Msgs)
	}
	ReleaseMsgs(f.Msgs)
}

// TestShmSendMsgsBounds checks rank validation on the fast path.
func TestShmSendMsgsBounds(t *testing.T) {
	g, _ := NewShmGroup(2)
	s := g.Endpoint(0).(MsgSender)
	if err := s.SendMsgs(2, nil); err == nil {
		t.Fatal("SendMsgs(2) on a 2-rank group succeeded")
	}
	if err := s.SendMsgs(-1, nil); err == nil {
		t.Fatal("SendMsgs(-1) succeeded")
	}
}

// TestChaosHidesMsgSender pins the chaos-compatibility mechanism: a
// chaos wrapper does not forward the MsgSender fast path, so a
// communicator over a wrapped endpoint falls back to byte frames — the
// path fault injection understands.
func TestChaosHidesMsgSender(t *testing.T) {
	g, _ := NewShmGroup(2)
	var ep Transport = NewChaos(g.Endpoint(0), ChaosConfig{})
	if _, ok := ep.(MsgSender); ok {
		t.Fatal("chaos-wrapped endpoint still exposes SendMsgs; faults would bypass injection")
	}
	var dl Transport = NewDelayed(g.Endpoint(1), 0)
	if _, ok := dl.(MsgSender); ok {
		t.Fatal("delay-wrapped endpoint still exposes SendMsgs")
	}
}

// TestMailboxBacklogLimit is the backpressure contract of the bounded
// in-process mailboxes: past the limit, push fails fast with ErrBacklog
// instead of growing the queue, and draining frees capacity again.
func TestMailboxBacklogLimit(t *testing.T) {
	m := newMailboxLimited(4)
	for i := 0; i < 4; i++ {
		if err := m.push(Frame{From: i}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := m.push(Frame{From: 4}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("push past limit: err=%v, want ErrBacklog", err)
	}
	if _, ok, err := m.pop(false); err != nil || !ok {
		t.Fatalf("pop: ok=%v err=%v", ok, err)
	}
	if err := m.push(Frame{From: 5}); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
	// The remaining frames come out in order, the overflow one never
	// entered the queue.
	want := []int{1, 2, 3, 5}
	for _, w := range want {
		f, ok, err := m.pop(false)
		if err != nil || !ok || f.From != w {
			t.Fatalf("pop: got From=%d ok=%v err=%v, want From=%d", f.From, ok, err, w)
		}
	}
}

// TestGroupBacklogLimit checks that both in-process groups actually
// bound their queues at DefaultQueueLimit.
func TestGroupBacklogLimit(t *testing.T) {
	for name, eps := range map[string][]Transport{
		"shm":   mkShm(t, 2),
		"local": mkLocal(t, 2),
	} {
		src := eps[0]
		var err error
		for i := 0; i <= DefaultQueueLimit; i++ {
			if err = src.Send(1, []byte{1}); err != nil {
				break
			}
		}
		if !errors.Is(err, ErrBacklog) {
			t.Fatalf("%s: filling the mailbox: err=%v, want ErrBacklog", name, err)
		}
	}
}

// TestLeaseMsgsRecycles checks the message-slice pool round trip.
func TestLeaseMsgsRecycles(t *testing.T) {
	ms := LeaseMsgs(8)
	if len(ms) != 0 || cap(ms) < 8 {
		t.Fatalf("lease: len=%d cap=%d", len(ms), cap(ms))
	}
	ms = append(ms, msg.Request(1, 0, 0, 0))
	ReleaseMsgs(ms)
	got := LeaseMsgs(1)
	if len(got) != 0 {
		t.Fatalf("recycled lease not reset: len=%d", len(got))
	}
	ReleaseMsgs(nil) // zero-capacity release is a no-op
}
