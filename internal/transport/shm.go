package transport

import (
	"fmt"

	"pagen/internal/msg"
)

// ShmGroup is the shared-memory variant of LocalGroup: co-located ranks
// in one process exchange decoded message batches by reference through
// the MsgSender fast path, skipping the v2/v3 codec on both ends. Byte
// frames (Send) still work — collectives and any chaos-wrapped endpoint
// use them — so an ShmGroup endpoint is a drop-in Transport; only the
// communicator's batch flush takes the no-serialize path.
//
// Ownership follows the pool's lease/release rule: the sender leases a
// message slice (LeaseMsgs), fills it, and hands it over in SendMsgs;
// from that point the slice belongs to the receiving endpoint, whose
// consumer releases it exactly once (ReleaseMsgs) after copying the
// messages out. Mailbox depth is bounded at DefaultQueueLimit, same as
// LocalGroup.
type ShmGroup struct {
	boxes []*mailbox
}

// NewShmGroup returns a group of p connected shared-memory endpoints.
func NewShmGroup(p int) (*ShmGroup, error) {
	if p < 1 {
		return nil, fmt.Errorf("transport: group size %d, want >= 1", p)
	}
	g := &ShmGroup{boxes: make([]*mailbox, p)}
	for i := range g.boxes {
		g.boxes[i] = newMailboxLimited(DefaultQueueLimit)
	}
	return g, nil
}

// Endpoint returns rank's transport endpoint.
func (g *ShmGroup) Endpoint(rank int) Transport {
	if rank < 0 || rank >= len(g.boxes) {
		panic(fmt.Sprintf("transport: rank %d outside [0,%d)", rank, len(g.boxes)))
	}
	return &shmEndpoint{group: g, rank: rank}
}

type shmEndpoint struct {
	group *ShmGroup
	rank  int
}

func (e *shmEndpoint) Rank() int { return e.rank }
func (e *shmEndpoint) Size() int { return len(e.group.boxes) }

func (e *shmEndpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.group.boxes) {
		return fmt.Errorf("transport: send to rank %d outside [0,%d)", to, len(e.group.boxes))
	}
	return e.group.boxes[to].push(Frame{From: e.rank, Data: data})
}

// SendMsgs implements MsgSender: the batch crosses by reference, no
// serialization. The callee takes ownership of ms.
func (e *shmEndpoint) SendMsgs(to int, ms []msg.Message) error {
	if to < 0 || to >= len(e.group.boxes) {
		return fmt.Errorf("transport: send to rank %d outside [0,%d)", to, len(e.group.boxes))
	}
	return e.group.boxes[to].push(Frame{From: e.rank, Msgs: ms})
}

func (e *shmEndpoint) Recv() (Frame, error) {
	f, ok, err := e.group.boxes[e.rank].pop(true)
	if err != nil {
		return Frame{}, err
	}
	if !ok {
		return Frame{}, ErrClosed
	}
	return f, nil
}

func (e *shmEndpoint) TryRecv() (Frame, bool, error) {
	return e.group.boxes[e.rank].pop(false)
}

func (e *shmEndpoint) Close() error {
	e.group.boxes[e.rank].close()
	return nil
}
