package transport

import (
	"testing"
	"time"
)

func delayedPair(t *testing.T, delay time.Duration) (Transport, Transport) {
	t.Helper()
	g, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	return NewDelayed(g.Endpoint(0), delay), NewDelayed(g.Endpoint(1), delay)
}

func TestDelayedDelivers(t *testing.T) {
	a, b := delayedPair(t, time.Millisecond)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "hi" || f.From != 0 {
		t.Fatalf("frame = %+v", f)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("delivered after %v, want >= 1ms", elapsed)
	}
}

func TestDelayedPreservesOrder(t *testing.T) {
	a, b := delayedPair(t, 200*time.Microsecond)
	defer a.Close()
	defer b.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if int(f.Data[0]) != i {
			t.Fatalf("frame %d arrived as %d", i, f.Data[0])
		}
	}
}

func TestDelayedPipelines(t *testing.T) {
	// k frames sent back-to-back must take ~delay total, not k*delay:
	// the delay line models latency, not serialised bandwidth.
	a, b := delayedPair(t, 20*time.Millisecond)
	defer a.Close()
	defer b.Close()
	const k = 50
	start := time.Now()
	for i := 0; i < k; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*20*time.Millisecond {
		t.Fatalf("%d frames took %v — latency is being serialised", k, elapsed)
	}
}

func TestDelayedZeroDelay(t *testing.T) {
	a, b := delayedPair(t, 0)
	defer a.Close()
	defer b.Close()
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedCloseDrains(t *testing.T) {
	a, b := delayedPair(t, 2*time.Millisecond)
	if err := a.Send(1, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	// Close the sender immediately: the queued frame must still arrive.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := b.Recv()
	if err != nil || string(f.Data) != "pending" {
		t.Fatalf("drain on close: %v %v", f, err)
	}
	b.Close()
}

func TestDelayedCloseIdempotent(t *testing.T) {
	a, b := delayedPair(t, time.Millisecond)
	b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedInvalidRank(t *testing.T) {
	a, b := delayedPair(t, time.Millisecond)
	defer a.Close()
	defer b.Close()
	if err := a.Send(7, nil); err == nil {
		t.Fatal("send to rank 7 accepted")
	}
}
