package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkTCPWithConfig establishes a p-rank localhost mesh with explicit
// config on every rank, using its own port range.
func mkTCPWithConfig(t *testing.T, p, basePort int, cfg TCPConfig) []*TCP {
	t.Helper()
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]*TCP, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = NewTCPWithConfig(i, addrs, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

// A handshake with a peer that never shows up must fail at the deadline,
// not block forever.
func TestTCPHandshakeDeadlineNoPeer(t *testing.T) {
	addrs := []string{"127.0.0.1:42710", "127.0.0.1:42711"}
	start := time.Now()
	_, err := NewTCPWithConfig(0, addrs, TCPConfig{HandshakeTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake with absent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("handshake error took %v, deadline was 300ms", elapsed)
	}
	if !strings.Contains(err.Error(), "handshake deadline") &&
		!strings.Contains(err.Error(), "accepting peers") {
		t.Fatalf("error %q does not mention the handshake deadline", err)
	}
}

// The dialing side hits the same deadline when the lower rank's listener
// never comes up (bounded-backoff retries stop at the deadline).
func TestTCPHandshakeDeadlineDialSide(t *testing.T) {
	addrs := []string{"127.0.0.1:42720", "127.0.0.1:42721"}
	start := time.Now()
	_, err := NewTCPWithConfig(1, addrs, TCPConfig{HandshakeTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to absent listener succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial error took %v, deadline was 300ms", elapsed)
	}
	if !strings.Contains(err.Error(), "dial rank 0") {
		t.Fatalf("error %q does not identify the unreachable rank", err)
	}
}

// The regression the fault-injection work targets: a peer that connects
// and then dies mid-handshake (before sending its hello) must surface as
// an error on rank 0 within the deadline — the seed implementation hung
// in Accept/Read forever.
func TestTCPHandshakePeerDiesMidHandshake(t *testing.T) {
	addrs := []string{"127.0.0.1:42730", "127.0.0.1:42731"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Play the dying peer: connect to rank 0's listener, send
		// nothing, vanish.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			conn, err := net.Dial("tcp", addrs[0])
			if err == nil {
				conn.Close()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	start := time.Now()
	_, err := NewTCPWithConfig(0, addrs, TCPConfig{HandshakeTimeout: 2 * time.Second})
	<-done
	if err == nil {
		t.Fatal("handshake with a peer that died mid-hello succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("handshake error took %v, deadline was 2s", elapsed)
	}
}

// An established connection dying abruptly (no goodbye marker — a
// crashed peer) must latch a connection-lost error that Recv and Send
// report, instead of stalling the surviving rank.
func TestTCPPeerCrashLatchesError(t *testing.T) {
	eps := mkTCPWithConfig(t, 2, 42740, TCPConfig{})
	defer eps[0].Close()
	// Crash rank 1: close its raw socket to rank 0 without the graceful
	// shutdown sequence.
	eps[1].conns[0].Close()

	recvDone := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv()
		recvDone <- err
	}()
	select {
	case err := <-recvDone:
		if err == nil || !strings.Contains(err.Error(), "lost") {
			t.Fatalf("Recv after peer crash = %v, want connection-lost error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv hung after peer crash")
	}
	if err := eps[0].Err(); err == nil {
		t.Fatal("Err() nil after peer crash")
	}
	if err := eps[0].Send(1, []byte("x")); err == nil {
		t.Fatal("Send after latched failure succeeded")
	}
}

// A graceful peer Close (goodbye marker on the wire) is not a failure:
// the surviving rank's Err stays nil.
func TestTCPGracefulCloseIsNotAFailure(t *testing.T) {
	eps := mkTCPWithConfig(t, 2, 42750, TCPConfig{})
	if err := eps[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Give rank 0's reader time to process the goodbye + EOF.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := eps[0].Err(); err != nil {
			t.Fatalf("graceful peer close latched a failure: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
}

// Frames accepted by Send before Close must still reach the peer: the
// shutdown sequence drains the outbound queues before goodbye.
func TestTCPCloseDrainsInFlightFrames(t *testing.T) {
	eps := mkTCPWithConfig(t, 2, 42760, TCPConfig{})
	const n = 500
	for i := 0; i < n; i++ {
		b := LeaseFrame(2)
		if err := eps[0].Send(1, append(b, byte(i), byte(i>>8))); err != nil {
			t.Fatal(err)
		}
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f, err := eps[1].Recv()
		if err != nil {
			t.Fatalf("frame %d of %d lost in shutdown: %v", i, n, err)
		}
		if got := int(f.Data[0]) | int(f.Data[1])<<8; got != i {
			t.Fatalf("frame %d arrived as %d", i, got)
		}
	}
	eps[1].Close()
}

// The chaos wrapper composes with TCP: killing one rank of a live TCP
// mesh turns into errors on the peers, not hangs.
func TestTCPChaosKillSurfacesOnPeer(t *testing.T) {
	eps := mkTCPWithConfig(t, 2, 42770, TCPConfig{WriteTimeout: 2 * time.Second})
	chaotic := NewChaos(eps[1], ChaosConfig{Seed: 9, KillAfterSends: 3})
	defer eps[0].Close()
	defer chaotic.Close()
	for i := 0; i < 10; i++ {
		b := LeaseFrame(1)
		if err := chaotic.Send(0, append(b, byte(i))); err != nil {
			break
		}
	}
	// Rank 0 must observe the abrupt death within the read path.
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := eps[0].Recv(); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("nil error after peer kill")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rank 0 never observed the killed peer")
	}
}
