package transport

import "fmt"

// LocalGroup is a set of in-process endpoints, one per rank, sharing
// mailboxes bounded at DefaultQueueLimit frames (a stalled rank fails
// its senders with ErrBacklog rather than growing the queue without
// limit). Create one per simulated "cluster".
type LocalGroup struct {
	boxes []*mailbox
}

// NewLocalGroup returns a group of p connected local endpoints.
func NewLocalGroup(p int) (*LocalGroup, error) {
	if p < 1 {
		return nil, fmt.Errorf("transport: group size %d, want >= 1", p)
	}
	g := &LocalGroup{boxes: make([]*mailbox, p)}
	for i := range g.boxes {
		g.boxes[i] = newMailboxLimited(DefaultQueueLimit)
	}
	return g, nil
}

// Endpoint returns rank's transport endpoint.
func (g *LocalGroup) Endpoint(rank int) Transport {
	if rank < 0 || rank >= len(g.boxes) {
		panic(fmt.Sprintf("transport: rank %d outside [0,%d)", rank, len(g.boxes)))
	}
	return &localEndpoint{group: g, rank: rank}
}

type localEndpoint struct {
	group *LocalGroup
	rank  int
}

func (e *localEndpoint) Rank() int { return e.rank }
func (e *localEndpoint) Size() int { return len(e.group.boxes) }

func (e *localEndpoint) Send(to int, data []byte) error {
	if to < 0 || to >= len(e.group.boxes) {
		return fmt.Errorf("transport: send to rank %d outside [0,%d)", to, len(e.group.boxes))
	}
	return e.group.boxes[to].push(Frame{From: e.rank, Data: data})
}

func (e *localEndpoint) Recv() (Frame, error) {
	f, ok, err := e.group.boxes[e.rank].pop(true)
	if err != nil {
		return Frame{}, err
	}
	if !ok {
		return Frame{}, ErrClosed
	}
	return f, nil
}

func (e *localEndpoint) TryRecv() (Frame, bool, error) {
	return e.group.boxes[e.rank].pop(false)
}

func (e *localEndpoint) Close() error {
	e.group.boxes[e.rank].close()
	return nil
}
