package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig tunes the failure model of the TCP transport: how long mesh
// establishment may take, how dial retries back off, and how long an
// individual frame write may stall before the connection is declared
// dead. The zero value selects the defaults; use a negative duration to
// disable an individual timeout.
type TCPConfig struct {
	// HandshakeTimeout bounds the entire mesh-establishment phase of
	// NewTCP: listening, accepting every higher rank's connection and
	// hello, and dialing every lower rank. When it expires NewTCP
	// returns an error instead of waiting forever on a peer that died
	// mid-handshake. Default DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write on an established
	// connection. A write that stalls longer (peer wedged, network
	// partition) fails the connection, which surfaces as a transport
	// error on the local rank. Default DefaultWriteTimeout; negative
	// disables.
	WriteTimeout time.Duration
	// ReadIdleTimeout, when positive, fails a connection on which no
	// frame has arrived for that long. Disabled by default: engine
	// traffic between a pair of ranks is legitimately bursty (long
	// local-generation stretches send nothing), so only deployments
	// with a known traffic cadence should set it.
	ReadIdleTimeout time.Duration
	// DialBackoffBase is the initial delay between dial attempts while
	// a lower rank's listener comes up; each failure doubles it up to
	// DialBackoffMax (bounded exponential backoff). Defaults
	// DefaultDialBackoffBase / DefaultDialBackoffMax.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
}

// Defaults for TCPConfig fields.
const (
	DefaultHandshakeTimeout = 30 * time.Second
	DefaultWriteTimeout     = time.Minute
	DefaultDialBackoffBase  = 10 * time.Millisecond
	DefaultDialBackoffMax   = 500 * time.Millisecond
)

// withDefaults resolves zero fields to the package defaults and negative
// timeouts to "disabled".
func (c TCPConfig) withDefaults() TCPConfig {
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.DialBackoffBase <= 0 {
		c.DialBackoffBase = DefaultDialBackoffBase
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = DefaultDialBackoffMax
	}
	return c
}

// TCP is a full-mesh distributed-memory transport: each pair of ranks
// shares one TCP connection (lower rank listens, higher rank dials),
// frames are length-prefixed, and every connection has a dedicated reader
// goroutine (pumping into the rank's unbounded mailbox) and writer
// goroutine (draining an unbounded outbox), so engine sends never block
// on peer progress — the property the deadlock analysis of Section 3.5.2
// needs from the runtime.
//
// Failure model: mesh establishment is bounded by
// TCPConfig.HandshakeTimeout (a peer dying mid-handshake produces an
// error, not a hang), each frame write by TCPConfig.WriteTimeout, and a
// connection that fails outside a graceful Close latches a
// connection-lost error that subsequent Recv and Send calls return — a
// crashed peer turns into an error on every surviving rank instead of a
// silent stall. Close drains the outbound queues before tearing
// connections down, so frames already accepted by Send still reach the
// wire (bounded by the write timeout).
type TCP struct {
	rank  int
	addrs []string
	cfg   TCPConfig
	inbox *mailbox

	mu       sync.Mutex
	conns    []net.Conn // index by peer rank; nil for self
	outboxes []*mailbox // per-peer outbound frame queues
	closed   bool
	failure  error // first unexpected connection failure; nil if none
	readers  sync.WaitGroup
	writers  sync.WaitGroup
}

// NewTCP creates rank's endpoint of a P-rank mesh with the default
// TCPConfig, where addrs[i] is the listen address of rank i
// (len(addrs) = P). It blocks until connections to all peers are
// established or the handshake deadline expires. All ranks must call
// NewTCP concurrently (they are separate processes in real deployments).
func NewTCP(rank int, addrs []string) (*TCP, error) {
	return NewTCPWithConfig(rank, addrs, TCPConfig{})
}

// NewTCPWithConfig is NewTCP with explicit timeout/backoff tuning.
func NewTCPWithConfig(rank int, addrs []string, cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	p := len(addrs)
	if p < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("transport: rank %d outside [0,%d)", rank, p)
	}
	t := &TCP{
		rank:     rank,
		addrs:    addrs,
		cfg:      cfg,
		inbox:    newMailbox(),
		conns:    make([]net.Conn, p),
		outboxes: make([]*mailbox, p),
	}
	deadline := time.Now().Add(cfg.HandshakeTimeout)

	// closeAll tears down whatever the partial handshake established.
	closeAll := func() {
		for _, c := range t.conns {
			if c != nil {
				c.Close()
			}
		}
	}

	// Accept connections from all higher ranks. The listener itself
	// carries the handshake deadline, so a higher rank that never
	// arrives (or dies mid-hello) turns into a timeout error here
	// instead of an eternal Accept.
	var ln net.Listener
	var err error
	if rank < p-1 {
		ln, err = net.Listen("tcp", addrs[rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
		}
		defer ln.Close()
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
	}

	acceptErr := make(chan error, 1)
	go func() {
		for accepted := 0; accepted < p-1-rank; {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- fmt.Errorf("transport: accepting peers (%d of %d arrived before the handshake deadline): %w",
					accepted, p-1-rank, err)
				return
			}
			var hdr [4]byte
			conn.SetReadDeadline(deadline)
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				conn.Close()
				acceptErr <- fmt.Errorf("transport: reading peer handshake: %w", err)
				return
			}
			conn.SetReadDeadline(time.Time{})
			from := int(binary.LittleEndian.Uint32(hdr[:]))
			if from <= rank || from >= p {
				conn.Close()
				acceptErr <- fmt.Errorf("transport: bad handshake rank %d", from)
				return
			}
			t.mu.Lock()
			dup := t.conns[from] != nil
			if !dup {
				t.conns[from] = conn
				accepted++
			}
			t.mu.Unlock()
			if dup {
				conn.Close()
				acceptErr <- fmt.Errorf("transport: duplicate handshake from rank %d", from)
				return
			}
		}
		acceptErr <- nil
	}()

	// Dial all lower ranks, retrying with bounded exponential backoff
	// while their listeners come up.
	for peer := 0; peer < rank; peer++ {
		conn, err := dialBackoff(addrs[peer], deadline, cfg)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("transport: dial rank %d at %s: %w", peer, addrs[peer], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
		conn.SetWriteDeadline(deadline)
		if _, err := conn.Write(hdr[:]); err != nil {
			conn.Close()
			closeAll()
			return nil, fmt.Errorf("transport: handshake to rank %d: %w", peer, err)
		}
		conn.SetWriteDeadline(time.Time{})
		t.mu.Lock()
		t.conns[peer] = conn
		t.mu.Unlock()
	}

	if err := <-acceptErr; err != nil {
		closeAll()
		return nil, err
	}

	// Start per-connection pumps.
	for peer := 0; peer < p; peer++ {
		if peer == rank {
			continue
		}
		t.outboxes[peer] = newMailbox()
		t.readers.Add(1)
		t.writers.Add(1)
		go t.readLoop(peer)
		go t.writeLoop(peer)
	}
	return t, nil
}

// dialBackoff dials addr until it succeeds or the deadline passes,
// doubling the inter-attempt delay from cfg.DialBackoffBase up to
// cfg.DialBackoffMax.
func dialBackoff(addr string, deadline time.Time, cfg TCPConfig) (net.Conn, error) {
	backoff := cfg.DialBackoffBase
	for {
		attempt := time.Until(deadline)
		if attempt <= 0 {
			return nil, fmt.Errorf("handshake deadline expired")
		}
		if attempt > time.Second {
			attempt = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("handshake deadline expired: %w", err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > cfg.DialBackoffMax {
			backoff = cfg.DialBackoffMax
		}
	}
}

// isClosed reports whether Close has begun.
func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// fail latches the first unexpected connection failure and wakes any
// blocked Recv by closing the inbox (frames already queued are still
// delivered first). During a graceful Close connection errors are
// expected and ignored.
func (t *TCP) fail(peer int, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.failure == nil {
		t.failure = fmt.Errorf("transport: connection to rank %d lost: %w", peer, err)
	}
	t.mu.Unlock()
	t.inbox.close()
}

// Err returns the latched connection failure, or nil while every peer
// connection is healthy (or after a graceful Close).
func (t *TCP) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failure
}

// tcpReadBufSize sizes each connection's reusable read buffer: large
// enough that a length prefix plus a typical coalesced frame arrive in
// one read syscall.
const tcpReadBufSize = 64 << 10

// A zero-length frame is the goodbye marker: Close writes one on every
// connection after draining the outbound queues, so the peer's reader
// can tell a graceful shutdown (goodbye, then EOF) from a crashed
// process (EOF or reset with no goodbye). Data frames are never empty —
// the communicator only flushes non-empty batches — so the length is
// unambiguous on the wire.

func (t *TCP) readLoop(peer int) {
	defer t.readers.Done()
	// One reusable buffered reader per connection: the length prefix and
	// frame body are read through it, so small frames cost no extra
	// syscalls and the payload buffers come from the frame pool instead
	// of a fresh allocation per frame.
	conn := t.conns[peer]
	br := bufio.NewReaderSize(conn, tcpReadBufSize)
	var hdr [4]byte
	for {
		if t.cfg.ReadIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.fail(peer, err) // no-op if our own Close is in progress
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size == 0 {
			return // goodbye marker: peer shut down gracefully
		}
		data := LeaseFrame(int(size))[:size]
		if _, err := io.ReadFull(br, data); err != nil {
			t.fail(peer, err)
			return
		}
		if t.inbox.push(Frame{From: peer, Data: data}) != nil {
			return
		}
	}
}

func (t *TCP) writeLoop(peer int) {
	defer t.writers.Done()
	conn := t.conns[peer]
	var hdr [4]byte
	for {
		f, ok, err := t.outboxes[peer].pop(true)
		if err != nil || !ok {
			return
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.Data)))
		if t.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		}
		if _, err := conn.Write(hdr[:]); err != nil {
			ReleaseFrame(f.Data)
			t.fail(peer, err)
			return
		}
		_, err = conn.Write(f.Data)
		// The bytes are on the wire (or the connection is dead): this
		// side's ownership of the leased buffer ends here.
		ReleaseFrame(f.Data)
		if err != nil {
			t.fail(peer, err)
			return
		}
	}
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return len(t.addrs) }

// Send implements Transport. Self-sends loop back through the inbox.
// After a connection failure has been latched, Send reports it so the
// engine stops generating instead of queueing frames no one will read.
func (t *TCP) Send(to int, data []byte) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("transport: send to rank %d outside [0,%d)", to, len(t.addrs))
	}
	if err := t.Err(); err != nil {
		return err
	}
	if to == t.rank {
		return t.inbox.push(Frame{From: t.rank, Data: data})
	}
	return t.outboxes[to].push(Frame{From: t.rank, Data: data})
}

// Recv implements Transport. After a peer connection fails outside a
// graceful Close, the already-received frames drain first and then Recv
// returns the connection-lost error.
func (t *TCP) Recv() (Frame, error) {
	f, ok, err := t.inbox.pop(true)
	if err != nil {
		if ferr := t.Err(); ferr != nil {
			return Frame{}, ferr
		}
		return Frame{}, err
	}
	if !ok {
		if ferr := t.Err(); ferr != nil {
			return Frame{}, ferr
		}
		return Frame{}, ErrClosed
	}
	return f, nil
}

// TryRecv implements Transport.
func (t *TCP) TryRecv() (Frame, bool, error) {
	f, ok, err := t.inbox.pop(false)
	if err != nil {
		if ferr := t.Err(); ferr != nil {
			return Frame{}, false, ferr
		}
	}
	return f, ok, err
}

// Close implements Transport, running the graceful shutdown sequence:
// outbound queues are closed first and the writer goroutines drain them
// fully (the mailbox delivers queued frames even after close), so frames
// already accepted by Send still reach the wire — each write bounded by
// the configured write timeout. A goodbye marker then tells every peer
// this shutdown is deliberate (so their readers do not report a lost
// connection), and only then are the connections torn down. Callers must
// not Close while peers still expect traffic from this rank: frames a
// peer sends after processing our goodbye fail its connection.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.shutdown()
}

// Abort tears the endpoint down abruptly: no outbox drain, no goodbye
// markers — peers observe exactly what a crashed process looks like on
// the wire (EOF or reset without goodbye) and latch connection-lost
// errors. It exists for fault injection (Chaos's kill switch uses it);
// production shutdown goes through Close.
func (t *TCP) Abort() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	for peer, c := range t.conns {
		if c != nil && peer != t.rank {
			c.Close()
		}
	}
	for _, ob := range t.outboxes {
		if ob != nil {
			ob.close()
		}
	}
	t.inbox.close()
	t.writers.Wait()
	t.readers.Wait()
}

// shutdown is the graceful half of Close, entered with t.closed set.
func (t *TCP) shutdown() error {
	for _, ob := range t.outboxes {
		if ob != nil {
			ob.close()
		}
	}
	t.writers.Wait()
	var goodbye [4]byte // zero length = goodbye marker
	for peer, c := range t.conns {
		if c == nil || peer == t.rank {
			continue
		}
		if t.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		}
		c.Write(goodbye[:]) // best effort; the peer may already be gone
		c.Close()
	}
	t.inbox.close()
	t.readers.Wait()
	return nil
}
