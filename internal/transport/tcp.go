package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a full-mesh distributed-memory transport: each pair of ranks
// shares one TCP connection (lower rank listens, higher rank dials),
// frames are length-prefixed, and every connection has a dedicated reader
// goroutine (pumping into the rank's unbounded mailbox) and writer
// goroutine (draining an unbounded outbox), so engine sends never block
// on peer progress — the property the deadlock analysis of Section 3.5.2
// needs from the runtime.
type TCP struct {
	rank  int
	addrs []string
	inbox *mailbox

	mu       sync.Mutex
	conns    []net.Conn // index by peer rank; nil for self
	outboxes []*mailbox // per-peer outbound frame queues
	closed   bool
	readers  sync.WaitGroup
	writers  sync.WaitGroup
}

const tcpDialTimeout = 10 * time.Second

// NewTCP creates rank's endpoint of a P-rank mesh, where addrs[i] is the
// listen address of rank i (len(addrs) = P). It blocks until connections
// to all peers are established. All ranks must call NewTCP concurrently
// (they are separate processes in real deployments).
func NewTCP(rank int, addrs []string) (*TCP, error) {
	p := len(addrs)
	if p < 1 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("transport: rank %d outside [0,%d)", rank, p)
	}
	t := &TCP{
		rank:     rank,
		addrs:    addrs,
		inbox:    newMailbox(),
		conns:    make([]net.Conn, p),
		outboxes: make([]*mailbox, p),
	}

	// Accept connections from all higher ranks.
	var ln net.Listener
	var err error
	if rank < p-1 {
		ln, err = net.Listen("tcp", addrs[rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
		}
		defer ln.Close()
	}

	acceptErr := make(chan error, 1)
	go func() {
		for peer := rank + 1; peer < p; peer++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr <- fmt.Errorf("transport: reading peer handshake: %w", err)
				return
			}
			from := int(binary.LittleEndian.Uint32(hdr[:]))
			if from <= rank || from >= p {
				acceptErr <- fmt.Errorf("transport: bad handshake rank %d", from)
				return
			}
			t.mu.Lock()
			t.conns[from] = conn
			t.mu.Unlock()
		}
		acceptErr <- nil
	}()

	// Dial all lower ranks, retrying while their listeners come up.
	for peer := 0; peer < rank; peer++ {
		conn, err := dialRetry(addrs[peer], tcpDialTimeout)
		if err != nil {
			return nil, fmt.Errorf("transport: dial rank %d at %s: %w", peer, addrs[peer], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("transport: handshake to rank %d: %w", peer, err)
		}
		t.conns[peer] = conn
	}

	if err := <-acceptErr; err != nil {
		return nil, err
	}

	// Start per-connection pumps.
	for peer := 0; peer < p; peer++ {
		if peer == rank {
			continue
		}
		t.outboxes[peer] = newMailbox()
		t.readers.Add(1)
		t.writers.Add(1)
		go t.readLoop(peer)
		go t.writeLoop(peer)
	}
	return t, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tcpReadBufSize sizes each connection's reusable read buffer: large
// enough that a length prefix plus a typical coalesced frame arrive in
// one read syscall.
const tcpReadBufSize = 64 << 10

func (t *TCP) readLoop(peer int) {
	defer t.readers.Done()
	// One reusable buffered reader per connection: the length prefix and
	// frame body are read through it, so small frames cost no extra
	// syscalls and the payload buffers come from the frame pool instead
	// of a fresh allocation per frame.
	br := bufio.NewReaderSize(t.conns[peer], tcpReadBufSize)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // peer closed; normal at shutdown
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		data := LeaseFrame(int(size))[:size]
		if _, err := io.ReadFull(br, data); err != nil {
			return
		}
		if t.inbox.push(Frame{From: peer, Data: data}) != nil {
			return
		}
	}
}

func (t *TCP) writeLoop(peer int) {
	defer t.writers.Done()
	conn := t.conns[peer]
	var hdr [4]byte
	for {
		f, ok, err := t.outboxes[peer].pop(true)
		if err != nil || !ok {
			return
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.Data)))
		if _, err := conn.Write(hdr[:]); err != nil {
			return
		}
		_, err = conn.Write(f.Data)
		// The bytes are on the wire (or the connection is dead): this
		// side's ownership of the leased buffer ends here.
		ReleaseFrame(f.Data)
		if err != nil {
			return
		}
	}
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return len(t.addrs) }

// Send implements Transport. Self-sends loop back through the inbox.
func (t *TCP) Send(to int, data []byte) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("transport: send to rank %d outside [0,%d)", to, len(t.addrs))
	}
	if to == t.rank {
		return t.inbox.push(Frame{From: t.rank, Data: data})
	}
	return t.outboxes[to].push(Frame{From: t.rank, Data: data})
}

// Recv implements Transport.
func (t *TCP) Recv() (Frame, error) {
	f, ok, err := t.inbox.pop(true)
	if err != nil {
		return Frame{}, err
	}
	if !ok {
		return Frame{}, ErrClosed
	}
	return f, nil
}

// TryRecv implements Transport.
func (t *TCP) TryRecv() (Frame, bool, error) {
	return t.inbox.pop(false)
}

// Close implements Transport. Outbound queues are closed first and the
// writer goroutines drain them fully (the mailbox delivers queued frames
// even after close), so frames already accepted by Send still reach the
// wire; only then are the connections torn down.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for _, ob := range t.outboxes {
		if ob != nil {
			ob.close()
		}
	}
	t.writers.Wait()
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.inbox.close()
	t.readers.Wait()
	return nil
}
