package transport

import (
	"sync"

	"pagen/internal/msg"
)

// Frame-buffer pooling. The hot path sends one frame per flushed message
// batch; leasing the byte buffers from a pool instead of allocating per
// frame makes the steady-state send/receive path allocation-free.
//
// Ownership rule (the lease/release protocol):
//
//   - The producer of a frame leases its buffer with LeaseFrame and hands
//     ownership to Transport.Send.
//   - Whoever consumes the frame bytes releases the buffer exactly once
//     with ReleaseFrame: the decoding endpoint for locally-delivered
//     frames (internal/comm does this after DecodeBatch), or the TCP
//     writer goroutine once the bytes are on the wire (the remote reader
//     then leases a fresh buffer for the incoming copy).
//   - After release the buffer must not be touched; a released buffer may
//     be handed out by the next LeaseFrame anywhere in the process.
//
// Buffers that never get released (e.g. frames dropped at shutdown) are
// simply garbage collected — the pool tolerates leaks, never double
// frees.

// frameBuf boxes a pooled buffer so Put never allocates: fullFrames holds
// boxes with data, emptyBoxes recycles the boxes themselves.
type frameBuf struct{ b []byte }

var (
	fullFrames sync.Pool // *frameBuf with b != nil
	emptyBoxes = sync.Pool{New: func() any { return new(frameBuf) }}
)

// LeaseFrame returns a zero-length buffer with capacity at least capHint,
// reusing a released buffer when one is available.
func LeaseFrame(capHint int) []byte {
	if v := fullFrames.Get(); v != nil {
		fb := v.(*frameBuf)
		b := fb.b[:0]
		fb.b = nil
		emptyBoxes.Put(fb)
		if cap(b) >= capHint {
			return b
		}
	}
	return make([]byte, 0, capHint)
}

// ReleaseFrame returns a buffer to the pool. Zero-capacity buffers are
// dropped (nothing to reuse).
func ReleaseFrame(b []byte) {
	if cap(b) == 0 {
		return
	}
	fb := emptyBoxes.Get().(*frameBuf)
	fb.b = b
	fullFrames.Put(fb)
}

// Message-slice pooling for the MsgSender fast path: the same
// lease/release ownership rule as frame buffers, applied to decoded
// []msg.Message batches handed across ranks by reference. The producer
// leases with LeaseMsgs and hands ownership to SendMsgs; the consumer
// releases exactly once with ReleaseMsgs after copying the messages
// out; leaked slices (shutdown drops) are garbage collected.

// msgBuf boxes a pooled message slice so Put never allocates.
type msgBuf struct{ ms []msg.Message }

var (
	fullMsgs      sync.Pool // *msgBuf with ms != nil
	emptyMsgBoxes = sync.Pool{New: func() any { return new(msgBuf) }}
)

// LeaseMsgs returns a zero-length message slice with capacity at least
// capHint, reusing a released slice when one is available.
func LeaseMsgs(capHint int) []msg.Message {
	if v := fullMsgs.Get(); v != nil {
		mb := v.(*msgBuf)
		ms := mb.ms[:0]
		mb.ms = nil
		emptyMsgBoxes.Put(mb)
		if cap(ms) >= capHint {
			return ms
		}
	}
	return make([]msg.Message, 0, capHint)
}

// ReleaseMsgs returns a message slice to the pool. Zero-capacity slices
// are dropped.
func ReleaseMsgs(ms []msg.Message) {
	if cap(ms) == 0 {
		return
	}
	mb := emptyMsgBoxes.Get().(*msgBuf)
	mb.ms = ms
	fullMsgs.Put(mb)
}
