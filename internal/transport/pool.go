package transport

import "sync"

// Frame-buffer pooling. The hot path sends one frame per flushed message
// batch; leasing the byte buffers from a pool instead of allocating per
// frame makes the steady-state send/receive path allocation-free.
//
// Ownership rule (the lease/release protocol):
//
//   - The producer of a frame leases its buffer with LeaseFrame and hands
//     ownership to Transport.Send.
//   - Whoever consumes the frame bytes releases the buffer exactly once
//     with ReleaseFrame: the decoding endpoint for locally-delivered
//     frames (internal/comm does this after DecodeBatch), or the TCP
//     writer goroutine once the bytes are on the wire (the remote reader
//     then leases a fresh buffer for the incoming copy).
//   - After release the buffer must not be touched; a released buffer may
//     be handed out by the next LeaseFrame anywhere in the process.
//
// Buffers that never get released (e.g. frames dropped at shutdown) are
// simply garbage collected — the pool tolerates leaks, never double
// frees.

// frameBuf boxes a pooled buffer so Put never allocates: fullFrames holds
// boxes with data, emptyBoxes recycles the boxes themselves.
type frameBuf struct{ b []byte }

var (
	fullFrames sync.Pool // *frameBuf with b != nil
	emptyBoxes = sync.Pool{New: func() any { return new(frameBuf) }}
)

// LeaseFrame returns a zero-length buffer with capacity at least capHint,
// reusing a released buffer when one is available.
func LeaseFrame(capHint int) []byte {
	if v := fullFrames.Get(); v != nil {
		fb := v.(*frameBuf)
		b := fb.b[:0]
		fb.b = nil
		emptyBoxes.Put(fb)
		if cap(b) >= capHint {
			return b
		}
	}
	return make([]byte, 0, capHint)
}

// ReleaseFrame returns a buffer to the pool. Zero-capacity buffers are
// dropped (nothing to reuse).
func ReleaseFrame(b []byte) {
	if cap(b) == 0 {
		return
	}
	fb := emptyBoxes.Get().(*frameBuf)
	fb.b = b
	fullFrames.Put(fb)
}
