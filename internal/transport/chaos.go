package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pagen/internal/xrand"
)

// ErrChaosKilled is returned by Send once a Chaos endpoint has executed
// its configured kill: the local rank behaves like a crashed process.
var ErrChaosKilled = errors.New("transport: chaos kill")

// ChaosConfig configures the fault injection of NewChaos. Probabilities
// are per-frame and independent; zero values inject nothing.
type ChaosConfig struct {
	// Seed drives the injection decisions (reproducible chaos).
	Seed uint64
	// DropProb is the probability a sent frame is silently discarded.
	// The engine protocol assumes a reliable transport, so dropping is
	// for exercising timeout/liveness error paths, not correctness.
	DropProb float64
	// DupProb is the probability a sent frame is delivered twice (the
	// duplicate is a deep copy, so frame-buffer ownership stays sound).
	DupProb float64
	// DelayProb is the probability a sent frame is held for a random
	// duration up to MaxDelay before delivery. Per-destination FIFO
	// order is preserved — a held frame also delays the frames behind
	// it — so the Transport ordering contract still holds.
	DelayProb float64
	// MaxDelay bounds injected delays (default 1ms when DelayProb > 0).
	MaxDelay time.Duration
	// KillAfterSends, when positive, makes the endpoint die after that
	// many Send calls: the inner transport is closed abruptly (no
	// goodbye — peers observe a crashed process) and every subsequent
	// Send returns ErrChaosKilled.
	KillAfterSends int64
}

// Chaos wraps a Transport with randomized fault injection — dropped,
// duplicated and delayed frames, and a kill switch that simulates the
// process dying mid-protocol. It is the test harness for the runtime's
// failure model: chaos tests assert that the engine and collectives
// either survive (delay, duplication where tolerated) or fail fast with
// an error (drop, kill) instead of hanging.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig
	lines []*delayLine
	wg    sync.WaitGroup

	mu  sync.Mutex
	rng *xrand.Rand

	sends    int64 // atomic
	killed   atomic.Bool
	killOnce sync.Once

	dropped    int64 // atomic
	duplicated int64 // atomic
	delayed    int64 // atomic

	sendMu  sync.Mutex
	sendErr error
}

// NewChaos wraps inner with the configured fault injection.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	c := &Chaos{
		inner: inner,
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
		lines: make([]*delayLine, inner.Size()),
	}
	for i := range c.lines {
		c.lines[i] = newDelayLine()
		c.wg.Add(1)
		go c.pump(i)
	}
	return c
}

// Dropped returns the number of frames discarded so far.
func (c *Chaos) Dropped() int64 { return atomic.LoadInt64(&c.dropped) }

// Duplicated returns the number of frames delivered twice so far.
func (c *Chaos) Duplicated() int64 { return atomic.LoadInt64(&c.duplicated) }

// Delayed returns the number of frames held back so far.
func (c *Chaos) Delayed() int64 { return atomic.LoadInt64(&c.delayed) }

// roll draws a uniform float in [0,1) under the lock (Send may be called
// from resolution cascades and pump goroutines are concurrent).
func (c *Chaos) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// randDelay draws a delay in (0, MaxDelay].
func (c *Chaos) randDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Uint64n(uint64(c.cfg.MaxDelay))) + 1
}

// pump forwards one destination's delay line in FIFO order, honouring
// each frame's deadline.
func (c *Chaos) pump(to int) {
	defer c.wg.Done()
	for {
		f, ok := c.lines[to].pop()
		if !ok {
			return
		}
		if wait := time.Until(f.deadline); wait > 0 {
			time.Sleep(wait)
		}
		if err := c.inner.Send(to, f.data); err != nil {
			c.sendMu.Lock()
			if c.sendErr == nil {
				c.sendErr = err
			}
			c.sendMu.Unlock()
			return
		}
	}
}

// kill closes the inner transport abruptly, once. Transports with an
// Abort method (TCP) die without the graceful goodbye, so peers observe
// a genuine crash; otherwise Close is the closest available guillotine.
func (c *Chaos) kill() {
	c.killOnce.Do(func() {
		c.killed.Store(true)
		for _, l := range c.lines {
			l.close()
		}
		if a, ok := c.inner.(interface{ Abort() }); ok {
			a.Abort()
		} else {
			c.inner.Close()
		}
	})
}

// Send implements Transport with fault injection applied in order:
// kill check, drop, then (possibly delayed) delivery plus an optional
// duplicate.
func (c *Chaos) Send(to int, data []byte) error {
	if to < 0 || to >= len(c.lines) {
		return c.inner.Send(to, data) // delegate range error
	}
	if c.killed.Load() {
		return ErrChaosKilled
	}
	if c.cfg.KillAfterSends > 0 && atomic.AddInt64(&c.sends, 1) > c.cfg.KillAfterSends {
		c.kill()
		return ErrChaosKilled
	}
	c.sendMu.Lock()
	err := c.sendErr
	c.sendMu.Unlock()
	if err != nil {
		return err
	}
	if c.cfg.DropProb > 0 && c.roll() < c.cfg.DropProb {
		atomic.AddInt64(&c.dropped, 1)
		ReleaseFrame(data) // we consumed the frame by discarding it
		return nil
	}
	deadline := time.Now()
	if c.cfg.DelayProb > 0 && c.roll() < c.cfg.DelayProb {
		atomic.AddInt64(&c.delayed, 1)
		deadline = deadline.Add(c.randDelay())
	}
	var dup []byte
	if c.cfg.DupProb > 0 && c.roll() < c.cfg.DupProb {
		atomic.AddInt64(&c.duplicated, 1)
		dup = append(LeaseFrame(len(data)), data...)
	}
	if err := c.lines[to].push(delayedFrame{deadline: deadline, data: data}); err != nil {
		return err
	}
	if dup != nil {
		return c.lines[to].push(delayedFrame{deadline: deadline, data: dup})
	}
	return nil
}

// Rank implements Transport.
func (c *Chaos) Rank() int { return c.inner.Rank() }

// Size implements Transport.
func (c *Chaos) Size() int { return c.inner.Size() }

// Recv implements Transport.
func (c *Chaos) Recv() (Frame, error) {
	f, err := c.inner.Recv()
	if err != nil && c.killed.Load() {
		return Frame{}, fmt.Errorf("%w: %v", ErrChaosKilled, err)
	}
	return f, err
}

// TryRecv implements Transport.
func (c *Chaos) TryRecv() (Frame, bool, error) {
	f, ok, err := c.inner.TryRecv()
	if err != nil && c.killed.Load() {
		return Frame{}, false, fmt.Errorf("%w: %v", ErrChaosKilled, err)
	}
	return f, ok, err
}

// Close implements Transport: the delay lines drain (forwarding held
// frames) before the inner transport closes.
func (c *Chaos) Close() error {
	if c.killed.Load() {
		c.wg.Wait()
		return nil
	}
	for _, l := range c.lines {
		l.close()
	}
	c.wg.Wait()
	return c.inner.Close()
}
