// Package transport provides the point-to-point message substrate the
// communicator (internal/comm) is built on — the role MPI plays in the
// paper. Three implementations are provided:
//
//   - Local: ranks are goroutines in one process, connected by
//     mailboxes. Deterministic-ish, cheap, and deadlock-free by
//     construction: a send never blocks, so the circular-wait scenario
//     the paper's Section 3.5.2 guards against cannot wedge the runtime
//     (the buffering *policy* is still implemented faithfully in
//     internal/comm, where its effect on message counts is measured).
//     Mailbox depth is bounded at DefaultQueueLimit: a wedged consumer
//     fails the sender fast with ErrBacklog instead of growing the
//     queue until the process OOMs.
//   - Shm: Local plus the MsgSender fast path — co-located ranks hand
//     pooled message batches across by reference, skipping the v3 codec
//     entirely. This is the default for pagen -ranks on one host.
//   - TCP: ranks are separate OS processes in a full mesh of TCP
//     connections with length-prefixed frames — genuine distributed
//     memory. Per-connection reader goroutines pump frames into the same
//     unbounded mailbox, so a slow consumer never stalls a sender's
//     kernel buffers indefinitely.
//
// A Transport moves opaque frames; message semantics live in
// internal/msg, batching policy in internal/comm.
package transport

import (
	"errors"

	"pagen/internal/msg"
)

// Frame is one received transport frame. Exactly one of Data and Msgs
// is set: Data carries serialized bytes (the wire formats in
// internal/msg), Msgs carries decoded messages handed across by
// reference on a shared-memory transport (see MsgSender). Consumers
// must check Msgs first and fall back to decoding Data.
type Frame struct {
	From int
	Data []byte
	Msgs []msg.Message
}

// ErrClosed is returned by Recv after Close, and by Send on a closed
// transport.
var ErrClosed = errors.New("transport: closed")

// ErrBacklog is returned by Send on a bounded in-process transport when
// the destination mailbox has accumulated DefaultQueueLimit undelivered
// frames. It means the receiving rank has effectively stopped consuming
// (deadlock, livelock, or a wedged goroutine): the protocol's buffering
// policy flushes at most one frame per BufferCap messages, so a healthy
// receiver drains far faster than any sender can legally produce.
// Failing fast surfaces the wedge instead of growing the queue until
// the process OOMs.
var ErrBacklog = errors.New("transport: receiver backlog limit exceeded")

// DefaultQueueLimit bounds the per-rank mailbox depth of the bounded
// in-process transports (Local and Shm). At the default BufferCap of
// 256 messages per frame this is ≈33M buffered messages per receiver —
// orders of magnitude beyond any healthy backlog, so the limit only
// trips on a genuinely stuck consumer.
const DefaultQueueLimit = 1 << 17

// MsgSender is the optional no-serialize fast path a Transport may
// provide for co-located ranks. SendMsgs hands a decoded message batch
// to rank to by reference; the callee takes ownership of ms (the caller
// must not touch it afterwards), mirroring the Send contract for byte
// buffers. The consumer releases the slice exactly once with
// ReleaseMsgs, mirroring ReleaseFrame.
//
// Wrappers that operate on frame bytes (Chaos, Delayed) deliberately do
// not implement MsgSender, so wrapping an Shm endpoint transparently
// falls back to the serialized path.
type MsgSender interface {
	SendMsgs(to int, ms []msg.Message) error
}

// Transport is a reliable, per-pair-ordered frame transport among P ranks.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank to. The callee takes ownership of data.
	// Send never blocks indefinitely on an unconsumed receiver.
	Send(to int, data []byte) error
	// Recv blocks until a frame arrives or the transport is closed.
	Recv() (Frame, error)
	// TryRecv returns a frame if one is immediately available.
	TryRecv() (Frame, bool, error)
	// Close shuts the endpoint down; blocked Recv calls return ErrClosed.
	Close() error
}

// mailbox is an unbounded MPSC queue with blocking and non-blocking pop.
// Senders append under the lock; the single consumer (the rank's engine
// loop) pops. Unboundedness is what makes Local sends non-blocking.
// The backing array is retained across drain cycles (head-index pops,
// reset to the front when empty) so steady-state push/pop does not
// allocate; its capacity is bounded by the largest backlog.
type mailbox struct {
	mu     chan struct{} // 1-token semaphore guarding q (select-friendly)
	notify chan struct{} // 1-buffered wakeup
	q      []Frame
	head   int
	limit  int // max undelivered frames; 0 = unbounded
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{
		mu:     make(chan struct{}, 1),
		notify: make(chan struct{}, 1),
	}
	m.mu <- struct{}{}
	return m
}

// newMailboxLimited returns a mailbox whose push fails with ErrBacklog
// once limit frames are queued undelivered. The in-process group
// transports use this to bound queue growth behind a stuck consumer;
// TCP keeps unbounded mailboxes because its reader goroutines must
// never stall the peer's kernel buffers.
func newMailboxLimited(limit int) *mailbox {
	m := newMailbox()
	m.limit = limit
	return m
}

func (m *mailbox) lock()   { <-m.mu }
func (m *mailbox) unlock() { m.mu <- struct{}{} }

func (m *mailbox) push(f Frame) error {
	m.lock()
	if m.closed {
		m.unlock()
		return ErrClosed
	}
	if m.limit > 0 && len(m.q)-m.head >= m.limit {
		m.unlock()
		return ErrBacklog
	}
	m.q = append(m.q, f)
	m.unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
	return nil
}

// pop removes the head frame. If block is false and the queue is empty it
// returns ok=false immediately.
func (m *mailbox) pop(block bool) (Frame, bool, error) {
	for {
		m.lock()
		if m.head < len(m.q) {
			f := m.q[m.head]
			m.q[m.head] = Frame{} // drop the data reference
			m.head++
			if m.head == len(m.q) {
				m.q = m.q[:0]
				m.head = 0
			}
			m.unlock()
			return f, true, nil
		}
		closed := m.closed
		m.unlock()
		if closed {
			return Frame{}, false, ErrClosed
		}
		if !block {
			return Frame{}, false, nil
		}
		<-m.notify
	}
}

func (m *mailbox) close() {
	m.lock()
	m.closed = true
	m.unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
