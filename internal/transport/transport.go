// Package transport provides the point-to-point message substrate the
// communicator (internal/comm) is built on — the role MPI plays in the
// paper. Two implementations are provided:
//
//   - Local: ranks are goroutines in one process, connected by unbounded
//     mailboxes. Deterministic-ish, cheap, and deadlock-free by
//     construction: a send never blocks, so the circular-wait scenario
//     the paper's Section 3.5.2 guards against cannot wedge the runtime
//     (the buffering *policy* is still implemented faithfully in
//     internal/comm, where its effect on message counts is measured).
//   - TCP: ranks are separate OS processes in a full mesh of TCP
//     connections with length-prefixed frames — genuine distributed
//     memory. Per-connection reader goroutines pump frames into the same
//     unbounded mailbox, so a slow consumer never stalls a sender's
//     kernel buffers indefinitely.
//
// A Transport moves opaque frames; message semantics live in
// internal/msg, batching policy in internal/comm.
package transport

import "errors"

// Frame is one received transport frame.
type Frame struct {
	From int
	Data []byte
}

// ErrClosed is returned by Recv after Close, and by Send on a closed
// transport.
var ErrClosed = errors.New("transport: closed")

// Transport is a reliable, per-pair-ordered frame transport among P ranks.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank to. The callee takes ownership of data.
	// Send never blocks indefinitely on an unconsumed receiver.
	Send(to int, data []byte) error
	// Recv blocks until a frame arrives or the transport is closed.
	Recv() (Frame, error)
	// TryRecv returns a frame if one is immediately available.
	TryRecv() (Frame, bool, error)
	// Close shuts the endpoint down; blocked Recv calls return ErrClosed.
	Close() error
}

// mailbox is an unbounded MPSC queue with blocking and non-blocking pop.
// Senders append under the lock; the single consumer (the rank's engine
// loop) pops. Unboundedness is what makes Local sends non-blocking.
// The backing array is retained across drain cycles (head-index pops,
// reset to the front when empty) so steady-state push/pop does not
// allocate; its capacity is bounded by the largest backlog.
type mailbox struct {
	mu     chan struct{} // 1-token semaphore guarding q (select-friendly)
	notify chan struct{} // 1-buffered wakeup
	q      []Frame
	head   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{
		mu:     make(chan struct{}, 1),
		notify: make(chan struct{}, 1),
	}
	m.mu <- struct{}{}
	return m
}

func (m *mailbox) lock()   { <-m.mu }
func (m *mailbox) unlock() { m.mu <- struct{}{} }

func (m *mailbox) push(f Frame) error {
	m.lock()
	if m.closed {
		m.unlock()
		return ErrClosed
	}
	m.q = append(m.q, f)
	m.unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
	return nil
}

// pop removes the head frame. If block is false and the queue is empty it
// returns ok=false immediately.
func (m *mailbox) pop(block bool) (Frame, bool, error) {
	for {
		m.lock()
		if m.head < len(m.q) {
			f := m.q[m.head]
			m.q[m.head] = Frame{} // drop the data reference
			m.head++
			if m.head == len(m.q) {
				m.q = m.q[:0]
				m.head = 0
			}
			m.unlock()
			return f, true, nil
		}
		closed := m.closed
		m.unlock()
		if closed {
			return Frame{}, false, ErrClosed
		}
		if !block {
			return Frame{}, false, nil
		}
		<-m.notify
	}
}

func (m *mailbox) close() {
	m.lock()
	m.closed = true
	m.unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
