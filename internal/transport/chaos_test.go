package transport

import (
	"errors"
	"testing"
	"time"
)

var _ Transport = (*Chaos)(nil)

// chaosPair wraps a 2-rank local group with chaos on endpoint 0.
func chaosPair(t *testing.T, cfg ChaosConfig) (*Chaos, Transport) {
	t.Helper()
	g, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	return NewChaos(g.Endpoint(0), cfg), g.Endpoint(1)
}

// seqFrame leases a pooled frame carrying a 2-byte sequence number, the
// ownership discipline real senders follow (drops release to the pool).
func seqFrame(i int) []byte {
	b := LeaseFrame(2)
	return append(b, byte(i), byte(i>>8))
}

func seqOf(f Frame) int { return int(f.Data[0]) | int(f.Data[1])<<8 }

func TestChaosDropAccounting(t *testing.T) {
	c, b := chaosPair(t, ChaosConfig{Seed: 1, DropProb: 0.5})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Send(1, seqFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil { // drains the delay lines
		t.Fatal(err)
	}
	dropped := c.Dropped()
	if dropped == 0 || dropped == n {
		t.Fatalf("dropped %d of %d frames with p=0.5", dropped, n)
	}
	// Exactly the non-dropped frames arrive, in FIFO order.
	prev := -1
	for i := int64(0); i < n-dropped; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if s := seqOf(f); s <= prev {
			t.Fatalf("order violated: %d after %d", s, prev)
		} else {
			prev = s
		}
	}
	if _, ok, _ := b.TryRecv(); ok {
		t.Fatal("more frames delivered than sent minus dropped")
	}
}

func TestChaosDuplicate(t *testing.T) {
	c, b := chaosPair(t, ChaosConfig{Seed: 2, DupProb: 1})
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Send(1, seqFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Duplicated() != n {
		t.Fatalf("Duplicated = %d, want %d", c.Duplicated(), n)
	}
	// Each frame arrives twice, back to back (the duplicate is pushed
	// right behind the original on the same FIFO line).
	for i := 0; i < n; i++ {
		for copyIdx := 0; copyIdx < 2; copyIdx++ {
			f, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if seqOf(f) != i {
				t.Fatalf("expected copy %d of frame %d, got %d", copyIdx, i, seqOf(f))
			}
		}
	}
}

func TestChaosDelayPreservesOrder(t *testing.T) {
	c, b := chaosPair(t, ChaosConfig{Seed: 3, DelayProb: 0.7, MaxDelay: 2 * time.Millisecond})
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Send(1, seqFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seqOf(f) != i {
			t.Fatalf("frame %d arrived as %d — delay broke FIFO order", i, seqOf(f))
		}
	}
	if c.Delayed() == 0 {
		t.Fatal("no frames were delayed with p=0.7")
	}
	c.Close()
}

func TestChaosKill(t *testing.T) {
	c, b := chaosPair(t, ChaosConfig{Seed: 4, KillAfterSends: 5})
	var killErr error
	for i := 0; i < 10; i++ {
		if err := c.Send(1, seqFrame(i)); err != nil {
			killErr = err
			break
		}
	}
	if !errors.Is(killErr, ErrChaosKilled) {
		t.Fatalf("send after kill budget = %v, want ErrChaosKilled", killErr)
	}
	// The killed endpoint behaves like a crashed process: its own Recv
	// errors too (after any already-queued frames drain).
	deadline := time.After(5 * time.Second)
	for {
		done := make(chan error, 1)
		go func() {
			_, err := c.Recv()
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				continue // draining pre-kill frames
			}
			if !errors.Is(err, ErrChaosKilled) {
				t.Fatalf("Recv after kill = %v, want ErrChaosKilled", err)
			}
		case <-deadline:
			t.Fatal("Recv did not observe the kill")
		}
		break
	}
	// The peer's sends to the dead rank fail instead of vanishing.
	waitFor := time.Now().Add(5 * time.Second)
	for {
		if err := b.Send(0, []byte("x")); err != nil {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatal("peer sends to the killed rank keep succeeding")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close() // idempotent after kill
	b.Close()
}

func TestChaosPassthrough(t *testing.T) {
	// Zero config injects nothing: plain reliable FIFO delivery.
	c, b := chaosPair(t, ChaosConfig{})
	if c.Rank() != 0 || c.Size() != 2 {
		t.Fatalf("Rank/Size = %d/%d", c.Rank(), c.Size())
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Send(1, seqFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seqOf(f) != i {
			t.Fatalf("frame %d arrived as %d", i, seqOf(f))
		}
	}
	if c.Dropped()+c.Duplicated()+c.Delayed() != 0 {
		t.Fatal("zero config injected faults")
	}
	if err := c.Send(7, nil); err == nil {
		t.Fatal("send to rank 7 accepted")
	}
	c.Close()
	b.Close()
}
