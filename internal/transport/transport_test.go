package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// meshTest exercises a generic Transport mesh built by mk.
func meshTest(t *testing.T, p int, mk func(t *testing.T, p int) []Transport) {
	t.Helper()
	eps := mk(t, p)
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()

	for i, e := range eps {
		if e.Rank() != i || e.Size() != p {
			t.Fatalf("endpoint %d: Rank=%d Size=%d", i, e.Rank(), e.Size())
		}
	}

	// Every rank sends a tagged frame to every other rank; everyone must
	// receive exactly p-1 frames with correct provenance.
	var wg sync.WaitGroup
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := eps[r]
			for to := 0; to < p; to++ {
				if to == r {
					continue
				}
				data := []byte(fmt.Sprintf("from %d to %d", r, to))
				if err := e.Send(to, data); err != nil {
					errs <- fmt.Errorf("rank %d send: %w", r, err)
					return
				}
			}
			for i := 0; i < p-1; i++ {
				f, err := e.Recv()
				if err != nil {
					errs <- fmt.Errorf("rank %d recv: %w", r, err)
					return
				}
				want := fmt.Sprintf("from %d to %d", f.From, r)
				if string(f.Data) != want {
					errs <- fmt.Errorf("rank %d got %q, want %q", r, f.Data, want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func mkLocal(t *testing.T, p int) []Transport {
	t.Helper()
	g, err := NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]Transport, p)
	for i := range eps {
		eps[i] = g.Endpoint(i)
	}
	return eps
}

func mkTCP(t *testing.T, p int) []Transport {
	t.Helper()
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 42300+testPortBase+i)
	}
	testPortBase += p + 2
	eps := make([]Transport, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tt, err := NewTCP(i, addrs)
			if err != nil {
				errs[i] = err
				return
			}
			eps[i] = tt
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

var testPortBase int

func TestLocalMesh(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		meshTest(t, p, mkLocal)
	}
}

func TestTCPMesh(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		meshTest(t, p, mkTCP)
	}
}

func TestLocalOrderingPerPair(t *testing.T) {
	g, _ := NewLocalGroup(2)
	a, b := g.Endpoint(0), g.Endpoint(1)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(f.Data[0]) | int(f.Data[1])<<8; got != i {
			t.Fatalf("frame %d arrived as %d", i, got)
		}
	}
}

func TestTCPOrderingPerPair(t *testing.T) {
	eps := mkTCP(t, 2)
	defer eps[0].Close()
	defer eps[1].Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := eps[0].Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(f.Data[0]) | int(f.Data[1])<<8; got != i {
			t.Fatalf("frame %d arrived as %d", i, got)
		}
	}
}

func TestTryRecv(t *testing.T) {
	g, _ := NewLocalGroup(2)
	a, b := g.Endpoint(0), g.Endpoint(1)
	if _, ok, err := b.TryRecv(); ok || err != nil {
		t.Fatalf("TryRecv on empty: ok=%v err=%v", ok, err)
	}
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, ok, err := b.TryRecv()
	if !ok || err != nil || string(f.Data) != "x" {
		t.Fatalf("TryRecv after send: %v %v %v", f, ok, err)
	}
}

func TestRecvAfterCloseDrainsThenErrors(t *testing.T) {
	g, _ := NewLocalGroup(2)
	a, b := g.Endpoint(0), g.Endpoint(1)
	a.Send(1, []byte("pending"))
	b.Close()
	// Queued frame still delivered.
	f, err := b.Recv()
	if err != nil || string(f.Data) != "pending" {
		t.Fatalf("drain after close: %v %v", f, err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("Recv after drain = %v, want ErrClosed", err)
	}
	if err := a.Send(1, []byte("late")); err != ErrClosed {
		t.Fatalf("Send to closed = %v, want ErrClosed", err)
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	g, _ := NewLocalGroup(1)
	e := g.Endpoint(0)
	done := make(chan error, 1)
	go func() {
		_, err := e.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestSendInvalidRank(t *testing.T) {
	g, _ := NewLocalGroup(2)
	e := g.Endpoint(0)
	if err := e.Send(2, nil); err == nil {
		t.Error("send to rank 2 accepted")
	}
	if err := e.Send(-1, nil); err == nil {
		t.Error("send to rank -1 accepted")
	}
}

func TestLocalGroupErrors(t *testing.T) {
	if _, err := NewLocalGroup(0); err == nil {
		t.Error("group size 0 accepted")
	}
	g, _ := NewLocalGroup(2)
	defer func() {
		if recover() == nil {
			t.Error("Endpoint(5) did not panic")
		}
	}()
	g.Endpoint(5)
}

func TestTCPBadArgs(t *testing.T) {
	if _, err := NewTCP(0, nil); err == nil {
		t.Error("empty addrs accepted")
	}
	if _, err := NewTCP(3, []string{"a", "b"}); err == nil {
		t.Error("rank out of range accepted")
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps := mkTCP(t, 2)
	defer eps[0].Close()
	defer eps[1].Close()
	if err := eps[0].Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	f, err := eps[0].Recv()
	if err != nil || string(f.Data) != "self" || f.From != 0 {
		t.Fatalf("self send: %v %v", f, err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	eps := mkTCP(t, 2)
	eps[1].Close()
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
}

// Heavy concurrent fan-in: many frames from both peers to one receiver,
// checking nothing is lost under contention.
func TestLocalFanInStress(t *testing.T) {
	const p = 4
	const per = 5000
	g, _ := NewLocalGroup(p)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := g.Endpoint(r)
			for i := 0; i < per; i++ {
				if err := e.Send(0, []byte{byte(r)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	recv := g.Endpoint(0)
	counts := make([]int, p)
	for i := 0; i < (p-1)*per; i++ {
		f, err := recv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[f.From]++
	}
	wg.Wait()
	for r := 1; r < p; r++ {
		if counts[r] != per {
			t.Fatalf("rank %d delivered %d frames, want %d", r, counts[r], per)
		}
	}
}

func BenchmarkLocalSendRecv(b *testing.B) {
	g, _ := NewLocalGroup(2)
	a, c := g.Endpoint(0), g.Endpoint(1)
	payload := make([]byte, 28)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Send(1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
