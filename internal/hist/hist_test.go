package hist

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var h Int
	h.Add(5)
	if h.Count(5) != 1 || h.Total() != 1 {
		t.Fatalf("zero value broken: count=%d total=%d", h.Count(5), h.Total())
	}
}

func TestAddAndCounts(t *testing.T) {
	h := NewInt()
	for _, v := range []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5} {
		h.Add(v)
	}
	if h.Total() != 11 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(5) != 3 || h.Count(1) != 2 || h.Count(7) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Distinct() != 7 {
		t.Fatalf("Distinct = %d", h.Distinct())
	}
	want := []int64{1, 2, 3, 4, 5, 6, 9}
	got := h.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v", got)
		}
	}
}

func TestMinMaxMean(t *testing.T) {
	h := NewInt()
	if _, ok := h.Min(); ok {
		t.Error("empty Min reported ok")
	}
	if _, ok := h.Max(); ok {
		t.Error("empty Max reported ok")
	}
	if h.Mean() != 0 {
		t.Error("empty Mean != 0")
	}
	h.AddN(2, 3)
	h.AddN(10, 1)
	min, _ := h.Min()
	max, _ := h.Max()
	if min != 2 || max != 10 {
		t.Fatalf("min/max = %d/%d", min, max)
	}
	if got := h.Mean(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	h := NewInt()
	for i := int64(0); i < 100; i++ {
		h.AddN(i%7, i+1)
	}
	_, probs := h.PMF()
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestCCDF(t *testing.T) {
	h := NewInt()
	h.AddN(1, 5)
	h.AddN(2, 3)
	h.AddN(4, 2)
	values, ccdf := h.CCDF()
	wantV := []int64{1, 2, 4}
	wantC := []float64{1.0, 0.5, 0.2}
	for i := range wantV {
		if values[i] != wantV[i] || math.Abs(ccdf[i]-wantC[i]) > 1e-12 {
			t.Fatalf("CCDF = %v %v", values, ccdf)
		}
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewInt()
		for _, v := range raw {
			h.Add(int64(v))
		}
		if h.Total() == 0 {
			return true
		}
		_, ccdf := h.CCDF()
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i] > ccdf[i-1] {
				return false
			}
		}
		return len(ccdf) == 0 || ccdf[0] == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	h := NewInt()
	in := []int64{5, 3, 3, 8, 8, 8}
	for _, v := range in {
		h.Add(v)
	}
	got := h.Samples()
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	if len(got) != len(in) {
		t.Fatalf("Samples = %v", got)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Samples = %v, want %v", got, in)
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewInt()
	b := NewInt()
	a.AddN(1, 2)
	a.AddN(3, 1)
	b.AddN(1, 1)
	b.AddN(7, 4)
	a.Merge(b)
	if a.Count(1) != 3 || a.Count(3) != 1 || a.Count(7) != 4 || a.Total() != 8 {
		t.Fatalf("merge wrong: %v", a.counts)
	}
	// b unchanged.
	if b.Total() != 5 {
		t.Fatal("merge mutated source")
	}
}

func TestWriteTSV(t *testing.T) {
	h := NewInt()
	h.AddN(2, 7)
	h.AddN(1, 3)
	var sb strings.Builder
	if err := h.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "1\t3\n2\t7\n" {
		t.Fatalf("TSV = %q", sb.String())
	}
}

func TestLogBinsCoverAllPositiveSamples(t *testing.T) {
	h := NewInt()
	total := int64(0)
	for v := int64(1); v <= 1000; v++ {
		h.AddN(v, v%5+1)
		total += v%5 + 1
	}
	h.AddN(0, 99) // non-positive values excluded from log bins
	bins := h.LogBins(2.0)
	var binned int64
	for i, b := range bins {
		if b.Lo >= b.Hi {
			t.Fatalf("bin %d empty range [%d,%d)", i, b.Lo, b.Hi)
		}
		if i > 0 && b.Lo < bins[i-1].Hi {
			t.Fatalf("bins overlap: %v", bins)
		}
		if b.Density <= 0 || b.Count <= 0 {
			t.Fatalf("empty bin retained: %+v", b)
		}
		binned += b.Count
	}
	if binned != total {
		t.Fatalf("binned %d of %d samples", binned, total)
	}
}

func TestLogBinsSingleValue(t *testing.T) {
	h := NewInt()
	h.AddN(17, 5)
	bins := h.LogBins(2.0)
	if len(bins) != 1 || bins[0].Count != 5 {
		t.Fatalf("bins = %+v", bins)
	}
	if bins[0].Lo > 17 || bins[0].Hi <= 17 {
		t.Fatalf("value outside its bin: %+v", bins[0])
	}
}

func TestLogBinsEmptyAndNonPositive(t *testing.T) {
	h := NewInt()
	if bins := h.LogBins(2); bins != nil {
		t.Fatalf("empty histogram bins = %v", bins)
	}
	h.AddN(0, 3)
	h.AddN(-2, 1)
	if bins := h.LogBins(2); bins != nil {
		t.Fatalf("non-positive-only bins = %v", bins)
	}
}

func TestLogBinsPanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogBins(1.0) did not panic")
		}
	}()
	NewInt().LogBins(1.0)
}

func TestLogBinsGeometricGrowth(t *testing.T) {
	h := NewInt()
	for v := int64(1); v <= 10000; v++ {
		h.Add(v)
	}
	bins := h.LogBins(2.0)
	// Widths should roughly double.
	for i := 2; i < len(bins); i++ {
		w0 := bins[i-1].Hi - bins[i-1].Lo
		w1 := bins[i].Hi - bins[i].Lo
		if w1 < w0 {
			t.Fatalf("bin widths not growing: %d then %d", w0, w1)
		}
	}
}
