// Package hist provides integer-valued histograms, complementary
// cumulative distributions and logarithmic binning. These are the tools
// used to reproduce the paper's Figure 4 (degree distribution in log-log
// scale) and to summarise per-processor load distributions (Figure 7).
package hist

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Int counts occurrences of non-negative int64 values. The zero value is
// ready to use.
type Int struct {
	counts map[int64]int64
	total  int64
}

// NewInt returns an empty histogram.
func NewInt() *Int {
	return &Int{counts: make(map[int64]int64)}
}

// Add increments the count of v by 1.
func (h *Int) Add(v int64) { h.AddN(v, 1) }

// AddN increments the count of v by n.
func (h *Int) AddN(v, n int64) {
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of occurrences of v.
func (h *Int) Count(v int64) int64 { return h.counts[v] }

// Total returns the number of samples added.
func (h *Int) Total() int64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *Int) Distinct() int { return len(h.counts) }

// Values returns the observed values in increasing order.
func (h *Int) Values() []int64 {
	vs := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Min returns the smallest observed value; ok is false if empty.
func (h *Int) Min() (v int64, ok bool) {
	first := true
	for x := range h.counts {
		if first || x < v {
			v = x
			first = false
		}
	}
	return v, !first
}

// Max returns the largest observed value; ok is false if empty.
func (h *Int) Max() (v int64, ok bool) {
	first := true
	for x := range h.counts {
		if first || x > v {
			v = x
			first = false
		}
	}
	return v, !first
}

// Mean returns the sample mean (0 if empty).
func (h *Int) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// PMF returns parallel slices (value, probability) in increasing value
// order: probability = count/total.
func (h *Int) PMF() (values []int64, probs []float64) {
	values = h.Values()
	probs = make([]float64, len(values))
	for i, v := range values {
		probs[i] = float64(h.counts[v]) / float64(h.total)
	}
	return values, probs
}

// CCDF returns parallel slices (value, Pr{X >= value}) in increasing value
// order.
func (h *Int) CCDF() (values []int64, ccdf []float64) {
	values = h.Values()
	ccdf = make([]float64, len(values))
	remaining := h.total
	for i, v := range values {
		ccdf[i] = float64(remaining) / float64(h.total)
		remaining -= h.counts[v]
	}
	return values, ccdf
}

// Samples expands the histogram back into a flat slice of samples (in
// increasing value order). Intended for handing to estimators that take
// raw samples; costs Total() memory.
func (h *Int) Samples() []int64 {
	out := make([]int64, 0, h.total)
	for _, v := range h.Values() {
		for i := int64(0); i < h.counts[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}

// Merge adds all counts from other into h.
func (h *Int) Merge(other *Int) {
	for v, c := range other.counts {
		h.AddN(v, c)
	}
}

// WriteTSV writes "value<TAB>count" lines in increasing value order.
func (h *Int) WriteTSV(w io.Writer) error {
	for _, v := range h.Values() {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", v, h.counts[v]); err != nil {
			return err
		}
	}
	return nil
}

// LogBin is one logarithmic bin: values in [Lo, Hi) with total Count and
// count density (count per unit value) Density, centred at Center
// (geometric mean of the bin edges).
type LogBin struct {
	Lo, Hi  int64
	Center  float64
	Count   int64
	Density float64
}

// LogBins groups the histogram into bins whose widths grow geometrically
// by factor base (> 1), starting at the smallest positive observed value.
// Log binning removes the noisy tail of raw log-log degree plots — it is
// the standard presentation for Figure-4-style plots.
func (h *Int) LogBins(base float64) []LogBin {
	if base <= 1 {
		panic("hist: LogBins base must be > 1")
	}
	var minPos int64 = -1
	maxV := int64(0)
	for v := range h.counts {
		if v > 0 && (minPos == -1 || v < minPos) {
			minPos = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minPos == -1 {
		return nil
	}
	var bins []LogBin
	lo := minPos
	loF := float64(minPos)
	for lo <= maxV {
		loF *= base
		hi := int64(math.Ceil(loF))
		if hi <= lo {
			hi = lo + 1
		}
		bins = append(bins, LogBin{Lo: lo, Hi: hi})
		lo = hi
	}
	for v, c := range h.counts {
		if v <= 0 {
			continue
		}
		idx := sort.Search(len(bins), func(i int) bool { return bins[i].Hi > v })
		bins[idx].Count += c
	}
	out := bins[:0]
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		width := float64(b.Hi - b.Lo)
		b.Center = math.Sqrt(float64(b.Lo) * float64(b.Hi-1))
		if b.Hi-1 == b.Lo {
			b.Center = float64(b.Lo)
		}
		b.Density = float64(b.Count) / width
		out = append(out, b)
	}
	return out
}
