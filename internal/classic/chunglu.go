package classic

import (
	"fmt"
	"math"
	"sort"

	"pagen/internal/graph"
	"pagen/internal/xrand"
)

// ChungLu generates a random graph with given expected degrees (the
// Chung–Lu model, paper reference [23], using the efficient algorithm of
// Miller & Hagberg): edge (i, j) appears independently with probability
// min(1, w_i w_j / S) where S = sum of weights. Runtime is O(n + m)
// expected, achieved by processing nodes in non-increasing weight order
// and geometric skipping within each row.
//
// The returned graph's node u corresponds to weights[u] (the internal
// sort is undone before returning).
func ChungLu(weights []float64, rng *xrand.Rand) (*graph.Graph, error) {
	n := int64(len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("classic: weight[%d] = %v invalid", i, w)
		}
		total += w
	}
	g := graph.New(n)
	if n < 2 || total == 0 {
		return g, nil
	}

	// Sort indices by weight, descending; work on the sorted view.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	w := make([]float64, n)
	for pos, idx := range order {
		w[pos] = weights[idx]
	}

	// Miller–Hagberg: for each row i, walk j > i with geometric skips
	// under the bounding probability q = min(1, w_i w_j / S) evaluated
	// at the current j (weights are non-increasing, so p is too); accept
	// each candidate with p/q where q is the probability the skip was
	// drawn under.
	for i := int64(0); i < n-1 && w[i] > 0; i++ {
		j := i + 1
		p := math.Min(1, w[i]*w[j]/total)
		for j < n && p > 0 {
			if p < 1 {
				skip := int64(math.Log(1-rng.Float64()) / math.Log1p(-p))
				j += skip
			}
			if j >= n {
				break
			}
			q := math.Min(1, w[i]*w[j]/total)
			if rng.Float64() < q/p {
				g.AddEdge(j, i) // store higher index first, as elsewhere
			}
			p = q
			j++
		}
	}

	// Undo the sort: map positions back to original labels.
	inv := make([]int64, n)
	for pos, idx := range order {
		inv[pos] = int64(idx)
	}
	for k, e := range g.Edges {
		u, v := inv[e.U], inv[e.V]
		if u < v {
			u, v = v, u
		}
		g.Edges[k] = graph.Edge{U: u, V: v}
	}
	return g, nil
}

// PowerLawWeights returns n weights following w_i ~ (i+1)^{-1/(gamma-1)}
// scaled to the given mean — the standard recipe for a Chung–Lu graph
// with a power-law expected-degree sequence of exponent gamma.
func PowerLawWeights(n int64, gamma, mean float64) []float64 {
	if n <= 0 {
		return nil
	}
	exp := -1 / (gamma - 1)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	scale := mean * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}
