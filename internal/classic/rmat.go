package classic

import (
	"fmt"

	"pagen/internal/graph"
	"pagen/internal/xrand"
)

// RMATParams are the quadrant probabilities of the recursive matrix
// model (R-MAT, paper reference [7]). They must be non-negative and sum
// to 1; a+d > b+c skews mass to the diagonal. The classic "Graph500"
// setting is a=0.57, b=0.19, c=0.19, d=0.05.
type RMATParams struct {
	A, B, C, D float64
	// Scale is log2 of the node count: n = 2^Scale.
	Scale int
	// EdgeFactor is edges per node: m = EdgeFactor * n.
	EdgeFactor int
}

// Validate checks the parameters.
func (p RMATParams) Validate() error {
	if p.Scale < 1 || p.Scale > 40 {
		return fmt.Errorf("classic: rmat scale %d outside [1,40]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("classic: rmat edge factor %d, want >= 1", p.EdgeFactor)
	}
	for _, v := range []float64{p.A, p.B, p.C, p.D} {
		if v < 0 {
			return fmt.Errorf("classic: rmat probability %v negative", v)
		}
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("classic: rmat probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Graph500 returns the standard Graph500 R-MAT parameterisation at the
// given scale and edge factor.
func Graph500(scale, edgeFactor int) RMATParams {
	return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: scale, EdgeFactor: edgeFactor}
}

// RMAT generates an R-MAT graph by dropping each edge through Scale
// recursive quadrant choices. Self-loops and duplicate edges are kept,
// as in the original model (use Graph.Validate-driven dedup externally
// if simple graphs are required); direction is canonicalised to the
// lower-triangular form used across this module.
func RMAT(p RMATParams, rng *xrand.Rand) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := int64(1) << uint(p.Scale)
	m := n * int64(p.EdgeFactor)
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, m)

	ab := p.A + p.B
	abc := ab + p.C
	for e := int64(0); e < m; e++ {
		var u, v int64
		for bit := p.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left: no bits set
			case r < ab:
				v |= 1 << uint(bit)
			case r < abc:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u < v {
			u, v = v, u
		}
		g.AddEdge(u, v)
	}
	return g, nil
}
