package classic

import (
	"math"
	"testing"

	"pagen/internal/stats"
	"pagen/internal/xrand"
)

func TestChungLuExpectedDegrees(t *testing.T) {
	// Uniform weights w: expected degree of every node is ~w^2*n/S = w.
	n := int64(4000)
	mean := 8.0
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = mean
	}
	g, err := ChungLu(weights, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	got := 2 * float64(g.M()) / float64(n)
	if math.Abs(got-mean) > 0.5 {
		t.Fatalf("mean degree %v, want ~%v", got, mean)
	}
}

func TestChungLuHeterogeneousWeights(t *testing.T) {
	// Per-node expected degree equals its weight (for small w_i w_j / S):
	// check the highest-weight node's degree tracks its weight.
	n := int64(20000)
	weights := PowerLawWeights(n, 2.5, 6)
	g, err := ChungLu(weights, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	// Node 0 has the largest weight.
	if float64(deg[0]) < weights[0]/3 || float64(deg[0]) > weights[0]*3 {
		t.Fatalf("hub degree %d far from expected %v", deg[0], weights[0])
	}
	// Overall mean degree ~6.
	got := 2 * float64(g.M()) / float64(n)
	if math.Abs(got-6) > 1.0 {
		t.Fatalf("mean degree %v, want ~6", got)
	}
	// Power-law weights give a heavy-tailed degree sequence.
	fit, err := stats.PowerLawMLE(deg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Gamma < 2.0 || fit.Gamma > 3.2 {
		t.Fatalf("gamma %v, want ~2.5", fit.Gamma)
	}
}

func TestChungLuEdgeCases(t *testing.T) {
	g, err := ChungLu(nil, xrand.New(3))
	if err != nil || g.M() != 0 {
		t.Fatalf("empty: %v %d", err, g.M())
	}
	g, err = ChungLu([]float64{0, 0, 0}, xrand.New(3))
	if err != nil || g.M() != 0 {
		t.Fatalf("zero weights: %v %d", err, g.M())
	}
	if _, err := ChungLu([]float64{1, -2}, xrand.New(3)); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := ChungLu([]float64{1, math.NaN()}, xrand.New(3)); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := ChungLu([]float64{1, math.Inf(1)}, xrand.New(3)); err == nil {
		t.Error("Inf weight accepted")
	}
}

func TestChungLuLabelsPreserved(t *testing.T) {
	// With one dominant weight at a non-zero index, that node must be
	// the hub in the returned labelling (sort must be undone).
	weights := []float64{1, 1, 1, 1, 1, 1, 1, 200, 1, 1}
	// Clamp: w_i w_j / S can exceed 1 for the hub; fine for the test.
	g, err := ChungLu(weights, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	hub := 0
	for i, d := range deg {
		if d > deg[hub] {
			hub = i
		}
	}
	if hub != 7 {
		t.Fatalf("hub at %d, want 7 (degrees %v)", hub, deg)
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(1000, 2.5, 8)
	if len(w) != 1000 {
		t.Fatalf("len %d", len(w))
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d = %v", i, v)
		}
		if i > 0 && v > w[i-1] {
			t.Fatal("weights not non-increasing")
		}
		sum += v
	}
	if math.Abs(sum/1000-8) > 1e-9 {
		t.Fatalf("mean weight %v, want 8", sum/1000)
	}
	if PowerLawWeights(0, 2.5, 8) != nil {
		t.Fatal("n=0 weights not nil")
	}
}

func TestRMATCounts(t *testing.T) {
	p := Graph500(10, 8) // n=1024, m=8192
	g, err := RMAT(p, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 || g.M() != 8192 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	for _, e := range g.Edges {
		if e.U < e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		if e.U >= g.N || e.V < 0 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// Graph500 parameters concentrate edges on low-index nodes: the
	// first 1/8 of nodes must carry well over 1/8 of the endpoints.
	p := Graph500(12, 16)
	g, err := RMAT(p, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	cut := g.N / 8
	var head, total int64
	for i, d := range deg {
		if int64(i) < cut {
			head += d
		}
		total += d
	}
	if float64(head) < 0.3*float64(total) {
		t.Fatalf("head mass %d of %d — R-MAT skew missing", head, total)
	}
	// Uniform parameters (a=b=c=d) produce no skew.
	uniform := RMATParams{A: 0.25, B: 0.25, C: 0.25, D: 0.25, Scale: 12, EdgeFactor: 16}
	gu, err := RMAT(uniform, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	degU := gu.Degrees()
	var headU, totalU int64
	for i, d := range degU {
		if int64(i) < cut {
			headU += d
		}
		totalU += d
	}
	if frac := float64(headU) / float64(totalU); frac < 0.10 || frac > 0.16 {
		t.Fatalf("uniform R-MAT head mass %v, want ~1/8", frac)
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATParams{
		{A: 0.5, B: 0.5, C: 0.5, D: 0.5, Scale: 5, EdgeFactor: 4}, // sum 2
		{A: 1, Scale: 0, EdgeFactor: 4},                           // scale
		{A: 1, Scale: 5, EdgeFactor: 0},                           // edge factor
		{A: -0.5, B: 0.5, C: 0.5, D: 0.5, Scale: 5, EdgeFactor: 4},
	}
	for _, p := range bad {
		if _, err := RMAT(p, xrand.New(1)); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func BenchmarkChungLu(b *testing.B) {
	weights := PowerLawWeights(100000, 2.5, 8)
	for i := 0; i < b.N; i++ {
		if _, err := ChungLu(weights, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMAT(b *testing.B) {
	p := Graph500(17, 8)
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(p, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
