package classic

import (
	"math"
	"testing"
	"testing/quick"

	"pagen/internal/graph"
	"pagen/internal/xrand"
)

func TestGNPEdgeCountMatchesExpectation(t *testing.T) {
	n := int64(2000)
	p := 0.01
	rng := xrand.New(1)
	g, err := GNP(n, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(n*(n-1)/2) * p
	got := float64(g.M())
	// Binomial std ~ sqrt(expected); allow 5 sigma.
	if math.Abs(got-expected) > 5*math.Sqrt(expected) {
		t.Fatalf("m = %v, expected ~%v", got, expected)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := xrand.New(2)
	g, err := GNP(100, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("p=0: %v m=%d", err, g.M())
	}
	g, err = GNP(50, 1, rng)
	if err != nil || g.M() != 50*49/2 {
		t.Fatalf("p=1: %v m=%d", err, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err = GNP(0, 0.5, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("n=0: %v m=%d", err, g.M())
	}
	g, err = GNP(1, 0.5, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("n=1: %v m=%d", err, g.M())
	}
}

func TestGNPRejectsBadArgs(t *testing.T) {
	rng := xrand.New(3)
	if _, err := GNP(-1, 0.5, rng); err == nil {
		t.Error("n=-1 accepted")
	}
	if _, err := GNP(10, -0.1, rng); err == nil {
		t.Error("p=-0.1 accepted")
	}
	if _, err := GNP(10, 1.1, rng); err == nil {
		t.Error("p=1.1 accepted")
	}
}

func TestGNPDegreeDistributionBinomial(t *testing.T) {
	// Mean degree of G(n,p) is (n-1)p; spot-check.
	n := int64(5000)
	p := 0.004
	g, err := GNP(n, p, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	mean := 2 * float64(g.M()) / float64(n)
	want := float64(n-1) * p
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("mean degree %v, want ~%v", mean, want)
	}
}

func TestPosToPair(t *testing.T) {
	// Enumerate the first rows explicitly.
	wantPairs := [][2]int64{{1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1}, {3, 2}, {4, 0}}
	for pos, want := range wantPairs {
		v, w := posToPair(int64(pos))
		if v != want[0] || w != want[1] {
			t.Fatalf("posToPair(%d) = (%d,%d), want %v", pos, v, w, want)
		}
	}
}

// Property: posToPair is the inverse of pair-to-position for random
// positions, including very large ones.
func TestPosToPairProperty(t *testing.T) {
	f := func(raw uint64) bool {
		pos := int64(raw % (1 << 45))
		v, w := posToPair(pos)
		return w >= 0 && w < v && v*(v-1)/2+w == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGNPEdgeRangeTilesFullRun(t *testing.T) {
	// The union of disjoint ranges with per-range streams has the same
	// distribution as a full run; and with the SAME stream positions it
	// must reproduce a single-range run exactly.
	n := int64(300)
	p := 0.05
	total := n * (n - 1) / 2
	rng := xrand.New(9)
	full := GNPEdgeRange(n, p, 0, total, rng)
	for _, e := range full {
		if e.V >= e.U || e.U >= n {
			t.Fatalf("bad edge %v", e)
		}
	}
	// Positions strictly increase, so no duplicates.
	g := graph.Merge(n, full)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGNPEdgeRangeEmpty(t *testing.T) {
	if edges := GNPEdgeRange(100, 0.5, 10, 10, xrand.New(1)); edges != nil {
		t.Fatalf("empty range produced %v", edges)
	}
	if edges := GNPEdgeRange(100, 0, 0, 100, xrand.New(1)); edges != nil {
		t.Fatalf("p=0 produced %v", edges)
	}
}

func TestGNPEdgeRangeFullP(t *testing.T) {
	edges := GNPEdgeRange(10, 1, 3, 7, xrand.New(1))
	if len(edges) != 4 {
		t.Fatalf("%d edges, want 4", len(edges))
	}
}

func TestParallelGNPMatchesExpectation(t *testing.T) {
	n := int64(3000)
	p := 0.005
	g, err := ParallelGNP(n, p, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := float64(n*(n-1)/2) * p
	if math.Abs(float64(g.M())-expected) > 5*math.Sqrt(expected) {
		t.Fatalf("m = %d, expected ~%v", g.M(), expected)
	}
}

func TestParallelGNPDeterministicPerConfig(t *testing.T) {
	a, err := ParallelGNP(500, 0.02, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelGNP(500, 0.02, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestParallelGNPErrors(t *testing.T) {
	if _, err := ParallelGNP(100, 0.5, 0, 1); err == nil {
		t.Error("ranks=0 accepted")
	}
	if _, err := ParallelGNP(-5, 0.5, 2, 1); err == nil {
		t.Error("n=-5 accepted")
	}
	if _, err := ParallelGNP(10, 2, 2, 1); err == nil {
		t.Error("p=2 accepted")
	}
}

func TestSmallWorldLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every node has degree exactly 2k.
	g, err := SmallWorld(100, 3, 0, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 300 {
		t.Fatalf("m = %d, want 300", g.M())
	}
	for u, d := range g.Degrees() {
		if d != 6 {
			t.Fatalf("node %d degree %d, want 6", u, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldRewired(t *testing.T) {
	g, err := SmallWorld(2000, 2, 0.1, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4000 {
		t.Fatalf("m = %d (rewiring must preserve edge count)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Some edges must now be long-range.
	long := 0
	for _, e := range g.Edges {
		d := e.U - e.V
		if d < 0 {
			d = -d
		}
		if d > 2 && d < 1998 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no long-range edges after rewiring")
	}
	// Roughly beta fraction rewired.
	frac := float64(long) / 4000
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("rewired fraction %v, want ~0.1", frac)
	}
}

func TestSmallWorldFullRewire(t *testing.T) {
	g, err := SmallWorld(500, 2, 1.0, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1000 {
		t.Fatalf("m = %d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldShortensPaths(t *testing.T) {
	// The small-world effect: a little rewiring collapses the average
	// path length of the ring lattice. Compare BFS eccentricity from
	// node 0 on beta=0 vs beta=0.1.
	avgDist := func(beta float64) float64 {
		g, err := SmallWorld(1000, 2, beta, xrand.New(23))
		if err != nil {
			t.Fatal(err)
		}
		csr := g.ToCSR()
		dist := make([]int64, g.N)
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		queue := []int64{0}
		var sum, cnt float64
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			sum += float64(dist[u])
			cnt++
			for _, v := range csr.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return sum / cnt
	}
	lattice := avgDist(0)
	rewired := avgDist(0.1)
	if rewired >= lattice/2 {
		t.Fatalf("rewiring did not shorten paths: %v -> %v", lattice, rewired)
	}
}

func TestSmallWorldErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := SmallWorld(4, 2, 0.1, rng); err == nil {
		t.Error("n <= 2k accepted")
	}
	if _, err := SmallWorld(100, 0, 0.1, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SmallWorld(100, 2, -0.1, rng); err == nil {
		t.Error("beta=-0.1 accepted")
	}
	if _, err := SmallWorld(100, 2, 1.1, rng); err == nil {
		t.Error("beta=1.1 accepted")
	}
}

func BenchmarkGNP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GNP(100000, 0.0002, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelGNP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParallelGNP(100000, 0.0002, 8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSmallWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SmallWorld(100000, 2, 0.1, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
