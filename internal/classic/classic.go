// Package classic implements the other random-graph generators the paper
// situates itself against: the Erdős–Rényi model with the
// geometric-skipping algorithm of Batagelj & Brandes (reference [5]; the
// model whose parallelisation [24] the introduction contrasts with the
// much harder PA problem), its embarrassingly-parallel version (the
// "other classes of random networks" the conclusion names as future
// work), and the Watts–Strogatz small-world model (reference [27]).
//
// These live beside the PA generator so that downstream users get the
// standard trio of random-graph models behind one module, and so the
// benchmark suite can demonstrate *why* PA was the hard case: ER has no
// cross-edge dependencies at all.
package classic

import (
	"fmt"
	"math"
	"sync"

	"pagen/internal/graph"
	"pagen/internal/xrand"
)

// GNP generates an Erdős–Rényi G(n, p) graph with the geometric-skipping
// algorithm of Batagelj & Brandes: instead of flipping a coin per
// potential edge (Theta(n^2)), skip lengths between present edges are
// drawn from the geometric distribution, giving O(n + m) expected time.
func GNP(n int64, p float64, rng *xrand.Rand) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("classic: n = %d, want >= 0", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("classic: p = %v outside [0,1]", p)
	}
	g := graph.New(n)
	if p == 0 || n < 2 {
		return g, nil
	}
	if p == 1 {
		for v := int64(1); v < n; v++ {
			for u := int64(0); u < v; u++ {
				g.AddEdge(v, u)
			}
		}
		return g, nil
	}
	// Walk the strictly-lower-triangular adjacency matrix in row-major
	// order, jumping geometric(p) positions between edges.
	logQ := math.Log1p(-p)
	v, w := int64(1), int64(-1)
	for v < n {
		skip := int64(math.Log(1-rng.Float64())/logQ) + 1
		w += skip
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			g.AddEdge(v, w)
		}
	}
	return g, nil
}

// GNPEdgeRange generates the edges of G(n, p) whose row-major
// lower-triangular positions fall in [lo, hi) — the unit of work of the
// parallel generator. Positions index pairs (v, w), w < v, ordered
// (1,0), (2,0), (2,1), (3,0), ...
func GNPEdgeRange(n int64, p float64, lo, hi int64, rng *xrand.Rand) []graph.Edge {
	if p <= 0 || lo >= hi {
		return nil
	}
	var edges []graph.Edge
	if p >= 1 {
		for pos := lo; pos < hi; pos++ {
			v, w := posToPair(pos)
			edges = append(edges, graph.Edge{U: v, V: w})
		}
		return edges
	}
	logQ := math.Log1p(-p)
	pos := lo - 1
	for {
		skip := int64(math.Log(1-rng.Float64())/logQ) + 1
		pos += skip
		if pos >= hi {
			return edges
		}
		v, w := posToPair(pos)
		edges = append(edges, graph.Edge{U: v, V: w})
	}
}

// posToPair inverts the row-major lower-triangular position: position
// pos corresponds to row v with v(v-1)/2 <= pos < v(v+1)/2 and column
// w = pos - v(v-1)/2.
func posToPair(pos int64) (v, w int64) {
	// v = floor((1 + sqrt(1 + 8 pos)) / 2); refine for float error.
	v = int64((1 + math.Sqrt(1+8*float64(pos))) / 2)
	for v*(v-1)/2 > pos {
		v--
	}
	for (v+1)*v/2 <= pos {
		v++
	}
	return v, pos - v*(v-1)/2
}

// ParallelGNP generates G(n, p) with ranks goroutines, each producing an
// equal slice of the edge-position space with an independent random
// stream. Unlike preferential attachment there are no dependencies, so
// no communication is needed — the contrast motivating the paper's whole
// protocol. The output is the concatenation of per-rank shards.
func ParallelGNP(n int64, p float64, ranks int, seed uint64) (*graph.Graph, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("classic: ranks = %d, want >= 1", ranks)
	}
	if n < 0 {
		return nil, fmt.Errorf("classic: n = %d, want >= 0", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("classic: p = %v outside [0,1]", p)
	}
	total := n * (n - 1) / 2
	shards := make([][]graph.Edge, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lo := total * int64(r) / int64(ranks)
			hi := total * int64(r+1) / int64(ranks)
			rng := xrand.NewStream(seed, uint64(r))
			shards[r] = GNPEdgeRange(n, p, lo, hi, rng)
		}(r)
	}
	wg.Wait()
	return graph.Merge(n, shards...), nil
}

// SmallWorld generates a Watts–Strogatz small-world graph: a ring
// lattice over n nodes where each node connects to its k nearest
// neighbours on each side (degree 2k), with every lattice edge rewired
// to a uniform random endpoint with probability beta. Self-loops and
// parallel edges are avoided by re-drawing, as in the original model.
func SmallWorld(n int64, k int, beta float64, rng *xrand.Rand) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("classic: k = %d, want >= 1", k)
	}
	if n < int64(2*k+1) {
		return nil, fmt.Errorf("classic: n = %d too small for k = %d (need > 2k)", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("classic: beta = %v outside [0,1]", beta)
	}
	g := graph.New(n)
	// adjacency for duplicate avoidance during rewiring
	adj := make([]map[int64]bool, n)
	for i := range adj {
		adj[i] = make(map[int64]bool, 2*k)
	}
	addEdge := func(u, v int64) {
		g.AddEdge(u, v)
		adj[u][v] = true
		adj[v][u] = true
	}
	for u := int64(0); u < n; u++ {
		for j := 1; j <= k; j++ {
			addEdge(u, (u+int64(j))%n)
		}
	}
	// Rewire pass: for each lattice edge (u, u+j), with probability beta
	// replace its far endpoint by a uniform random node.
	for i, e := range g.Edges {
		if !rng.Bool(beta) {
			continue
		}
		u := e.U
		// A node of full degree n-1 cannot be rewired anywhere new.
		if int64(len(adj[u])) >= n-1 {
			continue
		}
		var v int64
		for {
			v = rng.Int64n(n)
			if v != u && !adj[u][v] {
				break
			}
		}
		old := e.V
		delete(adj[u], old)
		delete(adj[old], u)
		adj[u][v] = true
		adj[v][u] = true
		g.Edges[i] = graph.Edge{U: u, V: v}
	}
	return g, nil
}
