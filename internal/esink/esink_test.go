package esink

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pagen/internal/graph"
	"pagen/internal/partition"
)

// testMeta builds a single-rank UCP meta where slot key k maps to node
// k/x directly, so expected U values are easy to compute in tests.
func testMeta(n int64, x int) Meta {
	return Meta{N: n, X: x, P: 0.5, Seed: 42, Rank: 0, Ranks: 1, Scheme: "UCP"}
}

// writeShard writes the given (key, v) records through a fresh writer
// with the given block size and closes it, returning the shard path.
func writeShard(t *testing.T, dir string, meta Meta, blockEdges int, recs []rec) string {
	t.Helper()
	w, err := Open(dir, meta, blockEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Emit(r.key, r.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ShardPath(dir, meta.Rank, meta.Ranks)
}

// readAll drains a shard through a strict reader, returning edges in
// iteration order.
func readAll(t *testing.T, path string, budget int) []graph.Edge {
	t.Helper()
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	it := r.Iter(budget)
	var out []graph.Edge
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundtripSorted(t *testing.T) {
	const n, x = 100, 2
	meta := testMeta(n, x)
	// Emit every slot key of the run in random order; reading back must
	// yield canonical (ascending-key) order regardless of block size.
	var recs []rec
	for k := int64(x * x); k < n*x; k++ { // post-bootstrap slots
		recs = append(recs, rec{key: uint64(k), v: k % 7})
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

	for _, blockEdges := range []int{3, 16, 1 << 16} {
		dir := t.TempDir()
		path := writeShard(t, dir, meta, blockEdges, recs)
		got := readAll(t, path, 1)
		if len(got) != len(recs) {
			t.Fatalf("blockEdges=%d: read %d edges, wrote %d", blockEdges, len(got), len(recs))
		}
		for i, e := range got {
			k := int64(x*x) + int64(i)
			want := graph.Edge{U: k / x, V: k % 7}
			if e != want {
				t.Fatalf("blockEdges=%d: edge %d = %+v, want %+v", blockEdges, i, e, want)
			}
		}
	}
}

func TestReaderDerivesUFromPartition(t *testing.T) {
	// A 4-rank LCP shard for rank 2: U must come from the partition, not
	// from any single-rank shortcut.
	const n, x, ranks, rank = 1000, 3, 4, 2
	meta := Meta{N: n, X: x, P: 0.5, Seed: 9, Rank: rank, Ranks: ranks, Scheme: "LCP"}
	part, err := partition.New(partition.KindLCP, n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	recs := []rec{{key: 5 * x, v: 1}, {key: 5*x + 1, v: 2}, {key: 17*x + 2, v: 3}}
	dir := t.TempDir()
	path := writeShard(t, dir, meta, 2, recs)
	got := readAll(t, path, 0)
	want := []graph.Edge{
		{U: part.NodeAt(rank, 5), V: 1},
		{U: part.NodeAt(rank, 5), V: 2},
		{U: part.NodeAt(rank, 17), V: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("read %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStrictRejectsMissingEOS(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(10, 1)
	w, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		if err := w.Emit(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Abort instead of Close: complete blocks, no EOS — a crashed run.
	w.Abort()
	path := ShardPath(dir, 0, 1)
	if _, err := OpenReader(path); err == nil {
		t.Fatal("strict open accepted a shard without an end-of-stream record")
	}
	r, err := OpenReaderTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Complete() {
		t.Fatal("tolerant reader reports complete without EOS")
	}
	if r.Edges() != 8 {
		t.Fatalf("tolerant reader sees %d edges, want 8", r.Edges())
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(100, 1)
	var recs []rec
	for k := uint64(0); k < 50; k++ {
		recs = append(recs, rec{key: k, v: int64(k)})
	}
	path := writeShard(t, dir, meta, 8, recs)

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop off the EOS record plus half of the final block: the reader
	// must fall back to the clean prefix (the first 5 full blocks).
	if err := os.Truncate(path, info.Size()-20); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); err == nil {
		t.Fatal("strict open accepted a torn shard")
	}
	r, err := OpenReaderTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Complete() {
		t.Fatal("torn shard reported complete")
	}
	if r.Edges() >= 50 || r.Edges()%8 != 0 {
		t.Fatalf("torn shard yields %d edges, want a complete-block multiple below 50", r.Edges())
	}
	it := r.Iter(0)
	for i := int64(0); i < r.Edges(); i++ {
		e, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended at edge %d of %d", i, r.Edges())
		}
		if e.U != i || e.V != i {
			t.Fatalf("edge %d = %+v", i, e)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded past the clean prefix")
	}
}

func TestCorruptBlockCRC(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(100, 1)
	var recs []rec
	for k := uint64(0); k < 32; k++ {
		recs = append(recs, rec{key: k, v: 3})
	}
	path := writeShard(t, dir, meta, 8, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last block's payload (the EOS record is the
	// trailing 7 bytes; the block's payload ends just before its 4-byte
	// CRC in front of that).
	raw[len(raw)-7-10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); err == nil {
		t.Fatal("strict open accepted a corrupted block")
	}
	r, err := OpenReaderTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Edges() != 24 {
		t.Fatalf("tolerant reader yields %d edges past corruption, want 24 (three clean blocks)", r.Edges())
	}
}

func TestRecoverToMark(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(1000, 1)
	w, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := w.Emit(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	mark, err := w.Cut() // flushes the partial third block too
	if err != nil {
		t.Fatal(err)
	}
	if mark.Edges != 10 || mark.Blocks != 3 {
		t.Fatalf("mark = %+v, want 10 edges / 3 blocks", mark)
	}
	// Post-cut writes that the "kill" loses half of: more edges, then a
	// torn tail simulated by appending garbage.
	for k := uint64(10); k < 17; k++ {
		if err := w.Emit(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	w.Abort()
	path := ShardPath(dir, 0, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{'B', 0x7f, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recover: the shard must come back to exactly the mark.
	w2, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Recover(mark); err != nil {
		t.Fatal(err)
	}
	// Resume the stream: re-emit the post-mark suffix, close cleanly.
	for k := uint64(10); k < 20; k++ {
		if err := w2.Emit(k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path, 0)
	if len(got) != 20 {
		t.Fatalf("recovered shard has %d edges, want 20", len(got))
	}
	for i, e := range got {
		if e.U != int64(i) || e.V != int64(i) {
			t.Fatalf("edge %d = %+v", i, e)
		}
	}
}

func TestRecoverRejectsMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(100, 1)
	w, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(0, 1); err != nil {
		t.Fatal(err)
	}
	mark, err := w.Cut()
	if err != nil {
		t.Fatal(err)
	}
	w.Abort()
	other := meta
	other.Seed = 43
	w2, err := Open(dir, other, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Recover(mark); err == nil {
		t.Fatal("Recover accepted a shard from a different run")
	}
	w2.Abort()
}

func TestRecoverRejectsShortShard(t *testing.T) {
	dir := t.TempDir()
	meta := testMeta(100, 1)
	w, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		if err := w.Emit(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	mark, err := w.Cut()
	if err != nil {
		t.Fatal(err)
	}
	w.Abort()
	// Truncate below the mark: the durable prefix the checkpoint named
	// is gone, so Recover must refuse (resume would drop edges).
	if err := os.Truncate(ShardPath(dir, 0, 1), mark.Offset-3); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Recover(mark); err == nil {
		t.Fatal("Recover accepted a shard shorter than its mark")
	}
	w2.Abort()
}

func TestDirReaderMergesRankMajor(t *testing.T) {
	const n, x, ranks = 40, 1, 2
	dir := t.TempDir()
	part, err := partition.New(partition.KindUCP, n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	var want []graph.Edge
	for r := 0; r < ranks; r++ {
		meta := Meta{N: n, X: x, P: 0, Seed: 7, Rank: r, Ranks: ranks, Scheme: "UCP"}
		var recs []rec
		for i := int64(0); i < 5; i++ {
			recs = append(recs, rec{key: uint64(i), v: int64(r*100) + i})
			want = append(want, graph.Edge{U: part.NodeAt(r, i), V: int64(r*100) + i})
		}
		writeShard(t, dir, meta, 2, recs)
	}
	d, err := OpenDir(dir, ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Edges() != int64(len(want)) {
		t.Fatalf("DirReader sees %d edges, want %d", d.Edges(), len(want))
	}
	it := d.Iter(0)
	for i, w := range want {
		e, ok := it.Next()
		if !ok {
			t.Fatalf("merged stream ended at edge %d", i)
		}
		if e != w {
			t.Fatalf("merged edge %d = %+v, want %+v", i, e, w)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("merged stream yielded extra edges")
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirRejectsMixedRuns(t *testing.T) {
	dir := t.TempDir()
	writeShard(t, dir, Meta{N: 10, X: 1, P: 0, Seed: 1, Rank: 0, Ranks: 2, Scheme: "UCP"}, 4, []rec{{0, 1}})
	writeShard(t, dir, Meta{N: 10, X: 1, P: 0, Seed: 2, Rank: 1, Ranks: 2, Scheme: "UCP"}, 4, []rec{{0, 1}})
	if _, err := OpenDir(dir, 2); err == nil {
		t.Fatal("OpenDir accepted shards with different seeds")
	}
}

func TestWriteBinaryStreamMatchesInMemory(t *testing.T) {
	// The streamed PAGB export must be byte-identical to WriteBinary on
	// the same edges.
	const n = 30
	dir := t.TempDir()
	meta := testMeta(n, 1)
	var recs []rec
	g := graph.New(n)
	for k := int64(1); k < n; k++ {
		v := k / 2
		recs = append(recs, rec{key: uint64(k), v: v})
		g.AddEdge(k, v)
	}
	path := writeShard(t, dir, meta, 4, recs)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var streamed, inMem bytes.Buffer
	if err := graph.WriteBinaryStream(&streamed, n, r.Edges(), r.Iter(0)); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&inMem, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), inMem.Bytes()) {
		t.Fatal("WriteBinaryStream output differs from WriteBinary")
	}
}

func TestShardPath(t *testing.T) {
	got := ShardPath("out", 3, 8)
	want := filepath.Join("out", "shard-3-of-8.pags")
	if got != want {
		t.Fatalf("ShardPath = %q, want %q", got, want)
	}
}
