// Package esink implements the streaming external-memory edge sink:
// per-rank shard files that hold a rank's resolved edges as sorted,
// delta-encoded, CRC-protected blocks, written with bounded memory no
// matter how large the run is (docs/SHARD_FORMAT.md is the byte spec).
//
// Workers emit edges as they resolve, tagged with the edge's canonical
// slot key (local node index times x plus edge index), which is unique
// per rank and defines the canonical per-rank order — the exact order
// the in-memory engine emits edges in. Emission order is nondeterministic
// under concurrency, so the writer buffers a fixed number of records,
// sorts each block by key at flush, and the reader k-way-merges the
// sorted blocks back into canonical order. Merging the per-rank streams
// rank-major therefore reproduces the in-memory merged graph byte for
// byte.
//
// The writer integrates with checkpoint/restart: Cut flushes the open
// block and fsyncs, returning a durable Mark (byte offset, block count,
// edge count) that internal/ckpt stores in the snapshot; Recover
// truncates a shard back to a Mark so a resumed run regenerates exactly
// the missing suffix, with no duplicated or dropped edges.
package esink

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// Magic opens every shard file.
	Magic = "PAGSHRD1"
	// Version is the shard format version; readers reject others.
	Version = 1
	// DefaultBlockEdges is the default number of edge records buffered
	// per block. At 16 bytes of buffer per record the open block costs
	// ~1 MiB per rank — the writer's whole memory footprint.
	DefaultBlockEdges = 1 << 16

	blockMarker = 'B'
	eosMarker   = 'E'
)

// castagnoli is the CRC-32C table (iSCSI polynomial) shared by writer
// and reader — the same polynomial the checkpoint format uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies the run a shard belongs to. Readers validate shards
// against each other (and Recover validates the file against the
// resuming run), because merging shards of different runs — or re-using
// a stale shard file — would silently corrupt the output graph.
type Meta struct {
	N     int64
	X     int
	P     float64
	Seed  uint64
	Rank  int
	Ranks int
	// Scheme is the partition scheme name; the reader rebuilds the
	// partition from it to re-derive each record's source node U from
	// the slot key (records store only key and V).
	Scheme string
}

// Mark is a durable position in a shard file: everything up to Offset
// is flushed and fsynced, comprising Blocks complete blocks holding
// Edges edge records. Checkpoint snapshots carry the rank's Mark; a
// resumed run truncates the shard back to it.
type Mark struct {
	Offset int64
	Blocks int64
	Edges  int64
}

// Stats are a writer's lifetime counters (the obs sink_* metrics).
type Stats struct {
	// Edges is the total records in the file, the recovered prefix
	// included. BlocksFlushed and BytesWritten count this process's own
	// writes; Fsyncs and FsyncNanos its durability stalls.
	Edges         int64
	BlocksFlushed int64
	BytesWritten  int64
	Fsyncs        int64
	FsyncNanos    int64
}

// ShardPath returns the shard filename for rank under dir in a run with
// the given total rank count.
func ShardPath(dir string, rank, ranks int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.pags", rank, ranks))
}

// rec is one buffered edge record. U is not stored: the reader derives
// it from the key via the partition (U = NodeAt(rank, key/x)).
type rec struct {
	key uint64
	v   int64
}

// Writer appends sorted, CRC-protected edge blocks to one rank's shard
// file. Emit is safe for concurrent use by the rank's workers; all
// other methods belong to the rank's coordinator goroutine. Exactly one
// of Reset or Recover must be called before the first Emit.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	meta Meta

	blockEdges int
	buf        []rec  // open block, unsorted
	enc        []byte // reused block encode buffer

	off     int64 // current end-of-file offset
	blocks  int64 // complete blocks in the file
	edges   int64 // records in complete blocks (open block excluded)
	started bool  // Reset or Recover ran
	closed  bool

	err   error
	stats Stats
}

// Open opens (creating if absent, never truncating) the shard file for
// meta.Rank under dir. The file is not written until Reset or Recover
// decides whether its existing contents survive.
func Open(dir string, meta Meta, blockEdges int) (*Writer, error) {
	if blockEdges <= 0 {
		blockEdges = DefaultBlockEdges
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("esink: %w", err)
	}
	path := ShardPath(dir, meta.Rank, meta.Ranks)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("esink: %w", err)
	}
	return &Writer{
		f:          f,
		meta:       meta,
		blockEdges: blockEdges,
		buf:        make([]rec, 0, blockEdges),
	}, nil
}

// Path returns the shard file's path.
func (w *Writer) Path() string { return w.f.Name() }

// encodeHeader renders the shard header (magic through CRC) into buf.
func encodeHeader(meta Meta) []byte {
	b := make([]byte, 0, 64+len(meta.Scheme))
	b = append(b, Magic...)
	b = binary.AppendUvarint(b, Version)
	b = binary.AppendUvarint(b, uint64(meta.N))
	b = binary.AppendUvarint(b, uint64(meta.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(meta.P))
	b = binary.LittleEndian.AppendUint64(b, meta.Seed)
	b = binary.AppendUvarint(b, uint64(meta.Rank))
	b = binary.AppendUvarint(b, uint64(meta.Ranks))
	b = binary.AppendUvarint(b, uint64(len(meta.Scheme)))
	b = append(b, meta.Scheme...)
	crc := crc32.Checksum(b, castagnoli)
	b = binary.LittleEndian.AppendUint32(b, crc)
	return b
}

// Reset truncates the shard to empty and writes a fresh header — the
// fresh-start path (stale files from an earlier run are discarded).
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return w.setErr(fmt.Errorf("esink: Reset after start"))
	}
	if err := w.f.Truncate(0); err != nil {
		return w.setErr(err)
	}
	hdr := encodeHeader(w.meta)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return w.setErr(err)
	}
	w.off = int64(len(hdr))
	w.stats.BytesWritten += int64(len(hdr))
	w.started = true
	return nil
}

// Recover validates the existing shard against mark — same run meta,
// and an intact, CRC-clean block chain landing exactly on mark.Offset
// with mark's block and edge counts — then truncates the file to
// mark.Offset, discarding blocks flushed after the checkpoint cut and
// any torn tail the kill left behind. The resumed run appends from
// there.
func (w *Writer) Recover(mark Mark) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return w.setErr(fmt.Errorf("esink: Recover after start"))
	}
	sc, err := scanShard(w.f, true)
	if err != nil {
		return w.setErr(fmt.Errorf("esink: recover %s: %w", w.f.Name(), err))
	}
	if sc.meta != w.meta {
		return w.setErr(fmt.Errorf("esink: recover %s: shard belongs to a different run (%+v, want %+v)", w.f.Name(), sc.meta, w.meta))
	}
	// Find the durable prefix the mark names. The chain scan stops at
	// the first torn block, which must lie at or beyond mark.Offset:
	// everything before the mark was fsynced at the cut.
	var blocks, edges int64
	off := sc.headerLen
	for _, b := range sc.blocks {
		if b.off >= mark.Offset {
			break
		}
		blocks++
		edges += b.count
		off = b.off + b.size
	}
	if off != mark.Offset || blocks != mark.Blocks || edges != mark.Edges {
		return w.setErr(fmt.Errorf("esink: recover %s: durable prefix is %d bytes / %d blocks / %d edges, checkpoint expects %d / %d / %d (shard damaged or from a different epoch sequence)",
			w.f.Name(), off, blocks, edges, mark.Offset, mark.Blocks, mark.Edges))
	}
	if err := w.f.Truncate(mark.Offset); err != nil {
		return w.setErr(err)
	}
	w.off = mark.Offset
	w.blocks = mark.Blocks
	w.edges = mark.Edges
	w.started = true
	return nil
}

// Emit appends one edge record (slot key, attachment value) to the open
// block, flushing it when full. Safe for concurrent use.
func (w *Writer) Emit(key uint64, v int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if !w.started {
		return w.setErr(fmt.Errorf("esink: Emit before Reset/Recover"))
	}
	w.buf = append(w.buf, rec{key: key, v: v})
	if len(w.buf) >= w.blockEdges {
		return w.flushLocked()
	}
	return nil
}

// flushLocked sorts and writes the open block. Caller holds w.mu.
func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	sort.Slice(w.buf, func(i, j int) bool { return w.buf[i].key < w.buf[j].key })

	// Payload: first record (key, v) absolute; rest (key delta >= 1, v).
	payload := w.enc[:0]
	prev := uint64(0)
	for i, r := range w.buf {
		if i == 0 {
			payload = binary.AppendUvarint(payload, r.key)
		} else {
			payload = binary.AppendUvarint(payload, r.key-prev)
		}
		prev = r.key
		payload = binary.AppendUvarint(payload, uint64(r.v))
	}

	blk := make([]byte, 0, len(payload)+32)
	blk = append(blk, blockMarker)
	blk = binary.AppendUvarint(blk, uint64(w.blocks))
	blk = binary.AppendUvarint(blk, uint64(len(w.buf)))
	blk = binary.AppendUvarint(blk, uint64(len(payload)))
	blk = append(blk, payload...)
	crc := crc32.Checksum(blk, castagnoli)
	blk = binary.LittleEndian.AppendUint32(blk, crc)

	if _, err := w.f.WriteAt(blk, w.off); err != nil {
		return w.setErr(err)
	}
	w.off += int64(len(blk))
	w.blocks++
	w.edges += int64(len(w.buf))
	w.stats.BlocksFlushed++
	w.stats.BytesWritten += int64(len(blk))
	w.enc = payload[:0]
	w.buf = w.buf[:0]
	return nil
}

// Cut flushes the open block and fsyncs, returning the durable Mark for
// a checkpoint snapshot. The engine calls it at a globally quiescent
// cut, so no Emit races it.
func (w *Writer) Cut() (Mark, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Mark{}, w.err
	}
	if err := w.flushLocked(); err != nil {
		return Mark{}, err
	}
	if err := w.syncLocked(); err != nil {
		return Mark{}, err
	}
	return Mark{Offset: w.off, Blocks: w.blocks, Edges: w.edges}, nil
}

// Mark flushes the open block (a page-cache write) and returns the
// shard mark at the complete-block boundary — Cut without the fsync.
// The engine's fast capture uses it at a quiescent cut and defers the
// fsync to its background writer (Sync), which must complete before a
// snapshot naming the mark is published.
func (w *Writer) Mark() (Mark, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Mark{}, w.err
	}
	if err := w.flushLocked(); err != nil {
		return Mark{}, err
	}
	return Mark{Offset: w.off, Blocks: w.blocks, Edges: w.edges}, nil
}

// Sync fsyncs the shard. Safe against concurrent Emit (the mutex orders
// them); syncing bytes emitted after a Mark is harmless — a mark only
// promises its prefix is durable, not that nothing follows it.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	t0 := time.Now()
	err := w.f.Sync()
	w.stats.Fsyncs++
	w.stats.FsyncNanos += time.Since(t0).Nanoseconds()
	if err != nil {
		return w.setErr(err)
	}
	return nil
}

// Close flushes the open block, writes the end-of-stream record, fsyncs
// and closes the file. Only a Closed shard is complete: readers in
// strict mode require the EOS record.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if err := w.flushLocked(); err != nil {
		w.f.Close()
		return err
	}
	eos := make([]byte, 0, 32)
	eos = append(eos, eosMarker)
	eos = binary.AppendUvarint(eos, uint64(w.edges))
	eos = binary.AppendUvarint(eos, uint64(w.blocks))
	crc := crc32.Checksum(eos, castagnoli)
	eos = binary.LittleEndian.AppendUint32(eos, crc)
	if _, err := w.f.WriteAt(eos, w.off); err != nil {
		w.f.Close()
		return w.setErr(err)
	}
	w.off += int64(len(eos))
	w.stats.BytesWritten += int64(len(eos))
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return w.setErr(err)
	}
	return nil
}

// Abort closes the file handle without writing the end-of-stream
// record, leaving whatever durable prefix exists for a later Recover.
// Used on engine failure paths.
func (w *Writer) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
}

// Stats returns the writer's lifetime counters. Edges reflects complete
// blocks only until Close flushes the open block.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Edges = w.edges
	return st
}

// Err returns the latched first error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Writer) setErr(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}
