package esink

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"pagen/internal/graph"
	"pagen/internal/partition"
)

// DefaultReadBudget is the default total buffer memory an iterator
// spreads across its per-block cursors.
const DefaultReadBudget = 32 << 20

// Per-cursor buffer clamp: with thousands of blocks the per-cursor
// share shrinks toward minCursorBuf; a shard with few blocks reads
// through larger buffers up to maxCursorBuf.
const (
	minCursorBuf = 4 << 10
	maxCursorBuf = 256 << 10
)

// blockInfo locates one complete block inside a shard file.
type blockInfo struct {
	off    int64 // block start (the marker byte)
	size   int64 // whole block including marker, header and CRC
	payOff int64 // payload start
	payLen int64
	count  int64 // records in the block
}

// scanResult is a shard file's parsed structure.
type scanResult struct {
	meta      Meta
	headerLen int64
	blocks    []blockInfo
	edges     int64
	complete  bool // EOS record present and consistent
}

// countReader tracks the byte offset of a buffered sequential read.
type countReader struct {
	r   *bufio.Reader
	off int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

func (c *countReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(c)
}

// scanShard parses a shard's header and walks its block chain front to
// back, verifying every block CRC. With tolerate set, a torn tail — a
// truncated or CRC-failing final region, the signature of a kill
// mid-flush — ends the scan at the last complete block instead of
// failing; a missing EOS record likewise just leaves complete false.
// Without tolerate, any damage (EOS included) is an error.
func scanShard(f *os.File, tolerate bool) (*scanResult, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	cr := &countReader{r: bufio.NewReaderSize(f, 1<<20)}

	// Header: magic, version, meta, CRC. Re-encoding the parsed meta
	// and comparing CRCs verifies the header without a second pass.
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("shard header: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	ver, err := cr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("shard header: %w", err)
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported shard version %d (reader supports %d)", ver, Version)
	}
	var meta Meta
	u := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = cr.uvarint()
		return v
	}
	u64 := func() uint64 {
		if err != nil {
			return 0
		}
		var b [8]byte
		if _, err = io.ReadFull(cr, b[:]); err != nil {
			return 0
		}
		return binary.LittleEndian.Uint64(b[:])
	}
	meta.N = int64(u())
	meta.X = int(u())
	meta.P = math.Float64frombits(u64())
	meta.Seed = u64()
	meta.Rank = int(u())
	meta.Ranks = int(u())
	schemeLen := u()
	if err != nil {
		return nil, fmt.Errorf("shard header: %w", err)
	}
	if schemeLen > 64 {
		return nil, fmt.Errorf("shard header: scheme name length %d", schemeLen)
	}
	scheme := make([]byte, schemeLen)
	if _, err := io.ReadFull(cr, scheme); err != nil {
		return nil, fmt.Errorf("shard header: %w", err)
	}
	meta.Scheme = string(scheme)
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("shard header: %w", err)
	}
	hdr := encodeHeader(meta)
	if int64(len(hdr)) != cr.off || string(hdr[len(hdr)-4:]) != string(crcBuf[:]) {
		return nil, fmt.Errorf("shard header CRC mismatch (torn or corrupted header)")
	}

	sc := &scanResult{meta: meta, headerLen: cr.off}
	payBuf := []byte(nil)
	for {
		blockOff := cr.off
		marker, err := cr.ReadByte()
		if err == io.EOF {
			// No EOS record: the writer never Closed (crash). The
			// complete-block prefix is still usable in tolerate mode.
			if tolerate {
				return sc, nil
			}
			return nil, fmt.Errorf("shard ends without end-of-stream record (torn tail at offset %d)", blockOff)
		}
		if err != nil {
			return nil, err
		}
		switch marker {
		case blockMarker:
			hb := make([]byte, 0, 32)
			hb = append(hb, marker)
			var seq, count, payLen uint64
			ok := true
			for _, dst := range []*uint64{&seq, &count, &payLen} {
				v, err := cr.uvarint()
				if err != nil {
					ok = false
					break
				}
				// Re-append the varint so the CRC covers the exact bytes.
				hb = binary.AppendUvarint(hb, v)
				*dst = v
			}
			// Structural sanity before trusting payLen: a torn tail can
			// parse as a block header with garbage fields, so in tolerate
			// mode these end the scan like any other tail damage.
			if ok && int64(seq) != int64(len(sc.blocks)) {
				if tolerate {
					return sc, nil
				}
				return nil, fmt.Errorf("block at offset %d has sequence %d, want %d", blockOff, seq, len(sc.blocks))
			}
			if ok && (count > payLen || payLen > 1<<30) {
				// Every record costs at least 2 payload bytes, and no
				// writer emits gigabyte blocks — don't allocate for a
				// length a torn tail invented.
				if tolerate {
					return sc, nil
				}
				return nil, fmt.Errorf("block at offset %d claims %d records in %d payload bytes", blockOff, count, payLen)
			}
			if ok {
				if int64(len(payBuf)) < int64(payLen) {
					payBuf = make([]byte, payLen)
				}
				payOff := cr.off
				if _, err := io.ReadFull(cr, payBuf[:payLen]); err != nil {
					ok = false
				} else if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
					ok = false
				} else {
					crc := crc32.Checksum(hb, castagnoli)
					crc = crc32.Update(crc, castagnoli, payBuf[:payLen])
					if binary.LittleEndian.Uint32(crcBuf[:]) != crc {
						ok = false
					}
				}
				if ok {
					sc.blocks = append(sc.blocks, blockInfo{
						off:    blockOff,
						size:   cr.off - blockOff,
						payOff: payOff,
						payLen: int64(payLen),
						count:  int64(count),
					})
					sc.edges += int64(count)
					continue
				}
			}
			if tolerate {
				return sc, nil
			}
			return nil, fmt.Errorf("torn or corrupted block at offset %d", blockOff)
		case eosMarker:
			eb := make([]byte, 0, 32)
			eb = append(eb, marker)
			var edges, blocks uint64
			ok := true
			for _, dst := range []*uint64{&edges, &blocks} {
				v, err := cr.uvarint()
				if err != nil {
					ok = false
					break
				}
				eb = binary.AppendUvarint(eb, v)
				*dst = v
			}
			if ok {
				if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
					ok = false
				} else if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.Checksum(eb, castagnoli) {
					ok = false
				}
			}
			if !ok {
				if tolerate {
					return sc, nil
				}
				return nil, fmt.Errorf("torn end-of-stream record at offset %d", blockOff)
			}
			if int64(edges) != sc.edges || int64(blocks) != int64(len(sc.blocks)) {
				if tolerate {
					return sc, nil
				}
				return nil, fmt.Errorf("end-of-stream record says %d edges / %d blocks, chain holds %d / %d", edges, blocks, sc.edges, len(sc.blocks))
			}
			if _, err := cr.ReadByte(); err != io.EOF {
				// A valid EOS with bytes after it: a finished shard a later
				// crash appended a torn tail to. The chain itself is clean.
				if tolerate {
					sc.complete = true
					return sc, nil
				}
				return nil, fmt.Errorf("trailing bytes after end-of-stream record")
			}
			sc.complete = true
			return sc, nil
		default:
			if tolerate {
				return sc, nil
			}
			return nil, fmt.Errorf("unknown marker %q at offset %d", marker, blockOff)
		}
	}
}

// Reader reads one shard file back in canonical (slot-key-ascending)
// order by k-way-merging its sorted blocks through bounded per-block
// buffers, so iteration memory is independent of the shard size.
type Reader struct {
	f    *os.File
	sc   *scanResult
	part partition.Scheme
}

// OpenReader opens a shard strictly: the file must be complete (EOS
// record present) and every block CRC-clean.
func OpenReader(path string) (*Reader, error) {
	return openReader(path, false)
}

// OpenReaderTolerant opens a shard accepting a torn tail: iteration
// covers the longest clean complete-block prefix. Meta().complete
// status is exposed via Complete. Intended for post-mortem inspection
// of a crashed run's shards.
func OpenReaderTolerant(path string) (*Reader, error) {
	return openReader(path, true)
}

func openReader(path string, tolerate bool) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc, err := scanShard(f, tolerate)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("esink: %s: %w", path, err)
	}
	kind, err := partition.ParseKind(sc.meta.Scheme)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("esink: %s: %w", path, err)
	}
	part, err := partition.New(kind, sc.meta.N, sc.meta.Ranks)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("esink: %s: %w", path, err)
	}
	return &Reader{f: f, sc: sc, part: part}, nil
}

// Meta returns the shard's run identity.
func (r *Reader) Meta() Meta { return r.sc.meta }

// Edges returns the number of edge records the reader will yield.
func (r *Reader) Edges() int64 { return r.sc.edges }

// Complete reports whether the shard carried a valid end-of-stream
// record (always true for strictly opened shards).
func (r *Reader) Complete() bool { return r.sc.complete }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// cursor streams one block's records through a bounded buffer.
type cursor struct {
	br        *bufio.Reader
	remaining int64
	first     bool
	key       uint64 // current record
	v         int64
}

func (c *cursor) advance() (bool, error) {
	if c.remaining == 0 {
		return false, nil
	}
	c.remaining--
	d, err := binary.ReadUvarint(c.br)
	if err != nil {
		return false, fmt.Errorf("esink: corrupt block payload: %w", err)
	}
	if c.first {
		c.first = false
		c.key = d
	} else {
		if d == 0 {
			return false, fmt.Errorf("esink: corrupt block payload: zero key delta")
		}
		c.key += d
	}
	v, err := binary.ReadUvarint(c.br)
	if err != nil {
		return false, fmt.Errorf("esink: corrupt block payload: %w", err)
	}
	c.v = int64(v)
	return true, nil
}

// Iter is a canonical-order edge iterator over one shard: a min-heap of
// per-block cursors keyed by the next record's slot key.
type Iter struct {
	r    *Reader
	heap []*cursor
	x64  int64
	err  error
}

// Iter returns a canonical-order iterator. budget bounds the total
// buffer memory across the per-block cursors (DefaultReadBudget if
// <= 0). Multiple iterators over one Reader are independent.
func (r *Reader) Iter(budget int) *Iter {
	if budget <= 0 {
		budget = DefaultReadBudget
	}
	per := budget
	if n := len(r.sc.blocks); n > 0 {
		per = budget / n
	}
	if per < minCursorBuf {
		per = minCursorBuf
	}
	if per > maxCursorBuf {
		per = maxCursorBuf
	}
	it := &Iter{r: r, x64: int64(r.sc.meta.X)}
	for _, b := range r.sc.blocks {
		if b.count == 0 {
			continue
		}
		c := &cursor{
			br:        bufio.NewReaderSize(io.NewSectionReader(r.f, b.payOff, b.payLen), per),
			remaining: b.count,
			first:     true,
		}
		ok, err := c.advance()
		if err != nil {
			it.err = err
			return it
		}
		if ok {
			it.push(c)
		}
	}
	return it
}

func (it *Iter) push(c *cursor) {
	it.heap = append(it.heap, c)
	i := len(it.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if it.heap[p].key <= it.heap[i].key {
			break
		}
		it.heap[p], it.heap[i] = it.heap[i], it.heap[p]
		i = p
	}
}

func (it *Iter) siftDown() {
	h := it.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].key < h[m].key {
			m = l
		}
		if r < len(h) && h[r].key < h[m].key {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Next yields the next edge in canonical order. The edge's source node
// U is derived from the slot key via the partition.
func (it *Iter) Next() (graph.Edge, bool) {
	if it.err != nil || len(it.heap) == 0 {
		return graph.Edge{}, false
	}
	c := it.heap[0]
	key, v := c.key, c.v
	ok, err := c.advance()
	if err != nil {
		it.err = err
		return graph.Edge{}, false
	}
	if ok {
		it.siftDown()
	} else {
		last := len(it.heap) - 1
		it.heap[0] = it.heap[last]
		it.heap = it.heap[:last]
		it.siftDown()
	}
	u := it.r.part.NodeAt(it.r.sc.meta.Rank, int64(key)/it.x64)
	return graph.Edge{U: u, V: v}, true
}

// Err returns the first error iteration hit, if any.
func (it *Iter) Err() error { return it.err }

// DirReader opens every rank shard of a streamed run and iterates the
// merged graph in canonical rank-major order — the byte-identical
// counterpart of graph.Merge over the in-memory per-rank edge lists.
type DirReader struct {
	readers []*Reader
}

// OpenDir strictly opens the ranks shards of a streamed run under dir
// and cross-validates their run identity (same n, x, p, seed, scheme
// and rank count; each file claiming its own rank).
func OpenDir(dir string, ranks int) (*DirReader, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("esink: ranks = %d, want >= 1", ranks)
	}
	d := &DirReader{}
	for r := 0; r < ranks; r++ {
		rd, err := OpenReader(ShardPath(dir, r, ranks))
		if err != nil {
			d.Close()
			return nil, err
		}
		m := rd.Meta()
		if m.Rank != r || m.Ranks != ranks {
			d.Close()
			return nil, fmt.Errorf("esink: %s claims rank %d of %d, want %d of %d", rd.f.Name(), m.Rank, m.Ranks, r, ranks)
		}
		if r > 0 {
			m0 := d.readers[0].Meta()
			if m.N != m0.N || m.X != m0.X || m.P != m0.P || m.Seed != m0.Seed || m.Scheme != m0.Scheme {
				d.Close()
				return nil, fmt.Errorf("esink: %s belongs to a different run than rank 0's shard", rd.f.Name())
			}
		}
		d.readers = append(d.readers, rd)
	}
	return d, nil
}

// Meta returns the run identity (from rank 0's shard).
func (d *DirReader) Meta() Meta { return d.readers[0].Meta() }

// Edges returns the total edge count across all shards.
func (d *DirReader) Edges() int64 {
	var n int64
	for _, r := range d.readers {
		n += r.Edges()
	}
	return n
}

// Close releases all shard files.
func (d *DirReader) Close() error {
	var first error
	for _, r := range d.readers {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DirIter iterates the merged canonical stream: rank 0's shard in
// slot-key order, then rank 1's, and so on.
type DirIter struct {
	d      *DirReader
	budget int
	i      int
	cur    *Iter
}

// Iter returns a merged canonical-order iterator; budget bounds each
// shard iterator's buffer memory (shards are read one at a time).
func (d *DirReader) Iter(budget int) *DirIter {
	return &DirIter{d: d, budget: budget}
}

// Next yields the next edge of the merged stream.
func (di *DirIter) Next() (graph.Edge, bool) {
	for {
		if di.cur == nil {
			if di.i >= len(di.d.readers) {
				return graph.Edge{}, false
			}
			di.cur = di.d.readers[di.i].Iter(di.budget)
			di.i++
		}
		if e, ok := di.cur.Next(); ok {
			return e, true
		}
		if err := di.cur.Err(); err != nil {
			return graph.Edge{}, false
		}
		di.cur = nil
	}
}

// Err returns the first error iteration hit, if any.
func (di *DirIter) Err() error {
	if di.cur != nil {
		return di.cur.Err()
	}
	return nil
}
