// Package seq implements the sequential preferential-attachment
// generators the paper discusses in Section 3.1: the naive degree-scan
// algorithm (Omega(n^2), kept as a correctness oracle for small n), the
// Batagelj–Brandes O(m) repeated-nodes algorithm, and the copy model of
// Kumar et al. — the algorithm the parallel engine is built on, and the
// T_s baseline for the paper's speedup measurements.
package seq

import (
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/xrand"
)

// CopyModelOptions controls optional outputs of CopyModel.
type CopyModelOptions struct {
	// RecordTrace, when set, makes CopyModel return the per-slot
	// decision trace used by the dependency-chain analysis.
	RecordTrace bool
}

// CopyModel generates a preferential-attachment network sequentially with
// the copy model (Section 3.1). At p = 0.5 the attachment probabilities
// are exactly those of the Barabási–Albert model. Runtime is O(m).
//
// Randomness is drawn from a per-node stream derived from (seed, t), the
// same discipline the parallel engine uses; consequently the parallel
// generator with one rank reproduces CopyModel's graph bit-for-bit, and
// x = 1 runs are identical across any rank count and partitioning scheme.
func CopyModel(pr model.Params, seed uint64, opts CopyModelOptions) (*graph.Graph, *model.Trace, error) {
	if err := pr.Validate(); err != nil {
		return nil, nil, err
	}
	n, x := pr.N, pr.X
	x64 := int64(x)

	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, pr.M())

	var tr *model.Trace
	if opts.RecordTrace {
		tr = model.NewTrace(pr)
	}

	// F[(t-x)*x + e] = F_t(e) for t in [x, n). Clique nodes have no
	// outgoing attachment slots.
	f := make([]int64, (n-x64)*x64)
	slot := func(t int64, e int) int64 { return (t-x64)*x64 + int64(e) }

	// Initial clique: node t < x contributes (t, j) for all j < t.
	for t := int64(1); t < x64; t++ {
		for j := int64(0); j < t; j++ {
			g.AddEdge(t, j)
		}
	}

	// Bootstrap node x: attaches to every clique node.
	for e := 0; e < x; e++ {
		v, _ := pr.BootstrapF(x64, e)
		f[slot(x64, e)] = v
		g.AddEdge(x64, v)
		if tr != nil {
			tr.RecordBootstrap(x64, e)
		}
	}

	// dup reports whether v is already one of t's first e attachments.
	dup := func(t int64, e int, v int64) bool {
		base := slot(t, 0)
		for i := 0; i < e; i++ {
			if f[base+int64(i)] == v {
				return true
			}
		}
		return false
	}

	var rng xrand.Rand // reused across nodes; re-seeded per node
	for t := x64 + 1; t < n; t++ {
		rng.SeedStream(seed, uint64(t))
		lo, hi := pr.KRange(t)
		span := uint64(hi - lo)
		for e := 0; e < x; e++ {
			for {
				k := lo + int64(rng.Uint64n(span))
				if rng.Float64() < pr.P {
					if dup(t, e, k) {
						continue
					}
					f[slot(t, e)] = k
					if tr != nil {
						tr.RecordDirect(t, e, k)
					}
				} else {
					l := int(rng.Uint64n(uint64(x)))
					v := f[slot(k, l)]
					if dup(t, e, v) {
						continue
					}
					f[slot(t, e)] = v
					if tr != nil {
						tr.RecordCopy(t, e, k, l)
					}
				}
				break
			}
			g.AddEdge(t, f[slot(t, e)])
		}
	}
	return g, tr, nil
}
