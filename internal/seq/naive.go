package seq

import (
	"fmt"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/xrand"
)

// NaiveMaxN bounds NaivePA's input size: the algorithm is Omega(n^2) and
// exists only as a small-scale correctness oracle, exactly the "naive
// approach" of Section 3.1 the efficient algorithms are measured against.
const NaiveMaxN = 1 << 20

// NaivePA generates a Barabási–Albert network with the naive
// degree-list-scan algorithm of Section 3.1: each phase draws a uniform
// value in [1, sum of degrees] and scans the degree array to find the
// chosen node. Theta(t) per phase, Omega(n^2) total. p is ignored (pure
// BA attachment).
func NaivePA(pr model.Params, rng *xrand.Rand) (*graph.Graph, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if pr.N > NaiveMaxN {
		return nil, fmt.Errorf("seq: NaivePA limited to n <= %d (got %d); use BatageljBrandes or CopyModel", NaiveMaxN, pr.N)
	}
	n, x := pr.N, pr.X
	x64 := int64(x)

	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, pr.M())
	deg := make([]int64, n)
	var degSum int64

	addEdge := func(u, v int64) {
		g.AddEdge(u, v)
		deg[u]++
		deg[v]++
		degSum += 2
	}

	for t := int64(1); t < x64; t++ {
		for j := int64(0); j < t; j++ {
			addEdge(t, j)
		}
	}
	for e := int64(0); e < x64; e++ {
		addEdge(x64, e)
	}

	targets := make([]int64, 0, x)
	for t := x64 + 1; t < n; t++ {
		targets = targets[:0]
		for e := 0; e < x; e++ {
		draw:
			for {
				// Uniform point in the degree mass, then linear scan.
				r := int64(rng.Uint64n(uint64(degSum))) + 1
				var v int64
				for v = 0; v < t; v++ {
					r -= deg[v]
					if r <= 0 {
						break
					}
				}
				if v >= t {
					continue // mass of t itself (phase edges not yet added here, but guard)
				}
				for _, w := range targets {
					if w == v {
						continue draw
					}
				}
				targets = append(targets, v)
				break
			}
		}
		for _, v := range targets {
			addEdge(t, v)
		}
	}
	return g, nil
}
