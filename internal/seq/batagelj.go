package seq

import (
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/xrand"
)

// BatageljBrandes generates a Barabási–Albert network with the O(m)
// algorithm of Batagelj & Brandes: a list in which every node appears
// once per unit of degree; picking a uniform element of the list picks a
// node with probability proportional to its degree. The paper discusses
// it as the efficient sequential baseline (and notes it does not
// parallelise well). p is ignored by this model (pure degree-proportional
// attachment, i.e. the BA case).
func BatageljBrandes(pr model.Params, rng *xrand.Rand) (*graph.Graph, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	n, x := pr.N, pr.X
	x64 := int64(x)

	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, pr.M())

	// repeated[i] lists node ids, one occurrence per unit of degree.
	repeated := make([]int64, 0, 2*pr.M())

	addEdge := func(u, v int64) {
		g.AddEdge(u, v)
		repeated = append(repeated, u, v)
	}

	// Initial clique, matching the copy-model bootstrap so the two
	// baselines produce graphs over identical edge counts.
	for t := int64(1); t < x64; t++ {
		for j := int64(0); j < t; j++ {
			addEdge(t, j)
		}
	}
	// Node x attaches to every clique node.
	targets := make([]int64, x)
	for e := 0; e < x; e++ {
		targets[e] = int64(e)
	}
	for _, v := range targets[:x] {
		addEdge(x64, v)
	}

	for t := x64 + 1; t < n; t++ {
		targets = targets[:0]
		for e := 0; e < x; e++ {
			for {
				v := repeated[rng.Uint64n(uint64(len(repeated)))]
				if v == t {
					continue // t already appears via this phase's edges
				}
				duplicate := false
				for _, w := range targets {
					if w == v {
						duplicate = true
						break
					}
				}
				if duplicate {
					continue
				}
				targets = append(targets, v)
				break
			}
		}
		for _, v := range targets {
			addEdge(t, v)
		}
	}
	return g, nil
}
