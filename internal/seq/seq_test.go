package seq

import (
	"math"
	"testing"

	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/stats"
	"pagen/internal/xrand"
)

func params(n int64, x int, p float64) model.Params {
	return model.Params{N: n, X: x, P: p}
}

type generator struct {
	name string
	gen  func(model.Params, *xrand.Rand) (*graph.Graph, error)
}

func generators() []generator {
	return []generator{
		{"CopyModel", func(pr model.Params, rng *xrand.Rand) (*graph.Graph, error) {
			g, _, err := CopyModel(pr, rng.Uint64(), CopyModelOptions{})
			return g, err
		}},
		{"BatageljBrandes", BatageljBrandes},
		{"NaivePA", NaivePA},
	}
}

func TestAllGeneratorsStructuralInvariants(t *testing.T) {
	cases := []model.Params{
		params(2, 1, 0.5),
		params(50, 1, 0.5),
		params(6, 4, 0.5),
		params(5, 4, 0.5), // single generating node beyond bootstrap region
		params(200, 3, 0.5),
		params(500, 10, 0.5),
	}
	for _, pr := range cases {
		for _, gen := range generators() {
			g, err := gen.gen(pr, xrand.New(42))
			if err != nil {
				t.Fatalf("%s(%+v): %v", gen.name, pr, err)
			}
			if g.M() != pr.M() {
				t.Errorf("%s(%+v): m = %d, want %d", gen.name, pr, g.M(), pr.M())
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s(%+v): %v", gen.name, pr, err)
			}
			// Evolving construction: every edge points backwards.
			for _, e := range g.Edges {
				if e.U <= e.V {
					t.Fatalf("%s(%+v): edge (%d,%d) not backward", gen.name, pr, e.U, e.V)
				}
			}
			// PA networks grown from a clique are connected.
			if c := g.ToCSR().ConnectedComponents(); c != 1 {
				t.Errorf("%s(%+v): %d components", gen.name, pr, c)
			}
		}
	}
}

func TestGeneratorsRejectInvalidParams(t *testing.T) {
	for _, gen := range generators() {
		if _, err := gen.gen(params(3, 3, 0.5), xrand.New(1)); err == nil {
			t.Errorf("%s accepted n == x", gen.name)
		}
		if _, err := gen.gen(params(10, 2, 1.5), xrand.New(1)); err == nil {
			t.Errorf("%s accepted p > 1", gen.name)
		}
	}
}

func TestNaiveRejectsHugeN(t *testing.T) {
	if _, err := NaivePA(params(NaiveMaxN+1, 2, 0.5), xrand.New(1)); err == nil {
		t.Fatal("NaivePA accepted n above cap")
	}
}

func TestDeterminism(t *testing.T) {
	for _, gen := range generators() {
		a, err := gen.gen(params(300, 4, 0.5), xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.gen(params(300, 4, 0.5), xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Edges) != len(b.Edges) {
			t.Fatalf("%s: edge counts differ", gen.name)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", gen.name, i, a.Edges[i], b.Edges[i])
			}
		}
	}
}

func TestX1IsTree(t *testing.T) {
	g, _, err := CopyModel(params(5000, 1, 0.5), 3, CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4999 {
		t.Fatalf("m = %d", g.M())
	}
	if c := g.ToCSR().ConnectedComponents(); c != 1 {
		t.Fatalf("components = %d", c)
	}
}

// The copy model at p = 1/2 must match Batagelj–Brandes (exact BA) in
// distribution. Compare the degree PMF head across many nodes.
func TestCopyModelMatchesBADistribution(t *testing.T) {
	pr := params(30000, 4, 0.5)
	gCopy, _, err := CopyModel(pr, 11, CopyModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gBB, err := BatageljBrandes(pr, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	hc := gCopy.DegreeHistogram()
	hb := gBB.DegreeHistogram()
	// Compare P(deg = d) for the PMF head, where counts are large.
	for d := int64(4); d <= 12; d++ {
		pc := float64(hc.Count(d)) / float64(pr.N)
		pb := float64(hb.Count(d)) / float64(pr.N)
		if math.Abs(pc-pb) > 0.012 {
			t.Errorf("P(deg=%d): copy %.4f vs BB %.4f", d, pc, pb)
		}
	}
}

// Degree distributions of all BA-equivalent generators follow a power law
// with gamma near 3 (the BA exponent; finite-size estimates land lower —
// the paper itself reports 2.7 at n = 1e9, x = 4).
func TestPowerLawExponent(t *testing.T) {
	pr := params(50000, 4, 0.5)
	for _, gen := range generators() {
		if gen.name == "NaivePA" {
			continue // quadratic; 50k nodes is slow in -short environments
		}
		g, err := gen.gen(pr, xrand.New(21))
		if err != nil {
			t.Fatal(err)
		}
		fit, err := stats.PowerLawMLE(g.Degrees(), 8)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Gamma < 2.3 || fit.Gamma > 3.6 {
			t.Errorf("%s: gamma = %v outside plausible BA range", gen.name, fit.Gamma)
		}
	}
}

// The copy model's exponent must vary with p (Section 3.1: "the value of
// the exponent gamma depends on the choice of p"): larger p (more uniform
// attachment) gives a steeper, thinner tail.
func TestGammaVariesWithP(t *testing.T) {
	n := int64(40000)
	maxDeg := func(p float64) int64 {
		g, _, err := CopyModel(params(n, 1, p), 31, CopyModelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h := g.DegreeHistogram()
		m, _ := h.Max()
		return m
	}
	heavy := maxDeg(0.1) // mostly copying: rich get much richer
	light := maxDeg(0.9) // mostly uniform: flat tail
	if heavy <= light*2 {
		t.Errorf("max degree at p=0.1 (%d) not clearly heavier than p=0.9 (%d)", heavy, light)
	}
}

func TestCopyModelTraceRecording(t *testing.T) {
	pr := params(1000, 3, 0.5)
	g, tr, err := CopyModel(pr, 41, CopyModelOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("trace not returned")
	}
	if tr.Slots() != int((pr.N-3)*3) {
		t.Fatalf("Slots = %d", tr.Slots())
	}
	// Bootstrap slots are direct with K = -1.
	for e := 0; e < 3; e++ {
		i := tr.Idx(3, e)
		if tr.K[i] != -1 || tr.Copied[i] {
			t.Fatal("bootstrap slot not recorded")
		}
	}
	copied, direct := 0, 0
	for t64 := int64(4); t64 < pr.N; t64++ {
		for e := 0; e < 3; e++ {
			i := tr.Idx(t64, e)
			if tr.Copied[i] {
				copied++
				if tr.K[i] < 3 || tr.K[i] >= t64 {
					t.Fatalf("copy slot (%d,%d) has k = %d out of range", t64, e, tr.K[i])
				}
				if tr.L[i] < 0 || tr.L[i] >= 3 {
					t.Fatalf("copy slot (%d,%d) has l = %d", t64, e, tr.L[i])
				}
			} else {
				direct++
				if tr.L[i] != -1 {
					t.Fatalf("direct slot (%d,%d) has l = %d", t64, e, tr.L[i])
				}
			}
		}
	}
	// At p = 0.5, roughly half the decisions copy. (Retries skew the
	// final recorded branch slightly; allow a wide band.)
	frac := float64(copied) / float64(copied+direct)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("copied fraction = %v, want ~0.5", frac)
	}
	_ = g
}

func TestCopyModelTraceExtremes(t *testing.T) {
	// p = 1 at x = 1: every slot direct (uniform random recursive tree).
	_, tr, err := CopyModel(params(500, 1, 1.0), 5, CopyModelOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Slots(); i++ {
		if tr.Copied[i] {
			t.Fatal("p=1 produced a copy")
		}
	}
	// p = 0 at x = 1: every non-bootstrap slot copied.
	_, tr, err = CopyModel(params(500, 1, 0.0), 5, CopyModelOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for t64 := int64(2); t64 < 500; t64++ {
		if !tr.Copied[tr.Idx(t64, 0)] {
			t.Fatalf("p=0 slot %d not copied", t64)
		}
	}
}

func TestNaiveMatchesBBDistribution(t *testing.T) {
	// The naive oracle and BB implement the same model; their PMF heads
	// must agree on a small instance.
	pr := params(4000, 3, 0.5)
	gn, err := NaivePA(pr, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := BatageljBrandes(pr, xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	hn := gn.DegreeHistogram()
	hb := gb.DegreeHistogram()
	for d := int64(3); d <= 8; d++ {
		pn := float64(hn.Count(d)) / float64(pr.N)
		pb := float64(hb.Count(d)) / float64(pr.N)
		if math.Abs(pn-pb) > 0.03 {
			t.Errorf("P(deg=%d): naive %.4f vs BB %.4f", d, pn, pb)
		}
	}
}

func BenchmarkCopyModel(b *testing.B) {
	pr := params(100000, 4, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := CopyModel(pr, uint64(i), CopyModelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatageljBrandes(b *testing.B) {
	pr := params(100000, 4, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BatageljBrandes(pr, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaivePA(b *testing.B) {
	pr := params(2000, 4, 0.5)
	for i := 0; i < b.N; i++ {
		if _, err := NaivePA(pr, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
