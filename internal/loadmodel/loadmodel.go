// Package loadmodel turns per-rank load statistics into predicted
// speedups. The paper measures per-processor computational load as
// "the sum of the number of nodes in the processor and the number of
// incoming and outgoing messages" (Section 4.6.3); on hardware, runtime
// is proportional to the maximum per-rank load (the makespan), so
//
//	predicted speedup(P) = sequential cost / makespan(P)
//
// reproduces the relative behaviour of UCP/LCP/RRP in Figures 5 and 6
// independently of how many physical cores execute the simulation — the
// substitution DESIGN.md documents for this container's single core.
//
// The same makespan is the job-length scale in the pa-serve control
// plane's admission analysis (DESIGN.md §14.2): the queue's starvation
// bound is ReserveAfter plus the drain makespan of the running set,
// and Makespan is the natural predictor for an EASY-backfill extension.
package loadmodel

import (
	"fmt"

	"pagen/internal/core"
	"pagen/internal/model"
)

// Weights are the per-unit costs of the load model: one unit per edge
// placed (the constant per-attachment work the paper's constant c
// stands for) and one unit per message sent and received (the paper's
// simplifying assumption i in Section 3.5.1).
type Weights struct {
	Edge float64
	Send float64
	Recv float64
}

// Default weighs attachment work and messages equally, matching the
// paper's Section 4.6.3 load measure.
var Default = Weights{Edge: 1, Send: 1, Recv: 1}

// RankLoads computes the modelled load of every rank from its stats.
func RankLoads(stats []core.RankStats, w Weights) []float64 {
	loads := make([]float64, len(stats))
	for i, st := range stats {
		sent := float64(st.Comm.RequestsSent + st.Comm.ResolvedSent)
		recv := float64(st.Comm.RequestsRecv + st.Comm.ResolvedRecv)
		loads[i] = w.Edge*float64(st.Edges) + w.Send*sent + w.Recv*recv
	}
	return loads
}

// Makespan returns the maximum rank load — the model's parallel runtime.
func Makespan(loads []float64) float64 {
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// SequentialCost returns the modelled cost of the sequential copy model:
// every edge placed once, no messages.
func SequentialCost(pr model.Params, w Weights) float64 {
	return w.Edge * float64(pr.M())
}

// Report is the modelled scaling summary of one parallel run.
type Report struct {
	P          int
	Makespan   float64
	Total      float64 // sum of rank loads
	Imbalance  float64 // makespan / (total/P); 1.0 = perfect
	Speedup    float64 // sequential cost / makespan
	Efficiency float64 // speedup / P
}

// Analyze builds a Report from per-rank stats.
func Analyze(pr model.Params, stats []core.RankStats, w Weights) (Report, error) {
	if len(stats) == 0 {
		return Report{}, fmt.Errorf("loadmodel: no rank stats")
	}
	loads := RankLoads(stats, w)
	mk := Makespan(loads)
	total := 0.0
	for _, l := range loads {
		total += l
	}
	r := Report{
		P:        len(stats),
		Makespan: mk,
		Total:    total,
	}
	if mk > 0 {
		r.Imbalance = mk / (total / float64(len(stats)))
		r.Speedup = SequentialCost(pr, w) / mk
		r.Efficiency = r.Speedup / float64(len(stats))
	}
	return r, nil
}
