package loadmodel

import (
	"math"
	"testing"

	"pagen/internal/comm"
	"pagen/internal/core"
	"pagen/internal/model"
	"pagen/internal/partition"
)

func fakeStats(edges []int64, sent, recv []int64) []core.RankStats {
	out := make([]core.RankStats, len(edges))
	for i := range edges {
		out[i] = core.RankStats{
			Rank:  i,
			Edges: edges[i],
			Comm: comm.Counters{
				RequestsSent: sent[i],
				RequestsRecv: recv[i],
			},
		}
	}
	return out
}

func TestRankLoadsAndMakespan(t *testing.T) {
	stats := fakeStats([]int64{10, 20}, []int64{5, 0}, []int64{0, 5})
	loads := RankLoads(stats, Default)
	if loads[0] != 15 || loads[1] != 25 {
		t.Fatalf("loads = %v", loads)
	}
	if Makespan(loads) != 25 {
		t.Fatalf("makespan = %v", Makespan(loads))
	}
	// Custom weights.
	loads = RankLoads(stats, Weights{Edge: 2, Send: 0, Recv: 10})
	if loads[0] != 20 || loads[1] != 90 {
		t.Fatalf("weighted loads = %v", loads)
	}
}

func TestAnalyzeReport(t *testing.T) {
	pr := model.Params{N: 100, X: 1, P: 0.5} // m = 99
	stats := fakeStats([]int64{49, 50}, []int64{0, 0}, []int64{0, 0})
	rep, err := Analyze(pr, stats, Default)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P != 2 || rep.Makespan != 50 || rep.Total != 99 {
		t.Fatalf("report = %+v", rep)
	}
	if math.Abs(rep.Imbalance-50/49.5) > 1e-12 {
		t.Fatalf("imbalance = %v", rep.Imbalance)
	}
	// Near-balanced, message-free: speedup just below P.
	if math.Abs(rep.Speedup-99.0/50) > 1e-12 || math.Abs(rep.Efficiency-99.0/100) > 1e-12 {
		t.Fatalf("speedup = %v eff = %v", rep.Speedup, rep.Efficiency)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(model.Params{N: 10, X: 1, P: 0.5}, nil, Default); err == nil {
		t.Fatal("empty stats accepted")
	}
}

// End-to-end: on a real run, the modelled speedup of RRP must beat UCP
// (the Figure 5 ordering) and grow with P.
func TestModelReproducesSchemeOrdering(t *testing.T) {
	pr := model.Params{N: 40000, X: 4, P: 0.5}
	speedup := func(kind partition.Kind, p int) float64 {
		part, err := partition.New(kind, pr.N, p)
		if err != nil {
			t.Fatal(err)
		}
		// Figure 5's ordering is a property of the baseline message
		// pattern: the hub-prefix cache elides exactly the hub-request
		// concentration that separates the schemes, so pin it off.
		res, err := core.Run(core.Options{Params: pr, Part: part, Seed: 5, HubPrefix: -1}, false)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(pr, res.Ranks, Default)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Speedup
	}
	ucp8 := speedup(partition.KindUCP, 8)
	rrp8 := speedup(partition.KindRRP, 8)
	rrp16 := speedup(partition.KindRRP, 16)
	if rrp8 <= ucp8 {
		t.Errorf("RRP speedup %v not above UCP %v at P=8", rrp8, ucp8)
	}
	if rrp16 <= rrp8 {
		t.Errorf("RRP speedup did not grow with P: %v -> %v", rrp8, rrp16)
	}
	// Messages cost work, so speedup is below ideal.
	if rrp8 >= 8 || rrp16 >= 16 {
		t.Errorf("modelled speedup above ideal: %v, %v", rrp8, rrp16)
	}
}
