package msg

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic; inputs that decode
// successfully must re-encode to the identical bytes (codec is a
// bijection on its valid range).
func FuzzDecode(f *testing.F) {
	f.Add(AppendEncode(nil, Request(1, 2, 3, 4)))
	f.Add(AppendEncode(nil, Resolved(5, 0, -1)))
	f.Add(AppendEncode(nil, Stop()))
	f.Add(AppendEncode(nil, Ckpt(2, CkptReport, 3, 100, 99)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, EncodedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := Decode(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) != EncodedSize {
			t.Fatalf("consumed %d bytes", len(data)-len(rest))
		}
		re := AppendEncode(nil, m)
		if !bytes.Equal(re, data[:EncodedSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:EncodedSize])
		}
	})
}

// FuzzDecodeBatch: arbitrary frames must never panic and must either
// error or yield messages that re-encode to the input. Frames carrying
// the v2 magic take the compact path, where varints are not canonical,
// so the check there is decode→encode→decode idempotence instead of
// byte equality.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch([]Message{Request(1, 0, 2, 1), Done(3)}))
	f.Add(EncodeBatchV2([]Message{Request(1, 0, 2, 1), Done(3)}))
	f.Add(EncodeBatchV2([]Message{Ckpt(0, CkptBegin, 1, 4, 0), Ckpt(1, CkptCut, 2, 4, 0)}))
	f.Add(EncodeBatchV3([]Message{Publish(9, 0, 4), Publish(9, 1, 6), Publish(9, 2, 2)}))
	f.Add([]byte{1})
	f.Add([]byte{FrameV2Magic})
	f.Add([]byte{FrameV3Magic})
	f.Fuzz(func(t *testing.T, frame []byte) {
		ms, err := DecodeBatch(nil, frame)
		if err != nil {
			return
		}
		if len(frame) > 0 && (frame[0] == FrameV2Magic || frame[0] == FrameV3Magic) {
			requireV2Idempotent(t, ms)
			return
		}
		if !bytes.Equal(EncodeBatch(ms), frame) {
			t.Fatal("batch re-encode mismatch")
		}
	})
}

// FuzzDecodeBatchV2: the compact decoder must never panic on arbitrary
// bytes, and anything it accepts must survive a re-encode/decode cycle
// unchanged. Seeds cover both codec versions plus junk, so the fuzzer
// explores the version-dispatch boundary too.
func FuzzDecodeBatchV2(f *testing.F) {
	f.Add(EncodeBatchV2(nil))
	f.Add(EncodeBatchV2([]Message{Request(1, 0, 2, 1), Request(2, 1, 2, 0), Done(3)}))
	f.Add(EncodeBatchV2([]Message{Resolved(9, 2, 1<<40), Coll(1, 2, 3), Stop()}))
	f.Add(EncodeBatchV2([]Message{Ckpt(3, CkptProbe, 9, 1<<33, -5), Request(1, 0, 2, 1)}))
	f.Add(EncodeBatch([]Message{Request(1, 0, 2, 1)}))
	f.Add(EncodeBatchV3([]Message{Publish(5, 0, 1), Publish(5, 1, 3), Publish(6, 0, 2)}))
	f.Add(EncodeBatchV3([]Message{Publish(1<<60, 0, 7), Request(1, 0, 2, 1)}))
	f.Add([]byte{FrameV2Magic})
	f.Add([]byte{FrameV3Magic, byte(KindPublish), 2, 0xff})
	f.Add([]byte{FrameV2Magic, byte(KindRequest), 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, frame []byte) {
		ms, err := DecodeBatch(nil, frame)
		if err != nil {
			return
		}
		requireV2Idempotent(t, ms)
	})
}

// requireV2Idempotent checks that ms encodes under v2 to a frame that
// decodes back to exactly ms.
func requireV2Idempotent(t *testing.T, ms []Message) {
	t.Helper()
	again, err := DecodeBatch(nil, EncodeBatchV2(ms))
	if err != nil {
		t.Fatalf("re-encoded compact frame rejected: %v", err)
	}
	if len(again) != len(ms) {
		t.Fatalf("re-decode length %d, want %d", len(again), len(ms))
	}
	for i := range ms {
		if again[i] != ms[i] {
			t.Fatalf("message %d changed across encode cycle: %+v -> %+v", i, ms[i], again[i])
		}
	}
}
