package msg

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic; inputs that decode
// successfully must re-encode to the identical bytes (codec is a
// bijection on its valid range).
func FuzzDecode(f *testing.F) {
	f.Add(AppendEncode(nil, Request(1, 2, 3, 4)))
	f.Add(AppendEncode(nil, Resolved(5, 0, -1)))
	f.Add(AppendEncode(nil, Stop()))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, EncodedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := Decode(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) != EncodedSize {
			t.Fatalf("consumed %d bytes", len(data)-len(rest))
		}
		re := AppendEncode(nil, m)
		if !bytes.Equal(re, data[:EncodedSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:EncodedSize])
		}
	})
}

// FuzzDecodeBatch: arbitrary frames must never panic and must either
// error or yield messages that re-encode to the input.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch([]Message{Request(1, 0, 2, 1), Done(3)}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, frame []byte) {
		ms, err := DecodeBatch(nil, frame)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeBatch(ms), frame) {
			t.Fatal("batch re-encode mismatch")
		}
	})
}
