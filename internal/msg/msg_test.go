package msg

import (
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	r := Request(10, 2, 7, 1)
	if r.Kind != KindRequest || r.T != 10 || r.E != 2 || r.K != 7 || r.L != 1 {
		t.Fatalf("Request = %+v", r)
	}
	v := Resolved(10, 2, 5)
	if v.Kind != KindResolved || v.T != 10 || v.E != 2 || v.V != 5 {
		t.Fatalf("Resolved = %+v", v)
	}
	d := Done(3)
	if d.Kind != KindDone || d.T != 3 {
		t.Fatalf("Done = %+v", d)
	}
	if Stop().Kind != KindStop {
		t.Fatal("Stop kind wrong")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest: "request", KindResolved: "resolved",
		KindDone: "done", KindStop: "stop", Kind(0): "Kind(0)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Message{
		Request(0, 0, 0, 0),
		Request(1<<60, 65535, -1, 9),
		Resolved(42, 3, 1<<50),
		Resolved(1, 0, -7), // negative sentinel values survive
		Done(767),
		Stop(),
	}
	for _, m := range cases {
		b := AppendEncode(nil, m)
		if len(b) != EncodedSize {
			t.Fatalf("encoded size = %d", len(b))
		}
		got, rest, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("rest = %d bytes", len(rest))
		}
		if got != m {
			t.Fatalf("round trip: %+v -> %+v", m, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := AppendEncode(nil, Request(1, 1, 1, 1))
	bad[0] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad kind accepted")
	}
	bad[0] = 0
	if _, _, err := Decode(bad); err == nil {
		t.Error("zero kind accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ms := []Message{
		Request(1, 0, 2, 3),
		Resolved(4, 1, 5),
		Done(2),
		Stop(),
	}
	frame := EncodeBatch(ms)
	if len(frame) != 4*EncodedSize {
		t.Fatalf("frame size = %d", len(frame))
	}
	got, err := DecodeBatch(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d messages", len(got))
	}
	for i := range ms {
		if got[i] != ms[i] {
			t.Fatalf("message %d: %+v != %+v", i, got[i], ms[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(nil, EncodeBatch(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestBatchAppendsToDst(t *testing.T) {
	dst := []Message{Stop()}
	got, err := DecodeBatch(dst, EncodeBatch([]Message{Done(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindStop || got[1].Kind != KindDone {
		t.Fatalf("append semantics broken: %+v", got)
	}
}

func TestBatchRejectsRaggedFrame(t *testing.T) {
	frame := EncodeBatch([]Message{Stop()})
	if _, err := DecodeBatch(nil, frame[:len(frame)-1]); err == nil {
		t.Error("ragged frame accepted")
	}
}

// Property: any message with a valid kind round-trips through the codec.
func TestRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, tt, k, v int64, e, l uint16) bool {
		m := Message{
			Kind: Kind(kindRaw%4) + KindRequest,
			T:    tt, K: k, V: v, E: e, L: l,
		}
		got, rest, err := Decode(AppendEncode(nil, m))
		return err == nil && len(rest) == 0 && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	m := Request(123456789, 3, 987654321, 7)
	buf := make([]byte, 0, EncodedSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	frame := AppendEncode(nil, Request(123456789, 3, 987654321, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
