package msg

import (
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	r := Request(10, 2, 7, 1)
	if r.Kind != KindRequest || r.T != 10 || r.E != 2 || r.K != 7 || r.L != 1 {
		t.Fatalf("Request = %+v", r)
	}
	v := Resolved(10, 2, 5)
	if v.Kind != KindResolved || v.T != 10 || v.E != 2 || v.V != 5 {
		t.Fatalf("Resolved = %+v", v)
	}
	d := Done(3)
	if d.Kind != KindDone || d.T != 3 {
		t.Fatalf("Done = %+v", d)
	}
	if Stop().Kind != KindStop {
		t.Fatal("Stop kind wrong")
	}
	p := Publish(7, 2, 5)
	if p.Kind != KindPublish || p.T != 7 || p.E != 2 || p.V != 5 {
		t.Fatalf("Publish = %+v", p)
	}
	f := Fence(3)
	if f.Kind != KindFence || f.T != 3 {
		t.Fatalf("Fence = %+v", f)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest: "request", KindResolved: "resolved",
		KindDone: "done", KindStop: "stop",
		KindPublish: "publish", KindFence: "fence", Kind(0): "Kind(0)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Message{
		Request(0, 0, 0, 0),
		Request(1<<60, 65535, -1, 9),
		Resolved(42, 3, 1<<50),
		Resolved(1, 0, -7), // negative sentinel values survive
		Done(767),
		Stop(),
		Publish(123456, 3, 42),
		Fence(5),
	}
	for _, m := range cases {
		b := AppendEncode(nil, m)
		if len(b) != EncodedSize {
			t.Fatalf("encoded size = %d", len(b))
		}
		got, rest, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("rest = %d bytes", len(rest))
		}
		if got != m {
			t.Fatalf("round trip: %+v -> %+v", m, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := AppendEncode(nil, Request(1, 1, 1, 1))
	bad[0] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad kind accepted")
	}
	bad[0] = 0
	if _, _, err := Decode(bad); err == nil {
		t.Error("zero kind accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ms := []Message{
		Request(1, 0, 2, 3),
		Resolved(4, 1, 5),
		Done(2),
		Stop(),
	}
	frame := EncodeBatch(ms)
	if len(frame) != 4*EncodedSize {
		t.Fatalf("frame size = %d", len(frame))
	}
	got, err := DecodeBatch(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d messages", len(got))
	}
	for i := range ms {
		if got[i] != ms[i] {
			t.Fatalf("message %d: %+v != %+v", i, got[i], ms[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(nil, EncodeBatch(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestBatchAppendsToDst(t *testing.T) {
	dst := []Message{Stop()}
	got, err := DecodeBatch(dst, EncodeBatch([]Message{Done(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindStop || got[1].Kind != KindDone {
		t.Fatalf("append semantics broken: %+v", got)
	}
}

func TestBatchRejectsRaggedFrame(t *testing.T) {
	frame := EncodeBatch([]Message{Stop()})
	if _, err := DecodeBatch(nil, frame[:len(frame)-1]); err == nil {
		t.Error("ragged frame accepted")
	}
}

// clearDeadFields zeroes the fields m's kind does not carry, yielding
// the constructor-shaped form the codecs accept.
func clearDeadFields(m Message) Message {
	switch m.Kind {
	case KindRequest:
		m.V = 0
	case KindResolved, KindPublish:
		m.K, m.L = 0, 0
	case KindColl:
		m.E, m.L = 0, 0
	case KindDone, KindStop, KindFence:
		m.K, m.V, m.E, m.L = 0, 0, 0, 0
	}
	return m
}

// Property: any constructor-shaped message (dead fields zero) with a
// valid kind round-trips through the codec. The decoder rejects junk in
// dead fields, so the accepted set is exactly what both codecs agree on.
func TestRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, tt, k, v int64, e, l uint16) bool {
		m := clearDeadFields(Message{
			Kind: Kind(kindRaw%8) + KindRequest,
			T:    tt, K: k, V: v, E: e, L: l,
		})
		got, rest, err := Decode(AppendEncode(nil, m))
		return err == nil && len(rest) == 0 && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The fixed-width decoder must reject messages carrying nonzero values
// in fields their kind does not use: the compact codec cannot represent
// them, and a frame containing one is corrupt by construction.
func TestDecodeRejectsDeadFieldJunk(t *testing.T) {
	for _, m := range []Message{
		{Kind: KindRequest, T: 1, K: 2, V: 99, E: 0, L: 1},
		{Kind: KindResolved, T: 1, V: 5, K: 3},
		{Kind: KindResolved, T: 1, V: 5, L: 3},
		{Kind: KindColl, T: 1, K: 2, V: 3, E: 1},
		{Kind: KindDone, T: 1, K: 7},
		{Kind: KindStop, V: 1},
		{Kind: KindPublish, T: 1, V: 5, K: 3},
		{Kind: KindFence, T: 1, E: 2},
	} {
		if _, _, err := Decode(AppendEncode(nil, m)); err == nil {
			t.Errorf("junk-carrying %v message accepted: %+v", m.Kind, m)
		}
	}
}

// genMessages builds a constructor-shaped message batch from raw fuzz
// values — the population both codecs must agree on. Kinds are grouped
// the way the communicator's buffers produce them (runs of requests, a
// run of resolveds, the odd control message).
func genMessages(ts []int64, ks []uint32, es []uint8) []Message {
	var ms []Message
	t := int64(0)
	for i := range ts {
		// Near-monotone t, the request pattern the delta coding targets.
		step := ts[i] % 64
		if step < 0 {
			step = -step
		}
		t += step
		k := int64(ks[i%len(ks)])
		e := int(es[i%len(es)]) % 16
		switch i % 10 {
		case 0, 1, 2, 3:
			ms = append(ms, Request(t, e, k, e%4))
		case 4, 5:
			ms = append(ms, Resolved(t, e, k))
		case 6:
			ms = append(ms, Done(int(k%768)))
		case 7:
			ms = append(ms, Publish(t, e, k))
		case 8:
			ms = append(ms, Fence(int(k%768)))
		default:
			ms = append(ms, Coll(int(k%768), k%5, int64(ks[i%len(ks)])))
		}
	}
	return ms
}

// Property: v1 and v2 frames of the same batch decode to identical
// messages under the one DecodeBatch entry point — the cross-version
// compatibility contract that lets mixed-version clusters interoperate.
func TestCodecCrossCompatProperty(t *testing.T) {
	f := func(ts []int64, ks []uint32, es []uint8) bool {
		if len(ts) == 0 || len(ks) == 0 || len(es) == 0 {
			return true
		}
		ms := genMessages(ts, ks, es)
		v1, err1 := DecodeBatch(nil, EncodeBatch(ms))
		v2, err2 := DecodeBatch(nil, EncodeBatchV2(ms))
		if err1 != nil || err2 != nil || len(v1) != len(ms) || len(v2) != len(ms) {
			return false
		}
		for i := range ms {
			if v1[i] != ms[i] || v2[i] != ms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The compact codec must actually compress: a buffer's worth of typical
// requests (near-monotone t, node-scale k) has to come out at least 2x
// smaller than the fixed-width encoding.
func TestCompactFrameAtLeastHalvesRequests(t *testing.T) {
	var ms []Message
	tt := int64(500_000)
	for i := 0; i < 256; i++ {
		tt += int64(i % 3)
		ms = append(ms, Request(tt, i%4, tt/2, i%4))
	}
	v1, v2 := len(EncodeBatch(ms)), len(EncodeBatchV2(ms))
	if v2*2 > v1 {
		t.Fatalf("compact frame %d bytes, fixed-width %d: reduction below 2x", v2, v1)
	}
}

func TestCompactBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(nil, EncodeBatchV2(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty compact batch: %v, %v", got, err)
	}
}

func TestCompactBatchRejectsCorruption(t *testing.T) {
	frame := EncodeBatchV2([]Message{Request(100, 1, 50, 2), Resolved(7, 0, 3)})
	if _, err := DecodeBatch(nil, frame[:len(frame)-1]); err == nil {
		t.Error("truncated compact frame accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[1] = 99 // group kind byte
	if _, err := DecodeBatch(nil, bad); err == nil {
		t.Error("bad group kind accepted")
	}
	// A group count far beyond the frame's bytes must be rejected before
	// any decoding work.
	huge := []byte{FrameV2Magic, byte(KindStop), 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeBatch(nil, huge); err == nil {
		t.Error("oversized group count accepted")
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	m := Request(123456789, 3, 987654321, 7)
	buf := make([]byte, 0, EncodedSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	frame := AppendEncode(nil, Request(123456789, 3, 987654321, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
