// Package msg defines the wire protocol of the parallel generator: the
// request/resolved messages of Algorithms 3.1 and 3.2, the control
// messages of the termination protocol, and a compact fixed-width binary
// codec with batch framing so buffered sends travel as a single transport
// frame (the paper's "message buffering", Section 3.5.1).
package msg

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Kind discriminates message types.
type Kind uint8

const (
	// KindRequest asks the owner of node K for F_K(L), on behalf of
	// slot (T, E): Algorithm 3.2 line 14.
	KindRequest Kind = iota + 1
	// KindResolved answers a request: F_K(L) = V for slot (T, E):
	// Algorithm 3.2 line 18.
	KindResolved
	// KindDone tells the coordinator that the sender rank (in T) has
	// resolved all of its local slots.
	KindDone
	// KindStop broadcasts global termination from the coordinator.
	KindStop
	// KindColl carries a collective-operation step (internal/coll):
	// T = sender rank, K = operation tag, V = payload.
	KindColl
	// KindCkpt carries a checkpoint-epoch protocol step (internal/core's
	// consistent-cut machinery): T = sender rank, E = CkptOp, L = probe
	// round, K/V = op-dependent payloads (epoch number, or the sender's
	// sent/received data-message counters).
	KindCkpt
	// KindPublish replicates a freshly resolved hub-prefix slot to peer
	// ranks: F_T(E) = V. Application is idempotent (slots are write-once),
	// so duplicated publishes are harmless.
	KindPublish
	// KindFence marks the end of the sender rank's (in T) publish stream:
	// once a rank has received a fence from every peer, no further
	// publishes can arrive and the channel is quiet for post-run
	// collectives.
	KindFence
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResolved:
		return "resolved"
	case KindDone:
		return "done"
	case KindStop:
		return "stop"
	case KindColl:
		return "coll"
	case KindCkpt:
		return "ckpt"
	case KindPublish:
		return "publish"
	case KindFence:
		return "fence"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CkptOp identifies the checkpoint-protocol step a KindCkpt message
// carries in its E field.
type CkptOp uint16

const (
	// CkptBegin (rank 0 -> all) opens epoch K: pause generation, keep
	// serving the resolution cascade, report when locally quiescent.
	CkptBegin CkptOp = 1 + iota
	// CkptReport (any -> rank 0) is the sender's round-L quiescence
	// report: K = data messages sent, V = data messages received.
	CkptReport
	// CkptProbe (rank 0 -> all) starts counter round L: report again
	// when locally quiescent.
	CkptProbe
	// CkptCut (rank 0 -> all, itself included) declares global
	// quiescence for epoch K: capture the snapshot, then resume.
	CkptCut
	// CkptVote (any -> rank 0) is the sender's asynchronous commit vote
	// for epoch K (V = 1 captured, 0 failed), sent at its cut just
	// before generation resumes. Rank 0 tallies votes off the pause
	// path; per-destination FIFO ordering guarantees a rank's vote for
	// epoch K precedes anything it sends about epoch K+1.
	CkptVote
	// CkptAbandon (rank 0 -> others) declares epoch K abandoned: some
	// rank voted 0 (capture or latched background-write failure).
	// Receivers uncount the epoch, delete their snapshot file, and
	// force their next epoch to be a full snapshot.
	CkptAbandon
)

// Message is one protocol message. Field use by kind:
//
//	request:  T, E = requesting slot; K, L = queried slot
//	resolved: T, E = requesting slot; V = resolved attachment
//	publish:  T, E = published slot (node, index); V = resolved attachment
//	done:     T = reporting rank
//	fence:    T = reporting rank
//	stop:     no fields
type Message struct {
	Kind Kind
	T    int64
	K    int64
	V    int64
	E    uint16
	L    uint16
}

// Request constructs a request message.
func Request(t int64, e int, k int64, l int) Message {
	return Message{Kind: KindRequest, T: t, E: uint16(e), K: k, L: uint16(l)}
}

// Resolved constructs a resolved message.
func Resolved(t int64, e int, v int64) Message {
	return Message{Kind: KindResolved, T: t, E: uint16(e), V: v}
}

// Done constructs a done message for the reporting rank.
func Done(rank int) Message {
	return Message{Kind: KindDone, T: int64(rank)}
}

// Stop constructs a stop broadcast.
func Stop() Message {
	return Message{Kind: KindStop}
}

// Coll constructs a collective-operation message from the given rank
// with an operation tag and payload.
func Coll(rank int, tag int64, payload int64) Message {
	return Message{Kind: KindColl, T: int64(rank), K: tag, V: payload}
}

// Ckpt constructs a checkpoint-protocol message from the given rank:
// op selects the step, round the counter round (reports and probes),
// and k/v carry the op's payloads.
func Ckpt(rank int, op CkptOp, round int, k, v int64) Message {
	return Message{Kind: KindCkpt, T: int64(rank), E: uint16(op), L: uint16(round), K: k, V: v}
}

// Publish constructs a hub-prefix publish message: F_k(l) = v.
func Publish(k int64, l int, v int64) Message {
	return Message{Kind: KindPublish, T: k, E: uint16(l), V: v}
}

// Fence constructs a publish-stream fence for the reporting rank.
func Fence(rank int) Message {
	return Message{Kind: KindFence, T: int64(rank)}
}

// EncodedSize is the fixed encoded size of one message in bytes:
// kind(1) + T(8) + K(8) + V(8) + E(2) + L(2).
const EncodedSize = 1 + 8 + 8 + 8 + 2 + 2

// AppendEncode appends the fixed-width encoding of m to dst and returns
// the extended slice.
func AppendEncode(dst []byte, m Message) []byte {
	var buf [EncodedSize]byte
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(m.T))
	binary.LittleEndian.PutUint64(buf[9:], uint64(m.K))
	binary.LittleEndian.PutUint64(buf[17:], uint64(m.V))
	binary.LittleEndian.PutUint16(buf[25:], m.E)
	binary.LittleEndian.PutUint16(buf[27:], m.L)
	return append(dst, buf[:]...)
}

// Decode decodes one message from the front of b, returning the message
// and the remaining bytes.
func Decode(b []byte) (Message, []byte, error) {
	if len(b) < EncodedSize {
		return Message{}, b, fmt.Errorf("msg: short buffer (%d bytes)", len(b))
	}
	m := Message{
		Kind: Kind(b[0]),
		T:    int64(binary.LittleEndian.Uint64(b[1:])),
		K:    int64(binary.LittleEndian.Uint64(b[9:])),
		V:    int64(binary.LittleEndian.Uint64(b[17:])),
		E:    binary.LittleEndian.Uint16(b[25:]),
		L:    binary.LittleEndian.Uint16(b[27:]),
	}
	if m.Kind < KindRequest || m.Kind > KindFence {
		return Message{}, b, fmt.Errorf("msg: bad kind %d", b[0])
	}
	if !deadFieldsZero(m) {
		return Message{}, b, fmt.Errorf("msg: %v message with nonzero unused fields", m.Kind)
	}
	return m, b[EncodedSize:], nil
}

// deadFieldsZero reports whether every field m's kind does not carry is
// zero. The compact format drops those fields outright and the
// fixed-width format must carry zeros for them; a nonzero dead field
// therefore means a corrupt or forged frame, and accepting it would
// make the two codecs disagree about the same message.
func deadFieldsZero(m Message) bool {
	switch m.Kind {
	case KindRequest:
		return m.V == 0
	case KindResolved, KindPublish:
		return m.K == 0 && m.L == 0
	case KindColl:
		return m.E == 0 && m.L == 0
	case KindDone, KindStop, KindFence:
		// Both carry only T on the wire (T is zero for stop as built,
		// but the delta coding transports whatever it holds).
		return m.K == 0 && m.V == 0 && m.E == 0 && m.L == 0
	default: // ckpt uses every field
		return true
	}
}

// EncodeBatch encodes a slice of messages as one v1 (fixed-width) frame.
func EncodeBatch(ms []Message) []byte {
	out := make([]byte, 0, len(ms)*EncodedSize)
	for _, m := range ms {
		out = AppendEncode(out, m)
	}
	return out
}

// FrameV2Magic is the version byte that opens a compact (v2) frame. No
// message Kind uses this value, and v1 frames always start with a Kind
// byte, so the two formats are distinguished by their first byte and old
// frames keep decoding under the new decoder.
const FrameV2Magic = 0xC2

// Compact (v2) frame layout, after the magic byte: a sequence of kind
// groups, each
//
//	kind(1) | uvarint(count) | count × fields
//
// where the fields per message are, by kind:
//
//	request:  varint(ΔT) varint(K)  uvarint(E) uvarint(L)
//	resolved: varint(ΔT) varint(V)  uvarint(E)
//	publish:  varint(ΔT) varint(V)  uvarint(E)
//	coll:     varint(ΔT) varint(K)  varint(V)
//	ckpt:     varint(ΔT) uvarint(E) uvarint(L) varint(K) varint(V)
//	done:     varint(ΔT)
//	stop:     varint(ΔT)
//	fence:    varint(ΔT)
//
// ΔT is the difference from the previous message's T within the group
// (starting from 0). Buffered requests carry near-monotone t values, so
// ΔT is usually one zigzag-varint byte and a request shrinks from the
// fixed 29 bytes to ~6-10. Fields a kind does not carry (V for requests,
// K and L for resolved, everything but T for done/stop) are dropped on
// the wire and decode as zero — exactly the values the constructors set.

// FrameV3Magic is the version byte that opens a v3 frame. v3 is v2
// with one change: publish groups are slot-delta coded. A publish
// identifies an attachment slot (T, E) with E < x; v3 packs the two
// into one integer slotcode = T<<s | E (s sized to the group's widest
// E, carried in a header byte) and delta-codes consecutive slotcodes.
// Owners publish a node's x slots back-to-back, so the slot delta is
// usually exactly 1 — one byte where v2 spent ΔT + E per message. A
// shift byte of V3ShiftFallback marks a group whose T values cannot be
// shifted without overflow (never real traffic; arbitrary messages
// from tests or forged frames): its fields use the v2 layout.
const FrameV3Magic = 0xC3

// V3ShiftFallback is the publish-group shift sentinel selecting the v2
// field layout (see FrameV3Magic).
const V3ShiftFallback = 0xFF

// publishShift returns the slotcode shift for a v3 publish group: the
// bit width of the widest E, or V3ShiftFallback when some T<<s would
// not round-trip through an int64.
func publishShift(ms []Message) int {
	s := 0
	for _, m := range ms {
		if w := bits.Len16(m.E); w > s {
			s = w
		}
	}
	for _, m := range ms {
		if m.T > maxInt64>>s || m.T < minInt64>>s {
			return V3ShiftFallback
		}
	}
	return s
}

const (
	maxInt64 = int64(1<<63 - 1)
	minInt64 = -1 << 63
)

// AppendEncodeBatchV2 appends the compact (v2) encoding of ms to dst and
// returns the extended slice. Adjacent messages of equal kind share one
// group header.
func AppendEncodeBatchV2(dst []byte, ms []Message) []byte {
	return appendEncodeBatch(dst, ms, false)
}

// AppendEncodeBatchV3 appends the v3 encoding of ms to dst and returns
// the extended slice: the v2 format with slot-delta-coded publish
// groups (see FrameV3Magic).
func AppendEncodeBatchV3(dst []byte, ms []Message) []byte {
	return appendEncodeBatch(dst, ms, true)
}

func appendEncodeBatch(dst []byte, ms []Message, v3 bool) []byte {
	if v3 {
		dst = append(dst, FrameV3Magic)
	} else {
		dst = append(dst, FrameV2Magic)
	}
	for i := 0; i < len(ms); {
		kind := ms[i].Kind
		j := i + 1
		for j < len(ms) && ms[j].Kind == kind {
			j++
		}
		dst = append(dst, byte(kind))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		if v3 && kind == KindPublish {
			dst = appendPublishGroupV3(dst, ms[i:j])
			i = j
			continue
		}
		prevT := int64(0)
		for _, m := range ms[i:j] {
			dst = binary.AppendVarint(dst, m.T-prevT)
			prevT = m.T
			switch kind {
			case KindRequest:
				dst = binary.AppendVarint(dst, m.K)
				dst = binary.AppendUvarint(dst, uint64(m.E))
				dst = binary.AppendUvarint(dst, uint64(m.L))
			case KindResolved, KindPublish:
				dst = binary.AppendVarint(dst, m.V)
				dst = binary.AppendUvarint(dst, uint64(m.E))
			case KindColl:
				dst = binary.AppendVarint(dst, m.K)
				dst = binary.AppendVarint(dst, m.V)
			case KindCkpt:
				dst = binary.AppendUvarint(dst, uint64(m.E))
				dst = binary.AppendUvarint(dst, uint64(m.L))
				dst = binary.AppendVarint(dst, m.K)
				dst = binary.AppendVarint(dst, m.V)
			}
		}
		i = j
	}
	return dst
}

// appendPublishGroupV3 encodes one v3 publish group (after the kind and
// count): shift byte, then per message the slotcode delta and V.
func appendPublishGroupV3(dst []byte, ms []Message) []byte {
	s := publishShift(ms)
	dst = append(dst, byte(s))
	if s == V3ShiftFallback {
		prevT := int64(0)
		for _, m := range ms {
			dst = binary.AppendVarint(dst, m.T-prevT)
			prevT = m.T
			dst = binary.AppendVarint(dst, m.V)
			dst = binary.AppendUvarint(dst, uint64(m.E))
		}
		return dst
	}
	prev := int64(0)
	for _, m := range ms {
		code := m.T<<s | int64(m.E)
		dst = binary.AppendVarint(dst, code-prev)
		prev = code
		dst = binary.AppendVarint(dst, m.V)
	}
	return dst
}

// EncodeBatchV2 encodes a slice of messages as one compact frame.
func EncodeBatchV2(ms []Message) []byte {
	return AppendEncodeBatchV2(make([]byte, 0, 1+len(ms)*10), ms)
}

// EncodeBatchV3 encodes a slice of messages as one v3 frame.
func EncodeBatchV3(ms []Message) []byte {
	return AppendEncodeBatchV3(make([]byte, 0, 1+len(ms)*10), ms)
}

// DecodeBatch decodes a frame in any format — v3 or compact v2 (magic
// first byte) or fixed-width (v1) — appending to dst and returning it.
func DecodeBatch(dst []Message, frame []byte) ([]Message, error) {
	if len(frame) > 0 && frame[0] == FrameV3Magic {
		return decodeBatchCompact(dst, frame[1:], true)
	}
	if len(frame) > 0 && frame[0] == FrameV2Magic {
		return decodeBatchCompact(dst, frame[1:], false)
	}
	if len(frame)%EncodedSize != 0 {
		return dst, fmt.Errorf("msg: frame size %d not a multiple of %d", len(frame), EncodedSize)
	}
	for len(frame) > 0 {
		m, rest, err := Decode(frame)
		if err != nil {
			return dst, err
		}
		dst = append(dst, m)
		frame = rest
	}
	return dst, nil
}

func decodeBatchCompact(dst []Message, b []byte, v3 bool) ([]Message, error) {
	for len(b) > 0 {
		kind := Kind(b[0])
		if kind < KindRequest || kind > KindFence {
			return dst, fmt.Errorf("msg: bad group kind %d", b[0])
		}
		b = b[1:]
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return dst, fmt.Errorf("msg: bad group count")
		}
		b = b[n:]
		// Every message costs at least one byte (the ΔT varint), so a
		// count beyond the remaining bytes is corrupt — reject before
		// growing dst.
		if count > uint64(len(b)) {
			return dst, fmt.Errorf("msg: group count %d exceeds frame", count)
		}
		if v3 && kind == KindPublish {
			var err error
			if dst, b, err = decodePublishGroupV3(dst, b, count); err != nil {
				return dst, err
			}
			continue
		}
		prevT := int64(0)
		for i := uint64(0); i < count; i++ {
			m := Message{Kind: kind}
			var ok bool
			var d int64
			if d, b, ok = takeVarint(b); !ok {
				return dst, fmt.Errorf("msg: truncated T")
			}
			m.T = prevT + d
			prevT = m.T
			switch kind {
			case KindRequest:
				if m.K, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated K")
				}
				if m.E, b, ok = takeUint16(b); !ok {
					return dst, fmt.Errorf("msg: truncated E")
				}
				if m.L, b, ok = takeUint16(b); !ok {
					return dst, fmt.Errorf("msg: truncated L")
				}
			case KindResolved, KindPublish:
				if m.V, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated V")
				}
				if m.E, b, ok = takeUint16(b); !ok {
					return dst, fmt.Errorf("msg: truncated E")
				}
			case KindColl:
				if m.K, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated K")
				}
				if m.V, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated V")
				}
			case KindCkpt:
				if m.E, b, ok = takeUint16(b); !ok {
					return dst, fmt.Errorf("msg: truncated E")
				}
				if m.L, b, ok = takeUint16(b); !ok {
					return dst, fmt.Errorf("msg: truncated L")
				}
				if m.K, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated K")
				}
				if m.V, b, ok = takeVarint(b); !ok {
					return dst, fmt.Errorf("msg: truncated V")
				}
			}
			dst = append(dst, m)
		}
	}
	return dst, nil
}

// decodePublishGroupV3 decodes one v3 publish group body (after the
// kind and count).
func decodePublishGroupV3(dst []Message, b []byte, count uint64) ([]Message, []byte, error) {
	if len(b) == 0 {
		return dst, b, fmt.Errorf("msg: truncated publish shift")
	}
	s := int(b[0])
	b = b[1:]
	if s == V3ShiftFallback {
		prevT := int64(0)
		for i := uint64(0); i < count; i++ {
			m := Message{Kind: KindPublish}
			var ok bool
			var d int64
			if d, b, ok = takeVarint(b); !ok {
				return dst, b, fmt.Errorf("msg: truncated T")
			}
			m.T = prevT + d
			prevT = m.T
			if m.V, b, ok = takeVarint(b); !ok {
				return dst, b, fmt.Errorf("msg: truncated V")
			}
			if m.E, b, ok = takeUint16(b); !ok {
				return dst, b, fmt.Errorf("msg: truncated E")
			}
			dst = append(dst, m)
		}
		return dst, b, nil
	}
	if s > 16 {
		return dst, b, fmt.Errorf("msg: bad publish shift %d", s)
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		m := Message{Kind: KindPublish}
		var ok bool
		var d int64
		if d, b, ok = takeVarint(b); !ok {
			return dst, b, fmt.Errorf("msg: truncated slotcode")
		}
		code := prev + d
		prev = code
		m.T = code >> s
		m.E = uint16(code & (1<<s - 1))
		if m.V, b, ok = takeVarint(b); !ok {
			return dst, b, fmt.Errorf("msg: truncated V")
		}
		dst = append(dst, m)
	}
	return dst, b, nil
}

func takeVarint(b []byte) (int64, []byte, bool) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

func takeUint16(b []byte) (uint16, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > 0xffff {
		return 0, b, false
	}
	return uint16(v), b[n:], true
}
