// Package msg defines the wire protocol of the parallel generator: the
// request/resolved messages of Algorithms 3.1 and 3.2, the control
// messages of the termination protocol, and a compact fixed-width binary
// codec with batch framing so buffered sends travel as a single transport
// frame (the paper's "message buffering", Section 3.5.1).
package msg

import (
	"encoding/binary"
	"fmt"
)

// Kind discriminates message types.
type Kind uint8

const (
	// KindRequest asks the owner of node K for F_K(L), on behalf of
	// slot (T, E): Algorithm 3.2 line 14.
	KindRequest Kind = iota + 1
	// KindResolved answers a request: F_K(L) = V for slot (T, E):
	// Algorithm 3.2 line 18.
	KindResolved
	// KindDone tells the coordinator that the sender rank (in T) has
	// resolved all of its local slots.
	KindDone
	// KindStop broadcasts global termination from the coordinator.
	KindStop
	// KindColl carries a collective-operation step (internal/coll):
	// T = sender rank, K = operation tag, V = payload.
	KindColl
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResolved:
		return "resolved"
	case KindDone:
		return "done"
	case KindStop:
		return "stop"
	case KindColl:
		return "coll"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is one protocol message. Field use by kind:
//
//	request:  T, E = requesting slot; K, L = queried slot
//	resolved: T, E = requesting slot; V = resolved attachment
//	done:     T = reporting rank
//	stop:     no fields
type Message struct {
	Kind Kind
	T    int64
	K    int64
	V    int64
	E    uint16
	L    uint16
}

// Request constructs a request message.
func Request(t int64, e int, k int64, l int) Message {
	return Message{Kind: KindRequest, T: t, E: uint16(e), K: k, L: uint16(l)}
}

// Resolved constructs a resolved message.
func Resolved(t int64, e int, v int64) Message {
	return Message{Kind: KindResolved, T: t, E: uint16(e), V: v}
}

// Done constructs a done message for the reporting rank.
func Done(rank int) Message {
	return Message{Kind: KindDone, T: int64(rank)}
}

// Stop constructs a stop broadcast.
func Stop() Message {
	return Message{Kind: KindStop}
}

// Coll constructs a collective-operation message from the given rank
// with an operation tag and payload.
func Coll(rank int, tag int64, payload int64) Message {
	return Message{Kind: KindColl, T: int64(rank), K: tag, V: payload}
}

// EncodedSize is the fixed encoded size of one message in bytes:
// kind(1) + T(8) + K(8) + V(8) + E(2) + L(2).
const EncodedSize = 1 + 8 + 8 + 8 + 2 + 2

// AppendEncode appends the fixed-width encoding of m to dst and returns
// the extended slice.
func AppendEncode(dst []byte, m Message) []byte {
	var buf [EncodedSize]byte
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(m.T))
	binary.LittleEndian.PutUint64(buf[9:], uint64(m.K))
	binary.LittleEndian.PutUint64(buf[17:], uint64(m.V))
	binary.LittleEndian.PutUint16(buf[25:], m.E)
	binary.LittleEndian.PutUint16(buf[27:], m.L)
	return append(dst, buf[:]...)
}

// Decode decodes one message from the front of b, returning the message
// and the remaining bytes.
func Decode(b []byte) (Message, []byte, error) {
	if len(b) < EncodedSize {
		return Message{}, b, fmt.Errorf("msg: short buffer (%d bytes)", len(b))
	}
	m := Message{
		Kind: Kind(b[0]),
		T:    int64(binary.LittleEndian.Uint64(b[1:])),
		K:    int64(binary.LittleEndian.Uint64(b[9:])),
		V:    int64(binary.LittleEndian.Uint64(b[17:])),
		E:    binary.LittleEndian.Uint16(b[25:]),
		L:    binary.LittleEndian.Uint16(b[27:]),
	}
	if m.Kind < KindRequest || m.Kind > KindColl {
		return Message{}, b, fmt.Errorf("msg: bad kind %d", b[0])
	}
	return m, b[EncodedSize:], nil
}

// EncodeBatch encodes a slice of messages as one frame.
func EncodeBatch(ms []Message) []byte {
	out := make([]byte, 0, len(ms)*EncodedSize)
	for _, m := range ms {
		out = AppendEncode(out, m)
	}
	return out
}

// DecodeBatch decodes a frame produced by EncodeBatch (or by repeated
// AppendEncode calls), appending to dst and returning it.
func DecodeBatch(dst []Message, frame []byte) ([]Message, error) {
	if len(frame)%EncodedSize != 0 {
		return dst, fmt.Errorf("msg: frame size %d not a multiple of %d", len(frame), EncodedSize)
	}
	for len(frame) > 0 {
		m, rest, err := Decode(frame)
		if err != nil {
			return dst, err
		}
		dst = append(dst, m)
		frame = rest
	}
	return dst, nil
}
