package msg

import (
	"testing"
	"testing/quick"
)

// Property: v3 frames of any constructor-shaped batch decode to the
// identical messages as v1 and v2 under the one DecodeBatch entry point
// — the cross-version contract that lets mixed-version clusters
// interoperate while only the encoder side moves to v3.
func TestV3CrossCompatProperty(t *testing.T) {
	f := func(ts []int64, ks []uint32, es []uint8) bool {
		if len(ts) == 0 || len(ks) == 0 || len(es) == 0 {
			return true
		}
		ms := genMessages(ts, ks, es)
		v2, err2 := DecodeBatch(nil, EncodeBatchV2(ms))
		v3, err3 := DecodeBatch(nil, EncodeBatchV3(ms))
		if err2 != nil || err3 != nil || len(v2) != len(ms) || len(v3) != len(ms) {
			return false
		}
		for i := range ms {
			if v2[i] != ms[i] || v3[i] != ms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The slot-delta coding must actually pay: a node-completion publish
// batch (x adjacent slots per node, consecutive hub nodes — the exact
// pattern resolveLocal emits) has to come out well under the v2 size,
// where every publish repeats the edge field and breaks the t delta.
func TestV3PublishBatchSmaller(t *testing.T) {
	const x = 4
	var ms []Message
	for node := int64(100_000); node < 100_256; node++ {
		for e := 0; e < x; e++ {
			ms = append(ms, Publish(node, e, node/2+int64(e)))
		}
	}
	v2, v3 := len(EncodeBatchV2(ms)), len(EncodeBatchV3(ms))
	if v3*20 > v2*17 {
		t.Fatalf("v3 publish batch %d bytes, v2 %d: reduction below 15%%", v3, v2)
	}
}

// Publishes whose t would overflow int64 when shifted must take the
// per-group fallback (shift byte 0xFF, v2-style fields) and still round
// trip exactly, mixed groups included.
func TestV3ShiftFallbackRoundTrip(t *testing.T) {
	batches := [][]Message{
		{Publish(1<<62, 3, 9), Publish(1<<62+1, 0, 2)},
		{Publish(5, 15, -1), Publish(1<<60, 2, 7), Publish(6, 0, 3)},
		{Publish(0, 0, 0)},
		{Request(10, 1, 5, 0), Publish(7, 2, 3), Publish(8, 0, 1), Resolved(10, 1, 4)},
	}
	for _, ms := range batches {
		got, err := DecodeBatch(nil, EncodeBatchV3(ms))
		if err != nil {
			t.Fatalf("batch %v rejected: %v", ms, err)
		}
		if len(got) != len(ms) {
			t.Fatalf("decoded %d messages, want %d", len(got), len(ms))
		}
		for i := range ms {
			if got[i] != ms[i] {
				t.Errorf("message %d: %+v -> %+v", i, ms[i], got[i])
			}
		}
	}
}

// Corrupt v3 frames must error, never panic: truncation anywhere and an
// out-of-range shift byte are the v3-specific failure shapes.
func TestV3RejectsCorruption(t *testing.T) {
	frame := EncodeBatchV3([]Message{Publish(9, 0, 4), Publish(9, 1, 6), Request(3, 0, 2, 1)})
	for cut := 1; cut < len(frame); cut++ {
		if _, err := DecodeBatch(nil, frame[:cut]); err == nil {
			// A prefix that happens to end on a group boundary is a
			// valid shorter frame; only mid-group cuts must error. The
			// real requirement is no panic, which reaching here proves.
			continue
		}
	}
	// Shift byte beyond the 16-bit edge field: rejected before use.
	bad := []byte{FrameV3Magic, byte(KindPublish), 1, 17, 2, 8}
	if _, err := DecodeBatch(nil, bad); err == nil {
		t.Error("shift byte 17 accepted")
	}
}
