package msg

import (
	"reflect"
	"testing"
)

func TestCkptConstructor(t *testing.T) {
	m := Ckpt(3, CkptReport, 7, 100, 95)
	want := Message{Kind: KindCkpt, T: 3, E: uint16(CkptReport), L: 7, K: 100, V: 95}
	if m != want {
		t.Fatalf("Ckpt = %+v, want %+v", m, want)
	}
}

// Checkpoint messages must survive both codecs alongside every other
// kind — they share frames with data traffic on the wire.
func TestCkptCodecRoundTrip(t *testing.T) {
	batch := []Message{
		Ckpt(0, CkptBegin, 1, 5, 0),
		Request(1000, 2, 77, 1),
		Ckpt(2, CkptReport, 12, 1<<40, -(1 << 40)),
		Resolved(1000, 2, 55),
		Ckpt(0, CkptProbe, 13, 5, 0),
		Done(3),
		Ckpt(0, CkptCut, 13, 5, 0),
		Coll(1, 9, -42),
		Stop(),
	}
	for name, frame := range map[string][]byte{
		"v1": EncodeBatch(batch),
		"v2": EncodeBatchV2(batch),
	} {
		got, err := DecodeBatch(nil, frame)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, batch) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", name, got, batch)
		}
	}
}

func TestCkptSingleCodecRoundTrip(t *testing.T) {
	m := Ckpt(5, CkptCut, 999, 1234567, 7654321)
	b := AppendEncode(nil, m)
	got, rest, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got != m {
		t.Fatalf("Decode = %+v (rest %d bytes), want %+v", got, len(rest), m)
	}
}
