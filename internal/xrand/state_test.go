package xrand

import "testing"

// State/SetState must capture and restore the stream exactly: a
// checkpoint stores each suspended node's RNG position, and a resumed
// run must draw the identical continuation (possibly in a different
// Rand instance).
func TestStateRoundTrip(t *testing.T) {
	r := NewStream(42, 1337)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	saved := r.State()
	var want [50]uint64
	for i := range want {
		want[i] = r.Uint64()
	}

	// Restore into the same instance.
	r.SetState(saved)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("same instance: draw %d = %d, want %d", i, got, want[i])
		}
	}

	// Restore into a fresh instance seeded differently.
	r2 := New(999)
	r2.SetState(saved)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("fresh instance: draw %d = %d, want %d", i, got, want[i])
		}
	}

	// State must be a copy, not an alias: drawing after State() must not
	// mutate the saved value.
	s1 := r.State()
	r.Uint64()
	if r.State() == s1 {
		t.Fatal("drawing did not advance the state")
	}
	r.SetState(s1)
	if r.State() != s1 {
		t.Fatal("SetState did not restore the exact state")
	}
}
