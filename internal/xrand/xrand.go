// Package xrand provides fast, reproducible pseudo-random number generation
// for the parallel preferential-attachment generator.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, the combination recommended by the xoshiro authors. Each
// processor rank derives an independent stream from a global seed and its
// rank, so distributed runs are reproducible for a fixed (seed, ranks)
// pair regardless of message interleaving.
//
// Bounded integers use Lemire's nearly-divisionless method, which is
// unbiased and avoids the modulo bias of the naive approach — important
// here because the copy model draws Theta(m) bounded uniforms and any bias
// would skew the attachment distribution.
package xrand

import "math/bits"

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used for seeding and for deriving per-stream seeds; it is a
// bijective mixer, so distinct inputs yield distinct outputs.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New or NewStream so the state is never all-zero.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns a generator for logical stream id derived from seed.
// Streams with distinct ids are seeded from well-separated splitmix64
// outputs, giving statistically independent sequences.
func NewStream(seed, id uint64) *Rand {
	r := &Rand{}
	r.SeedStream(seed, id)
	return r
}

// SeedStream re-seeds r in place to the (seed, id) stream — equivalent
// to NewStream(seed, id) without allocating. The generator's hot loops
// derive one stream per node; reusing a single Rand keeps that
// allocation-free.
func (r *Rand) SeedStream(seed, id uint64) {
	sm := seed
	// Mix the id through the seed so (seed, id) pairs map to distinct
	// splitmix64 trajectories rather than shifted copies of one another.
	sm ^= SplitMix64(&id) // id is advanced; its mixed value perturbs sm
	r.Seed(sm)
}

// Seed resets the generator state from seed via splitmix64.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// splitmix64 output is never all-zero across four draws for any seed,
	// but guard anyway: an all-zero xoshiro state is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// State returns the generator's raw xoshiro256** state. Together with
// SetState it lets a checkpoint serialize a suspended node's stream
// position and resume it bit-exactly after a restart.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. The caller
// must never pass an all-zero state (State of a validly seeded generator
// never returns one).
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Implementation is Lemire's nearly-divisionless unbiased method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // == (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Int64Range returns a uniform value in [lo, hi] inclusive.
// It panics if lo > hi.
func (r *Rand) Int64Range(lo, hi int64) int64 {
	if lo > hi {
		panic("xrand: Int64Range with lo > hi")
	}
	return lo + int64(r.Uint64n(uint64(hi-lo)+1))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := int(r.Uint64n(uint64(i + 1)))
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// jumpPoly is the xoshiro256** jump polynomial; Jump advances the state by
// 2^128 steps, yielding 2^128 non-overlapping subsequences.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator 2^128 steps. Calling Jump k times on copies
// of one generator yields k non-overlapping streams.
func (r *Rand) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}
