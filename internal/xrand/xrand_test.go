package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// Known-answer vector for splitmix64 with seed 0 (from the reference
// implementation by Sebastiano Vigna).
func TestSplitMix64KnownVector(t *testing.T) {
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

// xoshiro256** with state {1,2,3,4}: first output is
// rotl(2*5, 7) * 9 = 1280*9 = 11520, second is 0 (s1 becomes 0 after the
// first state transition). Verified against the reference C code.
func TestXoshiroKnownVector(t *testing.T) {
	r := &Rand{s: [4]uint64{1, 2, 3, 4}}
	if got := r.Uint64(); got != 11520 {
		t.Fatalf("first output = %d, want 11520", got)
	}
	if got := r.Uint64(); got != 0 {
		t.Fatalf("second output = %d, want 0", got)
	}
}

func TestSeedDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Streams with different ids from the same seed must differ, and the
	// same (seed, id) pair must reproduce.
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	c := NewStream(7, 0)
	diverged := false
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("same (seed,id) diverged at %d", i)
		}
		if av != bv {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("streams 0 and 1 produced identical sequences")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int64{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Int64n(%d) did not panic", n)
				}
			}()
			New(1).Int64n(n)
		}()
	}
}

func TestInt64RangeInclusive(t *testing.T) {
	r := New(9)
	lo, hi := int64(-3), int64(3)
	seen := make(map[int64]int)
	for i := 0; i < 7000; i++ {
		v := r.Int64Range(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Int64Range(%d,%d) = %d out of range", lo, hi, v)
		}
		seen[v]++
	}
	for v := lo; v <= hi; v++ {
		if seen[v] == 0 {
			t.Fatalf("value %d never produced", v)
		}
	}
}

func TestInt64RangeSingleton(t *testing.T) {
	r := New(5)
	for i := 0; i < 10; i++ {
		if v := r.Int64Range(4, 4); v != 4 {
			t.Fatalf("Int64Range(4,4) = %d", v)
		}
	}
}

func TestInt64RangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64Range(2,1) did not panic")
		}
	}()
	New(1).Int64Range(2, 1)
}

// Uint64n must be unbiased: for a small modulus, bucket frequencies should
// pass a chi-square test at a generous threshold.
func TestUint64nUniformChiSquare(t *testing.T) {
	r := New(1234)
	const n = 10
	const trials = 200000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(trials) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; critical value at alpha=0.001 is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square = %f exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(77)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(55)
	const trials = 100000
	for _, p := range []float64{0.0, 0.25, 0.5, 0.9, 1.0} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%f) frequency = %f", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, len(s))
	for _, v := range s {
		if seen[v] {
			t.Fatalf("shuffle produced duplicate: %v", s)
		}
		seen[v] = true
	}
}

// Fisher-Yates via Shuffle must be uniform over permutations of 3 elements.
func TestShuffleUniformity(t *testing.T) {
	r := New(17)
	counts := make(map[[3]int]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		s := [3]int{0, 1, 2}
		r.Shuffle(3, func(a, b int) { s[a], s[b] = s[b], s[a] })
		counts[s]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 permutations, got %d", len(counts))
	}
	expected := float64(trials) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.1 {
			t.Fatalf("permutation %v count %d deviates from %f", p, c, expected)
		}
	}
}

// Jump must move the generator to a far-removed point: the post-jump
// sequence must not overlap a long prefix of the original sequence.
func TestJumpProducesDisjointStream(t *testing.T) {
	base := New(99)
	jumped := New(99)
	jumped.Jump()

	prefix := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		prefix[base.Uint64()] = true
	}
	overlap := 0
	for i := 0; i < 4096; i++ {
		if prefix[jumped.Uint64()] {
			overlap++
		}
	}
	// Random 64-bit collisions among 4096-element sets are ~0.
	if overlap > 0 {
		t.Fatalf("jumped stream overlapped base prefix %d times", overlap)
	}
}

func TestSeedResetsState(t *testing.T) {
	r := New(21)
	first := make([]uint64, 32)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(21)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

// Property: Uint64n(n) < n for arbitrary non-zero n.
func TestUint64nPropertyInRange(t *testing.T) {
	r := New(31)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Int64Range stays within bounds for arbitrary ordered pairs.
func TestInt64RangeProperty(t *testing.T) {
	r := New(37)
	f := func(a, b int64) bool {
		// Avoid overflow in hi-lo by constraining magnitudes.
		a %= 1 << 40
		b %= 1 << 40
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		v := r.Int64Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(1000003)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
