package comm

import (
	"testing"

	"pagen/internal/msg"
	"pagen/internal/transport"
)

func pair(t *testing.T, cfg Config) (*Comm, *Comm) {
	t.Helper()
	g, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	return New(g.Endpoint(0), cfg), New(g.Endpoint(1), cfg)
}

func TestBufferingCoalesces(t *testing.T) {
	a, b := pair(t, Config{BufferCap: 4})
	for i := 0; i < 3; i++ {
		if err := a.Send(1, msg.Request(int64(i), 0, 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Below capacity: nothing on the wire yet.
	if got, err := b.Poll(); err != nil || got != nil {
		t.Fatalf("premature delivery: %v %v", got, err)
	}
	if a.Buffered(1) != 3 {
		t.Fatalf("Buffered = %d", a.Buffered(1))
	}
	// Fourth message hits capacity and auto-flushes.
	if err := a.Send(1, msg.Request(3, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	for i, m := range got {
		if m.T != int64(i) {
			t.Fatalf("order broken: %+v", got)
		}
	}
	// One frame carried all four.
	if c := a.Counters(); c.FramesSent != 1 || c.RequestsSent != 4 {
		t.Fatalf("counters = %+v", c)
	}
	if c := b.Counters(); c.FramesRecv != 1 || c.RequestsRecv != 4 {
		t.Fatalf("recv counters = %+v", c)
	}
}

func TestUnbufferedSendsEachFrame(t *testing.T) {
	a, b := pair(t, Config{BufferCap: 1})
	for i := 0; i < 5; i++ {
		if err := a.Send(1, msg.Resolved(int64(i), 0, 9)); err != nil {
			t.Fatal(err)
		}
	}
	if c := a.Counters(); c.FramesSent != 5 || c.ResolvedSent != 5 {
		t.Fatalf("counters = %+v", c)
	}
	got, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("Wait drained %d, want 5", len(got))
	}
}

func TestFlushAllAndExplicitFlush(t *testing.T) {
	a, b := pair(t, Config{BufferCap: 100})
	a.Send(1, msg.Request(1, 0, 2, 0))
	a.Send(0, msg.Done(0)) // self-send also buffered
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if a.Buffered(0) != 0 || a.Buffered(1) != 0 {
		t.Fatal("buffers not emptied")
	}
	if got, err := b.Wait(); err != nil || len(got) != 1 {
		t.Fatalf("peer got %v %v", got, err)
	}
	if got, err := a.Wait(); err != nil || len(got) != 1 || got[0].Kind != msg.KindDone {
		t.Fatalf("self got %v %v", got, err)
	}
	// Flushing empty buffers is a no-op.
	frames := a.Counters().FramesSent
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if a.Counters().FramesSent != frames {
		t.Fatal("empty flush sent a frame")
	}
}

func TestSendNowBypassesBuffer(t *testing.T) {
	a, b := pair(t, Config{BufferCap: 100})
	a.Send(1, msg.Request(7, 0, 1, 0)) // buffered ahead of the control msg
	if err := a.SendNow(1, msg.Stop()); err != nil {
		t.Fatal(err)
	}
	got, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Ordering preserved: request first, then stop, in one frame.
	if len(got) != 2 || got[0].Kind != msg.KindRequest || got[1].Kind != msg.KindStop {
		t.Fatalf("got %+v", got)
	}
}

func TestCountersByKind(t *testing.T) {
	a, b := pair(t, Config{BufferCap: 1})
	a.Send(1, msg.Request(1, 0, 1, 0))
	a.Send(1, msg.Resolved(1, 0, 1))
	a.Send(1, msg.Done(0))
	a.Send(1, msg.Stop())
	c := a.Counters()
	if c.RequestsSent != 1 || c.ResolvedSent != 1 || c.ControlSent != 2 {
		t.Fatalf("send counters = %+v", c)
	}
	if c.MessagesSent() != 4 {
		t.Fatalf("MessagesSent = %d", c.MessagesSent())
	}
	// Wait drains everything immediately available, so loop on the
	// message count rather than calling it once per frame.
	for got := 0; got < 4; {
		ms, err := b.Wait()
		if err != nil {
			t.Fatal(err)
		}
		got += len(ms)
	}
	cb := b.Counters()
	if cb.RequestsRecv != 1 || cb.ResolvedRecv != 1 || cb.ControlRecv != 2 {
		t.Fatalf("recv counters = %+v", cb)
	}
	if cb.MessagesRecv() != 4 {
		t.Fatalf("MessagesRecv = %d", cb.MessagesRecv())
	}
}

func TestPollNonBlocking(t *testing.T) {
	a, b := pair(t, Config{})
	if got, err := b.Poll(); err != nil || got != nil {
		t.Fatalf("Poll on empty = %v %v", got, err)
	}
	a.SendNow(1, msg.Stop())
	a.SendNow(1, msg.Done(0))
	got, err := b.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Poll drained %d frames' messages, want 2", len(got))
	}
}

func TestSendInvalidRank(t *testing.T) {
	a, _ := pair(t, Config{})
	if err := a.Send(5, msg.Stop()); err == nil {
		t.Error("send to rank 5 accepted")
	}
	if err := a.Flush(-1); err == nil {
		t.Error("flush rank -1 accepted")
	}
}

func TestDefaultBufferCap(t *testing.T) {
	a, _ := pair(t, Config{BufferCap: 0})
	if a.cap != DefaultBufferCap {
		t.Fatalf("cap = %d", a.cap)
	}
}

func TestWaitAfterCloseErrors(t *testing.T) {
	a, b := pair(t, Config{})
	b.Close()
	if _, err := b.Wait(); err == nil {
		t.Fatal("Wait on closed comm succeeded")
	}
	_ = a
}

func BenchmarkSendBuffered(b *testing.B) {
	g, _ := transport.NewLocalGroup(2)
	a := New(g.Endpoint(0), Config{BufferCap: 256})
	sink := New(g.Endpoint(1), Config{})
	m := msg.Request(1, 0, 2, 0)
	b.ReportAllocs()
	go func() {
		for {
			if _, err := sink.Wait(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := a.Send(1, m); err != nil {
			b.Fatal(err)
		}
	}
	a.FlushAll()
	sink.Close()
}

func TestBytesCounters(t *testing.T) {
	ms := []msg.Message{msg.Request(1, 0, 2, 0), msg.Request(2, 0, 3, 0)}
	// Frames travel in the compact (v2) encoding; the counters must
	// match its actual wire size, which is well under the fixed-width
	// encoding's.
	want := int64(len(msg.EncodeBatchV2(ms)))
	if want >= int64(len(ms)*msg.EncodedSize) {
		t.Fatalf("compact frame (%d bytes) not smaller than fixed-width (%d)", want, len(ms)*msg.EncodedSize)
	}
	a, b := pair(t, Config{BufferCap: 2})
	a.Send(1, ms[0])
	a.Send(1, ms[1]) // triggers flush of a 2-message frame
	if got := a.Counters().BytesSent; got != want {
		t.Fatalf("BytesSent = %d, want %d", got, want)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := b.Counters().BytesRecv; got != want {
		t.Fatalf("BytesRecv = %d, want %d", got, want)
	}
}
