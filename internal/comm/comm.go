// Package comm implements the communicator of the parallel generator: the
// layer between the engine (internal/core) and the raw transport. It
// provides what the paper's MPI usage provides — buffered sends that
// combine multiple messages to the same destination into one transport
// operation (Section 3.5.1 "Message Buffering"), message counters for the
// load analysis of Section 4.6, and batch-oriented receive.
//
// Concurrency: the send side is safe for concurrent use — each
// destination's buffer is an independently locked stripe and the
// counters are atomic — so a rank's worker goroutines share one Comm.
// The receive side (Poll, Wait, DecodeFrame) is single-consumer: exactly
// one goroutine per rank (the dispatcher, or the lone worker) drains the
// transport.
//
// Flush discipline (engine responsibility, supported here): the paper's
// Section 3.5.2 deadlock rule — resolved messages must leave the buffer
// after processing every received group — maps to calling FlushAll before
// every blocking Wait. The unbounded-mailbox transport cannot deadlock on
// full buffers, but an unflushed buffer would still stall the protocol
// forever, so the rule is as load-bearing here as under MPI.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pagen/internal/msg"
	"pagen/internal/transport"
)

// Config controls buffering.
type Config struct {
	// BufferCap is the number of messages a per-destination buffer holds
	// before an automatic flush. 1 disables buffering (every message is
	// its own transport frame) — the unbuffered ablation. 0 selects
	// DefaultBufferCap.
	BufferCap int
}

// DefaultBufferCap is the default per-destination buffer capacity.
const DefaultBufferCap = 256

// Counters tallies protocol traffic for one rank. RequestsSent etc. count
// logical messages; FramesSent/FramesRecv count transport frames, so
// RequestsSent+ResolvedSent+ControlSent versus FramesSent measures how
// much buffering coalesced (the Figure 7 message-distribution inputs are
// the logical counts).
type Counters struct {
	RequestsSent int64
	RequestsRecv int64
	ResolvedSent int64
	ResolvedRecv int64
	PublishSent  int64
	PublishRecv  int64
	ControlSent  int64
	ControlRecv  int64
	FramesSent   int64
	FramesRecv   int64
	BytesSent    int64
	BytesRecv    int64
}

// MessagesSent returns the total logical messages sent.
func (c Counters) MessagesSent() int64 {
	return c.RequestsSent + c.ResolvedSent + c.PublishSent + c.ControlSent
}

// MessagesRecv returns the total logical messages received.
func (c Counters) MessagesRecv() int64 {
	return c.RequestsRecv + c.ResolvedRecv + c.PublishRecv + c.ControlRecv
}

// stripe is one destination's send buffer with its lock. Flush holds the
// lock through the transport send so per-destination frame order matches
// buffer order.
type stripe struct {
	mu  sync.Mutex
	buf []msg.Message
}

// Comm is a buffering communicator bound to one transport endpoint.
type Comm struct {
	// send-side counters, atomic (concurrent senders).
	requestsSent int64
	resolvedSent int64
	publishSent  int64
	controlSent  int64
	framesSent   int64
	bytesSent    int64
	// receive-side counters, single consumer.
	requestsRecv int64
	resolvedRecv int64
	publishRecv  int64
	controlRecv  int64
	framesRecv   int64
	bytesRecv    int64

	tr transport.Transport
	// ms is non-nil when tr provides the shared-memory no-serialize
	// path: flushes hand the stripe buffer across by reference instead
	// of encoding it, and a fresh buffer is leased from the pool.
	ms         transport.MsgSender
	cap        int
	stripes    []stripe
	requestsTo []int64 // atomic
	scratch    []msg.Message
	// drainMean is an exponential moving average of messages per drain,
	// used to shrink scratch after an atypically large backlog so one
	// burst does not pin its high-water capacity forever.
	drainMean float64
}

// New wraps a transport endpoint.
func New(tr transport.Transport, cfg Config) *Comm {
	capacity := cfg.BufferCap
	if capacity <= 0 {
		capacity = DefaultBufferCap
	}
	ms, _ := tr.(transport.MsgSender)
	return &Comm{
		tr:         tr,
		ms:         ms,
		cap:        capacity,
		stripes:    make([]stripe, tr.Size()),
		requestsTo: make([]int64, tr.Size()),
	}
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.tr.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.tr.Size() }

// Counters returns a snapshot of the traffic counters. Send-side counts
// are read atomically; receive-side counts are exact once the consumer
// goroutine has quiesced (the engine snapshots after its run ends).
func (c *Comm) Counters() Counters {
	return Counters{
		RequestsSent: atomic.LoadInt64(&c.requestsSent),
		RequestsRecv: c.requestsRecv,
		ResolvedSent: atomic.LoadInt64(&c.resolvedSent),
		ResolvedRecv: c.resolvedRecv,
		PublishSent:  atomic.LoadInt64(&c.publishSent),
		PublishRecv:  c.publishRecv,
		ControlSent:  atomic.LoadInt64(&c.controlSent),
		ControlRecv:  c.controlRecv,
		FramesSent:   atomic.LoadInt64(&c.framesSent),
		FramesRecv:   c.framesRecv,
		BytesSent:    atomic.LoadInt64(&c.bytesSent),
		BytesRecv:    c.bytesRecv,
	}
}

// RequestsTo returns a copy of the per-destination request counts — one
// row of the cluster's request-traffic matrix. Under consecutive
// partitioning the matrix is strictly lower-triangular (Section 4.6.2:
// processor i requests only from processors 0..i-1).
func (c *Comm) RequestsTo() []int64 {
	out := make([]int64, len(c.requestsTo))
	for i := range out {
		out[i] = atomic.LoadInt64(&c.requestsTo[i])
	}
	return out
}

// RequestsToView returns the live per-destination request counts without
// copying. The slice aliases the communicator's internal state: it is
// only stable once no further Sends will occur (the engine takes it when
// its run ends and the Comm is discarded). Callers that need a snapshot
// mid-run use RequestsTo.
func (c *Comm) RequestsToView() []int64 { return c.requestsTo }

// count tallies one outgoing message.
func (c *Comm) count(to int, m msg.Message) {
	switch m.Kind {
	case msg.KindRequest:
		atomic.AddInt64(&c.requestsSent, 1)
		atomic.AddInt64(&c.requestsTo[to], 1)
	case msg.KindResolved:
		atomic.AddInt64(&c.resolvedSent, 1)
	case msg.KindPublish:
		atomic.AddInt64(&c.publishSent, 1)
	default:
		atomic.AddInt64(&c.controlSent, 1)
	}
}

// Send buffers m for destination to, flushing automatically when the
// buffer reaches capacity. Safe for concurrent use.
func (c *Comm) Send(to int, m msg.Message) error {
	if to < 0 || to >= len(c.stripes) {
		return fmt.Errorf("comm: send to rank %d outside [0,%d)", to, len(c.stripes))
	}
	c.count(to, m)
	s := &c.stripes[to]
	s.mu.Lock()
	s.buf = append(s.buf, m)
	var err error
	if len(s.buf) >= c.cap {
		err = c.flushLocked(to, s)
	}
	s.mu.Unlock()
	return err
}

// SendBatch buffers every message for destination to under one lock
// acquisition — the merge path for per-worker send scratch. Capacity
// flushes happen at the same message boundaries Send would flush at, so
// framing (and the BufferCap ablation) is independent of batching.
func (c *Comm) SendBatch(to int, ms []msg.Message) error {
	if to < 0 || to >= len(c.stripes) {
		return fmt.Errorf("comm: send to rank %d outside [0,%d)", to, len(c.stripes))
	}
	s := &c.stripes[to]
	s.mu.Lock()
	for _, m := range ms {
		c.count(to, m)
		s.buf = append(s.buf, m)
		if len(s.buf) >= c.cap {
			if err := c.flushLocked(to, s); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	s.mu.Unlock()
	return nil
}

// SendNow sends m immediately, flushing anything already buffered for the
// destination first so per-pair ordering is preserved. Used for control
// messages that must not linger in a buffer.
func (c *Comm) SendNow(to int, m msg.Message) error {
	if to < 0 || to >= len(c.stripes) {
		return fmt.Errorf("comm: send to rank %d outside [0,%d)", to, len(c.stripes))
	}
	c.count(to, m)
	s := &c.stripes[to]
	s.mu.Lock()
	s.buf = append(s.buf, m)
	err := c.flushLocked(to, s)
	s.mu.Unlock()
	return err
}

// flushLocked transmits the stripe's buffered messages as one frame.
// Callers hold the stripe lock, which extends over the transport send so
// frames leave in buffer order.
func (c *Comm) flushLocked(to int, s *stripe) error {
	if len(s.buf) == 0 {
		return nil
	}
	if c.ms != nil {
		// Shared-memory fast path: the buffered batch crosses by
		// reference — ownership of the slice transfers to the receiver
		// (its decode releases it) and a fresh buffer is leased for the
		// stripe. No bytes are serialized, so BytesSent stays put;
		// FramesSent still counts the transfer.
		ms := s.buf
		s.buf = transport.LeaseMsgs(c.cap)
		atomic.AddInt64(&c.framesSent, 1)
		return c.ms.SendMsgs(to, ms)
	}
	// Lease the frame buffer from the transport pool (the receiving
	// decode path releases it) and encode compactly: at steady state a
	// flush allocates nothing.
	frame := transport.LeaseFrame(1 + len(s.buf)*10)
	frame = msg.AppendEncodeBatchV3(frame, s.buf)
	s.buf = s.buf[:0]
	atomic.AddInt64(&c.framesSent, 1)
	atomic.AddInt64(&c.bytesSent, int64(len(frame)))
	return c.tr.Send(to, frame)
}

// Flush transmits the buffered messages for rank to, if any, as one frame.
func (c *Comm) Flush(to int) error {
	if to < 0 || to >= len(c.stripes) {
		return fmt.Errorf("comm: flush rank %d outside [0,%d)", to, len(c.stripes))
	}
	s := &c.stripes[to]
	s.mu.Lock()
	err := c.flushLocked(to, s)
	s.mu.Unlock()
	return err
}

// FlushAll transmits every non-empty buffer.
func (c *Comm) FlushAll() error {
	for to := range c.stripes {
		if err := c.Flush(to); err != nil {
			return err
		}
	}
	return nil
}

// BufferedFrame returns destination to's buffered-but-unsent messages
// encoded as one wire-format frame, or nil if the buffer is empty. The
// buffer itself is untouched: the checkpoint layer snapshots pending
// sends with this, and on commit the run simply continues with them
// still buffered.
func (c *Comm) BufferedFrame(to int) []byte {
	s := &c.stripes[to]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return nil
	}
	return msg.AppendEncodeBatchV3(make([]byte, 0, 1+len(s.buf)*10), s.buf)
}

// Buffered returns the number of messages currently buffered for to.
func (c *Comm) Buffered(to int) int {
	s := &c.stripes[to]
	s.mu.Lock()
	n := len(s.buf)
	s.mu.Unlock()
	return n
}

// decode appends the decoded messages of f to dst, updating counters.
// It consumes the frame: the buffer returns to the transport pool (the
// release half of the lease/release protocol).
func (c *Comm) decode(dst []msg.Message, f transport.Frame) ([]msg.Message, error) {
	if f.Msgs != nil {
		// Shared-memory fast path: the batch arrived by reference; copy
		// it out and release the slice back to the pool (the release
		// half of the lease/release protocol, mirroring ReleaseFrame).
		dst = append(dst, f.Msgs...)
		c.framesRecv++
		for _, m := range f.Msgs {
			switch m.Kind {
			case msg.KindRequest:
				c.requestsRecv++
			case msg.KindResolved:
				c.resolvedRecv++
			case msg.KindPublish:
				c.publishRecv++
			default:
				c.controlRecv++
			}
		}
		transport.ReleaseMsgs(f.Msgs)
		return dst, nil
	}
	before := len(dst)
	dst, err := msg.DecodeBatch(dst, f.Data)
	size := int64(len(f.Data))
	transport.ReleaseFrame(f.Data)
	if err != nil {
		return dst, fmt.Errorf("comm: frame from rank %d: %w", f.From, err)
	}
	c.framesRecv++
	c.bytesRecv += size
	for _, m := range dst[before:] {
		switch m.Kind {
		case msg.KindRequest:
			c.requestsRecv++
		case msg.KindResolved:
			c.resolvedRecv++
		case msg.KindPublish:
			c.publishRecv++
		default:
			c.controlRecv++
		}
	}
	return dst, nil
}

// scratchShrinkFloor is the capacity below which scratch is never shrunk:
// a few steady-state drains' worth of messages.
const scratchShrinkFloor = 4 * DefaultBufferCap

// resetScratch prepares scratch for a new drain. If the previous drain
// left the capacity far above the running mean drain size (a burst —
// e.g. the backlog after a long generation stretch between polls), the
// buffer is reallocated near the mean so one outlier does not pin its
// high-water memory for the rest of the run.
func (c *Comm) resetScratch() {
	if cap(c.scratch) > scratchShrinkFloor && float64(cap(c.scratch)) > 8*c.drainMean {
		c.scratch = make([]msg.Message, 0, int(2*c.drainMean)+DefaultBufferCap)
	}
	c.scratch = c.scratch[:0]
}

// noteDrain folds a completed drain's size into the running mean.
func (c *Comm) noteDrain() {
	c.drainMean += (float64(len(c.scratch)) - c.drainMean) / 8
}

// Poll drains every frame that is immediately available, returning the
// decoded messages (nil if none). The returned slice is reused by the
// next Poll/Wait/DecodeFrame call. Single consumer.
func (c *Comm) Poll() ([]msg.Message, error) {
	c.resetScratch()
	for {
		f, ok, err := c.tr.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		c.scratch, err = c.decode(c.scratch, f)
		if err != nil {
			return nil, err
		}
	}
	if len(c.scratch) == 0 {
		return nil, nil
	}
	c.noteDrain()
	return c.scratch, nil
}

// Wait blocks for at least one frame, then also drains whatever else is
// immediately available, returning the decoded messages. The returned
// slice is reused by the next Poll/Wait/DecodeFrame call. Single consumer.
func (c *Comm) Wait() ([]msg.Message, error) {
	f, err := c.tr.Recv()
	if err != nil {
		return nil, err
	}
	return c.DecodeFrame(f)
}

// DecodeFrame decodes a frame the consumer received directly from the
// transport (the dispatcher's requestable-receive path), then also
// drains whatever else is immediately available — the same batch shape
// Wait produces. The returned slice is reused by the next
// Poll/Wait/DecodeFrame call. Single consumer.
func (c *Comm) DecodeFrame(f transport.Frame) ([]msg.Message, error) {
	c.resetScratch()
	var err error
	c.scratch, err = c.decode(c.scratch, f)
	if err != nil {
		return nil, err
	}
	for {
		f, ok, err := c.tr.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			c.noteDrain()
			return c.scratch, nil
		}
		c.scratch, err = c.decode(c.scratch, f)
		if err != nil {
			return nil, err
		}
	}
}

// Close closes the underlying transport.
func (c *Comm) Close() error { return c.tr.Close() }
