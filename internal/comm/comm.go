// Package comm implements the communicator of the parallel generator: the
// layer between the engine (internal/core) and the raw transport. It
// provides what the paper's MPI usage provides — buffered sends that
// combine multiple messages to the same destination into one transport
// operation (Section 3.5.1 "Message Buffering"), message counters for the
// load analysis of Section 4.6, and batch-oriented receive.
//
// Flush discipline (engine responsibility, supported here): the paper's
// Section 3.5.2 deadlock rule — resolved messages must leave the buffer
// after processing every received group — maps to calling FlushAll before
// every blocking Wait. The unbounded-mailbox transport cannot deadlock on
// full buffers, but an unflushed buffer would still stall the protocol
// forever, so the rule is as load-bearing here as under MPI.
package comm

import (
	"fmt"

	"pagen/internal/msg"
	"pagen/internal/transport"
)

// Config controls buffering.
type Config struct {
	// BufferCap is the number of messages a per-destination buffer holds
	// before an automatic flush. 1 disables buffering (every message is
	// its own transport frame) — the unbuffered ablation. 0 selects
	// DefaultBufferCap.
	BufferCap int
}

// DefaultBufferCap is the default per-destination buffer capacity.
const DefaultBufferCap = 256

// Counters tallies protocol traffic for one rank. RequestsSent etc. count
// logical messages; FramesSent/FramesRecv count transport frames, so
// RequestsSent+ResolvedSent+ControlSent versus FramesSent measures how
// much buffering coalesced (the Figure 7 message-distribution inputs are
// the logical counts).
type Counters struct {
	RequestsSent int64
	RequestsRecv int64
	ResolvedSent int64
	ResolvedRecv int64
	ControlSent  int64
	ControlRecv  int64
	FramesSent   int64
	FramesRecv   int64
	BytesSent    int64
	BytesRecv    int64
}

// MessagesSent returns the total logical messages sent.
func (c Counters) MessagesSent() int64 {
	return c.RequestsSent + c.ResolvedSent + c.ControlSent
}

// MessagesRecv returns the total logical messages received.
func (c Counters) MessagesRecv() int64 {
	return c.RequestsRecv + c.ResolvedRecv + c.ControlRecv
}

// Comm is a buffering communicator bound to one transport endpoint. It is
// not safe for concurrent use: each rank's engine owns its Comm.
type Comm struct {
	tr         transport.Transport
	cap        int
	bufs       [][]msg.Message
	counters   Counters
	requestsTo []int64
	scratch    []msg.Message
	// drainMean is an exponential moving average of messages per drain,
	// used to shrink scratch after an atypically large backlog so one
	// burst does not pin its high-water capacity forever.
	drainMean float64
}

// New wraps a transport endpoint.
func New(tr transport.Transport, cfg Config) *Comm {
	capacity := cfg.BufferCap
	if capacity <= 0 {
		capacity = DefaultBufferCap
	}
	return &Comm{
		tr:         tr,
		cap:        capacity,
		bufs:       make([][]msg.Message, tr.Size()),
		requestsTo: make([]int64, tr.Size()),
	}
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.tr.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.tr.Size() }

// Counters returns a snapshot of the traffic counters.
func (c *Comm) Counters() Counters { return c.counters }

// RequestsTo returns a copy of the per-destination request counts — one
// row of the cluster's request-traffic matrix. Under consecutive
// partitioning the matrix is strictly lower-triangular (Section 4.6.2:
// processor i requests only from processors 0..i-1).
func (c *Comm) RequestsTo() []int64 {
	return append([]int64(nil), c.requestsTo...)
}

// RequestsToView returns the live per-destination request counts without
// copying. The slice aliases the communicator's internal state: it is
// only stable once no further Sends will occur (the engine takes it when
// its run ends and the Comm is discarded). Callers that need a snapshot
// mid-run use RequestsTo.
func (c *Comm) RequestsToView() []int64 { return c.requestsTo }

// Send buffers m for destination to, flushing automatically when the
// buffer reaches capacity.
func (c *Comm) Send(to int, m msg.Message) error {
	if to < 0 || to >= len(c.bufs) {
		return fmt.Errorf("comm: send to rank %d outside [0,%d)", to, len(c.bufs))
	}
	switch m.Kind {
	case msg.KindRequest:
		c.counters.RequestsSent++
		c.requestsTo[to]++
	case msg.KindResolved:
		c.counters.ResolvedSent++
	default:
		c.counters.ControlSent++
	}
	c.bufs[to] = append(c.bufs[to], m)
	if len(c.bufs[to]) >= c.cap {
		return c.Flush(to)
	}
	return nil
}

// SendNow sends m immediately, flushing anything already buffered for the
// destination first so per-pair ordering is preserved. Used for control
// messages that must not linger in a buffer.
func (c *Comm) SendNow(to int, m msg.Message) error {
	if err := c.Send(to, m); err != nil {
		return err
	}
	return c.Flush(to)
}

// Flush transmits the buffered messages for rank to, if any, as one frame.
func (c *Comm) Flush(to int) error {
	if to < 0 || to >= len(c.bufs) {
		return fmt.Errorf("comm: flush rank %d outside [0,%d)", to, len(c.bufs))
	}
	if len(c.bufs[to]) == 0 {
		return nil
	}
	// Lease the frame buffer from the transport pool (the receiving
	// decode path releases it) and encode compactly: at steady state a
	// flush allocates nothing.
	frame := transport.LeaseFrame(1 + len(c.bufs[to])*10)
	frame = msg.AppendEncodeBatchV2(frame, c.bufs[to])
	c.bufs[to] = c.bufs[to][:0]
	c.counters.FramesSent++
	c.counters.BytesSent += int64(len(frame))
	return c.tr.Send(to, frame)
}

// FlushAll transmits every non-empty buffer.
func (c *Comm) FlushAll() error {
	for to := range c.bufs {
		if err := c.Flush(to); err != nil {
			return err
		}
	}
	return nil
}

// Buffered returns the number of messages currently buffered for to.
func (c *Comm) Buffered(to int) int { return len(c.bufs[to]) }

// decode appends the decoded messages of f to dst, updating counters.
// It consumes the frame: the buffer returns to the transport pool (the
// release half of the lease/release protocol).
func (c *Comm) decode(dst []msg.Message, f transport.Frame) ([]msg.Message, error) {
	before := len(dst)
	dst, err := msg.DecodeBatch(dst, f.Data)
	size := int64(len(f.Data))
	transport.ReleaseFrame(f.Data)
	if err != nil {
		return dst, fmt.Errorf("comm: frame from rank %d: %w", f.From, err)
	}
	c.counters.FramesRecv++
	c.counters.BytesRecv += size
	for _, m := range dst[before:] {
		switch m.Kind {
		case msg.KindRequest:
			c.counters.RequestsRecv++
		case msg.KindResolved:
			c.counters.ResolvedRecv++
		default:
			c.counters.ControlRecv++
		}
	}
	return dst, nil
}

// scratchShrinkFloor is the capacity below which scratch is never shrunk:
// a few steady-state drains' worth of messages.
const scratchShrinkFloor = 4 * DefaultBufferCap

// resetScratch prepares scratch for a new drain. If the previous drain
// left the capacity far above the running mean drain size (a burst —
// e.g. the backlog after a long generation stretch between polls), the
// buffer is reallocated near the mean so one outlier does not pin its
// high-water memory for the rest of the run.
func (c *Comm) resetScratch() {
	if cap(c.scratch) > scratchShrinkFloor && float64(cap(c.scratch)) > 8*c.drainMean {
		c.scratch = make([]msg.Message, 0, int(2*c.drainMean)+DefaultBufferCap)
	}
	c.scratch = c.scratch[:0]
}

// noteDrain folds a completed drain's size into the running mean.
func (c *Comm) noteDrain() {
	c.drainMean += (float64(len(c.scratch)) - c.drainMean) / 8
}

// Poll drains every frame that is immediately available, returning the
// decoded messages (nil if none). The returned slice is reused by the
// next Poll/Wait call.
func (c *Comm) Poll() ([]msg.Message, error) {
	c.resetScratch()
	for {
		f, ok, err := c.tr.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		c.scratch, err = c.decode(c.scratch, f)
		if err != nil {
			return nil, err
		}
	}
	if len(c.scratch) == 0 {
		return nil, nil
	}
	c.noteDrain()
	return c.scratch, nil
}

// Wait blocks for at least one frame, then also drains whatever else is
// immediately available, returning the decoded messages. The returned
// slice is reused by the next Poll/Wait call.
func (c *Comm) Wait() ([]msg.Message, error) {
	f, err := c.tr.Recv()
	if err != nil {
		return nil, err
	}
	c.resetScratch()
	c.scratch, err = c.decode(c.scratch, f)
	if err != nil {
		return nil, err
	}
	for {
		f, ok, err := c.tr.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			c.noteDrain()
			return c.scratch, nil
		}
		c.scratch, err = c.decode(c.scratch, f)
		if err != nil {
			return nil, err
		}
	}
}

// Close closes the underlying transport.
func (c *Comm) Close() error { return c.tr.Close() }
