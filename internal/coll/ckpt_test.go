package coll

import (
	"testing"
)

func TestAllReduceMin(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		errs := runAll(t, p, func(s *Seq, rank int) error {
			// Ranks contribute p-1, p-2, ..., 0; the min is 0 everywhere.
			got, err := s.AllReduceMin(int64(p - 1 - rank))
			if err != nil {
				return err
			}
			if got != 0 {
				t.Errorf("p=%d rank %d: AllReduceMin = %d, want 0", p, rank, got)
			}
			// Negative values reduce correctly too (the resume
			// negotiation uses 0 as the "no snapshot" sentinel, which
			// must win against any real epoch).
			got, err = s.AllReduceMin(int64(rank) - 1)
			if err != nil {
				return err
			}
			if got != -1 {
				t.Errorf("p=%d rank %d: AllReduceMin = %d, want -1", p, rank, got)
			}
			return nil
		})
		noErrors(t, errs)
	}
}

// SetNextTag fast-forwards the tag counter — how a resumed run aligns
// its collectives with the tags the checkpointed run had consumed.
// Collectives must keep matching across ranks after the jump.
func TestNextTagResumeAlignment(t *testing.T) {
	const p = 3
	errs := runAll(t, p, func(s *Seq, rank int) error {
		if _, err := s.AllReduceMin(int64(rank)); err != nil {
			return err
		}
		tag := s.NextTag()
		if tag <= 0 {
			t.Errorf("rank %d: NextTag = %d after a collective, want > 0", rank, tag)
		}
		// Jump well past the consumed range, as a resume does, and run
		// more collectives.
		s.SetNextTag(tag + 100)
		if got := s.NextTag(); got != tag+100 {
			t.Errorf("rank %d: NextTag after SetNextTag = %d, want %d", rank, got, tag+100)
		}
		votes, err := s.Gather(int64(rank + 1))
		if err != nil {
			return err
		}
		if rank == 0 {
			for r, v := range votes {
				if v != int64(r+1) {
					t.Errorf("gather[%d] = %d, want %d", r, v, r+1)
				}
			}
		}
		got, err := s.Broadcast(int64(77))
		if err != nil {
			return err
		}
		if got != 77 {
			t.Errorf("rank %d: broadcast = %d, want 77", rank, got)
		}
		return nil
	})
	noErrors(t, errs)
}
