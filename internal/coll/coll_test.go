package coll

import (
	"sync"
	"testing"
	"time"

	"pagen/internal/comm"
	"pagen/internal/msg"
	"pagen/internal/transport"
)

// runAll executes fn concurrently on every rank of a fresh local mesh and
// returns per-rank errors.
func runAll(t *testing.T, p int, fn func(cm *comm.Comm, rank int) error) []error {
	t.Helper()
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comm.New(group.Endpoint(r), comm.Config{}), r)
		}(r)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective hung")
	}
	return errs
}

func noErrors(t *testing.T, errs []error) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierReleasesEveryone(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		var passed int32
		var mu sync.Mutex
		errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
			if err := Barrier(cm, 1); err != nil {
				return err
			}
			mu.Lock()
			passed++
			mu.Unlock()
			return nil
		})
		noErrors(t, errs)
		if int(passed) != p {
			t.Fatalf("p=%d: %d ranks passed the barrier", p, passed)
		}
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	// No rank may enter phase 2 before all ranks finished phase 1.
	const p = 4
	var mu sync.Mutex
	phase1 := 0
	violated := false
	errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
		mu.Lock()
		phase1++
		mu.Unlock()
		if err := Barrier(cm, 7); err != nil {
			return err
		}
		mu.Lock()
		if phase1 != p {
			violated = true
		}
		mu.Unlock()
		return nil
	})
	noErrors(t, errs)
	if violated {
		t.Fatal("a rank passed the barrier before all entered")
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		got := make([]int64, p)
		errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
			v, err := Broadcast(cm, 2, int64(42+rank)) // only rank 0's 42 matters
			got[rank] = v
			return err
		})
		noErrors(t, errs)
		for r, v := range got {
			if v != 42 {
				t.Fatalf("p=%d rank %d got %d", p, r, v)
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		want := int64(p * (p + 1) / 2)
		got := make([]int64, p)
		errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
			v, err := AllReduceSum(cm, 3, int64(rank+1))
			got[rank] = v
			return err
		})
		noErrors(t, errs)
		for r, v := range got {
			if v != want {
				t.Fatalf("p=%d rank %d sum %d, want %d", p, r, v, want)
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const p = 5
	got := make([]int64, p)
	errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
		v, err := AllReduceMax(cm, 4, int64((rank*7)%13))
		got[rank] = v
		return err
	})
	noErrors(t, errs)
	want := int64(0)
	for r := 0; r < p; r++ {
		if v := int64((r * 7) % 13); v > want {
			want = v
		}
	}
	for r, v := range got {
		if v != want {
			t.Fatalf("rank %d max %d, want %d", r, v, want)
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 4} {
		var root []int64
		errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
			vs, err := Gather(cm, 5, int64(rank*rank))
			if rank == 0 {
				root = vs
			} else if vs != nil {
				t.Errorf("rank %d got non-nil gather %v", rank, vs)
			}
			return err
		})
		noErrors(t, errs)
		if len(root) != p {
			t.Fatalf("p=%d: gathered %d values", p, len(root))
		}
		for r, v := range root {
			if v != int64(r*r) {
				t.Fatalf("p=%d: root[%d] = %d", p, r, v)
			}
		}
	}
}

func TestSequencedCollectives(t *testing.T) {
	// A realistic tool sequence: barrier, reduce, gather, broadcast —
	// distinct tags, same order everywhere.
	const p = 4
	errs := runAll(t, p, func(cm *comm.Comm, rank int) error {
		if err := Barrier(cm, 10); err != nil {
			return err
		}
		sum, err := AllReduceSum(cm, 11, 1)
		if err != nil {
			return err
		}
		if sum != p {
			t.Errorf("rank %d: sum %d", rank, sum)
		}
		if _, err := Gather(cm, 12, int64(rank)); err != nil {
			return err
		}
		v, err := Broadcast(cm, 13, sum*2)
		if err != nil {
			return err
		}
		if v != 2*p {
			t.Errorf("rank %d: broadcast %d", rank, v)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestCollectiveRejectsForeignTraffic(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	cm0 := comm.New(group.Endpoint(0), comm.Config{})
	cm1 := comm.New(group.Endpoint(1), comm.Config{})
	// Rank 1 sends a stray data message, then its collective part.
	if err := cm1.SendNow(0, msg.Request(5, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	go cm1.SendNow(0, msg.Coll(1, 9, 1))
	if _, err := AllReduceSum(cm0, 9, 1); err == nil {
		t.Fatal("stray data message not rejected")
	}
}

func TestCollectiveRejectsTagMismatch(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	cm0 := comm.New(group.Endpoint(0), comm.Config{})
	cm1 := comm.New(group.Endpoint(1), comm.Config{})
	go cm1.SendNow(0, msg.Coll(1, 99, 1)) // wrong tag
	if _, err := Gather(cm0, 42, 0); err == nil {
		t.Fatal("tag mismatch not rejected")
	}
}
