package coll

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pagen/internal/comm"
	"pagen/internal/msg"
	"pagen/internal/transport"
)

// runAll executes fn concurrently on every rank of a fresh local mesh and
// returns per-rank errors.
func runAll(t *testing.T, p int, fn func(s *Seq, rank int) error) []error {
	t.Helper()
	group, err := transport.NewLocalGroup(p)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(New(comm.New(group.Endpoint(r), comm.Config{})), r)
		}(r)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective hung")
	}
	return errs
}

func noErrors(t *testing.T, errs []error) {
	t.Helper()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierReleasesEveryone(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		var passed int32
		var mu sync.Mutex
		errs := runAll(t, p, func(s *Seq, rank int) error {
			if err := s.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			passed++
			mu.Unlock()
			return nil
		})
		noErrors(t, errs)
		if int(passed) != p {
			t.Fatalf("p=%d: %d ranks passed the barrier", p, passed)
		}
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	// No rank may enter phase 2 before all ranks finished phase 1.
	const p = 4
	var mu sync.Mutex
	phase1 := 0
	violated := false
	errs := runAll(t, p, func(s *Seq, rank int) error {
		mu.Lock()
		phase1++
		mu.Unlock()
		if err := s.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		if phase1 != p {
			violated = true
		}
		mu.Unlock()
		return nil
	})
	noErrors(t, errs)
	if violated {
		t.Fatal("a rank passed the barrier before all entered")
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		got := make([]int64, p)
		errs := runAll(t, p, func(s *Seq, rank int) error {
			v, err := s.Broadcast(int64(42 + rank)) // only rank 0's 42 matters
			got[rank] = v
			return err
		})
		noErrors(t, errs)
		for r, v := range got {
			if v != 42 {
				t.Fatalf("p=%d rank %d got %d", p, r, v)
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		want := int64(p * (p + 1) / 2)
		got := make([]int64, p)
		errs := runAll(t, p, func(s *Seq, rank int) error {
			v, err := s.AllReduceSum(int64(rank + 1))
			got[rank] = v
			return err
		})
		noErrors(t, errs)
		for r, v := range got {
			if v != want {
				t.Fatalf("p=%d rank %d sum %d, want %d", p, r, v, want)
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const p = 5
	got := make([]int64, p)
	errs := runAll(t, p, func(s *Seq, rank int) error {
		v, err := s.AllReduceMax(int64((rank * 7) % 13))
		got[rank] = v
		return err
	})
	noErrors(t, errs)
	want := int64(0)
	for r := 0; r < p; r++ {
		if v := int64((r * 7) % 13); v > want {
			want = v
		}
	}
	for r, v := range got {
		if v != want {
			t.Fatalf("rank %d max %d, want %d", r, v, want)
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 4} {
		var root []int64
		errs := runAll(t, p, func(s *Seq, rank int) error {
			vs, err := s.Gather(int64(rank * rank))
			if rank == 0 {
				root = vs
			} else if vs != nil {
				t.Errorf("rank %d got non-nil gather %v", rank, vs)
			}
			return err
		})
		noErrors(t, errs)
		if len(root) != p {
			t.Fatalf("p=%d: gathered %d values", p, len(root))
		}
		for r, v := range root {
			if v != int64(r*r) {
				t.Fatalf("p=%d: root[%d] = %d", p, r, v)
			}
		}
	}
}

func TestGatherSlice(t *testing.T) {
	const p = 4
	var root [][]int64
	errs := runAll(t, p, func(s *Seq, rank int) error {
		rows, err := s.GatherSlice([]int64{int64(rank), int64(rank * 10), int64(rank * 100)})
		if rank == 0 {
			root = rows
		} else if rows != nil {
			t.Errorf("rank %d got non-nil gather matrix", rank)
		}
		return err
	})
	noErrors(t, errs)
	if len(root) != p {
		t.Fatalf("gathered %d rows", len(root))
	}
	for r, row := range root {
		want := []int64{int64(r), int64(r * 10), int64(r * 100)}
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("root[%d] = %v, want %v", r, row, want)
			}
		}
	}
}

// TestBackToBackSequences is the regression test for the 4-rank
// "coll: tag mismatch" failure: a fast rank's contribution to the next
// collective reaches rank 0 while it is still collecting the previous
// one, so the coordinator must buffer early arrivals by tag instead of
// failing. Each named sequence runs back-to-back with no barriers
// between operations, at 2, 4 and 8 ranks.
func TestBackToBackSequences(t *testing.T) {
	type seqCase struct {
		name string
		run  func(s *Seq, rank, p int) error
	}
	cases := []seqCase{
		{
			// The exact pa-tcp post-run sequence that used to die.
			name: "gather-then-reduce",
			run: func(s *Seq, rank, p int) error {
				vs, err := s.Gather(int64(rank + 1))
				if err != nil {
					return err
				}
				if rank == 0 && len(vs) != p {
					return fmt.Errorf("gathered %d values, want %d", len(vs), p)
				}
				max, err := s.AllReduceMax(int64(rank))
				if err != nil {
					return err
				}
				if max != int64(p-1) {
					return fmt.Errorf("max = %d, want %d", max, p-1)
				}
				return nil
			},
		},
		{
			name: "gather-gather-gather",
			run: func(s *Seq, rank, p int) error {
				for round := 0; round < 3; round++ {
					vs, err := s.Gather(int64(rank*10 + round))
					if err != nil {
						return err
					}
					if rank == 0 {
						for r, v := range vs {
							if v != int64(r*10+round) {
								return fmt.Errorf("round %d: vs[%d] = %d", round, r, v)
							}
						}
					}
				}
				return nil
			},
		},
		{
			name: "reduce-gather-barrier-broadcast",
			run: func(s *Seq, rank, p int) error {
				sum, err := s.AllReduceSum(1)
				if err != nil {
					return err
				}
				if sum != int64(p) {
					return fmt.Errorf("sum = %d, want %d", sum, p)
				}
				if _, err := s.Gather(int64(rank)); err != nil {
					return err
				}
				if err := s.Barrier(); err != nil {
					return err
				}
				v, err := s.Broadcast(sum * 2)
				if err != nil {
					return err
				}
				if v != 2*int64(p) {
					return fmt.Errorf("broadcast = %d, want %d", v, 2*p)
				}
				return nil
			},
		},
		{
			name: "reduce-storm",
			run: func(s *Seq, rank, p int) error {
				for round := 0; round < 5; round++ {
					sum, err := s.AllReduceSum(int64(rank))
					if err != nil {
						return err
					}
					if sum != int64(p*(p-1)/2) {
						return fmt.Errorf("round %d: sum = %d", round, sum)
					}
					max, err := s.AllReduceMax(int64(rank))
					if err != nil {
						return err
					}
					if max != int64(p-1) {
						return fmt.Errorf("round %d: max = %d", round, max)
					}
				}
				return nil
			},
		},
	}
	for _, tc := range cases {
		for _, p := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", tc.name, p), func(t *testing.T) {
				errs := runAll(t, p, func(s *Seq, rank int) error {
					return tc.run(s, rank, p)
				})
				noErrors(t, errs)
			})
		}
	}
}

func TestCollectiveRejectsForeignTraffic(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	cm0 := comm.New(group.Endpoint(0), comm.Config{})
	cm1 := comm.New(group.Endpoint(1), comm.Config{})
	// Rank 1 sends a stray data message, then its collective part.
	if err := cm1.SendNow(0, msg.Request(5, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	go cm1.SendNow(0, msg.Coll(1, 1, 1))
	if _, err := New(cm0).AllReduceSum(1); err == nil {
		t.Fatal("stray data message not rejected")
	}
}

func TestCollectiveRejectsStaleTag(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	cm0 := comm.New(group.Endpoint(0), comm.Config{})
	cm1 := comm.New(group.Endpoint(1), comm.Config{})
	// Tag 0 is below any operation tag Seq ever assigns (they start at
	// 1), so it must be rejected as stale, not buffered forever.
	go cm1.SendNow(0, msg.Coll(1, 0, 7))
	_, err = New(cm0).Gather(0)
	if err == nil {
		t.Fatal("stale tag not rejected")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error = %v, want stale-tag report", err)
	}
}

// Early arrivals with future tags must be buffered, not dropped: rank 1
// sends its contributions to three gathers at once before rank 0 starts
// the first one.
func TestEarlyArrivalsBuffered(t *testing.T) {
	group, err := transport.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	cm0 := comm.New(group.Endpoint(0), comm.Config{})
	cm1 := comm.New(group.Endpoint(1), comm.Config{})
	s1 := New(cm1)
	for i := 0; i < 3; i++ {
		if _, err := s1.Gather(int64(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	s0 := New(cm0)
	for i := 0; i < 3; i++ {
		vs, err := s0.Gather(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if vs[0] != int64(i) || vs[1] != int64(100+i) {
			t.Fatalf("gather %d = %v", i, vs)
		}
	}
}
