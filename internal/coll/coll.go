// Package coll provides the collective operations an MPI replacement
// owes its users — Barrier, Broadcast, AllReduce, Gather — implemented
// over the buffered communicator with coordinator-based algorithms.
// The generator's own termination protocol does not need them, but
// distributed tools do (cmd/pa-tcp gathers per-rank statistics at rank 0
// with Gather before printing a cluster-wide summary).
//
// # Sequenced tag protocol
//
// Collectives run inside a Seq context. Every operation consumes one or
// two tags from a per-context monotone counter — one tag per
// communication phase, so a reduction's gather-up and broadcast-down
// phases never share a tag. Because every rank executes the same
// collectives in the same order, the counters agree across ranks without
// any negotiation; the tag carried by each message identifies exactly
// which operation (and phase) it belongs to.
//
// The tag makes collectives safe against inter-operation races: ranks
// run asynchronously, so a fast rank's contribution to operation i+1 can
// reach the coordinator while it is still collecting operation i. Such
// early arrivals are buffered by tag and consumed when their operation
// starts. (The previous design treated any unexpected tag as a protocol
// violation, which made back-to-back collectives fail with "coll: tag
// mismatch" from four ranks up — the race is essentially guaranteed once
// two peers race a Gather followed by anything else.) A tag lower than
// the current operation's can never be pending and is reported as the
// protocol violation it is, as is any non-collective message.
//
// Contract: collectives are synchronising operations. Every rank must
// create one Seq and call the same operations in the same order, and no
// point-to-point engine traffic may be in flight while collectives run
// (call them before the generation run, or after it has terminated).
package coll

import (
	"fmt"

	"pagen/internal/comm"
	"pagen/internal/msg"
)

// pendingContrib is a buffered early arrival: a contribution to a
// collective operation this rank has not started yet.
type pendingContrib struct {
	tag  int64
	from int
	val  int64
}

// Seq executes a sequence of collective operations over one
// communicator, assigning each operation phase a unique monotone tag and
// buffering contributions that arrive ahead of their operation. Create
// one per tool run with New; it is not safe for concurrent use (each
// rank's tool loop owns its Seq, like the engine owns its Comm).
type Seq struct {
	cm      *comm.Comm
	next    int64
	pending []pendingContrib
	// recv, when set, replaces cm.Wait as the blocking receive. The
	// engine's dispatcher installs its requestable recv pump here so
	// mid-run collectives (checkpoint commit votes) respect the
	// single-transport-consumer invariant.
	recv func() ([]msg.Message, error)
}

// New creates a collective-operation context over cm. All ranks must
// create their contexts at the same protocol point and issue the same
// operations in the same order.
func New(cm *comm.Comm) *Seq {
	return &Seq{cm: cm, next: 1}
}

// nextTag reserves the next operation-phase tag. Ranks stay in agreement
// because they execute identical operation sequences.
func (s *Seq) nextTag() int64 {
	t := s.next
	s.next++
	return t
}

// NextTag returns the tag the next operation phase would consume. A
// checkpoint records it so a restarted run can resume the tag sequence
// instead of reusing tags a peer may still associate with old phases.
func (s *Seq) NextTag() int64 { return s.next }

// SetNextTag moves the tag counter, e.g. to a value restored from a
// checkpoint. Every rank must set the same value at the same protocol
// point or subsequent collectives will disagree on their tags.
func (s *Seq) SetNextTag(tag int64) { s.next = tag }

// SetRecv overrides the blocking receive collectives use (cm.Wait by
// default). The engine's dispatcher routes all transport receives
// through one recv pump; installing it here lets collectives run while
// the dispatcher owns the transport.
func (s *Seq) SetRecv(recv func() ([]msg.Message, error)) { s.recv = recv }

// Stash buffers a collective contribution that arrived outside a
// collective — e.g. decoded by the engine's dispatcher in the same batch
// as the protocol message that triggers the collective — so the next
// operation with that tag consumes it.
func (s *Seq) Stash(from int, tag, value int64) { s.stash(tag, from, value) }

// takePending removes and returns one buffered contribution with the
// given tag, if any.
func (s *Seq) takePending(tag int64) (pendingContrib, bool) {
	for i, p := range s.pending {
		if p.tag == tag {
			last := len(s.pending) - 1
			s.pending[i] = s.pending[last]
			s.pending = s.pending[:last]
			return p, true
		}
	}
	return pendingContrib{}, false
}

// stash buffers an early arrival for a future operation.
func (s *Seq) stash(tag int64, from int, val int64) {
	s.pending = append(s.pending, pendingContrib{tag: tag, from: from, val: val})
}

// recvColl returns the next contribution to the operation phase wantTag,
// consuming a buffered early arrival first and otherwise blocking on the
// communicator. Messages for later phases are stashed; stale tags and
// non-collective traffic are protocol violations.
func (s *Seq) recvColl(wantTag int64) (from int, payload int64, err error) {
	if p, ok := s.takePending(wantTag); ok {
		return p.from, p.val, nil
	}
	for {
		var ms []msg.Message
		var err error
		if s.recv != nil {
			ms, err = s.recv()
		} else {
			ms, err = s.cm.Wait()
		}
		if err != nil {
			return 0, 0, err
		}
		found := false
		var got pendingContrib
		for _, m := range ms {
			if m.Kind != msg.KindColl {
				return 0, 0, fmt.Errorf("coll: unexpected %v message during collective", m.Kind)
			}
			switch {
			case m.K == wantTag && !found:
				found = true
				got = pendingContrib{tag: m.K, from: int(m.T), val: m.V}
			case m.K >= wantTag:
				s.stash(m.K, int(m.T), m.V)
			default:
				return 0, 0, fmt.Errorf("coll: stale collective tag %d (current operation %d) from rank %d",
					m.K, wantTag, m.T)
			}
		}
		if found {
			return got.from, got.val, nil
		}
	}
}

// recvCollN receives exactly n contributions to phase wantTag, returning
// payloads indexed by sender rank.
func (s *Seq) recvCollN(wantTag int64, n int) (map[int]int64, error) {
	out := make(map[int]int64, n)
	for len(out) < n {
		from, v, err := s.recvColl(wantTag)
		if err != nil {
			return nil, err
		}
		if _, dup := out[from]; dup {
			return nil, fmt.Errorf("coll: duplicate contribution from rank %d", from)
		}
		out[from] = v
	}
	return out, nil
}

// send transmits one collective contribution immediately.
func (s *Seq) send(to int, tag, value int64) error {
	return s.cm.SendNow(to, msg.Coll(s.cm.Rank(), tag, value))
}

// Barrier blocks until every rank has entered it.
func (s *Seq) Barrier() error {
	p, rank := s.cm.Size(), s.cm.Rank()
	up, down := s.nextTag(), s.nextTag()
	if p == 1 {
		return nil
	}
	if rank == 0 {
		if _, err := s.recvCollN(up, p-1); err != nil {
			return err
		}
		for r := 1; r < p; r++ {
			if err := s.send(r, down, 0); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.send(0, up, 0); err != nil {
		return err
	}
	_, _, err := s.recvColl(down)
	return err
}

// Broadcast distributes value from rank 0 to every rank; each rank
// returns the broadcast value (value is ignored on other ranks).
func (s *Seq) Broadcast(value int64) (int64, error) {
	p, rank := s.cm.Size(), s.cm.Rank()
	tag := s.nextTag()
	if p == 1 {
		return value, nil
	}
	if rank == 0 {
		for r := 1; r < p; r++ {
			if err := s.send(r, tag, value); err != nil {
				return 0, err
			}
		}
		return value, nil
	}
	_, v, err := s.recvColl(tag)
	return v, err
}

// reduce gathers every rank's value at rank 0, folds it with f, and
// broadcasts the result — the shared body of the AllReduce operations.
func (s *Seq) reduce(value int64, f func(acc, v int64) int64) (int64, error) {
	p, rank := s.cm.Size(), s.cm.Rank()
	up, down := s.nextTag(), s.nextTag()
	if p == 1 {
		return value, nil
	}
	if rank == 0 {
		contribs, err := s.recvCollN(up, p-1)
		if err != nil {
			return 0, err
		}
		acc := value
		for _, v := range contribs {
			acc = f(acc, v)
		}
		for r := 1; r < p; r++ {
			if err := s.send(r, down, acc); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := s.send(0, up, value); err != nil {
		return 0, err
	}
	_, v, err := s.recvColl(down)
	return v, err
}

// AllReduceSum returns the sum of every rank's value on every rank.
func (s *Seq) AllReduceSum(value int64) (int64, error) {
	return s.reduce(value, func(acc, v int64) int64 { return acc + v })
}

// AllReduceMax returns the maximum of every rank's value on every rank.
func (s *Seq) AllReduceMax(value int64) (int64, error) {
	return s.reduce(value, func(acc, v int64) int64 {
		if v > acc {
			return v
		}
		return acc
	})
}

// AllReduceMin returns the minimum of every rank's value on every rank.
// Resume negotiation uses it to pick the newest checkpoint epoch every
// rank holds a valid snapshot of.
func (s *Seq) AllReduceMin(value int64) (int64, error) {
	return s.reduce(value, func(acc, v int64) int64 {
		if v < acc {
			return v
		}
		return acc
	})
}

// Gather collects every rank's value at rank 0, which receives the full
// slice indexed by rank; other ranks receive nil.
func (s *Seq) Gather(value int64) ([]int64, error) {
	p, rank := s.cm.Size(), s.cm.Rank()
	tag := s.nextTag()
	if rank == 0 {
		out := make([]int64, p)
		out[0] = value
		if p > 1 {
			contribs, err := s.recvCollN(tag, p-1)
			if err != nil {
				return nil, err
			}
			for r, v := range contribs {
				out[r] = v
			}
		}
		return out, nil
	}
	return nil, s.send(0, tag, value)
}

// GatherSlice gathers one int64 slice per rank at rank 0 element-wise:
// every rank passes a slice of identical length, and rank 0 receives a
// per-rank matrix indexed [rank][element]; other ranks receive nil. It
// runs one Gather per element, so it is meant for short metric vectors,
// not bulk data.
func (s *Seq) GatherSlice(values []int64) ([][]int64, error) {
	p, rank := s.cm.Size(), s.cm.Rank()
	out := make([][]int64, 0, p)
	if rank == 0 {
		for r := 0; r < p; r++ {
			out = append(out, make([]int64, len(values)))
		}
	}
	for i, v := range values {
		col, err := s.Gather(v)
		if err != nil {
			return nil, err
		}
		if rank == 0 {
			for r := 0; r < p; r++ {
				out[r][i] = col[r]
			}
		}
	}
	if rank != 0 {
		return nil, nil
	}
	return out, nil
}
