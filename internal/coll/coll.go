// Package coll provides the collective operations an MPI replacement
// owes its users — Barrier, Broadcast, AllReduce, Gather — implemented
// over the buffered communicator with coordinator-based algorithms.
// The generator's own termination protocol does not need them, but
// distributed tools do (cmd/pa-tcp gathers per-rank statistics at rank 0
// with Gather before printing a cluster-wide summary).
//
// Contract: collectives are synchronising operations. Every rank must
// call the same collective in the same order, and no point-to-point
// engine traffic may be in flight when one starts (call them before the
// generation run, or after it has terminated). Each collective carries a
// caller-supplied tag so that mismatched calls fail loudly instead of
// mixing payloads.
package coll

import (
	"fmt"

	"pagen/internal/comm"
	"pagen/internal/msg"
)

// recvColl blocks until the next collective message arrives, failing on
// any non-collective traffic (which would mean the contract was broken)
// and on tag mismatches.
func recvColl(cm *comm.Comm, wantTag int64) (from int, payload int64, err error) {
	for {
		ms, err := cm.Wait()
		if err != nil {
			return 0, 0, err
		}
		for _, m := range ms {
			if m.Kind != msg.KindColl {
				return 0, 0, fmt.Errorf("coll: unexpected %v message during collective", m.Kind)
			}
			if m.K != wantTag {
				return 0, 0, fmt.Errorf("coll: tag mismatch: got %d, want %d", m.K, wantTag)
			}
			return int(m.T), m.V, nil
		}
	}
}

// recvCollN receives exactly n collective messages, returning payloads
// indexed by sender rank.
func recvCollN(cm *comm.Comm, wantTag int64, n int) (map[int]int64, error) {
	out := make(map[int]int64, n)
	for len(out) < n {
		ms, err := cm.Wait()
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if m.Kind != msg.KindColl {
				return nil, fmt.Errorf("coll: unexpected %v message during collective", m.Kind)
			}
			if m.K != wantTag {
				return nil, fmt.Errorf("coll: tag mismatch: got %d, want %d", m.K, wantTag)
			}
			if _, dup := out[int(m.T)]; dup {
				return nil, fmt.Errorf("coll: duplicate contribution from rank %d", m.T)
			}
			out[int(m.T)] = m.V
		}
	}
	return out, nil
}

// Barrier blocks until every rank has entered it.
func Barrier(cm *comm.Comm, tag int64) error {
	p, rank := cm.Size(), cm.Rank()
	if p == 1 {
		return nil
	}
	if rank == 0 {
		if _, err := recvCollN(cm, tag, p-1); err != nil {
			return err
		}
		for r := 1; r < p; r++ {
			if err := cm.SendNow(r, msg.Coll(0, tag, 0)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := cm.SendNow(0, msg.Coll(rank, tag, 0)); err != nil {
		return err
	}
	_, _, err := recvColl(cm, tag)
	return err
}

// Broadcast distributes value from rank 0 to every rank; each rank
// returns the broadcast value.
func Broadcast(cm *comm.Comm, tag int64, value int64) (int64, error) {
	p, rank := cm.Size(), cm.Rank()
	if p == 1 {
		return value, nil
	}
	if rank == 0 {
		for r := 1; r < p; r++ {
			if err := cm.SendNow(r, msg.Coll(0, tag, value)); err != nil {
				return 0, err
			}
		}
		return value, nil
	}
	_, v, err := recvColl(cm, tag)
	return v, err
}

// AllReduceSum returns the sum of every rank's value on every rank.
func AllReduceSum(cm *comm.Comm, tag int64, value int64) (int64, error) {
	p, rank := cm.Size(), cm.Rank()
	if p == 1 {
		return value, nil
	}
	if rank == 0 {
		contribs, err := recvCollN(cm, tag, p-1)
		if err != nil {
			return 0, err
		}
		sum := value
		for _, v := range contribs {
			sum += v
		}
		return Broadcast(cm, tag, sum)
	}
	if err := cm.SendNow(0, msg.Coll(rank, tag, value)); err != nil {
		return 0, err
	}
	return Broadcast(cm, tag, 0)
}

// AllReduceMax returns the maximum of every rank's value on every rank.
func AllReduceMax(cm *comm.Comm, tag int64, value int64) (int64, error) {
	p, rank := cm.Size(), cm.Rank()
	if p == 1 {
		return value, nil
	}
	if rank == 0 {
		contribs, err := recvCollN(cm, tag, p-1)
		if err != nil {
			return 0, err
		}
		max := value
		for _, v := range contribs {
			if v > max {
				max = v
			}
		}
		return Broadcast(cm, tag, max)
	}
	if err := cm.SendNow(0, msg.Coll(rank, tag, value)); err != nil {
		return 0, err
	}
	return Broadcast(cm, tag, 0)
}

// Gather collects every rank's value at rank 0, which receives the full
// slice indexed by rank; other ranks receive nil.
func Gather(cm *comm.Comm, tag int64, value int64) ([]int64, error) {
	p, rank := cm.Size(), cm.Rank()
	if rank == 0 {
		out := make([]int64, p)
		out[0] = value
		if p > 1 {
			contribs, err := recvCollN(cm, tag, p-1)
			if err != nil {
				return nil, err
			}
			for r, v := range contribs {
				out[r] = v
			}
		}
		return out, nil
	}
	return nil, cm.SendNow(0, msg.Coll(rank, tag, value))
}
