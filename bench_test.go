// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 4). Run with:
//
//	go test -bench=. -benchmem
//
// Sizes are scaled from the paper's cluster runs to a single host; pass
// -paper.n to rescale (see EXPERIMENTS.md for paper-vs-measured values).
// Custom metrics attached to each benchmark carry the figures' series:
// model_speedup (load-model prediction), imbalance, gamma, edges/s.
package pagen

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pagen/internal/bench"
	"pagen/internal/comm"
	"pagen/internal/core"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/msg"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/transport"
	"pagen/internal/xrand"
)

var paperN = flag.Int64("paper.n", 0, "override the scaled-down n used by the figure benchmarks")

func scaledN(def int64) int64 {
	if *paperN > 0 {
		return *paperN
	}
	return def
}

// BenchmarkFig3LCPSolver regenerates Figure 3: solving Eqn 10 exactly and
// via the LCP linear approximation (paper: n=1e8, P=160).
func BenchmarkFig3LCPSolver(b *testing.B) {
	n := scaledN(1_000_000)
	var maxDev float64
	for i := 0; i < b.N; i++ {
		rows := bench.Fig3(n, 160, partition.DefaultB)
		maxDev = 0
		for _, r := range rows {
			d := float64(r.ExactLo - r.LinearLo)
			if d < 0 {
				d = -d
			}
			if d/float64(n) > maxDev {
				maxDev = d / float64(n)
			}
		}
	}
	b.ReportMetric(maxDev*100, "max_boundary_dev_%")
}

// BenchmarkFig4DegreeDistribution regenerates Figure 4: the log-log
// degree distribution and its exponent (paper: n=1e9, x=4, gamma=2.7).
func BenchmarkFig4DegreeDistribution(b *testing.B) {
	pr := model.Params{N: scaledN(200_000), X: 4, P: 0.5}
	var gamma, slope float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(pr, partition.KindRRP, 8, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		gamma = res.Report.Gamma
		slope = res.Report.LogLogSlope
	}
	b.ReportMetric(gamma, "gamma")
	b.ReportMetric(-slope, "loglog_exponent")
}

// BenchmarkFig5StrongScaling regenerates Figure 5: speedup versus P for
// UCP/LCP/RRP at fixed problem size (paper: n=1e9, x=6, P<=768).
func BenchmarkFig5StrongScaling(b *testing.B) {
	pr := model.Params{N: scaledN(200_000), X: 6, P: 0.5}
	for _, kind := range []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP} {
		for _, p := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/P=%d", kind, p), func(b *testing.B) {
				var rows []bench.ScalingRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = bench.StrongScaling(pr, []partition.Kind{kind}, []int{p}, 3)
					if err != nil {
						b.Fatal(err)
					}
				}
				r := rows[0]
				b.ReportMetric(r.ModelSpeedup, "model_speedup")
				b.ReportMetric(r.Imbalance, "imbalance")
				b.ReportMetric(r.EdgesPerSec, "edges/s")
			})
		}
	}
}

// BenchmarkFig6WeakScaling regenerates Figure 6: runtime with fixed work
// per processor (paper: 1e7 edges per processor).
func BenchmarkFig6WeakScaling(b *testing.B) {
	perRank := scaledN(50_000)
	for _, kind := range []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/P=%d", kind, p), func(b *testing.B) {
				var rows []bench.ScalingRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = bench.WeakScaling(perRank, 6, 0.5, []partition.Kind{kind}, []int{p}, 5)
					if err != nil {
						b.Fatal(err)
					}
				}
				r := rows[0]
				// Perfect weak scaling = constant normalised makespan;
				// report per-rank model efficiency.
				b.ReportMetric(r.ModelSpeedup/float64(p), "model_efficiency")
				b.ReportMetric(r.Imbalance, "imbalance")
			})
		}
	}
}

// BenchmarkFig7Distributions regenerates Figure 7: per-processor node and
// message distributions (paper: n=1e8, x=10, P=160).
func BenchmarkFig7Distributions(b *testing.B) {
	pr := model.Params{N: scaledN(100_000), X: 10, P: 0.5}
	kinds := []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP}
	var rows []bench.Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Fig7(pr, kinds, 160, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the total-load spread (max/min) per scheme — the Figure 7d
	// signal: UCP >> LCP > RRP.
	spread := map[string][2]int64{}
	for _, r := range rows {
		s := spread[r.Scheme]
		if s[0] == 0 || r.Total < s[0] {
			s[0] = r.Total
		}
		if r.Total > s[1] {
			s[1] = r.Total
		}
		spread[r.Scheme] = s
	}
	for scheme, s := range spread {
		b.ReportMetric(float64(s[1])/float64(s[0]), "load_spread_"+scheme)
	}
}

// BenchmarkHeadlineLargeNetwork regenerates the Section 4.5 headline:
// the largest network the host can generate with RRP, reporting
// throughput (paper: 50B edges in 123 s on 768 processors = 4.1e8
// edges/s).
func BenchmarkHeadlineLargeNetwork(b *testing.B) {
	pr := model.Params{N: scaledN(2_000_000), X: 5, P: 0.5}
	var eps float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Headline(pr, 8, 9)
		if err != nil {
			b.Fatal(err)
		}
		eps = res.EdgesPerSec
	}
	b.ReportMetric(eps, "edges/s")
}

// BenchmarkTheorem33ChainLengths measures dependency-chain statistics
// against the theorem's ln n / 5 ln n bounds.
func BenchmarkTheorem33ChainLengths(b *testing.B) {
	pr := model.Params{N: scaledN(500_000), X: 1, P: 0.5}
	var res bench.ChainResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.Chains(pr, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean, "mean_chain")
	b.ReportMetric(float64(res.Max), "max_chain")
	b.ReportMetric(res.LogN, "ln_n")
}

// BenchmarkLemma34MessageLoad measures the per-node request-load profile
// the lemma predicts (E[M_k] = (1-p)(H_{n-1} - H_k)).
func BenchmarkLemma34MessageLoad(b *testing.B) {
	pr := model.Params{N: scaledN(500_000), X: 1, P: 0.5}
	var firstDecile float64
	for i := 0; i < b.N; i++ {
		_, tr, err := seq.CopyModel(pr, uint64(i)+1, seq.CopyModelOptions{RecordTrace: true})
		if err != nil {
			b.Fatal(err)
		}
		var head int64
		count := 0
		for s := range tr.K {
			if tr.Copied[s] && tr.K[s] < pr.N/10 {
				head++
			}
			count++
		}
		firstDecile = float64(head)
	}
	b.ReportMetric(firstDecile, "requests_first_decile")
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationBufferCap sweeps the message-buffer capacity
// (Section 3.5.1 argues buffering is essential; cap=1 is unbuffered).
func BenchmarkAblationBufferCap(b *testing.B) {
	pr := model.Params{N: 100_000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var frames int64
			for i := 0; i < b.N; i++ {
				res, err := Generate(Config{N: pr.N, X: pr.X, Ranks: 8, Seed: uint64(i), BufferCap: cap})
				if err != nil {
					b.Fatal(err)
				}
				frames = 0
				for _, st := range res.Ranks {
					frames += st.Comm.FramesSent
				}
				_ = part
			}
			b.ReportMetric(float64(frames), "frames")
		})
	}
}

// BenchmarkAblationPollEvery sweeps the generation-loop polling interval.
func BenchmarkAblationPollEvery(b *testing.B) {
	for _, every := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("poll=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Generate(Config{N: 100_000, X: 4, Ranks: 8, Seed: uint64(i), PollEvery: every}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchemeConstruction compares partition-construction
// cost: the reason LCP exists is that ExactCP is expensive to build and
// query (Criterion A).
func BenchmarkAblationSchemeConstruction(b *testing.B) {
	n := int64(10_000_000)
	for _, kind := range []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP, partition.KindExactCP} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.New(kind, n, 768); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationApproxAccuracy compares the exact algorithm against
// the Yoo–Henderson-style approximate baseline ([28]) across sync
// intervals, reporting each variant's power-law-exponent error against
// a sequential BA reference — the accuracy-vs-tuning tradeoff the exact
// algorithm removes.
func BenchmarkAblationApproxAccuracy(b *testing.B) {
	n := int64(50_000)
	ref, err := GenerateBA(Config{N: n, X: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	refRep, err := Analyze(ref, 8)
	if err != nil {
		b.Fatal(err)
	}
	gammaErr := func(g *Graph) float64 {
		rep, err := Analyze(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		d := rep.Gamma - refRep.Gamma
		if d < 0 {
			d = -d
		}
		return d
	}
	b.Run("exact", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			res, err := Generate(Config{N: n, X: 4, Ranks: 8, Seed: uint64(i) + 2})
			if err != nil {
				b.Fatal(err)
			}
			e = gammaErr(res.Graph)
		}
		b.ReportMetric(e, "gamma_error")
	})
	for _, interval := range []int64{256, n} {
		b.Run(fmt.Sprintf("approx/sync=%d", interval), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				g, err := GenerateApprox(ApproxConfig{N: n, X: 4, Ranks: 8, SyncInterval: interval, Seed: uint64(i) + 3})
				if err != nil {
					b.Fatal(err)
				}
				e = gammaErr(g)
			}
			b.ReportMetric(e, "gamma_error")
		})
	}
}

// BenchmarkAblationStreamingSink compares materialised versus streamed
// (on-the-fly, §3.5) generation.
func BenchmarkAblationStreamingSink(b *testing.B) {
	cfg := Config{N: 200_000, X: 4, Ranks: 8}
	b.Run("materialised", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i)
			if _, err := Generate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		var counts [8]int64
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i)
			if _, err := GenerateStream(cfg, func(rank int, e Edge) {
				// Atomic: a rank's workers share the rank's counter.
				atomic.AddInt64(&counts[rank], 1)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLatency runs the engine over transports with injected
// one-way latency (the paper's cluster has ~1 µs InfiniBand; Ethernet
// would be ~50-500 µs). Dependency chains are O(log n) and message
// batches pipeline, so runtime should degrade gracefully, not
// proportionally to latency.
func BenchmarkAblationLatency(b *testing.B) {
	pr := model.Params{N: 50_000, X: 4, P: 0.5}
	part, err := partition.New(partition.KindRRP, pr.N, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		b.Run(fmt.Sprintf("delay=%v", delay), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				group, err := transport.NewLocalGroup(4)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make([]error, 4)
				for r := 0; r < 4; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						tr := transport.NewDelayed(group.Endpoint(r), delay)
						defer tr.Close()
						_, errs[r] = core.RunRank(tr, core.Options{Params: pr, Part: part, Seed: uint64(i)})
					}(r)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Hot path (the zero-allocation optimisation layers) ---

// hotPathRequestBatch builds a buffer's worth of requests with the
// near-monotone t and node-scale k the communicator actually produces.
func hotPathRequestBatch(size int) []msg.Message {
	ms := make([]msg.Message, size)
	t := int64(1_000_000)
	for i := range ms {
		t += int64(i % 3)
		ms[i] = msg.Request(t, i%4, t/2, i%4)
	}
	return ms
}

// BenchmarkHotPathCodec compares the fixed-width (v1) and compact (v2)
// batch encodings on a typical request frame, reporting bytes/msg —
// the wire-volume reduction the compact codec buys. Both variants
// reuse their destination buffer, so allocs/op isolates codec cost.
func BenchmarkHotPathCodec(b *testing.B) {
	ms := hotPathRequestBatch(256)
	b.Run("encode-v1", func(b *testing.B) {
		buf := make([]byte, 0, len(ms)*msg.EncodedSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for _, m := range ms {
				buf = msg.AppendEncode(buf, m)
			}
		}
		b.ReportMetric(float64(len(buf))/float64(len(ms)), "bytes/msg")
	})
	b.Run("encode-v2", func(b *testing.B) {
		buf := make([]byte, 0, len(ms)*msg.EncodedSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = msg.AppendEncodeBatchV2(buf[:0], ms)
		}
		b.ReportMetric(float64(len(buf))/float64(len(ms)), "bytes/msg")
	})
	b.Run("decode-v2", func(b *testing.B) {
		frame := msg.EncodeBatchV2(ms)
		dst := make([]msg.Message, 0, len(ms))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = msg.DecodeBatch(dst[:0], frame)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(dst) != len(ms) {
			b.Fatalf("decoded %d messages", len(dst))
		}
	})
}

// BenchmarkHotPathComm cycles one buffered frame through the
// communicator pair — Send×cap triggers the flush, Poll drains it.
// Steady state exercises the leased-frame pool, the compact codec, and
// the mailbox's capacity-retaining pop together; allocs/op approaches
// zero once the pools are warm.
func BenchmarkHotPathComm(b *testing.B) {
	const batch = 64
	g, err := transport.NewLocalGroup(2)
	if err != nil {
		b.Fatal(err)
	}
	a := comm.New(g.Endpoint(0), comm.Config{BufferCap: batch})
	rcv := comm.New(g.Endpoint(1), comm.Config{})
	m := msg.Request(1, 0, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			if err := a.Send(1, m); err != nil {
				b.Fatal(err)
			}
		}
		ms, err := rcv.Poll()
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != batch {
			b.Fatalf("drained %d messages, want %d", len(ms), batch)
		}
	}
}

// BenchmarkHotPathMerge gathers 8 shards of 2^15 edges (over the
// parallel-copy threshold) into one pre-sized destination — the final
// per-rank shard gather of a distributed run.
func BenchmarkHotPathMerge(b *testing.B) {
	const (
		nShards  = 8
		shardLen = 1 << 15
	)
	shards := make([][]graph.Edge, nShards)
	for s := range shards {
		shards[s] = make([]graph.Edge, shardLen)
		for i := range shards[s] {
			shards[s][i] = graph.Edge{U: int64(s*shardLen + i + 1), V: int64(i)}
		}
	}
	b.ReportAllocs()
	b.SetBytes(nShards * shardLen * 16) // two int64 endpoints per edge
	b.ResetTimer()
	var g *graph.Graph
	for i := 0; i < b.N; i++ {
		g = graph.Merge(nShards*shardLen+1, shards...)
	}
	if g.M() != nShards*shardLen {
		b.Fatalf("merge produced %d edges", g.M())
	}
}

// BenchmarkHotPathWorkers sweeps the per-rank worker count over the full
// in-process run — the worker-sharded generation loop's scaling curve.
// On a multi-core host higher worker counts should cut wall time; on a
// single hardware thread the sweep instead measures the sharding
// overhead (inbox dispatch, atomic slot publishes). The output is
// byte-identical at every worker count, so this is purely a speed knob.
func BenchmarkHotPathWorkers(b *testing.B) {
	pr := model.Params{N: scaledN(500_000), X: 4, P: 0.5}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				res, err := Generate(Config{N: pr.N, X: pr.X, Ranks: 4, Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				eps = EdgesPerSecond(res)
			}
			b.ReportMetric(eps, "edges/s")
		})
	}
}

// BenchmarkErdosRenyiParallel covers the dependency-free contrast model
// (the future-work direction the conclusion names).
func BenchmarkErdosRenyiParallel(b *testing.B) {
	n := int64(500_000)
	p := 8.0 / float64(n-1)
	for i := 0; i < b.N; i++ {
		if _, err := ErdosRenyiParallel(n, p, 8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialBaselines compares the sequential generators the
// paper discusses in Section 3.1.
func BenchmarkSequentialBaselines(b *testing.B) {
	pr := model.Params{N: 100_000, X: 4, P: 0.5}
	b.Run("CopyModel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := seq.CopyModel(pr, uint64(i), seq.CopyModelOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BatageljBrandes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seq.BatageljBrandes(pr, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaivePA", func(b *testing.B) {
		small := model.Params{N: 5_000, X: 4, P: 0.5}
		for i := 0; i < b.N; i++ {
			if _, err := seq.NaivePA(small, xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
